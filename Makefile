GO ?= go

.PHONY: build test race bench rrgen

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: sharded RR generation and the
# cluster transports run under the race detector.
race:
	$(GO) test -race ./internal/cluster/... ./internal/rrset/...

bench:
	$(GO) test -bench=. -benchmem

# Regenerates BENCH_RRGEN.json (RR-generation throughput per parallelism
# level on this box).
rrgen:
	$(GO) run ./cmd/experiments -run rrgen
