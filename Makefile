GO ?= go

.PHONY: build test race bench rrgen pprof-rrgen bench-select serve bench-serve bench-store bench-fault bench-sketch bench-update bench-ooc

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: sharded RR generation, the parallel
# select kernel, the cluster transports, the query service, the sketch
# tier (node-sharded absorbs), the mutation/repair planner, the durable
# store, and the graph substrate (mmap-backed CSRs are shared read-only
# across sampling shards) run under the race detector.
race:
	$(GO) test -race ./internal/cluster/... ./internal/coverage/... ./internal/graph/... ./internal/mutate/... ./internal/rrset/... ./internal/serve/... ./internal/sketch/... ./internal/store/...

bench:
	$(GO) test -bench=. -benchmem

# Regenerates BENCH_RRGEN.json (RR-generation throughput per
# parallelism × batch-width level on this box; cache-stressing R-MAT
# graph by default — see -rrgen-* flags to rescale).
rrgen:
	$(GO) run ./cmd/experiments -run rrgen

# Captures CPU + allocation profiles of the RR-generation sweep into
# ./profiles (see scripts/capture_pprof.sh for scale knobs).
pprof-rrgen:
	./scripts/capture_pprof.sh

# Regenerates BENCH_SELECT.json (NEWGREEDI selection critical path and
# delta-encoding traffic per kernel parallelism level on this box).
bench-select:
	$(GO) run ./cmd/experiments -run select

# Starts the resident query service on a synthetic graph — handy for
# poking the HTTP API with curl (see README "Serving").
serve:
	$(GO) run ./cmd/dimmsrv -synth-nodes 20000 -machines 2 -kmax 20 -eps-floor 0.3 -warm -listen :8080

# Regenerates BENCH_SERVE.json (query-service QPS / p50 / p99 / reuse
# rate across client concurrency levels on this box).
bench-serve:
	$(GO) run ./cmd/experiments -run serve

# Regenerates BENCH_STORE.json (checkpoint MB/s and warm-restore vs
# cold-resample wall-clock ratio on this box).
bench-store:
	$(GO) run ./cmd/experiments -run store

# Regenerates BENCH_FAULT.json (query-service latency through a worker
# kill: healthy p50/p99, failover recovery time vs clean growth, and
# post-recovery p50/p99 on this box).
bench-fault:
	$(GO) run ./cmd/experiments -run fault

# Regenerates BENCH_UPDATE.json (incremental RR-sample repair vs full
# resample per edge-churn level, and query p99 through an update storm
# on this box).
bench-update:
	$(GO) run ./cmd/experiments -run update

# Regenerates BENCH_SKETCH.json (fast sketch tier vs certified tier:
# /v1/spread QPS/p50/p99 at equal concurrency, sketch build cost, and
# fast/certified top-k seed agreement on this box).
bench-sketch:
	$(GO) run ./cmd/experiments -run sketch

# Regenerates BENCH_OOC.json (out-of-core RR generation: mmap vs mem
# backend throughput, peak RSS relative to CSR size, and cross-backend
# collection digests). Builds the 100M+ edge graph first if absent —
# needs ~6 GB of disk and runs for a while.
OOC_GRAPH ?= bench-ooc.dsg
bench-ooc:
	@test -f $(OOC_GRAPH) || $(GO) run ./cmd/gengraph -kind rmat -nodes 16777216 -degree 8 -out $(OOC_GRAPH)
	$(GO) run ./cmd/experiments -run ooc -ooc-graph $(OOC_GRAPH)
