package dimm

import (
	"dimm/internal/apps"
	"dimm/internal/core"
)

// This file exposes the frameworks and applications beyond plain DIIMM:
// OPIM-C (adaptive-stopping influence maximization), targeted and
// budgeted influence maximization, and seed minimization — each running
// over the same distributed substrate.

// OPIMResult reports a MaximizeInfluenceOPIMC run, including the
// certified spread lower bound and OPT upper bound at stopping time.
type OPIMResult = core.OPIMResult

// MaximizeInfluenceOPIMC runs the distributed OPIM-C framework: same
// (1 − 1/e − ε) guarantee as MaximizeInfluence, but with an adaptive
// stopping rule that certifies the approximation online and usually needs
// far fewer samples on easy instances. Machines counts workers per
// RR-set collection (OPIM-C keeps two).
func MaximizeInfluenceOPIMC(g *Graph, opts Options) (*OPIMResult, error) {
	return core.RunDOPIMC(g, opts)
}

// AppConfig configures the influence-application runs (targeted/budgeted
// influence maximization and seed minimization). Zero values default to
// Machines=1, Eps=0.2, Delta=1/n.
type AppConfig = apps.Common

// AppResult is the common result shape of the applications.
type AppResult = apps.Result

// SeedMinimizeResult additionally reports whether the target was reached.
type SeedMinimizeResult = apps.MinimizeResult

// MaximizeTargetedInfluence selects k seeds maximizing the weighted
// spread Σ_v weights[v]·Pr[S activates v]. Zero-weight nodes can still
// relay influence; they just do not count toward the objective.
func MaximizeTargetedInfluence(g *Graph, weights []float64, k int, cfg AppConfig) (*AppResult, error) {
	return apps.TargetedIM(g, weights, k, cfg)
}

// MaximizeBudgetedInfluence selects a seed set of total cost ≤ budget
// (per-node costs) maximizing influence spread, via the cost-ratio lazy
// greedy over the distributed oracle.
func MaximizeBudgetedInfluence(g *Graph, costs []float64, budget float64, cfg AppConfig) (*AppResult, error) {
	return apps.BudgetedIM(g, costs, budget, cfg)
}

// MinimizeSeeds returns the smallest greedy seed set whose estimated
// spread reaches targetSpread, capped at maxSeeds.
func MinimizeSeeds(g *Graph, targetSpread float64, maxSeeds int, cfg AppConfig) (*SeedMinimizeResult, error) {
	return apps.SeedMinimize(g, targetSpread, maxSeeds, cfg)
}
