package dimm

import (
	"math"
	"testing"
)

func TestFacadeOPIMC(t *testing.T) {
	g := testNetwork(t)
	res, err := MaximizeInfluenceOPIMC(g, Options{K: 5, Eps: 0.4, Delta: 0.05, Machines: 2, Model: IC, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	if res.SpreadLower > res.OptUpper {
		t.Fatalf("bounds inverted: %v > %v", res.SpreadLower, res.OptUpper)
	}
	if res.Ratio < 1-1/math.E-0.4-1e-9 {
		t.Fatalf("uncertified stop at ratio %v", res.Ratio)
	}
}

func TestFacadeTargeted(t *testing.T) {
	g := testNetwork(t)
	weights := make([]float64, g.NumNodes())
	for v := 0; v < g.NumNodes()/2; v++ {
		weights[v] = 1
	}
	res, err := MaximizeTargetedInfluence(g, weights, 3, AppConfig{Machines: 2, Model: IC, Eps: 0.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 || res.EstSpread <= 0 || res.EstSpread > float64(g.NumNodes())/2 {
		t.Fatalf("bad targeted result: %d seeds, spread %v", len(res.Seeds), res.EstSpread)
	}
}

func TestFacadeBudgeted(t *testing.T) {
	g := testNetwork(t)
	costs := make([]float64, g.NumNodes())
	for i := range costs {
		costs[i] = 2
	}
	res, err := MaximizeBudgetedInfluence(g, costs, 10, AppConfig{Machines: 2, Model: IC, Eps: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) == 0 || len(res.Seeds) > 5 {
		t.Fatalf("budget 10 at cost 2 allows up to 5 seeds, got %d", len(res.Seeds))
	}
}

func TestFacadeMinimizeSeeds(t *testing.T) {
	g := testNetwork(t)
	res, err := MinimizeSeeds(g, 40, 100, AppConfig{Machines: 2, Model: IC, Eps: 0.4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("40-node goal unreached on a 400-node graph with 100 seeds allowed")
	}
	if res.EstSpread < 40*0.99 {
		t.Fatalf("estimated spread %v below goal", res.EstSpread)
	}
}
