// Benchmarks: one per table and figure of the paper's evaluation (run the
// cmd/experiments harness for the full sweeps and formatted tables; these
// testing.B entries keep each experiment's core loop under `go test
// -bench`), plus ablation benches for the design choices in DESIGN.md.
package dimm

import (
	"fmt"
	"sync"
	"testing"

	"dimm/internal/cluster"
	"dimm/internal/core"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/rrset"
	"dimm/internal/workload"
)

// benchGraph lazily builds the smallest Table III stand-in once.
var benchGraph = sync.OnceValues(func() (*Graph, error) {
	return workload.Specs(workload.ScaleTiny)[0].Build() // facebook-sim
})

func mustBenchGraph(b *testing.B) *Graph {
	b.Helper()
	g, err := benchGraph()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchOpts are deliberately loose (ε=0.5, k=10) so a full DIIMM run fits
// in a benchmark iteration; cmd/experiments runs the paper's settings.
func benchOpts(machines int, model Model, subset bool) core.Options {
	return core.Options{
		K: 10, Eps: 0.5, Delta: 0.05, Machines: machines,
		Model: model, Subset: subset, Seed: 1,
	}
}

// BenchmarkTableIII_Datasets regenerates the Table III stand-in graphs.
func BenchmarkTableIII_Datasets(b *testing.B) {
	spec := workload.Specs(workload.ScaleTiny)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.NumEdges()), "edges")
	}
}

// BenchmarkTableIV_RRSetStats measures a DIIMM run and reports the Table
// IV quantities (#RR sets and their total size) as custom metrics.
func BenchmarkTableIV_RRSetStats(b *testing.B) {
	g := mustBenchGraph(b)
	for i := 0; i < b.N; i++ {
		res, err := core.RunDIIMM(g, benchOpts(4, IC, false))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Theta), "RRsets")
		b.ReportMetric(float64(res.Stats.TotalSize), "totalSize")
	}
}

// benchCluster runs DIIMM across machine counts on the in-process
// transport (the Figs. 6/7/9 shape).
func benchCores(b *testing.B, model Model, subset bool) {
	g := mustBenchGraph(b)
	for _, machines := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("l=%d", machines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunDIIMM(g, benchOpts(machines, model, subset))
				if err != nil {
					b.Fatal(err)
				}
				// The paper's Fig. 6 y-axis (modeled ℓ-machine wall time).
				b.ReportMetric(res.Metrics.CriticalPath().Seconds(), "cluster-s")
				b.ReportMetric(res.Metrics.GenCritical.Seconds(), "gen-s")
				b.ReportMetric(res.Metrics.Comm.Seconds(), "comm-s")
			}
		})
	}
}

// BenchmarkFig6_DIIMM_IC_Cores: DIIMM, IC, multi-core server.
func BenchmarkFig6_DIIMM_IC_Cores(b *testing.B) { benchCores(b, IC, false) }

// BenchmarkFig7_DSUBSIM_IC_Cores: distributed SUBSIM, IC, multi-core.
func BenchmarkFig7_DSUBSIM_IC_Cores(b *testing.B) { benchCores(b, IC, true) }

// BenchmarkFig9_DIIMM_LT_Cores: DIIMM, LT, multi-core server.
func BenchmarkFig9_DIIMM_LT_Cores(b *testing.B) { benchCores(b, LT, false) }

// benchTCP runs DIIMM over real loopback sockets (the Figs. 5/8 shape).
func benchTCP(b *testing.B, model Model) {
	g := mustBenchGraph(b)
	const machines = 4
	for i := 0; i < b.N; i++ {
		conns := make([]cluster.Conn, machines)
		listeners := make([]interface{ Close() error }, 0, machines)
		for j := 0; j < machines; j++ {
			lis, err := newLoopbackWorker(g, model, cluster.DeriveSeed(1, j))
			if err != nil {
				b.Fatal(err)
			}
			listeners = append(listeners, lis.lis)
			conns[j] = lis.conn
		}
		cl, err := cluster.New(conns, g.NumNodes())
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunDIIMMOnCluster(g.NumNodes(), cl, benchOpts(machines, model, false))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.CriticalPath().Seconds(), "cluster-s")
		b.ReportMetric(float64(res.Metrics.BytesSent+res.Metrics.BytesReceived), "bytes")
		cl.Close()
		for _, l := range listeners {
			l.Close()
		}
	}
}

type loopbackWorker struct {
	lis  interface{ Close() error }
	conn cluster.Conn
}

func newLoopbackWorker(g *Graph, model Model, seed uint64) (loopbackWorker, error) {
	lis, conn, err := cluster.StartLoopbackWorker(cluster.WorkerConfig{Graph: g, Model: model, Seed: seed})
	if err != nil {
		return loopbackWorker{}, err
	}
	return loopbackWorker{lis: lis, conn: conn}, nil
}

// BenchmarkFig5_DIIMM_IC_Cluster: DIIMM, IC, TCP cluster of machines.
func BenchmarkFig5_DIIMM_IC_Cluster(b *testing.B) { benchTCP(b, IC) }

// BenchmarkFig8_DIIMM_LT_Cluster: DIIMM, LT, TCP cluster of machines.
func BenchmarkFig8_DIIMM_LT_Cluster(b *testing.B) { benchTCP(b, LT) }

// benchMCSystem builds the Fig. 10 neighbor-set instance once.
var benchMCSystem = sync.OnceValues(func() (*SetSystem, error) {
	g, err := benchGraph()
	if err != nil {
		return nil, err
	}
	return workload.NeighborSetSystem(g)
})

// BenchmarkFig10a_NewGreeDi_Time: NEWGREEDI max-coverage running time.
func BenchmarkFig10a_NewGreeDi_Time(b *testing.B) {
	sys, err := benchMCSystem()
	if err != nil {
		b.Fatal(err)
	}
	for _, machines := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("l=%d", machines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.NewGreeDiMaxCoverage(sys, 50, machines)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Metrics.CriticalPath().Seconds(), "cluster-s")
			}
		})
	}
}

// BenchmarkFig10b_Speedup: the sequential greedy baseline that Fig. 10(b)
// speedups are measured against, and the GREEDI merge path.
func BenchmarkFig10b_Speedup(b *testing.B) {
	sys, err := benchMCSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.SequentialGreedy(50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedi-l=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coverage.GreeDi(sys, 50, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig10c_CoverageRatio reports GREEDI's coverage ratio against
// NEWGREEDI (a quality metric surfaced through the bench harness).
func BenchmarkFig10c_CoverageRatio(b *testing.B) {
	sys, err := benchMCSystem()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ng, err := core.NewGreeDiMaxCoverage(sys, 50, 16)
		if err != nil {
			b.Fatal(err)
		}
		gd, err := coverage.GreeDi(sys, 50, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(gd.Coverage)/float64(ng.Coverage), "ratio")
	}
}

// --- ablation benches (DESIGN.md "Key design choices") ----------------------

// BenchmarkAblationArenaVsSlices: arena-backed RR storage vs one slice
// per RR set (the design the arena replaces).
func BenchmarkAblationArenaVsSlices(b *testing.B) {
	g := mustBenchGraph(b)
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		s, err := rrset.NewSampler(g, diffusion.IC, 1, false)
		if err != nil {
			b.Fatal(err)
		}
		c := rrset.NewCollection(1 << 20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SampleInto(c)
		}
	})
	b.Run("slices", func(b *testing.B) {
		b.ReportAllocs()
		s, err := rrset.NewSampler(g, diffusion.IC, 1, false)
		if err != nil {
			b.Fatal(err)
		}
		scratch := rrset.NewCollection(1 << 20)
		var sets [][]uint32
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SampleInto(scratch)
			members := scratch.Set(scratch.Count() - 1)
			own := make([]uint32, len(members))
			copy(own, members)
			sets = append(sets, own)
		}
		_ = sets
	})
}

// BenchmarkAblationLazyVsNaive: the vector-D lazy-bucket greedy of
// Algorithm 1 vs the rescan-everything greedy.
func BenchmarkAblationLazyVsNaive(b *testing.B) {
	g := mustBenchGraph(b)
	s, err := rrset.NewSampler(g, diffusion.IC, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	c := rrset.NewCollection(1 << 20)
	s.SampleManyInto(c, 20000)
	idx, err := rrset.BuildIndex(c, g.NumNodes())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("lazy-buckets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o, err := coverage.NewLocalOracle(c, idx, g.NumNodes())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := coverage.RunGreedy(o, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coverage.NaiveGreedy(c, idx, g.NumNodes(), 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSubsetSampling: SUBSIM geometric-jump RR generation vs
// per-edge coin flips, on the weighted-cascade graph where both apply.
func BenchmarkAblationSubsetSampling(b *testing.B) {
	g := mustBenchGraph(b)
	for _, mode := range []struct {
		name   string
		subset bool
	}{{"per-edge-coins", false}, {"subset-sampling", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := rrset.NewSampler(g, diffusion.IC, 1, mode.subset)
			if err != nil {
				b.Fatal(err)
			}
			c := rrset.NewCollection(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SampleInto(c)
			}
			b.ReportMetric(float64(c.EdgesExamined())/float64(c.Count()), "probes/set")
		})
	}
}

// BenchmarkAblationDeltaVsFullSync compares the wire size of the §III-C
// delta-compressed coverage sync against naively shipping the full
// n-entry degree vector every round.
func BenchmarkAblationDeltaVsFullSync(b *testing.B) {
	g := mustBenchGraph(b)
	n := g.NumNodes()
	s, err := rrset.NewSampler(g, diffusion.IC, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	c := rrset.NewCollection(1 << 20)
	s.SampleManyInto(c, 5000)
	idx, err := rrset.BuildIndex(c, n)
	if err != nil {
		b.Fatal(err)
	}
	// Delta form: only nodes with non-zero coverage, 8 bytes each.
	touched := 0
	for v := 0; v < n; v++ {
		if idx.Degree(uint32(v)) > 0 {
			touched++
		}
	}
	deltaBytes := float64(8 * touched)
	fullBytes := float64(8 * n)
	for i := 0; i < b.N; i++ {
		b.ReportMetric(deltaBytes, "delta-bytes")
		b.ReportMetric(fullBytes, "full-bytes")
		b.ReportMetric(fullBytes/deltaBytes, "saving")
	}
}

// BenchmarkAblationGatherAllVsNewGreeDi quantifies §II-B's motivation:
// the naive gather-every-sample strategy versus NEWGREEDI's delta
// protocol, in selection traffic bytes on identical RR-set shards.
func BenchmarkAblationGatherAllVsNewGreeDi(b *testing.B) {
	g := mustBenchGraph(b)
	setup := func() *cluster.Cluster {
		cfgs := make([]cluster.WorkerConfig, 4)
		for i := range cfgs {
			cfgs[i] = cluster.WorkerConfig{Graph: g, Model: IC, Seed: cluster.DeriveSeed(5, i)}
		}
		cl, err := cluster.NewLocal(cfgs, g.NumNodes())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Generate(20000); err != nil {
			b.Fatal(err)
		}
		return cl
	}
	b.Run("gather-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cl := setup()
			res, err := core.GatherAllSelect(g.NumNodes(), cl, 50)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.GatherBytes), "bytes")
			cl.Close()
		}
	})
	b.Run("newgreedi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cl := setup()
			before := cl.Metrics()
			if _, err := coverage.RunGreedy(cl.Oracle(), 50); err != nil {
				b.Fatal(err)
			}
			after := cl.Metrics()
			b.ReportMetric(float64(after.BytesSent-before.BytesSent+after.BytesReceived-before.BytesReceived), "bytes")
			cl.Close()
		}
	})
}

// BenchmarkDistributedEstimate measures the §II-B distributed
// Monte-Carlo influence-estimation service.
func BenchmarkDistributedEstimate(b *testing.B) {
	g := mustBenchGraph(b)
	cfgs := make([]cluster.WorkerConfig, 4)
	for i := range cfgs {
		cfgs[i] = cluster.WorkerConfig{Graph: g, Model: IC, Seed: cluster.DeriveSeed(7, i)}
	}
	cl, err := cluster.NewLocal(cfgs, g.NumNodes())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	seeds := []uint32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.EstimateSpread(seeds, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPIMCvsIMM contrasts the adaptive OPIM-C stopping rule with
// IMM's worst-case sample count at the same (ε, δ).
func BenchmarkOPIMCvsIMM(b *testing.B) {
	g := mustBenchGraph(b)
	b.Run("diimm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunDIIMM(g, benchOpts(4, IC, false))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Theta), "RRsets")
		}
	})
	b.Run("dopimc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunDOPIMC(g, benchOpts(4, IC, false))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(2*res.Theta), "RRsets")
		}
	})
}

// BenchmarkAblationEpsilonSweep shows the ε⁻² scaling of the sample count
// (and hence runtime) that the λ* formula implies — the reason the
// harness defaults to a looser ε than the paper's 0.01 on small boxes.
func BenchmarkAblationEpsilonSweep(b *testing.B) {
	g := mustBenchGraph(b)
	for _, eps := range []float64{0.5, 0.35, 0.25} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := benchOpts(4, IC, false)
				opt.Eps = eps
				res, err := core.RunDIIMM(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Theta), "RRsets")
			}
		})
	}
}

// BenchmarkRRGenerationLTvsIC quantifies the LT-faster-than-IC claim the
// paper makes about Figs. 8/9 vs 5/6.
func BenchmarkRRGenerationLTvsIC(b *testing.B) {
	g := mustBenchGraph(b)
	for _, model := range []Model{IC, LT} {
		b.Run(model.String(), func(b *testing.B) {
			s, err := rrset.NewSampler(g, model, 1, false)
			if err != nil {
				b.Fatal(err)
			}
			c := rrset.NewCollection(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SampleInto(c)
			}
		})
	}
}
