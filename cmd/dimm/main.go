// Command dimm runs distributed influence maximization (DIIMM) on a graph.
//
// Examples:
//
//	# 50 seeds on a SNAP edge list, IC model, 8 in-process machines
//	dimm -graph soc-LiveJournal1.txt -k 50 -machines 8
//
//	# synthetic network, LT model, tighter epsilon, verify by simulation
//	dimm -synth-nodes 100000 -synth-degree 20 -model lt -eps 0.1 -verify 10000
//
//	# against TCP workers started with `dimmd -worker` (see cmd/dimmd)
//	dimm -graph g.bin -workers 127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"dimm"
	"dimm/internal/cluster"
	"dimm/internal/core"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dimm: ")

	var (
		graphPath   = flag.String("graph", "", "edge-list (.txt), binary (.bin) or segmented (.dsg) graph file")
		backendName = flag.String("graph-backend", "mem", "graph materialization: mem (heap) | mmap (demand-paged, .dsg files only; serves graphs larger than RAM)")
		undirected  = flag.Bool("undirected", false, "treat the edge list as undirected")
		weights     = flag.String("weights", "wc", "edge weight model: wc|uniform|trivalency|file (file = keep probabilities from the input)")
		uniformP    = flag.Float64("uniform-p", 0.1, "probability for -weights uniform")
		synthNodes  = flag.Int("synth-nodes", 0, "generate a synthetic network with this many nodes instead of loading one")
		synthDeg    = flag.Float64("synth-degree", 10, "average degree for the synthetic network")
		modelName   = flag.String("model", "ic", "diffusion model: ic|lt")
		algo        = flag.String("algo", "imm", "framework: imm (DIIMM) | opimc (distributed OPIM-C)")
		k           = flag.Int("k", 50, "number of seeds")
		eps         = flag.Float64("eps", 0.1, "approximation slack epsilon")
		delta       = flag.Float64("delta", 0, "failure probability (0 = 1/n)")
		machines    = flag.Int("machines", 1, "number of in-process machines")
		workers     = flag.String("workers", "", "comma-separated TCP worker addresses (overrides -machines)")
		subset      = flag.Bool("subsim", false, "use SUBSIM subset sampling (requires weighted-cascade weights)")
		parallelism = flag.Int("parallelism", 0, "RR-generation goroutines per machine (0 = auto: GOMAXPROCS/machines, 1 = sequential)")
		batch       = flag.Int("batch", 0, "frontier-batch width of each sampling shard (0 = auto, 1 = scalar kernel; never changes sampled sets)")
		seed        = flag.Uint64("seed", 1, "random seed")
		callTimeout = flag.Duration("call-timeout", 0, "per-call deadline for TCP worker requests (0 = none); a wedged worker fails the run instead of hanging it")

		retries      = flag.Int("retries", cluster.DefaultRetries, "redial+replay attempts per TCP worker failure before quarantining it")
		retryBackoff = flag.Duration("retry-backoff", cluster.DefaultRetryBackoff, "base backoff between worker retry attempts (exponential, jittered)")

		verify      = flag.Int("verify", 0, "verify the result with this many Monte-Carlo simulations")
		showMetrics = flag.Bool("metrics", true, "print the time/traffic breakdown")
	)
	flag.Parse()

	model, err := diffusion.ParseModel(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	g, err := loadOrGenerate(*graphPath, *backendName, *undirected, *weights, float32(*uniformP), *synthNodes, *synthDeg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.1f\n", g.NumNodes(), g.NumEdges(), g.AvgDegree())

	par := *parallelism
	if par == 0 {
		par = core.AutoParallelism
	}
	opt := core.Options{
		K: *k, Eps: *eps, Delta: *delta, Machines: *machines,
		Model: model, Subset: *subset, Seed: *seed, Parallelism: par,
		Batch: *batch,
	}
	if *algo == "opimc" {
		if *workers != "" {
			log.Fatal("-algo opimc currently runs with in-process machines only (use -machines)")
		}
		res, err := core.RunDOPIMC(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seeds (%d): %v\n", len(res.Seeds), res.Seeds)
		fmt.Printf("certified: spread >= %.1f, OPT <= %.1f (ratio %.3f) with %d x2 RR sets in %d rounds\n",
			res.SpreadLower, res.OptUpper, res.Ratio, res.Theta, res.Rounds)
		if *verify > 0 {
			mean, se := dimm.EstimateSpread(g, res.Seeds, model, *verify, *seed+1)
			fmt.Printf("monte-carlo verification: spread %.1f ± %.1f over %d simulations\n", mean, se, *verify)
		}
		return
	}
	if *algo != "imm" {
		log.Fatalf("unknown -algo %q (want imm|opimc)", *algo)
	}
	var res *core.Result
	if *workers != "" {
		addrs := strings.Split(*workers, ",")
		pol := cluster.RetryPolicy{Retries: *retries, Backoff: *retryBackoff}
		dialOne := func(addr string) (cluster.Conn, error) {
			addr = strings.TrimSpace(addr)
			return cluster.NewRetryConn(addr, func() (cluster.Conn, error) {
				return cluster.DialWorkerTimeout(addr, *callTimeout)
			}, pol)
		}
		conns := make([]cluster.Conn, len(addrs))
		for i, addr := range addrs {
			conns[i], err = dialOne(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer conns[i].Close()
		}
		cl, err := cluster.New(conns, g.NumNodes())
		if err != nil {
			log.Fatal(err)
		}
		// A worker that drops its connection mid-run is redialed and
		// re-seeded from the replay journal (dimmd restarts hand each
		// connection a fresh worker); only if that keeps failing is it
		// quarantined and its shard regenerated on the survivors.
		_ = cl.EnableRecovery(cluster.Recovery{
			Respawn: func(i int) (cluster.Conn, error) { return dialOne(addrs[i]) },
			Retries: pol.Retries,
			Backoff: pol.Backoff,
			Salt:    *seed,
		})
		opt.Machines = len(addrs)
		res, err = core.RunDIIMMOnCluster(g.NumNodes(), cl, opt)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res, err = core.RunDIIMM(g, opt)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("seeds (%d): %v\n", len(res.Seeds), res.Seeds)
	fmt.Printf("theta: %d RR sets (total size %d), lower bound %.1f\n",
		res.Theta, res.Stats.TotalSize, res.LowerBound)
	fmt.Printf("estimated spread: %.1f (%.2f%% of the network)\n",
		res.EstSpread, 100*res.EstSpread/float64(g.NumNodes()))
	if *showMetrics {
		m := res.Metrics
		fmt.Printf("wall %.3fs | cluster critical path %.3fs (gen %.3fs, compute %.3fs, master %.3fs, comm %.3fs)\n",
			res.Wall.Seconds(), m.CriticalPath().Seconds(),
			m.GenCritical.Seconds(), m.SelCritical.Seconds(), m.MasterCompute.Seconds(), m.Comm.Seconds())
		fmt.Printf("traffic: %d bytes sent, %d received over %d rounds\n",
			m.BytesSent, m.BytesReceived, m.Rounds)
	}
	if *verify > 0 {
		mean, se := dimm.EstimateSpread(g, res.Seeds, model, *verify, *seed+1)
		fmt.Printf("monte-carlo verification: spread %.1f ± %.1f over %d simulations\n", mean, se, *verify)
	}
}

func loadOrGenerate(path, backendName string, undirected bool, weights string, uniformP float32, synthNodes int, synthDeg float64, seed uint64) (*graph.Graph, error) {
	backend, err := graph.ParseBackend(backendName)
	if err != nil {
		return nil, err
	}
	if synthNodes > 0 {
		g, err := graph.GenPreferential(graph.GenConfig{
			Nodes: synthNodes, AvgDegree: synthDeg, Seed: seed, UniformAttach: 0.15,
		})
		if err != nil {
			return nil, err
		}
		if weights == "file" {
			return g, nil
		}
		wm, err := graph.ParseWeightModel(weights)
		if err != nil {
			return nil, err
		}
		return graph.AssignWeights(g, wm, uniformP, seed)
	}
	if path == "" {
		return nil, fmt.Errorf("provide -graph or -synth-nodes (try -h)")
	}
	return graph.LoadAny(path, graph.LoadOptions{
		Undirected: undirected, Weights: weights, UniformP: uniformP, Seed: seed, Backend: backend,
	})
}
