// Command dimmd runs one DIIMM worker as a standalone process, serving
// the cluster protocol over TCP. It is the multi-process / multi-host
// deployment path: start one dimmd per machine, then point cmd/dimm (or
// any program using the library's cluster package) at the addresses.
//
//	# on each worker machine (all must load the same graph):
//	dimmd -graph g.bin -listen :7001 -model ic -seed-index 0
//	dimmd -graph g.bin -listen :7002 -model ic -seed-index 1
//
//	# on the master:
//	dimm -graph g.bin -workers host1:7001,host2:7002
//
// The -seed-index must be distinct per worker: worker i samples the RNG
// stream derived from (-seed, i), which is what makes a distributed run
// reproduce the equivalent single-process run bit for bit. The sampled
// streams also depend on -parallelism (the per-worker shard count, auto
// = GOMAXPROCS by default), so reproducible multi-host runs should pin
// the same -parallelism on every worker; -parallelism 1 reproduces the
// sequential sampler exactly.
//
// Restart contract: every accepted connection gets a brand-new empty
// worker, so a bounced dimmd rejoins with no state of its own. Masters
// running the fault-tolerance layer (dimm/dimmsrv -retries) rely on
// exactly that: on reconnect they replay the worker's journaled request
// history, which — because the worker's streams are a pure function of
// (-seed, -seed-index, -parallelism) — rebuilds its RR collection bit
// for bit. Restart dimmd with the same flags it was started with, or
// the replayed state (and the run's reproducibility) is silently wrong.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dimmd: ")

	var (
		graphPath   = flag.String("graph", "", "edge-list (.txt), binary (.bin) or segmented (.dsg) graph file")
		backendName = flag.String("graph-backend", "mem", "graph materialization: mem (heap) | mmap (demand-paged, .dsg files only; incompatible with -dynamic)")
		undirected  = flag.Bool("undirected", false, "treat the edge list as undirected")
		weights     = flag.String("weights", "wc", "edge weight model: wc|uniform|trivalency|file")
		uniformP    = flag.Float64("uniform-p", 0.1, "probability for -weights uniform")
		listen      = flag.String("listen", ":7001", "address to serve the worker protocol on")
		modelName   = flag.String("model", "ic", "diffusion model: ic|lt")
		subset      = flag.Bool("subsim", false, "use SUBSIM subset sampling")
		parallelism = flag.Int("parallelism", 0, "RR-generation goroutines for this worker (0 = auto: GOMAXPROCS, 1 = sequential); must match across workers for reproducible runs")
		batch       = flag.Int("batch", 0, "frontier-batch width of each sampling shard (0 = auto, 1 = scalar kernel; never changes sampled sets, safe to vary per worker)")
		seed        = flag.Uint64("seed", 1, "base random seed (same on every worker)")
		seedIndex   = flag.Int("seed-index", 0, "this worker's machine index (distinct per worker)")
		dynamic     = flag.Bool("dynamic", false, "enable streaming graph updates: the master's POST /v1/update batches mutate this worker's graph copy and repair its RR sets in place (set on every worker of a dynamic deployment)")
		grace       = flag.Duration("shutdown-grace", 5*time.Second, "on SIGINT/SIGTERM, wait this long for the connected master to go idle before closing")
	)
	flag.Parse()

	if *graphPath == "" {
		log.Fatal("missing -graph (the worker needs its own copy of the graph)")
	}
	model, err := diffusion.ParseModel(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	backend, err := graph.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.LoadAny(*graphPath, graph.LoadOptions{
		Undirected: *undirected, Weights: *weights, UniformP: float32(*uniformP), Seed: *seed, Backend: backend,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *dynamic {
		// Must happen before any worker (and its samplers) is built: the
		// samplers pick mutation-safe kernels on mutable graphs. An
		// mmap-backed graph is rejected here (updates write through CSR
		// slots in place, which a shared read-only mapping cannot allow).
		if err := g.EnableMutation(); err != nil {
			log.Fatalf("-dynamic: %v", err)
		}
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	par := *parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0) // this process is one machine: use its cores
	}
	log.Printf("worker %d serving %d nodes / %d edges on %s (%v model, parallelism %d)",
		*seedIndex, g.NumNodes(), g.NumEdges(), lis.Addr(), model, par)
	cfg := cluster.WorkerConfig{
		Graph:       g,
		Model:       model,
		Subset:      *subset,
		Seed:        cluster.DeriveSeed(*seed, *seedIndex),
		Parallelism: par,
		Batch:       *batch,
	}
	srv := cluster.NewWorkerServer(lis, func() (*cluster.Worker, error) {
		return cluster.NewWorker(cfg)
	})

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting masters, let an
	// in-flight request finish and its response flush, then exit 0 so a
	// worker leaving the cluster never dies mid-frame.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, draining (grace %v)", s, *grace)
		if err := srv.Shutdown(*grace); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
	log.Printf("worker %d stopped", *seedIndex)
}
