// Command dimmsrv runs the resident influence-maximization query
// service (internal/serve): it loads the graph once, keeps worker
// clusters warm, and answers seed-set queries over HTTP from a resident
// RR sample with per-query certified approximation bounds.
//
//	# serve a SNAP edge list with 4 in-process machines per collection
//	dimmsrv -graph soc-LiveJournal1.txt -machines 4 -listen :8080
//
//	# query it
//	curl -X POST localhost:8080/v1/seeds -d '{"k": 10, "eps": 0.2}'
//	curl 'localhost:8080/v1/spread?seeds=12,99,3&rounds=10000'
//	curl localhost:8080/statsz
//
// Against standalone TCP workers (cmd/dimmd), list an even number of
// addresses: the first half backs the selection collection R1, the
// second half the certification collection R2. The two halves must be
// started with distinct -seed-index values so their RR streams are
// independent — the certificate is unsound otherwise.
//
//	dimmsrv -graph g.bin -workers host1:7001,host2:7001,host3:7001,host4:7001
//
// With -checkpoint-dir the resident sample is checkpointed to disk after
// every growth epoch, and -restore replays it on the next start — a warm
// restart that answers the same queries byte-identically with zero RR
// generation (see README "Checkpointing" and cmd/dimmstore):
//
//	dimmsrv -graph g.bin -warm -checkpoint-dir /var/lib/dimm/ckpt
//	# ...crash or deploy...
//	dimmsrv -graph g.bin -checkpoint-dir /var/lib/dimm/ckpt -restore
//
// With -dynamic the service accepts streaming edge updates — the graph
// mutates behind a delta overlay and the resident RR sample is repaired
// in place instead of resampled (see README "Dynamic graphs"):
//
//	dimmsrv -graph g.bin -dynamic
//	curl -X POST localhost:8080/v1/update \
//	  -d '{"seq": 1, "ops": [{"op":"add","from":12,"to":99,"prob":0.05}]}'
//
// SIGINT/SIGTERM triggers a graceful stop: the listener closes,
// in-flight requests get -shutdown-grace to finish, then the worker
// clusters shut down and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/core"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dimmsrv: ")

	var (
		graphPath   = flag.String("graph", "", "edge-list (.txt), binary (.bin) or segmented (.dsg) graph file")
		backendName = flag.String("graph-backend", "mem", "graph materialization: mem (heap) | mmap (demand-paged, .dsg files only; incompatible with -dynamic)")
		undirected  = flag.Bool("undirected", false, "treat the edge list as undirected")
		weights    = flag.String("weights", "wc", "edge weight model: wc|uniform|trivalency|file")
		uniformP   = flag.Float64("uniform-p", 0.1, "probability for -weights uniform")
		synthNodes = flag.Int("synth-nodes", 0, "generate a synthetic network with this many nodes instead of loading one")
		synthDeg   = flag.Float64("synth-degree", 10, "average degree for the synthetic network")
		modelName  = flag.String("model", "ic", "diffusion model: ic|lt")

		listen      = flag.String("listen", ":8080", "HTTP listen address")
		machines    = flag.Int("machines", 1, "in-process machines per RR collection")
		workers     = flag.String("workers", "", "comma-separated TCP worker addresses, first half R1 / second half R2 (overrides -machines)")
		subset      = flag.Bool("subsim", false, "use SUBSIM subset sampling")
		parallelism = flag.Int("parallelism", 0, "RR-generation goroutines per machine (0 = auto)")
		batch       = flag.Int("batch", 0, "frontier-batch width of each sampling shard (0 = auto, 1 = scalar kernel; never changes sampled sets)")
		seed        = flag.Uint64("seed", 1, "random seed")

		kMax     = flag.Int("kmax", 50, "largest admissible query seed-set size")
		epsFloor = flag.Float64("eps-floor", 0.1, "tightest admissible query epsilon")
		delta    = flag.Float64("delta", 0, "service-lifetime failure probability (0 = 1/n)")

		sketchK = flag.Int("sketch-k", 0, "bottom-k size of the ?mode=fast sketch tier (0 = default, negative disables the tier)")

		dynamic = flag.Bool("dynamic", false, "accept streaming graph updates on POST /v1/update, repairing the resident RR sample in place (TCP workers must run dimmd -dynamic; incompatible with -subsim and -restore)")

		cacheSize   = flag.Int("cache", 256, "LRU capacity for recent (k, eps) answers (negative disables)")
		maxInFlight = flag.Int("max-inflight", 64, "concurrently admitted query requests; excess get 429")
		warm        = flag.Bool("warm", false, "grow the resident sample for the hardest admissible query before accepting traffic")
		callTimeout = flag.Duration("call-timeout", 0, "per-call deadline for TCP worker requests (0 = none)")

		retries      = flag.Int("retries", cluster.DefaultRetries, "respawn/redial attempts per worker failure before quarantining it")
		retryBackoff = flag.Duration("retry-backoff", cluster.DefaultRetryBackoff, "base backoff between worker retry attempts (exponential, jittered)")

		grace = flag.Duration("shutdown-grace", 10*time.Second, "on SIGINT/SIGTERM, deadline for in-flight HTTP requests to finish")

		checkpointDir = flag.String("checkpoint-dir", "", "directory for the durable RR-sample store; each growth epoch is checkpointed there")
		restore       = flag.Bool("restore", false, "replay the checkpoint in -checkpoint-dir at startup (warm restart, no resampling)")
	)
	flag.Parse()

	model, err := diffusion.ParseModel(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	g, err := loadOrGenerate(*graphPath, *backendName, *undirected, *weights, float32(*uniformP), *synthNodes, *synthDeg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graph: %d nodes, %d edges, avg degree %.1f", g.NumNodes(), g.NumEdges(), g.AvgDegree())

	if *restore && *checkpointDir == "" {
		log.Fatal("-restore needs -checkpoint-dir")
	}
	cfg := serve.Config{
		Graph:         g,
		Model:         model,
		Subset:        *subset,
		Seed:          *seed,
		Dynamic:       *dynamic,
		Machines:      *machines,
		Parallelism:   parOpt(*parallelism),
		Batch:         *batch,
		SketchK:       *sketchK,
		KMax:          *kMax,
		EpsFloor:      *epsFloor,
		Delta:         *delta,
		CacheSize:     *cacheSize,
		MaxInFlight:   *maxInFlight,
		Retries:       *retries,
		RetryBackoff:  *retryBackoff,
		CheckpointDir: *checkpointDir,
		Restore:       *restore,
		WeightTag:     *weights,
	}
	if *workers != "" {
		pol := cluster.RetryPolicy{Retries: *retries, Backoff: *retryBackoff}
		c1, c2, err := dialWorkerHalves(*workers, g.NumNodes(), *callTimeout, *seed, pol)
		if err != nil {
			log.Fatal(err)
		}
		cfg.C1, cfg.C2 = c1, c2
	}
	svc, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if st := svc.Stats(); st.Restored {
		log.Printf("restore: resumed epoch %d with theta=%d from %d checkpoint segments in %s",
			st.Epoch, st.Theta, st.RestoredEpochs, *checkpointDir)
	} else if *restore {
		log.Printf("restore: no checkpoint in %s, cold start", *checkpointDir)
	}
	if st := svc.Stats(); st.SketchK > 0 {
		src := "rebuilt from the resident sample"
		if st.SketchRestored {
			src = "restored from the checkpoint"
		}
		log.Printf("fast tier: bottom-%d sketches over %d instances (%s)", st.SketchK, st.SketchTheta, src)
	}

	if *warm {
		start := time.Now()
		ans, err := svc.Warm()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("warm: k=%d eps=%.2f certified at ratio %.3f with theta=%d in %.1fs",
			svc.KMax(), svc.EpsFloor(), ans.Ratio, ans.Theta, time.Since(start).Seconds())
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	log.Printf("serving kmax=%d eps-floor=%.2f on %s", *kMax, *epsFloor, lis.Addr())

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(done)
		s := <-sig
		log.Printf("received %v, draining (grace %v)", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := svc.Close(); err != nil {
			log.Printf("service close: %v", err)
		}
	}()

	if err := httpSrv.Serve(lis); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	log.Print("stopped")
}

// parOpt maps the flag convention (0 = auto) onto core's (-1 = auto).
func parOpt(p int) int {
	if p == 0 {
		return core.AutoParallelism
	}
	return p
}

// dialWorkerHalves splits the address list into the R1 and R2 clusters.
// Each connection is wrapped in a RetryConn, and each cluster gets a
// recovery layer whose Respawn redials the worker's address: a dimmd
// restart (Serve hands every accepted connection a fresh worker) is
// re-seeded by the cluster's replay journal, so a bounced worker rejoins
// with bit-identical state instead of forcing a cold start.
func dialWorkerHalves(list string, n int, callTimeout time.Duration, seed uint64, pol cluster.RetryPolicy) (*cluster.Cluster, *cluster.Cluster, error) {
	addrs := strings.Split(list, ",")
	if len(addrs) < 2 || len(addrs)%2 != 0 {
		return nil, nil, fmt.Errorf("need an even number of worker addresses (R1 half + R2 half), got %d", len(addrs))
	}
	dial := func(addrs []string, salt uint64) (*cluster.Cluster, error) {
		dialOne := func(addr string) (cluster.Conn, error) {
			addr = strings.TrimSpace(addr)
			return cluster.NewRetryConn(addr, func() (cluster.Conn, error) {
				return cluster.DialWorkerTimeout(addr, callTimeout)
			}, pol)
		}
		conns := make([]cluster.Conn, len(addrs))
		for i, addr := range addrs {
			c, err := dialOne(addr)
			if err != nil {
				for _, d := range conns[:i] {
					d.Close()
				}
				return nil, err
			}
			conns[i] = c
		}
		cl, err := cluster.New(conns, n)
		if err != nil {
			return nil, err
		}
		_ = cl.EnableRecovery(cluster.Recovery{
			Respawn: func(i int) (cluster.Conn, error) { return dialOne(addrs[i]) },
			Retries: pol.Retries,
			Backoff: pol.Backoff,
			Salt:    seed ^ salt,
		})
		return cl, nil
	}
	half := len(addrs) / 2
	c1, err := dial(addrs[:half], 0x0111)
	if err != nil {
		return nil, nil, err
	}
	c2, err := dial(addrs[half:], 0x0222)
	if err != nil {
		c1.Close()
		return nil, nil, err
	}
	return c1, c2, nil
}

func loadOrGenerate(path, backendName string, undirected bool, weights string, uniformP float32, synthNodes int, synthDeg float64, seed uint64) (*graph.Graph, error) {
	backend, err := graph.ParseBackend(backendName)
	if err != nil {
		return nil, err
	}
	if synthNodes > 0 {
		g, err := graph.GenPreferential(graph.GenConfig{
			Nodes: synthNodes, AvgDegree: synthDeg, Seed: seed, UniformAttach: 0.15,
		})
		if err != nil {
			return nil, err
		}
		if weights == "file" {
			return g, nil
		}
		wm, err := graph.ParseWeightModel(weights)
		if err != nil {
			return nil, err
		}
		return graph.AssignWeights(g, wm, uniformP, seed)
	}
	if path == "" {
		return nil, fmt.Errorf("provide -graph or -synth-nodes (try -h)")
	}
	return graph.LoadAny(path, graph.LoadOptions{
		Undirected: undirected, Weights: weights, UniformP: uniformP, Seed: seed, Backend: backend,
	})
}
