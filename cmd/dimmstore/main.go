// Command dimmstore inspects and maintains durable RR-sample stores
// (the checkpoint directories written by dimmsrv -checkpoint-dir; see
// internal/store for the on-disk format).
//
//	dimmstore info   /var/lib/dimm/ckpt   # manifest summary, no payload reads
//	dimmstore verify /var/lib/dimm/ckpt   # full read: sizes, CRC32C, wire decode
//	dimmstore prune  /var/lib/dimm/ckpt   # delete orphan segments/temp files
//	dimmstore compact /var/lib/dimm/ckpt  # merge all segments into one
//
// verify exits non-zero on the first corrupt or stale segment, printing
// the same typed error a restoring dimmsrv would surface.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dimm/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dimmstore: ")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dimmstore <info|verify|prune|compact> <dir>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, dir := flag.Arg(0), flag.Arg(1)

	switch cmd {
	case "info":
		info, err := store.Inspect(dir)
		if err != nil {
			log.Fatal(err)
		}
		printInfo(info)

	case "verify":
		info, err := store.Verify(dir)
		if err != nil {
			if info != nil {
				printInfo(info)
			}
			log.Fatal(err)
		}
		printInfo(info)
		extra := ""
		if info.Sketch != nil {
			extra = " + sketch"
		}
		if n := len(info.Deltas); n > 0 {
			extra += fmt.Sprintf(" + %d graph deltas", n)
		}
		fmt.Printf("verify: all %d segments%s OK\n", len(info.Epochs), extra)

	case "prune":
		removed, err := store.Prune(dir)
		if err != nil {
			log.Fatal(err)
		}
		if len(removed) == 0 {
			fmt.Println("prune: nothing to remove")
			return
		}
		for _, name := range removed {
			fmt.Printf("prune: removed %s\n", name)
		}

	case "compact":
		before, err := store.Inspect(dir)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Compact(dir); err != nil {
			log.Fatal(err)
		}
		after, err := store.Inspect(dir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compact: %d segments -> %d (%d bytes)\n",
			len(before.Epochs), len(after.Epochs), after.Bytes)

	default:
		log.Fatalf("unknown command %q (want info|verify|prune|compact)", cmd)
	}
}

func printInfo(info *store.Info) {
	fp := info.Fingerprint
	fmt.Printf("%s:\n", info.Dir)
	fmt.Printf("  graph        %s\n", fp.GraphHash)
	fmt.Printf("  model        %s", fp.Model)
	if fp.WeightModel != "" {
		fmt.Printf(" / %s weights", fp.WeightModel)
	}
	if fp.Subset {
		fmt.Print(" / subset sampling")
	}
	fmt.Println()
	fmt.Printf("  sampling     seed=%d machines=%d parallelism=%d\n", fp.Seed, fp.Machines, fp.Parallelism)
	fmt.Printf("  envelope     kmax=%d eps-floor=%g\n", fp.KMax, fp.EpsFloor)
	fmt.Printf("  RR sets      %d (R1) + %d (R2) in %d segments, %d bytes\n",
		info.R1Sets, info.R2Sets, len(info.Epochs), info.Bytes)
	for _, e := range info.Epochs {
		fmt.Printf("    epoch %-4d %s  %d+%d sets  %d bytes  crc %08x\n",
			e.Epoch, e.File, e.R1Sets, e.R2Sets, e.Bytes, e.CRC)
	}
	if sk := info.Sketch; sk != nil {
		fmt.Printf("  sketch       bottom-%d seed=%d theta=%d\n", sk.K, sk.Seed, sk.Theta)
		fmt.Printf("    epoch %-4d %s  %d bytes  crc %08x\n",
			sk.Epoch, sk.File, sk.Bytes, sk.CRC)
	}
	if len(info.Deltas) > 0 {
		fmt.Printf("  graph deltas %d batches, %d RR sets repaired (store is a journal; not restorable)\n",
			len(info.Deltas), info.RepairedSets)
		for _, d := range info.Deltas {
			tag := ""
			if d.Remirrored {
				tag = "  [remirrored]"
			}
			fmt.Printf("    seq %-6d %s  %d ops  %d repaired  epoch %d  %d bytes  crc %08x%s\n",
				d.Seq, d.File, d.Ops, d.Repaired, d.Epoch, d.Bytes, d.CRC, tag)
		}
	}
	for _, o := range info.Orphans {
		fmt.Printf("  orphan       %s (not in manifest; dimmstore prune removes it)\n", o)
	}
}
