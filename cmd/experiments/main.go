// Command experiments regenerates every table and figure of the paper's
// evaluation section (§IV) as text tables. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
//	# everything, quick scale
//	experiments -run all
//
//	# one figure, bigger workload and tighter epsilon
//	experiments -run fig6 -scale 1.0 -eps 0.1
//
// Dataset scale, k, ε and the machine sweeps are flags so the full paper
// settings (ε = 0.01, k = 50, 64 cores) can be requested on capable
// hardware.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dimm/internal/bench"
	"dimm/internal/core"
	"dimm/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run      = flag.String("run", "all", "comma list of: tableIII,tableIV,fig5,fig6,fig7,fig8,fig9,fig10,rrgen,select,serve,store,fault,sketch,update,ooc,all (rrgen, select, serve, store, fault, sketch, update and ooc only run when named)")
		scale    = flag.Float64("scale", 0.25, "dataset scale (0.25 quick, 1.0 standard, 4.0 large)")
		k        = flag.Int("k", 50, "seed set size")
		eps      = flag.Float64("eps", 0.3, "epsilon (paper uses 0.01; quadratic in runtime)")
		seed     = flag.Uint64("seed", 20220501, "base random seed")
		clusters = flag.String("cluster-sizes", "1,2,4,8,16", "ℓ sweep for the TCP-cluster figures")
		cores    = flag.String("core-counts", "1,2,4,8,16,32,64", "ℓ sweep for the multi-core figures")
		datasets = flag.String("datasets", "", "comma list of datasets (default: all four)")
		outPath  = flag.String("out", "", "also write the report to this file")
		report   = flag.String("report", "", "run everything and write an EXPERIMENTS.md-style markdown report to this file")
		repeats  = flag.Int("repeats", 1, "runs per cell; the fastest is kept (paper: average of 10)")
		linkRTT  = flag.Duration("link-rtt", 200*time.Microsecond, "simulated RTT for the TCP-cluster figures (paper: 1Gbps switch); 0 = raw loopback")
		linkGbps = flag.Float64("link-gbps", 1.0, "simulated link bandwidth in Gbit/s for the TCP-cluster figures; 0 = unlimited")
		par      = flag.Int("parallelism", 1, "RR-generation goroutines per worker (1 = sequential, keeps per-worker timings exact on oversubscribed boxes; 0 = auto GOMAXPROCS/machines)")
		batch    = flag.Int("batch", 0, "frontier-batch width of each sampling shard for the figure runs (0 = auto, 1 = scalar kernel)")
		rrgenOut = flag.String("rrgen-out", "BENCH_RRGEN.json", "JSON output path for -run rrgen (empty = print only)")

		rrgenGraph  = flag.String("rrgen-graph", "rmat", "graph kind for -run rrgen: pref|rmat (rmat stresses cache locality)")
		rrgenNodes  = flag.Int("rrgen-nodes", 16_000_000, "graph size for -run rrgen; the default CSR footprint far exceeds typical LLCs")
		rrgenDegree = flag.Float64("rrgen-degree", 16, "average degree for -run rrgen")
		rrgenCount  = flag.Int64("rrgen-count", 300_000, "RR sets per sweep level for -run rrgen")
		rrgenPs     = flag.String("rrgen-ps", "1,2,4,8", "parallelism sweep for -run rrgen")
		rrgenBs     = flag.String("rrgen-bs", "1,8,64,256", "frontier-batch width sweep for -run rrgen")
		rrgenSubset = flag.Bool("rrgen-subset", true, "use SUBSIM subset sampling for -run rrgen (the memory-latency-bound regime where batching pays)")

		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of the selected runs to this file (go tool pprof)")
		memProfile    = flag.String("memprofile", "", "write an allocation profile at exit to this file")
		selectOut     = flag.String("select-out", "BENCH_SELECT.json", "JSON output path for -run select (empty = print only)")
		serveOut      = flag.String("serve-out", "BENCH_SERVE.json", "JSON output path for -run serve (empty = print only)")
		faultOut      = flag.String("fault-out", "BENCH_FAULT.json", "JSON output path for -run fault (empty = print only)")
		storeOut      = flag.String("store-out", "BENCH_STORE.json", "JSON output path for -run store (empty = print only)")
		updateOut     = flag.String("update-out", "BENCH_UPDATE.json", "JSON output path for -run update (empty = print only)")
		updateNodes   = flag.Int("update-nodes", 0, "graph size for -run update (0 = bench default)")
		updateBatches = flag.Int("update-storm-batches", 0, "storm update batches for -run update (0 = bench default)")
		updateOps     = flag.Int("update-storm-ops", 0, "edge ops per storm batch for -run update (0 = bench default)")

		oocOut    = flag.String("ooc-out", "BENCH_OOC.json", "JSON output path for -run ooc (empty = print only)")
		oocGraph  = flag.String("ooc-graph", "", "segmented (.dsg) graph file for -run ooc (required; build one with gengraph)")
		oocCount  = flag.Int64("ooc-count", 0, "RR sets per batch level for -run ooc (0 = bench default)")
		oocBs     = flag.String("ooc-bs", "1,64,256", "frontier-batch width sweep for -run ooc")
		oocBudget = flag.Int64("ooc-budget-mb", 0, "mmap residency budget in MiB for -run ooc (0 = CSR/16, negative = no shedding)")
		oocCold   = flag.Int64("ooc-cold", 0, "cold-start (page-cache-evicted) RR sets for -run ooc (0 = bench default, negative = skip)")

		sketchOut      = flag.String("sketch-out", "BENCH_SKETCH.json", "JSON output path for -run sketch (empty = print only)")
		sketchNodes    = flag.Int("sketch-nodes", 0, "graph size for -run sketch (0 = bench default)")
		sketchK        = flag.Int("sketch-k", 0, "bottom-k size for -run sketch (0 = service default)")
		sketchConc     = flag.Int("sketch-conc", 0, "client concurrency for -run sketch (0 = bench default)")
		sketchFastReqs = flag.Int("sketch-fast-reqs", 0, "fast-tier spread requests for -run sketch (0 = bench default)")
		sketchCertReqs = flag.Int("sketch-cert-reqs", 0, "certified spread requests for -run sketch (0 = bench default)")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	parallelism := *par
	if parallelism == 0 {
		parallelism = core.AutoParallelism
	}
	cfg := bench.Config{
		Out:           out,
		Scale:         workload.Scale(*scale),
		K:             *k,
		Eps:           *eps,
		Seed:          *seed,
		ClusterSizes:  parseInts(*clusters),
		CoreCounts:    parseInts(*cores),
		Repeats:       *repeats,
		LinkRTT:       *linkRTT,
		LinkBandwidth: *linkGbps * 1e9 / 8,
		Parallelism:   parallelism,
		Batch:         *batch,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	cfg = cfg.WithDefaults()

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			log.Fatal(err)
		}
		if err := cfg.Report(io.MultiWriter(f, os.Stdout)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	step := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	fmt.Fprintf(out, "DIIMM experiment harness — scale %.2f, k=%d, eps=%.2f, seed=%d\n",
		*scale, *k, *eps, *seed)
	step("tableIII", cfg.TableIII)
	step("tableIV", func() error { _, err := cfg.TableIV(); return err })
	step("fig5", func() error { _, err := cfg.Fig5(); return err })
	step("fig6", func() error { _, err := cfg.Fig6(); return err })
	step("fig7", func() error { _, err := cfg.Fig7(); return err })
	step("fig8", func() error { _, err := cfg.Fig8(); return err })
	step("fig9", func() error { _, err := cfg.Fig9(); return err })
	step("fig10", func() error { _, err := cfg.Fig10(); return err })
	// rrgen, select, serve, store and fault write BENCH_*.json, so they
	// only run when named.
	if want["rrgen"] {
		opt := bench.RRGenOptions{
			GraphKind: *rrgenGraph,
			Nodes:     *rrgenNodes,
			AvgDegree: *rrgenDegree,
			Subset:    *rrgenSubset,
			Count:     *rrgenCount,
			Ps:        parseInts(*rrgenPs),
			Bs:        parseInts(*rrgenBs),
		}
		if _, err := cfg.RRGen(opt, *rrgenOut); err != nil {
			log.Fatalf("rrgen: %v", err)
		}
	}
	if want["select"] {
		if _, err := cfg.Select(*selectOut); err != nil {
			log.Fatalf("select: %v", err)
		}
	}
	if want["serve"] {
		if _, err := cfg.Serve(*serveOut); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
	if want["store"] {
		if _, err := cfg.Store(*storeOut); err != nil {
			log.Fatalf("store: %v", err)
		}
	}
	if want["fault"] {
		if _, err := cfg.Fault(*faultOut); err != nil {
			log.Fatalf("fault: %v", err)
		}
	}
	if want["update"] {
		opt := bench.UpdateOptions{
			Nodes:        *updateNodes,
			StormBatches: *updateBatches,
			StormOps:     *updateOps,
		}
		if _, err := cfg.Update(*updateOut, opt); err != nil {
			log.Fatalf("update: %v", err)
		}
	}
	if want["ooc"] {
		opt := bench.OOCOptions{
			GraphPath: *oocGraph,
			Count:     *oocCount,
			Bs:        parseInts(*oocBs),
			RSSBudget: *oocBudget << 20,
			ColdSets:  *oocCold,
		}
		if _, err := cfg.OOC(opt, *oocOut); err != nil {
			log.Fatalf("ooc: %v", err)
		}
	}
	if want["sketch"] {
		opt := bench.SketchOptions{
			Nodes:        *sketchNodes,
			SketchK:      *sketchK,
			Concurrency:  *sketchConc,
			FastRequests: *sketchFastReqs,
			CertRequests: *sketchCertReqs,
		}
		if _, err := cfg.Sketch(*sketchOut, opt); err != nil {
			log.Fatalf("sketch: %v", err)
		}
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			log.Fatalf("bad machine count %q", part)
		}
		out = append(out, v)
	}
	return out
}
