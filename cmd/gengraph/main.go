// Command gengraph generates the synthetic dataset stand-ins of Table III
// (or custom graphs) and converts between the text and binary formats.
//
//	# materialize all four Table III stand-ins at the default scale
//	gengraph -datasets all -out ./data
//
//	# a custom 1M-node power-law network as a binary file
//	gengraph -nodes 1000000 -degree 20 -out ./data/big.bin
//
//	# convert a SNAP edge list to the fast binary format
//	gengraph -convert soc-LiveJournal1.txt -out lj.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"dimm/internal/graph"
	"dimm/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")

	var (
		datasets   = flag.String("datasets", "", "comma-separated Table III stand-ins to build, or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor (0.25 = tiny, 4 = full)")
		nodes      = flag.Int("nodes", 0, "custom graph: node count")
		degree     = flag.Float64("degree", 10, "custom graph: average degree")
		undirected = flag.Bool("undirected", false, "custom graph: undirected")
		kind       = flag.String("kind", "pa", "custom graph generator: pa|er|community")
		seed       = flag.Uint64("seed", 1, "generator seed")
		convert    = flag.String("convert", "", "edge-list file to convert to binary")
		out        = flag.String("out", ".", "output directory (or file for -nodes/-convert)")
		stats      = flag.String("stats", "", "print statistics for a graph file and exit")
	)
	flag.Parse()

	switch {
	case *stats != "":
		var g *graph.Graph
		var err error
		if strings.HasSuffix(*stats, ".bin") {
			g, err = graph.ReadBinaryFile(*stats)
		} else {
			g, err = graph.LoadEdgeListFile(*stats, *undirected)
		}
		if err != nil {
			log.Fatal(err)
		}
		s := graph.ComputeStats(g)
		fmt.Printf("%s:\n", *stats)
		fmt.Printf("  nodes         %d\n", s.Nodes)
		fmt.Printf("  edges         %d\n", s.Edges)
		fmt.Printf("  avg degree    %.2f\n", s.AvgDegree)
		fmt.Printf("  max out/in    %d / %d\n", s.MaxOutDegree, s.MaxInDegree)
		fmt.Printf("  out p50/90/99 %d / %d / %d\n", s.P50, s.P90, s.P99)
		fmt.Printf("  isolated      %d\n", s.Isolated)
		fmt.Printf("  symmetric     %v\n", s.Symmetric)
		fmt.Printf("  content hash  %s\n", g.ContentHash())
	case *convert != "":
		g, err := graph.LoadEdgeListFile(*convert, *undirected)
		if err != nil {
			log.Fatal(err)
		}
		if err := graph.WriteBinaryFile(*out, g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d nodes, %d edges -> %s\n", *convert, g.NumNodes(), g.NumEdges(), *out)
		fmt.Printf("  content hash %s\n", g.ContentHash())

	case *nodes > 0:
		cfg := graph.GenConfig{Nodes: *nodes, AvgDegree: *degree, Undirected: *undirected, Seed: *seed, UniformAttach: 0.15}
		var g *graph.Graph
		var err error
		switch *kind {
		case "pa":
			g, err = graph.GenPreferential(cfg)
		case "er":
			g, err = graph.GenErdosRenyi(cfg)
		case "community":
			g, err = graph.GenCommunity(graph.CommunityConfig{GenConfig: cfg, Communities: 16, InFraction: 0.9})
		default:
			log.Fatalf("unknown -kind %q (want pa|er|community)", *kind)
		}
		if err != nil {
			log.Fatal(err)
		}
		g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeAny(*out, g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d nodes, %d edges (avg degree %.1f) -> %s\n",
			g.NumNodes(), g.NumEdges(), g.AvgDegree(), *out)
		fmt.Printf("  content hash %s\n", g.ContentHash())

	case *datasets != "":
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		want := map[string]bool{}
		all := *datasets == "all"
		for _, d := range strings.Split(*datasets, ",") {
			want[strings.TrimSpace(d)] = true
		}
		for _, spec := range workload.Specs(workload.Scale(*scale)) {
			if !all && !want[spec.Name] {
				continue
			}
			g, err := spec.Build()
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*out, spec.Name+".bin")
			if err := graph.WriteBinaryFile(path, g); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %9d nodes %10d edges  avg %.1f  %s  -> %s\n",
				spec.Name, g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.ContentHash(), path)
		}

	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -datasets, -nodes or -convert (see -h)")
		os.Exit(2)
	}
}

func writeAny(path string, g *graph.Graph) error {
	if strings.HasSuffix(path, ".txt") {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return graph.WriteEdgeList(f, g)
	}
	return graph.WriteBinaryFile(path, g)
}
