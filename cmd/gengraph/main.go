// Command gengraph generates the synthetic dataset stand-ins of Table III
// (or custom graphs) and converts between the text, binary and segmented
// formats.
//
//	# materialize all four Table III stand-ins at the default scale
//	gengraph -datasets all -out ./data
//
//	# a custom 1M-node power-law network as a segmented file
//	gengraph -nodes 1000000 -degree 20 -out ./data/big.dsg
//
//	# a 100M+ edge R-MAT graph written disk-direct: the edge list and the
//	# CSR never exist in memory, so peak RSS stays bounded at any scale
//	gengraph -kind rmat -nodes 16777216 -degree 8 -out ./data/huge.dsg
//
//	# convert a SNAP edge list (streaming for .dsg outputs)
//	gengraph -convert soc-LiveJournal1.txt -out lj.dsg
//
//	# legacy single-file binary, kept for older tooling
//	gengraph -nodes 100000 -out g.bin -format v1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dimm/internal/graph"
	"dimm/internal/rss"
	"dimm/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")

	var (
		datasets   = flag.String("datasets", "", "comma-separated Table III stand-ins to build, or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor (0.25 = tiny, 4 = full)")
		nodes      = flag.Int("nodes", 0, "custom graph: node count")
		degree     = flag.Float64("degree", 10, "custom graph: average degree")
		undirected = flag.Bool("undirected", false, "custom graph: undirected")
		kind       = flag.String("kind", "pa", "custom graph generator: pa|er|community|rmat")
		seed       = flag.Uint64("seed", 1, "generator seed")
		convert    = flag.String("convert", "", "edge-list file to convert (streaming when -out is .dsg)")
		out        = flag.String("out", ".", "output directory (or file for -nodes/-convert)")
		format     = flag.String("format", "", "output format: seg (segmented .dsg, the default), v1 (legacy binary), txt; empty infers from the -out extension")
		stats      = flag.String("stats", "", "print statistics for a graph file and exit")
		sortBufMB  = flag.Int("sort-buf-mb", 0, "external-sort buffer for disk-direct builds, MiB (0 = default)")
	)
	flag.Parse()

	switch {
	case *stats != "":
		printStats(*stats, *undirected)

	case *convert != "":
		start := time.Now()
		if outFormat(*format, *out) == "seg" {
			st, err := graph.ConvertEdgeListToSegmented(*convert, *out, *undirected, graph.SegmentBuildOptions{
				Weights: graph.WeightedCascade, HasWeights: true, SortBufBytes: *sortBufMB << 20,
			})
			if err != nil {
				log.Fatal(err)
			}
			info, err := graph.StatSegmented(*out)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: %d nodes, %d edges -> %s (%d sort runs, %s spilled)\n",
				*convert, st.Nodes, st.Edges, *out, st.Runs, fmtBytes(st.SpillBytes))
			report(st.Edges, start, info.CSRBytes)
			break
		}
		g, err := graph.LoadEdgeListFile(*convert, *undirected)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeAny(*out, outFormat(*format, *out), g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d nodes, %d edges -> %s\n", *convert, g.NumNodes(), g.NumEdges(), *out)
		fmt.Printf("  content hash %s\n", g.ContentHash())
		report(g.NumEdges(), start, g.CSRBytes())

	case *nodes > 0:
		cfg := graph.GenConfig{Nodes: *nodes, AvgDegree: *degree, Undirected: *undirected, Seed: *seed, UniformAttach: 0.15}
		start := time.Now()
		if *kind == "rmat" && outFormat(*format, *out) == "seg" {
			// Disk-direct: the R-MAT stream feeds the external sorter and
			// the segment writer; nothing edge-sized is ever heap-resident.
			st, err := graph.BuildSegmented(*out, *nodes, func(emit func(from, to uint32, prob float32) error) error {
				return graph.GenRMATStream(graph.RMATConfig{GenConfig: cfg},
					func(int, int64) error { return nil },
					func(u, v uint32) error { return emit(u, v, 1) })
			}, graph.SegmentBuildOptions{
				Weights: graph.WeightedCascade, HasWeights: true, SortBufBytes: *sortBufMB << 20,
			})
			if err != nil {
				log.Fatal(err)
			}
			info, err := graph.StatSegmented(*out)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("generated %d nodes, %d edges disk-direct -> %s (%s file, %d sort runs, %s spilled)\n",
				st.Nodes, st.Edges, *out, fmtBytes(st.FileBytes), st.Runs, fmtBytes(st.SpillBytes))
			report(st.Edges, start, info.CSRBytes)
			break
		}
		var g *graph.Graph
		var err error
		switch *kind {
		case "pa":
			g, err = graph.GenPreferential(cfg)
		case "er":
			g, err = graph.GenErdosRenyi(cfg)
		case "community":
			g, err = graph.GenCommunity(graph.CommunityConfig{GenConfig: cfg, Communities: 16, InFraction: 0.9})
		case "rmat":
			g, err = graph.GenRMAT(graph.RMATConfig{GenConfig: cfg})
		default:
			log.Fatalf("unknown -kind %q (want pa|er|community|rmat)", *kind)
		}
		if err != nil {
			log.Fatal(err)
		}
		g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeAny(*out, outFormat(*format, *out), g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d nodes, %d edges (avg degree %.1f) -> %s\n",
			g.NumNodes(), g.NumEdges(), g.AvgDegree(), *out)
		fmt.Printf("  content hash %s\n", g.ContentHash())
		report(g.NumEdges(), start, g.CSRBytes())

	case *datasets != "":
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		want := map[string]bool{}
		all := *datasets == "all"
		for _, d := range strings.Split(*datasets, ",") {
			want[strings.TrimSpace(d)] = true
		}
		for _, spec := range workload.Specs(workload.Scale(*scale)) {
			if !all && !want[spec.Name] {
				continue
			}
			g, err := spec.Build()
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*out, spec.Name+".bin")
			if err := graph.WriteBinaryFile(path, g); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %9d nodes %10d edges  avg %.1f  %s  -> %s\n",
				spec.Name, g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.ContentHash(), path)
		}

	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -datasets, -nodes or -convert (see -h)")
		os.Exit(2)
	}
}

// outFormat resolves the -format flag: explicit wins, otherwise the
// output extension decides, with segmented as the modern default.
func outFormat(format, path string) string {
	switch format {
	case "seg", "v1", "txt":
		return format
	case "":
	default:
		log.Fatalf("unknown -format %q (want seg|v1|txt)", format)
	}
	switch {
	case strings.HasSuffix(path, ".bin"):
		return "v1"
	case strings.HasSuffix(path, ".txt"):
		return "txt"
	default:
		return "seg"
	}
}

func writeAny(path, format string, g *graph.Graph) error {
	switch format {
	case "txt":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return graph.WriteEdgeList(f, g)
	case "v1":
		return graph.WriteBinaryFile(path, g)
	default:
		return graph.WriteSegmentedFile(path, g, graph.WeightedCascade.String())
	}
}

// report prints the throughput and memory line every generating mode
// ends with: edges/sec over the whole build, kernel-accounted peak RSS,
// and that peak as a fraction of the CSR it produced.
func report(edges int64, start time.Time, csrBytes int64) {
	el := time.Since(start)
	eps := float64(edges) / el.Seconds()
	peak := rss.Peak()
	fmt.Printf("  %s in %v (%.0f edges/sec)\n", fmtCount(edges, "edges"), el.Round(time.Millisecond), eps)
	if peak > 0 && csrBytes > 0 {
		fmt.Printf("  peak RSS %s (%.1f%% of the %s CSR)\n", fmtBytes(peak), 100*float64(peak)/float64(csrBytes), fmtBytes(csrBytes))
	} else if peak > 0 {
		fmt.Printf("  peak RSS %s\n", fmtBytes(peak))
	}
}

func printStats(path string, undirected bool) {
	if strings.HasSuffix(path, ".dsg") {
		info, err := graph.StatSegmented(path)
		if err != nil {
			log.Fatal(err)
		}
		g, err := graph.OpenSegmented(path, graph.BackendMmap)
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		fmt.Printf("%s (segmented):\n", path)
		fmt.Printf("  nodes         %d\n", info.Nodes)
		fmt.Printf("  edges         %d\n", info.Edges)
		fmt.Printf("  avg degree    %.2f\n", g.AvgDegree())
		fmt.Printf("  weights       %s (uniform-in %v)\n", info.WeightTag, info.UniformIn)
		fmt.Printf("  file          %s (%s CSR payload, %d CRC blocks)\n", fmtBytes(info.FileBytes), fmtBytes(info.CSRBytes), info.Blocks)
		// The hash comes from the header trailers: no payload read.
		fmt.Printf("  content hash  %s\n", g.ContentHash())
		return
	}
	var g *graph.Graph
	var err error
	if strings.HasSuffix(path, ".bin") {
		g, err = graph.ReadBinaryFile(path)
	} else {
		g, err = graph.LoadEdgeListFile(path, undirected)
	}
	if err != nil {
		log.Fatal(err)
	}
	s := graph.ComputeStats(g)
	fmt.Printf("%s:\n", path)
	fmt.Printf("  nodes         %d\n", s.Nodes)
	fmt.Printf("  edges         %d\n", s.Edges)
	fmt.Printf("  avg degree    %.2f\n", s.AvgDegree)
	fmt.Printf("  max out/in    %d / %d\n", s.MaxOutDegree, s.MaxInDegree)
	fmt.Printf("  out p50/90/99 %d / %d / %d\n", s.P50, s.P90, s.P99)
	fmt.Printf("  isolated      %d\n", s.Isolated)
	fmt.Printf("  symmetric     %v\n", s.Symmetric)
	fmt.Printf("  content hash  %s\n", g.ContentHash())
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func fmtCount(v int64, unit string) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fB %s", float64(v)/1e9, unit)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM %s", float64(v)/1e6, unit)
	case v >= 1_000:
		return fmt.Sprintf("%.1fK %s", float64(v)/1e3, unit)
	default:
		return fmt.Sprintf("%d %s", v, unit)
	}
}
