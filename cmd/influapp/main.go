// Command influapp runs the influence-based applications built on the
// distributed substrate: targeted influence maximization, budgeted
// influence maximization, and seed minimization.
//
//	# reach a specific audience: nodes listed in targets.txt get weight 1
//	influapp -graph g.bin -mode targeted -targets targets.txt -k 20
//
//	# degree-priced influencers under a budget
//	influapp -graph g.bin -mode budgeted -budget 100 -cost-model degree
//
//	# smallest seed set reaching 5% of the network
//	influapp -graph g.bin -mode seedmin -goal-frac 0.05
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dimm"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("influapp: ")

	var (
		graphPath   = flag.String("graph", "", "edge-list (.txt), binary (.bin) or segmented (.dsg) graph file")
		backendName = flag.String("graph-backend", "mem", "graph materialization: mem (heap) | mmap (demand-paged, .dsg files only)")
		undirected  = flag.Bool("undirected", false, "treat the edge list as undirected")
		synthNodes = flag.Int("synth-nodes", 0, "generate a synthetic network instead of loading one")
		synthDeg   = flag.Float64("synth-degree", 10, "average degree for the synthetic network")
		mode       = flag.String("mode", "targeted", "application: targeted|budgeted|seedmin")
		modelName  = flag.String("model", "ic", "diffusion model: ic|lt")
		machines   = flag.Int("machines", 4, "number of machines")
		eps        = flag.Float64("eps", 0.2, "sampling epsilon")
		seed       = flag.Uint64("seed", 1, "random seed")
		k          = flag.Int("k", 20, "targeted: number of seeds")
		targets    = flag.String("targets", "", "targeted: file of node ids (one per line) with weight 1; empty = first half of nodes")
		budget     = flag.Float64("budget", 50, "budgeted: total seeding budget")
		costModel  = flag.String("cost-model", "degree", "budgeted: unit|degree")
		goalFrac   = flag.Float64("goal-frac", 0.05, "seedmin: fraction of the network to reach")
		maxSeeds   = flag.Int("max-seeds", 500, "seedmin: seed cap")
	)
	flag.Parse()

	model, err := diffusion.ParseModel(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	g, err := loadGraph(*graphPath, *backendName, *undirected, *synthNodes, *synthDeg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumNodes()
	fmt.Printf("graph: %d nodes, %d edges\n", n, g.NumEdges())
	cfg := dimm.AppConfig{Machines: *machines, Model: model, Eps: *eps, Seed: *seed}

	switch *mode {
	case "targeted":
		weights := make([]float64, n)
		if *targets != "" {
			ids, err := readIDs(*targets, n)
			if err != nil {
				log.Fatal(err)
			}
			for _, id := range ids {
				weights[id] = 1
			}
			fmt.Printf("targets: %d nodes from %s\n", len(ids), *targets)
		} else {
			for v := 0; v < n/2; v++ {
				weights[v] = 1
			}
			fmt.Printf("targets: first %d nodes (no -targets file given)\n", n/2)
		}
		res, err := dimm.MaximizeTargetedInfluence(g, weights, *k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seeds: %v\n", res.Seeds)
		fmt.Printf("weighted spread: %.1f targeted users (θ=%d, wall %.2fs)\n",
			res.EstSpread, res.Theta, res.Wall.Seconds())

	case "budgeted":
		costs := make([]float64, n)
		switch *costModel {
		case "unit":
			for v := range costs {
				costs[v] = 1
			}
		case "degree":
			for v := range costs {
				costs[v] = 1 + float64(g.OutDegree(uint32(v)))/10
			}
		default:
			log.Fatalf("unknown -cost-model %q", *costModel)
		}
		res, err := dimm.MaximizeBudgetedInfluence(g, costs, *budget, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var spent float64
		for _, s := range res.Seeds {
			spent += costs[s]
		}
		fmt.Printf("bought %d seeds for %.1f of %.1f budget\n", len(res.Seeds), spent, *budget)
		fmt.Printf("estimated spread: %.1f users (θ=%d, wall %.2fs)\n",
			res.EstSpread, res.Theta, res.Wall.Seconds())

	case "seedmin":
		goal := *goalFrac * float64(n)
		res, err := dimm.MinimizeSeeds(g, goal, *maxSeeds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		status := "REACHED"
		if !res.Reached {
			status = "NOT reached (raise -max-seeds)"
		}
		fmt.Printf("goal %.0f users (%.1f%%): %s with %d seeds, estimated spread %.1f (θ=%d, wall %.2fs)\n",
			goal, 100**goalFrac, status, len(res.Seeds), res.EstSpread, res.Theta, res.Wall.Seconds())

	default:
		log.Fatalf("unknown -mode %q (want targeted|budgeted|seedmin)", *mode)
	}
}

func loadGraph(path, backendName string, undirected bool, synthNodes int, synthDeg float64, seed uint64) (*graph.Graph, error) {
	backend, err := graph.ParseBackend(backendName)
	if err != nil {
		return nil, err
	}
	if synthNodes > 0 {
		g, err := graph.GenPreferential(graph.GenConfig{Nodes: synthNodes, AvgDegree: synthDeg, Seed: seed, UniformAttach: 0.15})
		if err != nil {
			return nil, err
		}
		return graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	}
	if path == "" {
		return nil, fmt.Errorf("provide -graph or -synth-nodes (try -h)")
	}
	// Text edge lists carry no probabilities: apply the paper's WC
	// setting. The binary and segmented formats store their weights.
	weights := "wc"
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".dsg") {
		weights = "file"
	}
	return graph.LoadAny(path, graph.LoadOptions{Undirected: undirected, Weights: weights, Backend: backend})
}

func readIDs(path string, n int) ([]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ids []uint32
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("bad node id %q (graph has %d nodes)", line, n)
		}
		ids = append(ids, uint32(v))
	}
	return ids, sc.Err()
}
