// Command maxcover runs element-distributed maximum coverage (NEWGREEDI)
// on the neighbor-set instance of a graph, optionally comparing against
// the GREEDI composable-core-set baseline and the sequential greedy —
// the §IV-C experiment of the paper as a CLI.
//
//	maxcover -graph g.bin -k 50 -machines 8 -compare
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dimm/internal/core"
	"dimm/internal/coverage"
	"dimm/internal/graph"
	"dimm/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maxcover: ")

	var (
		graphPath   = flag.String("graph", "", "edge-list (.txt), binary (.bin) or segmented (.dsg) graph file")
		backendName = flag.String("graph-backend", "mem", "graph materialization: mem (heap) | mmap (demand-paged, .dsg files only)")
		undirected  = flag.Bool("undirected", false, "treat the edge list as undirected")
		synthNodes = flag.Int("synth-nodes", 0, "generate a synthetic graph instead of loading one")
		synthDeg   = flag.Float64("synth-degree", 10, "average degree for the synthetic graph")
		k          = flag.Int("k", 50, "number of sets (users) to pick")
		machines   = flag.Int("machines", 4, "number of machines for NEWGREEDI")
		compare    = flag.Bool("compare", false, "also run GREEDI and the sequential greedy")
		seed       = flag.Uint64("seed", 1, "seed for -synth-nodes")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *synthNodes > 0:
		g, err = graph.GenPreferential(graph.GenConfig{Nodes: *synthNodes, AvgDegree: *synthDeg, Seed: *seed, UniformAttach: 0.15})
	case *graphPath == "":
		log.Fatal("provide -graph or -synth-nodes (try -h)")
	default:
		backend, berr := graph.ParseBackend(*backendName)
		if berr != nil {
			log.Fatal(berr)
		}
		// Coverage uses topology only; keep whatever weights are stored.
		g, err = graph.LoadAny(*graphPath, graph.LoadOptions{Undirected: *undirected, Weights: "file", Backend: backend})
	}
	if err != nil {
		log.Fatal(err)
	}
	sys, err := workload.NeighborSetSystem(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d sets over %d elements, total size %d\n",
		sys.NumSets(), sys.NumElements(), sys.TotalSize())

	res, err := core.NewGreeDiMaxCoverage(sys, *k, *machines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NEWGREEDI (ℓ=%d): coverage %d (%.2f%% of universe), wall %.3fs, critical path %.3fs, comm %.3fs, traffic %d bytes\n",
		*machines, res.Coverage, 100*float64(res.Coverage)/float64(sys.NumElements()),
		res.Wall.Seconds(), res.Metrics.CriticalPath().Seconds(), res.Metrics.Comm.Seconds(),
		res.Metrics.BytesSent+res.Metrics.BytesReceived)

	if *compare {
		start := time.Now()
		seq, err := sys.SequentialGreedy(*k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sequential greedy: coverage %d, wall %.3fs\n", seq.Coverage, time.Since(start).Seconds())
		if seq.Coverage != res.Coverage {
			fmt.Println("WARNING: NEWGREEDI diverged from the centralized greedy (this should never happen)")
		} else {
			fmt.Println("NEWGREEDI coverage equals the centralized greedy exactly (Lemma 2)")
		}
		start = time.Now()
		gd, err := coverage.GreeDi(sys, *k, *machines)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GREEDI (κ=k, ℓ=%d): coverage %d (ratio %.3f vs NEWGREEDI), wall %.3fs\n",
			*machines, gd.Coverage, float64(gd.Coverage)/float64(res.Coverage), time.Since(start).Seconds())
	}
}
