// Package dimm is a Go implementation of DIIMM — distributed influence
// maximization for large-scale online social networks (Tang, Tang, Zhu,
// Han; ICDE 2022) — together with everything it stands on: reverse
// influence sampling under the IC and LT diffusion models, the IMM
// framework with Chen's corrected parameterization, NEWGREEDI
// element-distributed maximum coverage with the exact (1−1/e) guarantee,
// the GREEDI composable-core-set baseline, and a master–worker cluster
// substrate with in-process and TCP transports.
//
// The quickest way in:
//
//	g, _ := dimm.LoadGraph("soc-LiveJournal1.txt", false)
//	g, _ = dimm.ApplyWeightedCascade(g)
//	res, _ := dimm.MaximizeInfluence(g, dimm.Options{
//	    K: 50, Eps: 0.1, Machines: 8, Model: dimm.IC,
//	})
//	fmt.Println(res.Seeds, res.EstSpread)
//
// The returned seed set is a (1 − 1/e − ε)-approximation of the optimal
// influence spread with probability at least 1 − δ, regardless of how
// many machines participate.
package dimm

import (
	"fmt"

	"dimm/internal/core"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/workload"
)

// Model selects the diffusion model.
type Model = diffusion.Model

// Diffusion models.
const (
	// IC is the independent cascade model.
	IC = diffusion.IC
	// LT is the linear threshold model.
	LT = diffusion.LT
)

// Graph is a weighted directed social graph in compact CSR form.
type Graph = graph.Graph

// Options configures MaximizeInfluence. Zero values take the paper's
// defaults: K=50, Eps=0.1, Delta=1/n, Machines=1, Parallelism=1
// (sequential per-worker sampling, bit-identical across runs). Set
// Parallelism to AutoParallelism to fan each worker's RR-set generation
// across GOMAXPROCS/Machines goroutines.
type Options = core.Options

// AutoParallelism, as Options.Parallelism, sizes each worker's sampling
// shard count to GOMAXPROCS/Machines (min 1). Seed sets stay a
// deterministic function of (Seed, Machines, resolved Parallelism).
const AutoParallelism = core.AutoParallelism

// Result reports a MaximizeInfluence run: the seed set, its estimated
// spread, θ, and the cluster's per-phase time/traffic accounting.
type Result = core.Result

// SetSystem is a generic maximum-coverage instance.
type SetSystem = coverage.SetSystem

// MaxCoverResult reports a MaxCoverage run.
type MaxCoverResult = core.MaxCoverResult

// LoadGraph reads a SNAP-style edge list ("u v" or "u v p" lines, '#'
// comments). Set undirected to materialize both directions of each edge.
// Follow with ApplyWeightedCascade (or another weight helper) if the file
// carries no probabilities.
func LoadGraph(path string, undirected bool) (*Graph, error) {
	return graph.LoadEdgeListFile(path, undirected)
}

// LoadGraphBinary reads a graph written by SaveGraphBinary.
func LoadGraphBinary(path string) (*Graph, error) {
	return graph.ReadBinaryFile(path)
}

// SaveGraphBinary writes the graph in the fast binary format.
func SaveGraphBinary(path string, g *Graph) error {
	return graph.WriteBinaryFile(path, g)
}

// GraphBackend selects how LoadGraphFile materializes a segmented graph:
// heap slices or a demand-paged read-only mapping.
type GraphBackend = graph.Backend

// Graph materialization backends.
const (
	// MemBackend loads the graph into heap memory (every format).
	MemBackend = graph.BackendMem
	// MmapBackend maps a segmented (.dsg) file and serves the CSR
	// straight from the page cache, so graphs larger than RAM sample at
	// full speed without ever being heap-resident. Mapped graphs are
	// frozen (no mutation) and must be released with Graph.Close.
	MmapBackend = graph.BackendMmap
)

// LoadGraphFile loads a graph from any supported format, routed by
// extension: ".dsg" segmented (the out-of-core format; the only one
// MmapBackend accepts), ".bin" legacy binary, anything else a SNAP-style
// text edge list. weights is "wc", "uniform", "trivalency", or "file" to
// keep the stored probabilities.
func LoadGraphFile(path string, backend GraphBackend, weights string, undirected bool) (*Graph, error) {
	return graph.LoadAny(path, graph.LoadOptions{
		Undirected: undirected, Weights: weights, Backend: backend,
	})
}

// SaveGraphSegmented writes the graph in the segmented out-of-core
// format (.dsg): page-aligned CSR sections with per-block CRC32C
// trailers, openable with either backend. weightTag names the weight
// model the graph carries (e.g. "wc"); LoadGraphFile uses it to decide
// whether stored probabilities satisfy a weights request.
func SaveGraphSegmented(path string, g *Graph, weightTag string) error {
	return graph.WriteSegmentedFile(path, g, weightTag)
}

// ApplyWeightedCascade reassigns every edge probability to 1/indeg(head),
// the weighted-cascade setting used throughout the paper's evaluation.
func ApplyWeightedCascade(g *Graph) (*Graph, error) {
	return graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
}

// ApplyUniformWeights sets every edge probability to p.
func ApplyUniformWeights(g *Graph, p float32) (*Graph, error) {
	return graph.AssignWeights(g, graph.UniformWeight, p, 0)
}

// ApplyTrivalencyWeights draws each edge probability uniformly from
// {0.1, 0.01, 0.001}.
func ApplyTrivalencyWeights(g *Graph, seed uint64) (*Graph, error) {
	return graph.AssignWeights(g, graph.Trivalency, 0, seed)
}

// SocialNetworkConfig configures GenerateSocialNetwork.
type SocialNetworkConfig struct {
	Nodes      int
	AvgDegree  float64
	Undirected bool
	Seed       uint64
}

// GenerateSocialNetwork builds a synthetic OSN with a heavy-tailed degree
// distribution (preferential attachment) and weighted-cascade edge
// probabilities — a stand-in for real follower graphs in examples, tests
// and benchmarks.
func GenerateSocialNetwork(cfg SocialNetworkConfig) (*Graph, error) {
	g, err := graph.GenPreferential(graph.GenConfig{
		Nodes:         cfg.Nodes,
		AvgDegree:     cfg.AvgDegree,
		Undirected:    cfg.Undirected,
		Seed:          cfg.Seed,
		UniformAttach: 0.15,
	})
	if err != nil {
		return nil, err
	}
	return graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
}

// MaximizeInfluence runs DIIMM over opts.Machines in-process workers and
// returns a (1 − 1/e − ε)-approximate seed set with probability ≥ 1 − δ.
func MaximizeInfluence(g *Graph, opts Options) (*Result, error) {
	return core.RunDIIMM(g, opts)
}

// EstimateSpread estimates σ(seeds) by forward Monte-Carlo simulation
// with the given number of rounds, returning the mean and its standard
// error. It is the standard way to validate a seed set independently of
// the RR sets that produced it.
func EstimateSpread(g *Graph, seeds []uint32, model Model, rounds int, seed uint64) (mean, stderr float64) {
	sim := diffusion.NewSimulator(g, seed)
	return sim.Estimate(seeds, model, rounds)
}

// NewSetSystem builds a maximum-coverage instance from explicit per-set
// element lists over a universe of numElements elements.
func NewSetSystem(numElements int, sets [][]uint32) (*SetSystem, error) {
	return coverage.NewSetSystem(numElements, sets)
}

// NeighborSetSystem maps a graph to the paper's §IV-C maximum-coverage
// instance: pick k nodes whose out-neighbor union is largest.
func NeighborSetSystem(g *Graph) (*SetSystem, error) {
	return workload.NeighborSetSystem(g)
}

// MaxCoverage runs NEWGREEDI element-distributed maximum coverage over
// machines in-process workers. The result's coverage is exactly the
// centralized greedy's (the paper's Lemma 2), i.e. a (1−1/e)-approximation.
func MaxCoverage(sys *SetSystem, k, machines int) (*MaxCoverResult, error) {
	if sys == nil {
		return nil, fmt.Errorf("dimm: nil set system")
	}
	return core.NewGreeDiMaxCoverage(sys, k, machines)
}
