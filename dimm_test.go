package dimm

import (
	"math"
	"path/filepath"
	"testing"
)

func testNetwork(t testing.TB) *Graph {
	t.Helper()
	g, err := GenerateSocialNetwork(SocialNetworkConfig{Nodes: 400, AvgDegree: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeEndToEnd(t *testing.T) {
	g := testNetwork(t)
	res, err := MaximizeInfluence(g, Options{K: 5, Eps: 0.4, Delta: 0.05, Machines: 4, Model: IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	// The estimated spread from RR sets and an independent Monte-Carlo
	// forward estimate must agree within the approximation band.
	mc, se := EstimateSpread(g, res.Seeds, IC, 20000, 99)
	if math.Abs(mc-res.EstSpread) > 0.15*res.EstSpread+5*se {
		t.Fatalf("RIS estimate %v vs Monte-Carlo %v ± %v", res.EstSpread, mc, se)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := testNetwork(t)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveGraphBinary(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGraphBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestFacadeWeightHelpers(t *testing.T) {
	g := testNetwork(t)
	u, err := ApplyUniformWeights(g, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	u.Edges(func(_, _ uint32, p float32) {
		if p != 0.02 {
			t.Fatalf("uniform weight %v", p)
		}
	})
	tri, err := ApplyTrivalencyWeights(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	tri.Edges(func(_, _ uint32, p float32) {
		if p != 0.1 && p != 0.01 && p != 0.001 {
			t.Fatalf("trivalency weight %v", p)
		}
	})
	wc, err := ApplyWeightedCascade(g)
	if err != nil {
		t.Fatal(err)
	}
	if !wc.UniformIn() {
		t.Fatal("WC weights should be per-node uniform")
	}
}

func TestFacadeMaxCoverage(t *testing.T) {
	g := testNetwork(t)
	sys, err := NeighborSetSystem(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxCoverage(sys, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 || res.Coverage <= 0 {
		t.Fatalf("bad result: %d seeds, coverage %d", len(res.Seeds), res.Coverage)
	}
	if _, err := MaxCoverage(nil, 1, 1); err == nil {
		t.Fatal("nil system accepted")
	}
}

func TestFacadeSetSystem(t *testing.T) {
	sys, err := NewSetSystem(3, [][]uint32{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxCoverage(sys, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 3 {
		t.Fatalf("coverage %d, want 3", res.Coverage)
	}
}

func TestFacadeLTModel(t *testing.T) {
	g := testNetwork(t)
	res, err := MaximizeInfluence(g, Options{K: 3, Eps: 0.5, Delta: 0.05, Machines: 2, Model: LT, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatal("LT run failed")
	}
}
