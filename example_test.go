package dimm_test

import (
	"fmt"

	"dimm"
	"dimm/internal/graph"
)

// ExampleMaximizeInfluence runs DIIMM on the paper's Fig. 1 network and
// recovers v1 as the optimal single seed.
func ExampleMaximizeInfluence() {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 1.0) // v1 -> v2
	_ = b.AddEdge(0, 2, 1.0) // v1 -> v3
	_ = b.AddEdge(0, 3, 0.4) // v1 -> v4
	_ = b.AddEdge(1, 3, 0.3) // v2 -> v4
	_ = b.AddEdge(2, 3, 0.2) // v3 -> v4
	g := b.Build()

	res, err := dimm.MaximizeInfluence(g, dimm.Options{
		K: 1, Eps: 0.2, Delta: 0.01, Machines: 2, Model: dimm.IC, Seed: 42,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("best seed: v%d\n", res.Seeds[0]+1)
	// Output:
	// best seed: v1
}

// ExampleMaxCoverage selects two sets that cover the whole universe.
func ExampleMaxCoverage() {
	sys, err := dimm.NewSetSystem(6, [][]uint32{
		{0, 1, 2},
		{2, 3},
		{3, 4, 5},
		{0},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := dimm.MaxCoverage(sys, 2, 3) // k=2 over 3 machines
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("covered %d of 6 elements\n", res.Coverage)
	// Output:
	// covered 6 of 6 elements
}

// ExampleEstimateSpread cross-checks a seed set by forward simulation.
func ExampleEstimateSpread() {
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1, 1.0)
	_ = b.AddEdge(1, 2, 1.0)
	g := b.Build()
	mean, _ := dimm.EstimateSpread(g, []uint32{0}, dimm.IC, 1000, 7)
	fmt.Printf("deterministic chain spread: %.0f\n", mean)
	// Output:
	// deterministic chain spread: 3
}
