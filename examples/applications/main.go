// Influence-based applications beyond plain influence maximization — the
// extensions the paper's conclusion lists as direct beneficiaries of its
// distributed techniques, all running over the same cluster substrate:
//
//   - targeted IM:   maximize influence over a weighted target audience
//
//   - budgeted IM:   maximize influence under per-influencer pricing
//
//   - seed minimize: cheapest seed set reaching a reach goal
//
//   - OPIM-C:        adaptive sampling with an online certificate
//
//     go run ./examples/applications
package main

import (
	"fmt"
	"log"

	"dimm"
)

func main() {
	log.SetFlags(0)

	g, err := dimm.GenerateSocialNetwork(dimm.SocialNetworkConfig{
		Nodes: 20000, AvgDegree: 15, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumNodes()
	cfg := dimm.AppConfig{Machines: 4, Model: dimm.IC, Eps: 0.3, Seed: 5}

	// Targeted: only the first quarter of users matter (say, a region).
	weights := make([]float64, n)
	for v := 0; v < n/4; v++ {
		weights[v] = 1
	}
	tgt, err := dimm.MaximizeTargetedInfluence(g, weights, 20, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("targeted IM:   20 seeds reach %.0f of the %d targeted users\n",
		tgt.EstSpread, n/4)

	// Budgeted: influencer price grows with follower count.
	costs := make([]float64, n)
	for v := 0; v < n; v++ {
		costs[v] = 1 + float64(g.OutDegree(uint32(v)))/10
	}
	bud, err := dimm.MaximizeBudgetedInfluence(g, costs, 50, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var spent float64
	for _, s := range bud.Seeds {
		spent += costs[s]
	}
	fmt.Printf("budgeted IM:   budget 50 buys %d seeds (spent %.1f) reaching %.0f users\n",
		len(bud.Seeds), spent, bud.EstSpread)

	// Seed minimization: how many seeds to reach 10% of the network?
	goal := float64(n) / 10
	min, err := dimm.MinimizeSeeds(g, goal, 200, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seed minimize: %.0f-user goal needs %d seeds (reached: %v, est %.0f)\n",
		goal, len(min.Seeds), min.Reached, min.EstSpread)

	// OPIM-C: certify a (1-1/e-ε) solution with adaptive sampling.
	op, err := dimm.MaximizeInfluenceOPIMC(g, dimm.Options{
		K: 20, Eps: 0.3, Machines: 4, Model: dimm.IC, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPIM-C:        20 seeds, spread ≥ %.0f certified vs OPT ≤ %.0f (ratio %.3f) using %d×2 RR sets\n",
		op.SpreadLower, op.OptUpper, op.Ratio, op.Theta)
}
