// Distributed deployment over real TCP sockets.
//
// Spins up four worker processes' worth of servers on loopback (in-process
// goroutines serving real sockets — the exact code path cmd/dimmd runs
// across hosts), dials them as a cluster, and runs DIIMM end to end. It
// then repeats the run over the in-process transport and shows that both
// transports return the identical seed set — the algorithm's output is a
// pure function of the seeds and machine count, never of the transport.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"

	"dimm"
	"dimm/internal/cluster"
	"dimm/internal/core"
)

func main() {
	log.SetFlags(0)

	g, err := dimm.GenerateSocialNetwork(dimm.SocialNetworkConfig{
		Nodes: 20000, AvgDegree: 15, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	const machines = 4
	const baseSeed = 7

	// Start one TCP worker per "machine" and dial them, exactly as a
	// master would dial cmd/dimmd instances on separate hosts.
	conns := make([]cluster.Conn, machines)
	for i := 0; i < machines; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer lis.Close()
		seed := cluster.DeriveSeed(baseSeed, i)
		go func() {
			_ = cluster.Serve(lis, func() (*cluster.Worker, error) {
				return cluster.NewWorker(cluster.WorkerConfig{Graph: g, Model: dimm.IC, Seed: seed})
			})
		}()
		if conns[i], err = cluster.DialWorker(lis.Addr().String()); err != nil {
			log.Fatal(err)
		}
		defer conns[i].Close()
		fmt.Printf("worker %d listening on %s\n", i, lis.Addr())
	}

	cl, err := cluster.New(conns, g.NumNodes())
	if err != nil {
		log.Fatal(err)
	}
	opt := core.Options{K: 20, Eps: 0.3, Machines: machines, Model: dimm.IC, Seed: baseSeed}
	tcpRes, err := core.RunDIIMMOnCluster(g.NumNodes(), cl, opt)
	if err != nil {
		log.Fatal(err)
	}
	m := tcpRes.Metrics
	fmt.Printf("\nTCP cluster run: spread %.0f with %d RR sets\n", tcpRes.EstSpread, tcpRes.Theta)
	fmt.Printf("  modeled %d-machine wall: %.3fs (gen %.3fs + compute %.3fs + comm %.3fs)\n",
		machines, m.CriticalPath().Seconds(), m.GenCritical.Seconds(),
		(m.SelCritical + m.MasterCompute).Seconds(), m.Comm.Seconds())
	fmt.Printf("  traffic: %d bytes over %d round trips\n", m.BytesSent+m.BytesReceived, m.Rounds)

	// The same run over in-process workers.
	localRes, err := dimm.MaximizeInfluence(g, dimm.Options(opt))
	if err != nil {
		log.Fatal(err)
	}
	same := len(localRes.Seeds) == len(tcpRes.Seeds)
	for i := range tcpRes.Seeds {
		same = same && tcpRes.Seeds[i] == localRes.Seeds[i]
	}
	fmt.Printf("\nin-process run returned the identical seed set: %v\n", same)
	if !same {
		log.Fatal("transports disagreed — this is a bug")
	}
}
