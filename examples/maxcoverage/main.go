// Maximum coverage: NEWGREEDI vs the set-distributed GREEDI baseline.
//
// Reproduces the §IV-C scenario interactively: pick k users whose
// combined neighborhoods cover the most users. NEWGREEDI returns the
// centralized greedy's coverage exactly at every machine count; GREEDI's
// quality decays as the machines multiply — the effect behind Fig. 10(c).
//
//	go run ./examples/maxcoverage
package main

import (
	"fmt"
	"log"

	"dimm"
	"dimm/internal/coverage"
)

func main() {
	log.SetFlags(0)

	g, err := dimm.GenerateSocialNetwork(dimm.SocialNetworkConfig{
		Nodes: 30000, AvgDegree: 12, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := dimm.NeighborSetSystem(g)
	if err != nil {
		log.Fatal(err)
	}
	const k = 50
	fmt.Printf("instance: pick %d of %d users to cover the most of %d users\n\n",
		k, sys.NumSets(), sys.NumElements())

	seq, err := sys.SequentialGreedy(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %12s %8s\n", "machines", "NEWGREEDI", "GREEDI", "ratio")
	for _, machines := range []int{1, 2, 4, 8, 16, 32} {
		ng, err := dimm.MaxCoverage(sys, k, machines)
		if err != nil {
			log.Fatal(err)
		}
		gd, err := coverage.GreeDi(sys, k, machines)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if ng.Coverage != seq.Coverage {
			marker = "  <-- LEMMA 2 VIOLATION (bug!)"
		}
		fmt.Printf("%-10d %12d %12d %8.3f%s\n",
			machines, ng.Coverage, gd.Coverage,
			float64(gd.Coverage)/float64(ng.Coverage), marker)
	}
	fmt.Printf("\nsequential greedy coverage: %d — NEWGREEDI matches it at every ℓ,\n", seq.Coverage)
	fmt.Println("while GREEDI trades coverage away as the partition count grows.")
}
