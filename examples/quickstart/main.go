// Quickstart: the paper's running example (Fig. 1) end to end.
//
// Builds the 4-node graph from the paper, reproduces Example 1's exact
// influence spreads (3.664 under IC, 3.9 under LT), then runs the full
// DIIMM pipeline to pick the best seed and verifies it by simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dimm"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func main() {
	log.SetFlags(0)

	// The social network of Fig. 1: v1 -> v2 (1.0), v1 -> v3 (1.0),
	// v1 -> v4 (0.4), v2 -> v4 (0.3), v3 -> v4 (0.2). Ids are 0-based.
	b := graph.NewBuilder(4)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, Prob: 1.0},
		{From: 0, To: 2, Prob: 1.0},
		{From: 0, To: 3, Prob: 0.4},
		{From: 1, To: 3, Prob: 0.3},
		{From: 2, To: 3, Prob: 0.2},
	} {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	// Example 1: exact influence spread of {v1} by world enumeration.
	for _, model := range []dimm.Model{dimm.IC, dimm.LT} {
		exact, err := diffusion.ExactSpread(g, []uint32{0}, model)
		if err != nil {
			log.Fatal(err)
		}
		mc, se := dimm.EstimateSpread(g, []uint32{0}, model, 100000, 7)
		fmt.Printf("%v model: sigma({v1}) exact = %.4f, Monte-Carlo = %.4f ± %.4f\n",
			model, exact, mc, se)
	}

	// Full pipeline: DIIMM across 2 machines picks the k=1 seed set.
	res, err := dimm.MaximizeInfluence(g, dimm.Options{
		K: 1, Eps: 0.2, Delta: 0.01, Machines: 2, Model: dimm.IC, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDIIMM (k=1, IC): selected v%d with estimated spread %.3f using %d RR sets\n",
		res.Seeds[0]+1, res.EstSpread, res.Theta)
	fmt.Printf("time: generation %.4fs, selection %.4fs, communication %.4fs, traffic %d bytes\n",
		res.Metrics.GenCritical.Seconds(),
		(res.Metrics.SelCritical + res.Metrics.MasterCompute).Seconds(),
		res.Metrics.Comm.Seconds(),
		res.Metrics.BytesSent+res.Metrics.BytesReceived)
	if res.Seeds[0] != 0 {
		log.Fatal("unexpected: the optimal single seed of Fig. 1 is v1")
	}
	fmt.Println("\nv1 is indeed the optimal seed — matching the paper's Example 1.")
}
