// Viral marketing campaign planning on a synthetic social network.
//
// The scenario from the paper's introduction: a marketer can afford k
// seed users and wants the largest influence cascade. This example
// generates a 50K-user follower network, compares budget levels and both
// diffusion models, and contrasts the influence-maximizing seeds against
// the naive "pick the most-followed users" strategy.
//
//	go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"
	"sort"

	"dimm"
)

func main() {
	log.SetFlags(0)

	const users = 50000
	g, err := dimm.GenerateSocialNetwork(dimm.SocialNetworkConfig{
		Nodes: users, AvgDegree: 20, Seed: 2022,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d follow edges (avg %.1f)\n\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree())

	// Sweep the campaign budget under the IC model.
	fmt.Println("budget sweep (IC model, 8 machines):")
	for _, k := range []int{1, 10, 25, 50} {
		res, err := dimm.MaximizeInfluence(g, dimm.Options{
			K: k, Eps: 0.3, Machines: 8, Model: dimm.IC, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d reaches %8.0f users (%5.2f%% of the network), %s RR sets, wall %.2fs\n",
			k, res.EstSpread, 100*res.EstSpread/users, count(res.Theta), res.Wall.Seconds())
	}

	// Model comparison at the paper's default budget.
	fmt.Println("\nmodel comparison (k=50):")
	seedsByModel := map[string][]uint32{}
	for _, model := range []dimm.Model{dimm.IC, dimm.LT} {
		res, err := dimm.MaximizeInfluence(g, dimm.Options{
			K: 50, Eps: 0.3, Machines: 8, Model: model, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		mc, se := dimm.EstimateSpread(g, res.Seeds, model, 2000, 9)
		fmt.Printf("  %v: estimated spread %8.0f | simulation check %8.0f ± %.0f\n",
			model, res.EstSpread, mc, se)
		seedsByModel[model.String()] = res.Seeds
	}

	// Baseline: the naive strategy of seeding the most-followed accounts.
	type nodeDeg struct {
		node uint32
		deg  int
	}
	degs := make([]nodeDeg, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		degs[v] = nodeDeg{uint32(v), g.OutDegree(uint32(v))}
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i].deg > degs[j].deg })
	topK := make([]uint32, 50)
	for i := range topK {
		topK[i] = degs[i].node
	}
	naive, se := dimm.EstimateSpread(g, topK, dimm.IC, 2000, 11)
	smart, _ := dimm.EstimateSpread(g, seedsByModel["IC"], dimm.IC, 2000, 11)
	fmt.Printf("\nnaive top-degree seeding: %0.f ± %.0f users (IC)\n", naive, se)
	fmt.Printf("DIIMM seeding beats it by %.1f%%\n", 100*(smart-naive)/naive)
}

func count(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fK", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}
