module dimm

go 1.22
