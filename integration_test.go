package dimm

// End-to-end integration tests that build and exec the real binaries:
// gengraph produces a dataset, dimmd workers serve it over TCP as separate
// processes, and dimm runs the master against them — the full multi-process
// deployment path a user would run across hosts.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildOnce compiles all binaries into a shared temp dir once per test run.
var buildOnce = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "dimm-bin")
	if err != nil {
		return "", err
	}
	for _, tool := range []string{"dimm", "dimmd", "gengraph", "maxcover", "influapp", "experiments"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			return "", fmt.Errorf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir, nil
})

func repoRoot() string {
	wd, _ := os.Getwd()
	return wd
}

func binaries(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration tests build binaries; skipped with -short")
	}
	dir, err := buildOnce()
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		ports[i] = lis.Addr().(*net.TCPAddr).Port
	}
	for _, lis := range listeners {
		lis.Close()
	}
	return ports
}

func TestIntegrationMultiProcess(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "net.bin")

	// 1. Generate a dataset with gengraph.
	out, err := exec.Command(filepath.Join(bin, "gengraph"),
		"-nodes", "2000", "-degree", "8", "-seed", "5", "-out", graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}

	// 2. Start two dimmd worker processes.
	ports := freePorts(t, 2)
	for i, port := range ports {
		cmd := exec.Command(filepath.Join(bin, "dimmd"),
			"-graph", graphPath, "-listen", fmt.Sprintf("127.0.0.1:%d", port),
			"-model", "ic", "-seed", "9", "-seed-index", fmt.Sprint(i))
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting dimmd %d: %v", i, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
	}
	// Wait for both workers to accept connections.
	for _, port := range ports {
		deadline := time.Now().Add(10 * time.Second)
		for {
			conn, err := net.Dial("tcp", fmt.Sprintf("127.0.0.1:%d", port))
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker on port %d never came up", port)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// 3. Run the master against the remote workers.
	addrs := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", ports[0], ports[1])
	out, err = exec.Command(filepath.Join(bin, "dimm"),
		"-graph", graphPath, "-workers", addrs,
		"-k", "5", "-eps", "0.4", "-delta", "0.05", "-seed", "9",
		"-verify", "2000").CombinedOutput()
	if err != nil {
		t.Fatalf("dimm master: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "seeds (5):") {
		t.Fatalf("master output missing seeds:\n%s", text)
	}
	if !strings.Contains(text, "monte-carlo verification") {
		t.Fatalf("master output missing verification:\n%s", text)
	}

	// 4. The same run with in-process machines must produce the same
	// seed line (same base seed, same machine count, same streams).
	out2, err := exec.Command(filepath.Join(bin, "dimm"),
		"-graph", graphPath, "-machines", "2",
		"-k", "5", "-eps", "0.4", "-delta", "0.05", "-seed", "9").CombinedOutput()
	if err != nil {
		t.Fatalf("dimm local: %v\n%s", err, out2)
	}
	seedLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "seeds (5):") {
				return line
			}
		}
		return ""
	}
	if a, b := seedLine(text), seedLine(string(out2)); a == "" || a != b {
		t.Fatalf("TCP and in-process CLI runs disagree:\n%q\n%q", a, b)
	}
}

func TestIntegrationCLITools(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "net.bin")
	out, err := exec.Command(filepath.Join(bin, "gengraph"),
		"-nodes", "1500", "-degree", "6", "-seed", "3", "-out", graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}

	// gengraph -stats
	out, err = exec.Command(filepath.Join(bin, "gengraph"), "-stats", graphPath).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "avg degree") {
		t.Fatalf("gengraph -stats: %v\n%s", err, out)
	}

	// dimm -algo opimc
	out, err = exec.Command(filepath.Join(bin, "dimm"),
		"-graph", graphPath, "-algo", "opimc", "-machines", "2",
		"-k", "4", "-eps", "0.4", "-delta", "0.05", "-seed", "2").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "certified:") {
		t.Fatalf("dimm -algo opimc: %v\n%s", err, out)
	}

	// maxcover -compare must certify Lemma 2 on the CLI path too.
	out, err = exec.Command(filepath.Join(bin, "maxcover"),
		"-graph", graphPath, "-k", "10", "-machines", "3", "-compare").CombinedOutput()
	if err != nil {
		t.Fatalf("maxcover: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "equals the centralized greedy exactly") {
		t.Fatalf("maxcover did not certify Lemma 2:\n%s", out)
	}

	// influapp all three modes.
	for _, mode := range []string{"targeted", "budgeted", "seedmin"} {
		out, err = exec.Command(filepath.Join(bin, "influapp"),
			"-graph", graphPath, "-mode", mode, "-machines", "2",
			"-eps", "0.4", "-k", "5", "-budget", "10", "-goal-frac", "0.02",
			"-max-seeds", "100", "-seed", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("influapp -mode %s: %v\n%s", mode, err, out)
		}
	}

	// experiments: one tiny figure.
	out, err = exec.Command(filepath.Join(bin, "experiments"),
		"-run", "tableIII", "-datasets", "facebook-sim", "-scale", "0.25").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "facebook-sim") {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
}
