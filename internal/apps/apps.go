// Package apps implements the influence-based applications the paper's
// conclusion lists as direct beneficiaries of its distributed techniques:
// targeted influence maximization (weighted activation goals), budgeted
// influence maximization (per-node seeding costs), and seed minimization
// (smallest seed set reaching a spread goal). Each follows the same
// two-phase recipe — distributed RIS sampling plus a greedy selection
// driven through the element-distributed oracle — so all of them run over
// the identical cluster substrate DIIMM uses.
//
// Approximation notes. These applications reuse DIIMM's sampling schedule
// for the underlying influence-maximization instance, which makes the
// estimation error of every reported spread the same ε-band as DIIMM's.
// The selection guarantees are the classic ones per driver: (1 − 1/e)
// for the targeted (weighted-coverage) greedy, the cost-ratio greedy's
// bicriteria bound for budgets, and the logarithmic seed-count factor of
// the greedy set-cover argument for seed minimization.
package apps

import (
	"fmt"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/imm"
)

// Common configures the shared sampling machinery of all applications.
type Common struct {
	Machines int
	Model    diffusion.Model
	Eps      float64 // sampling density: θ follows DIIMM's schedule at this ε
	Delta    float64
	Seed     uint64
	// Parallelism is the per-worker RR-generation shard count
	// (rrset.ShardedSampler); values below 1 mean 1 (sequential).
	Parallelism int
}

func (c Common) withDefaults(n int) Common {
	if c.Machines == 0 {
		c.Machines = 1
	}
	if c.Eps == 0 {
		c.Eps = 0.2
	}
	if c.Delta == 0 {
		c.Delta = 1 / float64(n)
	}
	return c
}

// newCluster spins up the in-process workers shared by every application.
func (c Common) newCluster(g *graph.Graph, rootWeights []float64) (*cluster.Cluster, error) {
	cfgs := make([]cluster.WorkerConfig, c.Machines)
	for i := range cfgs {
		cfgs[i] = cluster.WorkerConfig{
			Graph:       g,
			Model:       c.Model,
			Seed:        cluster.DeriveSeed(c.Seed, i),
			RootWeights: rootWeights,
			Parallelism: c.Parallelism,
		}
	}
	return cluster.NewLocal(cfgs, g.NumNodes())
}

// sampleTheta generates a DIIMM-grade number of RR sets for a size-k
// instance: it runs the IMM phase-1 schedule to find a lower bound of
// OPT, then tops up to θ = λ*/LB — all distributed.
func sampleTheta(cl *cluster.Cluster, n, k int, eps, delta float64) (int64, error) {
	p, err := imm.ComputeParams(n, k, eps, delta)
	if err != nil {
		return 0, err
	}
	var count int64
	lb := 1.0
	for t := 1; t <= p.MaxRounds(); t++ {
		x := float64(n) / float64(int64(1)<<uint(t))
		stats, err := cl.Generate(p.ThetaAt(t) - count)
		if err != nil {
			return 0, err
		}
		count = stats.Count
		sel, err := coverage.RunGreedy(cl.Oracle(), k)
		if err != nil {
			return 0, err
		}
		frac := float64(sel.Coverage) / float64(count)
		if float64(n)*frac >= (1+p.EpsPrime)*x {
			lb = float64(n) * frac / (1 + p.EpsPrime)
			break
		}
	}
	if add := p.FinalTheta(lb) - count; add > 0 {
		stats, err := cl.Generate(add)
		if err != nil {
			return 0, err
		}
		count = stats.Count
	}
	return count, nil
}

// Result is the common outcome shape of the applications.
type Result struct {
	Seeds     []uint32
	EstSpread float64 // estimated (possibly weighted) spread of Seeds
	Theta     int64
	Metrics   cluster.Metrics
	Wall      time.Duration
}

// ---------------------------------------------------------------------------
// Targeted influence maximization
// ---------------------------------------------------------------------------

// TargetedIM selects k seeds maximizing the *weighted* spread
// Σ_v w(v)·Pr[S activates v]: RR-set roots are drawn proportionally to
// the target weights, under which the coverage estimator is unbiased for
// the weighted spread (scaled by W = Σ w rather than n). Weights of zero
// exclude nodes from the objective (they can still relay influence).
func TargetedIM(g *graph.Graph, weights []float64, k int, c Common) (*Result, error) {
	n := g.NumNodes()
	c = c.withDefaults(n)
	if len(weights) != n {
		return nil, fmt.Errorf("apps: %d target weights for %d nodes", len(weights), n)
	}
	var total float64
	for v, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("apps: negative target weight on node %d", v)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("apps: all target weights are zero")
	}
	cl, err := c.newCluster(g, weights)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	start := time.Now()
	theta, err := sampleTheta(cl, n, k, c.Eps, c.Delta)
	if err != nil {
		return nil, err
	}
	sel, err := coverage.RunGreedy(cl.Oracle(), k)
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:     sel.Seeds,
		EstSpread: total * float64(sel.Coverage) / float64(theta),
		Theta:     theta,
		Metrics:   cl.Metrics(),
		Wall:      time.Since(start),
	}, nil
}

// ---------------------------------------------------------------------------
// Budgeted influence maximization
// ---------------------------------------------------------------------------

// BudgetedIM selects a seed set of total cost at most budget maximizing
// influence spread, with per-node seeding costs. Selection is the
// cost-ratio lazy greedy over the distributed oracle.
func BudgetedIM(g *graph.Graph, costs []float64, budget float64, c Common) (*Result, error) {
	n := g.NumNodes()
	c = c.withDefaults(n)
	if len(costs) != n {
		return nil, fmt.Errorf("apps: %d costs for %d nodes", len(costs), n)
	}
	// The sampling schedule needs a nominal k; use the largest seed count
	// the budget could buy so θ is dense enough for any feasible set.
	minCost := costs[0]
	for _, cst := range costs {
		if cst <= 0 {
			return nil, fmt.Errorf("apps: non-positive seeding cost %v", cst)
		}
		if cst < minCost {
			minCost = cst
		}
	}
	kMax := int(budget / minCost)
	if kMax < 1 {
		return nil, fmt.Errorf("apps: budget %v cannot afford any node (min cost %v)", budget, minCost)
	}
	if kMax > n {
		kMax = n
	}
	cl, err := c.newCluster(g, nil)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	start := time.Now()
	theta, err := sampleTheta(cl, n, kMax, c.Eps, c.Delta)
	if err != nil {
		return nil, err
	}
	sel, err := coverage.RunGreedyBudgeted(cl.Oracle(), costs, budget)
	if err != nil {
		return nil, err
	}
	var spent float64
	for _, s := range sel.Seeds {
		spent += costs[s]
	}
	if spent > budget+1e-9 {
		return nil, fmt.Errorf("apps: internal error: spent %v over budget %v", spent, budget)
	}
	return &Result{
		Seeds:     sel.Seeds,
		EstSpread: float64(n) * float64(sel.Coverage) / float64(theta),
		Theta:     theta,
		Metrics:   cl.Metrics(),
		Wall:      time.Since(start),
	}, nil
}

// ---------------------------------------------------------------------------
// Seed minimization
// ---------------------------------------------------------------------------

// SeedMinimize returns the smallest greedy seed set whose estimated
// spread reaches targetSpread (in expected activated nodes). maxSeeds
// caps the search; if the target is unreachable within the cap on the
// sampled data, the best-effort set found is returned with Reached=false.
type MinimizeResult struct {
	Result
	Reached bool
}

// SeedMinimize implements the distributed greedy for seed minimization.
func SeedMinimize(g *graph.Graph, targetSpread float64, maxSeeds int, c Common) (*MinimizeResult, error) {
	n := g.NumNodes()
	c = c.withDefaults(n)
	if targetSpread <= 0 || targetSpread > float64(n) {
		return nil, fmt.Errorf("apps: target spread %v outside (0, %d]", targetSpread, n)
	}
	if maxSeeds < 1 || maxSeeds > n {
		return nil, fmt.Errorf("apps: maxSeeds %d outside [1, %d]", maxSeeds, n)
	}
	cl, err := c.newCluster(g, nil)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	start := time.Now()
	theta, err := sampleTheta(cl, n, maxSeeds, c.Eps, c.Delta)
	if err != nil {
		return nil, err
	}
	// Spread target σ translates to coverage target σ·θ/n on the samples.
	covTarget := int64(targetSpread*float64(theta)/float64(n) + 0.999999)
	sel, err := coverage.RunGreedyUntil(cl.Oracle(), maxSeeds, covTarget)
	if err != nil {
		return nil, err
	}
	return &MinimizeResult{
		Result: Result{
			Seeds:     sel.Seeds,
			EstSpread: float64(n) * float64(sel.Coverage) / float64(theta),
			Theta:     theta,
			Metrics:   cl.Metrics(),
			Wall:      time.Since(start),
		},
		Reached: sel.Coverage >= covTarget,
	}, nil
}
