package apps

import (
	"math"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func wcGraph(t testing.TB, nodes int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: nodes, AvgDegree: 6, Seed: seed, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return wc
}

func common(machines int) Common {
	return Common{Machines: machines, Model: diffusion.IC, Eps: 0.4, Delta: 0.05, Seed: 9}
}

func TestTargetedIMValidation(t *testing.T) {
	g := wcGraph(t, 50, 1)
	if _, err := TargetedIM(g, make([]float64, 10), 2, common(1)); err == nil {
		t.Fatal("wrong weight length accepted")
	}
	if _, err := TargetedIM(g, make([]float64, 50), 2, common(1)); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	w := make([]float64, 50)
	w[0] = -1
	w[1] = 2
	if _, err := TargetedIM(g, w, 2, common(1)); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestTargetedIMFocusesOnTargets: with all weight on one community, the
// chosen seeds must activate the targeted nodes far better than seeds
// chosen for the global objective activate them per unit of weight.
func TestTargetedIMFocusesOnTargets(t *testing.T) {
	// Two disconnected communities; targets are community B only.
	gc, err := graph.GenCommunity(graph.CommunityConfig{
		GenConfig:   graph.GenConfig{Nodes: 400, AvgDegree: 6, Seed: 3},
		Communities: 2,
		InFraction:  1.0, // fully disconnected blocks
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.AssignWeights(gc, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for v := 200; v < 400; v++ {
		weights[v] = 1
	}
	res, err := TargetedIM(g, weights, 5, common(2))
	if err != nil {
		t.Fatal(err)
	}
	// Every selected seed should live in (and thus only influence) the
	// targeted block B = nodes 200..399.
	for _, s := range res.Seeds {
		if s < 200 {
			t.Fatalf("targeted IM picked seed %d from the untargeted block (seeds %v)", s, res.Seeds)
		}
	}
	if res.EstSpread <= 0 || res.EstSpread > 200 {
		t.Fatalf("weighted spread %v outside (0, 200]", res.EstSpread)
	}
}

func TestTargetedUniformMatchesPlainObjective(t *testing.T) {
	// With uniform weights, the targeted objective is the plain spread;
	// the weighted estimate should be in the same band as a plain run.
	g := wcGraph(t, 300, 5)
	w := make([]float64, g.NumNodes())
	for i := range w {
		w[i] = 1
	}
	res, err := TargetedIM(g, w, 5, common(2))
	if err != nil {
		t.Fatal(err)
	}
	sim := diffusion.NewSimulator(g, 77)
	mc, se := sim.Estimate(res.Seeds, diffusion.IC, 20000)
	if math.Abs(mc-res.EstSpread) > 0.2*res.EstSpread+5*se {
		t.Fatalf("uniform targeted estimate %v vs simulation %v ± %v", res.EstSpread, mc, se)
	}
}

func TestBudgetedIMValidation(t *testing.T) {
	g := wcGraph(t, 50, 2)
	costs := make([]float64, 50)
	for i := range costs {
		costs[i] = 1
	}
	if _, err := BudgetedIM(g, costs[:10], 5, common(1)); err == nil {
		t.Fatal("wrong cost length accepted")
	}
	if _, err := BudgetedIM(g, costs, 0, common(1)); err == nil {
		t.Fatal("zero budget accepted")
	}
	bad := append([]float64(nil), costs...)
	bad[3] = 0
	if _, err := BudgetedIM(g, bad, 5, common(1)); err == nil {
		t.Fatal("zero cost accepted")
	}
	expensive := append([]float64(nil), costs...)
	for i := range expensive {
		expensive[i] = 100
	}
	if _, err := BudgetedIM(g, expensive, 5, common(1)); err == nil {
		t.Fatal("unaffordable instance accepted")
	}
}

func TestBudgetedIMRespectsBudget(t *testing.T) {
	g := wcGraph(t, 300, 7)
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		// Influential (high out-degree) nodes cost more, like real
		// influencer pricing.
		costs[v] = 1 + float64(g.OutDegree(uint32(v)))/4
	}
	const budget = 20.0
	res, err := BudgetedIM(g, costs, budget, common(2))
	if err != nil {
		t.Fatal(err)
	}
	var spent float64
	seen := map[uint32]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("seed %d selected twice", s)
		}
		seen[s] = true
		spent += costs[s]
	}
	if spent > budget {
		t.Fatalf("spent %v over budget %v", spent, budget)
	}
	if len(res.Seeds) == 0 || res.EstSpread <= 0 {
		t.Fatal("budgeted run selected nothing")
	}
	// A larger budget can only help.
	res2, err := BudgetedIM(g, costs, 2*budget, common(2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.EstSpread < res.EstSpread*0.95 {
		t.Fatalf("doubling the budget reduced spread: %v -> %v", res.EstSpread, res2.EstSpread)
	}
}

func TestSeedMinimizeValidation(t *testing.T) {
	g := wcGraph(t, 50, 3)
	if _, err := SeedMinimize(g, 0, 5, common(1)); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := SeedMinimize(g, 1000, 5, common(1)); err == nil {
		t.Fatal("target above n accepted")
	}
	if _, err := SeedMinimize(g, 10, 0, common(1)); err == nil {
		t.Fatal("maxSeeds=0 accepted")
	}
}

func TestSeedMinimizeReachesTarget(t *testing.T) {
	g := wcGraph(t, 400, 11)
	const target = 60.0
	res, err := SeedMinimize(g, target, 50, common(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("target %v not reached with %d seeds (est %v)", target, len(res.Seeds), res.EstSpread)
	}
	if res.EstSpread < target*0.99 {
		t.Fatalf("estimated spread %v below target %v", res.EstSpread, target)
	}
	// Monotonicity: a higher target needs at least as many seeds.
	res2, err := SeedMinimize(g, 2*target, 100, common(2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reached && len(res2.Seeds) < len(res.Seeds) {
		t.Fatalf("higher target used fewer seeds: %d vs %d", len(res2.Seeds), len(res.Seeds))
	}
	// Simulation cross-check: the selected set really spreads that far
	// (within the sampling band).
	sim := diffusion.NewSimulator(g, 13)
	mc, se := sim.Estimate(res.Seeds, diffusion.IC, 20000)
	if mc+5*se < target*(1-0.25) {
		t.Fatalf("simulated spread %v ± %v far below target %v", mc, se, target)
	}
}

func TestSeedMinimizeUnreachable(t *testing.T) {
	g := wcGraph(t, 200, 13)
	// Cap the seeds at 1 and ask for most of the graph: unreachable.
	res, err := SeedMinimize(g, 150, 1, common(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatalf("1 seed claimed to reach 150 of 200 nodes (est %v)", res.EstSpread)
	}
	if len(res.Seeds) != 1 {
		t.Fatalf("best-effort result should still carry 1 seed, got %d", len(res.Seeds))
	}
}

// TestAppsDistributedInvariance: the applications must return the same
// answer regardless of machine count (they share DIIMM's determinism
// property because selection state lives entirely at the master).
func TestAppsDistributedInvariance(t *testing.T) {
	g := wcGraph(t, 200, 17)
	costs := make([]float64, g.NumNodes())
	for i := range costs {
		costs[i] = 1
	}
	// Budgeted IM at one vs. four machines, same seed: spreads in-band.
	a, err := BudgetedIM(g, costs, 5, common(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BudgetedIM(g, costs, 5, common(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.EstSpread-b.EstSpread) > 0.25*a.EstSpread {
		t.Fatalf("budgeted spread drifted across machine counts: %v vs %v", a.EstSpread, b.EstSpread)
	}
}
