// Package bench regenerates every table and figure of the paper's
// evaluation (§IV) as plain-text tables: Table III (datasets), Table IV
// (RR-set statistics), Figs. 5/8 (DIIMM over a TCP cluster, IC/LT),
// Figs. 6/9 (DIIMM on a multi-core server, IC/LT), Fig. 7 (distributed
// SUBSIM), and Fig. 10 (maximum coverage: NEWGREEDI vs GREEDI).
//
// Absolute numbers will differ from the paper's testbed; the shapes under
// test are: generation dominates and scales ~1/ℓ, communication stays an
// order of magnitude below computation, NEWGREEDI matches centralized
// greedy coverage exactly while GREEDI degrades with ℓ, LT runs faster
// than IC, and SUBSIM sampling beats plain IMM sampling.
package bench

import (
	"fmt"
	"io"
	"time"

	"dimm/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	Out          io.Writer
	Scale        workload.Scale
	K            int
	Eps          float64
	Delta        float64 // 0 ⇒ 1/n per dataset
	Seed         uint64
	ClusterSizes []int // ℓ sweep for the TCP-cluster figures (5, 8)
	CoreCounts   []int // ℓ sweep for the multi-core figures (6, 7, 9, 10)
	Datasets     []string
	MaxCoverK    int // k for Fig. 10 (defaults to K)
	// Repeats re-runs every cell. The figure tables report the fastest
	// run — the minimum is the stabler point estimate against scheduler
	// and GC noise on a shared box — which is NOT the paper's
	// average-of-10 protocol; the sweep envelopes (BENCH_*.json) record
	// min/mean/max so the regression differ can compare means with the
	// min as tiebreak. Defaults to 1.
	Repeats int
	// Parallelism is the intra-worker RR-generation shard count passed to
	// every run (core.Options.Parallelism). The default 0 resolves to 1 —
	// sequential workers — which keeps the per-worker handler timings
	// meaningful on an oversubscribed box (see DESIGN.md); set it
	// explicitly (or to core.AutoParallelism) on hardware with idle cores.
	Parallelism int
	// Batch is the frontier-batch width of every run's sampling shards
	// (core.Options.Batch). 0 resolves to rrset.DefaultBatch; 1 forces the
	// scalar kernel. Never changes sampled sets, so measured shapes are
	// comparable across batch settings.
	Batch int
	// LinkRTT and LinkBandwidth shape the TCP-cluster figures' links
	// (Figs. 5/8) to model the paper's 1 Gbps switch instead of raw
	// loopback. Zero values leave loopback unshaped.
	LinkRTT       time.Duration
	LinkBandwidth float64 // bytes per second per direction
	Quiet         bool
}

// WithDefaults fills unset fields with the harness defaults (the paper's
// k = 50 and sweeps, at a scale tractable for one box).
func (c Config) WithDefaults() Config {
	if c.Out == nil {
		panic("bench: Config.Out must be set")
	}
	if c.Scale == 0 {
		c.Scale = workload.ScaleTiny
	}
	if c.K == 0 {
		c.K = 50
	}
	if c.Eps == 0 {
		c.Eps = 0.3
	}
	if c.Seed == 0 {
		c.Seed = 20220501
	}
	if len(c.ClusterSizes) == 0 {
		c.ClusterSizes = []int{1, 2, 4, 8, 16}
	}
	if len(c.CoreCounts) == 0 {
		c.CoreCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if c.MaxCoverK == 0 {
		c.MaxCoverK = c.K
	}
	if c.Repeats == 0 {
		c.Repeats = 1
	}
	return c
}

// specs returns the configured datasets.
func (c Config) specs() []workload.Spec {
	all := workload.Specs(c.Scale)
	if len(c.Datasets) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, d := range c.Datasets {
		want[d] = true
	}
	var out []workload.Spec
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// fmtDur renders a duration in seconds with sensible precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// fmtCount renders large counts with K/M/G suffixes like the paper.
func fmtCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fK", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
