package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dimm/internal/workload"
)

// quickConfig returns a configuration small enough for unit tests: one
// dataset at the tiny scale, loose epsilon, short sweeps.
func quickConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:          buf,
		Scale:        workload.ScaleTiny,
		K:            5,
		Eps:          0.5,
		Seed:         1,
		ClusterSizes: []int{1, 2},
		CoreCounts:   []int{1, 2},
		Datasets:     []string{"facebook-sim"},
	}.WithDefaults()
}

func TestTableIII(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	if err := cfg.TableIII(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "facebook-sim") || !strings.Contains(out, "Undirected") {
		t.Fatalf("Table III output missing expected rows:\n%s", out)
	}
}

func TestTableIV(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	rows, err := cfg.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Theta <= 0 || rows[0].TotalSize < rows[0].Theta {
		t.Fatalf("implausible Table IV rows: %+v", rows)
	}
}

func TestFig6Shape(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	rows, err := cfg.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows (ℓ=1,2), got %d", len(rows))
	}
	// ℓ=2 must share the generation work: critical-path generation should
	// be well below ℓ=1's.
	if rows[1].Gen >= rows[0].Gen {
		t.Fatalf("no generation sharing: ℓ=1 gen %v, ℓ=2 gen %v", rows[0].Gen, rows[1].Gen)
	}
	if rows[1].Speedup(rows[0]) <= 1 {
		t.Fatalf("ℓ=2 speedup %.2f ≤ 1", rows[1].Speedup(rows[0]))
	}
}

func TestFig5TCP(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	rows, err := cfg.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Bytes == 0 || r.Theta == 0 {
			t.Fatalf("TCP row not populated: %+v", r)
		}
	}
}

func TestFig10(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	rows, err := cfg.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// Lemma 2: NEWGREEDI equals the sequential greedy at every ℓ.
		if r.NGCoverage != r.SeqCoverage {
			t.Fatalf("NEWGREEDI coverage %d != sequential %d at ℓ=%d", r.NGCoverage, r.SeqCoverage, r.Cores)
		}
		if r.CoverageRatio() > 1.0000001 {
			t.Fatalf("GREEDI ratio %v above 1", r.CoverageRatio())
		}
	}
	if strings.Contains(buf.String(), "!!") {
		t.Fatalf("harness flagged a Lemma 2 violation:\n%s", buf.String())
	}
}

func TestFig5WithShapedLinks(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	cfg.LinkRTT = 500 * time.Microsecond
	cfg.LinkBandwidth = 1e9 / 8
	rows, err := cfg.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Shaping must add measurable communication time: every row's comm
	// should exceed the per-round RTT times a fraction of its rounds.
	for _, r := range rows {
		if r.Comm <= 0 {
			t.Fatalf("shaped run reported no communication time: %+v", r)
		}
	}
	// And it must not change the algorithmic outcome vs unshaped.
	var buf2 bytes.Buffer
	plain := quickConfig(&buf2)
	rows2, err := plain.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].Theta != rows2[i].Theta {
			t.Fatalf("link shaping changed theta: %d vs %d", rows[i].Theta, rows2[i].Theta)
		}
		if rows[i].Comm < rows2[i].Comm {
			t.Fatalf("shaped comm %v below unshaped %v", rows[i].Comm, rows2[i].Comm)
		}
	}
}

func TestFig7Subset(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	rows, err := cfg.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Theta == 0 {
		t.Fatalf("Fig 7 rows wrong: %+v", rows)
	}
}

func TestReportSmoke(t *testing.T) {
	var md bytes.Buffer
	cfg := quickConfig(&bytes.Buffer{})
	if err := cfg.Report(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{
		"# EXPERIMENTS", "Table III", "Table IV",
		"Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
		"Shape verdicts", "NEWGREEDI exactness",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:min(len(out), 2000)])
		}
	}
	// The exactness verdict must PASS on every run — it is Lemma 2.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "NEWGREEDI exactness") && !strings.Contains(line, "[PASS]") {
			t.Fatalf("Lemma 2 verdict not PASS: %s", line)
		}
		if strings.Contains(line, "Table II GREEDI bound") && !strings.Contains(line, "[PASS]") {
			t.Fatalf("Table II bound verdict not PASS: %s", line)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := []struct {
		v    int64
		want string
	}{{5, "5"}, {1500, "1.5K"}, {2_500_000, "2.5M"}, {3_000_000_000, "3.0G"}}
	for _, c := range cases {
		if got := fmtCount(c.v); got != c.want {
			t.Fatalf("fmtCount(%d) = %s, want %s", c.v, got, c.want)
		}
	}
}

func TestConfigDefaultsAndFilters(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf}.WithDefaults()
	if cfg.K != 50 || cfg.Eps != 0.3 || len(cfg.CoreCounts) == 0 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if got := len(cfg.specs()); got != 4 {
		t.Fatalf("default datasets = %d, want 4", got)
	}
	cfg.Datasets = []string{"twitter-sim"}
	if got := cfg.specs(); len(got) != 1 || got[0].Name != "twitter-sim" {
		t.Fatalf("filtering failed: %+v", got)
	}
}
