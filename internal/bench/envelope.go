package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
)

// EnvelopeSchema versions the BENCH_*.json layout. Bump it when a field
// changes meaning; the regression differ refuses to compare envelopes
// of different schema versions rather than comparing apples to oranges.
const EnvelopeSchema = 1

// MetricClass tells the regression differ how to compare a metric.
type MetricClass string

const (
	// ClassExact metrics are deterministic functions of the seed and the
	// algorithm — set counts, byte totals, coverage, digest agreement.
	// Any mean drift between runs is a regression (or a deliberate
	// change that must bless a new baseline).
	ClassExact MetricClass = "exact"
	// ClassTime metrics are lower-better wall measurements (seconds,
	// latencies, bytes-per-op). They carry noise, so the differ applies
	// the tolerance and requires both the mean and the min to regress.
	ClassTime MetricClass = "time"
	// ClassRate metrics are higher-better throughputs (sets/s, QPS).
	// Symmetric to ClassTime with the max as the tiebreak.
	ClassRate MetricClass = "rate"
	// ClassInfo metrics are recorded for humans and never compared.
	ClassInfo MetricClass = "info"
)

// HostInfo records what the numbers were measured on. Timing classes
// are only comparable same-host; the differ treats a GOMAXPROCS or CPU
// count mismatch as advisory, not as a regression.
type HostInfo struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

func hostInfo() HostInfo {
	return HostInfo{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// EnvelopeMetric is one metric's aggregate over the sweep's repeats.
// All three figures are recorded (not just the historical fastest-run
// value) so the differ can compare means with the min/max as the noise
// tiebreak, and so a reader can judge the spread.
type EnvelopeMetric struct {
	Class MetricClass `json:"class"`
	Unit  string      `json:"unit,omitempty"`
	// TolScale widens this metric's share of the diff tolerance
	// (0 or 1 = the plain tolerance). Tail latencies carry 3: a p99 on
	// a busy one-box sweep legitimately swings harder than a mean.
	TolScale float64 `json:"tol_scale,omitempty"`
	Min      float64 `json:"min"`
	Mean     float64 `json:"mean"`
	Max      float64 `json:"max"`
}

// Envelope is the common machine-readable record every BENCH_*.json now
// carries: run metadata, host info, the per-metric min/mean/max
// aggregates the regression differ consumes, and the bench's raw legacy
// report (from the final repeat) for human inspection.
type Envelope struct {
	Schema  int                       `json:"schema"`
	Bench   string                    `json:"bench"`
	Profile string                    `json:"profile"`
	Host    HostInfo                  `json:"host"`
	Params  map[string]any            `json:"params"`
	Repeats int                       `json:"repeats"`
	Metrics map[string]EnvelopeMetric `json:"metrics"`
	Report  json.RawMessage           `json:"report"`
}

// WriteJSON writes the envelope, indented, to path.
func (e *Envelope) WriteJSON(path string) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadEnvelope loads an envelope written by WriteJSON.
func ReadEnvelope(path string) (*Envelope, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Envelope
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if e.Schema == 0 {
		return nil, fmt.Errorf("bench: %s is not an envelope (schema field missing — a pre-envelope raw report?)", path)
	}
	return &e, nil
}

// envelopeBuilder accumulates per-repeat metric observations and
// finalizes them into an Envelope.
type envelopeBuilder struct {
	bench   string
	profile string
	params  map[string]any
	// handicap > 0 inflates time-class observations by (1+h) and
	// deflates rate-class ones by the same factor. It exists solely so
	// the harness can prove its own regression diff fails a genuinely
	// slowed run (`-sweep-handicap`); it is never set in real sweeps.
	handicap float64
	order    []string
	series   map[string]*metricSeries
}

type metricSeries struct {
	class    MetricClass
	unit     string
	tolScale float64
	vals     []float64
}

func newEnvelopeBuilder(bench, profile string, params map[string]any, handicap float64) *envelopeBuilder {
	return &envelopeBuilder{
		bench:    bench,
		profile:  profile,
		params:   params,
		handicap: handicap,
		series:   map[string]*metricSeries{},
	}
}

// observe records one repeat's value for a metric. The class and unit
// must not change across observations of the same name.
func (b *envelopeBuilder) observe(name string, class MetricClass, unit string, v float64) {
	switch class {
	case ClassTime:
		v *= 1 + b.handicap
	case ClassRate:
		v /= 1 + b.handicap
	}
	s, ok := b.series[name]
	if !ok {
		s = &metricSeries{class: class, unit: unit}
		b.series[name] = s
		b.order = append(b.order, name)
	} else if s.class != class {
		panic(fmt.Sprintf("bench: metric %q observed as %s and %s", name, s.class, class))
	}
	s.vals = append(s.vals, v)
}

// setTolScale marks an already-observed metric as carrying a wider
// per-metric noise tolerance (the differ multiplies the sweep tolerance
// by this factor). Use for tail-latency metrics whose run-to-run spread
// is legitimately larger than a mean's.
func (b *envelopeBuilder) setTolScale(name string, scale float64) {
	s, ok := b.series[name]
	if !ok {
		panic(fmt.Sprintf("bench: setTolScale(%q) before any observation", name))
	}
	s.tolScale = scale
}

func (b *envelopeBuilder) observeBool(name string, class MetricClass, v bool) {
	f := 0.0
	if v {
		f = 1
	}
	b.observe(name, class, "bool", f)
}

// finish assembles the envelope: min/mean/max per metric over the
// recorded repeats, plus the raw report of the last repeat.
func (b *envelopeBuilder) finish(repeats int, report any) (*Envelope, error) {
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	metrics := make(map[string]EnvelopeMetric, len(b.series))
	for name, s := range b.series {
		if len(s.vals) == 0 {
			continue
		}
		m := EnvelopeMetric{Class: s.class, Unit: s.unit, TolScale: s.tolScale, Min: s.vals[0], Max: s.vals[0]}
		var sum float64
		for _, v := range s.vals {
			sum += v
			m.Min = math.Min(m.Min, v)
			m.Max = math.Max(m.Max, v)
		}
		m.Mean = sum / float64(len(s.vals))
		metrics[name] = m
	}
	return &Envelope{
		Schema:  EnvelopeSchema,
		Bench:   b.bench,
		Profile: b.profile,
		Host:    hostInfo(),
		Params:  b.params,
		Repeats: repeats,
		Metrics: metrics,
		Report:  raw,
	}, nil
}

// Regression is one metric the differ judged worse than the baseline.
type Regression struct {
	Bench  string
	Metric string
	Detail string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s: %s", r.Bench, r.Metric, r.Detail)
}

// DiffEnvelopes compares a fresh envelope against a blessed baseline
// and returns every regression found.
//
// Comparison is per metric class. Exact metrics must match to the bit —
// they are deterministic functions of the seed, so any drift is a real
// behavior change. Time metrics (lower better) regress when the new
// mean exceeds the baseline mean by more than tol (a fraction, e.g.
// 0.25 = 25%) AND the new min exceeds the baseline min by the same
// margin — requiring both keeps one noisy repeat from failing the
// check, while a genuine slowdown moves the whole distribution. Rate
// metrics are symmetric with the max as the tiebreak. Info metrics are
// never compared. A metric's baseline TolScale multiplies tol — the
// per-metric noise allowance for figures (tail latencies) whose honest
// spread exceeds the global tolerance.
//
// tol < 0 selects exact-only mode: timing classes are skipped entirely.
// That is the cross-machine setting (CI runners measure different
// hardware than the blessed baseline; their wall clocks are not
// comparable, their deterministic counters are).
//
// A metric present in the baseline but missing from the fresh envelope
// is a regression (the bench silently stopped measuring it); a new
// metric absent from the baseline is not.
func DiffEnvelopes(base, cur *Envelope, tol float64) []Regression {
	var regs []Regression
	add := func(metric, format string, args ...any) {
		regs = append(regs, Regression{Bench: cur.Bench, Metric: metric, Detail: fmt.Sprintf(format, args...)})
	}
	if base.Schema != cur.Schema {
		add("schema", "baseline schema %d vs current %d — regenerate the baseline", base.Schema, cur.Schema)
		return regs
	}
	exactOnly := tol < 0

	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Metrics[name]
		if b.Class == ClassInfo {
			continue
		}
		if exactOnly && b.Class != ClassExact {
			continue
		}
		c, ok := cur.Metrics[name]
		if !ok {
			add(name, "metric missing from the new run (baseline %s=%g)", b.Class, b.Mean)
			continue
		}
		if c.Class != b.Class {
			add(name, "class changed %s -> %s — regenerate the baseline", b.Class, c.Class)
			continue
		}
		mtol := tol
		if b.TolScale > 1 {
			mtol *= b.TolScale
		}
		switch b.Class {
		case ClassExact:
			if c.Mean != b.Mean || c.Min != b.Min || c.Max != b.Max {
				add(name, "exact metric drifted: %g -> %g", b.Mean, c.Mean)
			}
		case ClassTime:
			if c.Mean > b.Mean*(1+mtol) && c.Min > b.Min*(1+mtol) {
				add(name, "slower: mean %.4g -> %.4g %s (min %.4g -> %.4g, tol %.0f%%)",
					b.Mean, c.Mean, b.Unit, b.Min, c.Min, 100*mtol)
			}
		case ClassRate:
			if c.Mean*(1+mtol) < b.Mean && c.Max*(1+mtol) < b.Max {
				add(name, "lower throughput: mean %.4g -> %.4g %s (max %.4g -> %.4g, tol %.0f%%)",
					b.Mean, c.Mean, b.Unit, b.Max, c.Max, 100*mtol)
			}
		}
	}
	return regs
}
