package bench

import (
	"path/filepath"
	"testing"
)

// buildEnvelope assembles a small envelope with one metric of each
// comparable class, observed over three repeats, scaled by f (f > 1
// simulates a uniformly slower box: times up, rates down, exacts fixed).
func buildEnvelope(t *testing.T, f float64) *Envelope {
	t.Helper()
	eb := newEnvelopeBuilder("demo", "tiny", map[string]any{"n": 10}, 0)
	for _, base := range []float64{1.0, 1.1, 0.9} {
		eb.observe("gen_s", ClassTime, "s", base*f)
		eb.observe("qps", ClassRate, "req/s", 1000*base/f)
		eb.observe("sets", ClassExact, "sets", 4096)
		eb.observe("note", ClassInfo, "x", base*f)
	}
	env, err := eb.finish(3, map[string]int{"raw": 1})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := buildEnvelope(t, 1)
	if env.Schema != EnvelopeSchema || env.Repeats != 3 {
		t.Fatalf("bad envelope header: %+v", env)
	}
	m := env.Metrics["gen_s"]
	if m.Min != 0.9 || m.Max != 1.1 || m.Mean < 0.999 || m.Mean > 1.001 {
		t.Fatalf("gen_s aggregate = %+v, want min 0.9 mean 1.0 max 1.1", m)
	}
	if s := env.Metrics["sets"]; s.Min != s.Max || s.Min != 4096 {
		t.Fatalf("exact metric spread: %+v", s)
	}

	path := filepath.Join(t.TempDir(), "env.json")
	if err := env.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEnvelope(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bench != "demo" || back.Metrics["qps"].Class != ClassRate {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestReadEnvelopeRejectsRawReports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	// A pre-envelope raw report has no schema field.
	if err := (&Envelope{}).WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEnvelope(path); err == nil {
		t.Fatal("schema-less file accepted as an envelope")
	}
}

func TestDiffEnvelopesCleanRun(t *testing.T) {
	base := buildEnvelope(t, 1)
	// Identical re-run: no regressions at any tolerance.
	for _, tol := range []float64{0.25, 0, -1} {
		if regs := DiffEnvelopes(base, buildEnvelope(t, 1), tol); len(regs) != 0 {
			t.Fatalf("tol=%g: identical run flagged: %v", tol, regs)
		}
	}
	// 10% slower is inside a 25% tolerance.
	if regs := DiffEnvelopes(base, buildEnvelope(t, 1.1), 0.25); len(regs) != 0 {
		t.Fatalf("10%% drift inside 25%% tolerance flagged: %v", regs)
	}
}

func TestDiffEnvelopesCatchesSlowdown(t *testing.T) {
	base := buildEnvelope(t, 1)
	slow := buildEnvelope(t, 2) // 2x slower across the board
	regs := DiffEnvelopes(base, slow, 0.25)
	found := map[string]bool{}
	for _, r := range regs {
		found[r.Metric] = true
	}
	if !found["gen_s"] || !found["qps"] {
		t.Fatalf("2x slowdown missed: %v", regs)
	}
	if found["sets"] || found["note"] {
		t.Fatalf("exact/info metrics flagged on a timing-only slowdown: %v", regs)
	}
	// Exact-only mode must ignore the timing regression entirely.
	if regs := DiffEnvelopes(base, slow, -1); len(regs) != 0 {
		t.Fatalf("exact-only mode compared timings: %v", regs)
	}
}

func TestDiffEnvelopesMinTiebreak(t *testing.T) {
	// Mean regressed but the min did not: one noisy repeat, not a real
	// slowdown — must pass.
	base := newEnvelopeBuilder("demo", "tiny", nil, 0)
	base.observe("gen_s", ClassTime, "s", 1.0)
	base.observe("gen_s", ClassTime, "s", 1.0)
	benv, _ := base.finish(2, nil)

	noisy := newEnvelopeBuilder("demo", "tiny", nil, 0)
	noisy.observe("gen_s", ClassTime, "s", 1.0) // min unchanged
	noisy.observe("gen_s", ClassTime, "s", 2.0) // one bad repeat
	nenv, _ := noisy.finish(2, nil)
	if regs := DiffEnvelopes(benv, nenv, 0.25); len(regs) != 0 {
		t.Fatalf("single noisy repeat flagged despite unmoved min: %v", regs)
	}
}

func TestDiffEnvelopesExactDriftAndMissing(t *testing.T) {
	base := buildEnvelope(t, 1)

	drift := buildEnvelope(t, 1)
	m := drift.Metrics["sets"]
	m.Min, m.Mean, m.Max = 4097, 4097, 4097
	drift.Metrics["sets"] = m
	regs := DiffEnvelopes(base, drift, -1)
	if len(regs) != 1 || regs[0].Metric != "sets" {
		t.Fatalf("exact drift: got %v, want exactly [sets]", regs)
	}

	missing := buildEnvelope(t, 1)
	delete(missing.Metrics, "sets")
	regs = DiffEnvelopes(base, missing, -1)
	if len(regs) != 1 || regs[0].Metric != "sets" {
		t.Fatalf("missing metric: got %v, want exactly [sets]", regs)
	}

	// A new metric absent from the baseline is not a regression.
	extra := buildEnvelope(t, 1)
	extra.Metrics["new_thing"] = EnvelopeMetric{Class: ClassExact, Mean: 1, Min: 1, Max: 1}
	if regs := DiffEnvelopes(base, extra, -1); len(regs) != 0 {
		t.Fatalf("new metric flagged: %v", regs)
	}
}

// TestDiffEnvelopesTolScale: a metric tagged with a per-metric
// tolerance scale tolerates proportionally more drift (tail latencies
// legitimately swing harder than means), while an untagged metric at
// the same drift still fails.
func TestDiffEnvelopesTolScale(t *testing.T) {
	build := func(v float64) *Envelope {
		eb := newEnvelopeBuilder("demo", "tiny", nil, 0)
		eb.observe("p99_ms", ClassTime, "ms", v)
		eb.setTolScale("p99_ms", 3)
		eb.observe("mean_ms", ClassTime, "ms", v)
		env, err := eb.finish(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	base := build(1.0)
	if got := base.Metrics["p99_ms"].TolScale; got != 3 {
		t.Fatalf("tol_scale not recorded: %+v", base.Metrics["p99_ms"])
	}
	// 50% slower: inside 3x25%=75% for the p99, outside 25% for the mean.
	regs := DiffEnvelopes(base, build(1.5), 0.25)
	if len(regs) != 1 || regs[0].Metric != "mean_ms" {
		t.Fatalf("tol scale misapplied: got %v, want exactly [mean_ms]", regs)
	}
	// 2x slower clears even the scaled allowance.
	if regs := DiffEnvelopes(base, build(2.0), 0.25); len(regs) != 2 {
		t.Fatalf("2x drift should flag both: %v", regs)
	}
}

// TestHandicapFailsDiff pins the harness-validation loop end to end at
// the builder level: a handicapped run of the very same measurements
// must fail the diff against the clean baseline.
func TestHandicapFailsDiff(t *testing.T) {
	clean := newEnvelopeBuilder("demo", "tiny", nil, 0)
	handicapped := newEnvelopeBuilder("demo", "tiny", nil, 1.0) // 2x
	for _, eb := range []*envelopeBuilder{clean, handicapped} {
		eb.observe("gen_s", ClassTime, "s", 1.0)
		eb.observe("qps", ClassRate, "req/s", 500)
	}
	benv, _ := clean.finish(1, nil)
	henv, _ := handicapped.finish(1, nil)
	if regs := DiffEnvelopes(benv, henv, 0.25); len(regs) != 2 {
		t.Fatalf("handicapped run produced %v, want both timing metrics flagged", regs)
	}
}
