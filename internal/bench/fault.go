package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/serve"
)

// FaultOptions configures the fault-injection benchmark: a resident
// query service whose R1 cluster loses a worker mid-run, measured
// before, during and after the failover.
type FaultOptions struct {
	Nodes     int     // synthetic graph size (default 20_000)
	AvgDegree float64 // synthetic graph average degree (default 10)
	Model     diffusion.Model
	Seed      uint64

	Machines int     // workers per RR collection (default 2)
	KMax     int     // service admission cap (default 20)
	EpsLoose float64 // warm/steady-state epsilon (default 0.5)
	EpsTight float64 // post-kill epsilon forcing growth (default 0.3)

	Concurrency int // client fan-out for the steady phases (default 4)
	Requests    int // requests per steady phase (default 200)
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.Nodes == 0 {
		o.Nodes = 20_000
	}
	if o.AvgDegree == 0 {
		o.AvgDegree = 10
	}
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if o.Machines == 0 {
		o.Machines = 2
	}
	if o.KMax == 0 {
		o.KMax = 20
	}
	if o.EpsLoose == 0 {
		o.EpsLoose = 0.5
	}
	if o.EpsTight == 0 {
		o.EpsTight = 0.3
	}
	if o.Concurrency == 0 {
		o.Concurrency = 4
	}
	if o.Requests == 0 {
		o.Requests = 200
	}
	return o
}

// FaultReport is the machine-readable record written to BENCH_FAULT.json.
type FaultReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Nodes      int     `json:"nodes"`
	Edges      int64   `json:"edges"`
	Model      string  `json:"model"`
	Seed       uint64  `json:"seed"`
	Machines   int     `json:"machines"`
	KMax       int     `json:"k_max"`
	EpsLoose   float64 `json:"eps_loose"`
	EpsTight   float64 `json:"eps_tight"`

	// Steady-state latency before the kill (queries at EpsLoose, all
	// served from the resident sample) and after recovery (EpsTight).
	Healthy  ServeLevelResult `json:"healthy"`
	Degraded ServeLevelResult `json:"post_recovery"`

	// RecoverySeconds is the wall time of the first query after the kill:
	// it forces a growth round, hits the dead worker, and completes only
	// once the failover (respawn + journal replay + re-issue) is through.
	// CleanGrowSeconds is the identical growth query on an unfaulted twin
	// service, so the difference is the failover's own cost.
	RecoverySeconds  float64 `json:"recovery_seconds"`
	CleanGrowSeconds float64 `json:"clean_grow_seconds"`

	// The service's own post-run accounting: per-worker health of the
	// faulted R1 cluster and how many requests were refused 503 (zero
	// when the failover absorbed the kill).
	R1Workers []cluster.WorkerHealth `json:"r1_workers"`
	Refused   int64                  `json:"refused_503"`
}

// faultService builds a resident service over explicit clusters, with
// R1's worker 0 wrapped in the returned FaultConn and both clusters able
// to respawn workers from their configs (the replay-failover tier).
// Seeds mirror serve.New's in-process split, so a twin built the same
// way answers identically.
func faultService(g *graph.Graph, opt FaultOptions, faulty bool) (*serve.Service, *cluster.FaultConn, error) {
	var fc *cluster.FaultConn
	mk := func(tag uint64, wrap bool) (*cluster.Cluster, error) {
		cfgs := make([]cluster.WorkerConfig, opt.Machines)
		conns := make([]cluster.Conn, opt.Machines)
		for i := range cfgs {
			cfgs[i] = cluster.WorkerConfig{
				Graph: g, Model: opt.Model,
				Seed:        cluster.DeriveSeed(opt.Seed^tag, i),
				Parallelism: 1,
			}
			w, err := cluster.NewWorker(cfgs[i])
			if err != nil {
				return nil, err
			}
			conns[i] = cluster.NewLocalConn(w)
			if wrap && i == 0 {
				fc = cluster.NewFaultConn(conns[i])
				conns[i] = fc
			}
		}
		cl, err := cluster.New(conns, g.NumNodes())
		if err != nil {
			return nil, err
		}
		if err := cl.EnableRecovery(cluster.Recovery{
			Respawn: func(i int) (cluster.Conn, error) {
				w, err := cluster.NewWorker(cfgs[i])
				if err != nil {
					return nil, err
				}
				return cluster.NewLocalConn(w), nil
			},
			Backoff: time.Millisecond,
			Salt:    opt.Seed ^ tag,
		}); err != nil {
			return nil, err
		}
		return cl, nil
	}
	c1, err := mk(0x0111, faulty)
	if err != nil {
		return nil, nil, err
	}
	c2, err := mk(0x0222, false)
	if err != nil {
		c1.Close()
		return nil, nil, err
	}
	svc, err := serve.New(serve.Config{
		Graph: g, Model: opt.Model, Seed: opt.Seed,
		KMax: opt.KMax, EpsFloor: opt.EpsTight,
		MaxInFlight: opt.Concurrency + 1,
		C1:          c1, C2: c2,
	})
	if err != nil {
		return nil, nil, err
	}
	return svc, fc, nil
}

// RunServeFaultBench measures the resident query service through a
// worker kill: steady-state latency at a loose epsilon, then one worker
// of the R1 cluster dies and the next (tighter) query forces a growth
// round through the failover path, then steady state again on the
// recovered cluster. A twin service without the fault calibrates how
// much of the recovery time is the growth round itself.
func RunServeFaultBench(opt FaultOptions) (*FaultReport, error) {
	opt = opt.withDefaults()
	g, err := graph.GenPreferential(graph.GenConfig{
		Nodes: opt.Nodes, AvgDegree: opt.AvgDegree, Seed: opt.Seed, UniformAttach: 0.15,
	})
	if err != nil {
		return nil, err
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		return nil, err
	}

	svc, fc, err := faultService(g, opt, true)
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	twin, _, err := faultService(g, opt, false)
	if err != nil {
		return nil, err
	}
	defer twin.Close()

	// Warm both at the loose epsilon: resident sample present, the tight
	// query later needs one more growth round.
	if _, err := svc.Query(opt.KMax, opt.EpsLoose); err != nil {
		return nil, err
	}
	if _, err := twin.Query(opt.KMax, opt.EpsLoose); err != nil {
		return nil, err
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(lis) }()
	defer httpSrv.Close()
	base := "http://" + lis.Addr().String()

	rep := &FaultReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Model:      opt.Model.String(),
		Seed:       opt.Seed,
		Machines:   opt.Machines,
		KMax:       opt.KMax,
		EpsLoose:   opt.EpsLoose,
		EpsTight:   opt.EpsTight,
	}

	healthy, err := driveLevel(base, svc, opt.Concurrency, opt.Requests, opt.KMax, opt.EpsLoose)
	if err != nil {
		return nil, err
	}
	rep.Healthy = *healthy

	// Kill R1's worker 0: its next call — the growth round the tight
	// query triggers — fails and must fail over.
	fc.KillAtCall(fc.Calls() + 1)
	t0 := time.Now()
	if _, err := svc.Query(opt.KMax, opt.EpsTight); err != nil {
		return nil, fmt.Errorf("bench: query through worker kill: %w", err)
	}
	rep.RecoverySeconds = time.Since(t0).Seconds()
	if fc.Faults() == 0 {
		return nil, fmt.Errorf("bench: the kill never fired (resident sample absorbed the tight query)")
	}
	t0 = time.Now()
	if _, err := twin.Query(opt.KMax, opt.EpsTight); err != nil {
		return nil, err
	}
	rep.CleanGrowSeconds = time.Since(t0).Seconds()

	degraded, err := driveLevel(base, svc, opt.Concurrency, opt.Requests, opt.KMax, opt.EpsTight)
	if err != nil {
		return nil, err
	}
	rep.Degraded = *degraded

	st := svc.Stats()
	rep.R1Workers = st.R1Workers
	rep.Refused = st.Degraded
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *FaultReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Fault runs the fault-injection benchmark at the harness's seed, prints
// a summary, and — when jsonPath is non-empty — records the report
// machine-readably (BENCH_FAULT.json).
func (c Config) Fault(jsonPath string) (*FaultReport, error) {
	rep, err := RunServeFaultBench(FaultOptions{Model: diffusion.IC, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	c.printf("\n== fault injection (kill 1 of %d R1 workers mid-growth, %d nodes, GOMAXPROCS=%d) ==\n",
		rep.Machines, rep.Nodes, rep.GOMAXPROCS)
	c.printf("healthy (eps=%.2f):       p50 %.2fms p99 %.2fms over %d reqs\n",
		rep.EpsLoose, rep.Healthy.P50Ms, rep.Healthy.P99Ms, rep.Healthy.Requests)
	c.printf("kill + grow (eps=%.2f):   recovered in %.2fs (clean growth: %.2fs)\n",
		rep.EpsTight, rep.RecoverySeconds, rep.CleanGrowSeconds)
	c.printf("post-recovery:            p50 %.2fms p99 %.2fms over %d reqs, %d refused\n",
		rep.Degraded.P50Ms, rep.Degraded.P99Ms, rep.Degraded.Requests, rep.Refused)
	for _, h := range rep.R1Workers {
		c.printf("r1 worker %d: up=%v retries=%d failovers=%d\n", h.Worker, h.Up, h.Retries, h.Failovers)
	}
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}
