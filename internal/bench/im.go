package bench

import (
	"fmt"
	"net"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/core"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/workload"
)

// IMRow is one (dataset, ℓ) cell of Figs. 5–9.
type IMRow struct {
	Dataset   string
	Machines  int
	Wall      time.Duration // raw master wall time on this box
	Critical  time.Duration // modeled ℓ-machine wall time (see DESIGN.md)
	Gen       time.Duration // critical-path generation time
	Compute   time.Duration // critical-path selection + master compute
	Comm      time.Duration // transport + codec time
	Bytes     int64         // total payload bytes both directions
	Theta     int64         // RR sets generated
	TotalSize int64         // Σ |R|
	EstSpread float64
}

// Speedup returns base.Critical / r.Critical.
func (r IMRow) Speedup(base IMRow) float64 {
	if r.Critical <= 0 {
		return 0
	}
	return float64(base.Critical) / float64(r.Critical)
}

// runOne executes a DIIMM cell c.Repeats times and keeps the fastest
// measurement (by modeled cluster time). dial, when non-nil, provides a
// fresh set of worker connections per repeat so per-run byte counters
// start from zero.
func (c Config) runOne(spec workload.Spec, g *graph.Graph, machines int, model diffusion.Model, subset bool, dial func() ([]cluster.Conn, func(), error)) (IMRow, error) {
	runRep := func() (IMRow, error) {
		var conns []cluster.Conn
		if dial != nil {
			var shutdown func()
			var err error
			conns, shutdown, err = dial()
			if err != nil {
				return IMRow{}, err
			}
			defer shutdown()
		}
		return c.runOnce(spec, g, machines, model, subset, conns)
	}
	best, err := runRep()
	if err != nil {
		return IMRow{}, err
	}
	for rep := 1; rep < c.Repeats; rep++ {
		row, err := runRep()
		if err != nil {
			return IMRow{}, err
		}
		if row.Critical < best.Critical {
			best = row
		}
	}
	return best, nil
}

// runOnce executes a single DIIMM run and flattens it into an IMRow.
func (c Config) runOnce(spec workload.Spec, g *graph.Graph, machines int, model diffusion.Model, subset bool, conns []cluster.Conn) (IMRow, error) {
	opt := core.Options{
		K:           c.K,
		Eps:         c.Eps,
		Delta:       c.Delta,
		Machines:    machines,
		Model:       model,
		Subset:      subset,
		Seed:        c.Seed,
		Parallelism: c.Parallelism,
		Batch:       c.Batch,
	}
	var (
		res *core.Result
		err error
	)
	if conns == nil {
		res, err = core.RunDIIMM(g, opt)
	} else {
		var cl *cluster.Cluster
		cl, err = cluster.New(conns, g.NumNodes())
		if err != nil {
			return IMRow{}, err
		}
		// Model the paper's switched network analytically (see
		// Cluster.SetLinkModel): links transfer in parallel, so the
		// modeled delay is per-round RTT plus the slowest link's bytes.
		cl.SetLinkModel(c.LinkRTT, c.LinkBandwidth)
		res, err = core.RunDIIMMOnCluster(g.NumNodes(), cl, opt)
	}
	if err != nil {
		return IMRow{}, fmt.Errorf("bench: %s ℓ=%d: %w", spec.Name, machines, err)
	}
	m := res.Metrics
	return IMRow{
		Dataset:   spec.Name,
		Machines:  machines,
		Wall:      res.Wall,
		Critical:  m.CriticalPath(),
		Gen:       m.GenCritical,
		Compute:   m.SelCritical + m.MasterCompute,
		Comm:      m.Comm,
		Bytes:     m.BytesSent + m.BytesReceived,
		Theta:     res.Theta,
		TotalSize: res.Stats.TotalSize,
		EstSpread: res.EstSpread,
	}, nil
}

// printIMHeader emits the figure's column header.
func (c Config) printIMHeader(title string) {
	c.printf("\n== %s ==\n", title)
	c.printf("%-16s %4s  %10s %10s %10s %10s %10s %8s %9s %7s\n",
		"dataset", "l", "cluster", "gen", "compute", "comm", "wall(1core)", "traffic", "theta", "speedup")
}

func (c Config) printIMRow(r IMRow, base IMRow) {
	c.printf("%-16s %4d  %10s %10s %10s %10s %10s %8s %9s %6.1fx\n",
		r.Dataset, r.Machines,
		fmtDur(r.Critical), fmtDur(r.Gen), fmtDur(r.Compute), fmtDur(r.Comm), fmtDur(r.Wall),
		fmtCount(r.Bytes), fmtCount(r.Theta), r.Speedup(base))
}

// multiCoreFigure runs a Figs. 6/7/9-style sweep on the in-process
// transport and returns all rows.
func (c Config) multiCoreFigure(title string, model diffusion.Model, subset bool, counts []int) ([]IMRow, error) {
	c.printIMHeader(title)
	var rows []IMRow
	for _, spec := range c.specs() {
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		var base IMRow
		for i, l := range counts {
			row, err := c.runOne(spec, g, l, model, subset, nil)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = row
			}
			rows = append(rows, row)
			c.printIMRow(row, base)
		}
	}
	return rows, nil
}

// dialer returns a fresh-worker dial closure for the TCP figures.
func (c Config) dialer(g *graph.Graph, model diffusion.Model, l int) func() ([]cluster.Conn, func(), error) {
	return func() ([]cluster.Conn, func(), error) {
		return c.dialTCPWorkers(g, model, l)
	}
}

// Fig6 reproduces Fig. 6: DIIMM under IC on a multi-core server.
func (c Config) Fig6() ([]IMRow, error) {
	return c.multiCoreFigure("Fig 6: DIIMM running time, IC model, multi-core server", diffusion.IC, false, c.CoreCounts)
}

// Fig7 reproduces Fig. 7: distributed SUBSIM under IC, multi-core.
func (c Config) Fig7() ([]IMRow, error) {
	return c.multiCoreFigure("Fig 7: distributed SUBSIM running time, IC model, multi-core server", diffusion.IC, true, c.CoreCounts)
}

// Fig9 reproduces Fig. 9: DIIMM under LT, multi-core.
func (c Config) Fig9() ([]IMRow, error) {
	return c.multiCoreFigure("Fig 9: DIIMM running time, LT model, multi-core server", diffusion.LT, false, c.CoreCounts)
}

// clusterFigure runs a Figs. 5/8-style sweep over real TCP loopback
// workers (one goroutine-served socket per machine, mirroring the paper's
// 17-node cluster with a 1-master/ℓ-slave layout).
func (c Config) clusterFigure(title string, model diffusion.Model, counts []int) ([]IMRow, error) {
	c.printIMHeader(title)
	var rows []IMRow
	for _, spec := range c.specs() {
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		var base IMRow
		for i, l := range counts {
			row, err := c.runOne(spec, g, l, model, false, c.dialer(g, model, l))
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = row
			}
			rows = append(rows, row)
			c.printIMRow(row, base)
		}
	}
	return rows, nil
}

// dialTCPWorkers starts l loopback TCP workers over g and dials them.
func (c Config) dialTCPWorkers(g *graph.Graph, model diffusion.Model, l int) ([]cluster.Conn, func(), error) {
	conns := make([]cluster.Conn, 0, l)
	listeners := make([]net.Listener, 0, l)
	shutdown := func() {
		for _, conn := range conns {
			conn.Close()
		}
		for _, lis := range listeners {
			lis.Close()
		}
	}
	for i := 0; i < l; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		listeners = append(listeners, lis)
		seed := cluster.DeriveSeed(c.Seed, i)
		par := core.ResolveParallelism(c.Parallelism, l)
		go func() {
			_ = cluster.Serve(lis, func() (*cluster.Worker, error) {
				return cluster.NewWorker(cluster.WorkerConfig{Graph: g, Model: model, Seed: seed, Parallelism: par, Batch: c.Batch})
			})
		}()
		conn, err := cluster.DialWorker(lis.Addr().String())
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		conns = append(conns, conn)
	}
	return conns, shutdown, nil
}

// Fig5 reproduces Fig. 5: DIIMM under IC over a cluster of machines (TCP).
func (c Config) Fig5() ([]IMRow, error) {
	return c.clusterFigure("Fig 5: DIIMM running time, IC model, TCP cluster", diffusion.IC, c.ClusterSizes)
}

// Fig8 reproduces Fig. 8: DIIMM under LT over a cluster of machines (TCP).
func (c Config) Fig8() ([]IMRow, error) {
	return c.clusterFigure("Fig 8: DIIMM running time, LT model, TCP cluster", diffusion.LT, c.ClusterSizes)
}

// TableIVRow is one dataset row of Table IV.
type TableIVRow struct {
	Dataset   string
	Theta     int64
	TotalSize int64
}

// TableIV reproduces Table IV: the number and total size of RR sets DIIMM
// generates under the IC model per dataset.
func (c Config) TableIV() ([]TableIVRow, error) {
	c.printf("\n== Table IV: the size of RR sets under the IC model ==\n")
	c.printf("%-16s %12s %12s %12s\n", "dataset", "#RR sets", "total size", "avg |R|")
	var rows []TableIVRow
	for _, spec := range c.specs() {
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		row, err := c.runOne(spec, g, 4, diffusion.IC, false, nil)
		if err != nil {
			return nil, err
		}
		out := TableIVRow{Dataset: spec.Name, Theta: row.Theta, TotalSize: row.TotalSize}
		rows = append(rows, out)
		c.printf("%-16s %12s %12s %12.2f\n", out.Dataset, fmtCount(out.Theta), fmtCount(out.TotalSize),
			float64(out.TotalSize)/float64(out.Theta))
	}
	return rows, nil
}

// TableIII reproduces Table III: dataset statistics, side by side with the
// paper's original numbers.
func (c Config) TableIII() error {
	c.printf("\n== Table III: datasets (synthetic stand-ins vs paper originals) ==\n")
	c.printf("%-16s %9s %9s %11s %8s   %s\n", "dataset", "#nodes", "#edges", "type", "avgdeg", "paper: nodes/edges/avgdeg")
	for _, spec := range c.specs() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		c.printf("%-16s %9s %9s %11s %8.1f   %s / %s / %.1f\n",
			spec.Name, fmtCount(int64(g.NumNodes())), fmtCount(g.NumEdges()),
			spec.TypeString(), g.AvgDegree(),
			spec.PaperNodes, spec.PaperEdges, spec.PaperAvgDegree)
	}
	return nil
}
