package bench

import (
	"time"

	"dimm/internal/core"
	"dimm/internal/coverage"
	"dimm/internal/workload"
)

// MCRow is one (dataset, ℓ) cell of Fig. 10.
type MCRow struct {
	Dataset string
	Cores   int
	// NEWGREEDI over the cluster substrate.
	NGWall     time.Duration
	NGCritical time.Duration
	NGComm     time.Duration
	NGCoverage int64
	// GREEDI set-distributed baseline.
	GDWall     time.Duration
	GDCoverage int64
	// Sequential greedy baseline (recorded on the Cores == 1 row and
	// reused for all rows of a dataset).
	SeqWall     time.Duration
	SeqCoverage int64
}

// NGSpeedup is Fig. 10(b)'s NEWGREEDI series: sequential greedy time over
// NEWGREEDI critical-path time.
func (r MCRow) NGSpeedup() float64 {
	if r.NGCritical <= 0 {
		return 0
	}
	return float64(r.SeqWall) / float64(r.NGCritical)
}

// GDSpeedup is Fig. 10(b)'s GREEDI series (wall-based; GreeDi's stage-1
// machines run independently, so its modeled parallel time is the slowest
// machine plus the merge — here approximated by wall/ℓ for stage 1).
func (r MCRow) GDSpeedup() float64 {
	if r.GDWall <= 0 {
		return 0
	}
	return float64(r.SeqWall) / (float64(r.GDWall)/float64(r.Cores) + 1)
}

// CoverageRatio is Fig. 10(c): GREEDI coverage over NEWGREEDI coverage.
func (r MCRow) CoverageRatio() float64 {
	if r.NGCoverage == 0 {
		return 0
	}
	return float64(r.GDCoverage) / float64(r.NGCoverage)
}

// Fig10 reproduces Fig. 10: maximum coverage over each graph's
// neighbor-set instance — (a) NEWGREEDI running time vs cores,
// (b) speedups over the sequential greedy, (c) GREEDI/NEWGREEDI coverage.
func (c Config) Fig10() ([]MCRow, error) {
	c.printf("\n== Fig 10: maximum coverage, NEWGREEDI vs GREEDI, multi-core ==\n")
	c.printf("%-16s %5s  %10s %10s %10s %8s %8s %9s %9s %7s\n",
		"dataset", "cores", "NG-time", "NG-comm", "GD-time", "NG-spd", "GD-spd", "NG-cov", "GD-cov", "ratio")
	var rows []MCRow
	for _, spec := range c.specs() {
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		sys, err := workload.NeighborSetSystem(g)
		if err != nil {
			return nil, err
		}
		k := c.MaxCoverK
		if k > sys.NumSets() {
			k = sys.NumSets()
		}
		seqStart := time.Now()
		seq, err := sys.SequentialGreedy(k)
		if err != nil {
			return nil, err
		}
		seqWall := time.Since(seqStart)
		for _, cores := range c.CoreCounts {
			ng, err := core.NewGreeDiMaxCoverage(sys, k, cores)
			if err != nil {
				return nil, err
			}
			gdStart := time.Now()
			gd, err := coverage.GreeDi(sys, k, cores)
			if err != nil {
				return nil, err
			}
			gdWall := time.Since(gdStart)
			row := MCRow{
				Dataset:     spec.Name,
				Cores:       cores,
				NGWall:      ng.Wall,
				NGCritical:  ng.Metrics.CriticalPath(),
				NGComm:      ng.Metrics.Comm,
				NGCoverage:  ng.Coverage,
				GDWall:      gdWall,
				GDCoverage:  gd.Coverage,
				SeqWall:     seqWall,
				SeqCoverage: seq.Coverage,
			}
			// Invariant check while we are here: NEWGREEDI must equal the
			// sequential greedy's coverage exactly (Lemma 2).
			if row.NGCoverage != seq.Coverage {
				c.printf("!! NEWGREEDI coverage %d != sequential %d on %s ℓ=%d\n",
					row.NGCoverage, seq.Coverage, spec.Name, cores)
			}
			rows = append(rows, row)
			c.printf("%-16s %5d  %10s %10s %10s %7.1fx %7.1fx %9s %9s %7.3f\n",
				row.Dataset, row.Cores,
				fmtDur(row.NGCritical), fmtDur(row.NGComm), fmtDur(row.GDWall),
				row.NGSpeedup(), row.GDSpeedup(),
				fmtCount(row.NGCoverage), fmtCount(row.GDCoverage), row.CoverageRatio())
		}
	}
	return rows, nil
}
