package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
	"dimm/internal/rss"
)

// OOCOptions configures the out-of-core sampling benchmark: RR-set
// generation straight off a segmented (.dsg) graph file, contrasting the
// mmap backend (CSR served from the page cache, never heap-resident)
// against the mem backend (CSR decoded into heap slices).
type OOCOptions struct {
	GraphPath string // segmented graph file (required)
	Model     diffusion.Model
	Subset    bool // SUBSIM subset sampling
	Seed      uint64
	Count     int64 // RR sets generated per batch level (default 100_000)
	Bs        []int // frontier-batch width sweep (default 1, 64, 256)
	Backends  []graph.Backend
	// ColdSets sizes the mmap backend's cold-start phase: the file is
	// evicted from the page cache (EvictFileCache) and ColdSets RR sets
	// are sampled at B=64 while every miss refaults from disk — the
	// genuinely out-of-core regime, where the residency watcher easily
	// holds peak RSS near the budget because regrowth is storage-bound.
	// The warm sweep that follows (after a sequential re-warm read)
	// measures throughput with the page cache hot. 0 defaults to 2_000;
	// negative skips the cold phase.
	ColdSets int64
	// RSSBudget bounds the mmap run's residency: a watcher samples VmRSS
	// and calls DropResidency when it crosses the budget, returning the
	// mapped pages to the page cache. 0 defaults to CSRBytes/16.
	//
	// How tightly the budget holds depends on the cache regime. Cold
	// (the ColdSets phase, file evicted): every miss is a disk read, so
	// regrowth is storage-bound and the peak sits near the budget. Warm
	// (the batch sweep on a box with the file fully cached): RSS is
	// shared clean page-cache pages, and every random fault maps a
	// fault-around cluster of surrounding cached pages (~64 KiB), so
	// the sampler re-PTEs tens of GB/s — faster than a polling madvise
	// can shed; the warm peak settles at a drop/refault equilibrium
	// above the budget (20–45% of CSR across runs on a 1-CPU box) that
	// the budget setting does not directly control. Negative disables
	// the watcher.
	RSSBudget int64
}

func (o OOCOptions) withDefaults() OOCOptions {
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if o.Count == 0 {
		o.Count = 100_000
	}
	if len(o.Bs) == 0 {
		o.Bs = []int{1, 64, 256}
	}
	if o.ColdSets == 0 {
		o.ColdSets = 2_000
	}
	if len(o.Backends) == 0 {
		// Mmap first: its residency figure is only honest while the heap
		// is small. The mem backend's full-CSR heap (freed by Go but not
		// promptly returned to the OS) would otherwise sit under the
		// mmap run's RSS.
		o.Backends = []graph.Backend{graph.BackendMmap, graph.BackendMem}
	}
	return o
}

// OOCLevel is one frontier-batch-width level of a backend's run.
type OOCLevel struct {
	Batch        int     `json:"batch"`
	Sets         int64   `json:"sets"`
	TotalSize    int64   `json:"total_size"`
	Probes       int64   `json:"probes"`
	Seconds      float64 `json:"seconds"`
	SetsPerSec   float64 `json:"sets_per_sec"`
	ProbesPerSec float64 `json:"probes_per_sec"`
	// PeakRSS is this level's own high-water mark (the per-phase reset
	// lets a run see which batch width forms the backend's peak).
	PeakRSS int64 `json:"peak_rss_bytes"`
	// Digest fingerprints the sampled collection (every member of every
	// set, in order). Identical digests across backends and batch widths
	// are the bit-identity guarantee measured, not assumed.
	Digest string `json:"digest"`
}

// OOCBackendResult is one backend's pass over the batch sweep.
//
// PeakRSS covers the whole pass, warm sweep included — on a warm page
// cache it reflects shared clean file pages that the kernel's
// fault-around repopulates faster than madvise can shed them. ColdStart
// (mmap only) is the out-of-core figure: sampling with the file evicted
// from the page cache, where its PeakRSS is genuinely bounded by the
// residency budget.
type OOCBackendResult struct {
	Backend         string     `json:"backend"`
	OpenSeconds     float64    `json:"open_seconds"`
	OpenRSS         int64      `json:"open_rss_bytes"`
	PeakRSS         int64      `json:"peak_rss_bytes"`
	PeakRSSFrac     float64    `json:"peak_rss_frac_of_csr"`
	Drops           int64      `json:"residency_drops"`
	ColdStart       *OOCLevel  `json:"cold_start,omitempty"`
	ColdPeakRSSFrac float64    `json:"cold_peak_rss_frac_of_csr,omitempty"`
	Levels          []OOCLevel `json:"levels"`
}

// OOCReport is the machine-readable record written to BENCH_OOC.json.
// PeakResettable=false means the kernel refused /proc/self/clear_refs
// and every PeakRSS is the whole-process high-water mark instead of a
// per-backend one.
type OOCReport struct {
	GOMAXPROCS     int                `json:"gomaxprocs"`
	NumCPU         int                `json:"num_cpu"`
	GraphPath      string             `json:"graph_path"`
	Nodes          int64              `json:"nodes"`
	Edges          int64              `json:"edges"`
	CSRBytes       int64              `json:"csr_bytes"`
	FileBytes      int64              `json:"file_bytes"`
	WeightTag      string             `json:"weight_tag"`
	Model          string             `json:"model"`
	Subset         bool               `json:"subset"`
	Seed           uint64             `json:"seed"`
	Count          int64              `json:"count"`
	ColdSets       int64              `json:"cold_sets"`
	RSSBudget      int64              `json:"rss_budget_bytes"`
	PeakResettable bool               `json:"peak_resettable"`
	DigestsMatch   bool               `json:"digests_match"`
	Backends       []OOCBackendResult `json:"backends"`
}

// collectionDigest hashes every set's length and members in collection
// order — a full-content fingerprint, cheap next to generating the sets.
func collectionDigest(coll *rrset.Collection) string {
	h := sha256.New()
	var buf [4]byte
	for i := 0; i < coll.Count(); i++ {
		set := coll.Set(i)
		binary.LittleEndian.PutUint32(buf[:], uint32(len(set)))
		h.Write(buf[:])
		for _, v := range set {
			binary.LittleEndian.PutUint32(buf[:], v)
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// residencyWatcher polls VmRSS and sheds the graph's mapped pages
// whenever the process crosses budget. MADV_DONTNEED on a read-only
// file mapping drops page-table entries, not page-cache contents, so a
// drop costs re-faults (minor, usually) rather than re-reads.
//
// One drop per poll is not enough: the sampler re-PTEs tens of GB/s on
// a warm page cache (every random fault maps a fault-around cluster of
// surrounding cached pages), and it keeps faulting pages back in behind
// the madvise cursor while a drop is in flight. So on crossing the
// budget the watcher spins drops back-to-back until residency is below
// half the budget — on a saturated box the spinning watcher also steals
// cycles from the faulting sampler, a negative-feedback throttle that
// holds the peak instead of chasing it. The spin bails once a full drop
// stops reducing RSS: what remains is heap, which madvise cannot shed.
type residencyWatcher struct {
	stop  chan struct{}
	done  chan struct{}
	drops int64
}

func watchResidency(g *graph.Graph, budget int64) *residencyWatcher {
	w := &residencyWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				prev := rss.Current()
				if prev <= budget {
					continue
				}
				for spins := 0; spins < 64; spins++ {
					if g.DropResidency() != nil {
						return
					}
					w.drops++
					cur := rss.Current()
					if cur <= budget/2 || cur >= prev-(1<<20) {
						break
					}
					prev = cur
				}
			}
		}
	}()
	return w
}

func (w *residencyWatcher) halt() int64 {
	close(w.stop)
	<-w.done
	return w.drops
}

// RunOOC runs the out-of-core benchmark: for each backend, open the
// segmented graph, sweep the frontier-batch widths at parallelism 1
// (the sweep measures the storage substrate, not core scaling), and
// record throughput, residency and the sampled collection's digest.
func RunOOC(opt OOCOptions) (*OOCReport, error) {
	opt = opt.withDefaults()
	if opt.GraphPath == "" {
		return nil, fmt.Errorf("bench: ooc needs a segmented graph path")
	}
	info, err := graph.StatSegmented(opt.GraphPath)
	if err != nil {
		return nil, err
	}
	rep := &OOCReport{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		GraphPath:      opt.GraphPath,
		Nodes:          info.Nodes,
		Edges:          info.Edges,
		CSRBytes:       info.CSRBytes,
		FileBytes:      info.FileBytes,
		WeightTag:      info.WeightTag,
		Model:          opt.Model.String(),
		Subset:         opt.Subset,
		Seed:           opt.Seed,
		Count:          opt.Count,
		ColdSets:       opt.ColdSets,
		RSSBudget:      opt.RSSBudget,
		PeakResettable: true,
		DigestsMatch:   true,
	}
	if rep.RSSBudget == 0 {
		rep.RSSBudget = info.CSRBytes / 16
	}
	var wantDigest string
	var digestOnce sync.Once
	for _, backend := range opt.Backends {
		if !rss.ResetPeak() {
			rep.PeakResettable = false
		}
		res, err := runOOCBackend(opt, backend, rep.RSSBudget)
		if err != nil {
			return nil, err
		}
		if info.CSRBytes > 0 {
			res.PeakRSSFrac = float64(res.PeakRSS) / float64(info.CSRBytes)
			if res.ColdStart != nil {
				res.ColdPeakRSSFrac = float64(res.ColdStart.PeakRSS) / float64(info.CSRBytes)
			}
		}
		for _, lv := range res.Levels {
			digestOnce.Do(func() { wantDigest = lv.Digest })
			if lv.Digest != wantDigest {
				rep.DigestsMatch = false
			}
		}
		rep.Backends = append(rep.Backends, *res)
	}
	return rep, nil
}

func runOOCBackend(opt OOCOptions, backend graph.Backend, budget int64) (*OOCBackendResult, error) {
	start := time.Now()
	g, err := graph.OpenSegmented(opt.GraphPath, backend)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	res := &OOCBackendResult{
		Backend:     backend.String(),
		OpenSeconds: time.Since(start).Seconds(),
		OpenRSS:     rss.Current(),
	}
	res.PeakRSS = rss.Peak()
	var watcher *residencyWatcher
	if backend == graph.BackendMmap && budget > 0 {
		watcher = watchResidency(g, budget)
	}
	runLevel := func(bw int, count int64) (OOCLevel, error) {
		s, err := rrset.NewShardedSamplerBatch(g, opt.Model, opt.Seed, opt.Subset, 1, bw)
		if err != nil {
			return OOCLevel{}, err
		}
		coll := rrset.NewCollection(1 << 16)
		rss.ResetPeak()
		t := time.Now()
		s.SampleManyInto(coll, count)
		secs := time.Since(t).Seconds()
		return OOCLevel{
			Batch:        bw,
			Sets:         int64(coll.Count()),
			TotalSize:    coll.TotalSize(),
			Probes:       coll.EdgesExamined(),
			Seconds:      secs,
			SetsPerSec:   float64(coll.Count()) / secs,
			ProbesPerSec: float64(coll.EdgesExamined()) / secs,
			PeakRSS:      rss.Peak(),
			Digest:       collectionDigest(coll),
		}, nil
	}
	if backend == graph.BackendMmap && opt.ColdSets > 0 {
		if err := g.EvictFileCache(); err != nil {
			return nil, fmt.Errorf("bench: evicting %s from page cache: %w", opt.GraphPath, err)
		}
		lv, err := runLevel(64, opt.ColdSets)
		if err != nil {
			return nil, err
		}
		res.ColdStart = &lv
		if lv.PeakRSS > res.PeakRSS {
			res.PeakRSS = lv.PeakRSS
		}
		// Re-warm the cache with one sequential pass (plain reads, no
		// mapping, so RSS stays flat) — otherwise the first warm level
		// would pay the cold phase's eviction back in random disk reads.
		if err := rewarmFile(opt.GraphPath); err != nil {
			return nil, err
		}
	}
	for _, bw := range opt.Bs {
		lv, err := runLevel(bw, opt.Count)
		if err != nil {
			return nil, err
		}
		if lv.PeakRSS > res.PeakRSS {
			res.PeakRSS = lv.PeakRSS
		}
		res.Levels = append(res.Levels, lv)
	}
	if watcher != nil {
		res.Drops = watcher.halt()
	}
	return res, nil
}

// rewarmFile streams the whole file through the page cache once.
func rewarmFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 1<<20)
	var off int64
	for {
		n, err := f.ReadAt(buf, off)
		off += int64(n)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("bench: re-warming %s: %w", path, err)
		}
	}
}

// WriteJSON writes the report, indented, to path.
func (r *OOCReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// OOC runs the out-of-core benchmark, prints a table, and — when
// jsonPath is non-empty — records the report (BENCH_OOC.json). Zero
// option fields take the sweep defaults; Seed defaults to the harness
// seed.
func (c Config) OOC(opt OOCOptions, jsonPath string) (*OOCReport, error) {
	if opt.Seed == 0 {
		opt.Seed = c.Seed
	}
	rep, err := RunOOC(opt)
	if err != nil {
		return nil, err
	}
	c.printf("\n== out-of-core RR generation (%s: %s nodes / %s edges, CSR %s, budget %s) ==\n",
		rep.GraphPath, fmtCount(rep.Nodes), fmtCount(rep.Edges),
		fmtBytes(rep.CSRBytes), fmtBytes(rep.RSSBudget))
	c.printf("%-6s %5s %12s %12s %14s %12s %10s %7s\n",
		"back", "B", "sets", "sets/s", "probes/s", "peak RSS", "of CSR", "drops")
	for _, b := range rep.Backends {
		if cs := b.ColdStart; cs != nil {
			c.printf("%-6s cold-start (page cache evicted): %s sets @ B=%d in %.1fs, peak RSS %s (%.1f%% of CSR)\n",
				b.Backend, fmtCount(cs.Sets), cs.Batch, cs.Seconds,
				fmtBytes(cs.PeakRSS), 100*b.ColdPeakRSSFrac)
		}
		for i, lv := range b.Levels {
			peak, frac, drops := "", "", ""
			if i == len(b.Levels)-1 {
				peak = fmtBytes(b.PeakRSS)
				frac = fmt.Sprintf("%.1f%%", 100*b.PeakRSSFrac)
				drops = fmt.Sprintf("%d", b.Drops)
			}
			c.printf("%-6s %5d %12s %12.0f %14.0f %12s %10s %7s\n",
				b.Backend, lv.Batch, fmtCount(lv.Sets), lv.SetsPerSec, lv.ProbesPerSec,
				peak, frac, drops)
		}
	}
	if !rep.PeakResettable {
		c.printf("warning: /proc/self/clear_refs rejected the peak reset; peak RSS is per-process, not per-backend\n")
	}
	if rep.DigestsMatch {
		c.printf("collection digests identical across backends and batch widths\n")
	} else {
		c.printf("WARNING: collection digests diverged across backends (this should never happen)\n")
	}
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}
