package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dimm/internal/graph"
)

// TestRunOOCSmoke runs the out-of-core benchmark end to end on a tiny
// segmented graph and checks the invariant the benchmark exists to
// measure: identical collection digests across backends and batch
// widths, with per-backend residency accounting filled in.
func TestRunOOCSmoke(t *testing.T) {
	g, err := graph.GenRMAT(graph.RMATConfig{GenConfig: graph.GenConfig{
		Nodes: 1_000, AvgDegree: 6, Seed: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := graph.WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}

	rep, err := RunOOC(OOCOptions{
		GraphPath: path, Seed: 11, Count: 2_000, Bs: []int{1, 64},
		ColdSets: 100,
		// The tiny CSR fits in a page or two; an RSS budget would fire
		// constantly and only add noise. Disable the watcher.
		RSSBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Backends) != 2 {
		t.Fatalf("%d backends, want 2 (mmap, mem)", len(rep.Backends))
	}
	if rep.Backends[0].Backend != "mmap" || rep.Backends[1].Backend != "mem" {
		t.Fatalf("backend order %s, %s; want mmap first (honest residency)",
			rep.Backends[0].Backend, rep.Backends[1].Backend)
	}
	if !rep.DigestsMatch {
		t.Fatal("collection digests diverged across backends")
	}
	if cs := rep.Backends[0].ColdStart; cs == nil {
		t.Fatal("mmap backend missing cold-start phase")
	} else if cs.Sets != 100 || cs.PeakRSS <= 0 || cs.Digest == "" {
		t.Fatalf("bad cold-start level: %+v", cs)
	}
	if rep.Backends[1].ColdStart != nil {
		t.Fatal("mem backend should not run a cold-start phase")
	}
	var want string
	for _, b := range rep.Backends {
		if len(b.Levels) != 2 {
			t.Fatalf("%s: %d levels, want 2", b.Backend, len(b.Levels))
		}
		if b.OpenSeconds <= 0 || b.OpenRSS <= 0 || b.PeakRSS <= 0 {
			t.Fatalf("%s: missing accounting: %+v", b.Backend, b)
		}
		for _, lv := range b.Levels {
			if lv.Sets != 2_000 || lv.Seconds <= 0 || lv.SetsPerSec <= 0 {
				t.Fatalf("%s B=%d: bad level: %+v", b.Backend, lv.Batch, lv)
			}
			if lv.Digest == "" {
				t.Fatalf("%s B=%d: empty digest", b.Backend, lv.Batch)
			}
			if want == "" {
				want = lv.Digest
			} else if lv.Digest != want {
				t.Fatalf("%s B=%d: digest %s, want %s", b.Backend, lv.Batch, lv.Digest, want)
			}
		}
	}

	jsonPath := filepath.Join(t.TempDir(), "ooc.json")
	if err := rep.WriteJSON(jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var back OOCReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CSRBytes != rep.CSRBytes || len(back.Backends) != len(rep.Backends) {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
}
