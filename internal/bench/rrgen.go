package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
)

// RRGenOptions configures the RR-set generation throughput sweep.
type RRGenOptions struct {
	GraphKind string  // "pref" (default) or "rmat" (heavier skew, larger cache footprint)
	Nodes     int     // synthetic graph size (default 50_000)
	AvgDegree float64 // synthetic graph average degree (default 10)
	Model     diffusion.Model
	Subset    bool // SUBSIM subset sampling
	Seed      uint64
	Count     int64 // RR sets generated per sweep level (default 200_000)
	Ps        []int // parallelism sweep (default 1,2,4,8)
	Bs        []int // frontier-batch width sweep (default 1,8,64,256)
}

func (o RRGenOptions) withDefaults() RRGenOptions {
	if o.GraphKind == "" {
		o.GraphKind = "pref"
	}
	if o.Nodes == 0 {
		o.Nodes = 50_000
	}
	if o.AvgDegree == 0 {
		o.AvgDegree = 10
	}
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if o.Count == 0 {
		o.Count = 200_000
	}
	if len(o.Ps) == 0 {
		o.Ps = []int{1, 2, 4, 8}
	}
	if len(o.Bs) == 0 {
		o.Bs = []int{1, 8, 64, 256}
	}
	return o
}

// RRGenResult is one (parallelism, batch-width) level of the sweep.
type RRGenResult struct {
	Parallelism      int     `json:"parallelism"`
	Batch            int     `json:"batch"`
	Sets             int64   `json:"sets"`
	TotalSize        int64   `json:"total_size"`
	Probes           int64   `json:"probes"`
	Seconds          float64 `json:"seconds"`
	SetsPerSec       float64 `json:"sets_per_sec"`
	ProbesPerSec     float64 `json:"probes_per_sec"`
	AllocBytesPerSet float64 `json:"alloc_bytes_per_set"`
	SpeedupVsP1      float64 `json:"speedup_vs_p1"`
	// SpeedupVsB1 compares against the scalar kernel at the same
	// parallelism: the frontier-batching win in isolation.
	SpeedupVsB1 float64 `json:"speedup_vs_b1"`
	// Skipped marks levels the box cannot honestly measure: running P
	// goroutines on fewer than P CPUs time-slices the shards and reports
	// a meaningless (often sub-1×) "speedup".
	Skipped bool   `json:"skipped,omitempty"`
	Warning string `json:"warning,omitempty"`
}

// RRGenReport is the machine-readable record written to BENCH_RRGEN.json
// so future changes can track the RR-generation perf trajectory. The
// GOMAXPROCS/NumCPU fields matter for interpretation: parallel speedup
// requires idle cores, and a 1-core box shows ≈1× at every P. Batched
// speedup (SpeedupVsB1) needs no idle cores — it is a locality win — so
// it is meaningful even on a 1-core box.
type RRGenReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GraphKind  string        `json:"graph_kind"`
	Nodes      int           `json:"nodes"`
	Edges      int64         `json:"edges"`
	Model      string        `json:"model"`
	Subset     bool          `json:"subset"`
	Seed       uint64        `json:"seed"`
	Count      int64         `json:"count"`
	Results    []RRGenResult `json:"results"`
}

// RunRRGen measures sharded RR-set generation throughput across the
// parallelism × batch-width sweep on one synthetic weighted-cascade
// graph. Every level uses the same worker seed (the sampled sets are
// identical at every level by the batch-invariance guarantee);
// collections are fresh per level. Each level runs a full untimed
// Count-set warmup pass first, so the timed window — and the
// alloc-per-set figure — measures the steady state of the arenas, not
// their growth.
func RunRRGen(opt RRGenOptions) (*RRGenReport, error) {
	opt = opt.withDefaults()
	var g *graph.Graph
	var err error
	switch opt.GraphKind {
	case "pref":
		g, err = graph.GenPreferential(graph.GenConfig{
			Nodes: opt.Nodes, AvgDegree: opt.AvgDegree, Seed: opt.Seed, UniformAttach: 0.15,
		})
	case "rmat":
		g, err = graph.GenRMAT(graph.RMATConfig{GenConfig: graph.GenConfig{
			Nodes: opt.Nodes, AvgDegree: opt.AvgDegree, Seed: opt.Seed,
		}})
	default:
		return nil, fmt.Errorf("bench: unknown rrgen graph kind %q (want pref|rmat)", opt.GraphKind)
	}
	if err != nil {
		return nil, err
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		return nil, err
	}
	rep := &RRGenReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GraphKind:  opt.GraphKind,
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Model:      opt.Model.String(),
		Subset:     opt.Subset,
		Seed:       opt.Seed,
		Count:      opt.Count,
	}
	find := func(p, b int) *RRGenResult {
		for i := range rep.Results {
			r := &rep.Results[i]
			if r.Parallelism == p && r.Batch == b && !r.Skipped {
				return r
			}
		}
		return nil
	}
	for _, p := range opt.Ps {
		for _, bw := range opt.Bs {
			if p > rep.NumCPU {
				rep.Results = append(rep.Results, RRGenResult{
					Parallelism: p,
					Batch:       bw,
					Skipped:     true,
					Warning: fmt.Sprintf("parallelism %d exceeds the box's %d CPU(s); a timed run would report time-slicing, not speedup",
						p, rep.NumCPU),
				})
				continue
			}
			s, err := rrset.NewShardedSamplerBatch(g, opt.Model, opt.Seed, opt.Subset, p, bw)
			if err != nil {
				return nil, err
			}
			coll := rrset.NewCollection(1 << 16)
			// Full warmup: generate Count sets, then reset. This grows the
			// collection arena, the lane scratch and the visited tables to
			// their steady-state capacity outside the timed window.
			s.SampleManyInto(coll, opt.Count)
			coll.Reset()
			var msBefore, msAfter runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&msBefore)
			start := time.Now()
			s.SampleManyInto(coll, opt.Count)
			secs := time.Since(start).Seconds()
			runtime.ReadMemStats(&msAfter)
			res := RRGenResult{
				Parallelism:      p,
				Batch:            bw,
				Sets:             int64(coll.Count()),
				TotalSize:        coll.TotalSize(),
				Probes:           coll.EdgesExamined(),
				Seconds:          secs,
				SetsPerSec:       float64(coll.Count()) / secs,
				ProbesPerSec:     float64(coll.EdgesExamined()) / secs,
				AllocBytesPerSet: float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(coll.Count()),
			}
			if rep.GOMAXPROCS < p {
				res.Warning = fmt.Sprintf("GOMAXPROCS=%d caps the %d shards; speedup is bounded by the smaller", rep.GOMAXPROCS, p)
			}
			if base := find(1, bw); base != nil {
				res.SpeedupVsP1 = res.SetsPerSec / base.SetsPerSec
			} else if p == 1 {
				res.SpeedupVsP1 = 1
			}
			if base := find(p, 1); base != nil {
				res.SpeedupVsB1 = res.SetsPerSec / base.SetsPerSec
			} else if bw == 1 {
				res.SpeedupVsB1 = 1
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *RRGenReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// RRGen runs the throughput sweep, prints a table, and — when jsonPath
// is non-empty — records the report machine-readably (BENCH_RRGEN.json).
// Zero option fields take the sweep defaults; Model defaults to IC and
// Seed to the harness seed.
func (c Config) RRGen(opt RRGenOptions, jsonPath string) (*RRGenReport, error) {
	if opt.Seed == 0 {
		opt.Seed = c.Seed
	}
	return c.rrgen(opt, jsonPath)
}

func (c Config) rrgen(opt RRGenOptions, jsonPath string) (*RRGenReport, error) {
	rep, err := RunRRGen(opt)
	if err != nil {
		return nil, err
	}
	c.printf("\n== RR-set generation throughput (sharded sampler, %s graph %d/%d, GOMAXPROCS=%d, %d CPUs) ==\n",
		rep.GraphKind, rep.Nodes, rep.Edges, rep.GOMAXPROCS, rep.NumCPU)
	c.printf("%4s %5s %12s %12s %14s %12s %8s %8s\n", "P", "B", "sets", "sets/s", "probes/s", "alloc/set", "vs P=1", "vs B=1")
	for _, r := range rep.Results {
		if r.Skipped {
			c.printf("%4d %5d %12s (%s)\n", r.Parallelism, r.Batch, "skipped", r.Warning)
			continue
		}
		c.printf("%4d %5d %12s %12.0f %14.0f %10.1fB %7.2fx %7.2fx\n",
			r.Parallelism, r.Batch, fmtCount(r.Sets), r.SetsPerSec, r.ProbesPerSec,
			r.AllocBytesPerSet, r.SpeedupVsP1, r.SpeedupVsB1)
		if r.Warning != "" {
			c.printf("     warning: %s\n", r.Warning)
		}
	}
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}
