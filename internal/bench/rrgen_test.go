package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
)

// TestRunRRGenSmoke runs a miniature sweep end to end and checks the
// report is internally consistent and the JSON round-trips.
func TestRunRRGenSmoke(t *testing.T) {
	rep, err := RunRRGen(RRGenOptions{
		Nodes: 2_000, AvgDegree: 6, Seed: 11, Count: 2_000,
		Ps: []int{1, 2}, Bs: []int{1, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("%d results, want 4 (2 P levels x 2 B levels)", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Skipped {
			// Levels beyond the box's CPU count are honestly skipped, not
			// timed; the row must say so instead of carrying bogus rates.
			if r.Parallelism <= rep.NumCPU || r.Warning == "" || r.Seconds != 0 {
				t.Fatalf("P=%d B=%d: bad skip record: %+v", r.Parallelism, r.Batch, r)
			}
			continue
		}
		if r.Sets != 2_000 {
			t.Fatalf("P=%d B=%d generated %d sets, want 2000", r.Parallelism, r.Batch, r.Sets)
		}
		if r.Seconds <= 0 || r.SetsPerSec <= 0 || r.ProbesPerSec <= 0 {
			t.Fatalf("P=%d B=%d: non-positive rates: %+v", r.Parallelism, r.Batch, r)
		}
		if r.SpeedupVsP1 <= 0 || r.SpeedupVsB1 <= 0 {
			t.Fatalf("P=%d B=%d speedups not recorded: %v / %v",
				r.Parallelism, r.Batch, r.SpeedupVsP1, r.SpeedupVsB1)
		}
	}
	if rep.Results[0].SpeedupVsP1 != 1 || rep.Results[0].SpeedupVsB1 != 1 {
		t.Fatalf("P=1 B=1 speedups %v/%v, want 1/1",
			rep.Results[0].SpeedupVsP1, rep.Results[0].SpeedupVsB1)
	}
	// Batch invariance: the scalar and batched levels at P=1 must have
	// sampled the exact same sets (same cardinality and probe totals).
	b1, b64 := rep.Results[0], rep.Results[1]
	if b1.TotalSize != b64.TotalSize || b1.Probes != b64.Probes {
		t.Fatalf("batched level sampled different sets: B=1 (%d, %d) vs B=64 (%d, %d)",
			b1.TotalSize, b1.Probes, b64.TotalSize, b64.Probes)
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		t.Fatalf("CPU context missing: %+v", rep)
	}

	path := filepath.Join(t.TempDir(), "rrgen.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RRGenReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != rep.Count || len(back.Results) != len(rep.Results) {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

// TestRunRRGenRMAT exercises the cache-stressing graph kind end to end
// at toy scale.
func TestRunRRGenRMAT(t *testing.T) {
	rep, err := RunRRGen(RRGenOptions{
		GraphKind: "rmat", Nodes: 3_000, AvgDegree: 6, Seed: 13, Count: 1_000,
		Ps: []int{1}, Bs: []int{1, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GraphKind != "rmat" || rep.Nodes != 3_000 {
		t.Fatalf("graph context wrong: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("%d results, want 2", len(rep.Results))
	}
	if rep.Results[0].TotalSize != rep.Results[1].TotalSize {
		t.Fatalf("batching changed the sampled sets on rmat: %d vs %d",
			rep.Results[0].TotalSize, rep.Results[1].TotalSize)
	}
	if _, err := RunRRGen(RRGenOptions{GraphKind: "nope", Nodes: 100}); err == nil {
		t.Fatal("unknown graph kind accepted")
	}
}

func TestConfigRRGenPrintsTableAndWritesJSON(t *testing.T) {
	var buf bytes.Buffer
	c := Config{Out: &buf, Seed: 3}
	path := filepath.Join(t.TempDir(), "rrgen.json")
	rep, err := c.rrgen(RRGenOptions{Nodes: 1_500, AvgDegree: 5, Seed: 3, Count: 1_000, Ps: []int{1, 2}, Bs: []int{1}}, path)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("GOMAXPROCS=")) || !bytes.Contains(buf.Bytes(), []byte("vs B=1")) {
		t.Fatalf("table missing from output: %q", out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("%d results, want 2", len(rep.Results))
	}
}

// BenchmarkRRGenParallel measures sharded RR-set generation throughput at
// P ∈ {1,2,4,8}. On a box with idle cores the P=4 rate should exceed
// 1.5× the P=1 rate; on a 1-core box all levels converge (run with
// b.ReportAllocs to confirm the arena keeps alloc/op flat regardless).
func BenchmarkRRGenParallel(b *testing.B) {
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 20_000, AvgDegree: 10, Seed: 20220501, UniformAttach: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			s, err := rrset.NewShardedSampler(g, diffusion.IC, 7, false, p)
			if err != nil {
				b.Fatal(err)
			}
			coll := rrset.NewCollection(1 << 16)
			s.SampleManyInto(coll, 1_000) // warm arenas outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coll.Reset()
				s.SampleManyInto(coll, 1_000)
			}
			b.StopTimer()
			if coll.Count() != 1_000 {
				b.Fatalf("generated %d sets per iteration, want 1000", coll.Count())
			}
			b.SetBytes(4 * coll.TotalSize())
		})
	}
}

// BenchmarkRRGenBatch measures the frontier-batched kernel at P=1 across
// batch widths on an R-MAT graph. Unlike the parallel sweep, the batched
// win is a cache-locality effect and shows on a 1-core box.
func BenchmarkRRGenBatch(b *testing.B) {
	g, err := graph.GenRMAT(graph.RMATConfig{GenConfig: graph.GenConfig{Nodes: 50_000, AvgDegree: 12, Seed: 20220501}})
	if err != nil {
		b.Fatal(err)
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		b.Fatal(err)
	}
	for _, bw := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("B=%d", bw), func(b *testing.B) {
			s, err := rrset.NewShardedSamplerBatch(g, diffusion.IC, 7, false, 1, bw)
			if err != nil {
				b.Fatal(err)
			}
			coll := rrset.NewCollection(1 << 16)
			s.SampleManyInto(coll, 1_000) // warm arenas outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coll.Reset()
				s.SampleManyInto(coll, 1_000)
			}
			b.StopTimer()
			if coll.Count() != 1_000 {
				b.Fatalf("generated %d sets per iteration, want 1000", coll.Count())
			}
			b.SetBytes(4 * coll.TotalSize())
		})
	}
}
