package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
	"dimm/internal/xrand"
)

// SelectOptions configures the NEWGREEDI selection critical-path sweep:
// one fixed max-coverage instance, selected at several kernel
// parallelism levels. The instance is ingested (not sampled), so every
// level sees byte-identical worker state and any seed divergence is the
// parallel kernel's fault.
type SelectOptions struct {
	Nodes    int    // selectable item space (default 30_000)
	Sets     int    // element lists in the instance (default 300_000)
	AvgSize  int    // average list size (default 8)
	K        int    // seeds to select (default 50)
	Machines int    // workers ℓ (default 2)
	Seed     uint64 // instance seed
	Ps       []int  // kernel parallelism sweep (default 1,2,4,8)
}

func (o SelectOptions) withDefaults() SelectOptions {
	if o.Nodes == 0 {
		o.Nodes = 30_000
	}
	if o.Sets == 0 {
		o.Sets = 300_000
	}
	if o.AvgSize == 0 {
		o.AvgSize = 8
	}
	if o.K == 0 {
		o.K = 50
	}
	if o.Machines == 0 {
		o.Machines = 2
	}
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if len(o.Ps) == 0 {
		o.Ps = []int{1, 2, 4, 8}
	}
	return o
}

// SelectResult is one parallelism level of the sweep.
type SelectResult struct {
	Parallelism   int     `json:"parallelism"`
	Seconds       float64 `json:"seconds"`        // selection wall time
	SelCritical   float64 `json:"sel_critical"`   // slowest-worker map-stage seconds
	SelTotal      float64 `json:"sel_total"`      // summed worker map-stage seconds
	MasterCompute float64 `json:"master_compute"` // master merge + bucket-scan seconds
	SelBytes      int64   `json:"sel_bytes"`      // selection-phase wire bytes (both directions)
	DeltaBytes    int64   `json:"delta_bytes"`    // adaptive delta frame bytes
	FixedBytes    int64   `json:"fixed_bytes"`    // what fixed-width framing would have cost
	Coverage      int64   `json:"coverage"`       // covered elements after K seeds
	SpeedupVsP1   float64 `json:"speedup_vs_p1"`  // SelCritical(P=1) / SelCritical(P)
	Skipped       bool    `json:"skipped,omitempty"`
	Warning       string  `json:"warning,omitempty"`
}

// SelectReport is the machine-readable record written to
// BENCH_SELECT.json. Interpretation needs the CPU fields: the map-stage
// speedup requires idle cores, and levels the box cannot honestly time
// are skipped rather than reported as bogus sub-1× rows.
type SelectReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Nodes      int            `json:"nodes"`
	Sets       int            `json:"sets"`
	AvgSize    int            `json:"avg_size"`
	K          int            `json:"k"`
	Machines   int            `json:"machines"`
	Seed       uint64         `json:"seed"`
	Seeds      []uint32       `json:"seeds"` // identical at every level, by construction
	Results    []SelectResult `json:"results"`
}

// selectInstance synthesizes the max-coverage instance: Sets element
// lists whose members are skew-distributed over Nodes (the product of two
// uniforms concentrates mass near 0, giving the heavy-tailed degree
// profile real RR samples have), pre-split round-robin across Machines.
func selectInstance(opt SelectOptions) [][][]uint32 {
	r := xrand.New(opt.Seed)
	perWorker := make([][][]uint32, opt.Machines)
	for i := 0; i < opt.Sets; i++ {
		sz := 1 + r.Intn(2*opt.AvgSize-1)
		set := make([]uint32, 0, sz)
		for len(set) < sz {
			v := uint32(float64(opt.Nodes) * r.Float64() * r.Float64())
			if v >= uint32(opt.Nodes) {
				v = uint32(opt.Nodes - 1)
			}
			dup := false
			for _, x := range set {
				dup = dup || x == v
			}
			if !dup {
				set = append(set, v)
			}
		}
		w := i % opt.Machines
		perWorker[w] = append(perWorker[w], set)
	}
	return perWorker
}

// RunSelectBench measures the NEWGREEDI selection critical path across
// the kernel parallelism sweep. Every level ingests the same instance
// into ℓ fresh workers, runs the exact lazy greedy through the cluster
// oracle under sequential broadcast (so per-worker handler timings are
// exact and the measured worker's kernel owns the cores), and reports
// the map-stage critical path plus the selection wire traffic under the
// adaptive delta encoding against the fixed-width baseline.
func RunSelectBench(opt SelectOptions) (*SelectReport, error) {
	opt = opt.withDefaults()
	perWorker := selectInstance(opt)
	rep := &SelectReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Nodes:      opt.Nodes,
		Sets:       opt.Sets,
		AvgSize:    opt.AvgSize,
		K:          opt.K,
		Machines:   opt.Machines,
		Seed:       opt.Seed,
	}
	var baseCritical float64
	for _, p := range opt.Ps {
		if p > rep.NumCPU {
			rep.Results = append(rep.Results, SelectResult{
				Parallelism: p,
				Skipped:     true,
				Warning: fmt.Sprintf("parallelism %d exceeds the box's %d CPU(s); a timed run would report time-slicing, not speedup",
					p, rep.NumCPU),
			})
			continue
		}
		cfgs := make([]cluster.WorkerConfig, opt.Machines)
		for i := range cfgs {
			cfgs[i] = cluster.WorkerConfig{Parallelism: p}
		}
		cl, err := cluster.NewLocal(cfgs, opt.Nodes)
		if err != nil {
			return nil, err
		}
		cl.SetSequentialBroadcast(true)
		for w := range perWorker {
			if err := cl.Ingest(w, perWorker[w]); err != nil {
				cl.Close()
				return nil, err
			}
		}
		before := cl.Metrics() // ingest syncs degrees; exclude it
		start := time.Now()
		res, err := coverage.RunGreedy(cl.Oracle(), opt.K)
		secs := time.Since(start).Seconds()
		after := cl.Metrics()
		cl.Close()
		if err != nil {
			return nil, err
		}
		if rep.Seeds == nil {
			rep.Seeds = res.Seeds
		} else if fmt.Sprint(rep.Seeds) != fmt.Sprint(res.Seeds) {
			return nil, fmt.Errorf("bench: P=%d selected different seeds than P=%d — parallel kernel broke determinism",
				p, rep.Results[0].Parallelism)
		}
		r := SelectResult{
			Parallelism:   p,
			Seconds:       secs,
			SelCritical:   (after.SelCritical - before.SelCritical).Seconds(),
			SelTotal:      (after.SelTotal - before.SelTotal).Seconds(),
			MasterCompute: (after.MasterCompute - before.MasterCompute).Seconds(),
			SelBytes:      (after.SelBytesSent - before.SelBytesSent) + (after.SelBytesReceived - before.SelBytesReceived),
			DeltaBytes:    after.DeltaBytes - before.DeltaBytes,
			FixedBytes:    13*(after.DeltaFrames-before.DeltaFrames) + 8*(after.DeltaPairs-before.DeltaPairs),
			Coverage:      res.Coverage,
		}
		if rep.GOMAXPROCS < p {
			r.Warning = fmt.Sprintf("GOMAXPROCS=%d caps the %d kernel goroutines; speedup is bounded by the smaller", rep.GOMAXPROCS, p)
		}
		if baseCritical == 0 && p == 1 {
			baseCritical = r.SelCritical
		}
		if baseCritical > 0 && r.SelCritical > 0 {
			r.SpeedupVsP1 = baseCritical / r.SelCritical
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *SelectReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Select runs the selection critical-path sweep at the harness's seed,
// prints a table, and — when jsonPath is non-empty — records the report
// machine-readably (BENCH_SELECT.json).
func (c Config) Select(jsonPath string) (*SelectReport, error) {
	rep, err := RunSelectBench(SelectOptions{Seed: c.Seed, K: c.K})
	if err != nil {
		return nil, err
	}
	c.printf("\n== NEWGREEDI selection critical path (ℓ=%d, k=%d, GOMAXPROCS=%d, %d CPUs) ==\n",
		rep.Machines, rep.K, rep.GOMAXPROCS, rep.NumCPU)
	c.printf("%4s %10s %12s %12s %12s %12s %8s\n",
		"P", "wall", "SelCritical", "master", "sel bytes", "delta bytes", "speedup")
	for _, r := range rep.Results {
		if r.Skipped {
			c.printf("%4d %10s (%s)\n", r.Parallelism, "skipped", r.Warning)
			continue
		}
		c.printf("%4d %9.3fs %11.3fs %11.3fs %12s %12s %7.2fx\n",
			r.Parallelism, r.Seconds, r.SelCritical, r.MasterCompute,
			fmtCount(r.SelBytes), fmtCount(r.DeltaBytes), r.SpeedupVsP1)
		if r.Warning != "" {
			c.printf("     warning: %s\n", r.Warning)
		}
	}
	if len(rep.Results) > 0 && !rep.Results[0].Skipped {
		r0 := rep.Results[0]
		if r0.FixedBytes > 0 {
			c.printf("adaptive delta frames: %s vs %s fixed-width (%.2fx)\n",
				fmtCount(r0.DeltaBytes), fmtCount(r0.FixedBytes),
				float64(r0.FixedBytes)/float64(max64(r0.DeltaBytes, 1)))
		}
	}
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
