package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSelectBenchSmoke runs a miniature selection sweep end to end:
// the report must carry identical seeds at every measured level, honest
// skip records for levels beyond the box's CPUs, and consistent byte
// accounting (adaptive delta bytes never above the fixed-width cost the
// encoder replaced, both inside the selection-phase totals).
func TestRunSelectBenchSmoke(t *testing.T) {
	rep, err := RunSelectBench(SelectOptions{
		Nodes: 400, Sets: 6_000, AvgSize: 5, K: 8, Seed: 9, Ps: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("%d results, want 2", len(rep.Results))
	}
	if len(rep.Seeds) != 8 {
		t.Fatalf("report carries %d seeds, want k=8", len(rep.Seeds))
	}
	for _, r := range rep.Results {
		if r.Skipped {
			if r.Parallelism <= rep.NumCPU || r.Warning == "" || r.Seconds != 0 {
				t.Fatalf("P=%d: bad skip record: %+v", r.Parallelism, r)
			}
			continue
		}
		if r.Coverage <= 0 || r.Coverage != rep.Results[0].Coverage {
			t.Fatalf("P=%d coverage %d diverges from P=1's %d", r.Parallelism, r.Coverage, rep.Results[0].Coverage)
		}
		if r.SelCritical <= 0 || r.Seconds <= 0 {
			t.Fatalf("P=%d: non-positive timings: %+v", r.Parallelism, r)
		}
		if r.DeltaBytes <= 0 || r.FixedBytes <= 0 || r.DeltaBytes > r.FixedBytes {
			t.Fatalf("P=%d: adaptive frames (%dB) should not exceed the fixed-width baseline (%dB)",
				r.Parallelism, r.DeltaBytes, r.FixedBytes)
		}
		if r.SelBytes < r.DeltaBytes {
			t.Fatalf("P=%d: selection-phase bytes %d below their delta-frame component %d",
				r.Parallelism, r.SelBytes, r.DeltaBytes)
		}
	}

	path := filepath.Join(t.TempDir(), "select.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SelectReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.K != rep.K || len(back.Results) != len(rep.Results) || len(back.Seeds) != len(rep.Seeds) {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestConfigSelectPrintsTableAndWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size sweep")
	}
	var buf bytes.Buffer
	c := Config{Out: &buf, Seed: 5, K: 10}
	path := filepath.Join(t.TempDir(), "select.json")
	if _, err := c.Select(path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("SelCritical")) {
		t.Fatalf("table missing from output: %q", buf.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
}
