package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/serve"
)

// ServeOptions configures the resident-query-service load benchmark.
type ServeOptions struct {
	Nodes     int     // synthetic graph size (default 20_000)
	AvgDegree float64 // synthetic graph average degree (default 10)
	Model     diffusion.Model
	Seed      uint64

	Machines int     // in-process machines per RR collection (default 2)
	KMax     int     // service admission cap (default 20)
	EpsFloor float64 // service epsilon floor (default 0.3)

	Concurrency []int // client fan-out sweep (default 1,4,16)
	Requests    int   // POST /v1/seeds requests per level (default 200)
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Nodes == 0 {
		o.Nodes = 20_000
	}
	if o.AvgDegree == 0 {
		o.AvgDegree = 10
	}
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if o.Machines == 0 {
		o.Machines = 2
	}
	if o.KMax == 0 {
		o.KMax = 20
	}
	if o.EpsFloor == 0 {
		o.EpsFloor = 0.3
	}
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, 4, 16}
	}
	if o.Requests == 0 {
		o.Requests = 200
	}
	return o
}

// ServeLevelResult is one concurrency level of the sweep. Latencies are
// measured client-side over loopback HTTP, so they include the full
// JSON/transport path a real deployment pays.
type ServeLevelResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int64   `json:"errors"`
	Seconds     float64 `json:"seconds"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// ReuseRate is the fraction of this level's queries answered with
	// zero new RR generation (LRU hits + resident-sample hits), from the
	// service's own counters.
	ReuseRate float64 `json:"reuse_rate"`
}

// ServeReport is the machine-readable record written to BENCH_SERVE.json.
type ServeReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Nodes      int     `json:"nodes"`
	Edges      int64   `json:"edges"`
	Model      string  `json:"model"`
	Seed       uint64  `json:"seed"`
	Machines   int     `json:"machines"`
	KMax       int     `json:"k_max"`
	EpsFloor   float64 `json:"eps_floor"`

	WarmSeconds float64 `json:"warm_seconds"` // one-time resident-sample build
	WarmTheta   int64   `json:"warm_theta"`   // resident collection size after warm
	WarmRatio   float64 `json:"warm_ratio"`   // certificate of the hardest query

	Results []ServeLevelResult `json:"results"`
}

// RunServeBench load-drives a warmed resident query service over real
// loopback HTTP across the concurrency sweep, mixing k across requests.
// The warm phase is reported separately: it is the one-time cost the
// resident sample amortizes away, which is the subsystem's whole point.
func RunServeBench(opt ServeOptions) (*ServeReport, error) {
	opt = opt.withDefaults()
	g, err := graph.GenPreferential(graph.GenConfig{
		Nodes: opt.Nodes, AvgDegree: opt.AvgDegree, Seed: opt.Seed, UniformAttach: 0.15,
	})
	if err != nil {
		return nil, err
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		return nil, err
	}
	svc, err := serve.New(serve.Config{
		Graph:    g,
		Model:    opt.Model,
		Seed:     opt.Seed,
		Machines: opt.Machines,
		KMax:     opt.KMax,
		EpsFloor: opt.EpsFloor,
		// Admit the whole sweep: rejections would skew latency downward.
		MaxInFlight: maxInt(opt.Concurrency) + 1,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	warmStart := time.Now()
	warmAns, err := svc.Warm()
	if err != nil {
		return nil, err
	}
	rep := &ServeReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Model:       opt.Model.String(),
		Seed:        opt.Seed,
		Machines:    opt.Machines,
		KMax:        opt.KMax,
		EpsFloor:    opt.EpsFloor,
		WarmSeconds: time.Since(warmStart).Seconds(),
		WarmTheta:   warmAns.Theta,
		WarmRatio:   warmAns.Ratio,
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(lis) }()
	defer httpSrv.Close()
	base := "http://" + lis.Addr().String()

	for _, conc := range opt.Concurrency {
		res, err := driveLevel(base, svc, conc, opt.Requests, opt.KMax, opt.EpsFloor)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, *res)
	}
	return rep, nil
}

// driveLevel fires total POST /v1/seeds requests from conc goroutines,
// with k varied per request so the LRU alone cannot absorb the load.
func driveLevel(base string, svc *serve.Service, conc, total, kMax int, eps float64) (*ServeLevelResult, error) {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conc}}
	before := svc.Stats()

	lats := make([][]time.Duration, conc)
	var errCount int64
	var errMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		share := total / conc
		if w < total%conc {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			for q := 0; q < share; q++ {
				k := 1 + (w*31+q*7)%kMax
				body, _ := json.Marshal(map[string]any{"k": k, "eps": eps})
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/seeds", "application/json", bytes.NewReader(body))
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				if err != nil {
					errMu.Lock()
					errCount++
					errMu.Unlock()
					continue
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w, share)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	after := svc.Stats()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &ServeLevelResult{
		Concurrency: conc,
		Requests:    total,
		Errors:      errCount,
		Seconds:     secs,
		QPS:         float64(len(all)) / secs,
	}
	if len(all) > 0 {
		res.P50Ms = float64(all[quantIdx(len(all), 0.50)]) / 1e6
		res.P99Ms = float64(all[quantIdx(len(all), 0.99)]) / 1e6
	}
	if dq := after.Queries - before.Queries; dq > 0 {
		res.ReuseRate = float64((after.CacheHits-before.CacheHits)+(after.ReuseHits-before.ReuseHits)) / float64(dq)
	}
	return res, nil
}

func quantIdx(n int, q float64) int {
	i := int(q*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func maxInt(vs []int) int {
	m := 0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// WriteJSON writes the report, indented, to path.
func (r *ServeReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Serve runs the query-service load benchmark at the harness's seed,
// prints a table, and — when jsonPath is non-empty — records the report
// machine-readably (BENCH_SERVE.json).
func (c Config) Serve(jsonPath string) (*ServeReport, error) {
	rep, err := RunServeBench(ServeOptions{Model: diffusion.IC, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	c.printf("\n== resident query service (POST /v1/seeds, %d nodes, kmax=%d, eps=%.2f, GOMAXPROCS=%d) ==\n",
		rep.Nodes, rep.KMax, rep.EpsFloor, rep.GOMAXPROCS)
	c.printf("warm: theta=%d ratio=%.3f in %.1fs (one-time)\n", rep.WarmTheta, rep.WarmRatio, rep.WarmSeconds)
	c.printf("%6s %8s %8s %10s %10s %8s %7s\n", "conc", "reqs", "QPS", "p50", "p99", "reuse", "errors")
	for _, r := range rep.Results {
		c.printf("%6d %8d %8.0f %8.2fms %8.2fms %7.1f%% %7d\n",
			r.Concurrency, r.Requests, r.QPS, r.P50Ms, r.P99Ms, 100*r.ReuseRate, r.Errors)
	}
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}
