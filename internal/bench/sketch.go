package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/serve"
)

// SketchOptions configures the two-tier influence-oracle benchmark:
// the fast (bottom-k sketch) tier against the certified tier on the
// same warmed service, at equal client concurrency.
type SketchOptions struct {
	Nodes     int     // synthetic graph size (default 20_000)
	AvgDegree float64 // synthetic graph average degree (default 10)
	Model     diffusion.Model
	Seed      uint64

	Machines int     // in-process machines per RR collection (default 2)
	KMax     int     // service admission cap (default 20)
	EpsFloor float64 // service epsilon floor (default 0.3)
	SketchK  int     // bottom-k size (default core.DefaultSketchK)

	Concurrency  int   // client fan-out, both tiers (default 8)
	FastRequests int   // GET /v1/spread?mode=fast requests (default 2000)
	CertRequests int   // GET /v1/spread (Monte-Carlo) requests (default 200)
	Rounds       int64 // Monte-Carlo rounds per certified request (default 1000)
}

func (o SketchOptions) withDefaults() SketchOptions {
	if o.Nodes == 0 {
		o.Nodes = 20_000
	}
	if o.AvgDegree == 0 {
		o.AvgDegree = 10
	}
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if o.Machines == 0 {
		o.Machines = 2
	}
	if o.KMax == 0 {
		o.KMax = 20
	}
	if o.EpsFloor == 0 {
		o.EpsFloor = 0.3
	}
	if o.Concurrency == 0 {
		o.Concurrency = 8
	}
	if o.FastRequests == 0 {
		o.FastRequests = 2000
	}
	if o.CertRequests == 0 {
		o.CertRequests = 200
	}
	if o.Rounds == 0 {
		o.Rounds = 1000
	}
	return o
}

// SketchTierResult is one tier's /v1/spread load measurement.
type SketchTierResult struct {
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int64   `json:"errors"`
	Seconds     float64 `json:"seconds"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// SketchReport is the machine-readable record written to
// BENCH_SKETCH.json.
type SketchReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Nodes      int     `json:"nodes"`
	Edges      int64   `json:"edges"`
	Model      string  `json:"model"`
	Seed       uint64  `json:"seed"`
	Machines   int     `json:"machines"`
	KMax       int     `json:"k_max"`
	EpsFloor   float64 `json:"eps_floor"`

	WarmSeconds float64 `json:"warm_seconds"`
	WarmTheta   int64   `json:"warm_theta"`

	// Sketch build cost: the incremental absorbs that kept the fast tier
	// current across every growth epoch of the warm phase, versus the
	// resident sample those epochs cost.
	SketchK            int     `json:"sketch_k"`
	SketchTheta        int64   `json:"sketch_theta"`
	SketchBuilds       int64   `json:"sketch_builds"`
	SketchBuildSeconds float64 `json:"sketch_build_seconds"`

	// Seed-set agreement between the tiers over k = 1..KMax at the
	// service's ε floor: AgreementOverlap is Σ|fast ∩ certified| / Σk
	// (the acceptance metric), AgreementExact the fraction of k whose
	// sets matched exactly.
	AgreementK       int     `json:"agreement_k"`
	AgreementOverlap float64 `json:"agreement_overlap"`
	AgreementExact   float64 `json:"agreement_exact"`

	Fast      SketchTierResult `json:"fast"`
	Certified SketchTierResult `json:"certified"`
	// Speedup is Fast.QPS / Certified.QPS at equal concurrency.
	Speedup float64 `json:"speedup"`
}

// RunSketchBench warms a resident service, measures fast/certified
// seed-set agreement, then load-drives GET /v1/spread on both tiers over
// real loopback HTTP at equal concurrency.
func RunSketchBench(opt SketchOptions) (*SketchReport, error) {
	opt = opt.withDefaults()
	g, err := graph.GenPreferential(graph.GenConfig{
		Nodes: opt.Nodes, AvgDegree: opt.AvgDegree, Seed: opt.Seed, UniformAttach: 0.15,
	})
	if err != nil {
		return nil, err
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		return nil, err
	}
	svc, err := serve.New(serve.Config{
		Graph:       g,
		Model:       opt.Model,
		Seed:        opt.Seed,
		Machines:    opt.Machines,
		KMax:        opt.KMax,
		EpsFloor:    opt.EpsFloor,
		SketchK:     opt.SketchK,
		MaxInFlight: opt.Concurrency + 1,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	warmStart := time.Now()
	warmAns, err := svc.Warm()
	if err != nil {
		return nil, err
	}
	rep := &SketchReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Model:       opt.Model.String(),
		Seed:        opt.Seed,
		Machines:    opt.Machines,
		KMax:        opt.KMax,
		EpsFloor:    opt.EpsFloor,
		WarmSeconds: time.Since(warmStart).Seconds(),
		WarmTheta:   warmAns.Theta,
	}

	// Agreement sweep before the load phase so both tiers answer on the
	// warmed epoch.
	var overlap, total, exact int
	for k := 1; k <= opt.KMax; k++ {
		ansC, err := svc.Query(k, opt.EpsFloor)
		if err != nil {
			return nil, err
		}
		ansF, err := svc.QueryMode(k, opt.EpsFloor, serve.ModeFast)
		if err != nil {
			return nil, err
		}
		in := make(map[uint32]bool, k)
		for _, v := range ansC.Seeds {
			in[v] = true
		}
		common := 0
		for _, v := range ansF.Seeds {
			if in[v] {
				common++
			}
		}
		overlap += common
		total += k
		if common == k {
			exact++
		}
	}
	rep.AgreementK = opt.KMax
	rep.AgreementOverlap = float64(overlap) / float64(total)
	rep.AgreementExact = float64(exact) / float64(opt.KMax)

	st := svc.Stats()
	rep.SketchK = st.SketchK
	rep.SketchTheta = st.SketchTheta
	rep.SketchBuilds = st.SketchBuilds
	rep.SketchBuildSeconds = st.SketchBuildSeconds

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(lis) }()
	defer httpSrv.Close()
	base := "http://" + lis.Addr().String()

	// Both tiers estimate spread for prefixes of the hardest certified
	// answer — realistic inputs (high-influence nodes), identical across
	// tiers so the comparison is apples to apples.
	pool, err := svc.Query(opt.KMax, opt.EpsFloor)
	if err != nil {
		return nil, err
	}
	fast, err := driveSpreadLevel(base, "fast", 0, pool.Seeds, opt.Concurrency, opt.FastRequests)
	if err != nil {
		return nil, err
	}
	rep.Fast = *fast
	cert, err := driveSpreadLevel(base, "certified", opt.Rounds, pool.Seeds, opt.Concurrency, opt.CertRequests)
	if err != nil {
		return nil, err
	}
	rep.Certified = *cert
	if rep.Certified.QPS > 0 {
		rep.Speedup = rep.Fast.QPS / rep.Certified.QPS
	}
	return rep, nil
}

// driveSpreadLevel fires total GET /v1/spread requests in mode from conc
// goroutines, varying the seed-set prefix per request.
func driveSpreadLevel(base, mode string, rounds int64, pool []uint32, conc, total int) (*SketchTierResult, error) {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conc}}
	lats := make([][]time.Duration, conc)
	var errCount int64
	var errMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		share := total / conc
		if w < total%conc {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			for q := 0; q < share; q++ {
				k := 1 + (w*31+q*7)%len(pool)
				var sb strings.Builder
				for i, u := range pool[:k] {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "%d", u)
				}
				url := fmt.Sprintf("%s/v1/spread?seeds=%s&mode=%s", base, sb.String(), mode)
				if rounds > 0 {
					url += fmt.Sprintf("&rounds=%d", rounds)
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				if err != nil {
					errMu.Lock()
					errCount++
					errMu.Unlock()
					continue
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w, share)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &SketchTierResult{
		Mode:        mode,
		Concurrency: conc,
		Requests:    total,
		Errors:      errCount,
		Seconds:     secs,
		QPS:         float64(len(all)) / secs,
	}
	if len(all) > 0 {
		res.P50Ms = float64(all[quantIdx(len(all), 0.50)]) / 1e6
		res.P99Ms = float64(all[quantIdx(len(all), 0.99)]) / 1e6
	}
	return res, nil
}

// WriteJSON writes the report, indented, to path.
func (r *SketchReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Sketch runs the two-tier oracle benchmark, prints a table, and — when
// jsonPath is non-empty — records the report machine-readably
// (BENCH_SKETCH.json). opt fields left zero take the bench defaults; the
// harness seed overrides opt.Seed.
func (c Config) Sketch(jsonPath string, opt SketchOptions) (*SketchReport, error) {
	opt.Model = diffusion.IC
	opt.Seed = c.Seed
	rep, err := RunSketchBench(opt)
	if err != nil {
		return nil, err
	}
	c.printf("\n== two-tier influence oracle (GET /v1/spread, %d nodes, K=%d, conc=%d, GOMAXPROCS=%d) ==\n",
		rep.Nodes, rep.SketchK, rep.Fast.Concurrency, rep.GOMAXPROCS)
	c.printf("warm: theta=%d in %.1fs; sketch: %d absorbs, %.3fs build (%.1f%% of warm)\n",
		rep.WarmTheta, rep.WarmSeconds, rep.SketchBuilds, rep.SketchBuildSeconds,
		100*rep.SketchBuildSeconds/rep.WarmSeconds)
	c.printf("seed agreement over k=1..%d: %.1f%% overlap, %.1f%% exact sets\n",
		rep.AgreementK, 100*rep.AgreementOverlap, 100*rep.AgreementExact)
	c.printf("%10s %8s %8s %10s %10s %7s\n", "tier", "reqs", "QPS", "p50", "p99", "errors")
	for _, r := range []SketchTierResult{rep.Fast, rep.Certified} {
		c.printf("%10s %8d %8.0f %8.2fms %8.2fms %7d\n",
			r.Mode, r.Requests, r.QPS, r.P50Ms, r.P99Ms, r.Errors)
	}
	c.printf("fast/certified speedup: %.1fx\n", rep.Speedup)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}
