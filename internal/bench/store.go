package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/serve"
)

// StoreOptions configures the checkpoint/restore benchmark.
type StoreOptions struct {
	Nodes     int     // synthetic graph size (default 20_000)
	AvgDegree float64 // synthetic graph average degree (default 10)
	Model     diffusion.Model
	Seed      uint64

	Machines int     // in-process machines per RR collection (default 2)
	KMax     int     // service admission cap (default 20)
	EpsFloor float64 // service epsilon floor (default 0.3)

	// Dir is where the checkpoint lands; empty uses a temp directory
	// removed afterwards.
	Dir string
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Nodes == 0 {
		o.Nodes = 20_000
	}
	if o.AvgDegree == 0 {
		o.AvgDegree = 10
	}
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if o.Machines == 0 {
		o.Machines = 2
	}
	if o.KMax == 0 {
		o.KMax = 20
	}
	if o.EpsFloor == 0 {
		o.EpsFloor = 0.3
	}
	return o
}

// StoreReport is the machine-readable record written to BENCH_STORE.json.
// The headline figure is RestoreSpeedup: restoring the resident sample
// from disk versus resampling it cold through the distributed workers.
type StoreReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Nodes      int     `json:"nodes"`
	Edges      int64   `json:"edges"`
	Model      string  `json:"model"`
	Seed       uint64  `json:"seed"`
	Machines   int     `json:"machines"`
	KMax       int     `json:"k_max"`
	EpsFloor   float64 `json:"eps_floor"`

	// The cold path: building the resident sample by distributed
	// resampling (serve.Warm on an empty store).
	ColdWarmSeconds float64 `json:"cold_warm_seconds"`
	WarmTheta       int64   `json:"warm_theta"`

	// The checkpoint path: what the growth hook wrote while warming.
	CheckpointEpochs  int64   `json:"checkpoint_epochs"`
	CheckpointBytes   int64   `json:"checkpoint_bytes"`
	CheckpointSeconds float64 `json:"checkpoint_seconds"`
	CheckpointMBps    float64 `json:"checkpoint_mbps"`

	// The warm path: a fresh service restoring that checkpoint. The
	// restore time covers serve.New end to end (segment replay, CRC
	// verification, index rebuild) plus the first query.
	RestoreSeconds    float64 `json:"restore_seconds"`
	RestoredTheta     int64   `json:"restored_theta"`
	RestoredGenerated int64   `json:"restored_generated"` // RR sets the restored service had to sample (must be 0)
	RestoreSpeedup    float64 `json:"restore_speedup"`    // ColdWarmSeconds / RestoreSeconds
	SeedsIdentical    bool    `json:"seeds_identical"`    // restored answer == cold answer, byte for byte
}

// RunStoreBench measures the durable store end to end: warm a service
// cold (checkpointing as it grows), kill it, restore a fresh service
// from the checkpoint, and compare wall clocks and answers.
func RunStoreBench(opt StoreOptions) (*StoreReport, error) {
	opt = opt.withDefaults()
	dir := opt.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dimm-bench-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	g, err := graph.GenPreferential(graph.GenConfig{
		Nodes: opt.Nodes, AvgDegree: opt.AvgDegree, Seed: opt.Seed, UniformAttach: 0.15,
	})
	if err != nil {
		return nil, err
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		return nil, err
	}
	mkCfg := func(restore bool) serve.Config {
		return serve.Config{
			Graph:         g,
			Model:         opt.Model,
			Seed:          opt.Seed,
			Machines:      opt.Machines,
			KMax:          opt.KMax,
			EpsFloor:      opt.EpsFloor,
			WeightTag:     graph.WeightedCascade.String(),
			CheckpointDir: dir,
			Restore:       restore,
		}
	}

	// Cold path: distributed resampling, checkpointing along the way.
	cold, err := serve.New(mkCfg(false))
	if err != nil {
		return nil, err
	}
	coldStart := time.Now()
	coldAns, err := cold.Warm()
	if err != nil {
		cold.Close()
		return nil, err
	}
	coldSecs := time.Since(coldStart).Seconds()
	coldStats := cold.Stats()
	cold.Close()
	if coldStats.CheckpointErrors > 0 {
		return nil, fmt.Errorf("bench: %d checkpoint errors while warming", coldStats.CheckpointErrors)
	}

	// Warm path: restore the checkpoint into a fresh service and answer
	// the same hardest query.
	restoreStart := time.Now()
	warm, err := serve.New(mkCfg(true))
	if err != nil {
		return nil, err
	}
	defer warm.Close()
	warmAns, err := warm.Warm()
	if err != nil {
		return nil, err
	}
	restoreSecs := time.Since(restoreStart).Seconds()
	warmStats := warm.Stats()

	identical := len(coldAns.Seeds) == len(warmAns.Seeds) && coldAns.Ratio == warmAns.Ratio
	for i := 0; identical && i < len(coldAns.Seeds); i++ {
		identical = coldAns.Seeds[i] == warmAns.Seeds[i]
	}
	rep := &StoreReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		Nodes:             g.NumNodes(),
		Edges:             g.NumEdges(),
		Model:             opt.Model.String(),
		Seed:              opt.Seed,
		Machines:          opt.Machines,
		KMax:              opt.KMax,
		EpsFloor:          opt.EpsFloor,
		ColdWarmSeconds:   coldSecs,
		WarmTheta:         coldAns.Theta,
		CheckpointEpochs:  coldStats.CheckpointEpochs,
		CheckpointBytes:   coldStats.CheckpointBytes,
		CheckpointSeconds: coldStats.CheckpointSeconds,
		RestoreSeconds:    restoreSecs,
		RestoredTheta:     warmStats.RestoredTheta,
		RestoredGenerated: warmStats.Generated,
		SeedsIdentical:    identical,
	}
	if coldStats.CheckpointSeconds > 0 {
		rep.CheckpointMBps = float64(coldStats.CheckpointBytes) / 1e6 / coldStats.CheckpointSeconds
	}
	if restoreSecs > 0 {
		rep.RestoreSpeedup = coldSecs / restoreSecs
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *StoreReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Store runs the checkpoint/restore benchmark at the harness's seed,
// prints a summary, and — when jsonPath is non-empty — records the
// report machine-readably (BENCH_STORE.json).
func (c Config) Store(jsonPath string) (*StoreReport, error) {
	rep, err := RunStoreBench(StoreOptions{Model: diffusion.IC, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	c.printf("\n== durable RR-sample store (%d nodes, kmax=%d, eps=%.2f, GOMAXPROCS=%d) ==\n",
		rep.Nodes, rep.KMax, rep.EpsFloor, rep.GOMAXPROCS)
	c.printf("cold warm:   theta=%d in %.2fs (distributed resampling)\n", rep.WarmTheta, rep.ColdWarmSeconds)
	c.printf("checkpoint:  %d epochs, %s in %.3fs (%.0f MB/s)\n",
		rep.CheckpointEpochs, fmtBytes(rep.CheckpointBytes), rep.CheckpointSeconds, rep.CheckpointMBps)
	c.printf("restore:     theta=%d in %.2fs -> %.1fx faster than resampling, %d RR sets generated, seeds identical: %v\n",
		rep.RestoredTheta, rep.RestoreSeconds, rep.RestoreSpeedup, rep.RestoredGenerated, rep.SeedsIdentical)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}

func fmtBytes(v int64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%d B", v)
	}
}
