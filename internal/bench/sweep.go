package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

// SweepOptions configures the all-bench sweep runner: one declarative
// parameter grid regenerates every BENCH_*.json in the envelope schema
// and (optionally) diffs the fresh envelopes against blessed baselines.
type SweepOptions struct {
	// Profile selects the parameter grid: "default" (the checked-in
	// BENCH_*.json regeneration) or "tiny" (a seconds-scale CI smoke).
	Profile string
	// Only restricts the sweep to the named benches (rrgen, select,
	// serve, store, fault, sketch, update, ooc). Empty runs all eight.
	Only []string
	// Repeats re-runs every bench this many times; the envelope records
	// min/mean/max of every metric over the repeats. 0 takes Config.Repeats.
	Repeats int
	// OutDir is where the BENCH_*.json envelopes land (default ".").
	OutDir string
	// Check diffs each fresh envelope against BaselineDir's copy and
	// makes the sweep fail when any regression survives the tolerance.
	Check bool
	// BaselineDir holds the blessed envelopes for Check (default OutDir).
	BaselineDir string
	// Tolerance is the timing-noise allowance for ClassTime/ClassRate
	// metrics (0.25 = 25%). Negative selects exact-only mode: timing is
	// skipped and only deterministic ClassExact metrics are compared —
	// the cross-machine CI setting. See DiffEnvelopes.
	Tolerance float64
	// Handicap > 0 deliberately inflates recorded timings by (1+h) — a
	// harness-validation hook proving the regression diff fails a slowed
	// run. Never set it when blessing baselines.
	Handicap float64
	// OOCGraph reuses an existing segmented (.dsg) file for the ooc
	// bench; empty builds a profile-sized temporary one.
	OOCGraph string
}

// sweepProfile is one named parameter grid over all eight benches.
type sweepProfile struct {
	name      string
	rrgen     RRGenOptions
	sel       SelectOptions
	serve     ServeOptions
	store     StoreOptions
	fault     FaultOptions
	sketch    SketchOptions
	update    UpdateOptions
	ooc       OOCOptions // GraphPath resolved at run time
	oocNodes  int        // temporary-graph size when OOCGraph is unset
	oocDegree float64
}

// sweepProfiles is the declarative grid. Zero option fields resolve to
// the bench defaults (each Run* applies withDefaults); only deliberate
// deviations are pinned here. The default profile is sized for a
// single-box regeneration in minutes, not the paper's testbed.
var sweepProfiles = map[string]sweepProfile{
	"default": {
		name:  "default",
		rrgen: RRGenOptions{GraphKind: "rmat", Nodes: 200_000, AvgDegree: 16, Subset: true, Count: 100_000},
		sel: SelectOptions{},
		// 10x the default request count per level: a warm service answers
		// in microseconds, and QPS over a ~10ms window is noise, not
		// signal — the envelope's rate metrics need a window worth gating.
		serve: ServeOptions{Model: diffusion.IC, Requests: 2_000},
		store: StoreOptions{Model: diffusion.IC},
		fault: FaultOptions{Model: diffusion.IC},
		sketch: SketchOptions{
			Model: diffusion.IC,
		},
		update: UpdateOptions{Model: diffusion.IC},
		// ColdSets < 0 skips the page-cache-eviction phase: its disk-bound
		// timings are honest on a quiet box but far too noisy to gate on.
		ooc:       OOCOptions{Count: 20_000, Bs: []int{1, 64, 256}, ColdSets: -1, RSSBudget: -1},
		oocNodes:  1 << 20,
		oocDegree: 8,
	},
	"tiny": {
		name:      "tiny",
		rrgen:     RRGenOptions{GraphKind: "rmat", Nodes: 20_000, AvgDegree: 8, Subset: true, Count: 5_000, Ps: []int{1}, Bs: []int{1, 64}},
		sel:       SelectOptions{Nodes: 5_000, Sets: 20_000, AvgSize: 8, K: 20, Ps: []int{1}},
		serve:     ServeOptions{Model: diffusion.IC, Nodes: 4_000, Requests: 40, Concurrency: []int{1, 2}},
		store:     StoreOptions{Model: diffusion.IC, Nodes: 4_000},
		fault:     FaultOptions{Model: diffusion.IC, Nodes: 4_000, Requests: 40},
		sketch:    SketchOptions{Model: diffusion.IC, Nodes: 4_000, FastRequests: 200, CertRequests: 20, Rounds: 200},
		update:    UpdateOptions{Model: diffusion.IC, Nodes: 4_000, StormBatches: 4, StormOps: 16},
		ooc:       OOCOptions{Count: 2_000, Bs: []int{1, 64}, ColdSets: -1, RSSBudget: -1},
		oocNodes:  1 << 15,
		oocDegree: 6,
	},
}

// p99TolScale is the per-metric tolerance multiplier every tail-latency
// metric carries in its envelope: on a one-box sweep a p99 is set by a
// handful of worst requests and honestly swings far more run-to-run
// than a mean or a throughput, so it gets 3x the sweep tolerance.
const p99TolScale = 3

// httpRateTolScale widens end-to-end HTTP request rates the same way:
// a serving QPS rides the box's instantaneous scheduling/steal state,
// which on shared hardware drifts tens of percent over minutes, while
// kernel-compute rates measured over ~10s windows stay put.
const httpRateTolScale = 3

// sweepBench is one bench of the grid: its canonical output file and a
// runner that executes one repeat and records its metrics.
type sweepBench struct {
	name string
	file string
	run  func(c Config, p sweepProfile, o SweepOptions, eb *envelopeBuilder) (any, error)
}

// sweepBenches lists every bench the sweep covers, in run order (cheap
// smoke-style benches first so a broken build fails fast).
var sweepBenches = []sweepBench{
	{"select", "BENCH_SELECT.json", runSweepSelect},
	{"rrgen", "BENCH_RRGEN.json", runSweepRRGen},
	{"serve", "BENCH_SERVE.json", runSweepServe},
	{"store", "BENCH_STORE.json", runSweepStore},
	{"fault", "BENCH_FAULT.json", runSweepFault},
	{"sketch", "BENCH_SKETCH.json", runSweepSketch},
	{"update", "BENCH_UPDATE.json", runSweepUpdate},
	{"ooc", "BENCH_OOC.json", runSweepOOC},
}

// Sweep regenerates every BENCH_*.json through the profile's grid,
// repeating each bench Repeats times and recording min/mean/max per
// metric. With Check set it then diffs each envelope against the
// blessed baseline and returns an error naming every regression — the
// caller (cmd/experiments, CI) turns that into a nonzero exit.
func (c Config) Sweep(o SweepOptions) error {
	if o.Profile == "" {
		o.Profile = "default"
	}
	profile, ok := sweepProfiles[o.Profile]
	if !ok {
		return fmt.Errorf("bench: unknown sweep profile %q (want default|tiny)", o.Profile)
	}
	if o.OutDir == "" {
		o.OutDir = "."
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return fmt.Errorf("bench: sweep: %w", err)
	}
	if o.BaselineDir == "" {
		o.BaselineDir = o.OutDir
	}
	repeats := o.Repeats
	if repeats == 0 {
		repeats = c.Repeats
	}
	if repeats < 1 {
		repeats = 1
	}

	want := map[string]bool{}
	for _, name := range o.Only {
		known := false
		for _, b := range sweepBenches {
			known = known || b.name == name
		}
		if !known {
			return fmt.Errorf("bench: unknown sweep bench %q", name)
		}
		want[name] = true
	}
	selected := make([]sweepBench, 0, len(sweepBenches))
	for _, b := range sweepBenches {
		if len(want) == 0 || want[b.name] {
			selected = append(selected, b)
		}
	}

	// The ooc bench needs a segmented graph file on disk. Build one
	// per-profile temporary unless the caller supplied a path; building
	// it once outside the repeat loop keeps setup out of the envelope.
	needOOC := false
	for _, b := range selected {
		needOOC = needOOC || b.name == "ooc"
	}
	if needOOC && o.OOCGraph == "" {
		path, cleanup, err := buildSweepOOCGraph(profile, c.Seed)
		if err != nil {
			return err
		}
		defer cleanup()
		o.OOCGraph = path
	}

	c.printf("== sweep: profile=%s repeats=%d out=%s", profile.name, repeats, o.OutDir)
	if o.Check {
		c.printf(" check-against=%s tolerance=%g", o.BaselineDir, o.Tolerance)
	}
	if o.Handicap > 0 {
		c.printf(" HANDICAP=%g (validation run — do not bless)", o.Handicap)
	}
	c.printf(" ==\n")

	var regressions []Regression
	for _, b := range selected {
		eb := newEnvelopeBuilder(b.name, profile.name, sweepParams(b.name, profile, o), o.Handicap)
		var report any
		start := time.Now()
		for rep := 0; rep < repeats; rep++ {
			var err error
			if report, err = b.run(c, profile, o, eb); err != nil {
				return fmt.Errorf("bench: sweep %s repeat %d: %w", b.name, rep+1, err)
			}
		}
		env, err := eb.finish(repeats, report)
		if err != nil {
			return fmt.Errorf("bench: sweep %s: %w", b.name, err)
		}
		outPath := filepath.Join(o.OutDir, b.file)
		if err := env.WriteJSON(outPath); err != nil {
			return fmt.Errorf("bench: sweep %s: %w", b.name, err)
		}
		c.printf("%-8s %d metric(s), %d repeat(s) in %s -> %s\n",
			b.name, len(env.Metrics), repeats, fmtDur(time.Since(start)), outPath)

		if o.Check {
			base, err := ReadEnvelope(filepath.Join(o.BaselineDir, b.file))
			if err != nil {
				return fmt.Errorf("bench: sweep %s: reading baseline: %w", b.name, err)
			}
			regs := DiffEnvelopes(base, env, o.Tolerance)
			for _, r := range regs {
				c.printf("REGRESSION %s\n", r)
			}
			regressions = append(regressions, regs...)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: sweep found %d regression(s) against %s", len(regressions), o.BaselineDir)
	}
	if o.Check {
		c.printf("sweep: no regressions against %s\n", o.BaselineDir)
	}
	return nil
}

// sweepParams records the profile's pinned parameters for the envelope.
// The embedded raw report carries the fully resolved options; this map
// is the at-a-glance view.
func sweepParams(bench string, p sweepProfile, o SweepOptions) map[string]any {
	switch bench {
	case "rrgen":
		return map[string]any{"graph": p.rrgen.GraphKind, "nodes": p.rrgen.Nodes,
			"avg_degree": p.rrgen.AvgDegree, "subset": p.rrgen.Subset, "count": p.rrgen.Count}
	case "select":
		return map[string]any{"nodes": p.sel.Nodes, "sets": p.sel.Sets, "k": p.sel.K}
	case "serve":
		return map[string]any{"nodes": p.serve.Nodes, "requests": p.serve.Requests}
	case "store":
		return map[string]any{"nodes": p.store.Nodes}
	case "fault":
		return map[string]any{"nodes": p.fault.Nodes, "requests": p.fault.Requests}
	case "sketch":
		return map[string]any{"nodes": p.sketch.Nodes, "fast_requests": p.sketch.FastRequests,
			"cert_requests": p.sketch.CertRequests}
	case "update":
		return map[string]any{"nodes": p.update.Nodes, "storm_batches": p.update.StormBatches,
			"storm_ops": p.update.StormOps}
	case "ooc":
		return map[string]any{"graph": o.OOCGraph, "count": p.ooc.Count, "cold_sets": p.ooc.ColdSets}
	}
	return nil
}

// buildSweepOOCGraph materializes a profile-sized RMAT graph as a
// temporary segmented file for the ooc bench.
func buildSweepOOCGraph(p sweepProfile, seed uint64) (string, func(), error) {
	g, err := graph.GenRMAT(graph.RMATConfig{GenConfig: graph.GenConfig{
		Nodes: p.oocNodes, AvgDegree: p.oocDegree, Seed: seed,
	}})
	if err != nil {
		return "", nil, err
	}
	if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
		return "", nil, err
	}
	dir, err := os.MkdirTemp("", "dimm-sweep-ooc-*")
	if err != nil {
		return "", nil, err
	}
	path := filepath.Join(dir, "sweep.dsg")
	if err := graph.WriteSegmentedFile(path, g, "wc"); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	return path, func() { os.RemoveAll(dir) }, nil
}

// ---- per-bench runners -------------------------------------------------
//
// Each runner executes one repeat with the profile's options and records
// the metrics the regression differ gates on. Exact-class metrics must
// be deterministic functions of the seed (they are compared bitwise,
// cross-machine); timing classes are same-host only.

func runSweepRRGen(c Config, p sweepProfile, _ SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.rrgen
	opt.Seed = c.Seed
	rep, err := RunRRGen(opt)
	if err != nil {
		return nil, err
	}
	for _, r := range rep.Results {
		if r.Skipped {
			continue
		}
		pre := fmt.Sprintf("p%d.b%d.", r.Parallelism, r.Batch)
		eb.observe(pre+"sets_per_sec", ClassRate, "sets/s", r.SetsPerSec)
		eb.observe(pre+"alloc_bytes_per_set", ClassTime, "B/set", r.AllocBytesPerSet)
		eb.observe(pre+"sets", ClassExact, "sets", float64(r.Sets))
		eb.observe(pre+"total_size", ClassExact, "nodes", float64(r.TotalSize))
		eb.observe(pre+"probes", ClassExact, "edges", float64(r.Probes))
	}
	return rep, nil
}

func runSweepSelect(c Config, p sweepProfile, _ SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.sel
	opt.Seed = c.Seed
	rep, err := RunSelectBench(opt)
	if err != nil {
		return nil, err
	}
	for _, r := range rep.Results {
		if r.Skipped {
			continue
		}
		pre := fmt.Sprintf("p%d.", r.Parallelism)
		eb.observe(pre+"sel_critical_s", ClassTime, "s", r.SelCritical)
		eb.observe(pre+"master_compute_s", ClassTime, "s", r.MasterCompute)
		eb.observe(pre+"delta_bytes", ClassExact, "B", float64(r.DeltaBytes))
		eb.observe(pre+"fixed_bytes", ClassExact, "B", float64(r.FixedBytes))
		eb.observe(pre+"coverage", ClassExact, "elements", float64(r.Coverage))
	}
	return rep, nil
}

func runSweepServe(c Config, p sweepProfile, _ SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.serve
	opt.Seed = c.Seed
	rep, err := RunServeBench(opt)
	if err != nil {
		return nil, err
	}
	eb.observe("warm_s", ClassTime, "s", rep.WarmSeconds)
	eb.observe("warm_theta", ClassExact, "sets", float64(rep.WarmTheta))
	for _, r := range rep.Results {
		pre := fmt.Sprintf("c%d.", r.Concurrency)
		eb.observe(pre+"qps", ClassRate, "req/s", r.QPS)
		eb.setTolScale(pre+"qps", httpRateTolScale)
		// Info, not time: a warm service answers in microseconds, and a
		// sub-millisecond p99 on one core moves 4x on a scheduler hiccup
		// alone — it cannot gate honestly. QPS carries the perf signal.
		eb.observe(pre+"p99_ms", ClassInfo, "ms", r.P99Ms)
		eb.observe(pre+"errors", ClassExact, "req", float64(r.Errors))
	}
	return rep, nil
}

func runSweepStore(c Config, p sweepProfile, _ SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.store
	opt.Seed = c.Seed
	rep, err := RunStoreBench(opt)
	if err != nil {
		return nil, err
	}
	eb.observe("cold_warm_s", ClassTime, "s", rep.ColdWarmSeconds)
	eb.observe("restore_s", ClassTime, "s", rep.RestoreSeconds)
	eb.observe("restore_speedup", ClassRate, "x", rep.RestoreSpeedup)
	eb.observe("warm_theta", ClassExact, "sets", float64(rep.WarmTheta))
	eb.observe("restored_theta", ClassExact, "sets", float64(rep.RestoredTheta))
	eb.observe("restored_generated", ClassExact, "sets", float64(rep.RestoredGenerated))
	eb.observe("checkpoint_bytes", ClassExact, "B", float64(rep.CheckpointBytes))
	eb.observeBool("seeds_identical", ClassExact, rep.SeedsIdentical)
	return rep, nil
}

func runSweepFault(c Config, p sweepProfile, _ SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.fault
	opt.Seed = c.Seed
	rep, err := RunServeFaultBench(opt)
	if err != nil {
		return nil, err
	}
	eb.observe("recovery_s", ClassTime, "s", rep.RecoverySeconds)
	eb.observe("clean_grow_s", ClassTime, "s", rep.CleanGrowSeconds)
	eb.observe("healthy.p99_ms", ClassTime, "ms", rep.Healthy.P99Ms)
	eb.setTolScale("healthy.p99_ms", p99TolScale)
	eb.observe("post_recovery.p99_ms", ClassTime, "ms", rep.Degraded.P99Ms)
	eb.setTolScale("post_recovery.p99_ms", p99TolScale)
	eb.observe("refused_503", ClassExact, "req", float64(rep.Refused))
	return rep, nil
}

func runSweepSketch(c Config, p sweepProfile, _ SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.sketch
	opt.Seed = c.Seed
	rep, err := RunSketchBench(opt)
	if err != nil {
		return nil, err
	}
	eb.observe("warm_s", ClassTime, "s", rep.WarmSeconds)
	eb.observe("sketch_build_s", ClassTime, "s", rep.SketchBuildSeconds)
	eb.observe("sketch_theta", ClassExact, "sets", float64(rep.SketchTheta))
	eb.observe("agreement_overlap", ClassExact, "frac", rep.AgreementOverlap)
	eb.observe("fast.qps", ClassRate, "req/s", rep.Fast.QPS)
	eb.setTolScale("fast.qps", httpRateTolScale)
	eb.observe("certified.qps", ClassRate, "req/s", rep.Certified.QPS)
	eb.setTolScale("certified.qps", httpRateTolScale)
	eb.observe("speedup", ClassInfo, "x", rep.Speedup)
	return rep, nil
}

func runSweepUpdate(c Config, p sweepProfile, _ SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.update
	opt.Seed = c.Seed
	rep, err := RunUpdateBench(opt)
	if err != nil {
		return nil, err
	}
	for _, lv := range rep.Levels {
		pre := fmt.Sprintf("churn%g.", lv.Churn)
		eb.observe(pre+"repair_s", ClassTime, "s", lv.RepairSecs)
		eb.observe(pre+"resample_s", ClassTime, "s", lv.ResampleSecs)
		eb.observe(pre+"repaired_sets", ClassExact, "sets", float64(lv.RepairedSets))
		eb.observe(pre+"speedup", ClassInfo, "x", lv.Speedup)
	}
	// The storm phase interleaves update batches with a concurrent query
	// client, so on a loaded box its wall time (like its tail latency)
	// swings with scheduling — widen its share of the tolerance.
	eb.observe("storm_s", ClassTime, "s", rep.StormSeconds)
	eb.setTolScale("storm_s", p99TolScale)
	eb.observe("storm.p99_ms", ClassTime, "ms", rep.StormP99Ms)
	eb.setTolScale("storm.p99_ms", p99TolScale)
	eb.observe("idle.p99_ms", ClassTime, "ms", rep.IdleP99Ms)
	eb.setTolScale("idle.p99_ms", p99TolScale)
	// Info, not exact: the storm interleaves updates with a concurrent
	// query client, so the repair count depends on scheduling.
	eb.observe("storm.repaired_sets", ClassInfo, "sets", float64(rep.StormRepairedSets))
	return rep, nil
}

func runSweepOOC(c Config, p sweepProfile, o SweepOptions, eb *envelopeBuilder) (any, error) {
	opt := p.ooc
	opt.Seed = c.Seed
	opt.GraphPath = o.OOCGraph
	rep, err := RunOOC(opt)
	if err != nil {
		return nil, err
	}
	eb.observeBool("digests_match", ClassExact, rep.DigestsMatch)
	for _, b := range rep.Backends {
		pre := b.Backend + "."
		eb.observe(pre+"open_s", ClassTime, "s", b.OpenSeconds)
		eb.observe(pre+"peak_rss_bytes", ClassInfo, "B", float64(b.PeakRSS))
		for _, lv := range b.Levels {
			lp := fmt.Sprintf("%sb%d.", pre, lv.Batch)
			eb.observe(lp+"sets_per_sec", ClassRate, "sets/s", lv.SetsPerSec)
			eb.observe(lp+"sets", ClassExact, "sets", float64(lv.Sets))
			eb.observe(lp+"total_size", ClassExact, "nodes", float64(lv.TotalSize))
		}
	}
	return rep, nil
}
