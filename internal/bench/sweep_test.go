package bench

import (
	"io"
	"path/filepath"
	"testing"
)

// TestSweepSelectEndToEnd drives the sweep runner through its full
// cycle on the cheapest bench at the tiny profile: generate envelopes,
// re-check against them (self-diff must pass), then prove a
// deliberately handicapped run fails the check.
func TestSweepSelectEndToEnd(t *testing.T) {
	dir := t.TempDir()
	c := Config{Out: io.Discard}.WithDefaults()

	gen := SweepOptions{
		Profile: "tiny",
		Only:    []string{"select"},
		Repeats: 2,
		OutDir:  dir,
	}
	if err := c.Sweep(gen); err != nil {
		t.Fatalf("generate: %v", err)
	}
	env, err := ReadEnvelope(filepath.Join(dir, "BENCH_SELECT.json"))
	if err != nil {
		t.Fatal(err)
	}
	if env.Bench != "select" || env.Profile != "tiny" || env.Repeats != 2 {
		t.Fatalf("bad envelope header: %+v", env)
	}
	if len(env.Report) == 0 {
		t.Fatal("envelope missing the raw legacy report")
	}
	cov, ok := env.Metrics["p1.coverage"]
	if !ok || cov.Class != ClassExact {
		t.Fatalf("p1.coverage missing or misclassified: %+v", env.Metrics)
	}
	if cov.Min != cov.Max {
		t.Fatalf("exact metric varied across same-seed repeats: %+v", cov)
	}
	if _, ok := env.Metrics["p1.sel_critical_s"]; !ok {
		t.Fatalf("p1.sel_critical_s missing: %+v", env.Metrics)
	}

	// Re-run in check mode against the fresh baselines. Timing on a
	// loaded test box is noisy, so use exact-only mode — the seeded
	// bench must reproduce its exact metrics bit for bit.
	check := gen
	check.OutDir = t.TempDir()
	check.Check = true
	check.BaselineDir = dir
	check.Tolerance = -1
	if err := c.Sweep(check); err != nil {
		t.Fatalf("self-check: %v", err)
	}

	// A handicapped run must fail a timing-aware check even at a huge
	// tolerance: every time metric is 10x slower, min and mean alike.
	slow := check
	slow.OutDir = t.TempDir()
	slow.Tolerance = 0.5
	slow.Handicap = 9
	if err := c.Sweep(slow); err == nil {
		t.Fatal("handicapped sweep passed the regression check")
	}
}

func TestSweepRejectsUnknowns(t *testing.T) {
	c := Config{Out: io.Discard}.WithDefaults()
	if err := c.Sweep(SweepOptions{Profile: "nope", OutDir: t.TempDir()}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := c.Sweep(SweepOptions{Profile: "tiny", Only: []string{"bogus"}, OutDir: t.TempDir()}); err == nil {
		t.Fatal("unknown bench accepted")
	}
}
