package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/serve"
	"dimm/internal/xrand"
)

// UpdateOptions configures the dynamic-graph benchmark: incremental
// RR-sample repair versus discarding the sample and resampling cold, at
// several churn levels, plus query latency while an update storm runs.
type UpdateOptions struct {
	Nodes     int     // synthetic graph size (default 20_000)
	AvgDegree float64 // synthetic graph average degree (default 10)
	Model     diffusion.Model
	Seed      uint64

	Machines int     // in-process machines per RR collection (default 2)
	K        int     // query seed-set size (default 10)
	Eps      float64 // query epsilon (default 0.3)

	// ChurnLevels are the batch sizes measured, as fractions of the edge
	// count (default 0.1%, 1%, 5%). Levels apply cumulatively to one
	// service — exactly the stream a live deployment sees.
	ChurnLevels []float64

	// StormBatches update batches of StormOps edges each are applied
	// back to back while a concurrent client issues certified queries;
	// the report records the client's p50/p99 (defaults 16 and 64).
	StormBatches int
	StormOps     int
}

func (o UpdateOptions) withDefaults() UpdateOptions {
	if o.Nodes == 0 {
		o.Nodes = 20_000
	}
	if o.AvgDegree == 0 {
		o.AvgDegree = 10
	}
	if o.Seed == 0 {
		o.Seed = 20220501
	}
	if o.Machines == 0 {
		o.Machines = 2
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.Eps == 0 {
		o.Eps = 0.3
	}
	if len(o.ChurnLevels) == 0 {
		o.ChurnLevels = []float64{0.001, 0.01, 0.05}
	}
	if o.StormBatches == 0 {
		o.StormBatches = 16
	}
	if o.StormOps == 0 {
		o.StormOps = 64
	}
	return o
}

// UpdateChurn records one churn level: the incremental repair on the
// live service versus resampling the same graph state cold.
type UpdateChurn struct {
	Churn        float64 `json:"churn"`
	Ops          int     `json:"ops"`
	RepairSecs   float64 `json:"repair_seconds"`
	RepairedSets int     `json:"repaired_rr_sets"`
	Remirrored   bool    `json:"remirrored"`
	Theta        int64   `json:"theta"`
	QueryRatio   float64 `json:"post_update_ratio"` // certificate ratio of the first query after the repair
	ResampleSecs float64 `json:"resample_seconds"`  // cold service on the same mutated graph, same query
	Speedup      float64 `json:"speedup"`           // ResampleSecs / RepairSecs
}

// UpdateReport is the machine-readable record written to
// BENCH_UPDATE.json. The headline figures are the per-churn Speedup
// (incremental repair over full resample) and QueryP99Ms under storm.
type UpdateReport struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Nodes      int     `json:"nodes"`
	Edges      int64   `json:"edges"`
	Model      string  `json:"model"`
	Seed       uint64  `json:"seed"`
	Machines   int     `json:"machines"`
	K          int     `json:"k"`
	Eps        float64 `json:"eps"`

	WarmSeconds float64 `json:"warm_seconds"`
	WarmTheta   int64   `json:"warm_theta"`

	Levels []UpdateChurn `json:"churn_levels"`

	// The storm: StormBatches×StormOps updates applied back to back
	// with a concurrent certified-query client.
	StormBatches      int     `json:"storm_batches"`
	StormOps          int     `json:"storm_ops_per_batch"`
	StormSeconds      float64 `json:"storm_seconds"`
	StormRepairedSets int     `json:"storm_repaired_rr_sets"`
	StormQueries      int     `json:"storm_queries"`
	IdleP50Ms         float64 `json:"idle_query_p50_ms"` // same client, no storm running
	IdleP99Ms         float64 `json:"idle_query_p99_ms"`
	StormP50Ms        float64 `json:"storm_query_p50_ms"`
	StormP99Ms        float64 `json:"storm_query_p99_ms"`
}

// churnOps derives one valid update batch from the graph's current
// state: ~45% removals of live edges, ~45% additions of absent edges,
// ~10% reweights, never touching the same edge twice in a batch.
func churnOps(r *xrand.Rand, g *graph.Graph, count int) []graph.EdgeUpdate {
	n := uint32(g.NumNodes())
	ops := make([]graph.EdgeUpdate, 0, count)
	claimed := make(map[[2]uint32]bool, count)

	// pickLive finds a live, unclaimed in-edge starting from a random
	// node, probing linearly so sparse nodes never stall the scan.
	pickLive := func() (u, v uint32, p float32, ok bool) {
		start := r.Uint32n(n)
		for step := uint32(0); step < n; step++ {
			v := (start + step) % n
			adj, probs := g.InNeighbors(v)
			for i, u := range adj {
				if probs[i] > 0 && !claimed[[2]uint32{u, v}] {
					return u, v, probs[i], true
				}
			}
			for _, e := range g.InOverlay(v) {
				if e.Prob > 0 && !claimed[[2]uint32{e.Node, v}] {
					return e.Node, v, e.Prob, true
				}
			}
		}
		return 0, 0, 0, false
	}
	isLive := func(u, v uint32) bool {
		adj, probs := g.InNeighbors(v)
		for i, w := range adj {
			if w == u && probs[i] > 0 {
				return true
			}
		}
		for _, e := range g.InOverlay(v) {
			if e.Node == u && e.Prob > 0 {
				return true
			}
		}
		return false
	}

	for len(ops) < count {
		switch roll := r.Uint32n(20); {
		case roll < 9: // remove
			u, v, _, ok := pickLive()
			if !ok {
				break
			}
			claimed[[2]uint32{u, v}] = true
			ops = append(ops, graph.EdgeUpdate{Op: graph.OpRemove, From: u, To: v})
		case roll < 18: // add
			u, v := r.Uint32n(n), r.Uint32n(n)
			if u == v || claimed[[2]uint32{u, v}] || isLive(u, v) {
				continue
			}
			claimed[[2]uint32{u, v}] = true
			p := float32(0.01 + 0.1*r.Float64())
			ops = append(ops, graph.EdgeUpdate{Op: graph.OpAdd, From: u, To: v, Prob: p})
		default: // reweight
			u, v, p, ok := pickLive()
			if !ok {
				break
			}
			claimed[[2]uint32{u, v}] = true
			ops = append(ops, graph.EdgeUpdate{Op: graph.OpReweight, From: u, To: v, Prob: p / 2})
		}
	}
	return ops
}

// RunUpdateBench measures the dynamic-graph path end to end: warm a
// dynamic service, stream cumulative churn batches through POST
// /v1/update's backing call, and compare each incremental repair
// against resampling the identical mutated graph cold. A final phase
// applies an update storm while a concurrent client measures certified
// query latency.
func RunUpdateBench(opt UpdateOptions) (*UpdateReport, error) {
	opt = opt.withDefaults()
	mkGraph := func() (*graph.Graph, error) {
		g, err := graph.GenPreferential(graph.GenConfig{
			Nodes: opt.Nodes, AvgDegree: opt.AvgDegree, Seed: opt.Seed, UniformAttach: 0.15,
		})
		if err != nil {
			return nil, err
		}
		if g, err = graph.AssignWeights(g, graph.WeightedCascade, 0, 0); err != nil {
			return nil, err
		}
		if err := g.EnableMutation(); err != nil {
			return nil, err
		}
		return g, nil
	}
	mkCfg := func(g *graph.Graph) serve.Config {
		return serve.Config{
			Graph:     g,
			Model:     opt.Model,
			Seed:      opt.Seed,
			Machines:  opt.Machines,
			KMax:      opt.K,
			EpsFloor:  opt.Eps,
			WeightTag: graph.WeightedCascade.String(),
			Dynamic:   true,
			SketchK:   -1, // measure the sample path, not sketch rebuilds
			CacheSize: -1, // every query does real selection work
		}
	}
	g, err := mkGraph()
	if err != nil {
		return nil, err
	}
	s, err := serve.New(mkCfg(g))
	if err != nil {
		return nil, err
	}
	defer s.Close()

	warmStart := time.Now()
	warmAns, err := s.Query(opt.K, opt.Eps)
	if err != nil {
		return nil, err
	}
	warmSecs := time.Since(warmStart).Seconds()

	rep := &UpdateReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Model:        opt.Model.String(),
		Seed:         opt.Seed,
		Machines:     opt.Machines,
		K:            opt.K,
		Eps:          opt.Eps,
		WarmSeconds:  warmSecs,
		WarmTheta:    warmAns.Theta,
		StormBatches: opt.StormBatches,
		StormOps:     opt.StormOps,
	}

	// Churn phase. Batches are kept so the cold baseline can replay the
	// identical history onto a twin graph.
	r := xrand.New(opt.Seed ^ 0xC4A1)
	var history [][]graph.EdgeUpdate
	for _, churn := range opt.ChurnLevels {
		count := int(churn * float64(rep.Edges))
		if count < 1 {
			count = 1
		}
		ops := churnOps(r, g, count)
		history = append(history, ops)

		repairStart := time.Now()
		res, err := s.Update(0, ops)
		if err != nil {
			return nil, fmt.Errorf("bench: churn %g update: %w", churn, err)
		}
		ans, err := s.Query(opt.K, opt.Eps)
		if err != nil {
			return nil, fmt.Errorf("bench: churn %g query: %w", churn, err)
		}
		repairSecs := time.Since(repairStart).Seconds()

		// Cold baseline: a fresh service over a twin graph carrying the
		// same update history, answering the same query from scratch —
		// what a deployment without incremental repair would have to do.
		twin, err := mkGraph()
		if err != nil {
			return nil, err
		}
		for i, batch := range history {
			if _, _, err := twin.ApplyUpdates(uint64(i+1), batch); err != nil {
				return nil, fmt.Errorf("bench: replaying batch %d onto the twin: %w", i+1, err)
			}
		}
		coldStart := time.Now()
		cold, err := serve.New(mkCfg(twin))
		if err != nil {
			return nil, err
		}
		if _, err := cold.Query(opt.K, opt.Eps); err != nil {
			cold.Close()
			return nil, fmt.Errorf("bench: churn %g cold query: %w", churn, err)
		}
		coldSecs := time.Since(coldStart).Seconds()
		cold.Close()

		lvl := UpdateChurn{
			Churn:        churn,
			Ops:          len(ops),
			RepairSecs:   repairSecs,
			RepairedSets: res.Repaired,
			Remirrored:   res.Remirrored,
			Theta:        ans.Theta,
			QueryRatio:   ans.Ratio,
			ResampleSecs: coldSecs,
		}
		if repairSecs > 0 {
			lvl.Speedup = coldSecs / repairSecs
		}
		rep.Levels = append(rep.Levels, lvl)
	}

	// Storm phase: idle latencies first, then the same client while
	// updates stream in back to back.
	idle := queryLatencies(s, opt.K, opt.Eps, 40)
	rep.IdleP50Ms, rep.IdleP99Ms = percentileMs(idle, 0.50), percentileMs(idle, 0.99)

	var (
		lats  []time.Duration
		latMu sync.Mutex
		stop  = make(chan struct{})
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := time.Now()
			if _, err := s.Query(opt.K, opt.Eps); err != nil {
				continue // a DegradedError window; the storm keeps going
			}
			latMu.Lock()
			lats = append(lats, time.Since(q))
			latMu.Unlock()
		}
	}()
	stormStart := time.Now()
	for i := 0; i < opt.StormBatches; i++ {
		ops := churnOps(r, g, opt.StormOps)
		res, err := s.Update(0, ops)
		if err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("bench: storm batch %d: %w", i, err)
		}
		rep.StormRepairedSets += res.Repaired
	}
	rep.StormSeconds = time.Since(stormStart).Seconds()
	close(stop)
	wg.Wait()

	rep.StormQueries = len(lats)
	rep.StormP50Ms, rep.StormP99Ms = percentileMs(lats, 0.50), percentileMs(lats, 0.99)
	return rep, nil
}

func queryLatencies(s *serve.Service, k int, eps float64, count int) []time.Duration {
	lats := make([]time.Duration, 0, count)
	for i := 0; i < count; i++ {
		start := time.Now()
		if _, err := s.Query(k, eps); err == nil {
			lats = append(lats, time.Since(start))
		}
	}
	return lats
}

func percentileMs(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// WriteJSON writes the report, indented, to path.
func (r *UpdateReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Update runs the dynamic-graph benchmark at the harness's seed, prints
// a summary, and — when jsonPath is non-empty — records the report
// machine-readably (BENCH_UPDATE.json).
func (c Config) Update(jsonPath string, opt UpdateOptions) (*UpdateReport, error) {
	opt.Model = diffusion.IC
	opt.Seed = c.Seed
	rep, err := RunUpdateBench(opt)
	if err != nil {
		return nil, err
	}
	c.printf("\n== dynamic graph updates (%d nodes / %d edges, k=%d, eps=%.2f, %d machines, GOMAXPROCS=%d) ==\n",
		rep.Nodes, rep.Edges, rep.K, rep.Eps, rep.Machines, rep.GOMAXPROCS)
	c.printf("warm: theta=%d in %.2fs\n", rep.WarmTheta, rep.WarmSeconds)
	for _, l := range rep.Levels {
		c.printf("churn %5.2f%%: %6d ops, repaired %6d RR sets in %.3fs vs %.3fs cold resample -> %.1fx (ratio %.3f, remirrored %v)\n",
			l.Churn*100, l.Ops, l.RepairedSets, l.RepairSecs, l.ResampleSecs, l.Speedup, l.QueryRatio, l.Remirrored)
	}
	c.printf("storm: %d batches x %d ops in %.2fs (%d RR sets repaired); query p50/p99 %.1f/%.1f ms idle -> %.1f/%.1f ms under storm (%d queries)\n",
		rep.StormBatches, rep.StormOps, rep.StormSeconds, rep.StormRepairedSets,
		rep.IdleP50Ms, rep.IdleP99Ms, rep.StormP50Ms, rep.StormP99Ms, rep.StormQueries)
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", jsonPath, err)
		}
		c.printf("wrote %s\n", jsonPath)
	}
	return rep, nil
}
