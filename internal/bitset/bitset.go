// Package bitset provides the dense bit vector used for per-RR-set
// covered labels: 1 bit per element instead of the 1 byte of a []bool,
// an 8× footprint cut that keeps the map stage's working set in cache.
//
// The representation is deliberately exposed at word granularity
// (WordIndex, 64 bits per word) because the parallel select kernel
// partitions work so that no two goroutines ever write the same word —
// the property that makes concurrent Set calls on disjoint word ranges
// race-free without atomics.
package bitset

import "math/bits"

const wordBits = 64

// Bits is a fixed-length bit vector. The zero value is an empty vector;
// use Reset to size it.
type Bits struct {
	words []uint64
	n     int
}

// New returns a cleared bit vector of n bits.
func New(n int) *Bits {
	b := &Bits{}
	b.Reset(n)
	return b
}

// Reset resizes the vector to n bits and clears every bit, reusing the
// existing storage when it is large enough (the per-selection-run
// relabel of Algorithm 1 line 2).
func (b *Bits) Reset(n int) {
	need := (n + wordBits - 1) / wordBits
	if cap(b.words) >= need {
		b.words = b.words[:need]
		clear(b.words)
	} else {
		b.words = make([]uint64, need)
	}
	b.n = n
}

// Len returns the vector length in bits.
func (b *Bits) Len() int { return b.n }

// Get reports whether bit i is set.
func (b *Bits) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i. Concurrent Sets are safe if and only if the callers
// are confined to disjoint word ranges (see WordIndex).
func (b *Bits) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Count returns the number of set bits (population count).
func (b *Bits) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// WordIndex returns the index of the storage word holding bit i. Two
// bits may be Set concurrently exactly when their word indexes differ.
func WordIndex(i int) int { return i / wordBits }
