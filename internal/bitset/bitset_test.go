package bitset

import "testing"

func TestSetGetCount(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		if b.Len() != n {
			t.Fatalf("Len() = %d, want %d", b.Len(), n)
		}
		if b.Count() != 0 {
			t.Fatalf("fresh vector of %d bits has %d set", n, b.Count())
		}
		want := int64(0)
		for i := 0; i < n; i += 3 {
			b.Set(i)
			want++
		}
		for i := 0; i < n; i++ {
			if got := b.Get(i); got != (i%3 == 0) {
				t.Fatalf("n=%d: Get(%d) = %v", n, i, got)
			}
		}
		if b.Count() != want {
			t.Fatalf("n=%d: Count() = %d, want %d", n, b.Count(), want)
		}
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(128)
	b.Set(77)
	b.Set(77)
	if b.Count() != 1 {
		t.Fatalf("double Set counted twice: %d", b.Count())
	}
}

func TestResetReusesAndClears(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i++ {
		b.Set(i)
	}
	b.Reset(100)
	if b.Len() != 100 || b.Count() != 0 {
		t.Fatalf("after Reset(100): len %d, count %d", b.Len(), b.Count())
	}
	// Shrink must not leave stale bits visible after a later regrow.
	b.Reset(256)
	if b.Count() != 0 {
		t.Fatalf("regrow exposed %d stale bits", b.Count())
	}
}

func TestWordIndex(t *testing.T) {
	if WordIndex(63) != 0 || WordIndex(64) != 1 || WordIndex(129) != 2 {
		t.Fatalf("WordIndex boundaries wrong: %d %d %d",
			WordIndex(63), WordIndex(64), WordIndex(129))
	}
}
