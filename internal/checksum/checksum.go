// Package checksum is the CRC32C (Castagnoli) helper shared by the
// durable RR-sample store (internal/store segments) and the cluster wire
// protocol (fetch-payload integrity trailers). Castagnoli is chosen over
// IEEE because amd64 and arm64 both execute it in hardware, so sealing a
// multi-hundred-megabyte checkpoint segment costs a small fraction of
// the write itself.
package checksum

import "hash/crc32"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sum returns the CRC32C checksum of b.
func Sum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Update extends crc with the bytes of b, so large payloads can be
// checksummed in chunks without concatenation.
func Update(crc uint32, b []byte) uint32 { return crc32.Update(crc, castagnoli, b) }
