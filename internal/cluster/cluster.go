package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"dimm/internal/coverage"
	"dimm/internal/metrics"
	"dimm/internal/rrset"
)

// Metrics is the per-phase accounting of a cluster session, designed to
// report the three running-time components of the paper's Fig. 5/6
// breakdown. On a machine with fewer free cores than workers the raw wall
// clock cannot show parallel speedup, so in addition to totals we track
// critical-path times: per request round, the *maximum* worker busy time —
// which is what an ℓ-machine deployment's wall clock would pay (the
// paper's Corollary 1 shows per-machine work concentrates at total/ℓ).
//
// Metrics is a point-in-time snapshot assembled by Cluster.Metrics();
// the live accounting is registry-backed (see clusterMetrics), so
// snapshots are safe to take from any goroutine mid-round.
type Metrics struct {
	// GenCritical sums, over generation rounds, the slowest worker's
	// sampling time: the cluster wall-clock cost of distributed RIS.
	GenCritical time.Duration
	// GenTotal sums all workers' sampling time (the sequential-equivalent
	// generation cost; GenTotal/GenCritical ≈ parallel efficiency).
	GenTotal time.Duration
	// SelCritical and SelTotal are the same aggregates for the map-stage
	// work of NEWGREEDI (degree sync, relabel, per-seed updates).
	SelCritical time.Duration
	SelTotal    time.Duration
	// MasterCompute is time spent in the master's own computation: the
	// bucket scan plus delta merging.
	MasterCompute time.Duration
	// Comm is time spent moving and coding frames: round wall time minus
	// the time workers spent computing.
	Comm time.Duration
	// BytesSent/BytesReceived count request/response payload bytes across
	// all connections (master's perspective).
	BytesSent     int64
	BytesReceived int64
	// GenBytes*/SelBytes* split the broadcast traffic by phase (the same
	// gen/sel attribution as the time aggregates above), so the sampling
	// traffic of §III-B and the selection traffic of §III-D — the O(kn)
	// bound the adaptive delta encoding attacks — can be read separately.
	GenBytesSent     int64
	GenBytesReceived int64
	SelBytesSent     int64
	SelBytesReceived int64
	// DeltaFrames/DeltaPairs/DeltaBytes count the msgDegreeDelta and
	// msgSelect replies decoded, the ⟨v, Δ⟩ pairs they carried, and their
	// frame bytes. 13 + 8·pairs bytes per frame is what the retired
	// fixed-width encoding would have cost — the baseline the adaptive
	// encoding's DeltaBytes is judged against.
	DeltaFrames int64
	DeltaPairs  int64
	DeltaBytes  int64
	// SketchBuilds/SketchBuildTime account the master-side bottom-k
	// sketch maintenance of the serving fast tier (internal/sketch):
	// how many incremental build passes ran over this cluster's RR
	// output and their summed wall time. Master-side like MasterCompute,
	// but reported separately so the sketch tier's cost is visible next
	// to the generation it rides on.
	SketchBuilds    int64
	SketchBuildTime time.Duration
	// Rounds counts broadcast round trips.
	Rounds int64
	// UpdateCalls counts Update broadcasts (dynamic-graph edge batches)
	// and RepairedSets the RR sets regenerated in place across all
	// workers' incremental repairs — the numerator of the repair ratio
	// (RepairedSets / total resident sets) that decides when repair beats
	// a full resample.
	UpdateCalls  int64
	RepairedSets int64
	// GenCalls counts Generate broadcasts — the denominator for
	// waves-per-generate-call (Batch.Waves / GenCalls).
	GenCalls int64
	// Batch aggregates the workers' frontier-batching counters (last
	// reported cumulative value per worker, plus retired workers'
	// contributions): waves, frontier items, lane occupancy and skipped
	// edges, so batch-efficiency regressions are observable without
	// touching the hot path. All zero when the scalar kernel runs.
	Batch rrset.BatchStats
}

// clusterMetrics holds the registry handles behind the Metrics view.
// Handles are resolved once at construction, so the per-round recording
// below is pure atomics — cheap enough for the selection inner loop and
// safe against concurrent Metrics()/snapshot readers.
type clusterMetrics struct {
	genCritical   *metrics.Counter // ns, per-round max worker time, gen phase
	genTotal      *metrics.Counter // ns, per-round summed worker time, gen phase
	selCritical   *metrics.Counter // ns
	selTotal      *metrics.Counter // ns
	masterCompute *metrics.Counter // ns
	comm          *metrics.Counter // ns
	genBytesSent  *metrics.Counter
	genBytesRecv  *metrics.Counter
	selBytesSent  *metrics.Counter
	selBytesRecv  *metrics.Counter
	// delta records one observation per decoded delta reply:
	// x = frame bytes, y = ⟨v, Δ⟩ pairs carried (Count = frames).
	delta *metrics.Bivariate
	// sketchBuild observes one duration per incremental sketch build
	// pass (Count = builds, Sum = total build time).
	sketchBuild  *metrics.Univariate
	rounds       *metrics.Counter
	updateCalls  *metrics.Counter
	repairedSets *metrics.Counter
	genCalls     *metrics.Counter
}

func newClusterMetrics(reg *metrics.Registry) clusterMetrics {
	return clusterMetrics{
		genCritical:   reg.Counter("cluster.gen.critical_ns"),
		genTotal:      reg.Counter("cluster.gen.total_ns"),
		selCritical:   reg.Counter("cluster.sel.critical_ns"),
		selTotal:      reg.Counter("cluster.sel.total_ns"),
		masterCompute: reg.Counter("cluster.master.compute_ns"),
		comm:          reg.Counter("cluster.comm_ns"),
		genBytesSent:  reg.Counter("cluster.gen.bytes_sent"),
		genBytesRecv:  reg.Counter("cluster.gen.bytes_recv"),
		selBytesSent:  reg.Counter("cluster.sel.bytes_sent"),
		selBytesRecv:  reg.Counter("cluster.sel.bytes_recv"),
		delta:         reg.Bivariate("cluster.delta.frame_bytes_pairs"),
		sketchBuild:   reg.Univariate("cluster.sketch.build_ns"),
		rounds:        reg.Counter("cluster.rounds"),
		updateCalls:   reg.Counter("cluster.update.calls"),
		repairedSets:  reg.Counter("cluster.update.repaired_sets"),
		genCalls:      reg.Counter("cluster.gen.calls"),
	}
}

// add merges worker handler times for one broadcast round into the
// registry under the given phase ("gen" or "sel").
//
// The communication share depends on the broadcast mode. Under
// concurrent broadcast the round's wall clock is max(handler) plus
// transport, so comm = wall − max. (The historic attribution here was
// wall − sum, which silently clamped comm to zero whenever workers
// genuinely overlapped, i.e. wall < sum — under-reporting the Fig. 5/6
// communication component exactly when the cluster was parallel.)
// Under sequential broadcast the workers run back to back — wall =
// sum + transport — so wall − sum is the correct share there, and
// wall ≥ sum always holds, which is why the bug could not bite in
// sequential mode.
func (m *clusterMetrics) add(phase string, wall time.Duration, handlers []time.Duration, sequential bool) {
	var sum, max time.Duration
	for _, h := range handlers {
		sum += h
		if h > max {
			max = h
		}
	}
	switch phase {
	case "gen":
		m.genCritical.AddDuration(max)
		m.genTotal.AddDuration(sum)
	default:
		m.selCritical.AddDuration(max)
		m.selTotal.AddDuration(sum)
	}
	busy := max
	if sequential {
		busy = sum
	}
	if wall > busy {
		m.comm.AddDuration(wall - busy)
	}
	m.rounds.Inc()
}

// account merges one broadcast round into the metrics under the given
// phase and attributes the round's frame bytes to that phase's byte
// counters.
func (c *Cluster) account(phase string, wall time.Duration, handlers []time.Duration) {
	c.met.add(phase, wall, handlers, c.sequential)
	if phase == "gen" {
		c.met.genBytesSent.Add(c.roundSent)
		c.met.genBytesRecv.Add(c.roundRecv)
	} else {
		c.met.selBytesSent.Add(c.roundSent)
		c.met.selBytesRecv.Add(c.roundRecv)
	}
	c.roundSent, c.roundRecv = 0, 0
}

// countDeltaFrame records one decoded delta reply's frame size and pair
// count, the data behind the fixed-width-vs-adaptive wire comparison.
func (c *Cluster) countDeltaFrame(frame []byte, pairs []DeltaPair) {
	c.met.delta.Observe(int64(len(frame)), int64(len(pairs)))
}

// CriticalPath estimates the wall clock of a genuinely parallel
// deployment: slowest-worker time per phase, plus master compute, plus
// communication.
func (m *Metrics) CriticalPath() time.Duration {
	return m.GenCritical + m.SelCritical + m.MasterCompute + m.Comm
}

// Cluster is the master's view of ℓ workers. It owns the aggregated
// baseline coverage vector Δ (Algorithm 1 line 4, maintained incrementally
// across sampling rounds per §III-C) and exposes a coverage.Oracle so the
// generic greedy drives the distributed machines unchanged.
type Cluster struct {
	conns    []Conn
	numItems int

	baseDeg []int64 // Δ(v) over all RR sets generated so far

	mergeScratch []int32
	mergeTouched []uint32

	// sequential issues broadcast calls one worker at a time instead of
	// concurrently. On a host with fewer free cores than workers the
	// goroutines would only time-slice anyway, and preemption makes each
	// worker's wall-clock handler time absorb its neighbors' compute —
	// wrecking the per-phase accounting. Sequential mode costs nothing in
	// throughput there and keeps the measurements exact. Defaults to true
	// when GOMAXPROCS == 1; override with SetSequentialBroadcast.
	sequential bool

	// Link model: when set, every broadcast round adds a modeled network
	// delay to the communication metric — the RTT plus the transfer time
	// of the round's total traffic through the master's NIC. In the
	// master–slave star of the paper's deployment every request and
	// response crosses the master's single link, which is why measured
	// communication grows with ℓ (§IV-B) even though worker links are
	// parallel. This models the paper's 1 Gbps switch analytically;
	// unlike ShapedConn it costs no real sleeping and composes correctly
	// with sequential broadcast.
	linkRTT time.Duration
	linkBw  float64 // bytes per second through the master; 0 = infinite

	// roundSent/roundRecv hold the last broadcast's frame bytes until
	// account attributes them to a phase.
	roundSent int64
	roundRecv int64

	// reg is the cluster's metric registry; met caches the typed handles
	// the hot paths record through. Metrics() assembles the legacy
	// snapshot struct from the same handles.
	reg *metrics.Registry
	met clusterMetrics

	// Fault-tolerance state (nil/empty until EnableRecovery; see
	// recovery.go). healthMu guards the fields Health() reads while an
	// operation is in flight on the master goroutine: conns entries,
	// dead flags and fault counters.
	rec        *Recovery
	healthMu   sync.Mutex
	dead       []bool
	logs       []workerLog
	failovers  []int64
	ctlRetries []int64
	lastErrs   []string
	// selecting/selSeeds mirror the cluster-wide selection state so a
	// replacement worker can be fast-forwarded into a greedy run.
	selecting bool
	selSeeds  []uint32
	failEpoch uint64
	// retiredSent/retiredRecv accumulate byte counters of replaced or
	// quarantined connections so Metrics stays cumulative across swaps.
	retiredSent int64
	retiredRecv int64
	// batchLast holds each worker's last reported cumulative batching
	// counters; retiredBatch preserves quarantined workers' final values
	// so Metrics stays cumulative across swaps (a failover replacement
	// replays its predecessor's history, so overwriting the slot on its
	// next report is the honest accounting).
	batchLast    []rrset.BatchStats
	retiredBatch rrset.BatchStats
}

// New wraps existing worker connections. numItems is the selectable-item
// space (number of graph nodes, or the set count for max coverage).
func New(conns []Conn, numItems int) (*Cluster, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("cluster: need at least one worker")
	}
	if numItems <= 0 {
		return nil, fmt.Errorf("cluster: item count must be positive, got %d", numItems)
	}
	reg := metrics.NewRegistry()
	return &Cluster{
		conns:        conns,
		numItems:     numItems,
		baseDeg:      make([]int64, numItems),
		mergeScratch: make([]int32, numItems),
		sequential:   runtime.GOMAXPROCS(0) == 1,
		batchLast:    make([]rrset.BatchStats, len(conns)),
		reg:          reg,
		met:          newClusterMetrics(reg),
	}, nil
}

// SetSequentialBroadcast overrides the broadcast strategy: true calls
// workers one at a time (exact per-worker timing on oversubscribed
// hosts), false calls them concurrently (true parallelism when cores or
// remote machines are available).
func (c *Cluster) SetSequentialBroadcast(seq bool) { c.sequential = seq }

// SetLinkModel adds a modeled per-round network delay to the
// communication metric: rtt plus the round's total request+response
// bytes divided by bytesPerSecond — the master's NIC throughput in a
// star topology (0 disables the bandwidth term).
func (c *Cluster) SetLinkModel(rtt time.Duration, bytesPerSecond float64) {
	c.linkRTT = rtt
	c.linkBw = bytesPerSecond
}

// NewLocal builds an in-process cluster of ℓ workers from per-worker
// configurations (one goroutine per worker).
func NewLocal(cfgs []WorkerConfig, numItems int) (*Cluster, error) {
	conns := make([]Conn, len(cfgs))
	for i, cfg := range cfgs {
		w, err := NewWorker(cfg)
		if err != nil {
			for _, c := range conns[:i] {
				c.Close()
			}
			return nil, err
		}
		conns[i] = NewLocalConn(w)
	}
	return New(conns, numItems)
}

// NumWorkers returns ℓ.
func (c *Cluster) NumWorkers() int { return len(c.conns) }

// Metrics returns a snapshot of the accumulated accounting, folding in
// the per-connection byte counters. Safe to call concurrently with
// in-flight rounds: the registry handles are atomics, and the
// connection/batch state shared with the failover path is read under
// healthMu (the lock quarantine and adoptConn mutate it under).
func (c *Cluster) Metrics() Metrics {
	m := Metrics{
		GenCritical:      c.met.genCritical.Duration(),
		GenTotal:         c.met.genTotal.Duration(),
		SelCritical:      c.met.selCritical.Duration(),
		SelTotal:         c.met.selTotal.Duration(),
		MasterCompute:    c.met.masterCompute.Duration(),
		Comm:             c.met.comm.Duration(),
		GenBytesSent:     c.met.genBytesSent.Value(),
		GenBytesReceived: c.met.genBytesRecv.Value(),
		SelBytesSent:     c.met.selBytesSent.Value(),
		SelBytesReceived: c.met.selBytesRecv.Value(),
		DeltaFrames:      c.met.delta.Count(),
		DeltaPairs:       c.met.delta.SumY(),
		DeltaBytes:       c.met.delta.SumX(),
		SketchBuilds:     c.met.sketchBuild.Count(),
		SketchBuildTime:  c.met.sketchBuild.SumDuration(),
		Rounds:           c.met.rounds.Value(),
		UpdateCalls:      c.met.updateCalls.Value(),
		RepairedSets:     c.met.repairedSets.Value(),
		GenCalls:         c.met.genCalls.Value(),
	}
	c.healthMu.Lock()
	for _, conn := range c.conns {
		s, r := conn.Bytes()
		m.BytesSent += s
		m.BytesReceived += r
	}
	m.BytesSent += c.retiredSent
	m.BytesReceived += c.retiredRecv
	m.Batch = c.retiredBatch
	for _, b := range c.batchLast {
		m.Batch.Add(b)
	}
	c.healthMu.Unlock()
	return m
}

// MetricsSnapshot exports the cluster's accounting as one registry
// snapshot: the registry-backed counters plus the derived totals
// (connection bytes, frontier-batch counters) that live outside it.
// This is the /metricsz export path.
func (c *Cluster) MetricsSnapshot() metrics.Snapshot {
	snap := c.reg.Snapshot()
	m := c.Metrics()
	counter := func(name string, v int64) {
		snap[name] = metrics.Sample{Kind: metrics.KindCounter, Sum: v}
	}
	counter("cluster.bytes_sent", m.BytesSent)
	counter("cluster.bytes_recv", m.BytesReceived)
	counter("cluster.batch.waves", m.Batch.Waves)
	counter("cluster.batch.cohorts", m.Batch.Cohorts)
	counter("cluster.batch.frontier_items", m.Batch.FrontierItems)
	counter("cluster.batch.lane_waves", m.Batch.LaneWaves)
	counter("cluster.batch.skipped_edges", m.Batch.SkippedEdges)
	return snap
}

// setBatchLast records worker i's last reported cumulative batching
// counters under healthMu — quarantine folds the same slot into
// retiredBatch concurrently with Metrics() readers.
func (c *Cluster) setBatchLast(i int, b rrset.BatchStats) {
	c.healthMu.Lock()
	c.batchLast[i] = b
	c.healthMu.Unlock()
}

// Close shuts down all worker connections, keeping the first error.
// Quarantined workers' connections were already closed at quarantine.
func (c *Cluster) Close() error {
	var first error
	for i, conn := range c.conns {
		if c.rec != nil && c.dead[i] {
			continue
		}
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// broadcast sends reqs[i] to worker i concurrently and returns all
// responses plus the round's wall time. A nil reqs[i] skips worker i, as
// does a quarantined worker (its resps entry stays nil).
//
// Failure semantics depend on EnableRecovery. Without it, the historic
// contract holds: the first worker error aborts the round. With it, a
// failed call triggers the failover ladder — respawn a replacement,
// resync it from the replay journal, re-issue the call — and a worker
// that stays unreachable through the retry budget is quarantined and
// returned in downs; the caller decides how to repair (recovery.go).
func (c *Cluster) broadcast(reqs [][]byte) (resps [][]byte, wall time.Duration, downs []int, err error) {
	if len(reqs) != len(c.conns) {
		return nil, 0, nil, fmt.Errorf("cluster: %d requests for %d workers", len(reqs), len(c.conns))
	}
	if c.rec != nil {
		for i := range reqs {
			if c.dead[i] {
				reqs[i] = nil
			}
		}
	}
	start := time.Now()
	resps = make([][]byte, len(c.conns))
	errs := make([]error, len(c.conns))
	if c.sequential {
		for i := range c.conns {
			if reqs[i] == nil {
				continue
			}
			resps[i], errs[i] = c.conns[i].Call(reqs[i])
		}
	} else {
		var wg sync.WaitGroup
		for i := range c.conns {
			if reqs[i] == nil {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], errs[i] = c.conns[i].Call(reqs[i])
			}(i)
		}
		wg.Wait()
	}
	wall = time.Since(start)
	// Callers skip nil resps entries as "worker not called this round";
	// a worker that returned a nil frame without an error must stay
	// distinguishable (it is a protocol violation the decoder flags).
	for i := range resps {
		if reqs[i] != nil && errs[i] == nil && resps[i] == nil {
			resps[i] = []byte{}
		}
	}
	for i, callErr := range errs {
		if callErr == nil {
			continue
		}
		if c.rec == nil {
			return nil, wall, nil, fmt.Errorf("cluster: worker %d: %w", i, callErr)
		}
		resp, ferr := c.failover(i, reqs[i], callErr)
		if ferr != nil {
			c.quarantine(i, ferr)
			reqs[i] = nil // drop from the byte accounting below
			downs = append(downs, i)
			continue
		}
		resps[i] = resp
	}
	if c.rec != nil && len(c.liveIndexes()) == 0 {
		return nil, wall, downs, fmt.Errorf("cluster: %w", ErrNoLiveWorkers)
	}
	c.roundSent, c.roundRecv = 0, 0
	for i := range reqs {
		if reqs[i] == nil {
			continue
		}
		c.roundSent += int64(len(reqs[i]))
		c.roundRecv += int64(len(resps[i]))
	}
	if c.linkRTT > 0 || c.linkBw > 0 {
		var totalBytes int
		for i := range reqs {
			if reqs[i] == nil {
				continue
			}
			totalBytes += len(reqs[i]) + len(resps[i])
		}
		extra := c.linkRTT
		if c.linkBw > 0 {
			extra += time.Duration(float64(totalBytes) / c.linkBw * float64(time.Second))
		}
		c.met.comm.AddDuration(extra)
	}
	return resps, wall, downs, nil
}

// same builds an identical request for every worker.
func (c *Cluster) same(req []byte) [][]byte {
	reqs := make([][]byte, len(c.conns))
	for i := range reqs {
		reqs[i] = req
	}
	return reqs
}

// Generate asks the cluster for addTotal more RR sets, split evenly
// across live workers (worker i gets an extra one while distributing the
// remainder), then pulls the new sets' coverage into the baseline degree
// vector. It returns aggregate statistics over everything generated so
// far. A worker lost mid-round is replaced via the failover ladder; if
// it stays down, its quota (in-flight and historic-unfetched) is
// regenerated on survivors under fresh epoch-salted streams, so the
// aggregate count always comes out as requested.
func (c *Cluster) Generate(addTotal int64) (GenerateStats, error) {
	if addTotal < 0 {
		return GenerateStats{}, fmt.Errorf("cluster: negative generation count %d", addTotal)
	}
	live := c.liveIndexes()
	if len(live) == 0 {
		return GenerateStats{}, fmt.Errorf("cluster: %w", ErrNoLiveWorkers)
	}
	l := int64(len(live))
	per := addTotal / l
	extra := addTotal % l
	reqs := make([][]byte, len(c.conns))
	counts := make([]int64, len(c.conns))
	for idx, i := range live {
		count := per
		if int64(idx) < extra {
			count++
		}
		counts[i] = count
		reqs[i] = encodeGenerateReq(count)
	}
	resps, wall, downs, err := c.broadcast(reqs)
	if err != nil {
		return GenerateStats{}, err
	}
	var agg GenerateStats
	handlers := make([]time.Duration, len(resps))
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		nanos, s, err := decodeStatsResp(resp)
		if err != nil {
			return GenerateStats{}, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		handlers[i] = time.Duration(nanos)
		agg.Count += s.Count
		agg.TotalSize += s.TotalSize
		agg.EdgesExamined += s.EdgesExamined
		agg.Batch.Add(s.Batch)
		c.setBatchLast(i, s.Batch)
		if counts[i] > 0 {
			c.record(i, reqs[i], counts[i], 0)
		}
	}
	c.met.genCalls.Inc()
	c.account("gen", wall, handlers)
	if len(downs) > 0 {
		extraLost := make(map[int]int64, len(downs))
		for _, d := range downs {
			extraLost[d] = counts[d]
		}
		if err := c.repair(downs, extraLost); err != nil {
			return GenerateStats{}, err
		}
		// repair rebuilt the baseline (so no syncDegrees) and changed
		// the per-worker counts; re-aggregate for an accurate total.
		return c.Stats()
	}
	return agg, c.syncDegrees()
}

// syncDegrees pulls each worker's coverage deltas for RR sets generated
// since the previous sync and folds them into the baseline Δ vector.
func (c *Cluster) syncDegrees() error {
	resps, wall, downs, err := c.broadcast(c.same(encodeSimpleReq(msgDegreeDelta)))
	if err != nil {
		return err
	}
	if len(downs) > 0 {
		// A quarantine invalidates the baseline anyway (the dead
		// worker's synced coverage must be withdrawn); repair rebuilds
		// it from zero, so folding this round's live replies first
		// would only be overwritten.
		return c.repair(downs, nil)
	}
	handlers := make([]time.Duration, len(resps))
	var buf []DeltaPair
	start := time.Now()
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		nanos, pairs, err := decodeDeltasResp(resp, buf, i)
		if err != nil {
			return fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		buf = pairs
		handlers[i] = time.Duration(nanos)
		c.countDeltaFrame(resp, pairs)
		for _, p := range pairs {
			if int(p.Node) >= c.numItems {
				return fmt.Errorf("cluster: worker %d reported node %d outside item space", i, p.Node)
			}
			c.baseDeg[p.Node] += int64(p.Dec)
		}
		if c.rec != nil {
			c.logs[i].synced = c.logs[i].count()
		}
	}
	c.met.masterCompute.AddDuration(time.Since(start))
	c.account("sel", wall, handlers)
	return nil
}

// Ingest loads element lists onto a specific worker (max-coverage
// workloads); itemCount must be the same for every worker of the cluster.
// If the requested worker is (or becomes) quarantined, the lists are
// re-routed to a surviving worker — placement does not affect the
// element-distributed algorithm, only balance.
func (c *Cluster) Ingest(worker int, lists [][]uint32) error {
	if worker < 0 || worker >= len(c.conns) {
		return fmt.Errorf("cluster: no worker %d", worker)
	}
	if c.numItems > 1<<32-1 {
		return fmt.Errorf("cluster: item space too large for the wire format")
	}
	req := encodeIngestReq(c.numItems, lists)
	for {
		target := worker
		if c.rec != nil && c.dead[target] {
			live := c.liveIndexes()
			if len(live) == 0 {
				return fmt.Errorf("cluster: %w", ErrNoLiveWorkers)
			}
			target = live[0]
		}
		reqs := make([][]byte, len(c.conns))
		reqs[target] = req
		resps, wall, downs, err := c.broadcast(reqs)
		if err != nil {
			return err
		}
		if len(downs) > 0 {
			if err := c.repair(downs, nil); err != nil {
				return err
			}
			if resps[target] == nil {
				continue // the ingest itself failed; retry on a survivor
			}
		}
		nanos, err := decodeAckResp(resps[target])
		if err != nil {
			return err
		}
		c.record(target, req, 0, int64(len(lists)))
		c.account("sel", wall, []time.Duration{time.Duration(nanos)})
		// Fold the ingested lists' coverage into the baseline (repair,
		// if it ran, already rebuilt the baseline including them).
		if len(downs) > 0 {
			return nil
		}
		return c.syncDegreesOne(target)
	}
}

// syncDegreesOne pulls degree deltas from a single worker.
func (c *Cluster) syncDegreesOne(worker int) error {
	reqs := make([][]byte, len(c.conns))
	reqs[worker] = encodeSimpleReq(msgDegreeDelta)
	resps, wall, downs, err := c.broadcast(reqs)
	if err != nil {
		return err
	}
	if len(downs) > 0 {
		return c.repair(downs, nil)
	}
	nanos, pairs, err := decodeDeltasResp(resps[worker], nil, worker)
	if err != nil {
		return err
	}
	c.countDeltaFrame(resps[worker], pairs)
	for _, p := range pairs {
		if int(p.Node) >= c.numItems {
			return fmt.Errorf("cluster: worker %d reported node %d outside item space", worker, p.Node)
		}
		c.baseDeg[p.Node] += int64(p.Dec)
	}
	if c.rec != nil {
		c.logs[worker].synced = c.logs[worker].count()
	}
	c.account("sel", wall, []time.Duration{time.Duration(nanos)})
	return nil
}

// Stats aggregates collection statistics across live workers.
func (c *Cluster) Stats() (GenerateStats, error) {
	for {
		resps, wall, downs, err := c.broadcast(c.same(encodeSimpleReq(msgStats)))
		if err != nil {
			return GenerateStats{}, err
		}
		if len(downs) > 0 {
			// The dead workers' sets must be regenerated before the
			// aggregate means anything; repair then re-read.
			if err := c.repair(downs, nil); err != nil {
				return GenerateStats{}, err
			}
			continue
		}
		var agg GenerateStats
		handlers := make([]time.Duration, len(resps))
		for i, resp := range resps {
			if resp == nil {
				continue
			}
			nanos, s, err := decodeStatsResp(resp)
			if err != nil {
				return GenerateStats{}, err
			}
			handlers[i] = time.Duration(nanos)
			agg.Count += s.Count
			agg.TotalSize += s.TotalSize
			agg.EdgesExamined += s.EdgesExamined
			agg.Batch.Add(s.Batch)
			c.setBatchLast(i, s.Batch)
		}
		c.account("sel", wall, handlers)
		return agg, nil
	}
}

// Reset drops all RR sets cluster-wide and zeroes the baseline degrees.
// With recovery enabled it first tries to reinstate quarantined workers:
// a fresh respawn needs no resync here, because the reset wipes exactly
// the state a replacement would lack. This is the "re-seeded from
// Reset+Generate" rejoin path for replaced or restarted workers.
func (c *Cluster) Reset() error {
	if c.rec != nil {
		for i := range c.conns {
			if !c.dead[i] {
				continue
			}
			conn, err := c.rec.Respawn(i)
			if err != nil {
				continue // stays quarantined; the operator can retry later
			}
			c.adoptConn(i, conn)
		}
		for i := range c.logs {
			c.logs[i] = workerLog{}
		}
		c.selecting = false
		c.selSeeds = c.selSeeds[:0]
	}
	resps, wall, downs, err := c.broadcast(c.same(encodeSimpleReq(msgReset)))
	if err != nil {
		return err
	}
	handlers := make([]time.Duration, len(resps))
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		nanos, err := decodeAckResp(resp)
		if err != nil {
			return err
		}
		handlers[i] = time.Duration(nanos)
	}
	// Workers quarantined during the reset held no state worth
	// rebalancing (everything was being dropped); nothing to repair.
	_ = downs
	c.account("sel", wall, handlers)
	for i := range c.baseDeg {
		c.baseDeg[i] = 0
	}
	return nil
}

// decodeFetchResp validates a fetch response's integrity trailer and
// decodes its RR payload into the collection via the shared decoder
// (rrset.DecodeWire — the same one the durable store replays segments
// with), returning the number of RR sets appended.
func decodeFetchResp(worker int, rest []byte, into *rrset.Collection) (int, error) {
	payload, err := verifyFramePayload(worker, rest)
	if err != nil {
		return 0, err
	}
	count, trailing, err := rrset.DecodeWire(payload, into)
	if err != nil {
		return 0, err
	}
	if len(trailing) != 0 {
		return 0, &FrameIntegrityError{Worker: worker, Reason: fmt.Sprintf(
			"%d trailing bytes after the declared RR sets", len(trailing))}
	}
	return count, nil
}

// GatherAll pulls every worker's entire RR collection into one in-memory
// collection at the master — the naive strategy of Haque and Banerjee
// that §II-B argues against. It is provided as a measurable baseline:
// its traffic is Θ(Σ|R|) bytes (see Metrics), versus NEWGREEDI's O(ℓ·k·n)
// for a complete selection, and its memory footprint is the entire sample
// set on one machine.
func (c *Cluster) GatherAll() (*rrset.Collection, error) {
	for {
		resps, wall, downs, err := c.broadcast(c.same(encodeSimpleReq(msgFetchAll)))
		if err != nil {
			return nil, err
		}
		if len(downs) > 0 {
			// The union must cover the whole sample; regenerate the
			// quarantined workers' shards on survivors, then refetch
			// from scratch (a gather is Θ(total) anyway).
			if err := c.repair(downs, nil); err != nil {
				return nil, err
			}
			continue
		}
		handlers := make([]time.Duration, len(resps))
		union := rrset.NewCollection(1 << 16)
		start := time.Now()
		for i, resp := range resps {
			if resp == nil {
				continue
			}
			nanos, rest, err := decodeRespHeader(resp)
			if err != nil {
				return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
			}
			handlers[i] = time.Duration(nanos)
			if _, err := decodeFetchResp(i, rest, union); err != nil {
				return nil, err
			}
		}
		c.met.masterCompute.AddDuration(time.Since(start))
		c.account("sel", wall, handlers)
		return union, nil
	}
}

// FetchNew pulls, from each worker, only the RR sets generated since the
// previous fetch and appends them to `into` in worker-index order —
// which, together with each worker's deterministic shard-ordered stream,
// makes the gathered collection's contents and order a deterministic
// function of (seed, machines, parallelism) and the sequence of Generate
// calls. since[i] is the count already fetched from worker i (nil means
// zero everywhere); the returned slice carries the updated counts for
// the next call. This is the sync primitive of the resident query
// service: after a growth round its traffic is Θ(new RR size), not
// Θ(total RR size) like GatherAll.
func (c *Cluster) FetchNew(since []int, into *rrset.Collection) ([]int, error) {
	next, _, err := c.FetchNewSpans(since, into)
	return next, err
}

// FetchSpan records where one contiguous run of a worker's RR sets
// landed in a fetched collection: worker-local positions [WorkerStart,
// WorkerStart+Count) map to destination positions [MasterStart,
// MasterStart+Count). The spans of a fetch partition exactly the
// worker-local ranges it pulled — a master mirroring the shards keeps
// them to translate worker-local repair patches (Update) into positions
// in its own mirror.
type FetchSpan struct {
	Worker      int
	WorkerStart int
	MasterStart int
	Count       int
}

// FetchNewSpans is FetchNew plus the worker→destination position spans
// of everything appended. MasterStart values are relative to `into`'s
// size at call time.
func (c *Cluster) FetchNewSpans(since []int, into *rrset.Collection) ([]int, []FetchSpan, error) {
	if since == nil {
		since = make([]int, len(c.conns))
	}
	if len(since) != len(c.conns) {
		return nil, nil, fmt.Errorf("cluster: %d fetch cursors for %d workers", len(since), len(c.conns))
	}
	if into == nil {
		return nil, nil, fmt.Errorf("cluster: nil destination collection")
	}
	next := make([]int, len(since))
	copy(next, since)
	var spans []FetchSpan
	for {
		reqs := make([][]byte, len(c.conns))
		for i := range reqs {
			reqs[i] = encodeFetchSinceReq(int64(next[i]))
		}
		resps, wall, downs, err := c.broadcast(reqs)
		if err != nil {
			return nil, nil, err
		}
		handlers := make([]time.Duration, len(resps))
		start := time.Now()
		for i, resp := range resps {
			if resp == nil {
				continue
			}
			nanos, rest, err := decodeRespHeader(resp)
			if err != nil {
				return nil, nil, fmt.Errorf("cluster: worker %d: %w", i, err)
			}
			handlers[i] = time.Duration(nanos)
			dst := into.Count()
			added, err := decodeFetchResp(i, rest, into)
			if err != nil {
				return nil, nil, err
			}
			if added > 0 {
				spans = append(spans, FetchSpan{Worker: i, WorkerStart: next[i], MasterStart: dst, Count: added})
			}
			next[i] += added
			if c.rec != nil {
				c.logs[i].fetched = int64(next[i])
			}
		}
		c.met.masterCompute.AddDuration(time.Since(start))
		c.account("sel", wall, handlers)
		if len(downs) == 0 {
			return next, spans, nil
		}
		// The quarantined workers' unfetched suffixes were lost with
		// them; repair regenerates exactly those RR sets on survivors
		// (fresh epoch-salted streams), and the next loop iteration
		// fetches them from the survivors' advanced cursors. Each
		// iteration either quarantines another worker or terminates.
		if err := c.repair(downs, nil); err != nil {
			return nil, nil, err
		}
	}
}

// EstimateSpread estimates σ(seeds) by forward Monte-Carlo simulation
// spread across the workers (rounds split evenly), the distributed
// influence-estimation service of §II-B. Returns the sample mean and its
// standard error.
func (c *Cluster) EstimateSpread(seeds []uint32, rounds int64) (mean, stderr float64, err error) {
	if rounds <= 0 {
		return 0, 0, fmt.Errorf("cluster: round count must be positive, got %d", rounds)
	}
	live := c.liveIndexes()
	if len(live) == 0 {
		return 0, 0, fmt.Errorf("cluster: %w", ErrNoLiveWorkers)
	}
	l := int64(len(live))
	per := rounds / l
	extra := rounds % l
	reqs := make([][]byte, len(c.conns))
	for idx, i := range live {
		r := per
		if int64(idx) < extra {
			r++
		}
		reqs[i] = encodeEstimateReq(seeds, r)
	}
	resps, wall, downs, err := c.broadcast(reqs)
	if err != nil {
		return 0, 0, err
	}
	if len(downs) > 0 {
		// Simulation rounds are stateless, but the quarantined workers'
		// RR shards must be regenerated before any later sample use.
		// The estimate itself proceeds on the rounds that did return:
		// the mean stays unbiased, just over fewer rounds.
		if err := c.repair(downs, nil); err != nil {
			return 0, 0, err
		}
	}
	handlers := make([]time.Duration, len(resps))
	var totRounds, sum, sumSq int64
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		nanos, rest, err := decodeRespHeader(resp)
		if err != nil {
			return 0, 0, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		handlers[i] = time.Duration(nanos)
		var r, s, sq int64
		if r, rest, err = consumeI64(rest); err != nil {
			return 0, 0, err
		}
		if s, rest, err = consumeI64(rest); err != nil {
			return 0, 0, err
		}
		if sq, _, err = consumeI64(rest); err != nil {
			return 0, 0, err
		}
		totRounds += r
		sum += s
		sumSq += sq
	}
	c.account("gen", wall, handlers)
	if totRounds == 0 {
		return 0, 0, fmt.Errorf("cluster: no simulation rounds executed")
	}
	mean = float64(sum) / float64(totRounds)
	variance := float64(sumSq)/float64(totRounds) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance / float64(totRounds)), nil
}

// CoverageOf counts, across all workers, the RR sets covered by the seed
// set. Used by frameworks that evaluate a fixed solution on a held-out
// collection (OPIM-C's lower bound).
func (c *Cluster) CoverageOf(seeds []uint32) (int64, error) {
	for {
		resps, wall, downs, err := c.broadcast(c.same(encodeCoverageReq(seeds)))
		if err != nil {
			return 0, err
		}
		if len(downs) > 0 {
			// The count must run over the full sample; repair moves the
			// quarantined shards onto survivors, then re-count.
			if err := c.repair(downs, nil); err != nil {
				return 0, err
			}
			continue
		}
		handlers := make([]time.Duration, len(resps))
		var total int64
		for i, resp := range resps {
			if resp == nil {
				continue
			}
			nanos, rest, err := decodeRespHeader(resp)
			if err != nil {
				return 0, fmt.Errorf("cluster: worker %d: %w", i, err)
			}
			handlers[i] = time.Duration(nanos)
			covered, _, err := consumeI64(rest)
			if err != nil {
				return 0, err
			}
			total += covered
		}
		c.account("sel", wall, handlers)
		return total, nil
	}
}

// Oracle returns the element-distributed coverage oracle over this
// cluster: the NEWGREEDI algorithm is exactly coverage.RunGreedy on it.
func (c *Cluster) Oracle() coverage.Oracle { return &distOracle{c: c} }

// distOracle adapts the cluster to coverage.Oracle.
type distOracle struct {
	c *Cluster
}

func (o *distOracle) NumItems() int { return o.c.numItems }

// InitialDegrees relabels every RR set uncovered on every worker and
// hands the greedy a copy of the aggregated baseline vector. The copy
// matters: the greedy mutates its degree vector, while the baseline must
// survive for the next NEWGREEDI call at a larger θ.
func (o *distOracle) InitialDegrees() ([]int64, error) {
	c := o.c
	for {
		resps, wall, downs, err := c.broadcast(c.same(encodeSimpleReq(msgBeginSelect)))
		if err != nil {
			return nil, err
		}
		if len(downs) > 0 {
			// Repair, then re-relabel: beginSelect is idempotent, so
			// re-broadcasting to workers that already acked just resets
			// their covered labels again. The rebuilt baseline reflects
			// the repaired sample, so the greedy starts consistent.
			if err := c.repair(downs, nil); err != nil {
				return nil, err
			}
			continue
		}
		handlers := make([]time.Duration, len(resps))
		for i, resp := range resps {
			if resp == nil {
				continue
			}
			nanos, err := decodeAckResp(resp)
			if err != nil {
				return nil, err
			}
			handlers[i] = time.Duration(nanos)
		}
		c.account("sel", wall, handlers)
		if c.rec != nil {
			c.selecting = true
			c.selSeeds = c.selSeeds[:0]
		}
		deg := make([]int64, len(c.baseDeg))
		copy(deg, c.baseDeg)
		return deg, nil
	}
}

// Select broadcasts the new seed and merges the per-worker delta vectors
// (Algorithm 1's reduce stage, line 22).
func (o *distOracle) Select(u uint32) ([]coverage.Delta, error) {
	c := o.c
	resps, wall, downs, err := c.broadcast(c.same(encodeSelectReq(u)))
	if err != nil {
		return nil, err
	}
	if len(downs) > 0 {
		// A shard died mid-greedy and its sets were regenerated on
		// survivors — the greedy's degree vector no longer describes
		// the repaired sample. Repair, then make the caller restart
		// from InitialDegrees (the typed error below); the restarted
		// run selects over a consistent sample of the original size.
		if err := c.repair(downs, nil); err != nil {
			return nil, err
		}
		c.selecting = false
		c.selSeeds = c.selSeeds[:0]
		return nil, &RebalancedError{Quarantined: downs}
	}
	handlers := make([]time.Duration, len(resps))
	start := time.Now()
	c.mergeTouched = c.mergeTouched[:0]
	var buf []DeltaPair
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		nanos, pairs, err := decodeDeltasResp(resp, buf, i)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		buf = pairs
		handlers[i] = time.Duration(nanos)
		c.countDeltaFrame(resp, pairs)
		for _, p := range pairs {
			if int(p.Node) >= c.numItems {
				return nil, fmt.Errorf("cluster: worker %d delta for node %d outside item space", i, p.Node)
			}
			if c.mergeScratch[p.Node] == 0 {
				c.mergeTouched = append(c.mergeTouched, p.Node)
			}
			c.mergeScratch[p.Node] += p.Dec
		}
	}
	out := make([]coverage.Delta, len(c.mergeTouched))
	for i, v := range c.mergeTouched {
		out[i] = coverage.Delta{Node: v, Dec: c.mergeScratch[v]}
		c.mergeScratch[v] = 0
		// Keep the baseline in sync: these RR sets are now covered for the
		// remainder of this greedy run only, so the baseline must NOT
		// change here. Baseline tracks all-uncovered degrees.
	}
	if c.rec != nil {
		// Journal the seed: a replacement worker resyncing mid-greedy
		// replays beginSelect plus this prefix to rebuild its covered
		// labels exactly.
		c.selSeeds = append(c.selSeeds, u)
	}
	c.met.masterCompute.AddDuration(time.Since(start))
	c.account("sel", wall, handlers)
	return out, nil
}

// AddMasterCompute lets the selection driver account bucket-scan time.
func (c *Cluster) AddMasterCompute(d time.Duration) { c.met.masterCompute.AddDuration(d) }

// AddSketchBuild lets the serving layer account one incremental sketch
// build pass over this cluster's RR output (the fast tier's analogue of
// AddMasterCompute).
func (c *Cluster) AddSketchBuild(d time.Duration) {
	c.met.sketchBuild.ObserveDuration(d)
}
