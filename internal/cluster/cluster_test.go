package cluster

import (
	"net"
	"strings"
	"testing"
	"testing/quick"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 300, AvgDegree: 6, Seed: 17, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return wc
}

func localCluster(t testing.TB, g *graph.Graph, machines int, model diffusion.Model, seed uint64) *Cluster {
	t.Helper()
	cfgs := make([]WorkerConfig, machines)
	for i := range cfgs {
		cfgs[i] = WorkerConfig{Graph: g, Model: model, Seed: DeriveSeed(seed, i)}
	}
	cl, err := NewLocal(cfgs, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestProtoRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := r.Intn(200)
		pairs := make([]DeltaPair, n)
		for i := range pairs {
			pairs[i] = DeltaPair{Node: uint32(r.Uint64()), Dec: int32(r.Intn(1 << 20))}
		}
		nanos := int64(r.Uint64() >> 1)
		frame := encodeDeltasResp(nanos, pairs, 0)
		gotNanos, got, err := decodeDeltasResp(frame, nil, -1)
		if err != nil || gotNanos != nanos || len(got) != len(pairs) {
			return false
		}
		for i := range pairs {
			if got[i] != pairs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProtoStatsRoundTrip(t *testing.T) {
	s := GenerateStats{Count: 12345, TotalSize: 999999999999, EdgesExamined: 7}
	frame := encodeStatsResp(0, 42, s)
	nanos, got, err := decodeStatsResp(frame)
	if err != nil || nanos != 42 || got != s {
		t.Fatalf("round trip: %v %v %v", nanos, got, err)
	}
}

func TestProtoErrors(t *testing.T) {
	if _, _, err := decodeRespHeader([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, _, err := decodeDeltasResp(encodeErrorResp(errTest("boom")), nil, -1); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("worker error not surfaced: %v", err)
	}
	// Corrupt pair count.
	frame := encodeDeltasResp(0, []DeltaPair{{1, 2}}, 0)
	frame = frame[:len(frame)-3]
	if _, _, err := decodeDeltasResp(frame, nil, -1); err == nil {
		t.Fatal("truncated delta frame accepted")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestWorkerRejectsGarbage(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Graph: testGraph(t), Model: diffusion.IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range [][]byte{nil, {0xee}, {msgGenerate}, {msgSelect, 1}, {msgSelect, 1, 2, 3, 4}} {
		resp := w.Handle(req)
		if _, _, err := decodeRespHeader(resp); err == nil {
			t.Fatalf("garbage request %v produced a non-error reply", req)
		}
	}
	// Select before beginSelection must error, not panic.
	resp := w.Handle(encodeSelectReq(0))
	if _, _, err := decodeRespHeader(resp); err == nil {
		t.Fatal("select before beginSelection accepted")
	}
}

func TestGenerateSplitsEvenly(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 4, diffusion.IC, 5)
	stats, err := cl.Generate(1003)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 1003 {
		t.Fatalf("cluster holds %d RR sets, want 1003", stats.Count)
	}
	if stats.TotalSize < 1003 {
		t.Fatalf("total size %d below count", stats.TotalSize)
	}
	// Generation is incremental.
	stats, err = cl.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 1010 {
		t.Fatalf("after top-up: %d, want 1010", stats.Count)
	}
	m := cl.Metrics()
	if m.BytesSent == 0 || m.BytesReceived == 0 || m.Rounds == 0 {
		t.Fatalf("metrics not recorded: %+v", m)
	}
}

// TestDistributedEqualsLocalOracle is the core NEWGREEDI correctness
// property over the real protocol: a cluster of ℓ workers and a
// single-machine oracle holding the union of the same RR sets must yield
// the identical seed sequence and coverage.
func TestDistributedEqualsLocalOracle(t *testing.T) {
	g := testGraph(t)
	for _, machines := range []int{1, 2, 3, 8} {
		cl := localCluster(t, g, machines, diffusion.IC, 77)
		if _, err := cl.Generate(800); err != nil {
			t.Fatal(err)
		}
		distRes, err := coverage.RunGreedy(cl.Oracle(), 10)
		if err != nil {
			t.Fatal(err)
		}
		// Regenerate the identical RR sets locally: same per-machine seeds,
		// same per-machine counts, concatenated in machine order.
		union := rrset.NewCollection(1 << 16)
		per := 800 / machines
		extra := 800 % machines
		for i := 0; i < machines; i++ {
			count := per
			if i < extra {
				count++
			}
			s, err := rrset.NewSampler(g, diffusion.IC, DeriveSeed(77, i), false)
			if err != nil {
				t.Fatal(err)
			}
			s.SampleManyInto(union, int64(count))
		}
		idx, err := rrset.BuildIndex(union, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		o, err := coverage.NewLocalOracle(union, idx, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		localRes, err := coverage.RunGreedy(o, 10)
		if err != nil {
			t.Fatal(err)
		}
		if distRes.Coverage != localRes.Coverage {
			t.Fatalf("ℓ=%d: distributed coverage %d != local %d", machines, distRes.Coverage, localRes.Coverage)
		}
		for i := range localRes.Seeds {
			if distRes.Seeds[i] != localRes.Seeds[i] {
				t.Fatalf("ℓ=%d: seed %d differs: %v vs %v", machines, i, distRes.Seeds, localRes.Seeds)
			}
		}
		// Independent recount of the distributed result.
		if got := coverage.CoverageOf(union, distRes.Seeds); got != distRes.Coverage {
			t.Fatalf("ℓ=%d: recount %d != reported %d", machines, got, distRes.Coverage)
		}
	}
}

// TestRepeatedSelectionRuns: NEWGREEDI is called repeatedly at growing θ
// (as DIIMM does); each call must see all RR sets uncovered again.
func TestRepeatedSelectionRuns(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 3, diffusion.LT, 9)
	var prev int64
	for round := 0; round < 3; round++ {
		if _, err := cl.Generate(300); err != nil {
			t.Fatal(err)
		}
		res, err := coverage.RunGreedy(cl.Oracle(), 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < prev {
			t.Fatalf("coverage shrank from %d to %d as θ grew", prev, res.Coverage)
		}
		prev = res.Coverage
		// Re-running at the same θ must give the identical result.
		again, err := coverage.RunGreedy(cl.Oracle(), 5)
		if err != nil {
			t.Fatal(err)
		}
		if again.Coverage != res.Coverage {
			t.Fatalf("round %d: rerun coverage %d != %d", round, again.Coverage, res.Coverage)
		}
	}
}

func TestClusterReset(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 2, diffusion.IC, 3)
	if _, err := cl.Generate(100); err != nil {
		t.Fatal(err)
	}
	if err := cl.Reset(); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 0 {
		t.Fatalf("after reset: %d RR sets", stats.Count)
	}
	// Post-reset runs still work.
	if _, err := cl.Generate(50); err != nil {
		t.Fatal(err)
	}
	if _, err := coverage.RunGreedy(cl.Oracle(), 3); err != nil {
		t.Fatal(err)
	}
}

func TestIngestMaxCoverage(t *testing.T) {
	// Two workers share an element-partitioned instance; greedy over the
	// cluster must match a local greedy over the union.
	lists := [][]uint32{{0, 1}, {1, 2}, {2}, {0, 3}, {3}, {1}}
	cl, err := NewLocal(make([]WorkerConfig, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var shard0, shard1 [][]uint32
	for e, l := range lists {
		if e%2 == 0 {
			shard0 = append(shard0, l)
		} else {
			shard1 = append(shard1, l)
		}
	}
	if err := cl.Ingest(0, shard0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ingest(1, shard1); err != nil {
		t.Fatal(err)
	}
	res, err := coverage.RunGreedy(cl.Oracle(), 2)
	if err != nil {
		t.Fatal(err)
	}
	union := rrset.NewCollection(64)
	for _, l := range lists {
		union.Append(l, 0)
	}
	idx, _ := rrset.BuildIndex(union, 4)
	o, _ := coverage.NewLocalOracle(union, idx, 4)
	want, err := coverage.RunGreedy(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != want.Coverage {
		t.Fatalf("ingested cluster coverage %d != local %d", res.Coverage, want.Coverage)
	}
}

func TestIngestRejectsOutOfRange(t *testing.T) {
	cl, err := NewLocal(make([]WorkerConfig, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ingest(0, [][]uint32{{5}}); err == nil {
		t.Fatal("member outside item space accepted")
	}
	if err := cl.Ingest(7, nil); err == nil {
		t.Fatal("bad worker index accepted")
	}
}

func TestTCPTransport(t *testing.T) {
	g := testGraph(t)
	const machines = 3
	conns := make([]Conn, machines)
	for i := 0; i < machines; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		seed := DeriveSeed(77, i)
		go func() {
			_ = Serve(lis, func() (*Worker, error) {
				return NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: seed})
			})
		}()
		t.Cleanup(func() { lis.Close() })
		conn, err := DialWorker(lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
	}
	tcpCl, err := New(conns, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer tcpCl.Close()
	if _, err := tcpCl.Generate(600); err != nil {
		t.Fatal(err)
	}
	tcpRes, err := coverage.RunGreedy(tcpCl.Oracle(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// The same seeds over the in-process transport must give the same
	// outcome bit for bit.
	localCl := localCluster(t, g, machines, diffusion.IC, 77)
	if _, err := localCl.Generate(600); err != nil {
		t.Fatal(err)
	}
	localRes, err := coverage.RunGreedy(localCl.Oracle(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tcpRes.Coverage != localRes.Coverage {
		t.Fatalf("TCP coverage %d != local %d", tcpRes.Coverage, localRes.Coverage)
	}
	for i := range tcpRes.Seeds {
		if tcpRes.Seeds[i] != localRes.Seeds[i] {
			t.Fatal("TCP and local transports disagree on seeds")
		}
	}
	m := tcpCl.Metrics()
	if m.BytesSent == 0 || m.BytesReceived == 0 {
		t.Fatal("TCP byte accounting empty")
	}
}

func TestWorkerFailureSurfaces(t *testing.T) {
	// Killing a TCP worker mid-session must produce an error on the next
	// call, not a hang or panic.
	g := testGraph(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = Serve(lis, func() (*Worker, error) {
			return NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 1})
		})
	}()
	conn, err := DialWorker(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New([]Conn{conn}, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Generate(10); err != nil {
		t.Fatal(err)
	}
	lis.Close()
	conn.Close()
	if _, err := cl.Generate(10); err == nil {
		t.Fatal("call after worker death succeeded")
	}
}

func TestLocalConnClosed(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Graph: testGraph(t), Model: diffusion.IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := NewLocalConn(w)
	if _, err := c.Call(encodeSimpleReq(msgStats)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(encodeSimpleReq(msgStats)); err == nil {
		t.Fatal("call on closed conn succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close failed")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 5); err == nil {
		t.Fatal("empty cluster accepted")
	}
	w, _ := NewWorker(WorkerConfig{})
	c := NewLocalConn(w)
	defer c.Close()
	if _, err := New([]Conn{c}, 0); err == nil {
		t.Fatal("zero item count accepted")
	}
}

func TestSequentialAndConcurrentBroadcastAgree(t *testing.T) {
	g := testGraph(t)
	run := func(sequential bool) *coverage.Result {
		cl := localCluster(t, g, 4, diffusion.IC, 55)
		cl.SetSequentialBroadcast(sequential)
		if _, err := cl.Generate(600); err != nil {
			t.Fatal(err)
		}
		res, err := coverage.RunGreedy(cl.Oracle(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, conc := run(true), run(false)
	if seq.Coverage != conc.Coverage {
		t.Fatalf("broadcast strategy changed coverage: %d vs %d", seq.Coverage, conc.Coverage)
	}
	for i := range seq.Seeds {
		if seq.Seeds[i] != conc.Seeds[i] {
			t.Fatal("broadcast strategy changed seeds")
		}
	}
}

func TestCriticalPathMetric(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 4, diffusion.IC, 21)
	if _, err := cl.Generate(2000); err != nil {
		t.Fatal(err)
	}
	if _, err := coverage.RunGreedy(cl.Oracle(), 10); err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	if m.GenCritical <= 0 || m.GenTotal < m.GenCritical {
		t.Fatalf("generation accounting wrong: critical %v total %v", m.GenCritical, m.GenTotal)
	}
	if m.SelTotal < m.SelCritical {
		t.Fatalf("selection accounting wrong: critical %v total %v", m.SelCritical, m.SelTotal)
	}
	if m.CriticalPath() <= 0 {
		t.Fatal("critical path empty")
	}
	// With 4 workers sharing the sampling, the critical path's generation
	// share must be well below the sequential-equivalent total.
	if m.GenCritical*2 > m.GenTotal {
		t.Fatalf("4-way generation shows no sharing: critical %v vs total %v", m.GenCritical, m.GenTotal)
	}
}
