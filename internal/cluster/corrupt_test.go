package cluster

import (
	"testing"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
)

// corruptConn wraps a Conn and mangles responses after a configurable
// number of healthy calls, modeling a worker whose process or link went
// bad mid-run. The master must surface errors, never panic or hang.
type corruptConn struct {
	inner   Conn
	healthy int
	calls   int
	mode    string // "truncate" | "garbage" | "empty"
}

func (c *corruptConn) Call(req []byte) ([]byte, error) {
	resp, err := c.inner.Call(req)
	if err != nil {
		return nil, err
	}
	c.calls++
	if c.calls <= c.healthy {
		return resp, nil
	}
	switch c.mode {
	case "truncate":
		if len(resp) > 3 {
			return resp[:3], nil
		}
		return resp, nil
	case "garbage":
		out := make([]byte, len(resp))
		for i := range out {
			out[i] = byte(i*131 + 7)
		}
		return out, nil
	default:
		return nil, nil
	}
}

func (c *corruptConn) Bytes() (int64, int64) { return c.inner.Bytes() }
func (c *corruptConn) Close() error          { return c.inner.Close() }

func TestMasterSurvivesCorruptResponses(t *testing.T) {
	g := testGraph(t)
	for _, mode := range []string{"truncate", "garbage", "empty"} {
		t.Run(mode, func(t *testing.T) {
			conns := make([]Conn, 3)
			for i := range conns {
				w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(1, i)})
				if err != nil {
					t.Fatal(err)
				}
				var c Conn = NewLocalConn(w)
				if i == 1 {
					// Worker 1 goes bad after 2 healthy calls.
					c = &corruptConn{inner: c, healthy: 2, mode: mode}
				}
				conns[i] = c
			}
			cl, err := New(conns, g.NumNodes())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			// First round is healthy...
			if _, err := cl.Generate(30); err != nil {
				t.Fatalf("healthy round failed: %v", err)
			}
			// ...then the corruption must surface as an error somewhere in
			// the next operations, without panics.
			sawErr := false
			if _, err := cl.Generate(30); err != nil {
				sawErr = true
			}
			if !sawErr {
				if _, err := coverage.RunGreedy(cl.Oracle(), 3); err != nil {
					sawErr = true
				}
			}
			if !sawErr {
				t.Fatal("corrupt worker went unnoticed")
			}
		})
	}
}
