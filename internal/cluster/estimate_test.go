package cluster

import (
	"math"
	"testing"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
)

// fig1Graph builds the paper's Fig. 1 example graph (exact spreads known).
func fig1Graph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, Prob: 1.0}, {From: 0, To: 2, Prob: 1.0},
		{From: 0, To: 3, Prob: 0.4}, {From: 1, To: 3, Prob: 0.3}, {From: 2, To: 3, Prob: 0.2},
	} {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestDistributedEstimate: the cluster's Monte-Carlo estimation service
// must reproduce Example 1's exact spreads within sampling error, with
// the rounds split across machines.
func TestDistributedEstimate(t *testing.T) {
	g := fig1Graph(t)
	for _, tc := range []struct {
		model diffusion.Model
		want  float64
	}{{diffusion.IC, 3.664}, {diffusion.LT, 3.9}} {
		cl := localCluster(t, g, 3, tc.model, 41)
		mean, se, err := cl.EstimateSpread([]uint32{0}, 90001)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-tc.want) > 5*se+0.01 {
			t.Fatalf("%v: distributed estimate %v ± %v vs exact %v", tc.model, mean, se, tc.want)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	g := fig1Graph(t)
	cl := localCluster(t, g, 2, diffusion.IC, 1)
	if _, _, err := cl.EstimateSpread([]uint32{0}, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, _, err := cl.EstimateSpread([]uint32{99}, 10); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

// TestGatherAllMatchesDistributed: the gather-all baseline must select
// the same seeds as NEWGREEDI over the same samples — its flaw is cost,
// not correctness.
func TestGatherAllMatchesDistributed(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 4, diffusion.IC, 13)
	if _, err := cl.Generate(500); err != nil {
		t.Fatal(err)
	}
	dist, err := coverage.RunGreedy(cl.Oracle(), 8)
	if err != nil {
		t.Fatal(err)
	}
	union, err := cl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	if union.Count() != 500 {
		t.Fatalf("gathered %d RR sets, want 500", union.Count())
	}
	idx, err := rrset.BuildIndex(union, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	o, err := coverage.NewLocalOracle(union, idx, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	central, err := coverage.RunGreedy(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	if central.Coverage != dist.Coverage {
		t.Fatalf("gather-all coverage %d != NEWGREEDI %d", central.Coverage, dist.Coverage)
	}
	for i := range central.Seeds {
		if central.Seeds[i] != dist.Seeds[i] {
			t.Fatal("gather-all and NEWGREEDI disagree on seeds")
		}
	}
}

// TestGatherAllTrafficBlowup quantifies §II-B's argument: gathering the
// samples costs traffic proportional to their total size, which dwarfs a
// full NEWGREEDI selection's delta traffic on the same data.
func TestGatherAllTrafficBlowup(t *testing.T) {
	g := testGraph(t)

	// Run NEWGREEDI on one cluster and gather-all on an identical second
	// cluster, comparing the bytes each moved for selection.
	measure := func(gather bool) int64 {
		cl := localCluster(t, g, 4, diffusion.IC, 29)
		if _, err := cl.Generate(4000); err != nil {
			t.Fatal(err)
		}
		before := cl.Metrics()
		if gather {
			if _, err := cl.GatherAll(); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := coverage.RunGreedy(cl.Oracle(), 10); err != nil {
				t.Fatal(err)
			}
		}
		after := cl.Metrics()
		return (after.BytesReceived - before.BytesReceived) + (after.BytesSent - before.BytesSent)
	}
	gatherBytes := measure(true)
	selectBytes := measure(false)
	if gatherBytes < 2*selectBytes {
		t.Fatalf("gather-all traffic %d not clearly above NEWGREEDI selection traffic %d", gatherBytes, selectBytes)
	}
	t.Logf("gather-all moved %d bytes; a full NEWGREEDI selection moved %d (%.1fx saving)",
		gatherBytes, selectBytes, float64(gatherBytes)/float64(selectBytes))
}
