package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConn wraps a Conn with scriptable fault injection for chaos
// testing the recovery layer: it can kill the connection permanently at
// a chosen call (simulating a worker process death mid-run), fail a
// prefix of calls transiently (a network blip), drop a single reply
// after the worker executed the request (a connection cut between
// request and response), and add per-call latency. Like ShapedConn it
// composes with any transport; unlike ShapedConn its purpose is to make
// calls fail, so it lives next to the recovery layer it exercises.
//
// All faults are transport-level errors — exactly what the wrapped
// transports produce on a real failure — so the cluster's failover path
// cannot tell an injected fault from a genuine one.
type FaultConn struct {
	inner Conn

	mu     sync.Mutex
	calls  int64
	killed bool

	killAt    int64         // the killAt'th call fails and the conn stays dead (0 = never)
	failFirst int64         // calls 1..failFirst fail transiently, the conn survives
	dropAt    int64         // the dropAt'th call executes but its reply is dropped (0 = never)
	delay     time.Duration // added before every call reaches the worker

	faults atomic.Int64
}

// NewFaultConn wraps inner with no faults scripted; schedule them with
// KillAtCall, FailFirst, DropReplyAt and SetDelay before use.
func NewFaultConn(inner Conn) *FaultConn {
	return &FaultConn{inner: inner}
}

// KillAtCall schedules the n'th Call (1-based) to fail permanently: the
// wrapped conn is closed and every later Call fails too, as if the
// worker process died mid-call.
func (f *FaultConn) KillAtCall(n int64) *FaultConn {
	f.mu.Lock()
	f.killAt = n
	f.mu.Unlock()
	return f
}

// FailFirst makes the first n Calls fail with a transient transport
// error without reaching the worker; the conn works normally afterwards.
func (f *FaultConn) FailFirst(n int64) *FaultConn {
	f.mu.Lock()
	f.failFirst = n
	f.mu.Unlock()
	return f
}

// DropReplyAt lets the n'th Call (1-based) reach the worker and execute,
// then drops the reply — the ambiguous half-executed case a connection
// cut produces. Recovery must discard the worker rather than guess.
func (f *FaultConn) DropReplyAt(n int64) *FaultConn {
	f.mu.Lock()
	f.dropAt = n
	f.mu.Unlock()
	return f
}

// SetDelay adds d of latency before each call reaches the worker.
func (f *FaultConn) SetDelay(d time.Duration) *FaultConn {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
	return f
}

// Faults returns how many injected faults have fired.
func (f *FaultConn) Faults() int64 { return f.faults.Load() }

// Calls returns how many Calls were attempted.
func (f *FaultConn) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Call implements Conn, firing scripted faults by call index.
func (f *FaultConn) Call(req []byte) ([]byte, error) {
	f.mu.Lock()
	if f.killed {
		f.mu.Unlock()
		return nil, fmt.Errorf("fault: connection killed")
	}
	f.calls++
	call := f.calls
	if f.killAt > 0 && call >= f.killAt {
		f.killed = true
		_ = f.inner.Close()
		f.mu.Unlock()
		f.faults.Add(1)
		return nil, fmt.Errorf("fault: connection killed at call %d", call)
	}
	delay, failFirst, dropAt := f.delay, f.failFirst, f.dropAt
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if call <= failFirst {
		f.faults.Add(1)
		return nil, fmt.Errorf("fault: transient failure on call %d", call)
	}
	resp, err := f.inner.Call(req)
	if err == nil && dropAt > 0 && call == dropAt {
		f.faults.Add(1)
		return nil, fmt.Errorf("fault: reply dropped on call %d", call)
	}
	return resp, err
}

// Bytes implements Conn.
func (f *FaultConn) Bytes() (int64, int64) { return f.inner.Bytes() }

// Close implements Conn.
func (f *FaultConn) Close() error {
	f.mu.Lock()
	f.killed = true
	f.mu.Unlock()
	return f.inner.Close()
}
