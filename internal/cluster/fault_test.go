package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
)

// TestLocalConnCallCloseRace is the ISSUE 5 regression test for the
// localConn "send on closed channel" panic: Close could close reqCh
// between Call's closed-flag check and its send. Run under -race; the
// historic code panics within a few hundred iterations.
func TestLocalConnCallCloseRace(t *testing.T) {
	g := testGraph(t)
	for iter := 0; iter < 200; iter++ {
		w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		c := NewLocalConn(w)
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 5; j++ {
				if _, err := c.Call(encodeSimpleReq(msgStats)); err != nil {
					if !errors.Is(err, ErrConnClosed) {
						panic(fmt.Sprintf("unexpected call error: %v", err))
					}
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			_ = c.Close()
		}()
		close(start)
		wg.Wait()
		_ = c.Close()
	}
}

// slowThenFastWorker serves the worker protocol but delays the reply to
// the first request of the first connection past the master's call
// deadline (then answers it anyway — the stale frame that used to
// desync the stream). Every later connection is served promptly.
func slowThenFastWorker(t *testing.T, g *graph.Graph, firstDelay time.Duration) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		firstConn := true
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			slow := firstConn
			firstConn = false
			go func(nc net.Conn, slow bool) {
				defer nc.Close()
				w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 1})
				if err != nil {
					return
				}
				first := true
				for {
					req, err := readFrame(nc, maxFrameSize)
					if err != nil {
						return
					}
					resp := w.Handle(req)
					if slow && first {
						time.Sleep(firstDelay)
						first = false
					}
					if err := writeFrame(nc, resp); err != nil {
						return
					}
				}
			}(nc, slow)
		}
	}()
	return lis
}

// TestTimedOutConnFailsFastTyped is the ISSUE 5 regression test for the
// tcpConn stream-desync bug: after a *CallTimeoutError the worker's late
// reply is still in flight, so the next Call must fail fast with the
// typed *ConnBrokenError — the historic behaviour read the stale frame
// and returned it as the answer to the wrong request.
func TestTimedOutConnFailsFastTyped(t *testing.T) {
	g := testGraph(t)
	lis := slowThenFastWorker(t, g, 400*time.Millisecond)
	conn, err := DialWorkerTimeout(lis.Addr().String(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	_, err = conn.Call(encodeGenerateReq(3))
	var te *CallTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("slow first call returned %v, want *CallTimeoutError", err)
	}
	// Give the stale reply time to land in the socket buffer; the poisoned
	// conn must not read it.
	time.Sleep(500 * time.Millisecond)
	_, err = conn.Call(encodeSimpleReq(msgStats))
	var be *ConnBrokenError
	if !errors.As(err, &be) {
		t.Fatalf("call on poisoned conn returned %v, want *ConnBrokenError", err)
	}
	if be.Addr != lis.Addr().String() {
		t.Fatalf("broken-conn error names %q, want %q", be.Addr, lis.Addr().String())
	}
}

// TestRetryConnRedialsPastTimeout: wrapped in a RetryConn with a resync
// hook, the same slow-then-responsive worker is recovered transparently —
// the timed-out call is re-issued on a fresh dial and answers correctly.
func TestRetryConnRedialsPastTimeout(t *testing.T) {
	g := testGraph(t)
	lis := slowThenFastWorker(t, g, 400*time.Millisecond)
	addr := lis.Addr().String()
	rc, err := NewRetryConn(addr, func() (Conn, error) {
		return DialWorkerTimeout(addr, 50*time.Millisecond)
	}, RetryPolicy{Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// The hook stands in for the cluster's journal replay; the fresh
	// worker needs no state here.
	rc.OnReconnect = func(Conn) error { return nil }

	resp, err := rc.Call(encodeGenerateReq(7))
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if _, stats, err := decodeStatsResp(resp); err != nil || stats.Count != 7 {
		t.Fatalf("retried call answered %+v, %v; want count 7", stats, err)
	}
	retries, redials := rc.Stats()
	if retries == 0 || redials == 0 {
		t.Fatalf("retry counters empty after recovery: retries=%d redials=%d", retries, redials)
	}
	if rc.Down() {
		t.Fatal("conn marked down after successful recovery")
	}
}

// TestRetryConnDownAfterBudget: when every redial fails, the conn must
// surface the typed *WorkerDownError and fail fast afterwards.
func TestRetryConnDownAfterBudget(t *testing.T) {
	dead := errors.New("dial refused")
	dials := 0
	rc := &RetryConn{
		addr: "w0",
		dial: func() (Conn, error) { dials++; return nil, dead },
		pol:  RetryPolicy{Retries: 2, Backoff: time.Millisecond}.normalized(),
	}
	w, err := NewWorker(WorkerConfig{Graph: testGraph(t), Model: diffusion.IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc.inner = NewLocalConn(w)
	rc.OnReconnect = func(Conn) error { return nil }
	rc.inner.Close() // first call fails, all redials fail too

	_, err = rc.Call(encodeSimpleReq(msgStats))
	var down *WorkerDownError
	if !errors.As(err, &down) {
		t.Fatalf("exhausted budget returned %v, want *WorkerDownError", err)
	}
	if down.Attempts != 3 || dials != 2 {
		t.Fatalf("attempts=%d dials=%d, want 3 and 2", down.Attempts, dials)
	}
	if !rc.Down() {
		t.Fatal("conn not marked down after exhausting the budget")
	}
	if _, err := rc.Call(encodeSimpleReq(msgStats)); !errors.As(err, &down) {
		t.Fatalf("down conn did not fail fast: %v", err)
	}
}

// faultyCluster builds a machines-worker in-process cluster whose
// victim's conn is wrapped in the returned FaultConn, with recovery
// respawning fresh workers from the same configs (replay failover).
func faultyCluster(t *testing.T, g *graph.Graph, machines, victim int, seed uint64) (*Cluster, *FaultConn) {
	t.Helper()
	cfgs := make([]WorkerConfig, machines)
	conns := make([]Conn, machines)
	var fc *FaultConn
	for i := range cfgs {
		cfgs[i] = WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(seed, i)}
		w, err := NewWorker(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = NewLocalConn(w)
		if i == victim {
			fc = NewFaultConn(conns[i])
			conns[i] = fc
		}
	}
	cl, err := New(conns, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.EnableRecovery(Recovery{
		Respawn: func(i int) (Conn, error) {
			w, err := NewWorker(cfgs[i])
			if err != nil {
				return nil, err
			}
			return NewLocalConn(w), nil
		},
		Retries: 2,
		Backoff: time.Millisecond,
		Salt:    seed,
	}); err != nil {
		t.Fatal(err)
	}
	return cl, fc
}

// driveServePath runs the serve-layer call sequence — two generate
// rounds each followed by an incremental fetch, then a greedy selection —
// and returns the seeds, coverage, fetched union and final cursors. The
// exact sequence of generate counts matters: replay-based failover must
// reproduce it call for call for the streams to match.
func driveServePath(t *testing.T, cl *Cluster) ([]uint32, int64, *rrset.Collection, []int) {
	t.Helper()
	union := rrset.NewCollection(1 << 10)
	var since []int
	var err error
	for _, add := range []int64{200, 150} {
		if _, err := cl.Generate(add); err != nil {
			t.Fatal(err)
		}
		if since, err = cl.FetchNew(since, union); err != nil {
			t.Fatal(err)
		}
	}
	res, err := coverage.RunGreedy(cl.Oracle(), 6)
	if err != nil {
		t.Fatal(err)
	}
	return res.Seeds, res.Coverage, union, since
}

// TestFailoverByteIdentical is the ISSUE 5 acceptance test: a worker
// killed mid-run and failed over by replay must leave the run's output —
// seed set, coverage, fetched RR sets, fetch cursors — byte-identical to
// the fault-free run at the same seed, wherever the kill lands.
func TestFailoverByteIdentical(t *testing.T) {
	g := testGraph(t)
	const machines, victim = 3, 1
	baseCl := localCluster(t, g, machines, diffusion.IC, 99)
	wantSeeds, wantCov, wantUnion, wantSince := driveServePath(t, baseCl)

	// Kill the victim's conn at different protocol moments: first
	// generate, degree sync, fetch, second round, begin-select, and
	// mid-greedy (two seeds in).
	for _, killAt := range []int64{1, 2, 3, 4, 5, 7, 9} {
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			cl, fc := faultyCluster(t, g, machines, victim, 99)
			fc.KillAtCall(killAt)
			seeds, cov, union, since := driveServePath(t, cl)
			if fc.Faults() == 0 {
				t.Fatalf("fault at call %d never fired (only %d calls made)", killAt, fc.Calls())
			}
			if cov != wantCov {
				t.Fatalf("coverage %d != fault-free %d", cov, wantCov)
			}
			for i := range wantSeeds {
				if seeds[i] != wantSeeds[i] {
					t.Fatalf("seeds diverged at %d: %v vs %v", i, seeds, wantSeeds)
				}
			}
			for i := range wantSince {
				if since[i] != wantSince[i] {
					t.Fatalf("fetch cursors diverged: %v vs %v", since, wantSince)
				}
			}
			if union.Count() != wantUnion.Count() || union.TotalSize() != wantUnion.TotalSize() {
				t.Fatalf("fetched union %d sets / %d nodes, fault-free %d / %d",
					union.Count(), union.TotalSize(), wantUnion.Count(), wantUnion.TotalSize())
			}
			for i := 0; i < union.Count(); i++ {
				a, b := union.Set(i), wantUnion.Set(i)
				if len(a) != len(b) {
					t.Fatalf("RR set %d differs in size", i)
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("RR set %d differs at element %d", i, j)
					}
				}
			}
			h := cl.Health()
			if !h[victim].Up || h[victim].Failovers == 0 {
				t.Fatalf("victim health after failover: %+v", h[victim])
			}
		})
	}
}

// TestFailoverDroppedReply: a reply lost after the worker executed the
// request is the ambiguous half-executed case; failover must discard the
// old worker wholesale and rebuild from the journal, keeping the run
// byte-identical (the un-acked call is replayed exactly once).
func TestFailoverDroppedReply(t *testing.T) {
	g := testGraph(t)
	const machines, victim = 3, 2
	baseCl := localCluster(t, g, machines, diffusion.IC, 31)
	wantSeeds, wantCov, _, _ := driveServePath(t, baseCl)

	cl, fc := faultyCluster(t, g, machines, victim, 31)
	fc.DropReplyAt(1) // generate executed, ack lost
	seeds, cov, _, _ := driveServePath(t, cl)
	if fc.Faults() == 0 {
		t.Fatal("drop-reply fault never fired")
	}
	if cov != wantCov {
		t.Fatalf("coverage %d != fault-free %d", cov, wantCov)
	}
	for i := range wantSeeds {
		if seeds[i] != wantSeeds[i] {
			t.Fatalf("seeds diverged: %v vs %v", seeds, wantSeeds)
		}
	}
}

// TestFailoverTransientBlip: a transient network failure (conn survives,
// call fails) takes the replay-failover path too and stays
// byte-identical.
func TestFailoverTransientBlip(t *testing.T) {
	g := testGraph(t)
	const machines, victim = 2, 0
	baseCl := localCluster(t, g, machines, diffusion.IC, 7)
	wantSeeds, wantCov, _, _ := driveServePath(t, baseCl)

	cl, fc := faultyCluster(t, g, machines, victim, 7)
	fc.FailFirst(1)
	seeds, cov, _, _ := driveServePath(t, cl)
	if cov != wantCov {
		t.Fatalf("coverage %d != fault-free %d", cov, wantCov)
	}
	for i := range wantSeeds {
		if seeds[i] != wantSeeds[i] {
			t.Fatalf("seeds diverged: %v vs %v", seeds, wantSeeds)
		}
	}
}

// quarantineCluster is faultyCluster with a Respawn that always fails,
// forcing tier-2 recovery: quarantine plus regeneration on survivors.
func quarantineCluster(t *testing.T, g *graph.Graph, machines, victim int, seed uint64) (*Cluster, *FaultConn) {
	t.Helper()
	conns := make([]Conn, machines)
	var fc *FaultConn
	for i := range conns {
		w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(seed, i)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = NewLocalConn(w)
		if i == victim {
			fc = NewFaultConn(conns[i])
			conns[i] = fc
		}
	}
	cl, err := New(conns, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.EnableRecovery(Recovery{
		Respawn: func(i int) (Conn, error) { return nil, errors.New("worker host gone") },
		Retries: 1,
		Backoff: time.Millisecond,
		Salt:    seed,
	}); err != nil {
		t.Fatal(err)
	}
	return cl, fc
}

// TestQuarantineRebalancePreservesSample: when no replacement exists the
// victim is quarantined and its share regenerated on the survivors under
// fresh epoch-salted streams — the pooled sample keeps its exact size
// and i.i.d. law (Corollary 1), so selection still works and an
// independent coverage recount agrees.
func TestQuarantineRebalancePreservesSample(t *testing.T) {
	g := testGraph(t)
	for _, killAt := range []int64{1, 2} { // mid-generate (in-flight loss) and mid-sync
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			cl, fc := quarantineCluster(t, g, 3, 2, 55)
			fc.KillAtCall(killAt)
			stats, err := cl.Generate(300)
			if err != nil {
				t.Fatalf("generate with quarantine: %v", err)
			}
			if stats.Count != 300 {
				t.Fatalf("sample holds %d RR sets after rebalance, want 300", stats.Count)
			}
			h := cl.Health()
			if h[2].Up {
				t.Fatal("victim still marked up after failed respawns")
			}
			if h[0].Up != true || h[1].Up != true {
				t.Fatalf("survivors marked down: %+v", h)
			}
			all, err := cl.GatherAll()
			if err != nil {
				t.Fatal(err)
			}
			if all.Count() != 300 {
				t.Fatalf("gathered %d RR sets, want 300", all.Count())
			}
			res, err := coverage.RunGreedy(cl.Oracle(), 5)
			if err != nil {
				t.Fatalf("greedy on rebalanced cluster: %v", err)
			}
			recount, err := cl.CoverageOf(res.Seeds)
			if err != nil {
				t.Fatal(err)
			}
			if recount != res.Coverage {
				t.Fatalf("distributed recount %d != greedy coverage %d", recount, res.Coverage)
			}
			if got := coverage.CoverageOf(all, res.Seeds); got != res.Coverage {
				t.Fatalf("local recount %d != greedy coverage %d", got, res.Coverage)
			}
		})
	}
}

// TestMidSelectQuarantineRestarts: a quarantine during the greedy leaves
// the in-flight degree vector stale; Select must surface the typed
// *RebalancedError, and a restarted greedy over the repaired sample must
// complete with a self-consistent result.
func TestMidSelectQuarantineRestarts(t *testing.T) {
	g := testGraph(t)
	cl, fc := quarantineCluster(t, g, 3, 1, 21)
	if _, err := cl.Generate(300); err != nil {
		t.Fatal(err)
	}
	// Worker call sequence so far: generate(1), degree sync(2). Kill two
	// seeds into the greedy: beginSelect(3), select(4), select(5).
	fc.KillAtCall(5)
	_, err := coverage.RunGreedy(cl.Oracle(), 6)
	var reb *RebalancedError
	if !errors.As(err, &reb) {
		t.Fatalf("mid-select quarantine returned %v, want *RebalancedError", err)
	}
	if len(reb.Quarantined) != 1 || reb.Quarantined[0] != 1 {
		t.Fatalf("quarantined %v, want [1]", reb.Quarantined)
	}
	if !IsWorkerLoss(err) {
		t.Fatal("RebalancedError not classified as worker loss")
	}
	res, err := coverage.RunGreedy(cl.Oracle(), 6)
	if err != nil {
		t.Fatalf("restarted greedy: %v", err)
	}
	recount, err := cl.CoverageOf(res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if recount != res.Coverage {
		t.Fatalf("recount %d != coverage %d", recount, res.Coverage)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 300 {
		t.Fatalf("sample size %d after mid-select rebalance, want 300", stats.Count)
	}
}

// TestAllWorkersLost: losing every worker must surface ErrNoLiveWorkers,
// and Reset must revive quarantined workers once respawn works again.
func TestAllWorkersLost(t *testing.T) {
	g := testGraph(t)
	w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFaultConn(NewLocalConn(w))
	cl, err := New([]Conn{fc}, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	respawnOK := false
	if err := cl.EnableRecovery(Recovery{
		Respawn: func(i int) (Conn, error) {
			if !respawnOK {
				return nil, errors.New("still down")
			}
			w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 3})
			if err != nil {
				return nil, err
			}
			return NewLocalConn(w), nil
		},
		Retries: 1,
		Backoff: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	fc.KillAtCall(1)
	_, err = cl.Generate(50)
	if !errors.Is(err, ErrNoLiveWorkers) {
		t.Fatalf("losing the only worker returned %v, want ErrNoLiveWorkers", err)
	}
	if !IsWorkerLoss(err) {
		t.Fatal("ErrNoLiveWorkers not classified as worker loss")
	}
	// Operator "restarts" the worker; Reset brings it back.
	respawnOK = true
	if err := cl.Reset(); err != nil {
		t.Fatalf("reset after recovery: %v", err)
	}
	if h := cl.Health(); !h[0].Up {
		t.Fatalf("worker still down after reset: %+v", h[0])
	}
	stats, err := cl.Generate(50)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 50 {
		t.Fatalf("post-revival sample %d, want 50", stats.Count)
	}
}
