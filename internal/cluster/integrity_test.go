package cluster

import (
	"errors"
	"testing"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/rrset"
)

// flipConn wraps a Conn and, once armed, applies a targeted mutation to
// responses of the targeted request kinds — a single flipped payload bit,
// a clipped tail, or a forged declared length — modeling silent wire
// corruption rather than the gross mangling of corruptConn.
type flipConn struct {
	inner Conn
	mode  string        // "flip" | "clip" | "len"
	kinds map[byte]bool // request kinds whose responses get mutated
	armed bool
}

func (c *flipConn) Call(req []byte) ([]byte, error) {
	resp, err := c.inner.Call(req)
	if err != nil || !c.armed || len(resp) <= framePayloadOffset {
		return resp, err
	}
	if len(req) == 0 || !c.kinds[req[0]] {
		return resp, nil // only the targeted frames carry the trailer under test
	}
	out := make([]byte, len(resp))
	copy(out, resp)
	switch c.mode {
	case "flip":
		out[len(out)-1] ^= 0x10 // one bit inside the payload
	case "clip":
		out = out[:len(out)-1] // drop the payload tail
	case "len":
		out[9]++ // declared length no longer matches the payload
	}
	return out, nil
}

func (c *flipConn) Bytes() (int64, int64) { return c.inner.Bytes() }
func (c *flipConn) Close() error          { return c.inner.Close() }

// flipCluster builds a 3-worker cluster whose worker 1 sits behind a
// flipConn in the given mode, targeting the given request kinds.
func flipCluster(t *testing.T, mode string, kinds ...byte) (*Cluster, *flipConn) {
	t.Helper()
	g := testGraph(t)
	conns := make([]Conn, 3)
	var bad *flipConn
	for i := range conns {
		w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(1, i)})
		if err != nil {
			t.Fatal(err)
		}
		var c Conn = NewLocalConn(w)
		if i == 1 {
			bad = &flipConn{inner: c, mode: mode, kinds: make(map[byte]bool)}
			for _, k := range kinds {
				bad.kinds[k] = true
			}
			c = bad
		}
		conns[i] = c
	}
	cl, err := New(conns, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, bad
}

// TestFetchIntegrityTrailer: every silent mutation of a fetch frame must
// surface as a typed *FrameIntegrityError naming the bad worker, on both
// the GatherAll and FetchNew paths. Frames through a healthy conn must
// keep verifying.
func TestFetchIntegrityTrailer(t *testing.T) {
	for _, mode := range []string{"flip", "clip", "len"} {
		t.Run(mode, func(t *testing.T) {
			cl, bad := flipCluster(t, mode, msgFetchAll, msgFetchSince)
			if _, err := cl.Generate(40); err != nil {
				t.Fatal(err)
			}
			// Healthy fetches verify.
			since, err := cl.FetchNew(nil, rrset.NewCollection(16))
			if err != nil {
				t.Fatalf("healthy FetchNew: %v", err)
			}
			if _, err := cl.GatherAll(); err != nil {
				t.Fatalf("healthy GatherAll: %v", err)
			}

			bad.armed = true
			var fe *FrameIntegrityError
			if _, err := cl.GatherAll(); !errors.As(err, &fe) {
				t.Fatalf("GatherAll with %s corruption: got %v, want FrameIntegrityError", mode, err)
			}
			if fe.Worker != 1 {
				t.Fatalf("error blames worker %d, corrupted worker 1", fe.Worker)
			}
			// Generate more so the incremental fetch has fresh sets to carry.
			if _, err := cl.Generate(40); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.FetchNew(since, rrset.NewCollection(16)); !errors.As(err, &fe) {
				t.Fatalf("FetchNew with %s corruption: got %v, want FrameIntegrityError", mode, err)
			}

			// And the cluster recovers once the link heals.
			bad.armed = false
			if _, err := cl.FetchNew(since, rrset.NewCollection(16)); err != nil {
				t.Fatalf("healed FetchNew: %v", err)
			}
		})
	}
}

// TestDeltaIntegrityTrailer: the adaptive delta frames (msgSelect and
// msgDegreeDelta replies) carry the same declared-length + CRC trailer as
// fetch frames, so any silent mutation must fail selection or degree sync
// with a typed *FrameIntegrityError naming the bad worker, and the
// cluster must recover once the link heals.
func TestDeltaIntegrityTrailer(t *testing.T) {
	for _, mode := range []string{"flip", "clip", "len"} {
		t.Run(mode, func(t *testing.T) {
			cl, bad := flipCluster(t, mode, msgSelect, msgDegreeDelta)
			if _, err := cl.Generate(60); err != nil {
				t.Fatal(err)
			}
			// Healthy selection works end to end.
			if _, err := coverage.RunGreedy(cl.Oracle(), 2); err != nil {
				t.Fatalf("healthy selection: %v", err)
			}

			bad.armed = true
			var fe *FrameIntegrityError
			if _, err := coverage.RunGreedy(cl.Oracle(), 2); !errors.As(err, &fe) {
				t.Fatalf("selection with %s corruption: got %v, want FrameIntegrityError", mode, err)
			}
			if fe.Worker != 1 {
				t.Fatalf("error blames worker %d, corrupted worker 1", fe.Worker)
			}
			// The degree-sync path decodes the same frame form.
			if _, err := cl.Generate(20); !errors.As(err, &fe) {
				t.Fatalf("degree sync with %s corruption: got %v, want FrameIntegrityError", mode, err)
			}

			bad.armed = false
			if _, err := coverage.RunGreedy(cl.Oracle(), 2); err != nil {
				t.Fatalf("healed selection: %v", err)
			}
		})
	}
}
