package cluster

import (
	"sync"
	"testing"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/metrics"
)

// TestCommAttributionOverlap is the ISSUE 10 headline regression test:
// a concurrent 2-worker round whose handlers genuinely overlap
// (wall < sum of handler times) must still attribute wall − max to
// communication. The historic wall − sum attribution clamps to zero
// here — this test fails on it.
func TestCommAttributionOverlap(t *testing.T) {
	reg := metrics.NewRegistry()
	met := newClusterMetrics(reg)

	// Two workers running in parallel: the round took 100ms of wall
	// clock, the slower worker computed for 90ms, so 10ms was spent on
	// transport — even though the handlers' summed time (170ms) exceeds
	// the wall clock.
	wall := 100 * time.Millisecond
	handlers := []time.Duration{80 * time.Millisecond, 90 * time.Millisecond}
	met.add("gen", wall, handlers, false)

	if got, want := met.comm.Duration(), 10*time.Millisecond; got != want {
		t.Errorf("concurrent overlapping round: comm = %v, want %v (wall - max)", got, want)
	}
	if got, want := met.genCritical.Duration(), 90*time.Millisecond; got != want {
		t.Errorf("genCritical = %v, want %v", got, want)
	}
	if got, want := met.genTotal.Duration(), 170*time.Millisecond; got != want {
		t.Errorf("genTotal = %v, want %v", got, want)
	}
}

// TestCommAttributionModes pins the mode split: concurrent rounds
// charge wall − max (the critical-path model CriticalPath() adds up),
// sequential rounds charge wall − sum (workers ran back to back, so
// their summed compute really elapsed on the wall clock).
func TestCommAttributionModes(t *testing.T) {
	handlers := []time.Duration{80 * time.Millisecond, 90 * time.Millisecond}

	// Concurrent, no overlap pressure: wall 200ms, max 90ms → comm 110ms.
	reg := metrics.NewRegistry()
	met := newClusterMetrics(reg)
	met.add("sel", 200*time.Millisecond, handlers, false)
	if got, want := met.comm.Duration(), 110*time.Millisecond; got != want {
		t.Errorf("concurrent round: comm = %v, want %v", got, want)
	}

	// Sequential: wall 180ms, sum 170ms → comm 10ms (wall − max would
	// wrongly charge 90ms of real worker compute to the network).
	reg = metrics.NewRegistry()
	met = newClusterMetrics(reg)
	met.add("sel", 180*time.Millisecond, handlers, true)
	if got, want := met.comm.Duration(), 10*time.Millisecond; got != want {
		t.Errorf("sequential round: comm = %v, want %v", got, want)
	}

	// Clamp: timer skew can make wall dip below the busy time; comm
	// must clamp at zero, not go negative.
	reg = metrics.NewRegistry()
	met = newClusterMetrics(reg)
	met.add("sel", 85*time.Millisecond, handlers, false)
	if got := met.comm.Duration(); got != 0 {
		t.Errorf("wall < max round: comm = %v, want 0", got)
	}
}

// TestCommAttributionThroughAccount drives the same overlapping round
// through the cluster-level account path on a real 2-worker cluster in
// concurrent-broadcast mode and reads the result back through the
// Metrics() snapshot view.
func TestCommAttributionThroughAccount(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 2, diffusion.IC, 99)
	cl.SetSequentialBroadcast(false)
	base := cl.Metrics().Comm
	cl.account("gen", 100*time.Millisecond, []time.Duration{80 * time.Millisecond, 90 * time.Millisecond})
	if got, want := cl.Metrics().Comm-base, 10*time.Millisecond; got != want {
		t.Errorf("account on overlapping round added comm %v, want %v", got, want)
	}
}

// TestMetricsSnapshotRace hammers Metrics(), MetricsSnapshot() and
// Health() from reader goroutines while the master goroutine runs
// generate/fetch/select rounds. Run under -race: the historic
// Cluster.Metrics() read conns, batchLast and the retired counters with
// no synchronization against the failover path and non-atomic metric
// fields against in-flight rounds.
func TestMetricsSnapshotRace(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 3, diffusion.IC, 77)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := cl.Metrics()
				if m.Rounds < 0 || m.BytesSent < 0 {
					t.Error("implausible snapshot")
					return
				}
				_ = cl.MetricsSnapshot()
				_ = cl.Health()
			}
		}()
	}
	if err := driveWorkRounds(cl); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	m := cl.Metrics()
	if m.Rounds == 0 || m.GenCalls == 0 {
		t.Fatalf("no rounds recorded: %+v", m)
	}
}

func driveWorkRounds(cl *Cluster) error {
	for i := 0; i < 4; i++ {
		if _, err := cl.Generate(200); err != nil {
			return err
		}
		if _, err := cl.Stats(); err != nil {
			return err
		}
	}
	return nil
}

// TestFailoverBatchStatsNoDoubleCount asserts the retired-worker merge
// does not double count: a run with a mid-run kill recovered by replay
// failover must report exactly the frontier-batch counters of the
// fault-free run at the same seed (the replacement replays the same
// deterministic streams, and its next report overwrites — not adds to —
// the victim's batchLast slot).
func TestFailoverBatchStatsNoDoubleCount(t *testing.T) {
	g := testGraph(t)
	const machines, victim, seed = 3, 1, 55

	clean := localCluster(t, g, machines, diffusion.IC, seed)
	if err := driveWorkRounds(clean); err != nil {
		t.Fatal(err)
	}
	want := clean.Metrics().Batch

	faulted, fc := faultyCluster(t, g, machines, victim, seed)
	fc.KillAtCall(3) // mid-run, after the victim has reported batch counters
	if err := driveWorkRounds(faulted); err != nil {
		t.Fatal(err)
	}
	got := faulted.Metrics().Batch
	if got != want {
		t.Errorf("batch counters after replay failover = %+v, want fault-free %+v", got, want)
	}
}

// TestQuarantineBatchStatsPreserved asserts a quarantined worker's
// already-reported batch counters survive into the cumulative totals
// (folded once into retiredBatch, slot zeroed — not dropped and not
// counted twice): the faulted run's totals must be at least the
// fault-free totals (rebalance regenerates the lost share on survivors,
// adding waves) and strictly less than double them.
func TestQuarantineBatchStatsPreserved(t *testing.T) {
	g := testGraph(t)
	const machines, victim, seed = 3, 2, 55

	clean := localCluster(t, g, machines, diffusion.IC, seed)
	if _, err := clean.Generate(300); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Stats(); err != nil {
		t.Fatal(err)
	}
	want := clean.Metrics().Batch

	faulted, fc := quarantineCluster(t, g, machines, victim, seed)
	fc.KillAtCall(3) // after the victim reported its generate-round counters
	if _, err := faulted.Generate(300); err != nil {
		t.Fatal(err)
	}
	if _, err := faulted.Stats(); err != nil {
		t.Fatal(err)
	}
	got := faulted.Metrics().Batch
	if got.Waves < want.Waves {
		t.Errorf("quarantine dropped batch counters: waves %d < fault-free %d", got.Waves, want.Waves)
	}
	if got.Waves >= 2*want.Waves {
		t.Errorf("quarantine double-counted batch counters: waves %d vs fault-free %d", got.Waves, want.Waves)
	}
}
