// Package cluster is the distributed substrate that stands in for the
// paper's MPI deployment: a master–worker message-passing layer with a
// compact binary wire protocol, an in-process transport (simulating the
// multi-core server of Fig. 6/7/9/10) and a TCP transport (simulating the
// machine cluster of Fig. 5/8), plus per-phase time and byte accounting.
//
// Both transports move fully encoded frames, so the measured traffic in
// bytes is the real serialized volume either way — the quantity the
// paper's communication-cost analysis (§III-D) bounds by O(kn) per worker
// per NEWGREEDI call.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"dimm/internal/checksum"
	"dimm/internal/rrset"
)

// Request and response type tags.
const (
	msgGenerate    = byte(1)  // generate RR sets: req count int64 → resp count, totalSize, edges int64
	msgDegreeDelta = byte(2)  // coverage of RR sets since last sync → resp delta pairs
	msgBeginSelect = byte(3)  // relabel all RR sets uncovered (Algorithm 1 line 2)
	msgSelect      = byte(4)  // map stage for a new seed: req node → resp delta pairs
	msgStats       = byte(5)  // collection statistics
	msgReset       = byte(6)  // drop all RR sets (new algorithm run)
	msgIngest      = byte(7)  // load explicit element lists (max-coverage workloads)
	msgFetchAll    = byte(8)  // ship the worker's entire RR collection to the master
	msgEstimate    = byte(9)  // forward Monte-Carlo influence estimation of a seed set
	msgCoverage    = byte(10) // count RR sets covered by a fixed seed set
	msgFetchSince  = byte(11) // ship only the RR sets generated since a given id
	msgSetReported = byte(12) // set the degree-delta cursor (failover resync)
	msgGenerateAux = byte(13) // generate RR sets from an explicit stream seed (rebalance)
	msgUpdate      = byte(14) // apply a graph-update batch and repair the RR shard in place
	msgError       = byte(0x7f)
)

// DeltaPair mirrors coverage.Delta on the wire: a node id and how much its
// marginal coverage decreases.
type DeltaPair struct {
	Node uint32
	Dec  int32
}

// GenerateStats is the reply payload of msgGenerate and msgStats.
type GenerateStats struct {
	Count         int64 // RR sets now held by the worker
	TotalSize     int64 // summed cardinality
	EdgesExamined int64 // cumulative sampler edge probes (Σ w(R))
	// Batch carries the worker's cumulative frontier-batching counters
	// (all zero on the scalar kernel). Observability only: the sampled
	// bytes are batch-invariant, so these never feed determinism checks.
	Batch rrset.BatchStats
}

// --- primitive append/consume helpers -------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func consumeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("cluster: truncated frame (want 4 bytes, have %d)", len(b))
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func consumeI64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("cluster: truncated frame (want 8 bytes, have %d)", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// --- request encoding ------------------------------------------------------

// encodeGenerateReq builds a generation request for count RR sets.
func encodeGenerateReq(count int64) []byte {
	return appendI64([]byte{msgGenerate}, count)
}

func encodeSimpleReq(tag byte) []byte { return []byte{tag} }

func encodeSelectReq(node uint32) []byte {
	return appendU32([]byte{msgSelect}, node)
}

// encodeIngestReq ships explicit element lists (each a set of item ids) to
// a worker. Layout: itemCount u32, numLists u32, then per list: len u32,
// members u32*. itemCount fixes the selectable-item space so every worker
// agrees on it even if its shard misses the highest item ids.
func encodeIngestReq(itemCount int, lists [][]uint32) []byte {
	size := 9
	for _, l := range lists {
		size += 4 + 4*len(l)
	}
	b := make([]byte, 0, size)
	b = append(b, msgIngest)
	b = appendU32(b, uint32(itemCount))
	b = appendU32(b, uint32(len(lists)))
	for _, l := range lists {
		b = appendU32(b, uint32(len(l)))
		for _, v := range l {
			b = appendU32(b, v)
		}
	}
	return b
}

// encodeEstimateReq asks a worker to run `rounds` forward Monte-Carlo
// simulations of the given seed set.
func encodeEstimateReq(seeds []uint32, rounds int64) []byte {
	b := make([]byte, 0, 1+8+4+4*len(seeds))
	b = append(b, msgEstimate)
	b = appendI64(b, rounds)
	b = appendU32(b, uint32(len(seeds)))
	for _, s := range seeds {
		b = appendU32(b, s)
	}
	return b
}

func decodeEstimateReq(payload []byte) (seeds []uint32, rounds int64, err error) {
	rounds, rest, err := consumeI64(payload)
	if err != nil {
		return nil, 0, err
	}
	count, rest, err := consumeU32(rest)
	if err != nil {
		return nil, 0, err
	}
	if int(count)*4 != len(rest) {
		return nil, 0, fmt.Errorf("cluster: estimate request has %d bytes for %d seeds", len(rest), count)
	}
	seeds = make([]uint32, count)
	for i := range seeds {
		seeds[i] = binary.LittleEndian.Uint32(rest[i*4:])
	}
	return seeds, rounds, nil
}

// encodeCoverageReq asks a worker how many of its RR sets the given seed
// set covers (used by frameworks that evaluate fixed solutions on a
// held-out collection, e.g. OPIM-C's lower-bound estimate).
func encodeCoverageReq(seeds []uint32) []byte {
	b := make([]byte, 0, 1+4+4*len(seeds))
	b = append(b, msgCoverage)
	b = appendU32(b, uint32(len(seeds)))
	for _, s := range seeds {
		b = appendU32(b, s)
	}
	return b
}

func decodeCoverageReq(payload []byte) ([]uint32, error) {
	count, rest, err := consumeU32(payload)
	if err != nil {
		return nil, err
	}
	if int(count)*4 != len(rest) {
		return nil, fmt.Errorf("cluster: coverage request has %d bytes for %d seeds", len(rest), count)
	}
	seeds := make([]uint32, count)
	for i := range seeds {
		seeds[i] = binary.LittleEndian.Uint32(rest[i*4:])
	}
	return seeds, nil
}

// encodeFetchSinceReq asks a worker for the wire encoding of the RR sets
// it generated since id `from` (the incremental gather of a resident
// query service; msgFetchAll remains the from-zero special case).
func encodeFetchSinceReq(from int64) []byte {
	return appendI64([]byte{msgFetchSince}, from)
}

// encodeSetReportedReq positions a worker's degree-delta cursor: the next
// msgDegreeDelta reports coverage of RR sets [count, Count()) only. The
// failover resync uses it after replaying a replacement worker's
// generation history, so the rebuilt worker re-reports exactly what the
// master's baseline vector is missing (count = 0 re-reports everything,
// the baseline-rebuild path after a quarantine).
func encodeSetReportedReq(count int64) []byte {
	return appendI64([]byte{msgSetReported}, count)
}

// encodeGenerateAuxReq asks a worker to generate count RR sets from an
// explicitly seeded auxiliary sampler stream instead of its own. This is
// the rebalance primitive: when a worker is quarantined, its lost quota
// is regenerated on survivors under fresh epoch-salted seeds — i.i.d.
// with every other stream by Corollary 1, so the sample stays unbiased.
func encodeGenerateAuxReq(streamSeed uint64, count int64) []byte {
	b := make([]byte, 0, 1+8+8)
	b = append(b, msgGenerateAux)
	b = appendI64(b, int64(streamSeed))
	return appendI64(b, count)
}

func decodeGenerateAuxReq(payload []byte) (streamSeed uint64, count int64, err error) {
	s, rest, err := consumeI64(payload)
	if err != nil {
		return 0, 0, err
	}
	count, _, err = consumeI64(rest)
	if err != nil {
		return 0, 0, err
	}
	return uint64(s), count, nil
}

// --- response encoding -----------------------------------------------------

// Responses open with: tag byte, handlerNanos int64. handlerNanos is the
// worker-side busy time for the request, which the master uses to separate
// computation from communication in the metrics (DESIGN.md substitution).

func encodeAckResp(handlerNanos int64) []byte {
	return appendI64([]byte{0}, handlerNanos)
}

func encodeStatsResp(tag byte, handlerNanos int64, s GenerateStats) []byte {
	b := make([]byte, 0, 1+8+9*8)
	b = append(b, tag)
	b = appendI64(b, handlerNanos)
	b = appendI64(b, s.Count)
	b = appendI64(b, s.TotalSize)
	b = appendI64(b, s.EdgesExamined)
	b = appendI64(b, s.Batch.Cohorts)
	b = appendI64(b, s.Batch.Waves)
	b = appendI64(b, s.Batch.FrontierItems)
	b = appendI64(b, s.Batch.LaneWaves)
	b = appendI64(b, s.Batch.SkippedEdges)
	return b
}

// Delta replies (msgDegreeDelta, msgSelect) travel behind the same
// declared-length + CRC32C trailer as fetch frames, in whichever of two
// payload forms is smaller for the reply at hand:
//
//   - sparse (form byte 1): uvarint pair count, then per pair the node id
//     as a zig-zag varint gap from the previous pair's node id and the
//     decrement as a uvarint. Node-sorted pairs make every gap small and
//     positive (1-2 bytes against the fixed encoding's 8), but any pair
//     order round-trips exactly.
//   - dense (form byte 2): u32 item count n, then n little-endian int32
//     decrements indexed by node id. Early seeds touch a large fraction
//     of all n nodes, where per-pair ids cost more than the flat vector;
//     4n bytes is the break-even the encoder switches at.
//
// The encoder only considers the dense form when numItems > 0 and the
// pairs hold strictly ascending node ids with positive decrements — the
// invariant of the worker's drain paths (which sort); numItems = 0
// forces the sparse form for arbitrary pair lists.
const (
	deltaFormSparse = byte(1)
	deltaFormDense  = byte(2)
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeDeltaPayload picks the smaller of the sparse and dense forms.
func encodeDeltaPayload(pairs []DeltaPair, numItems int) []byte {
	sparse := make([]byte, 0, 1+binary.MaxVarintLen32+6*len(pairs))
	sparse = append(sparse, deltaFormSparse)
	sparse = binary.AppendUvarint(sparse, uint64(len(pairs)))
	prev := int64(0)
	for _, p := range pairs {
		sparse = binary.AppendUvarint(sparse, zigzag(int64(p.Node)-prev))
		prev = int64(p.Node)
		sparse = binary.AppendUvarint(sparse, uint64(uint32(p.Dec)))
	}
	denseSize := 1 + 4 + 4*numItems
	if numItems <= 0 || len(sparse) <= denseSize {
		return sparse
	}
	for i, p := range pairs {
		if int(p.Node) >= numItems || p.Dec <= 0 || (i > 0 && pairs[i-1].Node >= p.Node) {
			return sparse // drain invariant violated; stay lossless
		}
	}
	dense := make([]byte, denseSize)
	dense[0] = deltaFormDense
	binary.LittleEndian.PutUint32(dense[1:5], uint32(numItems))
	for _, p := range pairs {
		binary.LittleEndian.PutUint32(dense[5+4*int(p.Node):], uint32(p.Dec))
	}
	return dense
}

// encodeDeltasResp frames a delta payload: tag, handler nanos, then the
// integrity trailer (declared length + CRC32C) and the adaptive payload.
func encodeDeltasResp(handlerNanos int64, pairs []DeltaPair, numItems int) []byte {
	payload := encodeDeltaPayload(pairs, numItems)
	b := make([]byte, 0, framePayloadOffset+len(payload))
	b = append(b, 0)
	b = appendI64(b, handlerNanos)
	b = appendU32(b, uint32(len(payload)))
	b = appendU32(b, checksum.Sum(payload))
	return append(b, payload...)
}

func encodeErrorResp(err error) []byte {
	msg := err.Error()
	b := make([]byte, 0, 1+8+len(msg))
	b = append(b, msgError)
	b = appendI64(b, 0)
	return append(b, msg...)
}

// --- response decoding -----------------------------------------------------

// decodeRespHeader strips the tag and handler-nanos prefix, surfacing
// worker-side errors as Go errors.
func decodeRespHeader(b []byte) (handlerNanos int64, rest []byte, err error) {
	if len(b) < 9 {
		return 0, nil, fmt.Errorf("cluster: short response (%d bytes)", len(b))
	}
	tag := b[0]
	nanos, rest, err := consumeI64(b[1:])
	if err != nil {
		return 0, nil, err
	}
	if tag == msgError {
		return 0, nil, fmt.Errorf("cluster: worker error: %s", rest)
	}
	return nanos, rest, nil
}

func decodeStatsResp(b []byte) (int64, GenerateStats, error) {
	nanos, rest, err := decodeRespHeader(b)
	if err != nil {
		return 0, GenerateStats{}, err
	}
	var s GenerateStats
	if s.Count, rest, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	if s.TotalSize, rest, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	if s.EdgesExamined, rest, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	if s.Batch.Cohorts, rest, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	if s.Batch.Waves, rest, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	if s.Batch.FrontierItems, rest, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	if s.Batch.LaneWaves, rest, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	if s.Batch.SkippedEdges, _, err = consumeI64(rest); err != nil {
		return 0, s, err
	}
	return nanos, s, nil
}

// decodeDeltasResp verifies a delta reply's integrity trailer and decodes
// either payload form into buf. worker names the sender in the typed
// *FrameIntegrityError a corrupted trailer raises (-1 if unknown).
func decodeDeltasResp(b []byte, buf []DeltaPair, worker int) (int64, []DeltaPair, error) {
	nanos, rest, err := decodeRespHeader(b)
	if err != nil {
		return 0, nil, err
	}
	payload, err := verifyFramePayload(worker, rest)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) < 1 {
		return 0, nil, fmt.Errorf("cluster: delta payload missing its form byte")
	}
	form, body := payload[0], payload[1:]
	buf = buf[:0]
	switch form {
	case deltaFormSparse:
		count, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, nil, fmt.Errorf("cluster: bad sparse delta count")
		}
		body = body[n:]
		if count > uint64(len(body)) { // every pair takes >= 2 bytes
			return 0, nil, fmt.Errorf("cluster: sparse delta count %d exceeds the %d payload bytes", count, len(body))
		}
		prev := int64(0)
		for i := uint64(0); i < count; i++ {
			gap, n := binary.Uvarint(body)
			if n <= 0 {
				return 0, nil, fmt.Errorf("cluster: truncated sparse delta node gap")
			}
			body = body[n:]
			node := prev + unzigzag(gap)
			if node < 0 || node > math.MaxUint32 {
				return 0, nil, fmt.Errorf("cluster: sparse delta node %d out of range", node)
			}
			prev = node
			dec, n := binary.Uvarint(body)
			if n <= 0 {
				return 0, nil, fmt.Errorf("cluster: truncated sparse delta decrement")
			}
			body = body[n:]
			if dec > math.MaxUint32 {
				return 0, nil, fmt.Errorf("cluster: sparse delta decrement %d out of range", dec)
			}
			buf = append(buf, DeltaPair{Node: uint32(node), Dec: int32(uint32(dec))})
		}
		if len(body) != 0 {
			return 0, nil, fmt.Errorf("cluster: %d trailing bytes after the sparse deltas", len(body))
		}
	case deltaFormDense:
		if len(body) < 4 {
			return 0, nil, fmt.Errorf("cluster: truncated dense delta header")
		}
		n := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if int64(n)*4 != int64(len(body)) {
			return 0, nil, fmt.Errorf("cluster: dense delta payload %d bytes for %d items", len(body), n)
		}
		for i := uint32(0); i < n; i++ {
			if dec := int32(binary.LittleEndian.Uint32(body[i*4:])); dec != 0 {
				buf = append(buf, DeltaPair{Node: i, Dec: dec})
			}
		}
	default:
		return 0, nil, fmt.Errorf("cluster: unknown delta payload form %#x", form)
	}
	return nanos, buf, nil
}

func decodeAckResp(b []byte) (int64, error) {
	nanos, _, err := decodeRespHeader(b)
	return nanos, err
}
