package cluster

import (
	"bytes"
	"testing"

	"dimm/internal/checksum"
	"dimm/internal/xrand"
)

// sortedPairs builds numItems ascending drain-invariant pairs with the
// given decrement (every node touched).
func sortedPairs(numItems int, dec int32) []DeltaPair {
	pairs := make([]DeltaPair, numItems)
	for i := range pairs {
		pairs[i] = DeltaPair{Node: uint32(i), Dec: dec}
	}
	return pairs
}

// TestDeltaPayloadThreshold walks the sparse/dense crossover: for a fixed
// pair list, the encoder must pick dense exactly when the sparse encoding
// exceeds 1 + 4 + 4·numItems bytes, and the decoder must round-trip both
// forms at every point — including the exact flip edge.
func TestDeltaPayloadThreshold(t *testing.T) {
	// Large decrements make the sparse form fat (4-byte varints), so the
	// crossover happens while every node is still touched.
	for _, dec := range []int32{1, 1 << 20, 1 << 22} {
		flipped := false
		for numItems := 1; numItems <= 64; numItems++ {
			pairs := sortedPairs(numItems, dec)
			sparseLen := len(encodeDeltaPayload(pairs, 0)) // numItems=0 forces sparse
			payload := encodeDeltaPayload(pairs, numItems)
			wantDense := sparseLen > 1+4+4*numItems
			if gotDense := payload[0] == deltaFormDense; gotDense != wantDense {
				t.Fatalf("dec=%d numItems=%d: form %d, sparse %dB vs dense %dB",
					dec, numItems, payload[0], sparseLen, 1+4+4*numItems)
			}
			if wantDense {
				flipped = true
			}
			frame := encodeDeltasResp(7, pairs, numItems)
			nanos, got, err := decodeDeltasResp(frame, nil, -1)
			if err != nil || nanos != 7 || len(got) != len(pairs) {
				t.Fatalf("dec=%d numItems=%d round trip: %v (%d pairs)", dec, numItems, err, len(got))
			}
			for i := range pairs {
				if got[i] != pairs[i] {
					t.Fatalf("dec=%d numItems=%d pair %d: got %v want %v", dec, numItems, i, got[i], pairs[i])
				}
			}
		}
		// Only ≥4-byte dec varints (dec ≥ 2^21) can make sparse outgrow
		// dense here: per pair sparse spends gap(1) + dec bytes vs
		// dense's flat 4.
		if dec >= 1<<21 && !flipped {
			t.Fatalf("dec=%d never crossed into dense form", dec)
		}
	}
}

// TestDeltaPayloadStaysSparse: inputs violating the drain invariant
// (unsorted, duplicate, non-positive, out-of-range nodes) must fall back
// to the lossless sparse form even when dense would be smaller.
func TestDeltaPayloadStaysSparse(t *testing.T) {
	cases := map[string][]DeltaPair{
		"unsorted":    {{5, 1 << 20}, {2, 1 << 20}, {9, 1 << 20}},
		"duplicate":   {{2, 1 << 20}, {2, 1 << 20}, {3, 1 << 20}},
		"nonpositive": {{1, 1 << 20}, {2, 0}, {3, 1 << 20}},
		"outofrange":  {{1, 1 << 20}, {99, 1 << 20}},
		"empty":       {},
	}
	for name, pairs := range cases {
		payload := encodeDeltaPayload(pairs, 4) // dense would be 21 bytes
		if payload[0] != deltaFormSparse {
			t.Errorf("%s: encoder chose form %d, want sparse", name, payload[0])
		}
		frame := encodeDeltasResp(0, pairs, 4)
		_, got, err := decodeDeltasResp(frame, nil, -1)
		if err != nil || len(got) != len(pairs) {
			t.Errorf("%s: round trip %v (%d pairs, want %d)", name, err, len(got), len(pairs))
			continue
		}
		for i := range pairs {
			if got[i] != pairs[i] {
				t.Errorf("%s: pair %d got %v want %v", name, i, got[i], pairs[i])
			}
		}
	}
}

// TestDeltaPayloadUnknownForm: a frame whose payload advertises an
// unknown form byte must error, even with a valid integrity trailer.
func TestDeltaPayloadUnknownForm(t *testing.T) {
	payload := []byte{0x7F, 1, 2, 3}
	frame := []byte{0}
	frame = appendI64(frame, 0)
	frame = appendU32(frame, uint32(len(payload)))
	frame = appendU32(frame, checksum.Sum(payload))
	frame = append(frame, payload...)
	if _, _, err := decodeDeltasResp(frame, nil, -1); err == nil {
		t.Fatal("unknown payload form accepted")
	}
}

// TestWorkerSelectFramesParallelIdentical: the raw msgSelect reply frames
// of a worker must be byte-identical at every kernel parallelism — the
// wire-level form of the bit-identical guarantee. Workers get identical
// data via ingest (which is parallelism-independent), so any divergence
// is the select kernel's fault.
func TestWorkerSelectFramesParallelIdentical(t *testing.T) {
	const n = 64
	r := xrand.New(0xFACE)
	lists := make([][]uint32, 30000)
	for i := range lists {
		sz := 1 + r.Intn(6)
		set := make([]uint32, 0, sz)
		for len(set) < sz {
			v := uint32(r.Intn(n))
			dup := false
			for _, x := range set {
				dup = dup || x == v
			}
			if !dup {
				set = append(set, v)
			}
		}
		lists[i] = set
	}

	run := func(parallelism int) [][]byte {
		w, err := NewWorker(WorkerConfig{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range [][]byte{encodeIngestReq(n, lists), encodeSimpleReq(msgBeginSelect)} {
			if resp := w.Handle(req); len(resp) > 0 && resp[0] == msgError {
				t.Fatalf("P=%d setup: %s", parallelism, resp[9:])
			}
		}
		frames := make([][]byte, 0, 10)
		for u := uint32(0); u < 10; u++ {
			frame := w.Handle(encodeSelectReq(u))
			// Blank out handler nanos: timing differs run to run, the
			// payload and trailer must not.
			for i := 1; i < 9; i++ {
				frame[i] = 0
			}
			frames = append(frames, frame)
		}
		return frames
	}

	base := run(1)
	for _, p := range []int{2, 4} {
		got := run(p)
		for i := range base {
			if !bytes.Equal(base[i], got[i]) {
				t.Fatalf("P=%d select frame %d differs from sequential (%dB vs %dB)",
					p, i, len(got[i]), len(base[i]))
			}
		}
	}
}
