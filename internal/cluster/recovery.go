package cluster

import (
	"errors"
	"fmt"
	"time"

	"dimm/internal/rrset"
)

// This file is the guarantee-preserving failover layer (ISSUE 5). The
// paper's Corollary 1 makes worker failure recoverable by construction:
// every machine samples i.i.d. RR sets from its own seeded stream, so a
// lost shard can be reproduced exactly (replay the same stream on a
// replacement) or replaced statistically (sample fresh epoch-salted
// streams on survivors) without biasing the sample — and therefore
// without touching the (1 − 1/e − ε) approximation argument, which only
// needs the pooled sample to be i.i.d. RR sets of the right count.
//
// Two recovery tiers, tried in order:
//
//  1. Failover (replay): Respawn a replacement connection for the failed
//     worker and replay its acknowledged state-mutating requests — the
//     generation history (whose counts determine the deterministic
//     sharded streams exactly), ingested lists, the degree-delta cursor,
//     and any in-progress selection prefix. The replacement ends up
//     bit-identical to the lost worker, the failed call is re-issued,
//     and the cluster's results are byte-identical to a fault-free run.
//  2. Quarantine + rebalance: if respawn itself keeps failing, the
//     worker is quarantined and the RR sets the master still needed from
//     it are regenerated on survivors under fresh epoch-salted stream
//     seeds (msgGenerateAux), then the baseline degree vector is rebuilt
//     from scratch. The pooled sample keeps its size and i.i.d. law, so
//     certificates and the approximation guarantee survive; only
//     byte-level reproducibility is given up (documented in DESIGN.md).

// Recovery configures the failover layer; install it with
// Cluster.EnableRecovery immediately after constructing the cluster,
// before any state-changing call (the replay log starts empty).
type Recovery struct {
	// Respawn produces a fresh connection to a replacement for worker i:
	// a redial for TCP workers, a newly constructed Worker for local
	// ones. The returned conn must reach an empty worker (Serve builds
	// one per accepted connection; NewLocalConn callers construct one).
	Respawn func(worker int) (Conn, error)
	// Retries/Backoff/MaxBackoff bound the respawn attempts per failure,
	// with the same capped-exponential-plus-jitter schedule as
	// RetryPolicy (zero values take the package defaults).
	Retries    int
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Salt seeds the auxiliary rebalance streams. Any value works (the
	// streams are salted per failure epoch on top of it); reuse the
	// run's base seed for reproducible experiments.
	Salt uint64
}

// workerLog is the master-side replay journal for one worker: everything
// needed to rebuild the worker's state on a replacement, and the cursors
// that bound what a quarantine actually loses.
type workerLog struct {
	// ops holds the acknowledged state-mutating request frames in issue
	// order: msgGenerate, msgGenerateAux and msgIngest. Replaying them
	// against a fresh worker reproduces the collection bit for bit —
	// the exact sequence of generation counts matters because the
	// sharded sampler splits each request across shard streams per call.
	ops []([]byte)
	// sampled counts RR sets from generate/generateAux ops; ingested
	// counts list entries from ingest ops. Their sum is the worker's
	// collection size.
	sampled  int64
	ingested int64
	// synced is the collection prefix whose coverage is folded into the
	// master's baseline degree vector (the worker's msgDegreeDelta
	// cursor, mirrored master-side so a replacement can be repositioned
	// with msgSetReported).
	synced int64
	// fetched is the FetchNew cursor: RR sets the master already holds a
	// copy of. A quarantined worker only loses [fetched, count) — the
	// suffix rebalance regenerates on survivors.
	fetched int64
}

func (lg *workerLog) count() int64 { return lg.sampled + lg.ingested }

// ErrNoLiveWorkers reports a cluster whose every worker is quarantined;
// no query can be answered until one is reinstated (Reset respawns).
var ErrNoLiveWorkers = errors.New("cluster: no live workers")

// RebalancedError reports that a worker was lost mid-selection and its
// shard regenerated on survivors: the greedy's degree vector no longer
// matches the (repaired) cluster state, so the caller must restart the
// selection from InitialDegrees. The repaired baseline is already in
// place — a restarted run sees a consistent sample of the original size.
type RebalancedError struct {
	Quarantined []int // workers quarantined during the failed round
}

func (e *RebalancedError) Error() string {
	return fmt.Sprintf("cluster: workers %v quarantined mid-selection; sample rebalanced, restart the greedy", e.Quarantined)
}

// IsWorkerLoss reports whether err means worker capacity was lost in a
// way retries cannot fix right now: the whole cluster is down, a worker
// exhausted its retry budget with no recovery installed, or a selection
// must be restarted after a rebalance. The serve layer maps these to
// 503 + Retry-After.
func IsWorkerLoss(err error) bool {
	var down *WorkerDownError
	var reb *RebalancedError
	return errors.Is(err, ErrNoLiveWorkers) || errors.As(err, &down) || errors.As(err, &reb)
}

// WorkerHealth is one worker's liveness and fault counters, exposed by
// serve's /statsz.
type WorkerHealth struct {
	Worker    int    `json:"worker"`
	Up        bool   `json:"up"`
	Retries   int64  `json:"retries"`
	Redials   int64  `json:"redials"`
	Failovers int64  `json:"failovers"`
	LastError string `json:"last_error,omitempty"`
}

// EnableRecovery installs the failover layer. Call it on a freshly
// constructed cluster, before any state-changing request: the replay
// journal starts recording at installation, so earlier worker state
// could not be reproduced on a replacement.
func (c *Cluster) EnableRecovery(rec Recovery) error {
	if rec.Respawn == nil {
		return fmt.Errorf("cluster: Recovery.Respawn is required")
	}
	c.rec = &rec
	c.dead = make([]bool, len(c.conns))
	c.logs = make([]workerLog, len(c.conns))
	c.failovers = make([]int64, len(c.conns))
	c.ctlRetries = make([]int64, len(c.conns))
	c.lastErrs = make([]string, len(c.conns))
	return nil
}

// RecoveryEnabled reports whether EnableRecovery has been called.
func (c *Cluster) RecoveryEnabled() bool { return c.rec != nil }

// Health snapshots per-worker liveness and fault counters. Safe to call
// concurrently with cluster operations (serve's /statsz does).
func (c *Cluster) Health() []WorkerHealth {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	out := make([]WorkerHealth, len(c.conns))
	for i := range c.conns {
		h := WorkerHealth{Worker: i, Up: true}
		if c.rec != nil {
			h.Up = !c.dead[i]
			h.Failovers = c.failovers[i]
			h.Retries = c.ctlRetries[i]
			h.LastError = c.lastErrs[i]
		}
		if rc, ok := c.conns[i].(*RetryConn); ok {
			r, d := rc.Stats()
			h.Retries += r
			h.Redials = d
		}
		out[i] = h
	}
	return out
}

// liveIndexes returns the indexes of workers not quarantined.
func (c *Cluster) liveIndexes() []int {
	live := make([]int, 0, len(c.conns))
	for i := range c.conns {
		if c.rec == nil || !c.dead[i] {
			live = append(live, i)
		}
	}
	return live
}

// record journals an acknowledged state-mutating request frame for
// worker i (no-op without recovery). The frame is copied: callers may
// reuse buffers.
func (c *Cluster) record(i int, req []byte, sampled, ingested int64) {
	if c.rec == nil {
		return
	}
	op := make([]byte, len(req))
	copy(op, req)
	lg := &c.logs[i]
	lg.ops = append(lg.ops, op)
	lg.sampled += sampled
	lg.ingested += ingested
}

// policy returns the recovery retry schedule as a RetryPolicy.
func (r *Recovery) policy() RetryPolicy {
	return RetryPolicy{Retries: r.Retries, Backoff: r.Backoff, MaxBackoff: r.MaxBackoff}.normalized()
}

// failover tries to replace worker i's connection with a respawned,
// resynced one and re-issue the failed request. On success the new conn
// is adopted and the response returned; on failure the caller
// quarantines the worker.
func (c *Cluster) failover(i int, req []byte, cause error) ([]byte, error) {
	pol := c.rec.policy()
	last := cause
	for attempt := 1; attempt <= pol.Retries; attempt++ {
		pol.sleep(attempt)
		c.healthMu.Lock()
		c.ctlRetries[i]++
		c.healthMu.Unlock()
		conn, err := c.rec.Respawn(i)
		if err != nil {
			last = fmt.Errorf("respawn: %w", err)
			continue
		}
		if err := c.resyncConn(i, conn); err != nil {
			_ = conn.Close()
			last = fmt.Errorf("resync: %w", err)
			continue
		}
		resp, err := conn.Call(req)
		if err != nil {
			_ = conn.Close()
			last = err
			continue
		}
		c.adoptConn(i, conn)
		c.healthMu.Lock()
		c.failovers[i]++
		c.lastErrs[i] = cause.Error()
		c.healthMu.Unlock()
		return resp, nil
	}
	return nil, last
}

// resyncConn rebuilds worker i's state on a fresh connection by
// replaying the journal: reset, every acknowledged state-mutating frame
// in order (reproducing the deterministic streams exactly), the
// degree-delta cursor, and — when a selection is in progress — the
// relabel plus every seed already selected. After this the replacement
// is bit-identical to the lost worker at the instant before the failed
// call.
func (c *Cluster) resyncConn(i int, conn Conn) error {
	ack := func(req []byte) error {
		resp, err := conn.Call(req)
		if err != nil {
			return err
		}
		_, _, err = decodeRespHeader(resp) // surfaces msgError replies
		return err
	}
	if err := ack(encodeSimpleReq(msgReset)); err != nil {
		return err
	}
	lg := &c.logs[i]
	for _, op := range lg.ops {
		if err := ack(op); err != nil {
			return err
		}
	}
	if err := ack(encodeSetReportedReq(lg.synced)); err != nil {
		return err
	}
	if c.selecting {
		if err := ack(encodeSimpleReq(msgBeginSelect)); err != nil {
			return err
		}
		for _, u := range c.selSeeds {
			if err := ack(encodeSelectReq(u)); err != nil {
				return err
			}
		}
	}
	return nil
}

// adoptConn swaps worker i's connection for a replacement, folding the
// retired conn's byte counters into the cluster totals.
func (c *Cluster) adoptConn(i int, conn Conn) {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	if old := c.conns[i]; old != nil {
		s, r := old.Bytes()
		c.retiredSent += s
		c.retiredRecv += r
		_ = old.Close()
	}
	c.conns[i] = conn
	c.dead[i] = false
}

// quarantine marks worker i dead: later broadcasts skip it until Reset
// manages to respawn it.
func (c *Cluster) quarantine(i int, cause error) {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	if c.dead[i] {
		return
	}
	c.dead[i] = true
	c.lastErrs[i] = cause.Error()
	c.retiredBatch.Add(c.batchLast[i])
	c.batchLast[i] = rrset.BatchStats{}
	if old := c.conns[i]; old != nil {
		s, r := old.Bytes()
		c.retiredSent += s
		c.retiredRecv += r
		_ = old.Close()
	}
}

// repair restores the cluster invariants after quarantines: regenerate
// what the quarantined workers still owed the master on survivors, then
// rebuild the baseline degree vector from scratch. extraLost[d] adds
// in-flight generation counts that died with worker d before being
// journaled. Loops because a survivor can fail during the repair itself;
// each iteration quarantines at least one more worker, so it terminates.
func (c *Cluster) repair(downs []int, extraLost map[int]int64) error {
	for len(downs) > 0 {
		if err := c.rebalanceLost(downs, extraLost); err != nil {
			return err
		}
		extraLost = nil
		var err error
		downs, err = c.rebuildBaseline()
		if err != nil {
			return err
		}
	}
	return nil
}

// rebalanceLost regenerates, on surviving workers, the RR sets the
// master still needed from each quarantined worker: the unfetched suffix
// of its sampled stream plus any in-flight assignment, under fresh
// epoch-salted auxiliary seeds (i.i.d. with all other streams), and
// re-ingests its journaled explicit lists. The pooled sample keeps its
// exact size, so every certificate computed over it stays valid.
func (c *Cluster) rebalanceLost(downs []int, extraLost map[int]int64) error {
	pending := append([]int(nil), downs...)
	for len(pending) > 0 {
		d := pending[0]
		pending = pending[1:]
		live := c.liveIndexes()
		if len(live) == 0 {
			return fmt.Errorf("rebalancing worker %d: %w", d, ErrNoLiveWorkers)
		}
		lg := &c.logs[d]
		lost := lg.sampled - lg.fetched + extraLost[d]
		if lg.ingested > 0 && lg.fetched > 0 {
			// The fetch cursor counts a prefix of the interleaved
			// sampled+ingested collection, so "sampled minus fetched"
			// does not identify the lost sampled suffix. The two
			// workloads are never mixed in practice (fetch is the IM
			// serve path, ingest the max-coverage CLI); refuse rather
			// than double-count.
			return fmt.Errorf("cluster: worker %d mixed ingest with incremental fetch; cannot rebalance", d)
		}
		if lg.ingested > 0 {
			lost = lg.sampled + extraLost[d]
		}
		// Re-ingest journaled explicit lists onto a survivor. The master
		// holds the full frames, so ingested data needs no resampling —
		// replay is exact. A target that dies mid-ingest is queued like
		// any other quarantine and the frame retried on the next peer
		// (it was never journaled on the failed target, so no
		// duplication).
		for _, op := range lg.ops {
			if len(op) == 0 || op[0] != msgIngest {
				continue
			}
			for {
				live = c.liveIndexes()
				if len(live) == 0 {
					return fmt.Errorf("rebalancing worker %d: %w", d, ErrNoLiveWorkers)
				}
				tgt := live[0]
				reqs := make([][]byte, len(c.conns))
				reqs[tgt] = op
				resps, _, downs2, err := c.broadcast(reqs)
				if err != nil {
					return err
				}
				pending = append(pending, downs2...)
				if resps[tgt] != nil {
					if _, err := decodeAckResp(resps[tgt]); err != nil {
						return err
					}
					c.record(tgt, op, 0, ingestFrameLists(op))
					break
				}
			}
		}
		live = c.liveIndexes()
		if len(live) == 0 {
			return fmt.Errorf("rebalancing worker %d: %w", d, ErrNoLiveWorkers)
		}
		if lost < 0 {
			return fmt.Errorf("cluster: worker %d journal inconsistent (lost %d)", d, lost)
		}
		if lost == 0 {
			continue
		}
		// Fresh failure epoch -> fresh stream seeds, never reused.
		c.failEpoch++
		base := DeriveSeed(c.rec.Salt^(c.failEpoch*0x9E3779B97F4A7C15), d)
		per := lost / int64(len(live))
		extra := lost % int64(len(live))
		reqs := make([][]byte, len(c.conns))
		counts := make([]int64, len(c.conns))
		for idx, s := range live {
			n := per
			if int64(idx) < extra {
				n++
			}
			if n == 0 {
				continue
			}
			counts[s] = n
			reqs[s] = encodeGenerateAuxReq(DeriveSeed(base, idx), n)
		}
		resps, _, downs2, err := c.broadcast(reqs)
		if err != nil {
			return err
		}
		redo := map[int]int64{}
		for s := range resps {
			if reqs[s] == nil {
				continue
			}
			if resps[s] == nil {
				redo[s] = counts[s] // died mid-aux; its share is re-lost
				continue
			}
			if _, _, err := decodeStatsResp(resps[s]); err != nil {
				return fmt.Errorf("cluster: worker %d: %w", s, err)
			}
			c.record(s, reqs[s], counts[s], 0)
		}
		for _, nd := range downs2 {
			pending = append(pending, nd)
			if extraLost == nil {
				extraLost = map[int]int64{}
			}
			extraLost[nd] += redo[nd]
		}
	}
	return nil
}

// rebuildBaseline recomputes the master's baseline degree vector from
// scratch over the surviving workers: rewind every degree-delta cursor
// to zero, then fold one full re-report. O(total RR size) — the price of
// a quarantine, paid once per repair. Returns workers newly quarantined
// during the rebuild (the caller loops).
func (c *Cluster) rebuildBaseline() ([]int, error) {
	for i := range c.baseDeg {
		c.baseDeg[i] = 0
	}
	resps, _, downs, err := c.broadcast(c.same(encodeSetReportedReq(0)))
	if err != nil {
		return nil, err
	}
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		if _, err := decodeAckResp(resp); err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		if c.rec != nil {
			c.logs[i].synced = 0
		}
	}
	if len(downs) > 0 {
		return downs, nil
	}
	resps, wall, downs, err := c.broadcast(c.same(encodeSimpleReq(msgDegreeDelta)))
	if err != nil {
		return nil, err
	}
	handlers := make([]time.Duration, len(resps))
	var buf []DeltaPair
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		nanos, pairs, err := decodeDeltasResp(resp, buf, i)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		buf = pairs
		handlers[i] = time.Duration(nanos)
		c.countDeltaFrame(resp, pairs)
		for _, p := range pairs {
			if int(p.Node) >= c.numItems {
				return nil, fmt.Errorf("cluster: worker %d reported node %d outside item space", i, p.Node)
			}
			c.baseDeg[p.Node] += int64(p.Dec)
		}
		if c.rec != nil {
			c.logs[i].synced = c.logs[i].count()
		}
	}
	c.account("sel", wall, handlers)
	if len(downs) > 0 {
		return downs, nil
	}
	return nil, nil
}

// ingestFrameLists counts the element lists in an encoded msgIngest
// frame (trusted: the frame was journaled after the worker acked it).
func ingestFrameLists(op []byte) int64 {
	if len(op) < 9 {
		return 0
	}
	_, rest, err := consumeU32(op[1:])
	if err != nil {
		return 0
	}
	n, _, err := consumeU32(rest)
	if err != nil {
		return 0
	}
	return int64(n)
}
