package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds the fault-tolerance layer's persistence: how many
// times a failed call may be retried across redials, and how long to
// back off between attempts. Backoff is exponential with full jitter,
// capped at MaxBackoff, so a cluster of masters hammering a restarting
// worker spreads its reconnect attempts instead of synchronizing them.
type RetryPolicy struct {
	Retries    int           // redial+retry attempts after the first failure (<=0: DefaultRetries)
	Backoff    time.Duration // initial backoff before the first retry (<=0: DefaultRetryBackoff)
	MaxBackoff time.Duration // backoff cap (<=0: 64x Backoff)
}

// Defaults for RetryPolicy's zero values.
const (
	DefaultRetries      = 3
	DefaultRetryBackoff = 50 * time.Millisecond
)

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Retries <= 0 {
		p.Retries = DefaultRetries
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetryBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 64 * p.Backoff
	}
	return p
}

// sleep blocks for the attempt'th backoff interval (attempt counts from
// 1): capped exponential growth with full jitter.
func (p RetryPolicy) sleep(attempt int) {
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	// Full jitter: uniform in [d/2, d). rand's global source is
	// goroutine-safe; determinism is irrelevant here (backoff timing
	// never influences sampled streams).
	time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d/2+1))))
}

// WorkerDownError reports a worker that stayed unreachable through the
// whole retry budget. Detect it with errors.As; the wrapped Err is the
// last failure observed.
type WorkerDownError struct {
	Addr     string // worker address, or a symbolic name for local conns
	Attempts int    // total call attempts made (1 + retries)
	Err      error  // last underlying failure
}

func (e *WorkerDownError) Error() string {
	return fmt.Sprintf("cluster: worker %s down after %d attempts: %v", e.Addr, e.Attempts, e.Err)
}

func (e *WorkerDownError) Unwrap() error { return e.Err }

// RetryConn wraps a Conn with transparent retry and redial. Every Call
// error from the wrapped conn is a transport-level failure (worker-side
// errors travel in-band as msgError frames and decode later at the
// master), so any of them — timeouts, poisoned streams, resets — makes
// the current session unusable and a fresh dial is the right recovery.
//
// A redial reaches a brand-new worker with empty state (Serve constructs
// one per accepted connection), so a bare retry is only sound for calls
// that do not depend on worker state. RetryConn therefore retries:
//
//   - any call, when an OnReconnect hook is installed: the hook re-seeds
//     the fresh worker (the Cluster installs its replay-based resync
//     here) before the failed call is re-issued;
//   - only stateless/idempotent-by-reset semantics calls otherwise
//     (msgReset — after which the fresh empty worker is exactly the
//     desired state — plus msgStats-style reads of the empty state are
//     NOT safe, so without a hook only msgReset qualifies).
//
// After the retry budget is exhausted the conn enters a down state:
// further Calls fail fast with *WorkerDownError until Redial succeeds.
type RetryConn struct {
	addr string
	dial func() (Conn, error)
	pol  RetryPolicy

	// OnReconnect, when non-nil, runs against every freshly dialed conn
	// before the failed call is re-issued; returning an error discards
	// the new conn and counts the attempt as failed. Install state
	// resynchronization here. Must be set before the first Call.
	OnReconnect func(Conn) error

	mu    sync.Mutex // serializes calls and guards inner/down
	inner Conn
	down  bool

	retries atomic.Int64 // calls re-issued after a failure
	redials atomic.Int64 // successful re-dials

	retiredSent atomic.Int64 // bytes accounted on conns already replaced
	retiredRecv atomic.Int64
}

// NewRetryConn dials a worker through dial and wraps the session in a
// RetryConn named addr (used in errors and stats). The policy's zero
// values take the package defaults.
func NewRetryConn(addr string, dial func() (Conn, error), pol RetryPolicy) (*RetryConn, error) {
	inner, err := dial()
	if err != nil {
		return nil, err
	}
	return &RetryConn{addr: addr, dial: dial, pol: pol.normalized(), inner: inner}, nil
}

// Addr returns the worker address the conn redials.
func (c *RetryConn) Addr() string { return c.addr }

// Stats returns the cumulative retry and redial counts (the /statsz
// per-worker counters).
func (c *RetryConn) Stats() (retries, redials int64) {
	return c.retries.Load(), c.redials.Load()
}

// Down reports whether the conn is in the failed-fast state.
func (c *RetryConn) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// Call implements Conn with transparent retry/redial per the policy.
func (c *RetryConn) Call(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil, &WorkerDownError{Addr: c.addr, Attempts: c.pol.Retries + 1,
			Err: fmt.Errorf("connection previously marked down")}
	}
	resp, err := c.inner.Call(req)
	if err == nil {
		return resp, nil
	}
	if c.OnReconnect == nil && !retrySafeWithoutResync(req) {
		// A fresh worker would come up empty; without a resync hook,
		// re-issuing a state-dependent call would silently answer from
		// the wrong state. Surface the failure instead.
		return nil, err
	}
	last := err
	for attempt := 1; attempt <= c.pol.Retries; attempt++ {
		c.pol.sleep(attempt)
		c.retries.Add(1)
		if err := c.redialLocked(); err != nil {
			last = err
			continue
		}
		if c.OnReconnect != nil {
			if err := c.OnReconnect(c.inner); err != nil {
				last = fmt.Errorf("resync after redial: %w", err)
				continue
			}
		}
		resp, err := c.inner.Call(req)
		if err == nil {
			return resp, nil
		}
		last = err
	}
	c.down = true
	return nil, &WorkerDownError{Addr: c.addr, Attempts: c.pol.Retries + 1, Err: last}
}

// Redial force-replaces the session with a fresh dial (and resync, if a
// hook is installed), clearing the down state on success. The cluster
// uses it to bring a quarantined worker back after the operator restarts
// it.
func (c *RetryConn) Redial() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(); err != nil {
		return err
	}
	if c.OnReconnect != nil {
		if err := c.OnReconnect(c.inner); err != nil {
			return fmt.Errorf("cluster: resync after redial: %w", err)
		}
	}
	c.down = false
	return nil
}

func (c *RetryConn) redialLocked() error {
	fresh, err := c.dial()
	if err != nil {
		return err
	}
	if c.inner != nil {
		s, r := c.inner.Bytes()
		c.retiredSent.Add(s)
		c.retiredRecv.Add(r)
		_ = c.inner.Close()
	}
	c.inner = fresh
	c.redials.Add(1)
	return nil
}

// retrySafeWithoutResync reports whether re-issuing req against a fresh,
// empty worker is semantically safe with no resync hook installed.
func retrySafeWithoutResync(req []byte) bool {
	return len(req) > 0 && req[0] == msgReset
}

// Bytes sums the payload bytes over the current and all retired sessions.
func (c *RetryConn) Bytes() (int64, int64) {
	c.mu.Lock()
	var s, r int64
	if c.inner != nil {
		s, r = c.inner.Bytes()
	}
	c.mu.Unlock()
	return s + c.retiredSent.Load(), r + c.retiredRecv.Load()
}

// Close closes the current session; the conn stays closed (no redial).
func (c *RetryConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = true
	if c.inner == nil {
		return nil
	}
	err := c.inner.Close()
	c.inner = nil
	return err
}
