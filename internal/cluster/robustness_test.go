package cluster

import (
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/xrand"
)

// TestWorkerNeverPanicsOnRandomBytes throws random frames at the worker
// dispatcher: every input must produce either a valid reply or an error
// frame — never a panic. This is the defensive property a server exposed
// on a TCP port must have.
func TestWorkerNeverPanicsOnRandomBytes(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Graph: testGraph(t), Model: diffusion.IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(0xFEED)
	for i := 0; i < 20000; i++ {
		size := r.Intn(64)
		frame := make([]byte, size)
		for j := range frame {
			frame[j] = byte(r.Uint64())
		}
		// Bias some frames toward valid tags so handler payload parsing
		// gets exercised, not just the tag switch.
		if size > 0 && i%3 == 0 {
			frame[0] = byte(1 + r.Intn(10))
		}
		resp := w.Handle(frame)
		if len(resp) == 0 {
			t.Fatalf("empty reply for frame %v", frame)
		}
	}
}

// TestWorkerStateSurvivesGarbage: after a burst of malformed requests,
// the worker must still serve valid traffic correctly.
func TestWorkerStateSurvivesGarbage(t *testing.T) {
	g := testGraph(t)
	w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Valid generation first.
	if _, _, err := decodeStatsResp(w.Handle(encodeGenerateReq(100))); err != nil {
		t.Fatal(err)
	}
	// Garbage storm. First bytes are forced outside the valid tag range:
	// random bytes can otherwise spell legitimate single-byte commands
	// (msgReset!), which would be obeyed, not rejected.
	r := xrand.New(7)
	for i := 0; i < 5000; i++ {
		frame := make([]byte, 1+r.Intn(31))
		for j := range frame {
			frame[j] = byte(r.Uint64())
		}
		frame[0] = byte(0x20 + r.Intn(0x5f))
		w.Handle(frame)
	}
	// The collection must be intact and selection must work.
	_, stats, err := decodeStatsResp(w.Handle(encodeSimpleReq(msgStats)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 100 {
		t.Fatalf("garbage corrupted the collection: %d RR sets", stats.Count)
	}
	if _, err := decodeAckResp(w.Handle(encodeSimpleReq(msgBeginSelect))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeDeltasResp(w.Handle(encodeSelectReq(0)), nil, -1); err != nil {
		t.Fatal(err)
	}
}

// TestDecodersNeverPanic feeds random bytes to every response decoder.
func TestDecodersNeverPanic(t *testing.T) {
	r := xrand.New(0xBAD)
	for i := 0; i < 20000; i++ {
		frame := make([]byte, r.Intn(48))
		for j := range frame {
			frame[j] = byte(r.Uint64())
		}
		_, _, _ = decodeRespHeader(frame)
		_, _, _ = decodeStatsResp(frame)
		_, _, _ = decodeDeltasResp(frame, nil, -1)
		_, _ = decodeAckResp(frame)
		_, _, _ = decodeEstimateReq(frame)
		_, _ = decodeCoverageReq(frame)
	}
}
