package cluster

import (
	"errors"
	"net"
	"testing"
	"time"

	"dimm/internal/diffusion"
	"dimm/internal/rrset"
)

// TestFetchNewIncremental: FetchNew must return exactly the RR sets
// generated since the previous fetch, in worker order, and the union of
// incremental fetches must equal a one-shot GatherAll.
func TestFetchNewIncremental(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 3, diffusion.IC, 7)

	union := rrset.NewCollection(1 << 10)
	var since []int
	var perRound []int
	for round := 0; round < 3; round++ {
		if _, err := cl.Generate(50); err != nil {
			t.Fatal(err)
		}
		before := union.Count()
		var err error
		since, err = cl.FetchNew(since, union)
		if err != nil {
			t.Fatal(err)
		}
		perRound = append(perRound, union.Count()-before)
	}
	for r, added := range perRound {
		if added != 50 {
			t.Fatalf("round %d fetched %d new RR sets, want 50", r, added)
		}
	}
	var cursorSum int
	for _, s := range since {
		cursorSum += s
	}
	if cursorSum != 150 {
		t.Fatalf("fetch cursors sum to %d, want 150", cursorSum)
	}

	// An empty growth round must fetch nothing.
	before := union.Count()
	since2, err := cl.FetchNew(since, union)
	if err != nil {
		t.Fatal(err)
	}
	if union.Count() != before {
		t.Fatalf("fetched %d sets with no new generation", union.Count()-before)
	}
	for i := range since2 {
		if since2[i] != since[i] {
			t.Fatalf("cursor %d moved from %d to %d without generation", i, since[i], since2[i])
		}
	}

	// Cross-check content against GatherAll on an identically seeded,
	// identically driven cluster.
	cl2 := localCluster(t, g, 3, diffusion.IC, 7)
	for round := 0; round < 3; round++ {
		if _, err := cl2.Generate(50); err != nil {
			t.Fatal(err)
		}
	}
	all, err := cl2.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() != union.Count() || all.TotalSize() != union.TotalSize() {
		t.Fatalf("incremental union (%d sets / %d nodes) != gather-all (%d sets / %d nodes)",
			union.Count(), union.TotalSize(), all.Count(), all.TotalSize())
	}
	// GatherAll concatenates whole per-worker collections while FetchNew
	// interleaves per round, so compare as multisets of encoded sets.
	seen := map[string]int{}
	for i := 0; i < union.Count(); i++ {
		seen[string(encodeSetKey(union.Set(i)))]++
	}
	for i := 0; i < all.Count(); i++ {
		key := string(encodeSetKey(all.Set(i)))
		seen[key]--
		if seen[key] == 0 {
			delete(seen, key)
		}
	}
	if len(seen) != 0 {
		t.Fatalf("incremental union and gather-all differ on %d RR sets", len(seen))
	}
}

func encodeSetKey(set []uint32) []byte {
	b := make([]byte, 0, 4*len(set))
	for _, v := range set {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

// TestFetchNewRejectsBadCursor: a cursor beyond the worker's collection
// must produce a worker-side error, not a crash or silent truncation.
func TestFetchNewRejectsBadCursor(t *testing.T) {
	g := testGraph(t)
	cl := localCluster(t, g, 1, diffusion.IC, 7)
	if _, err := cl.Generate(10); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FetchNew([]int{99}, rrset.NewCollection(16)); err == nil {
		t.Fatal("expected an error for a fetch cursor past the collection")
	}
}

// TestCallTimeout: a hung worker (accepts, never replies) must fail the
// call with the typed *CallTimeoutError instead of blocking forever, and
// poison the connection for subsequent calls.
func TestCallTimeout(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	hold := make(chan struct{})
	defer close(hold)
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		<-hold // swallow the request, never answer
	}()

	conn, err := DialWorkerTimeout(lis.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	_, err = conn.Call(encodeSimpleReq(msgStats))
	var te *CallTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Call returned %v, want *CallTimeoutError", err)
	}
	if te.After != 100*time.Millisecond {
		t.Fatalf("timeout error reports deadline %v", te.After)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out call took %v", elapsed)
	}
	if _, err := conn.Call(encodeSimpleReq(msgStats)); err == nil {
		t.Fatal("expected subsequent calls on a timed-out connection to fail fast")
	}
}

// TestCallTimeoutHappyPath: with a responsive worker the deadline must
// not interfere with normal operation.
func TestCallTimeoutHappyPath(t *testing.T) {
	g := testGraph(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(lis, func() (*Worker, error) {
		return NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 1})
	})
	conn, err := DialWorkerTimeout(lis.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl, err := New([]Conn{conn}, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Generate(20); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 20 {
		t.Fatalf("worker holds %d RR sets, want 20", stats.Count)
	}
}

// TestWorkerServerGracefulShutdown: Shutdown must answer the in-flight
// request, then stop; Serve must return nil (exit 0 path).
func TestWorkerServerGracefulShutdown(t *testing.T) {
	g := testGraph(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWorkerServer(lis, func() (*Worker, error) {
		return NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 1})
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	conn, err := DialWorker(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A request issued concurrently with Shutdown must still be answered.
	resp := make(chan error, 1)
	go func() {
		_, err := conn.Call(encodeGenerateReq(2000))
		resp <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the call reach the worker
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-resp; err != nil {
		t.Fatalf("in-flight call failed during graceful shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}

	// New masters must be refused.
	if _, err := net.DialTimeout("tcp", lis.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestWorkerServerShutdownIdle: shutting down with an idle connected
// master completes within the grace period.
func TestWorkerServerShutdownIdle(t *testing.T) {
	g := testGraph(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWorkerServer(lis, func() (*Worker, error) {
		return NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 1})
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	conn, err := DialWorker(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Call(encodeSimpleReq(msgStats)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := srv.Shutdown(300 * time.Millisecond); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle shutdown took %v", elapsed)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v, want nil", err)
	}
}
