package cluster

import (
	"time"
)

// ShapedConn wraps a Conn with simulated link characteristics: a fixed
// per-message latency and a bandwidth cap. The paper's cluster connects
// machines over a 1 Gbps switch; local loopback is orders of magnitude
// faster, which would understate communication cost in the Fig. 5/8
// reproduction. Wrapping each worker connection in
//
//	cluster.Shape(conn, 200*time.Microsecond, 1e9/8) // 1 Gbps, 0.2 ms RTT
//
// injects the transfer delays such a link would add. Delays are applied
// by sleeping in the caller's goroutine, so they show up in the measured
// round wall time (and therefore in Metrics.Comm) exactly like real
// network time would.
type ShapedConn struct {
	inner Conn
	// latency is added once per round trip (request + response legs
	// combined — the point-to-point RTT).
	latency time.Duration
	// bytesPerSecond caps throughput in each direction; zero = unlimited.
	bytesPerSecond float64
}

// Shape wraps conn with the given round-trip latency and per-direction
// bandwidth (bytes per second; zero disables the cap).
func Shape(conn Conn, latency time.Duration, bytesPerSecond float64) *ShapedConn {
	return &ShapedConn{inner: conn, latency: latency, bytesPerSecond: bytesPerSecond}
}

// Call implements Conn.
func (s *ShapedConn) Call(req []byte) ([]byte, error) {
	resp, err := s.inner.Call(req)
	if err != nil {
		return nil, err
	}
	delay := s.latency
	if s.bytesPerSecond > 0 {
		transfer := float64(len(req)+len(resp)) / s.bytesPerSecond
		delay += time.Duration(transfer * float64(time.Second))
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return resp, nil
}

// Bytes implements Conn.
func (s *ShapedConn) Bytes() (int64, int64) { return s.inner.Bytes() }

// Close implements Conn.
func (s *ShapedConn) Close() error { return s.inner.Close() }
