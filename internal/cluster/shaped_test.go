package cluster

import (
	"testing"
	"time"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
)

func TestShapedConnAddsCommTime(t *testing.T) {
	g := testGraph(t)
	build := func(latency time.Duration) *Cluster {
		conns := make([]Conn, 2)
		for i := range conns {
			w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(3, i)})
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = Shape(NewLocalConn(w), latency, 0)
		}
		cl, err := New(conns, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	fast := build(0)
	slow := build(2 * time.Millisecond)
	for _, cl := range []*Cluster{fast, slow} {
		if _, err := cl.Generate(200); err != nil {
			t.Fatal(err)
		}
		if _, err := coverage.RunGreedy(cl.Oracle(), 5); err != nil {
			t.Fatal(err)
		}
	}
	mf, ms := fast.Metrics(), slow.Metrics()
	// Identical seeds ⇒ identical results; only communication differs.
	if ms.Comm <= mf.Comm {
		t.Fatalf("2ms link shows no extra comm time: %v vs %v", ms.Comm, mf.Comm)
	}
	// Each round trip should contribute roughly the configured latency.
	if ms.Comm < time.Duration(ms.Rounds)*time.Millisecond {
		t.Fatalf("comm %v too small for %d shaped rounds", ms.Comm, ms.Rounds)
	}
}

func TestShapedConnBandwidthCap(t *testing.T) {
	g := testGraph(t)
	w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB/s: a ~100 KB gather should take >= ~50 ms.
	conn := Shape(NewLocalConn(w), 0, 1e6)
	cl, err := New([]Conn{conn}, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Generate(5000); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	union, err := cl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	wire := 4 * union.TotalSize() // members alone, lower bound on bytes
	want := time.Duration(float64(wire) / 1e6 * float64(time.Second))
	if elapsed < want/2 {
		t.Fatalf("gather of %d bytes at 1MB/s took %v, want at least ~%v", wire, elapsed, want)
	}
}

func TestLinkModelAddsModeledComm(t *testing.T) {
	g := testGraph(t)
	run := func(model bool) (Metrics, *coverage.Result) {
		cl := localCluster(t, g, 4, diffusion.IC, 61)
		if model {
			cl.SetLinkModel(200*time.Microsecond, 1e9/8)
		}
		if _, err := cl.Generate(400); err != nil {
			t.Fatal(err)
		}
		res, err := coverage.RunGreedy(cl.Oracle(), 5)
		if err != nil {
			t.Fatal(err)
		}
		return cl.Metrics(), res
	}
	plainM, plainR := run(false)
	modelM, modelR := run(true)
	if modelR.Coverage != plainR.Coverage {
		t.Fatal("link model changed the result")
	}
	// Each broadcast round adds at least the RTT. Intrinsic (measured)
	// comm jitters between runs, so bound by the modeled additions alone
	// and separately require a clear increase over the plain run.
	minExtra := time.Duration(modelM.Rounds) * 200 * time.Microsecond
	if modelM.Comm < minExtra {
		t.Fatalf("modeled comm %v below the %v the link model alone adds", modelM.Comm, minExtra)
	}
	if modelM.Comm <= plainM.Comm {
		t.Fatalf("link model added no comm time: %v vs plain %v", modelM.Comm, plainM.Comm)
	}
	// Generation and selection accounting must be untouched.
	if modelM.GenTotal == 0 || modelM.SelTotal == 0 {
		t.Fatal("link model clobbered compute accounting")
	}
}

func TestShapedConnTransparent(t *testing.T) {
	// Shaping must not change results, only timing.
	g := testGraph(t)
	run := func(shaped bool) *coverage.Result {
		conns := make([]Conn, 3)
		for i := range conns {
			w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.LT, Seed: DeriveSeed(9, i)})
			if err != nil {
				t.Fatal(err)
			}
			var c Conn = NewLocalConn(w)
			if shaped {
				c = Shape(c, 100*time.Microsecond, 1e9)
			}
			conns[i] = c
		}
		cl, err := New(conns, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if _, err := cl.Generate(300); err != nil {
			t.Fatal(err)
		}
		res, err := coverage.RunGreedy(cl.Oracle(), 6)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Coverage != b.Coverage {
		t.Fatal("shaping changed the result")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("shaping changed the seeds")
		}
	}
}
