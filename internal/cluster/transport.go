package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// Conn is a reliable, ordered request/response pipe to one worker. Call
// blocks until the reply arrives. A Conn serializes its own requests; the
// master achieves parallelism by calling several Conns concurrently.
type Conn interface {
	// Call sends one request frame and returns the worker's response frame.
	Call(req []byte) ([]byte, error)
	// Bytes returns the cumulative payload bytes sent and received.
	Bytes() (sent, received int64)
	// Close releases the connection; subsequent Calls fail.
	Close() error
}

// --- in-process transport ---------------------------------------------------

// localConn runs the worker in a dedicated goroutine and exchanges fully
// encoded frames over channels. The encode/decode work is identical to the
// TCP path, so serialized traffic volume is measured faithfully even when
// "machines" are goroutines on one server (the paper's multi-core setup).
type localConn struct {
	reqCh  chan []byte
	respCh chan []byte
	done   chan struct{}
	closed atomic.Bool
	sent   atomic.Int64
	recv   atomic.Int64
}

// NewLocalConn spawns worker w in its own goroutine and returns the
// master's handle to it.
func NewLocalConn(w *Worker) Conn {
	c := &localConn{
		reqCh:  make(chan []byte),
		respCh: make(chan []byte),
		done:   make(chan struct{}),
	}
	go func() {
		for req := range c.reqCh {
			c.respCh <- w.Handle(req)
		}
		close(c.done)
	}()
	return c
}

func (c *localConn) Call(req []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("cluster: call on closed local connection")
	}
	c.sent.Add(int64(len(req)))
	c.reqCh <- req
	resp := <-c.respCh
	// Copy the frame: the worker may reuse its buffers on the next call.
	out := make([]byte, len(resp))
	copy(out, resp)
	c.recv.Add(int64(len(out)))
	return out, nil
}

func (c *localConn) Bytes() (int64, int64) { return c.sent.Load(), c.recv.Load() }

func (c *localConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.reqCh)
		<-c.done
	}
	return nil
}

// --- TCP transport ----------------------------------------------------------

// Frames on the wire are length-prefixed: u32 little-endian payload length
// followed by the payload.

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader, maxSize uint32) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size > maxSize {
		return nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", size, maxSize)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// maxFrameSize bounds a single message; delta vectors are at most ~8n
// bytes, so 1 GiB leaves ample headroom while stopping corrupt headers
// from triggering absurd allocations.
const maxFrameSize = 1 << 30

// tcpConn is the master's handle to a worker over a socket.
type tcpConn struct {
	nc   net.Conn
	sent int64
	recv int64
}

// DialWorker connects to a worker served by Serve at addr.
func DialWorker(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
	}
	if t, ok := nc.(*net.TCPConn); ok {
		_ = t.SetNoDelay(true)
	}
	return &tcpConn{nc: nc}, nil
}

func (c *tcpConn) Call(req []byte) ([]byte, error) {
	if err := writeFrame(c.nc, req); err != nil {
		return nil, fmt.Errorf("cluster: sending request: %w", err)
	}
	c.sent += int64(len(req))
	resp, err := readFrame(c.nc, maxFrameSize)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading response: %w", err)
	}
	c.recv += int64(len(resp))
	return resp, nil
}

func (c *tcpConn) Bytes() (int64, int64) { return c.sent, c.recv }

func (c *tcpConn) Close() error { return c.nc.Close() }

// Serve accepts one master connection after another on lis and serves
// worker w's protocol until the listener is closed. Each accepted
// connection is handled to EOF before the next accept, matching the
// one-master model. newWorker is invoked per connection so state never
// leaks across masters.
func Serve(lis net.Listener, newWorker func() (*Worker, error)) error {
	for {
		nc, err := lis.Accept()
		if err != nil {
			return err
		}
		w, err := newWorker()
		if err != nil {
			nc.Close()
			return err
		}
		serveConn(nc, w)
	}
}

// StartLoopbackWorker is a convenience for tests, benchmarks and examples:
// it serves one worker on an ephemeral loopback TCP port and returns the
// listener together with a dialed master connection. Close both when done.
func StartLoopbackWorker(cfg WorkerConfig) (net.Listener, Conn, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go func() {
		_ = Serve(lis, func() (*Worker, error) { return NewWorker(cfg) })
	}()
	conn, err := DialWorker(lis.Addr().String())
	if err != nil {
		lis.Close()
		return nil, nil, err
	}
	return lis, conn, nil
}

func serveConn(nc net.Conn, w *Worker) {
	defer nc.Close()
	for {
		req, err := readFrame(nc, maxFrameSize)
		if err != nil {
			return // EOF or broken pipe: master went away
		}
		if err := writeFrame(nc, w.Handle(req)); err != nil {
			return
		}
	}
}
