package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dimm/internal/checksum"
)

// Conn is a reliable, ordered request/response pipe to one worker. Call
// blocks until the reply arrives. A Conn serializes its own requests; the
// master achieves parallelism by calling several Conns concurrently.
type Conn interface {
	// Call sends one request frame and returns the worker's response frame.
	Call(req []byte) ([]byte, error)
	// Bytes returns the cumulative payload bytes sent and received.
	Bytes() (sent, received int64)
	// Close releases the connection; subsequent Calls fail.
	Close() error
}

// --- in-process transport ---------------------------------------------------

// localConn runs the worker in a dedicated goroutine and exchanges fully
// encoded frames over channels. The encode/decode work is identical to the
// TCP path, so serialized traffic volume is measured faithfully even when
// "machines" are goroutines on one server (the paper's multi-core setup).
type localConn struct {
	reqCh  chan []byte
	respCh chan []byte
	done   chan struct{}
	// mu guards the closed flag AND the send on reqCh: Call sends while
	// holding the read lock, Close flips the flag and closes reqCh under
	// the write lock. The historic atomic flag allowed Close to close
	// reqCh between Call's check and its send — a "send on closed
	// channel" panic under concurrent Call/Close (ISSUE 5 regression
	// test: TestLocalConnCallCloseRace).
	mu     sync.RWMutex
	closed bool
	sent   atomic.Int64
	recv   atomic.Int64
}

// NewLocalConn spawns worker w in its own goroutine and returns the
// master's handle to it.
func NewLocalConn(w *Worker) Conn {
	c := &localConn{
		reqCh:  make(chan []byte),
		respCh: make(chan []byte),
		done:   make(chan struct{}),
	}
	go func() {
		for req := range c.reqCh {
			c.respCh <- w.Handle(req)
		}
		close(c.done)
	}()
	return c
}

// ErrConnClosed is the typed error a Call on an explicitly closed
// connection returns. A closed conn is a dead worker from the caller's
// perspective, so the fault-tolerance layer treats it as retryable.
var ErrConnClosed = errors.New("cluster: call on closed connection")

func (c *localConn) Call(req []byte) ([]byte, error) {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, ErrConnClosed
	}
	c.sent.Add(int64(len(req)))
	c.reqCh <- req
	// The send is in: the worker goroutine owns the request and will
	// produce exactly one reply, so the response read can happen outside
	// the lock (Close only closes reqCh, never respCh).
	c.mu.RUnlock()
	resp := <-c.respCh
	// Copy the frame: the worker may reuse its buffers on the next call.
	out := make([]byte, len(resp))
	copy(out, resp)
	c.recv.Add(int64(len(out)))
	return out, nil
}

func (c *localConn) Bytes() (int64, int64) { return c.sent.Load(), c.recv.Load() }

func (c *localConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.reqCh)
	c.mu.Unlock()
	<-c.done
	return nil
}

// --- TCP transport ----------------------------------------------------------

// Frames on the wire are length-prefixed: u32 little-endian payload length
// followed by the payload.

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader, maxSize uint32) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size > maxSize {
		return nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", size, maxSize)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// maxFrameSize bounds a single message; delta vectors are at most ~8n
// bytes, so 1 GiB leaves ample headroom while stopping corrupt headers
// from triggering absurd allocations.
const maxFrameSize = 1 << 30

// CallTimeoutError reports a TCP worker call that exceeded its per-call
// deadline. The connection is unusable afterwards (the response frame
// boundary is lost), so subsequent Calls fail fast; detect the condition
// with errors.As and rebuild the session.
type CallTimeoutError struct {
	Addr  string
	After time.Duration // the per-call deadline that was exceeded
}

func (e *CallTimeoutError) Error() string {
	return fmt.Sprintf("cluster: call to worker %s exceeded the %v timeout", e.Addr, e.After)
}

// Timeout marks the error as a timeout for callers testing net.Error
// semantics generically.
func (e *CallTimeoutError) Timeout() bool { return true }

// ConnBrokenError reports a Call on a TCP connection whose frame stream
// was poisoned by an earlier timed-out call: the worker's late reply is
// (or will be) sitting unread in the socket, so any further read would
// hand the master a stale frame as if it answered the new request. The
// only safe recovery is a redial — which RetryConn automates.
type ConnBrokenError struct {
	Addr string
}

func (e *ConnBrokenError) Error() string {
	return fmt.Sprintf("cluster: connection to worker %s is broken after a timed-out call; redial to recover", e.Addr)
}

// tcpConn is the master's handle to a worker over a socket.
type tcpConn struct {
	nc      net.Conn
	addr    string
	timeout time.Duration // 0 = block forever
	broken  bool          // a timed-out call poisoned the frame stream
	sent    int64
	recv    int64
}

// DialWorker connects to a worker served by Serve at addr. Calls block
// until the worker replies; use DialWorkerTimeout to bound them.
func DialWorker(addr string) (Conn, error) {
	return DialWorkerTimeout(addr, 0)
}

// DialWorkerTimeout connects to a worker served by Serve at addr, with a
// per-call deadline covering each request/response round trip (0 means
// block forever, like DialWorker). A call that overruns the deadline
// returns a *CallTimeoutError instead of hanging the master on a wedged
// worker, and marks the connection broken.
func DialWorkerTimeout(addr string, callTimeout time.Duration) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
	}
	if t, ok := nc.(*net.TCPConn); ok {
		_ = t.SetNoDelay(true)
	}
	return &tcpConn{nc: nc, addr: addr, timeout: callTimeout}, nil
}

func (c *tcpConn) Call(req []byte) ([]byte, error) {
	if c.broken {
		return nil, &ConnBrokenError{Addr: c.addr}
	}
	if c.timeout > 0 {
		if err := c.nc.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("cluster: arming call deadline: %w", err)
		}
	}
	if err := writeFrame(c.nc, req); err != nil {
		return nil, c.callError("sending request", err)
	}
	c.sent += int64(len(req))
	resp, err := readFrame(c.nc, maxFrameSize)
	if err != nil {
		return nil, c.callError("reading response", err)
	}
	c.recv += int64(len(resp))
	if c.timeout > 0 {
		_ = c.nc.SetDeadline(time.Time{})
	}
	return resp, nil
}

// callError wraps a transport error, converting deadline overruns into
// the typed *CallTimeoutError.
func (c *tcpConn) callError(op string, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		c.broken = true
		return &CallTimeoutError{Addr: c.addr, After: c.timeout}
	}
	return fmt.Errorf("cluster: %s: %w", op, err)
}

func (c *tcpConn) Bytes() (int64, int64) { return c.sent, c.recv }

func (c *tcpConn) Close() error { return c.nc.Close() }

// Serve accepts one master connection after another on lis and serves
// worker w's protocol until the listener is closed. Each accepted
// connection is handled to EOF before the next accept, matching the
// one-master model. newWorker is invoked per connection so state never
// leaks across masters.
func Serve(lis net.Listener, newWorker func() (*Worker, error)) error {
	return NewWorkerServer(lis, newWorker).Serve()
}

// WorkerServer serves the worker protocol with graceful shutdown: on
// Shutdown it stops accepting masters, lets the in-flight request finish
// and its response flush, then closes the connection. cmd/dimmd wires it
// to SIGINT/SIGTERM so a worker leaving a cluster never dies mid-frame.
type WorkerServer struct {
	lis       net.Listener
	newWorker func() (*Worker, error)

	mu       sync.Mutex
	active   net.Conn
	draining atomic.Bool
	done     chan struct{}
}

// NewWorkerServer wraps a listener; call Serve to start handling masters.
func NewWorkerServer(lis net.Listener, newWorker func() (*Worker, error)) *WorkerServer {
	return &WorkerServer{lis: lis, newWorker: newWorker, done: make(chan struct{})}
}

// Serve handles one master connection after another until the listener
// closes. It returns nil after a Shutdown-initiated stop, the accept
// error otherwise.
func (s *WorkerServer) Serve() error {
	defer close(s.done)
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		w, err := s.newWorker()
		if err != nil {
			nc.Close()
			return err
		}
		s.mu.Lock()
		s.active = nc
		drain := s.draining.Load()
		s.mu.Unlock()
		if drain { // Shutdown raced the accept: refuse the session
			nc.Close()
			return nil
		}
		s.serveConn(nc, w)
		s.mu.Lock()
		s.active = nil
		s.mu.Unlock()
		if s.draining.Load() {
			return nil
		}
	}
}

func (s *WorkerServer) serveConn(nc net.Conn, w *Worker) {
	defer nc.Close()
	for {
		req, err := readFrame(nc, maxFrameSize)
		if err != nil {
			return // EOF, broken pipe, or the drain deadline expired
		}
		if err := writeFrame(nc, w.Handle(req)); err != nil {
			return
		}
		if s.draining.Load() {
			return // in-flight frame answered; drain complete
		}
	}
}

// Shutdown stops accepting new masters and drains the in-flight request:
// the current frame (if any) is answered, then the connection closes. A
// session idle in readFrame is given at most grace to produce its next
// frame; past the deadline the connection is closed forcibly. Safe to
// call from a signal handler goroutine; returns once Serve has exited.
func (s *WorkerServer) Shutdown(grace time.Duration) error {
	if !s.draining.CompareAndSwap(false, true) {
		<-s.done
		return nil
	}
	s.lis.Close()
	deadline := time.Now().Add(grace)
	s.mu.Lock()
	if s.active != nil {
		// Bound the wait for the *next* frame; the frame already being
		// handled still gets its response written.
		_ = s.active.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	select {
	case <-s.done:
	case <-time.After(grace + time.Second):
		// Backstop: a handler stuck past the grace period loses its
		// connection rather than wedging the process exit.
		s.mu.Lock()
		if s.active != nil {
			s.active.Close()
		}
		s.mu.Unlock()
		<-s.done
	}
	return nil
}

// StartLoopbackWorker is a convenience for tests, benchmarks and examples:
// it serves one worker on an ephemeral loopback TCP port and returns the
// listener together with a dialed master connection. Close both when done.
func StartLoopbackWorker(cfg WorkerConfig) (net.Listener, Conn, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go func() {
		_ = Serve(lis, func() (*Worker, error) { return NewWorker(cfg) })
	}()
	conn, err := DialWorker(lis.Addr().String())
	if err != nil {
		lis.Close()
		return nil, nil, err
	}
	return lis, conn, nil
}

// --- frame integrity --------------------------------------------------------

// framePayloadOffset is where a checksummed response's wire payload
// begins: 1 tag byte + 8 handler nanos + 4 declared length + 4 CRC32C.
const framePayloadOffset = 1 + 8 + 4 + 4

// FrameIntegrityError reports a response whose integrity trailer does
// not match its payload: the declared length disagrees with the bytes
// on the wire (truncation, concatenation) or the CRC32C does not
// (corruption in transit). The trailer guards the frame types the
// master cannot cross-check semantically — RR fetch payloads, where a
// flipped bit would silently skew the sample, and delta replies, where
// it would silently skew the greedy's degree vector.
type FrameIntegrityError struct {
	Worker int    // worker index within the cluster, -1 if unknown
	Reason string // human-readable mismatch description
}

func (e *FrameIntegrityError) Error() string {
	return fmt.Sprintf("cluster: worker %d frame failed integrity check: %s", e.Worker, e.Reason)
}

// verifyFramePayload validates a response's declared-length and CRC32C
// trailer (written by Worker.fetchRange and encodeDeltasResp) and
// returns the verified wire payload. rest is the frame after
// decodeRespHeader stripped the tag and handler nanos.
func verifyFramePayload(worker int, rest []byte) ([]byte, error) {
	if len(rest) < 8 {
		return nil, &FrameIntegrityError{Worker: worker, Reason: fmt.Sprintf(
			"frame too short for the integrity trailer (%d bytes, want >= 8)", len(rest))}
	}
	declared := binary.LittleEndian.Uint32(rest)
	wantCRC := binary.LittleEndian.Uint32(rest[4:])
	payload := rest[8:]
	if int(declared) != len(payload) {
		return nil, &FrameIntegrityError{Worker: worker, Reason: fmt.Sprintf(
			"declared payload length %d, received %d bytes", declared, len(payload))}
	}
	if got := checksum.Sum(payload); got != wantCRC {
		return nil, &FrameIntegrityError{Worker: worker, Reason: fmt.Sprintf(
			"CRC32C mismatch (frame %#x, computed %#x)", wantCRC, got)}
	}
	return payload, nil
}
