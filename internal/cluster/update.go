package cluster

import (
	"encoding/binary"
	"fmt"
	"slices"
	"time"

	"dimm/internal/checksum"
	"dimm/internal/mutate"
	"dimm/internal/rrset"
)

// This file is the cluster side of the dynamic-graph subsystem
// (internal/mutate): broadcasting an edge-update batch to every worker
// and splicing each worker's incremental RR-shard repair back to the
// master.
//
// An update is a state-mutating broadcast like msgGenerate, so it rides
// the same machinery: journaled per worker for failover replay and
// retried through the failover ladder on connection loss. A repaired
// set's coverage may have changed, so each worker ships the net
// baseline-degree corrections alongside its patches and the master
// folds them in place — no full degree re-report.
// Replay determinism needs no special casing — a respawned replacement
// replays its generation ops against the *current* (already-mutated)
// graph, so its sets are born post-repair, and replaying the update
// frame afterwards is a version-gated no-op apply plus a value-idempotent
// recompute. The replayed worker converges to the exact bytes of the
// repaired original, which TestUpdateFailoverDeterminism asserts.

// updateRequestOffset is where an update request's batch payload begins:
// 1 tag byte + 4 declared length + 4 CRC32C. Updates are the one
// *request* type that can silently poison every worker's state if a bit
// flips in transit (counts and seeds elsewhere are cross-checked by
// responses), so the batch travels behind the same integrity trailer as
// fetch responses.
const updateRequestOffset = 1 + 4 + 4

// encodeUpdateReq frames an update batch: tag, declared payload length,
// CRC32C, then the mutate wire encoding.
func encodeUpdateReq(b mutate.Batch) []byte {
	buf := make([]byte, 0, updateRequestOffset+mutate.EncodedSize(b))
	buf = append(buf, msgUpdate)
	buf = appendU32(buf, 0) // payload length, patched below
	buf = appendU32(buf, 0) // CRC32C, patched below
	buf = mutate.EncodeBatch(buf, b)
	payload := buf[updateRequestOffset:]
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:9], checksum.Sum(payload))
	return buf
}

// decodeUpdateReq verifies the request trailer and decodes the batch.
func decodeUpdateReq(rest []byte) (mutate.Batch, error) {
	payload, err := verifyFramePayload(-1, rest)
	if err != nil {
		return mutate.Batch{}, err
	}
	b, n, err := mutate.DecodeBatch(payload)
	if err != nil {
		return mutate.Batch{}, err
	}
	if n != len(payload) {
		return mutate.Batch{}, fmt.Errorf("update request carries %d trailing bytes", len(payload)-n)
	}
	return b, nil
}

// handleUpdate is the worker side of msgUpdate: apply the batch to the
// graph (version-gated, so shared-graph and replayed applies are no-ops),
// plan exactly which resident RR sets the mutation can have changed,
// regenerate those slots from their original lane seeds on the new graph,
// and ship the patches back so the master can mirror the repair.
func (w *Worker) handleUpdate(rest []byte, start time.Time) ([]byte, error) {
	if w.cfg.Graph == nil {
		return nil, fmt.Errorf("worker has no graph; cannot apply updates")
	}
	if !w.cfg.Graph.MutationEnabled() {
		return nil, fmt.Errorf("graph is frozen; enable mutation before issuing updates")
	}
	batch, err := decodeUpdateReq(rest)
	if err != nil {
		return nil, err
	}
	deltas, _, err := w.cfg.Graph.ApplyUpdates(batch.Seq, batch.Ops)
	if err != nil {
		return nil, err
	}
	var patches []rrset.Patch
	var corr []DeltaPair
	if w.coll.Count() > 0 {
		if !w.lanesComplete() {
			return nil, fmt.Errorf("worker holds RR sets without lane provenance (ingested or restored); repair needs a full resample")
		}
		if err := w.ensureIndex(); err != nil {
			return nil, err
		}
		var plan []int
		if deltas != nil {
			plan, err = mutate.AffectedSlots(w.cfg.Model, deltas, w.idx, w.lanes)
		} else {
			// Version-gated no-op apply with no memoized deltas (a replay
			// of an old batch): fall back to the conservative plan. The
			// recompute is value-idempotent, so over-repair is just work.
			plan, err = mutate.AffectedSlotsConservative(batch.Ops, w.idx)
		}
		if err != nil {
			return nil, err
		}
		if len(plan) > 0 {
			rep, err := w.repairSampler()
			if err != nil {
				return nil, err
			}
			patches = make([]rrset.Patch, 0, len(plan))
			for _, slot := range plan {
				members, _ := rep.ResampleLane(w.lanes[slot])
				// A re-run that reproduces the resident bytes exactly (the
				// flipped coin turned out not to change reachability, or a
				// conservative plan over-approximated) is a no-op: shipping
				// it would cost wire, index diffs and splice work at every
				// replica for nothing. Equality is order-exact, so skipped
				// slots are bit-identical to a fresh generation on G'.
				if slices.Equal(members, w.coll.Set(slot)) {
					continue
				}
				patches = append(patches, rrset.Patch{Pos: slot, Members: append([]uint32(nil), members...)})
			}
			// Both the baseline corrections and the in-place index patch
			// diff against pre-patch membership, so they run before the
			// collection mutates.
			if corr, err = w.repairDeltas(patches); err != nil {
				return nil, err
			}
			if err := w.idx.ApplyPatches(w.coll, patches); err != nil {
				w.idx = nil // fall back to a from-scratch rebuild
			}
			if err := w.coll.ApplyPatches(patches); err != nil {
				w.idx = nil
				return nil, err
			}
		}
	}
	return encodeRepairResp(time.Since(start), patches, corr), nil
}

// repairDeltas computes the net baseline-degree corrections a repair
// implies for RR sets whose coverage has already shipped to the master
// (slots below the degree-sync cursor): -1 per pre-patch member, +1 per
// incoming member, zero-net nodes dropped. Slots at or above the cursor
// need no correction — their post-repair membership rides the next
// degreeDelta. Must run before the patches are applied to the
// collection: it reads pre-patch membership.
func (w *Worker) repairDeltas(patches []rrset.Patch) ([]DeltaPair, error) {
	if len(w.degStamp) < w.numItems() {
		w.degStamp = make([]uint32, w.numItems())
		w.degRound = 0
	}
	w.degRound++
	if w.degRound == 0 { // wrapped: stale stamps could collide
		clear(w.degStamp)
		w.degRound = 1
	}
	w.touched = w.touched[:0]
	oob := -1
	mark := func(v uint32, d int32) {
		if int(v) >= len(w.decScratch) {
			oob = int(v)
			return
		}
		if w.degStamp[v] != w.degRound {
			w.degStamp[v] = w.degRound
			w.touched = append(w.touched, v)
		}
		w.decScratch[v] += d
	}
	for _, p := range patches {
		if p.Pos >= w.reported {
			continue
		}
		for _, v := range w.coll.Set(p.Pos) {
			mark(v, -1)
		}
		for _, v := range p.Members {
			mark(v, 1)
		}
	}
	w.pairBuf = w.pairBuf[:0]
	for _, v := range w.touched {
		if d := w.decScratch[v]; d != 0 {
			w.pairBuf = append(w.pairBuf, DeltaPair{Node: v, Dec: d})
		}
		w.decScratch[v] = 0
	}
	if oob >= 0 {
		return nil, fmt.Errorf("RR member %d outside item space %d", oob, len(w.decScratch))
	}
	// First-encounter order is already deterministic, and the repair
	// response's fixed-width delta section (unlike the gap-coded
	// msgDegreeDelta forms) does not require ascending nodes — skip the
	// O(p log p) sort a high-churn repair would pay.
	return w.pairBuf, nil
}

// lanesComplete reports whether every resident RR set has a journaled
// lane seed (generation maintains them; ingest does not).
func (w *Worker) lanesComplete() bool {
	return len(w.lanes) == w.coll.Count()
}

// repairSampler lazily builds the worker's scalar repair sampler: a
// private Sampler over the same graph/model/root-weights whose only job
// is ResampleLane (its own stream is never advanced, so the seed is
// irrelevant).
func (w *Worker) repairSampler() (*rrset.Sampler, error) {
	if w.repairer != nil {
		return w.repairer, nil
	}
	s, err := rrset.NewSampler(w.cfg.Graph, w.cfg.Model, 0, false)
	if err != nil {
		return nil, err
	}
	if w.cfg.RootWeights != nil {
		if err := s.SetRootWeights(w.cfg.RootWeights); err != nil {
			return nil, err
		}
	}
	w.repairer = s
	return s, nil
}

// encodeRepairResp frames the worker's repair patches behind the
// integrity trailer: patch count u32, then per patch the slot u32, the
// member count u32, and the members; then the baseline-correction
// deltas as pair count u32 + (node u32, decrement u32) pairs.
func encodeRepairResp(elapsed time.Duration, patches []rrset.Patch, deltas []DeltaPair) []byte {
	size := 4
	for _, p := range patches {
		size += 8 + 4*len(p.Members)
	}
	size += 4 + 8*len(deltas)
	b := make([]byte, 0, framePayloadOffset+size)
	b = append(b, 0)
	b = appendI64(b, elapsed.Nanoseconds())
	b = appendU32(b, 0) // payload length, patched below
	b = appendU32(b, 0) // CRC32C, patched below
	b = appendU32(b, uint32(len(patches)))
	for _, p := range patches {
		b = appendU32(b, uint32(p.Pos))
		b = appendU32(b, uint32(len(p.Members)))
		for _, m := range p.Members {
			b = appendU32(b, m)
		}
	}
	b = appendU32(b, uint32(len(deltas)))
	for _, d := range deltas {
		b = appendU32(b, d.Node)
		b = appendU32(b, uint32(d.Dec))
	}
	payload := b[framePayloadOffset:]
	binary.LittleEndian.PutUint32(b[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[13:17], checksum.Sum(payload))
	return b
}

// decodeRepairResp verifies and parses a repair response's patches and
// baseline-correction deltas.
func decodeRepairResp(worker int, rest []byte) ([]rrset.Patch, []DeltaPair, error) {
	payload, err := verifyFramePayload(worker, rest)
	if err != nil {
		return nil, nil, err
	}
	count, rest2, err := consumeU32(payload)
	if err != nil {
		return nil, nil, err
	}
	patches := make([]rrset.Patch, 0, min(int(count), len(rest2)/8+1))
	for i := uint32(0); i < count; i++ {
		var pos, l uint32
		if pos, rest2, err = consumeU32(rest2); err != nil {
			return nil, nil, err
		}
		if l, rest2, err = consumeU32(rest2); err != nil {
			return nil, nil, err
		}
		if int(l)*4 > len(rest2) {
			return nil, nil, &FrameIntegrityError{Worker: worker, Reason: fmt.Sprintf("repair patch %d truncated", i)}
		}
		members := make([]uint32, l)
		for j := uint32(0); j < l; j++ {
			members[j] = binary.LittleEndian.Uint32(rest2[j*4:])
		}
		rest2 = rest2[l*4:]
		patches = append(patches, rrset.Patch{Pos: int(pos), Members: members})
	}
	var pairs, rest3 = []DeltaPair(nil), rest2
	dcount, rest3, err := consumeU32(rest3)
	if err != nil {
		return nil, nil, &FrameIntegrityError{Worker: worker, Reason: "repair deltas header truncated"}
	}
	if int(dcount)*8 > len(rest3) {
		return nil, nil, &FrameIntegrityError{Worker: worker, Reason: "repair deltas truncated"}
	}
	for i := uint32(0); i < dcount; i++ {
		node := binary.LittleEndian.Uint32(rest3[i*8:])
		dec := int32(binary.LittleEndian.Uint32(rest3[i*8+4:]))
		pairs = append(pairs, DeltaPair{Node: node, Dec: dec})
	}
	rest3 = rest3[dcount*8:]
	if len(rest3) != 0 {
		return nil, nil, &FrameIntegrityError{Worker: worker, Reason: fmt.Sprintf(
			"%d trailing bytes after the declared repair deltas", len(rest3))}
	}
	return patches, pairs, nil
}

// Update broadcasts an edge-update batch to every live worker and
// returns each worker's repair patches (indexed by worker; nil for
// workers that repaired nothing). The patches carry worker-local RR
// positions — a master mirroring the shards via FetchNew maps them
// through its per-worker fetch spans.
//
// On worker loss the failover ladder runs first (a respawned replacement
// converges to post-repair bytes, see the file comment). If a worker is
// quarantined instead, its shard is regenerated on survivors — on the
// already-mutated graph, so the pooled sample stays i.i.d. and the
// certificate math survives — but shard positions shift, so mirrored
// masters cannot splice patches anymore: Update then returns a
// RebalancedError and the caller must refetch or resample its mirror.
func (c *Cluster) Update(b mutate.Batch) ([][]rrset.Patch, error) {
	if len(b.Ops) == 0 {
		return nil, fmt.Errorf("cluster: empty update batch")
	}
	req := encodeUpdateReq(b)
	resps, wall, downs, err := c.broadcast(c.same(req))
	if err != nil {
		return nil, err
	}
	patches := make([][]rrset.Patch, len(c.conns))
	handlers := make([]time.Duration, len(resps))
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		nanos, rest, err := decodeRespHeader(resp)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		handlers[i] = time.Duration(nanos)
		var pairs []DeltaPair
		if patches[i], pairs, err = decodeRepairResp(i, rest); err != nil {
			return nil, err
		}
		// Fold the worker's net baseline corrections in place: repaired
		// sets may cover different nodes now, and the in-place fold keeps
		// later greedy runs exact without the full O(θ) degree re-report a
		// rebuildBaseline would broadcast. (If a quarantine follows below,
		// the recovery path rebuilds from zero and overwrites this.)
		for _, p := range pairs {
			if int(p.Node) >= len(c.baseDeg) {
				return nil, &FrameIntegrityError{Worker: i, Reason: fmt.Sprintf(
					"repair delta node %d outside item space %d", p.Node, len(c.baseDeg))}
			}
			c.baseDeg[p.Node] += int64(p.Dec)
		}
		c.met.repairedSets.Add(int64(len(patches[i])))
		c.record(i, req, 0, 0)
	}
	c.met.updateCalls.Inc()
	c.account("gen", wall, handlers)
	if len(downs) > 0 {
		if err := c.repair(downs, nil); err != nil {
			return nil, err
		}
		return nil, &RebalancedError{Quarantined: downs}
	}
	return patches, nil
}
