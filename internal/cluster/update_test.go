package cluster

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"dimm/internal/checksum"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/mutate"
	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

// dynGraph builds a fresh, mutation-enabled copy of the deterministic
// test graph. Each call returns an independent instance with identical
// content, so workers of a simulated deployment can own private copies
// (ApplyUpdates is not safe for concurrent broadcast on a shared graph —
// the serve layer pre-applies under its own lock for that topology).
func dynGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := testGraph(t)
	g.EnableMutation()
	return g
}

// dynOps derives a deterministic update batch from the graph content:
// removals of existing edges, high-probability additions of absent edges
// (so the IC refined plan is exercised, not vacuously empty), and one
// reweight. Twin graph copies yield the same ops.
func dynOps(t testing.TB, g *graph.Graph) []graph.EdgeUpdate {
	t.Helper()
	var ops []graph.EdgeUpdate
	seen := make(map[[2]uint32]bool)
	for v := uint32(0); v < uint32(g.NumNodes()) && len(ops) < 10; v++ {
		adj, probs := g.InNeighbors(v)
		for i, u := range adj {
			if probs[i] > 0 && !seen[[2]uint32{u, v}] {
				seen[[2]uint32{u, v}] = true
				ops = append(ops, graph.EdgeUpdate{Op: graph.OpRemove, From: u, To: v})
				break
			}
		}
	}
	if len(ops) < 10 {
		t.Fatalf("test graph too sparse: only %d removable edges found", len(ops))
	}
	r := xrand.New(0xD15EA5E + g.Version())
	n := uint32(g.NumNodes())
	for added := 0; added < 6; {
		u, v := r.Uint32n(n), r.Uint32n(n)
		if u == v || seen[[2]uint32{u, v}] {
			continue
		}
		if _, probs := g.InNeighbors(v); hasLiveEdge(g, u, v, probs) {
			continue
		}
		seen[[2]uint32{u, v}] = true
		ops = append(ops, graph.EdgeUpdate{Op: graph.OpAdd, From: u, To: v, Prob: 0.9})
		added++
	}
	// Reweight one surviving edge to half its probability.
	for v := uint32(0); v < n; v++ {
		adj, probs := g.InNeighbors(v)
		for i, u := range adj {
			if probs[i] > 0 && !seen[[2]uint32{u, v}] {
				return append(ops, graph.EdgeUpdate{Op: graph.OpReweight, From: u, To: v, Prob: probs[i] / 2})
			}
		}
	}
	t.Fatal("no edge left to reweight")
	return nil
}

func hasLiveEdge(g *graph.Graph, u, v uint32, probs []float32) bool {
	adj, _ := g.InNeighbors(v)
	for i, w := range adj {
		if w == u && probs[i] > 0 {
			return true
		}
	}
	for _, e := range g.InOverlay(v) {
		if e.Node == u && e.Prob > 0 {
			return true
		}
	}
	return false
}

// dynCluster builds a machines-worker cluster where every worker owns a
// private graph copy, mirroring a real deployment. Returns the cluster
// and the per-worker graphs.
func dynCluster(t testing.TB, machines int, seed uint64) (*Cluster, []*graph.Graph) {
	t.Helper()
	graphs := make([]*graph.Graph, machines)
	cfgs := make([]WorkerConfig, machines)
	for i := range cfgs {
		graphs[i] = dynGraph(t)
		cfgs[i] = WorkerConfig{Graph: graphs[i], Model: diffusion.IC, Seed: DeriveSeed(seed, i)}
	}
	cl, err := NewLocal(cfgs, graphs[0].NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, graphs
}

// compareCollections asserts two RR collections are byte-identical.
func compareCollections(t *testing.T, got, want *rrset.Collection) {
	t.Helper()
	if got.Count() != want.Count() || got.TotalSize() != want.TotalSize() {
		t.Fatalf("collection shape %d sets / %d nodes, want %d / %d",
			got.Count(), got.TotalSize(), want.Count(), want.TotalSize())
	}
	for i := 0; i < got.Count(); i++ {
		a, b := got.Set(i), want.Set(i)
		if len(a) != len(b) {
			t.Fatalf("RR set %d has %d members, want %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("RR set %d differs at member %d: %d vs %d", i, j, a[j], b[j])
			}
		}
	}
}

// TestUpdateRequestWireRoundTrip covers the request codec and its
// integrity trailer.
func TestUpdateRequestWireRoundTrip(t *testing.T) {
	b := mutate.Batch{Seq: 7, Ops: []graph.EdgeUpdate{
		{Op: graph.OpAdd, From: 1, To: 2, Prob: 0.25},
		{Op: graph.OpRemove, From: 3, To: 4},
		{Op: graph.OpReweight, From: 5, To: 6, Prob: 0.75},
	}}
	req := encodeUpdateReq(b)
	if req[0] != msgUpdate {
		t.Fatalf("request tag %#x, want msgUpdate", req[0])
	}
	got, err := decodeUpdateReq(req[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != b.Seq || len(got.Ops) != len(b.Ops) {
		t.Fatalf("decoded %+v, want %+v", got, b)
	}
	for i := range b.Ops {
		if got.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d decoded %+v, want %+v", i, got.Ops[i], b.Ops[i])
		}
	}
	// A flipped payload bit must be caught by the CRC, not the decoder.
	bad := append([]byte(nil), req...)
	bad[len(bad)-1] ^= 0x40
	var ie *FrameIntegrityError
	if _, err := decodeUpdateReq(bad[1:]); !errors.As(err, &ie) {
		t.Fatalf("corrupted request decoded with %v, want *FrameIntegrityError", err)
	}
	// Trailing junk past the declared batch is rejected even with a valid
	// trailer over it.
	long := mutate.EncodeBatch(nil, b)
	long = append(long, 0xEE)
	framed := []byte{msgUpdate}
	framed = appendU32(framed, uint32(len(long)))
	framed = appendU32(framed, checksum.Sum(long))
	framed = append(framed, long...)
	if _, err := decodeUpdateReq(framed[1:]); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("oversized batch payload decoded with %v, want trailing-bytes error", err)
	}
}

// TestRepairRespWireRoundTrip covers the response codec, including the
// empty-repair frame and truncation defenses.
func TestRepairRespWireRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		patches []rrset.Patch
		deltas  []DeltaPair
	}{
		{nil, nil},
		{
			[]rrset.Patch{{Pos: 3, Members: []uint32{9, 1, 4}}, {Pos: 17, Members: nil}, {Pos: 40, Members: []uint32{2}}},
			[]DeltaPair{{Node: 1, Dec: -2}, {Node: 9, Dec: 3}},
		},
	} {
		patches := tc.patches
		frame := encodeRepairResp(time.Millisecond, patches, tc.deltas)
		nanos, rest, err := decodeRespHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		if nanos != time.Millisecond.Nanoseconds() {
			t.Fatalf("handler nanos %d, want %d", nanos, time.Millisecond.Nanoseconds())
		}
		got, pairs, err := decodeRepairResp(0, rest)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(patches) {
			t.Fatalf("decoded %d patches, want %d", len(got), len(patches))
		}
		for i, p := range patches {
			if got[i].Pos != p.Pos || len(got[i].Members) != len(p.Members) {
				t.Fatalf("patch %d decoded %+v, want %+v", i, got[i], p)
			}
			for j := range p.Members {
				if got[i].Members[j] != p.Members[j] {
					t.Fatalf("patch %d member %d: %d vs %d", i, j, got[i].Members[j], p.Members[j])
				}
			}
		}
		if len(pairs) != len(tc.deltas) {
			t.Fatalf("decoded %d deltas, want %d", len(pairs), len(tc.deltas))
		}
		for i, d := range tc.deltas {
			if pairs[i] != d {
				t.Fatalf("delta %d decoded %+v, want %+v", i, pairs[i], d)
			}
		}
	}
	// Truncating the member array of the last patch must fail typed.
	frame := encodeRepairResp(0, []rrset.Patch{{Pos: 0, Members: []uint32{1, 2, 3}}}, nil)
	short := frame[:len(frame)-4]
	patchLen := len(short) - framePayloadOffset
	// Re-stamp a consistent trailer so only the structural check can fire.
	reframed := append([]byte(nil), short[:9]...)
	reframed = appendU32(reframed, uint32(patchLen))
	reframed = appendU32(reframed, checksum.Sum(short[framePayloadOffset:]))
	reframed = append(reframed, short[framePayloadOffset:]...)
	var ie *FrameIntegrityError
	if _, _, err := decodeRepairResp(0, reframed[1:]); !errors.As(err, &ie) {
		t.Fatalf("truncated repair frame decoded with %v, want *FrameIntegrityError", err)
	}
}

// TestClusterUpdateRepairMatchesFresh is the cluster-level repair
// theorem: after Update, every worker's resident sample is byte-identical
// to what the same worker streams would have generated had the graph
// always been the post-update graph — so the pooled sample is i.i.d. on
// the new graph and certificate math carries over unchanged.
func TestClusterUpdateRepairMatchesFresh(t *testing.T) {
	const machines, perWorker = 3, 400
	cl, graphs := dynCluster(t, machines, 77)
	if _, err := cl.Generate(machines * perWorker); err != nil {
		t.Fatal(err)
	}
	ops := dynOps(t, graphs[0])
	patches, err := cl.Update(mutate.Batch{Seq: graphs[0].Version() + 1, Ops: ops})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	repaired := 0
	for _, ps := range patches {
		repaired += len(ps)
	}
	if repaired == 0 {
		t.Fatal("update repaired zero RR sets; the batch should touch the sample")
	}
	if repaired == machines*perWorker {
		t.Fatal("update repaired the whole sample; the refined plan is not refining")
	}
	met := cl.Metrics()
	if met.UpdateCalls != 1 || met.RepairedSets != int64(repaired) {
		t.Fatalf("metrics UpdateCalls=%d RepairedSets=%d, want 1 and %d", met.UpdateCalls, met.RepairedSets, repaired)
	}

	// Reference: same worker seeds generating on graphs that were mutated
	// BEFORE any sampling.
	refCl, refGraphs := dynCluster(t, machines, 77)
	for _, rg := range refGraphs {
		if _, _, err := rg.ApplyUpdates(rg.Version()+1, ops); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := refCl.Generate(machines * perWorker); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	want, err := refCl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	compareCollections(t, got, want)

	// The repaired cluster must keep functioning end to end: greedy
	// selection over the repaired baseline agrees with a recount.
	res, err := coverage.RunGreedy(cl.Oracle(), 5)
	if err != nil {
		t.Fatal(err)
	}
	recount, err := cl.CoverageOf(res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if recount != res.Coverage {
		t.Fatalf("post-update recount %d != greedy coverage %d", recount, res.Coverage)
	}
}

// TestClusterUpdateSecondBatch applies a second batch on the mutated
// graph (touching overlay state from the first) and checks the same
// freshness invariant.
func TestClusterUpdateSecondBatch(t *testing.T) {
	const machines, perWorker = 2, 300
	cl, graphs := dynCluster(t, machines, 13)
	if _, err := cl.Generate(machines * perWorker); err != nil {
		t.Fatal(err)
	}
	ops1 := dynOps(t, graphs[0])
	if _, err := cl.Update(mutate.Batch{Seq: 1, Ops: ops1}); err != nil {
		t.Fatal(err)
	}
	ops2 := dynOps(t, graphs[0]) // version-salted RNG: differs from ops1
	if _, err := cl.Update(mutate.Batch{Seq: 2, Ops: ops2}); err != nil {
		t.Fatal(err)
	}

	refCl, refGraphs := dynCluster(t, machines, 13)
	for _, rg := range refGraphs {
		if _, _, err := rg.ApplyUpdates(1, ops1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := rg.ApplyUpdates(2, ops2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := refCl.Generate(machines * perWorker); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	want, err := refCl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	compareCollections(t, got, want)
}

// TestUpdateRejections covers the typed refusals: frozen graph, empty
// batch, sample without lane provenance (ingested sets), and a stale
// sequence number surviving as a no-op.
func TestUpdateRejections(t *testing.T) {
	t.Run("frozen graph", func(t *testing.T) {
		g := testGraph(t) // mutation NOT enabled
		cl := localCluster(t, g, 1, diffusion.IC, 5)
		_, err := cl.Update(mutate.Batch{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.OpRemove, From: 0, To: 1}}})
		if err == nil || !strings.Contains(err.Error(), "frozen") {
			t.Fatalf("update on frozen graph: %v, want frozen-graph error", err)
		}
	})
	t.Run("empty batch", func(t *testing.T) {
		cl, _ := dynCluster(t, 1, 5)
		if _, err := cl.Update(mutate.Batch{Seq: 1}); err == nil {
			t.Fatal("empty batch accepted")
		}
	})
	t.Run("no lane provenance", func(t *testing.T) {
		cl, graphs := dynCluster(t, 1, 5)
		if _, err := cl.Generate(50); err != nil {
			t.Fatal(err)
		}
		if err := cl.Ingest(0, [][]uint32{{1, 2}, {3}}); err != nil {
			t.Fatal(err)
		}
		ops := dynOps(t, graphs[0])
		_, err := cl.Update(mutate.Batch{Seq: 1, Ops: ops})
		if err == nil || !strings.Contains(err.Error(), "lane provenance") {
			t.Fatalf("update over ingested sets: %v, want lane-provenance error", err)
		}
	})
	t.Run("stale seq no-ops", func(t *testing.T) {
		cl, graphs := dynCluster(t, 1, 5)
		if _, err := cl.Generate(100); err != nil {
			t.Fatal(err)
		}
		ops := dynOps(t, graphs[0])
		if _, err := cl.Update(mutate.Batch{Seq: 1, Ops: ops}); err != nil {
			t.Fatal(err)
		}
		before, err := cl.GatherAll()
		if err != nil {
			t.Fatal(err)
		}
		// Replaying the same batch must be harmless and leave the sample
		// unchanged (the recompute is value-idempotent).
		if _, err := cl.Update(mutate.Batch{Seq: 1, Ops: ops}); err != nil {
			t.Fatalf("idempotent replay: %v", err)
		}
		after, err := cl.GatherAll()
		if err != nil {
			t.Fatal(err)
		}
		compareCollections(t, after, before)
		if v := graphs[0].Version(); v != 1 {
			t.Fatalf("graph version %d after replay, want 1", v)
		}
	})
}

// dynFaultyCluster is dynCluster with the victim's conn wrapped in a
// FaultConn and replay-based recovery enabled. Respawned workers reuse
// the victim's graph instance, as a restarted process on the same host
// would reload the same (possibly already-mutated) graph state.
func dynFaultyCluster(t *testing.T, machines, victim int, seed uint64) (*Cluster, *FaultConn, []*graph.Graph) {
	t.Helper()
	graphs := make([]*graph.Graph, machines)
	cfgs := make([]WorkerConfig, machines)
	conns := make([]Conn, machines)
	var fc *FaultConn
	for i := range cfgs {
		graphs[i] = dynGraph(t)
		cfgs[i] = WorkerConfig{Graph: graphs[i], Model: diffusion.IC, Seed: DeriveSeed(seed, i)}
		w, err := NewWorker(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = NewLocalConn(w)
		if i == victim {
			fc = NewFaultConn(conns[i])
			conns[i] = fc
		}
	}
	cl, err := New(conns, graphs[0].NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.EnableRecovery(Recovery{
		Respawn: func(i int) (Conn, error) {
			w, err := NewWorker(cfgs[i])
			if err != nil {
				return nil, err
			}
			return NewLocalConn(w), nil
		},
		Retries: 2,
		Backoff: time.Millisecond,
		Salt:    seed,
	}); err != nil {
		t.Fatal(err)
	}
	return cl, fc, graphs
}

// driveUpdatePath is the deterministic call sequence the failover tests
// replay: generate, update, generate again (post-update growth), and a
// final gather.
func driveUpdatePath(t *testing.T, cl *Cluster, ops []graph.EdgeUpdate) *rrset.Collection {
	t.Helper()
	if _, err := cl.Generate(450); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Update(mutate.Batch{Seq: 1, Ops: ops}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Generate(150); err != nil {
		t.Fatal(err)
	}
	all, err := cl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	return all
}

// TestUpdateFailoverDeterminism is the ISSUE 8 determinism acceptance
// test: a worker killed around the update RPC and failed over by journal
// replay must hold exactly the bytes of the uninterrupted worker —
// whether the kill lands before the update executed (replay applies it
// fresh) or after (replay no-ops the apply and recomputes the repair
// idempotently).
func TestUpdateFailoverDeterminism(t *testing.T) {
	const machines, victim = 3, 1
	refOps := dynOps(t, dynGraph(t))
	refCl, _ := dynCluster(t, machines, 42)
	want := driveUpdatePath(t, refCl, refOps)

	// Worker call sequence: generate(1), degree sync(2), update(3),
	// rebuild-baseline setReported(4) + degreeDelta(5), generate(6), ...
	cases := map[string]func(*FaultConn){
		"killed before update executes": func(fc *FaultConn) { fc.KillAtCall(3) },
		"update reply dropped":          func(fc *FaultConn) { fc.DropReplyAt(3) },
		"killed mid rebuild":            func(fc *FaultConn) { fc.KillAtCall(4) },
		"killed on post-update growth":  func(fc *FaultConn) { fc.KillAtCall(6) },
	}
	for name, arm := range cases {
		t.Run(name, func(t *testing.T) {
			cl, fc, _ := dynFaultyCluster(t, machines, victim, 42)
			arm(fc)
			got := driveUpdatePath(t, cl, refOps)
			if fc.Faults() == 0 {
				t.Fatalf("fault never fired (%d calls made)", fc.Calls())
			}
			compareCollections(t, got, want)
			h := cl.Health()
			if !h[victim].Up || h[victim].Failovers == 0 {
				t.Fatalf("victim health after failover: %+v", h[victim])
			}
		})
	}
}

// TestUpdateQuarantineTypedError: when the victim cannot be respawned
// mid-update, Update must repair the cluster (regenerate the lost shard
// on survivors, on their post-update graphs) and surface the typed
// *RebalancedError — never a silent partial apply, never a panic.
func TestUpdateQuarantineTypedError(t *testing.T) {
	const machines, victim = 3, 2
	graphs := make([]*graph.Graph, machines)
	conns := make([]Conn, machines)
	var fc *FaultConn
	for i := range graphs {
		graphs[i] = dynGraph(t)
		w, err := NewWorker(WorkerConfig{Graph: graphs[i], Model: diffusion.IC, Seed: DeriveSeed(23, i)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = NewLocalConn(w)
		if i == victim {
			fc = NewFaultConn(conns[i])
			conns[i] = fc
		}
	}
	cl, err := New(conns, graphs[0].NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.EnableRecovery(Recovery{
		Respawn: func(i int) (Conn, error) { return nil, errors.New("worker host gone") },
		Retries: 1,
		Backoff: time.Millisecond,
		Salt:    23,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Generate(300); err != nil {
		t.Fatal(err)
	}
	fc.KillAtCall(3) // generate(1), sync(2), update(3)
	ops := dynOps(t, graphs[0])
	_, err = cl.Update(mutate.Batch{Seq: 1, Ops: ops})
	var reb *RebalancedError
	if !errors.As(err, &reb) {
		t.Fatalf("mid-update quarantine returned %v, want *RebalancedError", err)
	}
	if len(reb.Quarantined) != 1 || reb.Quarantined[0] != victim {
		t.Fatalf("quarantined %v, want [%d]", reb.Quarantined, victim)
	}
	if !IsWorkerLoss(err) {
		t.Fatal("RebalancedError not classified as worker loss")
	}
	// The rebalanced cluster holds a full-size sample on the mutated
	// graph and still selects consistently.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 300 {
		t.Fatalf("sample size %d after rebalance, want 300", stats.Count)
	}
	res, err := coverage.RunGreedy(cl.Oracle(), 5)
	if err != nil {
		t.Fatal(err)
	}
	recount, err := cl.CoverageOf(res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if recount != res.Coverage {
		t.Fatalf("recount %d != coverage %d", recount, res.Coverage)
	}
}

// TestUpdateOverTCP runs the update RPC through the real TCP transport:
// frame trailers verified on both sides, repair patches decoded from the
// wire, and the remote worker's post-repair shard matching an in-process
// worker driven identically.
func TestUpdateOverTCP(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(lis, func() (*Worker, error) {
		return NewWorker(WorkerConfig{Graph: dynGraph(t), Model: diffusion.IC, Seed: 9})
	})
	conn, err := DialWorker(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New([]Conn{conn}, dynGraph(t).NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	localG := dynGraph(t)
	localW, err := NewWorker(WorkerConfig{Graph: localG, Model: diffusion.IC, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	localCl, err := New([]Conn{NewLocalConn(localW)}, localG.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer localCl.Close()

	ops := dynOps(t, dynGraph(t))
	var tcpPatches, localPatches [][]rrset.Patch
	for _, c := range []*Cluster{cl, localCl} {
		if _, err := c.Generate(200); err != nil {
			t.Fatal(err)
		}
		ps, err := c.Update(mutate.Batch{Seq: 1, Ops: ops})
		if err != nil {
			t.Fatal(err)
		}
		if c == cl {
			tcpPatches = ps
		} else {
			localPatches = ps
		}
	}
	if len(tcpPatches[0]) == 0 || len(tcpPatches[0]) != len(localPatches[0]) {
		t.Fatalf("TCP repair returned %d patches, local %d", len(tcpPatches[0]), len(localPatches[0]))
	}
	for i := range tcpPatches[0] {
		a, b := tcpPatches[0][i], localPatches[0][i]
		if a.Pos != b.Pos || len(a.Members) != len(b.Members) {
			t.Fatalf("patch %d: TCP %+v vs local %+v", i, a, b)
		}
		for j := range a.Members {
			if a.Members[j] != b.Members[j] {
				t.Fatalf("patch %d member %d differs", i, j)
			}
		}
	}
	got, err := cl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	want, err := localCl.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	compareCollections(t, got, want)
}
