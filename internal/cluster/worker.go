package cluster

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"slices"
	"time"

	"dimm/internal/bitset"
	"dimm/internal/checksum"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

// WorkerConfig describes one slave machine s_i.
type WorkerConfig struct {
	Graph  *graph.Graph
	Model  diffusion.Model
	Subset bool   // use the SUBSIM subset-sampling generator
	Seed   uint64 // this machine's RNG stream (derive with xrand.MachineSeed)
	// RootWeights, when non-nil, draws RR-set roots proportionally to the
	// given per-node weights (targeted influence maximization).
	RootWeights []float64
	// Parallelism is the number of intra-worker goroutines, used on both
	// sides of the algorithm: RR-generation shards and the map-stage
	// Select kernel. 0 or 1 runs sequentially on the handler goroutine;
	// P > 1 runs P deterministic shard streams merged in shard order
	// (rrset.ShardedSampler for generation, coverage.SelectKernel for
	// selection), modeling a machine with P cores. Generated samples
	// depend on (Seed, Parallelism) — so all workers of a reproducible
	// run must agree on P — while Select output is bit-identical at
	// every P.
	Parallelism int
	// Batch is the frontier-batch width B of each generation shard
	// (rrset.BatchSampler): how many RR traversals advance per adjacency
	// pass. 0 selects rrset.DefaultBatch — safe, because the batched
	// kernel's output is bit-identical to the scalar sampler's at every
	// width, so B is a pure performance knob and, unlike Parallelism, is
	// NOT part of the stream identity. 1 forces the scalar kernel.
	Batch int
}

// ResolveBatch maps a Batch knob value to the effective sampler width:
// 0 → rrset.DefaultBatch, anything below 1 → 1 (scalar).
func ResolveBatch(b int) int {
	if b == 0 {
		return rrset.DefaultBatch
	}
	if b < 1 {
		return 1
	}
	return b
}

// Worker is the slave-side state of Algorithm 1 and the distributed RIS
// sampler: it owns a shard R_i of the RR sets, the inverted index I_i, the
// covered labels, and the scratch for the map stage. A Worker handles one
// request at a time (the transports serialize per-worker requests).
type Worker struct {
	cfg     WorkerConfig
	sampler *rrset.ShardedSampler
	sim     *diffusion.Simulator // lazily built for msgEstimate
	coll    *rrset.Collection

	idx     *rrset.Index // lazily built, then extended incrementally
	covered *bitset.Bits // per-RR-set covered labels (1 bit each)
	kern    *coverage.SelectKernel
	// decScratch/touched are the degree-sync scratch (msgDegreeDelta);
	// the per-seed map stage runs on kern instead.
	decScratch []int32
	touched    []uint32

	// covMark is an epoch-stamped mark array over RR-set ids used by
	// coverageOf: marking is covMark[j] = covEpoch, so repeated coverage
	// queries allocate nothing once the array fits the collection.
	covMark  []uint32
	covEpoch uint32

	// reported is how many RR sets have had their coverage shipped to the
	// master via msgDegreeDelta — the traffic optimization of §III-C that
	// sends only the coverage of *newly generated* RR sets.
	reported int

	// auxBatch accumulates the batching counters of the one-shot
	// rebalance samplers (generateAux), which are discarded after use;
	// the worker's stats replies report its resident sampler's counters
	// plus this remainder.
	auxBatch rrset.BatchStats

	// lanes[t] is the lane seed RR set t was generated from — the repair
	// provenance of the dynamic-graph subsystem (internal/mutate). Every
	// generation path appends here (peeked via AppendLaneSeeds before
	// sampling, so the seeds match the merge order of the sets); ingest
	// does not, which handleUpdate detects via lanesComplete.
	lanes []uint64
	// repairer is the lazily built scalar sampler used only for
	// ResampleLane during incremental repair.
	repairer *rrset.Sampler

	pairBuf []DeltaPair

	// degStamp/degRound dedupe the nodes repairDeltas touches. Its
	// corrections are signed and can transit zero, so degreeDelta's
	// decScratch==0 first-touch test would double-append; a per-round
	// stamp cannot.
	degStamp []uint32
	degRound uint32
}

// stats assembles the worker's cumulative collection and batching
// statistics for a stats-bearing reply.
func (w *Worker) stats() GenerateStats {
	s := GenerateStats{
		Count:         int64(w.coll.Count()),
		TotalSize:     w.coll.TotalSize(),
		EdgesExamined: w.coll.EdgesExamined(),
		Batch:         w.auxBatch,
	}
	if w.sampler != nil {
		s.Batch.Add(w.sampler.BatchStats())
	}
	return s
}

// NewWorker builds a worker. The graph may be nil for workers that only
// serve ingested max-coverage lists (no sampling possible then).
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	w := &Worker{
		cfg:  cfg,
		coll: rrset.NewCollection(1 << 16),
	}
	if cfg.Graph != nil {
		s, err := rrset.NewShardedSamplerBatch(cfg.Graph, cfg.Model, cfg.Seed, cfg.Subset, cfg.Parallelism, ResolveBatch(cfg.Batch))
		if err != nil {
			return nil, err
		}
		if cfg.RootWeights != nil {
			if err := s.SetRootWeights(cfg.RootWeights); err != nil {
				return nil, err
			}
		}
		w.sampler = s
		w.decScratch = make([]int32, cfg.Graph.NumNodes())
	}
	w.kern = coverage.NewSelectKernel(len(w.decScratch), cfg.Parallelism)
	return w, nil
}

// numItems is the size of the selectable-item space.
func (w *Worker) numItems() int { return len(w.decScratch) }

// Handle processes one request frame and returns the response frame.
// It never panics on malformed input; errors come back as msgError frames.
func (w *Worker) Handle(req []byte) []byte {
	resp, err := w.dispatch(req)
	if err != nil {
		return encodeErrorResp(err)
	}
	return resp
}

func (w *Worker) dispatch(req []byte) ([]byte, error) {
	if len(req) == 0 {
		return nil, fmt.Errorf("empty request")
	}
	start := time.Now()
	switch req[0] {
	case msgGenerate:
		count, _, err := consumeI64(req[1:])
		if err != nil {
			return nil, err
		}
		if w.sampler == nil {
			return nil, fmt.Errorf("worker has no graph; cannot generate RR sets")
		}
		if count < 0 {
			return nil, fmt.Errorf("negative generation count %d", count)
		}
		if count > maxGenerateBatch {
			// A corrupt or hostile frame must not be able to wedge the
			// worker in an effectively unbounded sampling loop; any real
			// θ split across machines fits comfortably under this cap
			// (masters needing more issue multiple requests).
			return nil, fmt.Errorf("generation count %d exceeds the per-request cap %d", count, int64(maxGenerateBatch))
		}
		// Journal the new sets' lane seeds before sampling advances the
		// shard counters (repair provenance; see the lanes field).
		w.lanes = w.sampler.AppendLaneSeeds(w.lanes, count)
		w.sampler.SampleManyInto(w.coll, count)
		// The index is NOT invalidated here: ensureIndex extends it
		// incrementally over just the new RR sets (Index.AppendFrom).
		return encodeStatsResp(0, time.Since(start).Nanoseconds(), w.stats()), nil

	case msgDegreeDelta:
		pairs, err := w.degreeDelta()
		if err != nil {
			return nil, err
		}
		return encodeDeltasResp(time.Since(start).Nanoseconds(), pairs, w.numItems()), nil

	case msgBeginSelect:
		if err := w.beginSelection(); err != nil {
			return nil, err
		}
		return encodeAckResp(time.Since(start).Nanoseconds()), nil

	case msgSelect:
		node, _, err := consumeU32(req[1:])
		if err != nil {
			return nil, err
		}
		pairs, err := w.selectSeed(node)
		if err != nil {
			return nil, err
		}
		return encodeDeltasResp(time.Since(start).Nanoseconds(), pairs, w.numItems()), nil

	case msgStats:
		return encodeStatsResp(0, time.Since(start).Nanoseconds(), w.stats()), nil

	case msgReset:
		w.coll = rrset.NewCollection(1 << 16)
		w.idx = nil
		w.covered = nil
		w.reported = 0
		w.lanes = w.lanes[:0]
		return encodeAckResp(time.Since(start).Nanoseconds()), nil

	case msgIngest:
		if err := w.ingest(req[1:]); err != nil {
			return nil, err
		}
		return encodeAckResp(time.Since(start).Nanoseconds()), nil

	case msgFetchAll:
		return w.fetchRange(start, 0), nil

	case msgFetchSince:
		from, _, err := consumeI64(req[1:])
		if err != nil {
			return nil, err
		}
		if from < 0 || from > int64(w.coll.Count()) {
			return nil, fmt.Errorf("fetch-since id %d outside [0, %d]", from, w.coll.Count())
		}
		return w.fetchRange(start, int(from)), nil

	case msgEstimate:
		seeds, rounds, err := decodeEstimateReq(req[1:])
		if err != nil {
			return nil, err
		}
		return w.estimate(seeds, rounds, start)

	case msgSetReported:
		count, _, err := consumeI64(req[1:])
		if err != nil {
			return nil, err
		}
		if count < 0 || count > int64(w.coll.Count()) {
			return nil, fmt.Errorf("degree-delta cursor %d outside [0, %d]", count, w.coll.Count())
		}
		w.reported = int(count)
		return encodeAckResp(time.Since(start).Nanoseconds()), nil

	case msgGenerateAux:
		streamSeed, count, err := decodeGenerateAuxReq(req[1:])
		if err != nil {
			return nil, err
		}
		if err := w.generateAux(streamSeed, count); err != nil {
			return nil, err
		}
		return encodeStatsResp(0, time.Since(start).Nanoseconds(), w.stats()), nil

	case msgUpdate:
		return w.handleUpdate(req[1:], start)

	case msgCoverage:
		seeds, err := decodeCoverageReq(req[1:])
		if err != nil {
			return nil, err
		}
		covered, err := w.coverageOf(seeds)
		if err != nil {
			return nil, err
		}
		b := make([]byte, 0, 1+8+8)
		b = append(b, 0)
		b = appendI64(b, time.Since(start).Nanoseconds())
		b = appendI64(b, covered)
		return b, nil

	default:
		return nil, fmt.Errorf("unknown request tag %#x", req[0])
	}
}

// maxGenerateBatch bounds a single generation request (2^32 RR sets);
// see the msgGenerate handler.
const maxGenerateBatch = int64(1) << 32

// maxIngestItemCount bounds the item space a remote master may declare.
// Untrusted frames must not be able to trigger multi-gigabyte
// allocations; 2^28 items already allows a billion-edge instance while
// capping the scratch vector at 1 GiB.
const maxIngestItemCount = 1 << 28

// ingest loads explicit element lists as this worker's shard. The request
// carries the global item count so that all workers agree on the item
// space regardless of which ids their shard happens to contain.
func (w *Worker) ingest(payload []byte) error {
	itemCount, rest, err := consumeU32(payload)
	if err != nil {
		return err
	}
	if itemCount > maxIngestItemCount {
		return fmt.Errorf("ingest item count %d exceeds the %d limit", itemCount, maxIngestItemCount)
	}
	numLists, rest, err := consumeU32(rest)
	if err != nil {
		return err
	}
	// Do not trust numLists for preallocation: a corrupt frame could
	// claim billions. Each parsed list is bounds-checked against the
	// remaining payload, so growth is naturally capped by frame size.
	lists := make([][]uint32, 0, min(int(numLists), len(rest)/4+1))
	for i := uint32(0); i < numLists; i++ {
		var l uint32
		if l, rest, err = consumeU32(rest); err != nil {
			return err
		}
		if int(l)*4 > len(rest) {
			return fmt.Errorf("ingest list %d truncated", i)
		}
		members := make([]uint32, l)
		for j := uint32(0); j < l; j++ {
			members[j] = binary.LittleEndian.Uint32(rest[j*4:])
			if members[j] >= itemCount {
				return fmt.Errorf("ingest member %d outside item space %d", members[j], itemCount)
			}
		}
		rest = rest[l*4:]
		lists = append(lists, members)
	}
	for _, members := range lists {
		w.coll.Append(members, 0)
	}
	if need := int(itemCount); need > len(w.decScratch) {
		grown := make([]int32, need)
		copy(grown, w.decScratch)
		w.decScratch = grown
		w.kern.Grow(need)
	}
	w.idx = nil
	return nil
}

// generateAux appends count RR sets drawn from a one-shot sampler seeded
// with streamSeed instead of this worker's own stream. The rebalance path
// regenerates a quarantined worker's lost quota this way: any machine can
// host the replacement stream because RR sets are i.i.d. regardless of
// which machine samples them (Corollary 1) — the seed, not the host,
// identifies the stream. The auxiliary sampler shares the worker's graph,
// model and parallelism so the stream is reproducible on any peer.
func (w *Worker) generateAux(streamSeed uint64, count int64) error {
	if w.sampler == nil {
		return fmt.Errorf("worker has no graph; cannot generate RR sets")
	}
	if count < 0 {
		return fmt.Errorf("negative generation count %d", count)
	}
	if count > maxGenerateBatch {
		return fmt.Errorf("generation count %d exceeds the per-request cap %d", count, int64(maxGenerateBatch))
	}
	aux, err := rrset.NewShardedSamplerBatch(w.cfg.Graph, w.cfg.Model, streamSeed, w.cfg.Subset, w.cfg.Parallelism, ResolveBatch(w.cfg.Batch))
	if err != nil {
		return err
	}
	if w.cfg.RootWeights != nil {
		if err := aux.SetRootWeights(w.cfg.RootWeights); err != nil {
			return err
		}
	}
	w.lanes = aux.AppendLaneSeeds(w.lanes, count)
	aux.SampleManyInto(w.coll, count)
	w.auxBatch.Add(aux.BatchStats())
	return nil
}

// ensureIndex brings the inverted index up to date with the collection.
// The first call builds it; later calls extend it incrementally over only
// the RR sets generated since (Index.AppendFrom, O(new size)), instead of
// the historic O(total size) rebuild per DIIMM doubling round. Ingest and
// reset drop the index (w.idx = nil) because they can change the item
// space; generation never does.
func (w *Worker) ensureIndex() error {
	if w.idx == nil {
		idx, err := rrset.BuildIndex(w.coll, w.numItems())
		if err != nil {
			return err
		}
		w.idx = idx
		return nil
	}
	return w.idx.AppendFrom(w.coll, w.idx.Count())
}

// degreeDelta returns coverage counts over RR sets added since the last
// call (Algorithm 1 line 3 with the §III-C incremental-sync optimization).
func (w *Worker) degreeDelta() ([]DeltaPair, error) {
	w.touched = w.touched[:0]
	for i := w.reported; i < w.coll.Count(); i++ {
		for _, v := range w.coll.Set(i) {
			if int(v) >= len(w.decScratch) {
				return nil, fmt.Errorf("RR member %d outside item space %d", v, len(w.decScratch))
			}
			if w.decScratch[v] == 0 {
				w.touched = append(w.touched, v)
			}
			w.decScratch[v]++
		}
	}
	w.reported = w.coll.Count()
	return w.drainScratch(), nil
}

// beginSelection relabels every RR set uncovered (Algorithm 1 line 2) and
// makes sure the index covers the whole collection.
func (w *Worker) beginSelection() error {
	if err := w.ensureIndex(); err != nil {
		return err
	}
	if w.covered == nil {
		w.covered = bitset.New(w.coll.Count())
	} else {
		w.covered.Reset(w.coll.Count())
	}
	return nil
}

// selectSeed is the map stage (Algorithm 1 lines 14–21) for new seed u,
// run on the shared coverage.SelectKernel: cfg.Parallelism goroutines
// over contiguous chunks of the covers list, merged in shard order so
// the reply frame is bit-identical at every parallelism level.
func (w *Worker) selectSeed(u uint32) ([]DeltaPair, error) {
	if w.idx == nil || w.covered == nil || w.covered.Len() != w.coll.Count() {
		return nil, fmt.Errorf("select before beginSelection")
	}
	if int(u) >= w.numItems() {
		return nil, fmt.Errorf("seed %d outside item space %d", u, w.numItems())
	}
	w.kern.Select(w.coll, w.idx, w.covered, u)
	w.pairBuf = w.pairBuf[:0]
	w.kern.Drain(func(node uint32, dec int32) {
		w.pairBuf = append(w.pairBuf, DeltaPair{Node: node, Dec: dec})
	})
	sortPairs(w.pairBuf)
	return w.pairBuf, nil
}

// fetchRange serializes the worker's RR sets [from, Count()). With from
// = 0 this is the gather-all strategy of Haque and Banerjee that §II-B
// argues against (kept as a measurable baseline: Θ(total RR size) bytes
// versus NEWGREEDI's O(k·n) per selection run); with a positive from it
// is the incremental sync a resident query service issues after each
// generation round, whose traffic is Θ(new RR size) only.
//
// Fetch responses are the one place a corrupted frame could silently
// poison the sample (every other message type is counts and deltas the
// master cross-checks), so the payload travels behind an integrity
// trailer — declared length u32 + CRC32C u32 — that the master verifies
// before decoding (verifyFramePayload).
func (w *Worker) fetchRange(start time.Time, from int) []byte {
	b := make([]byte, 0, framePayloadOffset+w.coll.WireSizeRange(from))
	b = append(b, 0)
	b = appendI64(b, 0) // handler nanos patched below
	b = appendU32(b, 0) // declared payload length, patched below
	b = appendU32(b, 0) // CRC32C of the payload, patched below
	b = w.coll.AppendWireRange(b, from)
	payload := b[framePayloadOffset:]
	binary.LittleEndian.PutUint32(b[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[13:17], checksum.Sum(payload))
	binary.LittleEndian.PutUint64(b[1:9], uint64(time.Since(start).Nanoseconds()))
	return b
}

// estimate runs forward Monte-Carlo simulations of the seed set on this
// worker's share of rounds — the distributed influence-estimation service
// of Lucier et al. / Nguyen et al. discussed in §II-B. The reply carries
// the sum of cascade sizes so the master can aggregate an exact mean.
func (w *Worker) estimate(seeds []uint32, rounds int64, start time.Time) ([]byte, error) {
	if w.cfg.Graph == nil {
		return nil, fmt.Errorf("worker has no graph; cannot simulate")
	}
	if rounds < 0 {
		return nil, fmt.Errorf("negative round count %d", rounds)
	}
	if rounds > maxGenerateBatch {
		return nil, fmt.Errorf("round count %d exceeds the per-request cap %d", rounds, int64(maxGenerateBatch))
	}
	n := w.cfg.Graph.NumNodes()
	for _, s := range seeds {
		if int(s) >= n {
			return nil, fmt.Errorf("seed %d outside graph of %d nodes", s, n)
		}
	}
	if w.sim == nil {
		w.sim = diffusion.NewSimulator(w.cfg.Graph, w.cfg.Seed^0xE57)
	}
	var sum, sumSq int64
	for i := int64(0); i < rounds; i++ {
		x := int64(w.sim.RunOnce(seeds, w.cfg.Model))
		sum += x
		sumSq += x * x
	}
	b := make([]byte, 0, 1+8+24)
	b = append(b, 0)
	b = appendI64(b, time.Since(start).Nanoseconds())
	b = appendI64(b, rounds)
	b = appendI64(b, sum)
	b = appendI64(b, sumSq)
	return b, nil
}

// coverageOf counts this worker's RR sets covered by the seed set,
// without disturbing any in-progress selection state. Deduplication uses
// the reusable epoch-stamped covMark array over RR-set ids: zero
// steady-state allocation, versus the map the historic implementation
// built per request.
func (w *Worker) coverageOf(seeds []uint32) (int64, error) {
	if err := w.ensureIndex(); err != nil {
		return 0, err
	}
	if len(w.covMark) < w.coll.Count() {
		w.covMark = make([]uint32, w.coll.Count())
		w.covEpoch = 0
	}
	w.covEpoch++
	if w.covEpoch == 0 { // epoch wrapped: stale stamps could collide
		clear(w.covMark)
		w.covEpoch = 1
	}
	var covered int64
	for _, s := range seeds {
		if int(s) >= w.numItems() {
			return 0, fmt.Errorf("seed %d outside item space %d", s, w.numItems())
		}
		for si := 0; si < w.idx.NumSegments(); si++ {
			for _, j := range w.idx.SegCovers(si, s) {
				if j&rrset.DeadPosting != 0 {
					continue
				}
				if w.covMark[j] != w.covEpoch {
					w.covMark[j] = w.covEpoch
					covered++
				}
			}
		}
	}
	return covered, nil
}

// drainScratch converts the touched counters into delta pairs and resets
// the scratch for the next call.
func (w *Worker) drainScratch() []DeltaPair {
	w.pairBuf = w.pairBuf[:0]
	for _, v := range w.touched {
		w.pairBuf = append(w.pairBuf, DeltaPair{Node: v, Dec: w.decScratch[v]})
		w.decScratch[v] = 0
	}
	sortPairs(w.pairBuf)
	return w.pairBuf
}

// sortPairs orders delta pairs by ascending node id before they hit the
// wire: the adaptive encoder gap-codes node ids (small positive gaps
// compress best) and its dense form requires ascending unique nodes.
func sortPairs(pairs []DeltaPair) {
	slices.SortFunc(pairs, func(a, b DeltaPair) int { return cmp.Compare(a.Node, b.Node) })
}

// DeriveSeed is a convenience re-export so callers do not import xrand
// just to seed workers consistently.
func DeriveSeed(base uint64, machine int) uint64 {
	return xrand.MachineSeed(base, machine)
}
