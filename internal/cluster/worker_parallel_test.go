package cluster

import (
	"testing"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/rrset"
)

func mustAck(t *testing.T, w *Worker, req []byte) {
	t.Helper()
	if _, _, err := decodeRespHeader(w.Handle(req)); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerIncrementalIndex asserts the DIIMM doubling loop never
// rebuilds the inverted index: after generate → select → generate →
// select the worker has done exactly one full build, extended by one
// segment per round, and the segmented index answers Covers identically
// to a from-scratch build over the same collection.
func TestWorkerIncrementalIndex(t *testing.T) {
	g := testGraph(t)
	w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	mustAck(t, w, encodeGenerateReq(100))
	mustAck(t, w, encodeSimpleReq(msgBeginSelect))
	if w.idx.FullBuilds() != 1 || w.idx.NumSegments() != 1 {
		t.Fatalf("after first round: %d full builds, %d segments", w.idx.FullBuilds(), w.idx.NumSegments())
	}
	mustAck(t, w, encodeGenerateReq(200))
	mustAck(t, w, encodeSimpleReq(msgBeginSelect))
	if w.idx.FullBuilds() != 1 {
		t.Fatalf("doubling round triggered a full rebuild (%d builds)", w.idx.FullBuilds())
	}
	if w.idx.NumSegments() != 2 || w.idx.Count() != 300 {
		t.Fatalf("after second round: %d segments over %d sets, want 2 over 300",
			w.idx.NumSegments(), w.idx.Count())
	}
	ref, err := rrset.BuildIndex(w.coll, w.numItems())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < w.numItems(); v++ {
		want := ref.Covers(uint32(v))
		got := w.idx.Covers(uint32(v))
		if len(want) != len(got) {
			t.Fatalf("node %d: %d covering sets, want %d", v, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("node %d: incremental index diverges from full build at %d", v, i)
			}
		}
	}
}

// TestParallelClusterDeterministic: with an explicit Parallelism, a full
// generate+greedy run is a pure function of (seed, ℓ, P) — two clusters
// built alike agree seed for seed, on every transport the local cluster
// models.
func TestParallelClusterDeterministic(t *testing.T) {
	g := testGraph(t)
	run := func(p int) ([]uint32, int64) {
		cfgs := make([]WorkerConfig, 2)
		for i := range cfgs {
			cfgs[i] = WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(41, i), Parallelism: p}
		}
		cl, err := NewLocal(cfgs, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if _, err := cl.Generate(600); err != nil {
			t.Fatal(err)
		}
		res, err := coverage.RunGreedy(cl.Oracle(), 8)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seeds, res.Coverage
	}
	for _, p := range []int{2, 4} {
		s1, c1 := run(p)
		s2, c2 := run(p)
		if c1 != c2 {
			t.Fatalf("P=%d: coverage %d vs %d across identical runs", p, c1, c2)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("P=%d: seed %d differs across identical runs: %v vs %v", p, i, s1, s2)
			}
		}
	}
	// P=1 must match the zero-value (sequential) configuration exactly.
	s0, c0 := run(0)
	s1, c1 := run(1)
	if c0 != c1 {
		t.Fatalf("P=1 coverage %d != sequential %d", c1, c0)
	}
	for i := range s0 {
		if s0[i] != s1[i] {
			t.Fatalf("P=1 seeds %v != sequential %v", s1, s0)
		}
	}
}

// TestCoverageOfEpochMarks hits the reusable mark array across repeated
// and interleaved coverage queries, checking against an independent
// recount each time. It also crosses an epoch wrap.
func TestCoverageOfEpochMarks(t *testing.T) {
	g := testGraph(t)
	w, err := NewWorker(WorkerConfig{Graph: g, Model: diffusion.IC, Seed: DeriveSeed(8, 0), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustAck(t, w, encodeGenerateReq(400))
	seedSets := [][]uint32{{0}, {1, 2, 3}, {0}, {5, 5, 5}, {}, {7, 11, 13, 17}}
	check := func() {
		t.Helper()
		for _, seeds := range seedSets {
			got, err := w.coverageOf(seeds)
			if err != nil {
				t.Fatal(err)
			}
			if want := coverage.CoverageOf(w.coll, seeds); got != want {
				t.Fatalf("coverageOf(%v) = %d, want %d", seeds, got, want)
			}
		}
	}
	check()
	// Growing the collection mid-stream must extend both index and marks.
	mustAck(t, w, encodeGenerateReq(150))
	check()
	// Force the epoch counter over the uint32 wrap: stale stamps from the
	// pre-wrap queries must not count as covered.
	w.covEpoch = ^uint32(0) - 1
	check()
	if w.covEpoch >= ^uint32(0)-1 {
		t.Fatalf("epoch did not advance across the wrap: %d", w.covEpoch)
	}
}
