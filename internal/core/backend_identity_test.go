package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

// TestDIIMMBackendIdentity pins the out-of-core contract at the level
// users observe it: a DIIMM run over an mmap-backed segmented graph
// selects exactly the seeds of the same run over the heap-backed graph,
// across parallelism and batch-width settings. The graph substrate swap
// must be invisible to the algorithm — same θ, same coverage, same
// seeds, same certified spread.
func TestDIIMMBackendIdentity(t *testing.T) {
	g := testGraph(t, 400)
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := graph.WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}
	mem, err := graph.OpenSegmented(path, graph.BackendMem)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	mmap, err := graph.OpenSegmented(path, graph.BackendMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer mmap.Close()

	for _, p := range []int{1, 4} {
		for _, b := range []int{1, 64} {
			opt := Options{
				K: 5, Eps: 0.4, Delta: 0.05, Machines: 2,
				Model: diffusion.IC, Seed: 99, Parallelism: p, Batch: b,
			}
			want, err := RunDIIMM(g, opt)
			if err != nil {
				t.Fatalf("P=%d B=%d heap run: %v", p, b, err)
			}
			for _, bg := range []struct {
				name string
				g    *graph.Graph
			}{{"mem", mem}, {"mmap", mmap}} {
				got, err := RunDIIMM(bg.g, opt)
				if err != nil {
					t.Fatalf("P=%d B=%d %s run: %v", p, b, bg.name, err)
				}
				if got.Theta != want.Theta || got.Coverage != want.Coverage {
					t.Fatalf("P=%d B=%d %s: θ=%d cov=%d, want θ=%d cov=%d",
						p, b, bg.name, got.Theta, got.Coverage, want.Theta, want.Coverage)
				}
				if !reflect.DeepEqual(got.Seeds, want.Seeds) {
					t.Fatalf("P=%d B=%d %s seeds %v, want %v", p, b, bg.name, got.Seeds, want.Seeds)
				}
				if got.EstSpread != want.EstSpread {
					t.Fatalf("P=%d B=%d %s spread %v, want %v", p, b, bg.name, got.EstSpread, want.EstSpread)
				}
			}
		}
	}
}
