package core

import (
	"math"
	"testing"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/imm"
)

func testGraph(t testing.TB, nodes int) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: nodes, AvgDegree: 6, Seed: 31, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return wc
}

// TestDIIMMEqualsIMM is the paper's headline correctness claim: "no matter
// how many machines or cores are used, the influence spread of DIIMM is
// the same as that of IMM" — with matched per-machine streams, DIIMM at
// ℓ=1 must reproduce the sequential IMM run exactly.
func TestDIIMMEqualsIMM(t *testing.T) {
	g := testGraph(t, 300)
	opt := Options{K: 5, Eps: 0.4, Delta: 0.05, Machines: 1, Model: diffusion.IC, Seed: 123}
	dres, err := RunDIIMM(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := imm.ComputeParams(g.NumNodes(), opt.K, opt.Eps, opt.Delta)
	if err != nil {
		t.Fatal(err)
	}
	// The ℓ=1 worker samples from DeriveSeed(Seed, 0).
	e, err := imm.NewLocalEngine(g, diffusion.IC, false, deriveSeed0(opt.Seed))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := imm.Run(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Theta != sres.Theta || dres.Coverage != sres.Coverage {
		t.Fatalf("DIIMM(ℓ=1) θ=%d cov=%d vs IMM θ=%d cov=%d",
			dres.Theta, dres.Coverage, sres.Theta, sres.Coverage)
	}
	for i := range sres.Seeds {
		if dres.Seeds[i] != sres.Seeds[i] {
			t.Fatalf("seed %d: DIIMM %v vs IMM %v", i, dres.Seeds, sres.Seeds)
		}
	}
}

func deriveSeed0(base uint64) uint64 {
	return cluster.DeriveSeed(base, 0)
}

// TestDIIMMSpreadStableAcrossMachineCounts: the approximation guarantee is
// independent of ℓ; estimated spreads across machine counts must agree
// within the ε-band.
func TestDIIMMSpreadStableAcrossMachineCounts(t *testing.T) {
	g := testGraph(t, 400)
	var spreads []float64
	for _, machines := range []int{1, 2, 4, 8} {
		res, err := RunDIIMM(g, Options{K: 5, Eps: 0.4, Delta: 0.05, Machines: machines, Model: diffusion.IC, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != 5 {
			t.Fatalf("ℓ=%d returned %d seeds", machines, len(res.Seeds))
		}
		spreads = append(spreads, res.EstSpread)
	}
	for i := 1; i < len(spreads); i++ {
		if math.Abs(spreads[i]-spreads[0]) > 0.2*spreads[0] {
			t.Fatalf("spread drifted across ℓ: %v", spreads)
		}
	}
}

// TestDIIMMWorkSharing: with ℓ machines the per-machine (critical-path)
// generation time must drop well below the sequential-equivalent total —
// the quantity behind the paper's Fig. 5/6 speedups.
func TestDIIMMWorkSharing(t *testing.T) {
	g := testGraph(t, 500)
	res, err := RunDIIMM(g, Options{K: 10, Eps: 0.3, Delta: 0.05, Machines: 8, Model: diffusion.IC, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.GenTotal == 0 {
		t.Fatal("no generation time recorded")
	}
	ratio := float64(m.GenTotal) / float64(m.GenCritical)
	if ratio < 3 {
		t.Fatalf("8 machines achieved only %.1fx generation sharing", ratio)
	}
	if res.Stats.Count != res.Theta {
		t.Fatalf("stats count %d != theta %d", res.Stats.Count, res.Theta)
	}
}

// TestDIIMMGuaranteeSmallGraph: σ(S*) ≥ (1−1/e−ε)·OPT against exact
// spreads on a brute-forceable graph, run distributed with ℓ=4.
func TestDIIMMGuaranteeSmallGraph(t *testing.T) {
	g, err := graph.GenErdosRenyi(graph.GenConfig{Nodes: 12, AvgDegree: 1.5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const k, eps = 2, 0.2
	res, err := RunDIIMM(wc, Options{K: k, Eps: eps, Delta: 0.05, Machines: 4, Model: diffusion.IC, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	got, err := diffusion.ExactSpread(wc, res.Seeds, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for a := 0; a < wc.NumNodes(); a++ {
		for b := a + 1; b < wc.NumNodes(); b++ {
			s, err := diffusion.ExactSpread(wc, []uint32{uint32(a), uint32(b)}, diffusion.IC)
			if err != nil {
				t.Fatal(err)
			}
			if s > best {
				best = s
			}
		}
	}
	if got < (1-1/math.E-eps)*best {
		t.Fatalf("DIIMM spread %v below guarantee of OPT %v", got, best)
	}
}

func TestDIIMMSubsetVariant(t *testing.T) {
	g := testGraph(t, 300)
	res, err := RunDIIMM(g, Options{K: 5, Eps: 0.4, Delta: 0.05, Machines: 4, Model: diffusion.IC, Subset: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("distributed SUBSIM returned %d seeds", len(res.Seeds))
	}
	plain, err := RunDIIMM(g, Options{K: 5, Eps: 0.4, Delta: 0.05, Machines: 4, Model: diffusion.IC, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EstSpread-plain.EstSpread) > 0.25*plain.EstSpread {
		t.Fatalf("subset spread %v vs plain %v", res.EstSpread, plain.EstSpread)
	}
	// Subset sampling must examine fewer edges for a comparable θ.
	perPlain := float64(plain.Stats.EdgesExamined) / float64(plain.Stats.Count)
	perSub := float64(res.Stats.EdgesExamined) / float64(res.Stats.Count)
	if perSub >= perPlain {
		t.Fatalf("subset probes/set %v not below plain %v", perSub, perPlain)
	}
}

func TestDIIMMLTModel(t *testing.T) {
	g := testGraph(t, 300)
	res, err := RunDIIMM(g, Options{K: 5, Eps: 0.4, Delta: 0.05, Machines: 3, Model: diffusion.LT, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 || res.EstSpread <= 0 {
		t.Fatalf("LT run failed: %+v", res.Result)
	}
}

func TestDIIMMDefaults(t *testing.T) {
	g := testGraph(t, 200)
	// Zero-valued options get the paper defaults (k=50 clamps to n here so
	// use explicit K; Machines and Delta default).
	res, err := RunDIIMM(g, Options{K: 3, Eps: 0.5, Model: diffusion.IC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatal("defaults broken")
	}
}

func TestNewGreeDiMaxCoverageMatchesSequential(t *testing.T) {
	family := [][]uint32{
		{0, 1, 2}, {2, 3}, {4, 5, 6, 7}, {0, 7}, {8}, {1, 8, 9}, {3, 9},
	}
	sys, err := coverage.NewSetSystem(10, family)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.SequentialGreedy(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, machines := range []int{1, 2, 4} {
		got, err := NewGreeDiMaxCoverage(sys, 3, machines)
		if err != nil {
			t.Fatal(err)
		}
		if got.Coverage != want.Coverage {
			t.Fatalf("ℓ=%d: cluster NEWGREEDI coverage %d != sequential %d", machines, got.Coverage, want.Coverage)
		}
	}
}
