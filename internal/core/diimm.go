// Package core assembles the paper's contribution: DIIMM (Algorithm 2),
// the distributed influence-maximization algorithm that pairs distributed
// reverse influence sampling with NEWGREEDI element-distributed maximum
// coverage inside the IMM framework, plus the distributed variant of
// SUBSIM and cluster-backed NEWGREEDI for standalone maximum coverage.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/imm"
)

// AutoParallelism, as Options.Parallelism, spreads GOMAXPROCS evenly
// across the ℓ machines: P = max(1, GOMAXPROCS/ℓ). On a 1-core box this
// resolves to P = 1, preserving the sequential-broadcast measurement
// story of DESIGN.md; on a multi-core box it uses the hardware.
const AutoParallelism = -1

// Options configures a DIIMM run.
type Options struct {
	K        int     // seed set size (default 50, the paper's setting)
	Eps      float64 // ε approximation slack (paper default 0.01; see README on runtime)
	Delta    float64 // δ failure probability (paper default 1/n)
	Machines int     // ℓ, number of workers
	Model    diffusion.Model
	Subset   bool   // true = distributed SUBSIM sampling (Fig. 7)
	Seed     uint64 // base seed; machine i samples from a derived stream
	// Parallelism is the number of intra-worker RR-generation goroutines
	// per machine (rrset.ShardedSampler shards). 0 (the default) means 1:
	// sequential sampling, bit-identical to historic output for a fixed
	// seed. AutoParallelism derives it from GOMAXPROCS/ℓ. Seed sets are a
	// deterministic function of (Seed, Machines, Parallelism).
	Parallelism int
	// Batch is the frontier-batch width of each worker's RR sampling
	// shards (rrset.BatchSampler). 0 selects rrset.DefaultBatch; 1 forces
	// the scalar kernel. Unlike Parallelism, Batch never changes sampled
	// bytes — it is a pure locality/throughput knob.
	Batch int
}

// ResolveParallelism maps an Options.Parallelism value to the effective
// per-worker shard count for a run over machines workers.
func ResolveParallelism(p, machines int) int {
	switch {
	case p > 0:
		return p
	case p == AutoParallelism:
		if machines < 1 {
			machines = 1
		}
		per := runtime.GOMAXPROCS(0) / machines
		if per < 1 {
			per = 1
		}
		return per
	default:
		return 1
	}
}

// withDefaults fills unset fields with the paper's defaults.
func (o Options) withDefaults(n int) Options {
	if o.K == 0 {
		o.K = 50
	}
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	if o.Delta == 0 {
		o.Delta = 1 / float64(n)
	}
	if o.Machines == 0 {
		o.Machines = 1
	}
	return o
}

// Result reports a DIIMM run: the algorithmic outcome plus the cluster's
// phase accounting (the Fig. 5/6 breakdown) and the RR-set statistics
// (Table IV).
type Result struct {
	imm.Result
	Stats   cluster.GenerateStats
	Metrics cluster.Metrics
	// Wall is the end-to-end master wall time. On a genuinely parallel
	// deployment this approaches Metrics.CriticalPath(); on an
	// oversubscribed box it approaches the sequential total.
	Wall time.Duration
}

// clusterEngine adapts a cluster to the imm.Engine interface. With this
// adapter, DIIMM is — exactly as the paper puts it — IMM whose sampling
// and seed selection happen across ℓ machines.
type clusterEngine struct {
	cl    *cluster.Cluster
	count int64
}

func (e *clusterEngine) Generate(target int64) error {
	add := target - e.count
	if add <= 0 {
		return nil
	}
	stats, err := e.cl.Generate(add)
	if err != nil {
		return err
	}
	e.count = stats.Count
	return nil
}

func (e *clusterEngine) Count() int64 { return e.count }

func (e *clusterEngine) SelectK(k int) (*coverage.Result, error) {
	// A worker quarantined mid-greedy surfaces as *RebalancedError: the
	// cluster already regenerated the lost shard on survivors and
	// rebuilt the baseline, but the in-flight greedy's degree vector
	// describes the pre-repair sample. Restarting from InitialDegrees
	// is sound — the repaired sample has the original size and law, so
	// the NEWGREEDI guarantee is unchanged. Bounded by the worker count:
	// every restart consumed at least one quarantine.
	for attempt := 0; ; attempt++ {
		res, err := coverage.RunGreedy(e.cl.Oracle(), k)
		var reb *cluster.RebalancedError
		if err != nil && errors.As(err, &reb) && attempt < e.cl.NumWorkers() {
			continue
		}
		return res, err
	}
}

// RunDIIMM runs DIIMM over an in-process cluster of opt.Machines workers
// (the multi-core-server deployment of Figs. 6/7/9). Every worker holds a
// reference to g and samples an independent stream.
func RunDIIMM(g *graph.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults(g.NumNodes())
	par := ResolveParallelism(opt.Parallelism, opt.Machines)
	cfgs := make([]cluster.WorkerConfig, opt.Machines)
	for i := range cfgs {
		cfgs[i] = cluster.WorkerConfig{
			Graph:       g,
			Model:       opt.Model,
			Subset:      opt.Subset,
			Seed:        cluster.DeriveSeed(opt.Seed, i),
			Parallelism: par,
			Batch:       opt.Batch,
		}
	}
	cl, err := cluster.NewLocal(cfgs, g.NumNodes())
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	// In-process workers can always be respawned from their configs, so
	// a fault (e.g. an injected one in tests) never kills the run.
	_ = cl.EnableRecovery(cluster.Recovery{
		Respawn: func(i int) (cluster.Conn, error) {
			w, err := cluster.NewWorker(cfgs[i])
			if err != nil {
				return nil, err
			}
			return cluster.NewLocalConn(w), nil
		},
		Salt: opt.Seed,
	})
	return RunDIIMMOnCluster(g.NumNodes(), cl, opt)
}

// RunDIIMMOnCluster runs DIIMM over an existing cluster (e.g. TCP workers
// dialed by cmd/dimmd). The cluster is reset first so repeated runs are
// independent; it is not closed (the caller owns it).
func RunDIIMMOnCluster(n int, cl *cluster.Cluster, opt Options) (*Result, error) {
	opt = opt.withDefaults(n)
	params, err := imm.ComputeParams(n, opt.K, opt.Eps, opt.Delta)
	if err != nil {
		return nil, err
	}
	if err := cl.Reset(); err != nil {
		return nil, fmt.Errorf("core: resetting cluster: %w", err)
	}
	start := time.Now()
	engine := &clusterEngine{cl: cl}
	immRes, err := imm.Run(engine, params)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	stats, err := cl.Stats()
	if err != nil {
		return nil, err
	}
	return &Result{
		Result:  *immRes,
		Stats:   stats,
		Metrics: cl.Metrics(),
		Wall:    time.Since(start),
	}, nil
}
