package core

import (
	"math"
	"testing"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/imm"
)

func TestDistributedOPIMC(t *testing.T) {
	g := testGraph(t, 400)
	res, err := RunDOPIMC(g, Options{K: 5, Eps: 0.3, Delta: 0.05, Machines: 4, Model: diffusion.IC, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	if res.Ratio < 1-1/math.E-0.3-1e-9 {
		t.Fatalf("stopped below the target ratio: %v", res.Ratio)
	}
	if res.Metrics.BytesSent == 0 || res.Metrics.GenTotal == 0 {
		t.Fatal("cluster accounting empty")
	}
	// Same quality band as DIIMM on the same instance.
	diimm, err := RunDIIMM(g, Options{K: 5, Eps: 0.3, Delta: 0.05, Machines: 4, Model: diffusion.IC, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EstSpread-diimm.EstSpread) > 0.3*diimm.EstSpread {
		t.Fatalf("OPIM-C spread %v far from DIIMM's %v", res.EstSpread, diimm.EstSpread)
	}
	t.Logf("OPIM-C: theta=%d×2 ratio=%.3f vs DIIMM theta=%d", res.Theta, res.Ratio, diimm.Theta)
}

func TestDistributedOPIMCDeterministic(t *testing.T) {
	g := testGraph(t, 250)
	opt := Options{K: 3, Eps: 0.4, Delta: 0.05, Machines: 3, Model: diffusion.LT, Seed: 8}
	a, err := RunDOPIMC(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDOPIMC(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta != b.Theta {
		t.Fatal("OPIM-C theta differs across identical runs")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("OPIM-C seeds differ across identical runs")
		}
	}
}

// TestThetaMeetsSampleSizeRequirement: the run must end with at least
// λ*/LB RR sets — the condition Theorem 1's guarantee rests on.
func TestThetaMeetsSampleSizeRequirement(t *testing.T) {
	g := testGraph(t, 350)
	const k, eps, delta = 4, 0.35, 0.05
	res, err := RunDIIMM(g, Options{K: k, Eps: eps, Delta: delta, Machines: 3, Model: diffusion.IC, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	p, err := imm.ComputeParams(g.NumNodes(), k, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if need := p.FinalTheta(res.LowerBound); res.Theta < need {
		t.Fatalf("theta %d below λ*/LB = %d (LB %v)", res.Theta, need, res.LowerBound)
	}
	if res.LowerBound < 1 {
		t.Fatalf("lower bound %v below the trivial 1", res.LowerBound)
	}
	// LB must itself be a plausible bound: never above n.
	if res.LowerBound > float64(g.NumNodes()) {
		t.Fatalf("lower bound %v exceeds n", res.LowerBound)
	}
}

func TestGatherAllSelectBaseline(t *testing.T) {
	g := testGraph(t, 300)
	cfgs := make([]cluster.WorkerConfig, 4)
	for i := range cfgs {
		cfgs[i] = cluster.WorkerConfig{Graph: g, Model: diffusion.IC, Seed: cluster.DeriveSeed(3, i)}
	}
	cl, err := cluster.NewLocal(cfgs, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Generate(2000); err != nil {
		t.Fatal(err)
	}

	gather, err := GatherAllSelect(g.NumNodes(), cl, 8)
	if err != nil {
		t.Fatal(err)
	}
	if gather.GatherBytes == 0 {
		t.Fatal("gather traffic not recorded")
	}
	// Must equal NEWGREEDI on the same cluster bit for bit.
	ng, err := coverage.RunGreedy(cl.Oracle(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Coverage != gather.Coverage {
		t.Fatalf("gather-all coverage %d != NEWGREEDI %d", gather.Coverage, ng.Coverage)
	}
	for i := range ng.Seeds {
		if ng.Seeds[i] != gather.Seeds[i] {
			t.Fatal("gather-all and NEWGREEDI disagree")
		}
	}
}
