package core

import (
	"fmt"
	"testing"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

// faultDIIMMCluster builds a cluster for RunDIIMMOnCluster with the
// victim's conn wrapped in a FaultConn, and recovery respawning fresh
// workers from the same configs (the replay-failover tier).
func faultDIIMMCluster(t *testing.T, g *graph.Graph, opt Options, victim int, respawnWorks bool) (*cluster.Cluster, *cluster.FaultConn) {
	t.Helper()
	cfgs := make([]cluster.WorkerConfig, opt.Machines)
	conns := make([]cluster.Conn, opt.Machines)
	var fc *cluster.FaultConn
	for i := range cfgs {
		cfgs[i] = cluster.WorkerConfig{
			Graph: g, Model: opt.Model, Subset: opt.Subset,
			Seed:        cluster.DeriveSeed(opt.Seed, i),
			Parallelism: ResolveParallelism(opt.Parallelism, opt.Machines),
		}
		w, err := cluster.NewWorker(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = cluster.NewLocalConn(w)
		if i == victim {
			fc = cluster.NewFaultConn(conns[i])
			conns[i] = fc
		}
	}
	cl, err := cluster.New(conns, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.EnableRecovery(cluster.Recovery{
		Respawn: func(i int) (cluster.Conn, error) {
			if !respawnWorks {
				return nil, fmt.Errorf("worker host gone")
			}
			w, err := cluster.NewWorker(cfgs[i])
			if err != nil {
				return nil, err
			}
			return cluster.NewLocalConn(w), nil
		},
		Retries: 2,
		Backoff: time.Millisecond,
		Salt:    opt.Seed,
	}); err != nil {
		t.Fatal(err)
	}
	return cl, fc
}

// TestDIIMMFailoverByteIdentical is the end-to-end acceptance property:
// a full DIIMM run with a worker killed mid-generation, failed over by
// respawn + journal replay, must return the exact seed set of the
// fault-free run at the same seed.
func TestDIIMMFailoverByteIdentical(t *testing.T) {
	g := testGraph(t, 400)
	opt := Options{K: 8, Eps: 0.3, Machines: 3, Model: diffusion.IC, Seed: 11}
	want, err := RunDIIMM(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Call 1 on every conn is the Reset; calls 2/3 land in the first
	// generate + degree-sync round, later indexes in subsequent rounds or
	// the selection phase.
	for _, killAt := range []int64{2, 3, 5} {
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			cl, fc := faultDIIMMCluster(t, g, opt.withDefaults(g.NumNodes()), 1, true)
			fc.KillAtCall(killAt)
			got, err := RunDIIMMOnCluster(g.NumNodes(), cl, opt)
			if err != nil {
				t.Fatalf("DIIMM with failover: %v", err)
			}
			if fc.Faults() == 0 {
				t.Fatalf("fault at call %d never fired (%d calls made)", killAt, fc.Calls())
			}
			if got.Theta != want.Theta {
				t.Fatalf("theta %d != fault-free %d", got.Theta, want.Theta)
			}
			if len(got.Seeds) != len(want.Seeds) {
				t.Fatalf("%d seeds != %d", len(got.Seeds), len(want.Seeds))
			}
			for i := range want.Seeds {
				if got.Seeds[i] != want.Seeds[i] {
					t.Fatalf("seed %d: %v vs fault-free %v", i, got.Seeds, want.Seeds)
				}
			}
		})
	}
}

// TestDIIMMSurvivesQuarantine: when no replacement ever comes up, the
// run must still complete through the quarantine + rebalance tier — the
// sample keeps its size and i.i.d. law, so the guarantee machinery
// (theta schedule, certificate) runs unchanged; only byte-identity with
// the fault-free run is given up.
func TestDIIMMSurvivesQuarantine(t *testing.T) {
	g := testGraph(t, 400)
	opt := Options{K: 8, Eps: 0.3, Machines: 3, Model: diffusion.IC, Seed: 11}
	want, err := RunDIIMM(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, killAt := range []int64{2, 4, 6} {
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			cl, fc := faultDIIMMCluster(t, g, opt.withDefaults(g.NumNodes()), 2, false)
			fc.KillAtCall(killAt)
			got, err := RunDIIMMOnCluster(g.NumNodes(), cl, opt)
			if err != nil {
				t.Fatalf("DIIMM with quarantine: %v", err)
			}
			// The rebalanced streams are i.i.d. with — but different from —
			// the lost ones, so the data-dependent theta schedule and seed
			// picks may differ; the run must still complete with a sample
			// of the planned order and a spread estimate close to the
			// fault-free run's (same law, same guarantee).
			if got.Theta < want.Theta/2 || got.Theta > want.Theta*2 {
				t.Fatalf("theta %d far from fault-free %d", got.Theta, want.Theta)
			}
			if len(got.Seeds) != opt.K {
				t.Fatalf("returned %d seeds, want %d", len(got.Seeds), opt.K)
			}
			if diff := got.EstSpread - want.EstSpread; diff < -0.15*want.EstSpread || diff > 0.15*want.EstSpread {
				t.Fatalf("estimated spread %.1f far from fault-free %.1f", got.EstSpread, want.EstSpread)
			}
			if h := cl.Health(); h[2].Up {
				t.Fatal("victim still up despite failing respawns")
			}
		})
	}
}
