package core

import (
	"time"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
	"dimm/internal/rrset"
)

// GatherAllResult reports the naive gather-everything baseline.
type GatherAllResult struct {
	Seeds    []uint32
	Coverage int64
	// GatherBytes is the traffic spent shipping every RR set to the
	// master — the cost §II-B identifies as the strategy's flaw.
	GatherBytes int64
	// GatherTime and SelectTime split the master-side wall time.
	GatherTime time.Duration
	SelectTime time.Duration
}

// GatherAllSelect implements the strategy of Haque and Banerjee [28] that
// the paper's §II-B argues against: pull every RR set from every worker
// into the master's memory, then run the centralized greedy there. It is
// correct (it returns the same seeds as NEWGREEDI over the same samples,
// which the tests verify) — the point is its cost: traffic and master
// memory are Θ(Σ|R|) instead of O(ℓ·k·n), which is what makes it
// infeasible at the paper's scales. Benchmarks quantify the gap.
func GatherAllSelect(n int, cl *cluster.Cluster, k int) (*GatherAllResult, error) {
	before := cl.Metrics()
	gatherStart := time.Now()
	union, err := cl.GatherAll()
	if err != nil {
		return nil, err
	}
	gatherTime := time.Since(gatherStart)
	after := cl.Metrics()

	selStart := time.Now()
	idx, err := rrset.BuildIndex(union, n)
	if err != nil {
		return nil, err
	}
	o, err := coverage.NewLocalOracle(union, idx, n)
	if err != nil {
		return nil, err
	}
	res, err := coverage.RunGreedy(o, k)
	if err != nil {
		return nil, err
	}
	return &GatherAllResult{
		Seeds:       res.Seeds,
		Coverage:    res.Coverage,
		GatherBytes: (after.BytesReceived - before.BytesReceived) + (after.BytesSent - before.BytesSent),
		GatherTime:  gatherTime,
		SelectTime:  time.Since(selStart),
	}, nil
}
