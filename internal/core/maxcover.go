package core

import (
	"time"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
)

// MaxCoverResult reports a distributed maximum-coverage run (Fig. 10).
type MaxCoverResult struct {
	Seeds    []uint32
	Coverage int64
	Metrics  cluster.Metrics
	Wall     time.Duration
}

// NewGreeDiMaxCoverage runs the NEWGREEDI algorithm over a cluster for a
// standalone maximum-coverage instance: the elements are partitioned
// across machines (element e to machine e mod ℓ) and shipped once during
// setup; selection then follows Algorithm 1 over the wire. Setup traffic
// is excluded from the returned Wall, mirroring the paper's methodology
// (the data is *generated* in place in the influence-maximization use;
// here it must be dealt once because the instance pre-exists).
func NewGreeDiMaxCoverage(sys *coverage.SetSystem, k, machines int) (*MaxCoverResult, error) {
	cfgs := make([]cluster.WorkerConfig, machines)
	cl, err := cluster.NewLocal(cfgs, sys.NumSets())
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// Invert the set system: element e -> covering sets. Partition the
	// non-empty inverted lists round-robin by element id.
	lists := make([][]uint32, sys.NumElements())
	for s := 0; s < sys.NumSets(); s++ {
		for _, e := range sys.Set(s) {
			lists[e] = append(lists[e], uint32(s))
		}
	}
	shards := make([][][]uint32, machines)
	for e, l := range lists {
		if len(l) == 0 {
			continue
		}
		m := e % machines
		shards[m] = append(shards[m], l)
	}
	for m, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		if err := cl.Ingest(m, shard); err != nil {
			return nil, err
		}
	}

	setup := cl.Metrics()
	start := time.Now()
	res, err := coverage.RunGreedy(cl.Oracle(), k)
	if err != nil {
		return nil, err
	}
	m := cl.Metrics()
	m.SelCritical -= setup.SelCritical
	m.SelTotal -= setup.SelTotal
	m.MasterCompute -= setup.MasterCompute
	m.Comm -= setup.Comm
	m.BytesSent -= setup.BytesSent
	m.BytesReceived -= setup.BytesReceived
	m.Rounds -= setup.Rounds
	return &MaxCoverResult{
		Seeds:    res.Seeds,
		Coverage: res.Coverage,
		Metrics:  m,
		Wall:     time.Since(start),
	}, nil
}
