package core

import (
	"time"

	"dimm/internal/cluster"
	"dimm/internal/coverage"
	"dimm/internal/graph"
	"dimm/internal/imm"
)

// OPIMResult reports a distributed OPIM-C run with cluster accounting.
type OPIMResult struct {
	imm.OPIMResult
	Metrics cluster.Metrics
	Wall    time.Duration
}

// dualClusterEngine backs each OPIM-C collection with its own cluster of
// ℓ workers: R1's cluster drives the greedy (via NEWGREEDI), R2's cluster
// answers coverage queries for the lower bound. This is the distributed
// OPIM-C the paper's §III-C/Remark claims follows from its techniques.
type dualClusterEngine struct {
	c1, c2 *cluster.Cluster
	count  int64
}

func (e *dualClusterEngine) Generate(target int64) error {
	add := target - e.count
	if add <= 0 {
		return nil
	}
	s1, err := e.c1.Generate(add)
	if err != nil {
		return err
	}
	if _, err := e.c2.Generate(add); err != nil {
		return err
	}
	e.count = s1.Count
	return nil
}

func (e *dualClusterEngine) Count() int64 { return e.count }

func (e *dualClusterEngine) SelectK(k int) (*coverage.Result, error) {
	return coverage.RunGreedy(e.c1.Oracle(), k)
}

func (e *dualClusterEngine) CoverageOn2(seeds []uint32) (int64, error) {
	return e.c2.CoverageOf(seeds)
}

// RunDOPIMC runs distributed OPIM-C over 2×opt.Machines in-process
// workers (one cluster per collection). Options fields have the same
// meaning as for RunDIIMM.
func RunDOPIMC(g *graph.Graph, opt Options) (*OPIMResult, error) {
	opt = opt.withDefaults(g.NumNodes())
	par := ResolveParallelism(opt.Parallelism, opt.Machines)
	mkCluster := func(tag uint64) (*cluster.Cluster, error) {
		cfgs := make([]cluster.WorkerConfig, opt.Machines)
		for i := range cfgs {
			cfgs[i] = cluster.WorkerConfig{
				Graph:       g,
				Model:       opt.Model,
				Subset:      opt.Subset,
				Seed:        cluster.DeriveSeed(opt.Seed^tag, i),
				Parallelism: par,
				Batch:       opt.Batch,
			}
		}
		return cluster.NewLocal(cfgs, g.NumNodes())
	}
	c1, err := mkCluster(0x0111)
	if err != nil {
		return nil, err
	}
	defer c1.Close()
	c2, err := mkCluster(0x0222)
	if err != nil {
		return nil, err
	}
	defer c2.Close()

	start := time.Now()
	engine := &dualClusterEngine{c1: c1, c2: c2}
	res, err := imm.RunOPIMC(engine, g.NumNodes(), opt.K, opt.Eps, opt.Delta)
	if err != nil {
		return nil, err
	}
	m1 := c1.Metrics()
	m2 := c2.Metrics()
	merged := cluster.Metrics{
		GenCritical:   m1.GenCritical + m2.GenCritical,
		GenTotal:      m1.GenTotal + m2.GenTotal,
		SelCritical:   m1.SelCritical + m2.SelCritical,
		SelTotal:      m1.SelTotal + m2.SelTotal,
		MasterCompute: m1.MasterCompute + m2.MasterCompute,
		Comm:          m1.Comm + m2.Comm,
		BytesSent:     m1.BytesSent + m2.BytesSent,
		BytesReceived: m1.BytesReceived + m2.BytesReceived,
		Rounds:        m1.Rounds + m2.Rounds,
		GenCalls:      m1.GenCalls + m2.GenCalls,
	}
	merged.Batch.Add(m1.Batch)
	merged.Batch.Add(m2.Batch)
	return &OPIMResult{
		OPIMResult: *res,
		Metrics:    merged,
		Wall:       time.Since(start),
	}, nil
}
