package core

import (
	"fmt"
	"math"

	"dimm/internal/coverage"
	"dimm/internal/imm"
	"dimm/internal/rrset"
)

// This file is the query-time API of the resident serving path
// (internal/serve): selection over an *existing* RR-set collection and
// the OPIM-C per-query certificate, decoupled from the one-shot
// sample-then-select drivers above. The paper's framework makes the
// decoupling sound — an RR collection valid for (k_max, ε, δ) supports
// greedy selection at any k ≤ k_max, and the OPIM-C bound certifies the
// achieved ratio of that selection against the sample it was drawn from.

// SampleBudget sizes a resident RR sample for a serving deployment
// handling any query with k ≤ kMax and ε ≥ epsFloor.
type SampleBudget struct {
	Theta0   int64   // initial resident collection size
	ThetaMax int64   // growth cap: IMM's worst case for (kMax, epsFloor)
	TailMass float64 // per-certificate Chernoff mass a
}

// PlanResidentSample derives the budget from the OPIM-C plans of every
// admissible query size at epsFloor, taking the worst case over
// k = 1..kMax. The binding constraint is the small-k end: a small seed
// set covers few RR sets, so its certificate carries relatively more
// Chernoff slack and needs a larger sample than kMax does (OPIM-C's
// θ_max grows as 1/k). The tail mass additionally takes a union bound
// over the kMax possible query sizes, so that every certificate issued
// over the sample's lifetime — any k, any growth epoch — simultaneously
// holds with probability at least 1 − δ.
func PlanResidentSample(n, kMax int, epsFloor, delta float64) (SampleBudget, error) {
	var b SampleBudget
	for k := 1; k <= kMax; k++ {
		plan, err := imm.PlanOPIMC(n, k, epsFloor, delta)
		if err != nil {
			return SampleBudget{}, err
		}
		if k == 1 || plan.Theta0 < b.Theta0 {
			b.Theta0 = plan.Theta0
		}
		if plan.ThetaMax > b.ThetaMax {
			b.ThetaMax = plan.ThetaMax
		}
		if plan.A > b.TailMass {
			b.TailMass = plan.A
		}
	}
	b.TailMass += math.Log(float64(kMax))
	return b, nil
}

// SelectFromSample runs the exact lazy-bucket greedy over an existing
// collection and its inverted index, without generating a single RR set.
// All selection state (covered labels, degree vector, scratch) is local
// to the call, so concurrent selections over the same immutable
// collection are safe — the read side of the serve layer's epoch scheme.
// parallelism sets the map-stage goroutine count (coverage.SelectKernel);
// values below 2 select sequentially, and the seeds are identical at
// every setting.
func SelectFromSample(c *rrset.Collection, idx *rrset.Index, n, k, parallelism int) (*coverage.Result, error) {
	if c == nil || idx == nil {
		return nil, fmt.Errorf("core: select from nil sample")
	}
	o, err := coverage.NewLocalOracle(c, idx, n)
	if err != nil {
		return nil, err
	}
	o.SetParallelism(parallelism)
	return coverage.RunGreedy(o, k)
}

// CertifySelection computes the per-query OPIM-C certificate for a seed
// set whose greedy coverage on the resident R1 is cov1 and whose
// coverage on the independent resident R2 is cov2, both of size theta.
// The answer is a (1 − 1/e − ε)-approximation whenever the returned
// ratio reaches 1 − 1/e − ε.
func CertifySelection(n int, theta, cov1, cov2 int64, tailMass float64) imm.Certificate {
	return imm.CertifyOPIM(n, theta, cov1, cov2, tailMass)
}
