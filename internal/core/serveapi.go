package core

import (
	"fmt"
	"math"

	"dimm/internal/coverage"
	"dimm/internal/imm"
	"dimm/internal/rrset"
	"dimm/internal/sketch"
)

// This file is the query-time API of the resident serving path
// (internal/serve): selection over an *existing* RR-set collection and
// the OPIM-C per-query certificate, decoupled from the one-shot
// sample-then-select drivers above. The paper's framework makes the
// decoupling sound — an RR collection valid for (k_max, ε, δ) supports
// greedy selection at any k ≤ k_max, and the OPIM-C bound certifies the
// achieved ratio of that selection against the sample it was drawn from.

// SampleBudget sizes a resident RR sample for a serving deployment
// handling any query with k ≤ kMax and ε ≥ epsFloor.
type SampleBudget struct {
	Theta0   int64   // initial resident collection size
	ThetaMax int64   // growth cap: IMM's worst case for (kMax, epsFloor)
	TailMass float64 // per-certificate Chernoff mass a
}

// PlanResidentSample derives the budget from the OPIM-C plans of every
// admissible query size at epsFloor, taking the worst case over
// k = 1..kMax. The binding constraint is the small-k end: a small seed
// set covers few RR sets, so its certificate carries relatively more
// Chernoff slack and needs a larger sample than kMax does (OPIM-C's
// θ_max grows as 1/k). The tail mass additionally takes a union bound
// over the kMax possible query sizes, so that every certificate issued
// over the sample's lifetime — any k, any growth epoch — simultaneously
// holds with probability at least 1 − δ.
func PlanResidentSample(n, kMax int, epsFloor, delta float64) (SampleBudget, error) {
	var b SampleBudget
	for k := 1; k <= kMax; k++ {
		plan, err := imm.PlanOPIMC(n, k, epsFloor, delta)
		if err != nil {
			return SampleBudget{}, err
		}
		if k == 1 || plan.Theta0 < b.Theta0 {
			b.Theta0 = plan.Theta0
		}
		if plan.ThetaMax > b.ThetaMax {
			b.ThetaMax = plan.ThetaMax
		}
		if plan.A > b.TailMass {
			b.TailMass = plan.A
		}
	}
	b.TailMass += math.Log(float64(kMax))
	return b, nil
}

// SelectFromSample runs the exact lazy-bucket greedy over an existing
// collection and its inverted index, without generating a single RR set.
// All selection state (covered labels, degree vector, scratch) is local
// to the call, so concurrent selections over the same immutable
// collection are safe — the read side of the serve layer's epoch scheme.
// parallelism sets the map-stage goroutine count (coverage.SelectKernel);
// values below 2 select sequentially, and the seeds are identical at
// every setting.
func SelectFromSample(c *rrset.Collection, idx *rrset.Index, n, k, parallelism int) (*coverage.Result, error) {
	if c == nil || idx == nil {
		return nil, fmt.Errorf("core: select from nil sample")
	}
	o, err := coverage.NewLocalOracle(c, idx, n)
	if err != nil {
		return nil, err
	}
	o.SetParallelism(parallelism)
	return coverage.RunGreedy(o, k)
}

// SelectFromSampleCandidates runs the same exact lazy-bucket greedy but
// restricted to a candidate pool: non-candidates keep a zero marginal
// throughout, so the selection is exactly what full greedy would return
// whenever every pick it makes lies inside the pool. The serving fast
// tier uses this with a sketch-ranked pool — O(|candidates|) live heap
// entries instead of O(n) — and the usual certificate machinery then
// measures what the restriction cost.
func SelectFromSampleCandidates(c *rrset.Collection, idx *rrset.Index, n, k, parallelism int, candidates []uint32) (*coverage.Result, error) {
	if c == nil || idx == nil {
		return nil, fmt.Errorf("core: select from nil sample")
	}
	o, err := coverage.NewLocalOracle(c, idx, n)
	if err != nil {
		return nil, err
	}
	o.SetParallelism(parallelism)
	allow := make([]bool, n)
	for _, v := range candidates {
		if int(v) >= n {
			return nil, fmt.Errorf("core: candidate %d outside the %d-node graph", v, n)
		}
		allow[v] = true
	}
	return coverage.RunGreedy(&candidateOracle{inner: o, allow: allow}, k)
}

// candidateOracle masks a coverage oracle down to a candidate pool:
// outside degrees start at zero and outside deltas are dropped, so the
// bucket scan never sees (or drives negative) a non-candidate.
type candidateOracle struct {
	inner coverage.Oracle
	allow []bool
}

func (o *candidateOracle) NumItems() int { return o.inner.NumItems() }

func (o *candidateOracle) InitialDegrees() ([]int64, error) {
	deg, err := o.inner.InitialDegrees()
	if err != nil {
		return nil, err
	}
	for v := range deg {
		if !o.allow[v] {
			deg[v] = 0
		}
	}
	return deg, nil
}

func (o *candidateOracle) Select(u uint32) ([]coverage.Delta, error) {
	deltas, err := o.inner.Select(u)
	if err != nil {
		return nil, err
	}
	kept := deltas[:0]
	for _, d := range deltas {
		if o.allow[d.Node] {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// DefaultSketchK is the bottom-k size the serving fast tier defaults
// to: a ≈ 1/√62 ≈ 13% relative standard error per estimate at 8·64
// bytes per covered node, small enough that sketch maintenance
// disappears next to RR generation.
const DefaultSketchK = 64

// BuildSketch folds the RR sets the snapshot gained since the sketch's
// last build into the resident bottom-k sketch tier (internal/sketch),
// sharded parallelism ways over the node space. The sketch is a pure
// function of the snapshot prefix and the sketch params at any
// parallelism, the same determinism contract as RR generation itself.
// Returns how many instances were absorbed.
func BuildSketch(sk *sketch.Set, snap rrset.Snapshot, parallelism int) int {
	if sk == nil {
		return 0
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return sk.Absorb(snap, parallelism)
}

// CertifySelection computes the per-query OPIM-C certificate for a seed
// set whose greedy coverage on the resident R1 is cov1 and whose
// coverage on the independent resident R2 is cov2, both of size theta.
// The answer is a (1 − 1/e − ε)-approximation whenever the returned
// ratio reaches 1 − 1/e − ε.
func CertifySelection(n int, theta, cov1, cov2 int64, tailMass float64) imm.Certificate {
	return imm.CertifyOPIM(n, theta, cov1, cov2, tailMass)
}
