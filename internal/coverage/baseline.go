package coverage

import (
	"fmt"
	"math/bits"

	"dimm/internal/rrset"
)

// NaiveGreedy is the textbook greedy without the lazy bucket structure:
// every iteration rescans all items for the current best marginal. It is
// O(k·n + k·Σ|R|) and exists as the ablation baseline for the vector-D
// design (DESIGN.md choice 2) and as an independent implementation for
// equivalence testing.
func NaiveGreedy(c *rrset.Collection, idx *rrset.Index, n, k int) (*Result, error) {
	if k <= 0 || k > n {
		return nil, fmt.Errorf("coverage: invalid k = %d for %d items", k, n)
	}
	covered := make([]bool, c.Count())
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(idx.Degree(uint32(v)))
	}
	selected := make([]bool, n)
	res := &Result{}
	for iter := 0; iter < k; iter++ {
		best := -1
		var bestDeg int64 = -1
		for v := 0; v < n; v++ {
			if !selected[v] && deg[v] > bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		u := uint32(best)
		selected[best] = true
		res.Seeds = append(res.Seeds, u)
		res.Marginals = append(res.Marginals, bestDeg)
		res.Coverage += bestDeg
		for _, j := range idx.Covers(u) {
			if j&rrset.DeadPosting != 0 {
				continue
			}
			if covered[j] {
				continue
			}
			covered[j] = true
			for _, w := range c.Set(int(j)) {
				deg[w]--
			}
		}
	}
	return res, nil
}

// BruteForceOptimum enumerates all size-k item subsets and returns the
// maximum achievable coverage. Exponential; restricted to tiny instances
// (it is the OPT against which the (1-1/e) bound is tested).
func BruteForceOptimum(c *rrset.Collection, idx *rrset.Index, n, k int) (int64, error) {
	if k <= 0 || k > n {
		return 0, fmt.Errorf("coverage: invalid k = %d for %d items", k, n)
	}
	// Cost guard: C(n,k) subsets, each O(k · avg cover degree).
	combos := 1.0
	for i := 0; i < k; i++ {
		combos *= float64(n-i) / float64(i+1)
	}
	if combos > 2e6 {
		return 0, fmt.Errorf("coverage: brute force over C(%d,%d) subsets is infeasible", n, k)
	}
	if c.Count() > 1<<16 {
		return 0, fmt.Errorf("coverage: brute force needs <= 65536 elements, got %d", c.Count())
	}
	words := (c.Count() + 63) / 64
	// Precompute per-item element bitmaps.
	masks := make([][]uint64, n)
	for v := 0; v < n; v++ {
		m := make([]uint64, words)
		for _, j := range idx.Covers(uint32(v)) {
			if j&rrset.DeadPosting != 0 {
				continue
			}
			m[j/64] |= 1 << (j % 64)
		}
		masks[v] = m
	}
	idxs := make([]int, k)
	for i := range idxs {
		idxs[i] = i
	}
	acc := make([]uint64, words)
	var best int64
	for {
		for w := range acc {
			acc[w] = 0
		}
		for _, v := range idxs {
			for w, x := range masks[v] {
				acc[w] |= x
			}
		}
		var cov int64
		for _, x := range acc {
			cov += int64(bits.OnesCount64(x))
		}
		if cov > best {
			best = cov
		}
		// Next combination.
		i := k - 1
		for i >= 0 && idxs[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idxs[i]++
		for j := i + 1; j < k; j++ {
			idxs[j] = idxs[j-1] + 1
		}
	}
	return best, nil
}

// CoverageOf evaluates how many RR sets in c a given item set covers,
// independently of any oracle state. Used to validate greedy results and
// to score GREEDI candidates.
func CoverageOf(c *rrset.Collection, seeds []uint32) int64 {
	in := make(map[uint32]bool, len(seeds))
	for _, s := range seeds {
		in[s] = true
	}
	var cov int64
	for i := 0; i < c.Count(); i++ {
		for _, v := range c.Set(i) {
			if in[v] {
				cov++
				break
			}
		}
	}
	return cov
}
