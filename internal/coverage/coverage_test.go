package coverage

import (
	"math"
	"testing"
	"testing/quick"

	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

// fig2Collection builds 6 RR sets over 4 nodes consistent with every fact
// the paper states about its Fig. 2 (Example 3): R3 = {v1,v3}, node v1
// covers R1/R3/R5, the set {v1,v4} covers R1/R3/R5/R6, and {v1,v2} covers
// all six. One such instance: R1={v1}, R2={v2,v3}, R3={v1,v3}, R4={v2},
// R5={v1,v2}, R6={v2,v4}. (0-based ids: v1=0 … v4=3.)
func fig2Collection(t testing.TB) (*rrset.Collection, *rrset.Index) {
	t.Helper()
	c := rrset.NewCollection(16)
	for _, s := range [][]uint32{{0}, {1, 2}, {0, 2}, {1}, {0, 1}, {1, 3}} {
		c.Append(s, 0)
	}
	idx, err := rrset.BuildIndex(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c, idx
}

// TestExampleThree reproduces Example 3: node v1 covers R1,R3,R5 and the
// optimal pair {v1,v2} covers all 6 RR sets.
func TestExampleThree(t *testing.T) {
	c, idx := fig2Collection(t)
	if idx.Degree(0) != 3 {
		t.Fatalf("v1 covers %d RR sets, paper says 3", idx.Degree(0))
	}
	if got := CoverageOf(c, []uint32{0, 3}); got != 4 {
		t.Fatalf("{v1,v4} covers %d, paper says 4", got)
	}
	o, err := NewLocalOracle(c, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunGreedy(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 6 {
		t.Fatalf("greedy pair covers %d of 6", res.Coverage)
	}
	seeds := map[uint32]bool{res.Seeds[0]: true, res.Seeds[1]: true}
	if !seeds[0] || !seeds[1] {
		t.Fatalf("greedy picked %v, optimum is {v1,v2}", res.Seeds)
	}
	opt, err := BruteForceOptimum(c, idx, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 6 {
		t.Fatalf("brute force optimum = %d, want 6", opt)
	}
}

func TestRunGreedyValidation(t *testing.T) {
	c, idx := fig2Collection(t)
	o, _ := NewLocalOracle(c, idx, 4)
	if _, err := RunGreedy(o, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := RunGreedy(o, 5); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestGreedyFillsWithZeroMarginals(t *testing.T) {
	// Only 2 distinct useful nodes but k=4: greedy must still return 4
	// seeds, padding with zero-marginal nodes, and coverage must not lie.
	c := rrset.NewCollection(8)
	c.Append([]uint32{0}, 0)
	c.Append([]uint32{1}, 0)
	idx, _ := rrset.BuildIndex(c, 4)
	o, _ := NewLocalOracle(c, idx, 4)
	res, err := RunGreedy(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 4 || res.Coverage != 2 {
		t.Fatalf("got %d seeds coverage %d, want 4 seeds coverage 2", len(res.Seeds), res.Coverage)
	}
}

// randomCollection builds a random hypergraph instance for property tests.
func randomCollection(r *xrand.Rand, n, sets, maxSize int) (*rrset.Collection, *rrset.Index) {
	c := rrset.NewCollection(sets * maxSize)
	for i := 0; i < sets; i++ {
		size := 1 + r.Intn(maxSize)
		seen := map[uint32]bool{}
		var s []uint32
		for j := 0; j < size; j++ {
			v := uint32(r.Intn(n))
			if !seen[v] {
				seen[v] = true
				s = append(s, v)
			}
		}
		c.Append(s, 0)
	}
	idx, _ := rrset.BuildIndex(c, n)
	return c, idx
}

// isTrueGreedy replays a result and verifies that every selected item had
// the maximum marginal coverage available at its selection step, and that
// the recorded marginals and total coverage are exact. This is the real
// greedy invariant: two correct implementations may break ties differently,
// but each pick must be an argmax.
func isTrueGreedy(c *rrset.Collection, idx *rrset.Index, n int, res *Result) bool {
	covered := make([]bool, c.Count())
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(idx.Degree(uint32(v)))
	}
	selected := make([]bool, n)
	var total int64
	for step, u := range res.Seeds {
		var max int64 = -1
		for v := 0; v < n; v++ {
			if !selected[v] && deg[v] > max {
				max = deg[v]
			}
		}
		if deg[u] != max || res.Marginals[step] != max {
			return false
		}
		total += max
		selected[u] = true
		for _, j := range idx.Covers(u) {
			if covered[j] {
				continue
			}
			covered[j] = true
			for _, w := range c.Set(int(j)) {
				deg[w]--
			}
		}
	}
	return total == res.Coverage
}

// TestLazyIsExactGreedy: the vector-D lazy greedy (and the rescan
// baseline) are both exact greedy algorithms on random instances.
func TestLazyIsExactGreedy(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(30)
		c, idx := randomCollection(r, n, 1+r.Intn(60), 1+r.Intn(6))
		k := 1 + r.Intn(n)
		o, err := NewLocalOracle(c, idx, n)
		if err != nil {
			return false
		}
		lazy, err := RunGreedy(o, k)
		if err != nil {
			return false
		}
		naive, err := NaiveGreedy(c, idx, n, k)
		if err != nil {
			return false
		}
		return isTrueGreedy(c, idx, n, lazy) && isTrueGreedy(c, idx, n, naive)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNewGreeDiEqualsCentralized is the Lemma 2 property: for every
// machine count, the element-distributed oracle yields exactly the
// centralized greedy coverage, and the reported coverage matches an
// independent evaluation of the chosen seeds.
func TestNewGreeDiEqualsCentralized(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(25)
		sets := 1 + r.Intn(80)
		c, idx := randomCollection(r, n, sets, 1+r.Intn(6))
		k := 1 + r.Intn(n)
		central, err := NewLocalOracle(c, idx, n)
		if err != nil {
			return false
		}
		want, err := RunGreedy(central, k)
		if err != nil {
			return false
		}
		for _, machines := range []int{1, 2, 3, 7} {
			// Partition the RR sets round-robin across machines.
			parts := make([]*rrset.Collection, machines)
			for i := range parts {
				parts[i] = rrset.NewCollection(64)
			}
			for i := 0; i < c.Count(); i++ {
				parts[i%machines].Append(c.Set(i), 0)
			}
			oracles := make([]*LocalOracle, machines)
			for i, p := range parts {
				pi, err := rrset.BuildIndex(p, n)
				if err != nil {
					return false
				}
				oracles[i], err = NewLocalOracle(p, pi, n)
				if err != nil {
					return false
				}
			}
			multi, err := NewMultiOracle(oracles)
			if err != nil {
				return false
			}
			got, err := RunGreedy(multi, k)
			if err != nil {
				return false
			}
			if got.Coverage != want.Coverage {
				return false
			}
			// Identical aggregated degree streams must give the identical
			// seed sequence (Lemma 2 is an exact-equality statement).
			for i := range want.Seeds {
				if got.Seeds[i] != want.Seeds[i] {
					return false
				}
			}
			// The reported coverage must equal an independent recount of
			// the same seeds on the full data.
			if CoverageOf(c, got.Seeds) != got.Coverage {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyApproximationBound: greedy coverage >= (1 - 1/e) * OPT on
// random small instances (Lemma 2 / Feige).
func TestGreedyApproximationBound(t *testing.T) {
	bound := 1 - 1/math.E
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(8)
		c, idx := randomCollection(r, n, 1+r.Intn(40), 1+r.Intn(4))
		k := 1 + r.Intn(3)
		o, err := NewLocalOracle(c, idx, n)
		if err != nil {
			return false
		}
		res, err := RunGreedy(o, k)
		if err != nil {
			return false
		}
		opt, err := BruteForceOptimum(c, idx, n, k)
		if err != nil {
			return false
		}
		return float64(res.Coverage) >= bound*float64(opt)-1e-9
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalsNonIncreasing(t *testing.T) {
	// Submodularity: the greedy's marginal gains never increase.
	r := xrand.New(99)
	c, idx := randomCollection(r, 20, 200, 5)
	o, _ := NewLocalOracle(c, idx, 20)
	res, err := RunGreedy(o, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Marginals); i++ {
		if res.Marginals[i] > res.Marginals[i-1] {
			t.Fatalf("marginal grew: %v", res.Marginals)
		}
	}
	// Algorithm 1 returns after the k-th pick without running its map
	// stage (line 13), so the oracle's covered count lags the reported
	// coverage by exactly the final marginal.
	want := res.Coverage - res.Marginals[len(res.Marginals)-1]
	if o.CoveredCount() != want {
		t.Fatalf("oracle covered %d, want %d (coverage %d minus final marginal)", o.CoveredCount(), want, res.Coverage)
	}
	// After replaying the final seed's map stage, the counts must agree.
	if _, err := o.Select(res.Seeds[len(res.Seeds)-1]); err != nil {
		t.Fatal(err)
	}
	if o.CoveredCount() != res.Coverage {
		t.Fatalf("after final map stage: oracle covered %d, result says %d", o.CoveredCount(), res.Coverage)
	}
}

func TestOracleReuse(t *testing.T) {
	// A second greedy run on the same oracle must reset covered state and
	// produce identical output (DIIMM calls NEWGREEDI repeatedly).
	r := xrand.New(7)
	c, idx := randomCollection(r, 15, 100, 4)
	o, _ := NewLocalOracle(c, idx, 15)
	a, err := RunGreedy(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGreedy(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Coverage != b.Coverage || len(a.Seeds) != len(b.Seeds) {
		t.Fatal("oracle not reusable across greedy runs")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("seed sequence changed on rerun")
		}
	}
}

func TestNewLocalOracleValidation(t *testing.T) {
	c := rrset.NewCollection(4)
	c.Append([]uint32{0}, 0)
	idx, _ := rrset.BuildIndex(c, 2)
	c.Append([]uint32{1}, 0) // index now stale
	if _, err := NewLocalOracle(c, idx, 2); err == nil {
		t.Fatal("stale index accepted")
	}
}

func TestMultiOracleValidation(t *testing.T) {
	if _, err := NewMultiOracle(nil); err == nil {
		t.Fatal("empty machine list accepted")
	}
	c1 := rrset.NewCollection(4)
	c1.Append([]uint32{0}, 0)
	i1, _ := rrset.BuildIndex(c1, 2)
	o1, _ := NewLocalOracle(c1, i1, 2)
	c2 := rrset.NewCollection(4)
	c2.Append([]uint32{0}, 0)
	i2, _ := rrset.BuildIndex(c2, 3)
	o2, _ := NewLocalOracle(c2, i2, 3)
	if _, err := NewMultiOracle([]*LocalOracle{o1, o2}); err == nil {
		t.Fatal("mismatched item counts accepted")
	}
}

func TestBruteForceGuards(t *testing.T) {
	r := xrand.New(3)
	c, idx := randomCollection(r, 50, 100, 4)
	if _, err := BruteForceOptimum(c, idx, 50, 25); err == nil {
		t.Fatal("infeasible brute force accepted")
	}
	if _, err := BruteForceOptimum(c, idx, 50, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
