package coverage

import (
	"container/heap"
	"fmt"
)

// This file contains alternative selection drivers over the same Oracle
// abstraction that RunGreedy uses. Because they only consume the degree
// vector and per-selection delta updates, every driver here runs
// unmodified over the distributed cluster oracle — which is exactly the
// paper's closing claim that seed minimization, budgeted influence
// maximization and friends "can be implemented in a distributed manner
// via our approaches".

// RunGreedyUntil selects items greedily until the covered-element count
// reaches target (or maxSeeds items have been selected, whichever comes
// first). It is the selection core of seed minimization: with RR sets as
// elements, coverage ≥ target certifies estimated spread ≥ n·target/θ.
func RunGreedyUntil(o Oracle, maxSeeds int, target int64) (*Result, error) {
	n := o.NumItems()
	if maxSeeds <= 0 || maxSeeds > n {
		return nil, fmt.Errorf("coverage: maxSeeds = %d outside [1, %d]", maxSeeds, n)
	}
	if target < 0 {
		return nil, fmt.Errorf("coverage: negative coverage target %d", target)
	}
	deg, err := o.InitialDegrees()
	if err != nil {
		return nil, err
	}
	if len(deg) != n {
		return nil, fmt.Errorf("coverage: oracle returned %d degrees for %d items", len(deg), n)
	}
	var dMax int64
	for _, d := range deg {
		if d > dMax {
			dMax = d
		}
	}
	head := make([]int32, dMax+1)
	next := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		next[v] = head[deg[v]]
		head[deg[v]] = int32(v) + 1
	}
	res := &Result{}
	selected := make([]bool, n)
	if target == 0 {
		return res, nil
	}
	for d := dMax; d >= 0; d-- {
		for head[d] != 0 {
			v := head[d] - 1
			head[d] = next[v]
			if selected[v] {
				continue
			}
			if cur := deg[v]; cur < d {
				next[v] = head[cur]
				head[cur] = v + 1
				continue
			}
			if deg[v] == 0 {
				// No remaining item adds coverage; the target is
				// unreachable on this data.
				return res, nil
			}
			selected[v] = true
			res.Seeds = append(res.Seeds, uint32(v))
			res.Marginals = append(res.Marginals, deg[v])
			res.Coverage += deg[v]
			if res.Coverage >= target || len(res.Seeds) == maxSeeds {
				return res, nil
			}
			deltas, err := o.Select(uint32(v))
			if err != nil {
				return nil, err
			}
			for _, dl := range deltas {
				deg[dl.Node] -= int64(dl.Dec)
			}
		}
	}
	return res, nil
}

// costItem is a lazy-heap entry for the budgeted greedy.
type costItem struct {
	node  uint32
	ratio float64 // stale Δ(v)/c(v); revalidated at pop time
}

type costHeap []costItem

func (h costHeap) Len() int           { return len(h) }
func (h costHeap) Less(i, j int) bool { return h[i].ratio > h[j].ratio }
func (h costHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x any)        { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// RunGreedyBudgeted runs the cost-aware lazy greedy (CELF-style): items
// carry costs, the budget caps the total cost, and each step picks the
// item with the best marginal-coverage-per-cost ratio that still fits.
// Items with zero marginal are never bought. This is the selection core
// of budgeted influence maximization.
func RunGreedyBudgeted(o Oracle, costs []float64, budget float64) (*Result, error) {
	n := o.NumItems()
	if len(costs) != n {
		return nil, fmt.Errorf("coverage: %d costs for %d items", len(costs), n)
	}
	for v, c := range costs {
		if c <= 0 {
			return nil, fmt.Errorf("coverage: item %d has non-positive cost %v", v, c)
		}
	}
	if budget <= 0 {
		return nil, fmt.Errorf("coverage: budget %v must be positive", budget)
	}
	deg, err := o.InitialDegrees()
	if err != nil {
		return nil, err
	}
	h := make(costHeap, 0, n)
	for v := 0; v < n; v++ {
		if deg[v] > 0 {
			h = append(h, costItem{node: uint32(v), ratio: float64(deg[v]) / costs[v]})
		}
	}
	heap.Init(&h)
	res := &Result{}
	remaining := budget
	selected := make([]bool, n)
	for h.Len() > 0 {
		top := heap.Pop(&h).(costItem)
		v := top.node
		if selected[v] || deg[v] == 0 {
			continue
		}
		cur := float64(deg[v]) / costs[v]
		if cur < top.ratio {
			// Stale (CELF lazy re-evaluation): push back with the fresh
			// ratio; the next pop sees a consistent ordering.
			heap.Push(&h, costItem{node: v, ratio: cur})
			continue
		}
		if costs[v] > remaining {
			// Unaffordable; drop it and keep scanning cheaper items.
			continue
		}
		selected[v] = true
		remaining -= costs[v]
		res.Seeds = append(res.Seeds, v)
		res.Marginals = append(res.Marginals, deg[v])
		res.Coverage += deg[v]
		deltas, err := o.Select(v)
		if err != nil {
			return nil, err
		}
		for _, dl := range deltas {
			deg[dl.Node] -= int64(dl.Dec)
		}
	}
	return res, nil
}
