package coverage

import (
	"testing"
	"testing/quick"

	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

func TestRunGreedyUntilReachesTarget(t *testing.T) {
	c, idx := fig2Collection(t)
	o, _ := NewLocalOracle(c, idx, 4)
	res, err := RunGreedyUntil(o, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 6 {
		t.Fatalf("coverage %d below target 6", res.Coverage)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("needed %d seeds, optimum pair suffices", len(res.Seeds))
	}
}

func TestRunGreedyUntilStopsEarly(t *testing.T) {
	c, idx := fig2Collection(t)
	o, _ := NewLocalOracle(c, idx, 4)
	// Target 3 is met by v1 alone.
	res, err := RunGreedyUntil(o, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Coverage < 3 {
		t.Fatalf("want exactly 1 seed for target 3, got %d (coverage %d)", len(res.Seeds), res.Coverage)
	}
}

func TestRunGreedyUntilUnreachable(t *testing.T) {
	c, idx := fig2Collection(t)
	o, _ := NewLocalOracle(c, idx, 4)
	// Target above the 6 available RR sets: exhausts coverage then stops.
	res, err := RunGreedyUntil(o, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 6 {
		t.Fatalf("best-effort coverage %d, want 6", res.Coverage)
	}
	// Zero target selects nothing.
	res, err = RunGreedyUntil(o, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 0 {
		t.Fatal("zero target selected seeds")
	}
	if _, err := RunGreedyUntil(o, 0, 1); err == nil {
		t.Fatal("maxSeeds=0 accepted")
	}
	if _, err := RunGreedyUntil(o, 4, -1); err == nil {
		t.Fatal("negative target accepted")
	}
}

// TestRunGreedyUntilMatchesRunGreedy: with an unreachable target and
// maxSeeds = k, the two drivers must select identical prefixes.
func TestRunGreedyUntilMatchesRunGreedy(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(20)
		c, idx := randomCollection(r, n, 1+r.Intn(50), 1+r.Intn(5))
		k := 1 + r.Intn(n)
		o1, _ := NewLocalOracle(c, idx, n)
		full, err := RunGreedy(o1, k)
		if err != nil {
			return false
		}
		o2, _ := NewLocalOracle(c, idx, n)
		until, err := RunGreedyUntil(o2, k, 1<<40)
		if err != nil {
			return false
		}
		// RunGreedyUntil stops at zero marginal; RunGreedy pads with
		// zero-marginal items. The non-zero prefix must match exactly.
		if until.Coverage != full.Coverage {
			return false
		}
		for i := range until.Seeds {
			if until.Seeds[i] != full.Seeds[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedyBudgetedUnitCostsIsExactGreedy(t *testing.T) {
	// With unit costs, the ratio greedy's picks must each be an argmax of
	// the current marginal coverage (two exact greedy implementations may
	// break ties differently, so we verify the greedy invariant by replay
	// rather than comparing seed sequences).
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(20)
		c, idx := randomCollection(r, n, 1+r.Intn(50), 1+r.Intn(5))
		k := 1 + r.Intn(n)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 1
		}
		o, _ := NewLocalOracle(c, idx, n)
		budgeted, err := RunGreedyBudgeted(o, costs, float64(k))
		if err != nil {
			return false
		}
		if len(budgeted.Seeds) > k {
			return false
		}
		// Replay: each pick is an argmax over unselected items.
		covered := make([]bool, c.Count())
		deg := make([]int64, n)
		for v := 0; v < n; v++ {
			deg[v] = int64(idx.Degree(uint32(v)))
		}
		selected := make([]bool, n)
		var total int64
		for step, u := range budgeted.Seeds {
			var max int64 = -1
			for v := 0; v < n; v++ {
				if !selected[v] && deg[v] > max {
					max = deg[v]
				}
			}
			if deg[u] != max || budgeted.Marginals[step] != max {
				return false
			}
			total += max
			selected[u] = true
			for _, j := range idx.Covers(u) {
				if covered[j] {
					continue
				}
				covered[j] = true
				for _, w := range c.Set(int(j)) {
					deg[w]--
				}
			}
		}
		// Stopped only because the budget ran out or nothing useful was
		// left: either k items were bought or all remaining marginals
		// are zero.
		if len(budgeted.Seeds) < k {
			for v := 0; v < n; v++ {
				if !selected[v] && deg[v] > 0 {
					return false
				}
			}
		}
		return total == budgeted.Coverage
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedyBudgetedRespectsBudget(t *testing.T) {
	r := xrand.New(5)
	c, idx := randomCollection(r, 20, 100, 5)
	costs := make([]float64, 20)
	for i := range costs {
		costs[i] = 0.5 + r.Float64()*3
	}
	o, _ := NewLocalOracle(c, idx, 20)
	const budget = 4.0
	res, err := RunGreedyBudgeted(o, costs, budget)
	if err != nil {
		t.Fatal(err)
	}
	var spent float64
	for _, s := range res.Seeds {
		spent += costs[s]
	}
	if spent > budget+1e-9 {
		t.Fatalf("spent %v over budget %v", spent, budget)
	}
	if CoverageOf(c, res.Seeds) != res.Coverage {
		t.Fatal("reported coverage disagrees with recount")
	}
}

func TestRunGreedyBudgetedPrefersRatio(t *testing.T) {
	// Item 0 covers 3 elements at cost 10; items 1..3 each cover 2 at
	// cost 1. With budget 3, the ratio greedy must buy the cheap trio
	// (coverage 6), never the big expensive set.
	c := rrset.NewCollection(32)
	sets := [][]uint32{
		{0, 1}, {0, 2}, {0, 3}, // covered by item 0 plus one cheap item each
		{1}, {2}, {3},
	}
	for _, s := range sets {
		c.Append(s, 0)
	}
	idx, _ := rrset.BuildIndex(c, 4)
	o, _ := NewLocalOracle(c, idx, 4)
	costs := []float64{10, 1, 1, 1}
	res, err := RunGreedyBudgeted(o, costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Seeds {
		if s == 0 {
			t.Fatal("bought the unaffordable-ratio item")
		}
	}
	if res.Coverage != 6 {
		t.Fatalf("coverage %d, want 6", res.Coverage)
	}
}

func TestRunGreedyBudgetedValidation(t *testing.T) {
	c, idx := fig2Collection(t)
	o, _ := NewLocalOracle(c, idx, 4)
	if _, err := RunGreedyBudgeted(o, []float64{1, 1}, 1); err == nil {
		t.Fatal("wrong cost count accepted")
	}
	if _, err := RunGreedyBudgeted(o, []float64{1, 1, 0, 1}, 1); err == nil {
		t.Fatal("zero cost accepted")
	}
	if _, err := RunGreedyBudgeted(o, []float64{1, 1, 1, 1}, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}
