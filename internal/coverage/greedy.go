// Package coverage implements maximum coverage over RR-set collections:
// the exact lazy-bucket greedy of the paper's Algorithm 1 (NEWGREEDI), a
// local single-machine oracle, a reference multi-machine oracle, the
// set-distributed GREEDI baseline (composable core-sets), and a brute
// force optimum for small instances.
//
// The greedy master logic is written against the Oracle interface so the
// exact same selection code runs centralized (one LocalOracle), in the
// reference distributed form (MultiOracle), and over a real cluster
// (internal/cluster provides an Oracle backed by worker RPCs). Lemma 2 —
// NEWGREEDI returns exactly the centralized greedy solution — then holds
// by construction, and the test suite verifies it end to end.
package coverage

import (
	"fmt"
	"slices"

	"dimm/internal/bitset"
	"dimm/internal/rrset"
)

// Delta is one node's marginal-coverage decrement, the unit of the
// map-stage reply in Algorithm 1 (the tuples ⟨v, Δ_i(v)⟩).
type Delta struct {
	Node uint32
	Dec  int32
}

// Oracle abstracts the per-machine state of Algorithm 1 away from the
// master's selection loop. Implementations must be deterministic given
// the same underlying data.
type Oracle interface {
	// NumItems returns the number of selectable items (nodes), i.e. the
	// size of the degree vector.
	NumItems() int
	// InitialDegrees returns Δ(v) for every item v: how many (currently
	// uncovered) elements item v covers. Called once per greedy run; the
	// oracle must reset any covered flags it keeps (Algorithm 1 line 2).
	InitialDegrees() ([]int64, error)
	// Select marks u as chosen: every element covered by u that was still
	// uncovered becomes covered, and the returned deltas say how much each
	// item's marginal coverage decreases (Algorithm 1 lines 14-22).
	Select(u uint32) ([]Delta, error)
}

// Result is the outcome of a greedy run.
type Result struct {
	Seeds    []uint32 // selected items in selection order
	Coverage int64    // number of elements covered by Seeds
	// Marginals[i] is the marginal coverage of Seeds[i] at selection time;
	// Coverage is their sum. Exposed because IMM's stopping rule needs the
	// coverage of each intermediate prefix.
	Marginals []int64
}

// RunGreedy executes the master side of Algorithm 1: the vector D of
// bucket lists over coverage values, scanned in decreasing order with
// lazy re-insertion of stale entries (lines 5-13). Its work is linear in
// the number of items plus the number of lazy moves, which is bounded by
// the total coverage decrement volume.
func RunGreedy(o Oracle, k int) (*Result, error) {
	n := o.NumItems()
	if k <= 0 {
		return nil, fmt.Errorf("coverage: k must be positive, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("coverage: k = %d exceeds the %d selectable items", k, n)
	}
	deg64, err := o.InitialDegrees()
	if err != nil {
		return nil, err
	}
	if len(deg64) != n {
		return nil, fmt.Errorf("coverage: oracle returned %d degrees for %d items", len(deg64), n)
	}
	deg := deg64

	// Bucket lists are intrusive singly-linked: head[d] is the first node
	// in bucket d (+1, 0 = empty) and next[v] chains nodes within one
	// bucket. A node lives in exactly one bucket; its bucket index can
	// only be stale upwards (degrees never increase), so a downward scan
	// with re-insertion visits every node at its true degree eventually.
	var dMax int64
	for _, d := range deg {
		if d > dMax {
			dMax = d
		}
	}
	head := make([]int32, dMax+1)
	next := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		d := deg[v]
		next[v] = head[d]
		head[d] = int32(v) + 1
	}

	res := &Result{
		Seeds:     make([]uint32, 0, k),
		Marginals: make([]int64, 0, k),
	}
	selected := make([]bool, n)
	for d := dMax; d >= 0; d-- {
		for head[d] != 0 {
			v := head[d] - 1
			head[d] = next[v]
			if selected[v] {
				continue
			}
			if cur := deg[v]; cur < d {
				// Outdated coverage (line 9): move to the true bucket.
				next[v] = head[cur]
				head[cur] = v + 1
				continue
			}
			u := uint32(v)
			selected[v] = true
			res.Seeds = append(res.Seeds, u)
			res.Marginals = append(res.Marginals, deg[v])
			res.Coverage += deg[v]
			if len(res.Seeds) == k {
				return res, nil
			}
			deltas, err := o.Select(u)
			if err != nil {
				return nil, err
			}
			for _, dl := range deltas {
				if int(dl.Node) >= n {
					return nil, fmt.Errorf("coverage: oracle delta for item %d out of range", dl.Node)
				}
				deg[dl.Node] -= int64(dl.Dec)
				if deg[dl.Node] < 0 {
					return nil, fmt.Errorf("coverage: item %d driven to negative degree", dl.Node)
				}
			}
		}
	}
	return nil, fmt.Errorf("coverage: bucket scan exhausted after %d of %d selections", len(res.Seeds), k)
}

// LocalOracle is the single-machine oracle over one RR-set collection.
// It also serves as the worker-side state of the distributed oracle: the
// cluster worker runs the same SelectKernel and ships its deltas to the
// master. Covered labels live in a bitset (1 bit per RR set, not the
// byte of a []bool) and the map stage runs on the kernel, which splits
// the covers list across SetParallelism goroutines.
type LocalOracle struct {
	c   *rrset.Collection
	idx *rrset.Index
	n   int

	covered *bitset.Bits
	kern    *SelectKernel
}

// NewLocalOracle builds the oracle for n selectable items over c. The
// index must have been built from c (idx.Count() == c.Count()). The map
// stage is sequential until SetParallelism.
func NewLocalOracle(c *rrset.Collection, idx *rrset.Index, n int) (*LocalOracle, error) {
	if idx.Count() != c.Count() {
		return nil, fmt.Errorf("coverage: index covers %d RR sets, collection has %d", idx.Count(), c.Count())
	}
	return &LocalOracle{
		c:       c,
		idx:     idx,
		n:       n,
		covered: bitset.New(c.Count()),
		kern:    NewSelectKernel(n, 1),
	}, nil
}

// SetParallelism sets the number of map-stage goroutines for Select.
// Output is bit-identical at every setting (see SelectKernel).
func (o *LocalOracle) SetParallelism(p int) { o.kern.SetParallelism(p) }

// NumItems implements Oracle.
func (o *LocalOracle) NumItems() int { return o.n }

// InitialDegrees implements Oracle: it relabels every RR set uncovered
// and returns the per-node coverage counts.
func (o *LocalOracle) InitialDegrees() ([]int64, error) {
	o.covered.Reset(o.c.Count())
	deg := make([]int64, o.n)
	for v := 0; v < o.n; v++ {
		deg[v] = int64(o.idx.Degree(uint32(v)))
	}
	return deg, nil
}

// Select implements Oracle: the map stage of Algorithm 1 for seed u.
func (o *LocalOracle) Select(u uint32) ([]Delta, error) {
	if int(u) >= o.n {
		return nil, fmt.Errorf("coverage: select of out-of-range item %d", u)
	}
	o.kern.Select(o.c, o.idx, o.covered, u)
	return o.kern.AppendDeltas(make([]Delta, 0, o.kern.TouchedLen())), nil
}

// CoveredCount returns how many RR sets are currently covered; after a
// greedy run it equals the run's Coverage (used as a cross-check).
func (o *LocalOracle) CoveredCount() int64 {
	return o.covered.Count()
}

// MultiOracle is the reference (in-process, sequential) element-distributed
// oracle: it fans a Select out to several LocalOracles and merges their
// delta vectors, exactly the reduce stage of Algorithm 1 line 22. The
// cluster package provides the same semantics over a transport; this type
// exists so NEWGREEDI's correctness can be tested without any transport.
type MultiOracle struct {
	machines []*LocalOracle
	n        int

	// mergeDec/mergeTouched are the reduce-stage scratch: summing the
	// per-machine deltas through a vector instead of a map keeps Select
	// deterministic (Go map iteration order is randomized).
	mergeDec     []int32
	mergeTouched []uint32
}

// NewMultiOracle combines per-machine oracles; all must agree on NumItems.
func NewMultiOracle(machines []*LocalOracle) (*MultiOracle, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("coverage: need at least one machine")
	}
	n := machines[0].NumItems()
	for i, m := range machines {
		if m.NumItems() != n {
			return nil, fmt.Errorf("coverage: machine %d has %d items, machine 0 has %d", i, m.NumItems(), n)
		}
	}
	return &MultiOracle{machines: machines, n: n, mergeDec: make([]int32, n)}, nil
}

// NumItems implements Oracle.
func (m *MultiOracle) NumItems() int { return m.n }

// InitialDegrees implements Oracle (the aggregation of line 4).
func (m *MultiOracle) InitialDegrees() ([]int64, error) {
	total := make([]int64, m.n)
	for _, mach := range m.machines {
		deg, err := mach.InitialDegrees()
		if err != nil {
			return nil, err
		}
		for v, d := range deg {
			total[v] += d
		}
	}
	return total, nil
}

// Select implements Oracle (map on every machine, reduce at the caller).
// The merged deltas are emitted in ascending node order, making the
// reply a pure function of the machines' data — the determinism the
// Oracle contract requires (a map-keyed merge would emit in randomized
// iteration order).
func (m *MultiOracle) Select(u uint32) ([]Delta, error) {
	m.mergeTouched = m.mergeTouched[:0]
	for _, mach := range m.machines {
		deltas, err := mach.Select(u)
		if err != nil {
			return nil, err
		}
		for _, d := range deltas {
			if m.mergeDec[d.Node] == 0 {
				m.mergeTouched = append(m.mergeTouched, d.Node)
			}
			m.mergeDec[d.Node] += d.Dec
		}
	}
	slices.Sort(m.mergeTouched)
	out := make([]Delta, len(m.mergeTouched))
	for i, v := range m.mergeTouched {
		out[i] = Delta{Node: v, Dec: m.mergeDec[v]}
		m.mergeDec[v] = 0
	}
	return out, nil
}
