package coverage

import (
	"sync"

	"dimm/internal/bitset"
	"dimm/internal/rrset"
)

// minParallelCovers is the covers-list length below which the kernel
// stays sequential: partitioning a short list across goroutines costs
// more in spawn/merge overhead than the scan itself. Early seeds cover
// thousands of RR sets (where parallelism pays); late seeds cover a
// handful (where it cannot).
const minParallelCovers = 256

// SelectKernel is the map stage of Algorithm 1 (lines 14-21) factored
// out of LocalOracle and cluster.Worker so both run the same code: mark
// every still-uncovered RR set containing the new seed as covered and
// accumulate, per node, how much its marginal coverage decreases.
//
// With parallelism P > 1 the covers list idx.Covers(u) is split into P
// contiguous chunks processed by P goroutines. This is safe and exact:
//
//   - RR-set ids within a covers list are unique and ascending, and chunk
//     boundaries are advanced to 64-bit word boundaries of the covered
//     bitset, so no two goroutines ever write the same bitset word.
//   - Each goroutine accumulates decrements into its own scratch; the
//     shards are then merged in shard order, which reproduces exactly the
//     sequential scan's first-encounter node order (a node's first
//     encounter lands in exactly one chunk, and within a chunk shard
//     order equals scan order). The emitted delta vector is therefore
//     bit-identical to the sequential one — Lemma 2 (exact equivalence
//     with centralized greedy) is preserved by construction, the same
//     shard-order argument rrset.ShardedSampler uses for generation.
type SelectKernel struct {
	n   int // selectable-item space (size of the decrement scratch)
	par int

	// dec/touched implement the map-stage hash map Δ_i of Algorithm 1
	// line 15 without per-call allocation; touched holds the nodes with
	// nonzero dec in first-encounter order.
	dec     []int32
	touched []uint32

	coversBuf []uint32 // flattens multi-segment covers lists, reused
	bounds    []int    // chunk boundaries, reused

	shardDec     [][]int32
	shardTouched [][]uint32
}

// NewSelectKernel builds a kernel over an n-item space. parallelism <= 1
// means sequential.
func NewSelectKernel(n, parallelism int) *SelectKernel {
	k := &SelectKernel{n: n, dec: make([]int32, n)}
	k.SetParallelism(parallelism)
	return k
}

// SetParallelism sets the number of map-stage goroutines (values below 1
// clamp to 1, i.e. sequential).
func (k *SelectKernel) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	k.par = p
}

// Parallelism returns the configured goroutine count.
func (k *SelectKernel) Parallelism() int { return k.par }

// NumItems returns the item-space size.
func (k *SelectKernel) NumItems() int { return k.n }

// Grow extends the item space to n (ingest can enlarge it); shrinking is
// a no-op. Must not be called while a Select is in flight.
func (k *SelectKernel) Grow(n int) {
	if n <= k.n {
		return
	}
	grown := make([]int32, n)
	copy(grown, k.dec)
	k.dec = grown
	k.n = n
	k.shardDec = nil // re-sized lazily on the next parallel Select
	k.shardTouched = nil
}

// Select runs the map stage for seed u over collection c and its index,
// marking newly covered RR sets in covered. Results accumulate in the
// kernel until drained with Drain or AppendDeltas.
func (k *SelectKernel) Select(c *rrset.Collection, idx *rrset.Index, covered *bitset.Bits, u uint32) {
	covers := k.flatCovers(idx, u)
	p := k.par
	if idx.Patched() {
		// A patched index's covers lists are not globally ascending
		// (overlay postings trail, tombstones intersperse), which breaks
		// the word-disjoint chunking below; scan sequentially. Output is
		// unchanged — coverage marking is order-invariant and the merge
		// order argument is moot with one shard.
		p = 1
	}
	if pmax := len(covers) / minParallelCovers; p > pmax {
		p = pmax
	}
	if p <= 1 {
		k.touched = scanCoverChunk(c, covered, covers, k.dec, k.touched)
		return
	}
	k.ensureShards(p)

	// Chunk boundaries: start from an even split, then advance each
	// boundary past any ids sharing a bitset word with the previous id.
	// covers is ascending, so ids in one word are contiguous and the
	// resulting chunks touch disjoint word ranges.
	k.bounds = append(k.bounds[:0], 0)
	for s := 1; s < p; s++ {
		b := s * len(covers) / p
		if prev := k.bounds[s-1]; b < prev {
			b = prev
		}
		for b > 0 && b < len(covers) &&
			bitset.WordIndex(int(covers[b])) == bitset.WordIndex(int(covers[b-1])) {
			b++
		}
		k.bounds = append(k.bounds, b)
	}
	k.bounds = append(k.bounds, len(covers))

	var wg sync.WaitGroup
	for s := 1; s < p; s++ {
		chunk := covers[k.bounds[s]:k.bounds[s+1]]
		if len(chunk) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, chunk []uint32) {
			defer wg.Done()
			k.shardTouched[s] = scanCoverChunk(c, covered, chunk, k.shardDec[s], k.shardTouched[s])
		}(s, chunk)
	}
	// Shard 0 runs on the calling goroutine.
	k.shardTouched[0] = scanCoverChunk(c, covered, covers[:k.bounds[1]], k.shardDec[0], k.shardTouched[0])
	wg.Wait()

	// Merge in shard order: appending a node to touched on its first
	// nonzero global decrement reproduces the sequential first-encounter
	// order exactly (see the type comment).
	for s := 0; s < p; s++ {
		sd := k.shardDec[s]
		for _, v := range k.shardTouched[s] {
			if k.dec[v] == 0 {
				k.touched = append(k.touched, v)
			}
			k.dec[v] += sd[v]
			sd[v] = 0
		}
		k.shardTouched[s] = k.shardTouched[s][:0]
	}
}

// flatCovers returns the ascending list of RR-set ids containing u. A
// single-segment index aliases its storage (zero copy); multi-segment
// indexes flatten into a reused buffer, in segment order — which is
// globally ascending because segments span disjoint ascending id ranges.
func (k *SelectKernel) flatCovers(idx *rrset.Index, u uint32) []uint32 {
	if idx.NumSegments() == 1 {
		return idx.SegCovers(0, u)
	}
	k.coversBuf = k.coversBuf[:0]
	for si := 0; si < idx.NumSegments(); si++ {
		k.coversBuf = append(k.coversBuf, idx.SegCovers(si, u)...)
	}
	return k.coversBuf
}

// ensureShards sizes the per-goroutine scratch for p shards.
func (k *SelectKernel) ensureShards(p int) {
	for len(k.shardDec) < p {
		k.shardDec = append(k.shardDec, make([]int32, k.n))
		k.shardTouched = append(k.shardTouched, nil)
	}
}

// scanCoverChunk is the sequential inner loop shared by the one-goroutine
// path and each parallel shard: for every still-uncovered RR set id in
// covers, mark it covered and count its members into dec/touched.
func scanCoverChunk(c *rrset.Collection, covered *bitset.Bits, covers []uint32, dec []int32, touched []uint32) []uint32 {
	for _, j := range covers {
		if j&rrset.DeadPosting != 0 {
			continue // tombstoned by an in-place repair
		}
		if covered.Get(int(j)) {
			continue
		}
		covered.Set(int(j))
		for _, v := range c.Set(int(j)) {
			if dec[v] == 0 {
				touched = append(touched, v)
			}
			dec[v]++
		}
	}
	return touched
}

// TouchedLen returns how many nodes have accumulated decrements.
func (k *SelectKernel) TouchedLen() int { return len(k.touched) }

// Drain calls emit for every touched node in first-encounter order and
// clears the scratch for the next Select.
func (k *SelectKernel) Drain(emit func(node uint32, dec int32)) {
	for _, v := range k.touched {
		emit(v, k.dec[v])
		k.dec[v] = 0
	}
	k.touched = k.touched[:0]
}

// AppendDeltas drains the accumulated decrements into out as Deltas.
func (k *SelectKernel) AppendDeltas(out []Delta) []Delta {
	k.Drain(func(node uint32, dec int32) {
		out = append(out, Delta{Node: node, Dec: dec})
	})
	return out
}
