package coverage

import (
	"reflect"
	"slices"
	"testing"

	"dimm/internal/bitset"
	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

// kernelSample builds a random collection of m RR sets of avgSize members
// drawn from n nodes, plus its inverted index. Sizes are chosen so node
// degrees comfortably exceed minParallelCovers at the parallelism levels
// under test.
func kernelSample(t testing.TB, seed uint64, n, m, avgSize int) (*rrset.Collection, *rrset.Index) {
	t.Helper()
	r := xrand.New(seed)
	c := rrset.NewCollection(m)
	members := make([]uint32, 0, 2*avgSize)
	for i := 0; i < m; i++ {
		sz := 1 + r.Intn(2*avgSize-1)
		members = members[:0]
		for len(members) < sz {
			v := uint32(r.Intn(n))
			if !slices.Contains(members, v) {
				members = append(members, v)
			}
		}
		c.Append(members, 0)
	}
	idx, err := rrset.BuildIndex(c, n)
	if err != nil {
		t.Fatal(err)
	}
	return c, idx
}

// kernelTrace drives a SelectKernel through the given seed sequence and
// records everything observable: the drained delta slice after every
// seed and the covered count after every seed.
type kernelTrace struct {
	Deltas  [][]Delta
	Covered []int64
}

func traceKernel(c *rrset.Collection, idx *rrset.Index, n int, seeds []uint32, parallelism int) kernelTrace {
	kern := NewSelectKernel(n, parallelism)
	covered := bitset.New(c.Count())
	var tr kernelTrace
	for _, u := range seeds {
		kern.Select(c, idx, covered, u)
		tr.Deltas = append(tr.Deltas, kern.AppendDeltas(nil))
		tr.Covered = append(tr.Covered, covered.Count())
	}
	return tr
}

// TestParallelSelectBitIdentical: the parallel map stage must produce
// delta vectors bit-identical to the sequential scan — same nodes, same
// decrements, same first-encounter order — at every parallelism level.
// Run with -race this also exercises the disjoint-word-range safety
// argument of the chunked bitset writes.
func TestParallelSelectBitIdentical(t *testing.T) {
	c, idx := kernelSample(t, 0xC0FFEE, 64, 40000, 4)
	seeds := make([]uint32, 64)
	for i := range seeds {
		seeds[i] = uint32(i)
	}
	base := traceKernel(c, idx, 64, seeds, 1)
	if got := base.Covered[len(base.Covered)-1]; got != int64(c.Count()) {
		t.Fatalf("selecting every node covered %d of %d RR sets", got, c.Count())
	}
	for _, p := range []int{2, 4, 8} {
		got := traceKernel(c, idx, 64, seeds, p)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("P=%d trace diverges from sequential", p)
		}
	}
}

// TestParallelSelectMultiSegment exercises flatCovers' flattening path:
// an incrementally grown index has several segments whose covers lists
// must be concatenated (in globally ascending id order) before chunking.
func TestParallelSelectMultiSegment(t *testing.T) {
	c, idx := kernelSample(t, 0xBEEF, 48, 20000, 4)
	r := xrand.New(7)
	members := make([]uint32, 0, 8)
	for grow := 0; grow < 3; grow++ {
		from := c.Count()
		for i := 0; i < 5000; i++ {
			sz := 1 + r.Intn(7)
			members = members[:0]
			for len(members) < sz {
				v := uint32(r.Intn(48))
				if !slices.Contains(members, v) {
					members = append(members, v)
				}
			}
			c.Append(members, 0)
		}
		if err := idx.AppendFrom(c, from); err != nil {
			t.Fatal(err)
		}
	}
	if idx.NumSegments() < 2 {
		t.Fatalf("test wants a multi-segment index, got %d segment(s)", idx.NumSegments())
	}
	seeds := []uint32{3, 1, 4, 1, 5, 9, 2, 6, 0, 7}
	base := traceKernel(c, idx, 48, seeds, 1)
	for _, p := range []int{2, 4} {
		if got := traceKernel(c, idx, 48, seeds, p); !reflect.DeepEqual(base, got) {
			t.Fatalf("P=%d multi-segment trace diverges from sequential", p)
		}
	}
}

// TestParallelGreedyEndToEnd: a full lazy-greedy run through LocalOracle
// must return identical seeds, marginals, and covered counts at every
// parallelism level (the ISSUE acceptance bar: byte-identical seed sets).
func TestParallelGreedyEndToEnd(t *testing.T) {
	c, idx := kernelSample(t, 0xD1DD, 64, 30000, 4)
	var base *Result
	var baseCovered int64
	for _, p := range []int{1, 2, 4} {
		o, err := NewLocalOracle(c, idx, 64)
		if err != nil {
			t.Fatal(err)
		}
		o.SetParallelism(p)
		res, err := RunGreedy(o, 10)
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			base, baseCovered = res, o.CoveredCount()
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("P=%d greedy result diverges from sequential:\n  P=1: %+v\n  P=%d: %+v", p, base, p, res)
		}
		if got := o.CoveredCount(); got != baseCovered {
			t.Fatalf("P=%d covered count %d, sequential %d", p, got, baseCovered)
		}
	}
}

// TestKernelGrow: growing the item space mid-stream (the ingest path)
// must preserve accumulated scratch and keep parallel selects exact.
func TestKernelGrow(t *testing.T) {
	c, idx := kernelSample(t, 0xFEED, 32, 12000, 4)
	kern := NewSelectKernel(16, 4) // deliberately undersized
	kern.Grow(32)
	if kern.NumItems() != 32 {
		t.Fatalf("Grow(32) left NumItems %d", kern.NumItems())
	}
	kern.Grow(8) // shrink is a no-op
	if kern.NumItems() != 32 {
		t.Fatalf("Grow(8) shrank NumItems to %d", kern.NumItems())
	}
	covered := bitset.New(c.Count())
	kern.Select(c, idx, covered, 5)
	got := kern.AppendDeltas(nil)
	want := traceKernel(c, idx, 32, []uint32{5}, 1).Deltas[0]
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-Grow select diverges: want %d deltas, got %d", len(want), len(got))
	}
}

// TestMultiOracleDeterministic: the reference reduce stage must emit
// merged deltas in ascending node order and produce identical traces on
// identical data — the determinism the Oracle contract requires.
func TestMultiOracleDeterministic(t *testing.T) {
	build := func() *MultiOracle {
		machines := make([]*LocalOracle, 3)
		for i := range machines {
			c, idx := kernelSample(t, 0xAB+uint64(i), 40, 3000, 3)
			o, err := NewLocalOracle(c, idx, 40)
			if err != nil {
				t.Fatal(err)
			}
			machines[i] = o
		}
		m, err := NewMultiOracle(machines)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.InitialDegrees(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	for _, u := range []uint32{7, 3, 7, 19, 0, 39, 11} {
		da, err := a.Select(u)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.IsSortedFunc(da, func(x, y Delta) int {
			if x.Node < y.Node {
				return -1
			}
			return 1
		}) {
			t.Fatalf("Select(%d) emitted out of ascending node order: %v", u, da)
		}
		db, err := b.Select(u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("Select(%d) differs across identical oracles", u)
		}
	}
}

// BenchmarkSelectParallel measures the map-stage kernel at several
// parallelism levels over a fresh covered bitset per iteration; the CI
// bench smoke runs it once per level to keep the path compiling and
// racing.
func BenchmarkSelectParallel(b *testing.B) {
	c, idx := kernelSample(b, 0x5EED, 64, 40000, 4)
	for _, p := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "P1", 2: "P2", 4: "P4"}[p], func(b *testing.B) {
			kern := NewSelectKernel(64, p)
			covered := bitset.New(c.Count())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				covered.Reset(c.Count())
				for u := uint32(0); u < 8; u++ {
					kern.Select(c, idx, covered, u)
					kern.Drain(func(uint32, int32) {})
				}
			}
		})
	}
}
