package coverage

import (
	"fmt"

	"dimm/internal/rrset"
)

// SetSystem is a generic maximum-coverage instance in the set-element
// paradigm: a family of sets over a universe of elements, stored in CSR
// form. The paper's §IV-C experiments map a graph onto one of these
// (node u's set is its neighborhood N_u; elements are nodes).
type SetSystem struct {
	numSets     int
	numElements int
	start       []int64
	elems       []uint32
}

// NewSetSystem builds a system from explicit per-set element lists.
func NewSetSystem(numElements int, sets [][]uint32) (*SetSystem, error) {
	s := &SetSystem{
		numSets:     len(sets),
		numElements: numElements,
		start:       make([]int64, len(sets)+1),
	}
	total := 0
	for _, set := range sets {
		total += len(set)
	}
	s.elems = make([]uint32, 0, total)
	for i, set := range sets {
		for _, e := range set {
			if int(e) >= numElements {
				return nil, fmt.Errorf("coverage: element %d out of range (universe %d)", e, numElements)
			}
			s.elems = append(s.elems, e)
		}
		s.start[i+1] = int64(len(s.elems))
	}
	return s, nil
}

// NumSets returns the number of sets in the family.
func (s *SetSystem) NumSets() int { return s.numSets }

// NumElements returns the size of the element universe.
func (s *SetSystem) NumElements() int { return s.numElements }

// Set returns the elements of set i (aliases internal storage).
func (s *SetSystem) Set(i int) []uint32 { return s.elems[s.start[i]:s.start[i+1]] }

// TotalSize returns the summed cardinality of all sets.
func (s *SetSystem) TotalSize() int64 { return int64(len(s.elems)) }

// invertToOracle builds a LocalOracle for greedy selection over a subset
// of the family. keepSet maps a global set id to a local item id (or -1 to
// exclude); numItems is the local item count; keepElem filters which
// elements participate (nil = all). The returned oracle's elements are the
// kept elements, each represented as the list of local item ids covering
// it — exactly the element-distributed representation of Algorithm 1.
func (s *SetSystem) invertToOracle(keepSet []int32, numItems int, keepElem func(e uint32) bool) (*LocalOracle, error) {
	// Inverted lists: element -> covering (kept) sets.
	lists := make([][]uint32, s.numElements)
	for setID := 0; setID < s.numSets; setID++ {
		local := keepSet[setID]
		if local < 0 {
			continue
		}
		for _, e := range s.Set(setID) {
			if keepElem != nil && !keepElem(e) {
				continue
			}
			lists[e] = append(lists[e], uint32(local))
		}
	}
	c := rrset.NewCollection(int(s.TotalSize()))
	for _, l := range lists {
		if len(l) > 0 {
			c.Append(l, 0)
		}
	}
	idx, err := rrset.BuildIndex(c, numItems)
	if err != nil {
		return nil, err
	}
	return NewLocalOracle(c, idx, numItems)
}

// identityKeep returns a keepSet slice mapping every set to itself.
func (s *SetSystem) identityKeep() []int32 {
	keep := make([]int32, s.numSets)
	for i := range keep {
		keep[i] = int32(i)
	}
	return keep
}

// SequentialGreedy runs the centralized greedy over the whole family —
// the baseline whose speedup Fig. 10(b) reports.
func (s *SetSystem) SequentialGreedy(k int) (*Result, error) {
	o, err := s.invertToOracle(s.identityKeep(), s.numSets, nil)
	if err != nil {
		return nil, err
	}
	return RunGreedy(o, k)
}

// ElementOracles partitions the *elements* across machines (element e goes
// to machine e mod machines) and returns one LocalOracle per machine over
// the full item space — the NEWGREEDI data layout for a SetSystem. Combine
// them with NewMultiOracle (reference) or ship them to cluster workers.
func (s *SetSystem) ElementOracles(machines int) ([]*LocalOracle, error) {
	if machines < 1 {
		return nil, fmt.Errorf("coverage: need >= 1 machine, got %d", machines)
	}
	oracles := make([]*LocalOracle, machines)
	keep := s.identityKeep()
	for i := 0; i < machines; i++ {
		m := uint32(i)
		o, err := s.invertToOracle(keep, s.numSets, func(e uint32) bool { return e%uint32(machines) == m })
		if err != nil {
			return nil, err
		}
		oracles[i] = o
	}
	return oracles, nil
}

// NewGreeDiSequential runs the full NEWGREEDI algorithm over an
// element-partitioned SetSystem using the in-process reference oracle.
// It returns exactly the centralized greedy solution (Lemma 2).
func (s *SetSystem) NewGreeDiSequential(k, machines int) (*Result, error) {
	oracles, err := s.ElementOracles(machines)
	if err != nil {
		return nil, err
	}
	multi, err := NewMultiOracle(oracles)
	if err != nil {
		return nil, err
	}
	return RunGreedy(multi, k)
}

// GreeDi is the set-distributed composable-core-sets baseline of
// Mirzasoleiman et al. (NeurIPS'13) with κ = k, as configured in the
// paper's §IV-A: sets are partitioned equally across machines, each
// machine greedily picks k of its sets, and the master greedily merges
// the ℓ·k candidates into the final k. Unlike NEWGREEDI its approximation
// degrades with ℓ (Fig. 10(c) plots the resulting coverage ratio).
func GreeDi(s *SetSystem, k, machines int) (*Result, error) {
	if machines < 1 {
		return nil, fmt.Errorf("coverage: need >= 1 machine, got %d", machines)
	}
	if k <= 0 {
		return nil, fmt.Errorf("coverage: k must be positive, got %d", k)
	}
	// Stage 1: per-machine greedy over its own partition of sets.
	candidates := make([]uint32, 0, machines*k)
	for mi := 0; mi < machines; mi++ {
		keep := make([]int32, s.numSets)
		local2global := make([]uint32, 0, (s.numSets+machines-1)/machines)
		for setID := 0; setID < s.numSets; setID++ {
			if setID%machines == mi {
				keep[setID] = int32(len(local2global))
				local2global = append(local2global, uint32(setID))
			} else {
				keep[setID] = -1
			}
		}
		kappa := k
		if kappa > len(local2global) {
			kappa = len(local2global)
		}
		if kappa == 0 {
			continue
		}
		o, err := s.invertToOracle(keep, len(local2global), nil)
		if err != nil {
			return nil, err
		}
		res, err := RunGreedy(o, kappa)
		if err != nil {
			return nil, err
		}
		for _, local := range res.Seeds {
			candidates = append(candidates, local2global[local])
		}
	}
	if len(candidates) < k {
		return nil, fmt.Errorf("coverage: only %d candidates for k = %d", len(candidates), k)
	}
	// Stage 2: master greedy over the merged candidates.
	keep := make([]int32, s.numSets)
	for i := range keep {
		keep[i] = -1
	}
	for local, setID := range candidates {
		keep[setID] = int32(local)
	}
	o, err := s.invertToOracle(keep, len(candidates), nil)
	if err != nil {
		return nil, err
	}
	res, err := RunGreedy(o, k)
	if err != nil {
		return nil, err
	}
	final := &Result{
		Coverage:  res.Coverage,
		Marginals: res.Marginals,
		Seeds:     make([]uint32, len(res.Seeds)),
	}
	for i, local := range res.Seeds {
		final.Seeds[i] = candidates[local]
	}
	return final, nil
}
