package coverage

import (
	"testing"
	"testing/quick"

	"dimm/internal/xrand"
)

func randomSystem(r *xrand.Rand, elems, sets, maxSize int) *SetSystem {
	family := make([][]uint32, sets)
	for i := range family {
		size := 1 + r.Intn(maxSize)
		seen := map[uint32]bool{}
		for j := 0; j < size; j++ {
			e := uint32(r.Intn(elems))
			if !seen[e] {
				seen[e] = true
				family[i] = append(family[i], e)
			}
		}
	}
	s, err := NewSetSystem(elems, family)
	if err != nil {
		panic(err)
	}
	return s
}

func TestSetSystemBasics(t *testing.T) {
	s, err := NewSetSystem(5, [][]uint32{{0, 1}, {2}, {}, {3, 4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSets() != 4 || s.NumElements() != 5 || s.TotalSize() != 6 {
		t.Fatal("set system dimensions wrong")
	}
	if got := s.Set(3); len(got) != 3 || got[0] != 3 {
		t.Fatalf("Set(3) = %v", got)
	}
	if _, err := NewSetSystem(2, [][]uint32{{5}}); err == nil {
		t.Fatal("out-of-range element accepted")
	}
}

func TestSequentialGreedyCoversAll(t *testing.T) {
	// Three disjoint sets cover the universe; greedy with k=3 must cover
	// all 6 elements.
	s, _ := NewSetSystem(6, [][]uint32{{0, 1}, {2, 3}, {4, 5}, {0}, {1}})
	res, err := s.SequentialGreedy(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 6 {
		t.Fatalf("coverage = %d, want 6", res.Coverage)
	}
}

// TestNewGreeDiSetSystemEqualsSequential: the element-partitioned
// NEWGREEDI run equals the sequential greedy exactly for every machine
// count (Lemma 2 on the Fig. 10 workload shape).
func TestNewGreeDiSetSystemEqualsSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		s := randomSystem(r, 5+r.Intn(40), 3+r.Intn(40), 1+r.Intn(6))
		k := 1 + r.Intn(s.NumSets())
		want, err := s.SequentialGreedy(k)
		if err != nil {
			return false
		}
		for _, machines := range []int{1, 2, 4, 9} {
			got, err := s.NewGreeDiSequential(k, machines)
			if err != nil {
				return false
			}
			if got.Coverage != want.Coverage {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGreeDiNeverBeatsNewGreeDi: the set-distributed baseline's coverage
// is at most the centralized greedy's on every instance we generate, and
// it degrades (weakly) as a valid solution: all its seeds are distinct
// and coverage is consistent with an independent recount.
func TestGreeDiQuality(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		s := randomSystem(r, 10+r.Intn(50), 8+r.Intn(50), 1+r.Intn(5))
		k := 1 + r.Intn(5)
		for _, machines := range []int{1, 2, 4} {
			res, err := GreeDi(s, k, machines)
			if err != nil {
				return false
			}
			if len(res.Seeds) != k {
				return false
			}
			seen := map[uint32]bool{}
			for _, u := range res.Seeds {
				if int(u) >= s.NumSets() || seen[u] {
					return false
				}
				seen[u] = true
			}
			// Recount coverage directly.
			covered := map[uint32]bool{}
			for _, u := range res.Seeds {
				for _, e := range s.Set(int(u)) {
					covered[e] = true
				}
			}
			if int64(len(covered)) != res.Coverage {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGreeDiSingleMachineEqualsGreedy(t *testing.T) {
	// With one machine, GreeDi stage 1 selects k candidates greedily and
	// stage 2 re-selects among exactly those, so coverage must equal the
	// sequential greedy's.
	r := xrand.New(5)
	for i := 0; i < 20; i++ {
		s := randomSystem(r, 30, 40, 4)
		k := 1 + r.Intn(6)
		want, err := s.SequentialGreedy(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GreeDi(s, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.Coverage != want.Coverage {
			t.Fatalf("GreeDi(1 machine) coverage %d != greedy %d", got.Coverage, want.Coverage)
		}
	}
}

func TestGreeDiDegradesOnAdversarialPartition(t *testing.T) {
	// Classic failure mode of set-distributed merging: complementary sets
	// land on different machines, and per-machine greedy commits to
	// locally-big but globally redundant sets. GreeDi may occasionally
	// luck past the plain greedy (greedy is not optimal), but it can
	// never beat the true optimum, and in aggregate it must trail the
	// exact greedy — the effect behind Fig. 10(c).
	r := xrand.New(11)
	worse, better := 0, 0
	var ngSum, gdSum int64
	for i := 0; i < 30; i++ {
		s := randomSystem(r, 60, 64, 6)
		k := 4
		ng, err := s.NewGreeDiSequential(k, 8)
		if err != nil {
			t.Fatal(err)
		}
		gd, err := GreeDi(s, k, 8)
		if err != nil {
			t.Fatal(err)
		}
		ngSum += ng.Coverage
		gdSum += gd.Coverage
		switch {
		case gd.Coverage < ng.Coverage:
			worse++
		case gd.Coverage > ng.Coverage:
			better++
		}
	}
	if gdSum > ngSum {
		t.Fatalf("GreeDi aggregate coverage %d exceeds exact greedy %d over 30 instances", gdSum, ngSum)
	}
	if worse == 0 {
		t.Fatalf("GreeDi never degraded across 30 adversarial instances (worse=%d better=%d); Fig. 10(c) effect absent", worse, better)
	}
	t.Logf("GreeDi worse on %d, better on %d of 30 instances at 8 machines (aggregate %d vs %d)",
		worse, better, gdSum, ngSum)
}

func TestGreeDiValidation(t *testing.T) {
	s, _ := NewSetSystem(3, [][]uint32{{0}, {1}})
	if _, err := GreeDi(s, 0, 2); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := GreeDi(s, 1, 0); err == nil {
		t.Fatal("0 machines accepted")
	}
	if _, err := GreeDi(s, 3, 2); err == nil {
		t.Fatal("k > candidate pool accepted")
	}
	if _, err := s.ElementOracles(0); err == nil {
		t.Fatal("0 machines accepted by ElementOracles")
	}
}
