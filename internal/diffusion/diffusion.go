// Package diffusion implements the influence propagation models of
// Kempe, Kleinberg and Tardos (KDD'03): independent cascade (IC) and
// linear threshold (LT). It provides
//
//   - forward Monte-Carlo simulation, the classic unbiased estimator of a
//     seed set's influence spread σ(S), used to validate seed sets produced
//     by the RIS-based algorithms; and
//   - exact spread computation by enumeration of all possible worlds, which
//     is only feasible on tiny graphs (the spread is #P-hard in general) and
//     serves as ground truth in the test suite.
package diffusion

import (
	"fmt"
	"math"

	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// Model identifies a diffusion model.
type Model int

const (
	// IC is the independent cascade model: a newly activated node u gets a
	// single chance to activate each out-neighbor v with probability p(u,v).
	IC Model = iota
	// LT is the linear threshold model: node v activates once the weights
	// of its activated in-neighbors reach a uniform random threshold.
	LT
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel converts a CLI string to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "ic", "IC":
		return IC, nil
	case "lt", "LT":
		return LT, nil
	default:
		return 0, fmt.Errorf("diffusion: unknown model %q (want ic|lt)", s)
	}
}

// Simulator runs forward cascades on one graph. It owns reusable scratch
// buffers, so a single Simulator amortizes all allocation across runs; it
// is not safe for concurrent use.
type Simulator struct {
	g       *graph.Graph
	r       *xrand.Rand
	visited []uint32 // epoch stamps; visited[v] == epoch means active
	epoch   uint32
	queue   []uint32
	thresh  []float64 // LT: remaining threshold mass per node this run
}

// NewSimulator returns a simulator over g seeded with seed.
func NewSimulator(g *graph.Graph, seed uint64) *Simulator {
	return &Simulator{
		g:       g,
		r:       xrand.New(seed),
		visited: make([]uint32, g.NumNodes()),
		queue:   make([]uint32, 0, 1024),
		thresh:  make([]float64, g.NumNodes()),
	}
}

// nextEpoch advances the visited-stamp epoch, clearing the array only on
// the (rare) wraparound.
func (s *Simulator) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
}

// RunOnce simulates a single cascade from seeds and returns the number of
// activated nodes (including the seeds).
func (s *Simulator) RunOnce(seeds []uint32, model Model) int {
	switch model {
	case IC:
		return s.runIC(seeds)
	case LT:
		return s.runLT(seeds)
	default:
		panic(fmt.Sprintf("diffusion: unknown model %v", model))
	}
}

func (s *Simulator) runIC(seeds []uint32) int {
	s.nextEpoch()
	s.queue = s.queue[:0]
	for _, v := range seeds {
		if s.visited[v] != s.epoch {
			s.visited[v] = s.epoch
			s.queue = append(s.queue, v)
		}
	}
	activated := len(s.queue)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		adj, prob := s.g.OutNeighbors(u)
		for i, v := range adj {
			if s.visited[v] == s.epoch {
				continue
			}
			if s.r.Float64() < float64(prob[i]) {
				s.visited[v] = s.epoch
				s.queue = append(s.queue, v)
				activated++
			}
		}
	}
	return activated
}

// runLT simulates the LT model with lazily drawn thresholds: a node's
// threshold is sampled the first time one of its in-neighbors activates,
// then decremented by each newly active in-neighbor's weight; the node
// activates when the remainder crosses zero. This is distributionally
// identical to drawing all thresholds up front and costs O(activated
// out-degree volume) instead of O(n) per run.
func (s *Simulator) runLT(seeds []uint32) int {
	s.nextEpoch()
	s.queue = s.queue[:0]
	for _, v := range seeds {
		if s.visited[v] != s.epoch {
			s.visited[v] = s.epoch
			s.queue = append(s.queue, v)
		}
	}
	activated := len(s.queue)
	// dirty lists the nodes whose threshold was drawn this run, so the
	// thresh array can be reset to its zero ("undrawn") state afterwards.
	var dirty []uint32
	defer func() {
		for _, v := range dirty {
			s.thresh[v] = 0
		}
	}()
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		adj, prob := s.g.OutNeighbors(u)
		for i, v := range adj {
			if s.visited[v] == s.epoch {
				continue
			}
			if s.thresh[v] == 0 {
				// First active in-neighbor: draw threshold in (0,1].
				t := s.r.Float64()
				if t == 0 {
					t = 1e-18
				}
				s.thresh[v] = t
				dirty = append(dirty, v)
			}
			s.thresh[v] -= float64(prob[i])
			if s.thresh[v] <= 1e-12 {
				s.visited[v] = s.epoch
				s.queue = append(s.queue, v)
				activated++
			}
		}
	}
	return activated
}

// Estimate runs rounds cascades and returns the sample mean and standard
// error of the spread σ(seeds).
func (s *Simulator) Estimate(seeds []uint32, model Model, rounds int) (mean, stderr float64) {
	if rounds <= 0 {
		return 0, 0
	}
	sum, sumSq := 0.0, 0.0
	for i := 0; i < rounds; i++ {
		x := float64(s.RunOnce(seeds, model))
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(rounds)
	variance := sumSq/float64(rounds) - mean*mean
	if variance < 0 {
		variance = 0
	}
	stderr = math.Sqrt(variance / float64(rounds))
	return mean, stderr
}
