package diffusion

import (
	"math"
	"testing"

	"dimm/internal/graph"
)

// fig1 builds the paper's Fig. 1 example graph (v1 = node 0).
func fig1(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, Prob: 1.0},
		{From: 0, To: 2, Prob: 1.0},
		{From: 0, To: 3, Prob: 0.4},
		{From: 1, To: 3, Prob: 0.3},
		{From: 2, To: 3, Prob: 0.2},
	} {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestExampleOneIC reproduces Example 1 of the paper exactly:
// σ({v1}) = 0.4·4 + 0.264·4 + 0.336·3 = 3.664 under IC.
func TestExampleOneIC(t *testing.T) {
	g := fig1(t)
	got, err := ExactSpread(g, []uint32{0}, IC)
	if err != nil {
		t.Fatal(err)
	}
	// Edge probabilities are stored as float32, so the world-probability
	// products carry ~1e-7 relative error.
	if math.Abs(got-3.664) > 1e-6 {
		t.Fatalf("exact IC spread = %v, paper says 3.664", got)
	}
}

// TestExampleOneLT reproduces Example 1 under LT:
// σ({v1}) = 0.4·4 + 0.5·4 + 0.1·3 = 3.9.
func TestExampleOneLT(t *testing.T) {
	g := fig1(t)
	got, err := ExactSpread(g, []uint32{0}, LT)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.9) > 1e-6 {
		t.Fatalf("exact LT spread = %v, paper says 3.9", got)
	}
}

func TestMonteCarloMatchesExactIC(t *testing.T) {
	g := fig1(t)
	sim := NewSimulator(g, 1)
	mean, stderr := sim.Estimate([]uint32{0}, IC, 200000)
	if math.Abs(mean-3.664) > 5*stderr+0.01 {
		t.Fatalf("MC IC estimate %v ± %v inconsistent with exact 3.664", mean, stderr)
	}
}

func TestMonteCarloMatchesExactLT(t *testing.T) {
	g := fig1(t)
	sim := NewSimulator(g, 2)
	mean, stderr := sim.Estimate([]uint32{0}, LT, 200000)
	if math.Abs(mean-3.9) > 5*stderr+0.01 {
		t.Fatalf("MC LT estimate %v ± %v inconsistent with exact 3.9", mean, stderr)
	}
}

func TestSpreadMonotoneInSeeds(t *testing.T) {
	g := fig1(t)
	for _, model := range []Model{IC, LT} {
		s1, err := ExactSpread(g, []uint32{1}, model)
		if err != nil {
			t.Fatal(err)
		}
		s12, err := ExactSpread(g, []uint32{1, 2}, model)
		if err != nil {
			t.Fatal(err)
		}
		if s12 < s1 {
			t.Fatalf("%v: σ({1,2})=%v < σ({1})=%v violates monotonicity", model, s12, s1)
		}
	}
}

func TestSpreadSubmodularExact(t *testing.T) {
	// σ(S ∪ {x}) − σ(S) must not increase as S grows (submodularity),
	// checked exactly on the Fig. 1 graph.
	g := fig1(t)
	for _, model := range []Model{IC, LT} {
		sEmptyGain := func(x uint32) float64 {
			sx, _ := ExactSpread(g, []uint32{x}, model)
			return sx
		}
		s1, _ := ExactSpread(g, []uint32{1}, model)
		s13, _ := ExactSpread(g, []uint32{1, 3}, model)
		gainAfter := s13 - s1
		gainBefore := sEmptyGain(3)
		if gainAfter > gainBefore+1e-9 {
			t.Fatalf("%v: marginal gain of node 3 grew from %v to %v", model, gainBefore, gainAfter)
		}
	}
}

func TestSeedsAlwaysCounted(t *testing.T) {
	g := fig1(t)
	sim := NewSimulator(g, 3)
	for i := 0; i < 100; i++ {
		if n := sim.RunOnce([]uint32{3}, IC); n < 1 {
			t.Fatalf("cascade reported %d activations with 1 seed", n)
		}
	}
	// Seeding every node activates every node.
	if n := sim.RunOnce([]uint32{0, 1, 2, 3}, IC); n != 4 {
		t.Fatalf("full seed set activated %d of 4", n)
	}
	// Duplicate seeds must not be double counted.
	if n := sim.RunOnce([]uint32{3, 3, 3}, LT); n != 1 {
		t.Fatalf("duplicate seeds counted %d times", n)
	}
}

func TestDeterministicChain(t *testing.T) {
	// 0 -> 1 -> 2 with probability 1 everywhere: spread of {0} is exactly 3
	// in every single run under both models.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	g := b.Build()
	sim := NewSimulator(g, 4)
	for _, model := range []Model{IC, LT} {
		for i := 0; i < 50; i++ {
			if n := sim.RunOnce([]uint32{0}, model); n != 3 {
				t.Fatalf("%v: deterministic chain activated %d, want 3", model, n)
			}
		}
	}
}

func TestZeroProbabilityEdge(t *testing.T) {
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1, 0)
	g := b.Build()
	sim := NewSimulator(g, 5)
	for i := 0; i < 50; i++ {
		if n := sim.RunOnce([]uint32{0}, IC); n != 1 {
			t.Fatalf("zero-probability edge fired (activated %d)", n)
		}
	}
	exact, err := ExactSpread(g, []uint32{0}, IC)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 1 {
		t.Fatalf("exact spread over zero edge = %v", exact)
	}
}

func TestEstimateZeroRounds(t *testing.T) {
	g := fig1(t)
	sim := NewSimulator(g, 6)
	mean, stderr := sim.Estimate([]uint32{0}, IC, 0)
	if mean != 0 || stderr != 0 {
		t.Fatal("Estimate with 0 rounds should return zeros")
	}
}

func TestExactRefusesLargeGraphs(t *testing.T) {
	g, err := graph.GenErdosRenyi(graph.GenConfig{Nodes: 100, AvgDegree: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactSpread(g, []uint32{0}, IC); err == nil {
		t.Fatal("exact IC accepted a 500-edge graph")
	}
	if _, err := ExactSpread(g, []uint32{0}, LT); err == nil {
		t.Fatal("exact LT accepted a 500-edge graph")
	}
}

func TestParseModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Model
	}{{"ic", IC}, {"IC", IC}, {"lt", LT}, {"LT", LT}} {
		got, err := ParseModel(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseModel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseModel("xyz"); err == nil {
		t.Fatal("bad model string accepted")
	}
	if IC.String() != "IC" || LT.String() != "LT" {
		t.Fatal("String() changed")
	}
}

func TestEpochWraparound(t *testing.T) {
	// Force the epoch counter through wraparound and confirm cascades stay
	// correct (stale stamps must not leak across the wrap).
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	sim := NewSimulator(g, 7)
	sim.epoch = math.MaxUint32 - 3
	for i := 0; i < 10; i++ {
		if n := sim.RunOnce([]uint32{0}, IC); n != 2 {
			t.Fatalf("run %d after wraparound activated %d, want 2", i, n)
		}
	}
}

func BenchmarkSimulateIC(b *testing.B) {
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 5000, AvgDegree: 10, Seed: 1, UniformAttach: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	sim := NewSimulator(wc, 1)
	seeds := []uint32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunOnce(seeds, IC)
	}
}

func BenchmarkSimulateLT(b *testing.B) {
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 5000, AvgDegree: 10, Seed: 1, UniformAttach: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	sim := NewSimulator(wc, 1)
	seeds := []uint32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunOnce(seeds, LT)
	}
}
