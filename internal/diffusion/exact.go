package diffusion

import (
	"fmt"

	"dimm/internal/graph"
)

// Exact limits: enumeration is exponential, so it is restricted to graphs
// small enough for the test suite (the spread is #P-hard in general).
const (
	maxExactEdgesIC   = 22 // 2^22 worlds
	maxExactChoicesLT = 1 << 22
)

// ExactSpread computes σ(seeds) exactly by enumerating possible worlds
// under the triggering-model interpretation of the given diffusion model.
// It is ground truth for tests and tiny examples only.
//
// IC: every edge is independently live with its probability; a world is a
// subset of edges and σ(S) = Σ_world Pr[world] · |reachable(S, world)|.
//
// LT: by the equivalence of Kempe et al., each node independently selects
// at most one incoming edge (edge <u,v> with probability p(u,v), none with
// probability 1 − Σ p); σ(S) is the expected reachability over those
// selections.
func ExactSpread(g *graph.Graph, seeds []uint32, model Model) (float64, error) {
	switch model {
	case IC:
		return exactIC(g, seeds)
	case LT:
		return exactLT(g, seeds)
	default:
		return 0, fmt.Errorf("diffusion: unknown model %v", model)
	}
}

type edgeRec struct {
	from, to uint32
	prob     float64
}

func collectEdges(g *graph.Graph) []edgeRec {
	edges := make([]edgeRec, 0, g.NumEdges())
	g.Edges(func(u, v uint32, p float32) {
		edges = append(edges, edgeRec{u, v, float64(p)})
	})
	return edges
}

// reach counts nodes reachable from seeds over the live edges.
func reach(n int, live []edgeRec, seeds []uint32) int {
	adj := make([][]uint32, n)
	for _, e := range live {
		adj[e.from] = append(adj[e.from], e.to)
	}
	seen := make([]bool, n)
	stack := make([]uint32, 0, n)
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	count := len(stack)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
				count++
			}
		}
	}
	return count
}

func exactIC(g *graph.Graph, seeds []uint32) (float64, error) {
	edges := collectEdges(g)
	if len(edges) > maxExactEdgesIC {
		return 0, fmt.Errorf("diffusion: exact IC spread needs <= %d edges, graph has %d", maxExactEdgesIC, len(edges))
	}
	n := g.NumNodes()
	total := 0.0
	worlds := 1 << len(edges)
	live := make([]edgeRec, 0, len(edges))
	for w := 0; w < worlds; w++ {
		p := 1.0
		live = live[:0]
		for i, e := range edges {
			if w&(1<<i) != 0 {
				p *= e.prob
				live = append(live, e)
			} else {
				p *= 1 - e.prob
			}
		}
		if p == 0 {
			continue
		}
		total += p * float64(reach(n, live, seeds))
	}
	return total, nil
}

func exactLT(g *graph.Graph, seeds []uint32) (float64, error) {
	n := g.NumNodes()
	// Each node selects one incoming edge or none.
	choices := 1
	for v := 0; v < n; v++ {
		c := g.InDegree(uint32(v)) + 1
		if choices > maxExactChoicesLT/c {
			return 0, fmt.Errorf("diffusion: exact LT spread has too many selection combinations")
		}
		choices *= c
	}
	idx := make([]int, n) // current selection per node; InDegree(v) means "none"
	total := 0.0
	live := make([]edgeRec, 0, n)
	for {
		p := 1.0
		live = live[:0]
		for v := 0; v < n && p > 0; v++ {
			adj, prob := g.InNeighbors(uint32(v))
			if idx[v] < len(adj) {
				p *= float64(prob[idx[v]])
				live = append(live, edgeRec{adj[idx[v]], uint32(v), 0})
			} else {
				p *= 1 - g.InProbSum(uint32(v))
			}
		}
		if p > 0 {
			total += p * float64(reach(n, live, seeds))
		}
		// Advance the mixed-radix counter.
		v := 0
		for ; v < n; v++ {
			idx[v]++
			if idx[v] <= g.InDegree(uint32(v)) {
				break
			}
			idx[v] = 0
		}
		if v == n {
			break
		}
	}
	return total, nil
}
