//go:build linux

package graph

import (
	"os"
	"syscall"
)

// fadviseDontneed asks the kernel to drop the file's page-cache pages
// (POSIX_FADV_DONTNEED). Pages still mapped by someone keep their cache
// entry, so callers drop PTEs first (madviseDontneed) when they want a
// genuinely cold file.
func fadviseDontneed(f *os.File, size int64) error {
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		f.Fd(), 0, uintptr(size), 4 /* POSIX_FADV_DONTNEED */, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
