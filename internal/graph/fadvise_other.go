//go:build !linux

package graph

import "os"

// fadviseDontneed is a no-op where posix_fadvise is unavailable; cache
// eviction is best-effort.
func fadviseDontneed(f *os.File, size int64) error { return nil }
