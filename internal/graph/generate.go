package graph

import (
	"fmt"
	"math/bits"

	"dimm/internal/xrand"
)

// GenConfig configures the synthetic social-network generators. These
// generators produce the dataset stand-ins for the paper's Table III: the
// evaluation's behaviour depends on scale and degree distribution, both of
// which the generators control, not on the identity of real users.
type GenConfig struct {
	Nodes      int     // number of nodes, n
	AvgDegree  float64 // target average out-degree (m = n*AvgDegree edges)
	Undirected bool    // emit both directions of every generated edge
	Seed       uint64  // generator seed
	// UniformAttach in [0,1]: probability that a preferential-attachment
	// step picks a uniformly random target instead of a degree-biased one.
	// Higher values flatten the degree tail. 0.15 approximates the shape
	// of follower networks.
	UniformAttach float64
}

// GenPreferential builds a directed preferential-attachment graph: nodes
// arrive one at a time and each new node emits edges whose targets are,
// with probability 1-UniformAttach, the head of a uniformly random
// existing edge (which is equivalent to degree-proportional choice) and
// otherwise a uniformly random earlier node. The result has a heavy-tailed
// in-degree distribution like real OSN follower graphs.
func GenPreferential(cfg GenConfig) (*Graph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("graph: preferential generator needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.AvgDegree <= 0 {
		return nil, fmt.Errorf("graph: average degree must be positive, got %v", cfg.AvgDegree)
	}
	if cfg.UniformAttach < 0 || cfg.UniformAttach > 1 {
		return nil, fmt.Errorf("graph: UniformAttach %v outside [0,1]", cfg.UniformAttach)
	}
	r := xrand.New(cfg.Seed)
	perNode := cfg.AvgDegree
	if cfg.Undirected {
		perNode /= 2
	}
	targetEdges := int(float64(cfg.Nodes) * perNode)
	if targetEdges < cfg.Nodes-1 {
		targetEdges = cfg.Nodes - 1
	}
	b := NewBuilderHint(cfg.Nodes, targetEdges*2)
	// heads records the head of each generated edge; sampling a uniform
	// element of heads is a degree-proportional draw over in-degrees.
	heads := make([]uint32, 0, targetEdges)
	addEdge := func(u, v uint32) error {
		if err := b.AddEdge(u, v, 1); err != nil {
			return err
		}
		if cfg.Undirected {
			if err := b.AddEdge(v, u, 1); err != nil {
				return err
			}
		}
		heads = append(heads, v)
		return nil
	}
	// Seed the process with a short path so early degree-biased draws have
	// something to land on.
	if err := addEdge(1, 0); err != nil {
		return nil, err
	}
	edgesLeft := targetEdges - 1
	// Hand each remaining node its share of edges, distributing the
	// remainder across the earliest nodes.
	for u := 2; u < cfg.Nodes; u++ {
		quota := edgesLeft / (cfg.Nodes - u)
		if quota < 1 {
			quota = 1
		}
		// A node can have at most u distinct earlier targets.
		if quota > u {
			quota = u
		}
		seen := map[uint32]bool{uint32(u): true}
		for q := 0; q < quota && edgesLeft > 0; q++ {
			var v uint32
			found := false
			for try := 0; try < 64; try++ {
				if r.Float64() < cfg.UniformAttach || try > 16 {
					v = uint32(r.Intn(u))
				} else {
					v = heads[r.Intn(len(heads))]
				}
				if !seen[v] {
					found = true
					break
				}
			}
			if !found {
				// Dense collisions (small u or a crowded neighborhood):
				// take the first unseen earlier node deterministically.
				for w := uint32(0); w < uint32(u); w++ {
					if !seen[w] {
						v, found = w, true
						break
					}
				}
				if !found {
					break // all earlier nodes already targeted
				}
			}
			seen[v] = true
			if err := addEdge(uint32(u), v); err != nil {
				return nil, err
			}
			edgesLeft--
		}
	}
	return b.Build(), nil
}

// RMATConfig configures GenRMAT. A, B and C are the recursive quadrant
// probabilities (the fourth quadrant gets 1-A-B-C); all-zero selects the
// classic (0.57, 0.19, 0.19) setting, which produces the steep power-law
// in-degree skew of web and follower graphs.
type RMATConfig struct {
	GenConfig
	A, B, C float64
}

// GenRMAT builds a directed R-MAT graph: each edge descends log2(n)
// levels of the recursive adjacency-matrix quadrant split, choosing a
// quadrant per level with probabilities (A, B, C, 1-A-B-C). The skew
// concentrates both endpoints on low node ids, giving a few massive
// in-neighborhoods and a long sparse tail — the layout that stresses
// cache locality of RR traversals far harder than GenPreferential's
// flatter tail. Self-loops and out-of-range draws (the 2^scale grid
// overhangs n when n is not a power of two) are resampled; parallel
// edges are kept, as their concentration on the dense quadrant is part
// of the skew.
func GenRMAT(cfg RMATConfig) (*Graph, error) {
	var b *Builder
	err := GenRMATStream(cfg, func(n int, edgeHint int64) error {
		b = NewBuilderHint(n, int(edgeHint))
		return nil
	}, func(u, v uint32) error {
		return b.AddEdge(u, v, 1)
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// GenRMATStream is GenRMAT's edge stream: it validates cfg, calls start
// once with the node count and an edge-count hint, then emits every
// generated edge (both directions when Undirected) without building or
// retaining anything. The RNG consumption per edge is identical to
// GenRMAT's, so streaming a given (cfg, seed) disk-direct produces
// exactly the edge sequence the in-memory generator would — the property
// the segmented-vs-heap equality tests pin. Disk-direct generation of
// 100M+ edge graphs feeds this straight into BuildSegmented.
func GenRMATStream(cfg RMATConfig, start func(n int, edgeHint int64) error, emit func(u, v uint32) error) error {
	if cfg.Nodes < 2 {
		return fmt.Errorf("graph: R-MAT generator needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.AvgDegree <= 0 {
		return fmt.Errorf("graph: average degree must be positive, got %v", cfg.AvgDegree)
	}
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || cfg.A+cfg.B+cfg.C >= 1 {
		return fmt.Errorf("graph: R-MAT quadrant probabilities (%v, %v, %v) must be non-negative and sum below 1",
			cfg.A, cfg.B, cfg.C)
	}
	r := xrand.New(cfg.Seed)
	perNode := cfg.AvgDegree
	if cfg.Undirected {
		perNode /= 2
	}
	target := int64(float64(cfg.Nodes) * perNode)
	hint := target
	if cfg.Undirected {
		hint *= 2
	}
	if err := start(cfg.Nodes, hint); err != nil {
		return err
	}
	scale := bits.Len(uint(cfg.Nodes - 1))
	ab := cfg.A + cfg.B
	abc := ab + cfg.C
	for added := int64(0); added < target; {
		var u, v uint32
		for lvl := 0; lvl < scale; lvl++ {
			u <<= 1
			v <<= 1
			switch p := r.Float64(); {
			case p < cfg.A:
			case p < ab:
				v |= 1
			case p < abc:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		if uint(u) >= uint(cfg.Nodes) || uint(v) >= uint(cfg.Nodes) || u == v {
			continue
		}
		if err := emit(u, v); err != nil {
			return err
		}
		if cfg.Undirected {
			if err := emit(v, u); err != nil {
				return err
			}
		}
		added++
	}
	return nil
}

// GenErdosRenyi builds a G(n, m)-style uniform random directed graph with
// approximately Nodes*AvgDegree edges (duplicates resampled).
func GenErdosRenyi(cfg GenConfig) (*Graph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("graph: ER generator needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.AvgDegree <= 0 || cfg.AvgDegree >= float64(cfg.Nodes-1) {
		return nil, fmt.Errorf("graph: average degree %v infeasible for %d nodes", cfg.AvgDegree, cfg.Nodes)
	}
	r := xrand.New(cfg.Seed)
	perNode := cfg.AvgDegree
	if cfg.Undirected {
		perNode /= 2
	}
	target := int(float64(cfg.Nodes) * perNode)
	b := NewBuilderHint(cfg.Nodes, target*2)
	type pair struct{ u, v uint32 }
	seen := make(map[pair]bool, target)
	for len(seen) < target {
		u := uint32(r.Intn(cfg.Nodes))
		v := uint32(r.Intn(cfg.Nodes))
		if u == v || seen[pair{u, v}] {
			continue
		}
		seen[pair{u, v}] = true
		if err := b.AddEdge(u, v, 1); err != nil {
			return nil, err
		}
		if cfg.Undirected {
			if err := b.AddEdge(v, u, 1); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// GenCommunity builds a planted-partition (stochastic block model style)
// graph: nodes are split into Communities groups; each edge's endpoints
// fall in the same group with probability InFraction, otherwise in two
// uniform groups. Within the choice of groups, endpoints are uniform.
// It exercises community structure, the regime where the CMD heuristic
// from the related work is motivated.
type CommunityConfig struct {
	GenConfig
	Communities int
	InFraction  float64 // fraction of edges that stay inside a community
}

// GenCommunity builds the planted-partition graph described above.
func GenCommunity(cfg CommunityConfig) (*Graph, error) {
	if cfg.Communities < 1 {
		return nil, fmt.Errorf("graph: need >= 1 community, got %d", cfg.Communities)
	}
	if cfg.InFraction < 0 || cfg.InFraction > 1 {
		return nil, fmt.Errorf("graph: InFraction %v outside [0,1]", cfg.InFraction)
	}
	if cfg.Nodes < 2*cfg.Communities {
		return nil, fmt.Errorf("graph: %d nodes too few for %d communities", cfg.Nodes, cfg.Communities)
	}
	r := xrand.New(cfg.Seed)
	perNode := cfg.AvgDegree
	if cfg.Undirected {
		perNode /= 2
	}
	target := int(float64(cfg.Nodes) * perNode)
	b := NewBuilderHint(cfg.Nodes, target*2)
	commSize := cfg.Nodes / cfg.Communities
	nodeIn := func(c int) uint32 {
		lo := c * commSize
		hi := lo + commSize
		if c == cfg.Communities-1 {
			hi = cfg.Nodes
		}
		return uint32(lo + r.Intn(hi-lo))
	}
	added := 0
	for added < target {
		var u, v uint32
		if r.Float64() < cfg.InFraction {
			c := r.Intn(cfg.Communities)
			u, v = nodeIn(c), nodeIn(c)
		} else {
			u, v = nodeIn(r.Intn(cfg.Communities)), nodeIn(r.Intn(cfg.Communities))
		}
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, 1); err != nil {
			return nil, err
		}
		if cfg.Undirected {
			if err := b.AddEdge(v, u, 1); err != nil {
				return nil, err
			}
		}
		added++
	}
	return b.Build(), nil
}
