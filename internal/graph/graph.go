// Package graph provides the compact directed-graph substrate used by every
// algorithm in this repository.
//
// An online social network is stored in compressed sparse row (CSR) form
// twice — once over outgoing edges (for forward diffusion simulation) and
// once over incoming edges (for reverse influence sampling, which walks
// edges backwards). All adjacency data lives in a handful of flat slices
// with uint32 node identifiers, so a graph with m edges costs roughly
// 2·m·(4+4) bytes regardless of node count; this keeps Go's garbage
// collector out of the hot path, which is the main scalability risk of a
// Go implementation at this data volume.
package graph

import (
	"fmt"
	"math"
	"sync"
)

// Graph is an immutable weighted directed graph. Construct one with a
// Builder, a loader, or a generator; once built it is safe for concurrent
// readers (all algorithms here share one Graph across machines/goroutines).
//
// Each directed edge <u,v> carries a propagation probability p(u,v) in
// (0,1], the probability that u activates v under the IC model, and the
// weight of u in v's threshold sum under the LT model.
type Graph struct {
	n int64 // number of nodes
	m int64 // number of directed edges

	// Out-CSR: edges leaving each node. outAdj[outStart[u]:outStart[u+1]]
	// are the heads of u's outgoing edges; outProb holds p(u, head).
	outStart []int64
	outAdj   []uint32
	outProb  []float32

	// In-CSR: edges entering each node. inAdj[inStart[v]:inStart[v+1]]
	// are the tails of v's incoming edges; inProb holds p(tail, v).
	inStart []int64
	inAdj   []uint32
	inProb  []float32

	// inProbSum[v] is the sum of v's incoming edge probabilities. The LT
	// model requires it to be <= 1; the reverse random walk stops at v
	// with probability 1 - inProbSum[v].
	inProbSum []float64

	// uniformIn reports that, for every node v, all of v's incoming edges
	// carry the same probability (true under the weighted-cascade model,
	// p = 1/indeg). Samplers use it to pick in-neighbors in O(1) and to
	// enable subset sampling with geometric jumps.
	uniformIn bool

	// hashOnce/hash memoize the base (version-0) content hash. The graph
	// is always handled by pointer, so the sync.Once copy restriction is
	// moot. ContentHash layers a per-version chained hash on top when the
	// graph has been mutated (see mutate.go).
	hashOnce sync.Once
	hash     string

	// mut holds all dynamic-graph state (overlay adjacency, version,
	// chained hash); nil for frozen graphs, so the frozen hot paths pay
	// one pointer test. See mutate.go.
	mut *mutState

	// seg records segmented-file provenance (source path, mmap mapping,
	// trailer CRCs); nil for graphs built in memory or loaded from
	// non-segmented formats. See segreader.go.
	seg *segState
}

// NumNodes returns n, the number of nodes.
func (g *Graph) NumNodes() int { return int(g.n) }

// NumEdges returns m, the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.m }

// OutDegree returns the number of edges leaving u.
func (g *Graph) OutDegree(u uint32) int {
	return int(g.outStart[u+1] - g.outStart[u])
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v uint32) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// OutNeighbors returns the heads and probabilities of u's outgoing edges.
// The returned slices alias the graph's storage and must not be modified.
func (g *Graph) OutNeighbors(u uint32) ([]uint32, []float32) {
	lo, hi := g.outStart[u], g.outStart[u+1]
	return g.outAdj[lo:hi], g.outProb[lo:hi]
}

// InNeighbors returns the tails and probabilities of v's incoming edges.
// The returned slices alias the graph's storage and must not be modified.
func (g *Graph) InNeighbors(v uint32) ([]uint32, []float32) {
	lo, hi := g.inStart[v], g.inStart[v+1]
	return g.inAdj[lo:hi], g.inProb[lo:hi]
}

// InProbSum returns the sum of incoming edge probabilities of v.
func (g *Graph) InProbSum(v uint32) float64 { return g.inProbSum[v] }

// UniformIn reports whether every node's incoming edges share one
// probability value (e.g. weighted-cascade weights).
func (g *Graph) UniformIn() bool { return g.uniformIn }

// AvgDegree returns m/n, the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// ValidateLT checks the linear-threshold precondition that every node's
// incoming probabilities sum to at most 1 (plus a small tolerance for
// float accumulation). Algorithms under the LT model call this up front so
// a bad weight assignment fails loudly instead of skewing the walk.
func (g *Graph) ValidateLT() error {
	const tol = 1e-6
	for v := int64(0); v < g.n; v++ {
		if g.inProbSum[v] > 1+tol {
			return fmt.Errorf("graph: node %d has incoming probability sum %g > 1; not a valid LT instance", v, g.inProbSum[v])
		}
	}
	return nil
}

// Edge is a single directed, weighted edge. It is the exchange format of
// builders and loaders, not the storage format.
type Edge struct {
	From, To uint32
	Prob     float32
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are kept as parallel edges (matching how SNAP-style edge lists are
// usually consumed after dedup by the loader); self-loops are rejected
// because neither diffusion model gives them meaning.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph over n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NewBuilderHint is NewBuilder with a capacity hint for the edge count.
func NewBuilderHint(n int, edgeHint int) *Builder {
	return &Builder{n: n, edges: make([]Edge, 0, edgeHint)}
}

// AddEdge records the directed edge <from,to> with probability prob.
func (b *Builder) AddEdge(from, to uint32, prob float32) error {
	if int(from) >= b.n || int(to) >= b.n {
		return fmt.Errorf("graph: edge <%d,%d> out of range for %d nodes", from, to, b.n)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on node %d rejected", from)
	}
	if prob < 0 || prob > 1 || (prob != prob) {
		return fmt.Errorf("graph: edge <%d,%d> probability %v outside [0,1]", from, to, prob)
	}
	b.edges = append(b.edges, Edge{From: from, To: to, Prob: prob})
	return nil
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph. The builder can be reused after
// Build; the produced graph does not alias builder memory.
func (b *Builder) Build() *Graph {
	n := int64(b.n)
	m := int64(len(b.edges))
	g := &Graph{
		n:         n,
		m:         m,
		outStart:  make([]int64, n+1),
		outAdj:    make([]uint32, m),
		outProb:   make([]float32, m),
		inStart:   make([]int64, n+1),
		inAdj:     make([]uint32, m),
		inProb:    make([]float32, m),
		inProbSum: make([]float64, n),
	}
	// Counting sort into both CSRs.
	for _, e := range b.edges {
		g.outStart[e.From+1]++
		g.inStart[e.To+1]++
	}
	for i := int64(0); i < n; i++ {
		g.outStart[i+1] += g.outStart[i]
		g.inStart[i+1] += g.inStart[i]
	}
	outPos := make([]int64, n)
	inPos := make([]int64, n)
	for _, e := range b.edges {
		op := g.outStart[e.From] + outPos[e.From]
		g.outAdj[op] = e.To
		g.outProb[op] = e.Prob
		outPos[e.From]++
		ip := g.inStart[e.To] + inPos[e.To]
		g.inAdj[ip] = e.From
		g.inProb[ip] = e.Prob
		inPos[e.To]++
	}
	g.finalize()
	return g
}

// finalize computes derived fields (inProbSum, uniformIn).
func (g *Graph) finalize() {
	uniform := true
	for v := int64(0); v < g.n; v++ {
		lo, hi := g.inStart[v], g.inStart[v+1]
		sum := 0.0
		var first float32
		for i := lo; i < hi; i++ {
			p := g.inProb[i]
			sum += float64(p)
			if i == lo {
				first = p
			} else if p != first {
				uniform = false
			}
		}
		g.inProbSum[v] = sum
	}
	g.uniformIn = uniform
}

// Edges calls fn for every directed edge. It exists for loaders/writers and
// tests; algorithms use the CSR accessors directly.
func (g *Graph) Edges(fn func(from, to uint32, prob float32)) {
	for u := int64(0); u < g.n; u++ {
		lo, hi := g.outStart[u], g.outStart[u+1]
		for i := lo; i < hi; i++ {
			fn(uint32(u), g.outAdj[i], g.outProb[i])
		}
	}
}

// MaxInDegree returns the maximum in-degree; generators use it in stats.
func (g *Graph) MaxInDegree() int {
	best := int64(0)
	for v := int64(0); v < g.n; v++ {
		if d := g.inStart[v+1] - g.inStart[v]; d > best {
			best = d
		}
	}
	return int(best)
}

// DegreeHistogramLogBins returns counts of out-degrees in power-of-two bins
// (bin i holds degrees in [2^i, 2^(i+1))); used to sanity-check that the
// synthetic generators produce heavy-tailed distributions.
func (g *Graph) DegreeHistogramLogBins() []int64 {
	bins := make([]int64, 34)
	for u := int64(0); u < g.n; u++ {
		d := g.outStart[u+1] - g.outStart[u]
		if d == 0 {
			bins[0]++
			continue
		}
		b := int(math.Log2(float64(d))) + 1
		if b >= len(bins) {
			b = len(bins) - 1
		}
		bins[b]++
	}
	return bins
}
