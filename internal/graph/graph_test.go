package graph

import (
	"math"
	"testing"
	"testing/quick"

	"dimm/internal/xrand"
)

// fig1Graph builds the 4-node example from the paper's Fig. 1:
// v1->v2 (1.0), v1->v3 (1.0), v1->v4 (0.4), v2->v4 (0.3), v3->v4 (0.2).
// Node ids are shifted down by one (v1 = 0).
func fig1Graph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(4)
	edges := []Edge{
		{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 0.4}, {1, 3, 0.3}, {2, 3, 0.2},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := fig1Graph(t)
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %d nodes %d edges, want 4/5", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree(0) != 3 || g.InDegree(3) != 3 {
		t.Fatalf("degrees wrong: out(0)=%d in(3)=%d", g.OutDegree(0), g.InDegree(3))
	}
	adj, prob := g.OutNeighbors(0)
	if len(adj) != 3 {
		t.Fatalf("out-neighbors of 0: %v", adj)
	}
	seen := map[uint32]float32{}
	for i, v := range adj {
		seen[v] = prob[i]
	}
	if seen[1] != 1.0 || seen[2] != 1.0 || seen[3] != 0.4 {
		t.Fatalf("out-edge probabilities wrong: %v", seen)
	}
	inAdj, inProb := g.InNeighbors(3)
	inSeen := map[uint32]float32{}
	for i, u := range inAdj {
		inSeen[u] = inProb[i]
	}
	if inSeen[0] != 0.4 || inSeen[1] != 0.3 || inSeen[2] != 0.2 {
		t.Fatalf("in-edge probabilities wrong: %v", inSeen)
	}
	if math.Abs(g.InProbSum(3)-0.9) > 1e-6 {
		t.Fatalf("InProbSum(3) = %v, want 0.9", g.InProbSum(3))
	}
	if g.UniformIn() {
		t.Fatal("fig1 graph has non-uniform in-probabilities but UniformIn() = true")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0, 0.5); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(0, 3, 0.5); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := b.AddEdge(0, 1, 1.5); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := b.AddEdge(0, 1, -0.1); err == nil {
		t.Fatal("negative probability accepted")
	}
	if err := b.AddEdge(0, 1, float32(math.NaN())); err == nil {
		t.Fatal("NaN probability accepted")
	}
}

func TestValidateLT(t *testing.T) {
	g := fig1Graph(t)
	if err := g.ValidateLT(); err != nil {
		t.Fatalf("fig1 graph should be a valid LT instance: %v", err)
	}
	b := NewBuilder(3)
	_ = b.AddEdge(0, 2, 0.8)
	_ = b.AddEdge(1, 2, 0.8)
	bad := b.Build()
	if err := bad.ValidateLT(); err == nil {
		t.Fatal("incoming sum 1.6 should fail ValidateLT")
	}
}

func TestWeightedCascade(t *testing.T) {
	g := fig1Graph(t)
	wc, err := AssignWeights(g, WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 has in-degree 3, so each incoming edge gets 1/3.
	_, probs := wc.InNeighbors(3)
	for _, p := range probs {
		if math.Abs(float64(p)-1.0/3) > 1e-6 {
			t.Fatalf("WC probability = %v, want 1/3", p)
		}
	}
	if !wc.UniformIn() {
		t.Fatal("WC graph must report uniform incoming probabilities")
	}
	if err := wc.ValidateLT(); err != nil {
		t.Fatalf("WC weights must be LT-valid: %v", err)
	}
	for v := uint32(0); v < uint32(wc.NumNodes()); v++ {
		if wc.InDegree(v) > 0 && math.Abs(wc.InProbSum(v)-1) > 1e-5 {
			t.Fatalf("WC in-sum of %d = %v, want 1", v, wc.InProbSum(v))
		}
	}
}

func TestUniformAndTrivalencyWeights(t *testing.T) {
	g := fig1Graph(t)
	u, err := AssignWeights(g, UniformWeight, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.Edges(func(_, _ uint32, p float32) {
		if p != 0.05 {
			t.Fatalf("uniform weight = %v", p)
		}
	})
	if _, err := AssignWeights(g, UniformWeight, 0, 0); err == nil {
		t.Fatal("uniform p=0 accepted")
	}
	tri, err := AssignWeights(g, Trivalency, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	tri.Edges(func(_, _ uint32, p float32) {
		if p != 0.1 && p != 0.01 && p != 0.001 {
			t.Fatalf("trivalency weight = %v", p)
		}
	})
}

func TestParseWeightModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want WeightModel
	}{{"wc", WeightedCascade}, {"weighted-cascade", WeightedCascade}, {"uniform", UniformWeight}, {"trivalency", Trivalency}, {"tri", Trivalency}} {
		got, err := ParseWeightModel(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseWeightModel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseWeightModel("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if WeightedCascade.String() != "wc" || UniformWeight.String() != "uniform" || Trivalency.String() != "trivalency" {
		t.Fatal("String() values changed")
	}
}

// csrConsistent verifies the in-CSR is the exact transpose of the out-CSR.
func csrConsistent(t *testing.T, g *Graph) {
	t.Helper()
	type key struct {
		u, v uint32
		p    float32
	}
	fwd := map[key]int{}
	g.Edges(func(u, v uint32, p float32) { fwd[key{u, v, p}]++ })
	total := 0
	for v := uint32(0); v < uint32(g.NumNodes()); v++ {
		adj, prob := g.InNeighbors(v)
		for i, u := range adj {
			k := key{u, v, prob[i]}
			if fwd[k] == 0 {
				t.Fatalf("in-edge <%d,%d> missing from out-CSR", u, v)
			}
			fwd[k]--
			total++
		}
	}
	if int64(total) != g.NumEdges() {
		t.Fatalf("in-CSR has %d edges, out-CSR %d", total, g.NumEdges())
	}
}

func TestCSRTransposeProperty(t *testing.T) {
	// Property test: random edge multisets produce consistent dual CSRs.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(40)
		b := NewBuilder(n)
		edges := r.Intn(120)
		for i := 0; i < edges; i++ {
			u := uint32(r.Intn(n))
			v := uint32(r.Intn(n))
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v, float32(r.Float64())); err != nil {
				return false
			}
		}
		g := b.Build()
		// Inline transpose verification (quick.Check has no *testing.T).
		type key struct {
			u, v uint32
			p    float32
		}
		fwd := map[key]int{}
		g.Edges(func(u, v uint32, p float32) { fwd[key{u, v, p}]++ })
		count := 0
		for v := uint32(0); v < uint32(g.NumNodes()); v++ {
			adj, prob := g.InNeighbors(v)
			for i, u := range adj {
				k := key{u, v, prob[i]}
				if fwd[k] == 0 {
					return false
				}
				fwd[k]--
				count++
			}
		}
		return int64(count) == g.NumEdges()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenPreferential(t *testing.T) {
	g, err := GenPreferential(GenConfig{Nodes: 2000, AvgDegree: 10, Seed: 1, UniformAttach: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	avg := g.AvgDegree()
	if avg < 7 || avg > 13 {
		t.Fatalf("average degree %v far from target 10", avg)
	}
	csrConsistent(t, g)
	// Heavy tail: max in-degree should far exceed the average.
	if g.MaxInDegree() < 5*int(avg) {
		t.Fatalf("max in-degree %d lacks a heavy tail (avg %v)", g.MaxInDegree(), avg)
	}
}

func TestGenPreferentialUndirected(t *testing.T) {
	g, err := GenPreferential(GenConfig{Nodes: 500, AvgDegree: 8, Undirected: true, Seed: 2, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge must appear in both directions.
	type pair struct{ u, v uint32 }
	cnt := map[pair]int{}
	g.Edges(func(u, v uint32, _ float32) { cnt[pair{u, v}]++ })
	for p, c := range cnt {
		if cnt[pair{p.v, p.u}] != c {
			t.Fatalf("edge <%d,%d> not symmetric", p.u, p.v)
		}
	}
}

func TestGenPreferentialDeterministic(t *testing.T) {
	a, _ := GenPreferential(GenConfig{Nodes: 300, AvgDegree: 6, Seed: 7, UniformAttach: 0.1})
	b, _ := GenPreferential(GenConfig{Nodes: 300, AvgDegree: 6, Seed: 7, UniformAttach: 0.1})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	var ea, eb []Edge
	a.Edges(func(u, v uint32, p float32) { ea = append(ea, Edge{u, v, p}) })
	b.Edges(func(u, v uint32, p float32) { eb = append(eb, Edge{u, v, p}) })
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGenErdosRenyi(t *testing.T) {
	g, err := GenErdosRenyi(GenConfig{Nodes: 1000, AvgDegree: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumEdges(); got != 5000 {
		t.Fatalf("edges = %d, want 5000", got)
	}
	csrConsistent(t, g)
}

func TestGenCommunity(t *testing.T) {
	g, err := GenCommunity(CommunityConfig{
		GenConfig:   GenConfig{Nodes: 1000, AvgDegree: 8, Seed: 4},
		Communities: 10,
		InFraction:  0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 8000 {
		t.Fatalf("edges = %d, want 8000", g.NumEdges())
	}
	// Most edges should stay within a community block of 100 nodes.
	inside := 0
	g.Edges(func(u, v uint32, _ float32) {
		if u/100 == v/100 {
			inside++
		}
	})
	frac := float64(inside) / float64(g.NumEdges())
	if frac < 0.8 {
		t.Fatalf("only %v of edges inside communities, want >= 0.8", frac)
	}
}

func TestGenRMAT(t *testing.T) {
	// 3000 is deliberately not a power of two: grid overhang must be
	// resampled, not emitted as out-of-range ids.
	g, err := GenRMAT(RMATConfig{GenConfig: GenConfig{Nodes: 3000, AvgDegree: 8, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 24000 {
		t.Fatalf("edges = %d, want 24000", g.NumEdges())
	}
	csrConsistent(t, g)
	selfLoops := 0
	g.Edges(func(u, v uint32, _ float32) {
		if u == v {
			selfLoops++
		}
	})
	if selfLoops != 0 {
		t.Fatalf("%d self-loops emitted", selfLoops)
	}
	// The quadrant skew must produce a far heavier in-degree tail than the
	// preferential generator's.
	if g.MaxInDegree() < 20*int(g.AvgDegree()) {
		t.Fatalf("max in-degree %d lacks R-MAT skew (avg %v)", g.MaxInDegree(), g.AvgDegree())
	}
}

func TestGenRMATDeterministic(t *testing.T) {
	a, _ := GenRMAT(RMATConfig{GenConfig: GenConfig{Nodes: 500, AvgDegree: 6, Seed: 9}})
	b, _ := GenRMAT(RMATConfig{GenConfig: GenConfig{Nodes: 500, AvgDegree: 6, Seed: 9}})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	var ea, eb []Edge
	a.Edges(func(u, v uint32, p float32) { ea = append(ea, Edge{u, v, p}) })
	b.Edges(func(u, v uint32, p float32) { eb = append(eb, Edge{u, v, p}) })
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := GenRMAT(RMATConfig{GenConfig: GenConfig{Nodes: 1, AvgDegree: 2}}); err == nil {
		t.Fatal("1-node R-MAT accepted")
	}
	if _, err := GenRMAT(RMATConfig{GenConfig: GenConfig{Nodes: 10, AvgDegree: 2}, A: 0.6, B: 0.3, C: 0.2}); err == nil {
		t.Fatal("quadrant probabilities summing past 1 accepted")
	}
	if _, err := GenPreferential(GenConfig{Nodes: 1, AvgDegree: 2}); err == nil {
		t.Fatal("1-node PA accepted")
	}
	if _, err := GenPreferential(GenConfig{Nodes: 10, AvgDegree: 0}); err == nil {
		t.Fatal("zero degree accepted")
	}
	if _, err := GenPreferential(GenConfig{Nodes: 10, AvgDegree: 2, UniformAttach: 2}); err == nil {
		t.Fatal("UniformAttach=2 accepted")
	}
	if _, err := GenErdosRenyi(GenConfig{Nodes: 10, AvgDegree: 20}); err == nil {
		t.Fatal("infeasible ER degree accepted")
	}
	if _, err := GenCommunity(CommunityConfig{GenConfig: GenConfig{Nodes: 10, AvgDegree: 2}, Communities: 0}); err == nil {
		t.Fatal("0 communities accepted")
	}
	if _, err := GenCommunity(CommunityConfig{GenConfig: GenConfig{Nodes: 10, AvgDegree: 2}, Communities: 2, InFraction: 3}); err == nil {
		t.Fatal("InFraction=3 accepted")
	}
}

func TestDegreeHistogramLogBins(t *testing.T) {
	g := fig1Graph(t)
	bins := g.DegreeHistogramLogBins()
	var total int64
	for _, c := range bins {
		total += c
	}
	if total != int64(g.NumNodes()) {
		t.Fatalf("histogram covers %d nodes, want %d", total, g.NumNodes())
	}
	// Node 0 has out-degree 3 -> bin log2(3)+1 = 2.
	if bins[2] != 1 {
		t.Fatalf("bin layout changed: %v", bins)
	}
}
