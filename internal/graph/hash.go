package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// ContentHash returns a stable fingerprint of the graph's content:
// "sha256:" + hex of a SHA-256 over the node/edge counts, the out-CSR
// arrays, and the edge probabilities. Two graphs hash equal iff they
// have identical topology and identical weights, regardless of how they
// were loaded (edge list, binary file, generator). The in-CSR is
// excluded — it is derived deterministically from the out-CSR, so
// hashing it would only slow the pass without adding discrimination.
//
// The hash pins checkpoints (internal/store fingerprints) and future
// caches to the exact substrate they were computed on. It is memoized;
// the first call streams ~12 bytes/edge through SHA-256, subsequent
// calls are free.
func (g *Graph) ContentHash() string {
	g.hashOnce.Do(func() {
		h := sha256.New()
		var hdr [8]byte
		h.Write([]byte("dimm-graph-v1"))
		binary.LittleEndian.PutUint64(hdr[:], uint64(g.n))
		h.Write(hdr[:])
		binary.LittleEndian.PutUint64(hdr[:], uint64(g.m))
		h.Write(hdr[:])

		// Stream each array through a reused chunk buffer instead of
		// binary.Write, which would allocate the full encoded size.
		const chunk = 8192
		buf := make([]byte, 0, chunk*8)
		flush := func() {
			h.Write(buf)
			buf = buf[:0]
		}
		for _, v := range g.outStart {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			if len(buf) >= chunk*8 {
				flush()
			}
		}
		flush()
		for _, v := range g.outAdj {
			buf = binary.LittleEndian.AppendUint32(buf, v)
			if len(buf) >= chunk*8 {
				flush()
			}
		}
		flush()
		for _, p := range g.outProb {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p))
			if len(buf) >= chunk*8 {
				flush()
			}
		}
		flush()
		g.hash = fmt.Sprintf("sha256:%x", h.Sum(nil))
	})
	return g.hash
}
