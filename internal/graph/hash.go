package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// ContentHash returns a stable fingerprint of the graph's content at its
// current version. For a frozen (or never-mutated) graph it is the base
// hash: "sha256:" + hex of a SHA-256 over the node/edge counts, the
// out-CSR arrays, and the edge probabilities. After ApplyUpdates it is
// the chained hash SHA-256(previous hash ‖ batch), recomputed per batch —
// so a mutation always changes the reported hash, and two graphs hash
// equal iff they took the same base through the same update history.
//
// The hash pins checkpoints (internal/store fingerprints) and caches to
// the exact substrate they were computed on.
func (g *Graph) ContentHash() string {
	if g.mut != nil && g.mut.version > 0 {
		return g.mut.hash
	}
	return g.BaseHash()
}

// BaseHash returns the version-0 content hash — the fingerprint of the
// graph as built, before any mutation. Store fingerprints use it so a
// checkpoint plus its recorded graph-delta segments remains restorable
// onto a freshly loaded base graph. It is memoized; the first call
// streams ~12 bytes/edge through SHA-256, subsequent calls are free.
// Call it before the first ApplyUpdates: the base CSR must still be
// unmutated for the streamed bytes to describe version 0.
func (g *Graph) BaseHash() string {
	g.hashOnce.Do(func() {
		h := sha256.New()
		var hdr [8]byte
		h.Write([]byte("dimm-graph-v1"))
		binary.LittleEndian.PutUint64(hdr[:], uint64(g.n))
		h.Write(hdr[:])
		binary.LittleEndian.PutUint64(hdr[:], uint64(g.m))
		h.Write(hdr[:])

		// Stream each array through a reused chunk buffer instead of
		// binary.Write, which would allocate the full encoded size.
		const chunk = 8192
		buf := make([]byte, 0, chunk*8)
		flush := func() {
			h.Write(buf)
			buf = buf[:0]
		}
		for _, v := range g.outStart {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			if len(buf) >= chunk*8 {
				flush()
			}
		}
		flush()
		for _, v := range g.outAdj {
			buf = binary.LittleEndian.AppendUint32(buf, v)
			if len(buf) >= chunk*8 {
				flush()
			}
		}
		flush()
		for _, p := range g.outProb {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p))
			if len(buf) >= chunk*8 {
				flush()
			}
		}
		flush()
		g.hash = fmt.Sprintf("sha256:%x", h.Sum(nil))
	})
	return g.hash
}
