package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"dimm/internal/checksum"
)

// ContentHash returns a stable fingerprint of the graph's content at its
// current version. For a frozen (or never-mutated) graph it is the base
// hash (see BaseHash). After ApplyUpdates it is the chained hash
// SHA-256(previous hash ‖ batch), recomputed per batch — so a mutation
// always changes the reported hash, and two graphs hash equal iff they
// took the same base through the same update history.
//
// The hash pins checkpoints (internal/store fingerprints) and caches to
// the exact substrate they were computed on.
func (g *Graph) ContentHash() string {
	if g.mut != nil && g.mut.version > 0 {
		return g.mut.hash
	}
	return g.BaseHash()
}

// BaseHash returns the version-0 content hash — the fingerprint of the
// graph as built, before any mutation: "sha256:" + hex of a SHA-256 over
// the node/edge counts and the per-SegBlockSize-block CRC32C digests of
// the out-CSR sections (offsets, targets, probabilities), exactly the
// digests a segmented file stores in its trailers. Hashing block digests
// instead of raw arrays means a graph opened from a .dsg file — mem or
// mmap backend — fingerprints in O(blocks) without re-reading (or, for
// mmap, ever faulting in) the CSR payload, while heap-built graphs
// stream their slices through the same per-block CRCs and land on the
// same value. The in-CSR is excluded: it is a derived view of the same
// edges, and excluding it keeps the hash stable across in-bucket
// reorderings that cannot change the edge multiset.
//
// It is memoized; call it before the first ApplyUpdates so the streamed
// bytes describe version 0. Store fingerprints use it so a checkpoint
// plus its recorded graph-delta segments remains restorable onto a
// freshly loaded base graph.
func (g *Graph) BaseHash() string {
	g.hashOnce.Do(func() {
		h := sha256.New()
		var hdr [8]byte
		h.Write([]byte("dimm-graph-v2"))
		binary.LittleEndian.PutUint64(hdr[:], uint64(g.n))
		h.Write(hdr[:])
		binary.LittleEndian.PutUint64(hdr[:], uint64(g.m))
		h.Write(hdr[:])
		binary.LittleEndian.PutUint32(hdr[:4], SegBlockSize)
		h.Write(hdr[:4])

		outSections := [3]int{secOutStart, secOutAdj, secOutProb}
		var crcs []uint32
		if g.seg != nil {
			// Opened from a segmented file: the trailers already hold the
			// per-block digests (verified against the trailer self-CRC at
			// open; the mem backend additionally verified every payload
			// block against them).
			for _, kind := range outSections {
				crcs = append(crcs, g.seg.crcs[kind]...)
			}
		} else {
			c := newBlockCRCer()
			for _, v := range g.outStart {
				c.add8(uint64(v))
			}
			crcs = append(crcs, c.finish()...)
			for _, v := range g.outAdj {
				c.add4(v)
			}
			crcs = append(crcs, c.finish()...)
			for _, p := range g.outProb {
				c.add4(math.Float32bits(p))
			}
			crcs = append(crcs, c.finish()...)
		}
		buf := make([]byte, 0, len(crcs)*4)
		for _, crc := range crcs {
			buf = binary.LittleEndian.AppendUint32(buf, crc)
		}
		h.Write(buf)
		g.hash = fmt.Sprintf("sha256:%x", h.Sum(nil))
	})
	return g.hash
}

// blockCRCer accumulates little-endian element images and emits one
// CRC32C per SegBlockSize block — the same chunking a segmented file's
// section writer uses, so heap slices digest to the trailer values.
// finish seals the current section's digests and resets for the next.
type blockCRCer struct {
	buf  []byte
	fill int
	crcs []uint32
}

func newBlockCRCer() *blockCRCer {
	return &blockCRCer{buf: make([]byte, SegBlockSize)}
}

func (c *blockCRCer) flush() {
	if c.fill > 0 {
		c.crcs = append(c.crcs, checksum.Sum(c.buf[:c.fill]))
		c.fill = 0
	}
}

func (c *blockCRCer) add4(v uint32) {
	if c.fill == SegBlockSize {
		c.flush()
	}
	binary.LittleEndian.PutUint32(c.buf[c.fill:], v)
	c.fill += 4
}

func (c *blockCRCer) add8(v uint64) {
	if c.fill == SegBlockSize {
		c.flush()
	}
	binary.LittleEndian.PutUint64(c.buf[c.fill:], v)
	c.fill += 8
}

func (c *blockCRCer) finish() []uint32 {
	c.flush()
	out := c.crcs
	c.crcs = nil
	return out
}
