package graph

import (
	"bytes"
	"strings"
	"testing"
)

func hashTestGraph(t *testing.T, seed uint64, model WeightModel) *Graph {
	t.Helper()
	g, err := GenPreferential(GenConfig{Nodes: 200, AvgDegree: 4, Seed: seed, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	g, err = AssignWeights(g, model, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestContentHashStable(t *testing.T) {
	g := hashTestGraph(t, 7, WeightedCascade)
	h := g.ContentHash()
	if !strings.HasPrefix(h, "sha256:") || len(h) != len("sha256:")+64 {
		t.Fatalf("malformed hash %q", h)
	}
	if again := g.ContentHash(); again != h {
		t.Fatalf("hash not memoized consistently: %s vs %s", h, again)
	}
	// Same generator parameters → same content → same hash.
	if hashTestGraph(t, 7, WeightedCascade).ContentHash() != h {
		t.Fatal("identical graphs hash differently")
	}
}

func TestContentHashDiscriminates(t *testing.T) {
	base := hashTestGraph(t, 7, WeightedCascade)
	// Different topology.
	if hashTestGraph(t, 8, WeightedCascade).ContentHash() == base.ContentHash() {
		t.Fatal("different topologies hash equal")
	}
	// Same topology, different weights.
	if hashTestGraph(t, 7, Trivalency).ContentHash() == base.ContentHash() {
		t.Fatal("different weights hash equal")
	}
}

func TestContentHashSurvivesBinaryRoundTrip(t *testing.T) {
	g := hashTestGraph(t, 11, WeightedCascade)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ContentHash() != g.ContentHash() {
		t.Fatal("binary round trip changed the content hash")
	}
}
