package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadEdgeList reads a SNAP-style plain-text edge list: one "u v" or
// "u v p" line per edge, '#' or '%' comment lines ignored. Node ids are
// arbitrary non-negative integers and are remapped to a dense 0..n-1 range
// in first-appearance order. If undirected is true every line contributes
// both directions. Lines without a probability get probability 1; callers
// typically follow with AssignWeights to apply the paper's WC setting.
//
// Real SNAP datasets (the paper's Facebook/Google+/LiveJournal files) load
// through this function unchanged.
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	type rawEdge struct {
		from, to uint32
		prob     float32
	}
	var raw []rawEdge
	remap := make(map[int64]uint32)
	id := func(x int64) uint32 {
		if v, ok := remap[x]; ok {
			return v
		}
		v := uint32(len(remap))
		remap[x] = v
		return v
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id %q: %v", lineNo, fields[1], err)
		}
		p := float32(1)
		if len(fields) >= 3 {
			pf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad probability %q: %v", lineNo, fields[2], err)
			}
			p = float32(pf)
		}
		if u == v {
			continue // silently drop self-loops, common in raw crawls
		}
		ui, vi := id(u), id(v)
		raw = append(raw, rawEdge{ui, vi, p})
		if undirected {
			raw = append(raw, rawEdge{vi, ui, p})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilderHint(len(remap), len(raw))
	for _, e := range raw {
		if err := b.AddEdge(e.from, e.to, e.prob); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// LoadEdgeListFile opens path and calls LoadEdgeList.
func LoadEdgeListFile(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f, undirected)
}

// WriteEdgeList writes the graph as a "u v p" text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	g.Edges(func(from, to uint32, prob float32) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d %d %g\n", from, to, prob)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Binary format: a fixed header followed by the out-CSR arrays. The in-CSR
// is reconstructed on load (it is a deterministic function of the edges).
// Magic distinguishes the file from text edge lists and guards endianness.
const binaryMagic = 0x44494d31 // "DIM1"

// WriteBinary writes g in the repository's compact binary format, which
// loads an order of magnitude faster than text for large graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{binaryMagic, uint64(g.n), uint64(g.m)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outStart); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outProb); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (not a DIM1 binary graph)", magic)
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("graph: node count %d exceeds uint32 id space", n)
	}
	g := &Graph{
		n:         int64(n),
		m:         int64(m),
		outStart:  make([]int64, n+1),
		outAdj:    make([]uint32, m),
		outProb:   make([]float32, m),
		inStart:   make([]int64, n+1),
		inAdj:     make([]uint32, m),
		inProb:    make([]float32, m),
		inProbSum: make([]float64, n),
	}
	if err := binary.Read(br, binary.LittleEndian, g.outStart); err != nil {
		return nil, fmt.Errorf("graph: reading outStart: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.outAdj); err != nil {
		return nil, fmt.Errorf("graph: reading outAdj: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.outProb); err != nil {
		return nil, fmt.Errorf("graph: reading outProb: %w", err)
	}
	if g.outStart[0] != 0 || g.outStart[n] != int64(m) {
		return nil, fmt.Errorf("graph: corrupt CSR offsets")
	}
	// Rebuild in-CSR.
	for i := int64(0); i < g.m; i++ {
		g.inStart[g.outAdj[i]+1]++
	}
	for v := int64(0); v < g.n; v++ {
		g.inStart[v+1] += g.inStart[v]
	}
	pos := make([]int64, n)
	for u := int64(0); u < g.n; u++ {
		lo, hi := g.outStart[u], g.outStart[u+1]
		if hi < lo || hi > int64(m) {
			return nil, fmt.Errorf("graph: corrupt CSR segment for node %d", u)
		}
		for i := lo; i < hi; i++ {
			v := g.outAdj[i]
			if int64(v) >= g.n {
				return nil, fmt.Errorf("graph: edge head %d out of range", v)
			}
			ip := g.inStart[v] + pos[v]
			g.inAdj[ip] = uint32(u)
			g.inProb[ip] = g.outProb[i]
			pos[v]++
		}
	}
	g.finalize()
	return g, nil
}

// WriteBinaryFile writes g to path in binary format.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile loads a binary graph from path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
