package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// idRemap assigns dense 0..n-1 ids to arbitrary non-negative node ids in
// first-appearance order — deterministic, so two scans of the same file
// produce the same mapping (the streaming converter relies on this).
type idRemap map[int64]uint32

func (m idRemap) id(x int64) uint32 {
	if v, ok := m[x]; ok {
		return v
	}
	v := uint32(len(m))
	m[x] = v
	return v
}

// streamEdgeList scans a SNAP-style plain-text edge list — one "u v" or
// "u v p" line per edge, '#' or '%' comment lines ignored, self-loops
// silently dropped (common in raw crawls) — remapping ids through remap
// and calling emit per directed edge (both directions when undirected).
// Lines without a probability get probability 1.
func streamEdgeList(r io.Reader, undirected bool, remap idRemap, emit func(from, to uint32, prob float32) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: line %d: bad source id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: line %d: bad target id %q: %v", lineNo, fields[1], err)
		}
		p := float32(1)
		if len(fields) >= 3 {
			pf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return fmt.Errorf("graph: line %d: bad probability %q: %v", lineNo, fields[2], err)
			}
			p = float32(pf)
		}
		if u == v {
			continue
		}
		ui, vi := remap.id(u), remap.id(v)
		if err := emit(ui, vi, p); err != nil {
			return err
		}
		if undirected {
			if err := emit(vi, ui, p); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: reading edge list: %w", err)
	}
	return nil
}

// LoadEdgeList reads a SNAP-style plain-text edge list: one "u v" or
// "u v p" line per edge, '#' or '%' comment lines ignored. Node ids are
// arbitrary non-negative integers and are remapped to a dense 0..n-1 range
// in first-appearance order. If undirected is true every line contributes
// both directions. Lines without a probability get probability 1; callers
// typically follow with AssignWeights to apply the paper's WC setting.
//
// Real SNAP datasets (the paper's Facebook/Google+/LiveJournal files) load
// through this function unchanged.
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	var raw []Edge
	remap := make(idRemap)
	err := streamEdgeList(r, undirected, remap, func(from, to uint32, prob float32) error {
		raw = append(raw, Edge{From: from, To: to, Prob: prob})
		return nil
	})
	if err != nil {
		return nil, err
	}
	b := NewBuilderHint(len(remap), len(raw))
	for _, e := range raw {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// ConvertEdgeListToSegmented streams a text edge list into a segmented
// graph file without materializing the edge list or the CSR in memory
// (peak RSS is the id remap plus the external-sort buffer). It scans the
// file twice: pass one discovers the dense id mapping and node count,
// pass two replays the same deterministic mapping into BuildSegmented.
func ConvertEdgeListToSegmented(srcPath, dstPath string, undirected bool, opt SegmentBuildOptions) (*SegBuildStats, error) {
	remap := make(idRemap)
	f, err := os.Open(srcPath)
	if err != nil {
		return nil, err
	}
	err = streamEdgeList(f, undirected, remap, func(from, to uint32, prob float32) error { return nil })
	f.Close()
	if err != nil {
		return nil, err
	}
	if len(remap) == 0 {
		return nil, fmt.Errorf("graph: %s holds no edges", srcPath)
	}
	return BuildSegmented(dstPath, len(remap), func(emit func(from, to uint32, prob float32) error) error {
		f, err := os.Open(srcPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return streamEdgeList(f, undirected, remap, emit)
	}, opt)
}

// LoadEdgeListFile opens path and calls LoadEdgeList.
func LoadEdgeListFile(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f, undirected)
}

// WriteEdgeList writes the graph as a "u v p" text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	g.Edges(func(from, to uint32, prob float32) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d %d %g\n", from, to, prob)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Binary format: a fixed header followed by the out-CSR arrays. The in-CSR
// is reconstructed on load (it is a deterministic function of the edges).
// Magic distinguishes the file from text edge lists and guards endianness.
const binaryMagic = 0x44494d31 // "DIM1"

// WriteBinary writes g in the repository's compact binary format, which
// loads an order of magnitude faster than text for large graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{binaryMagic, uint64(g.n), uint64(g.m)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outStart); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outProb); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (not a DIM1 binary graph)", magic)
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("graph: node count %d exceeds uint32 id space", n)
	}
	g := &Graph{
		n:         int64(n),
		m:         int64(m),
		outStart:  make([]int64, n+1),
		outAdj:    make([]uint32, m),
		outProb:   make([]float32, m),
		inStart:   make([]int64, n+1),
		inAdj:     make([]uint32, m),
		inProb:    make([]float32, m),
		inProbSum: make([]float64, n),
	}
	if err := binary.Read(br, binary.LittleEndian, g.outStart); err != nil {
		return nil, fmt.Errorf("graph: reading outStart: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.outAdj); err != nil {
		return nil, fmt.Errorf("graph: reading outAdj: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.outProb); err != nil {
		return nil, fmt.Errorf("graph: reading outProb: %w", err)
	}
	if g.outStart[0] != 0 || g.outStart[n] != int64(m) {
		return nil, fmt.Errorf("graph: corrupt CSR offsets")
	}
	// Rebuild in-CSR.
	for i := int64(0); i < g.m; i++ {
		g.inStart[g.outAdj[i]+1]++
	}
	for v := int64(0); v < g.n; v++ {
		g.inStart[v+1] += g.inStart[v]
	}
	pos := make([]int64, n)
	for u := int64(0); u < g.n; u++ {
		lo, hi := g.outStart[u], g.outStart[u+1]
		if hi < lo || hi > int64(m) {
			return nil, fmt.Errorf("graph: corrupt CSR segment for node %d", u)
		}
		for i := lo; i < hi; i++ {
			v := g.outAdj[i]
			if int64(v) >= g.n {
				return nil, fmt.Errorf("graph: edge head %d out of range", v)
			}
			ip := g.inStart[v] + pos[v]
			g.inAdj[ip] = uint32(u)
			g.inProb[ip] = g.outProb[i]
			pos[v]++
		}
	}
	g.finalize()
	return g, nil
}

// WriteBinaryFile writes g to path in binary format.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile loads a binary graph from path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// LoadOptions configures LoadAny.
type LoadOptions struct {
	// Undirected doubles every edge of a text edge list (ignored for the
	// binary and segmented formats, which store directed edges).
	Undirected bool
	// Weights is the CLI weight setting: a ParseWeightModel name, or
	// "file" to keep the probabilities stored in the input.
	Weights  string
	UniformP float32 // UniformWeight's p
	Seed     uint64  // Trivalency's draw seed
	// Backend selects heap vs mmap materialization. Only the segmented
	// format supports BackendMmap; the legacy formats must rebuild the
	// in-CSR on load, which is inherently a heap operation.
	Backend Backend
}

// LoadAny loads a graph from any of the repository's on-disk formats,
// routed by extension — ".dsg" segmented, ".bin" legacy binary, anything
// else a text edge list — and applies the requested weight model. It is
// the one loader the cmds share, so every binary resolves formats,
// backends and weights identically.
//
// For segmented files the weight model is reconciled against the tag
// baked into the header: a match (or Weights "file") uses the stored
// probabilities as-is — the path that keeps the mmap backend zero-copy —
// while a mismatch falls back to AssignWeights on a heap copy (mem
// backend only; reweighting a shared read-only mapping is refused with
// *MappedGraphError, since the result would silently not be the file on
// disk).
func LoadAny(path string, o LoadOptions) (*Graph, error) {
	var wm WeightModel
	if o.Weights != "file" && o.Weights != "" {
		var err error
		if wm, err = ParseWeightModel(o.Weights); err != nil {
			return nil, err
		}
	}
	if strings.HasSuffix(path, ".dsg") {
		g, err := OpenSegmented(path, o.Backend)
		if err != nil {
			return nil, err
		}
		if o.Weights == "file" || o.Weights == "" || wm.String() == g.WeightTag() {
			return g, nil
		}
		if g.Mapped() {
			g.Close()
			return nil, &MappedGraphError{Path: path, Op: fmt.Sprintf("reassigning %q weights over stored %q weights", o.Weights, g.WeightTag())}
		}
		return AssignWeights(g, wm, o.UniformP, o.Seed)
	}
	if o.Backend == BackendMmap {
		return nil, fmt.Errorf("graph: %s: the mmap backend requires the segmented format (convert with gengraph -convert %s -out graph.dsg)", path, path)
	}
	var g *Graph
	var err error
	if strings.HasSuffix(path, ".bin") {
		g, err = ReadBinaryFile(path)
	} else {
		g, err = LoadEdgeListFile(path, o.Undirected)
	}
	if err != nil {
		return nil, err
	}
	if o.Weights == "file" || o.Weights == "" {
		return g, nil
	}
	return AssignWeights(g, wm, o.UniformP, o.Seed)
}
