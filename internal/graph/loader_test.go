package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadEdgeListBasic(t *testing.T) {
	src := `# comment line
% another comment
10 20
20 30 0.5

30 10
10 10
`
	g, err := LoadEdgeList(strings.NewReader(src), false)
	if err != nil {
		t.Fatal(err)
	}
	// ids remapped: 10->0, 20->1, 30->2. Self-loop 10 10 dropped.
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges, want 3/3", g.NumNodes(), g.NumEdges())
	}
	adj, prob := g.OutNeighbors(1)
	if len(adj) != 1 || adj[0] != 2 || prob[0] != 0.5 {
		t.Fatalf("edge 20->30 not loaded correctly: %v %v", adj, prob)
	}
}

func TestLoadEdgeListUndirected(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("undirected load gave %d edges, want 4", g.NumEdges())
	}
	if g.OutDegree(1) != 2 || g.InDegree(1) != 2 {
		t.Fatal("undirected symmetry broken")
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{
		"justone\n",
		"a b\n",
		"1 b\n",
		"1 2 notaprob\n",
	}
	for _, src := range cases {
		if _, err := LoadEdgeList(strings.NewReader(src), false); err == nil {
			t.Fatalf("input %q accepted", src)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := GenPreferential(GenConfig{Nodes: 200, AvgDegree: 5, Seed: 42, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := AssignWeights(g, WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, wc); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != wc.NumNodes() || back.NumEdges() != wc.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), wc.NumNodes(), wc.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := GenPreferential(GenConfig{Nodes: 500, AvgDegree: 8, Seed: 5, UniformAttach: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := AssignWeights(g, WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, wc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != wc.NumNodes() || back.NumEdges() != wc.NumEdges() {
		t.Fatal("binary round trip changed graph size")
	}
	var orig, rt []Edge
	wc.Edges(func(u, v uint32, p float32) { orig = append(orig, Edge{u, v, p}) })
	back.Edges(func(u, v uint32, p float32) { rt = append(rt, Edge{u, v, p}) })
	for i := range orig {
		if orig[i] != rt[i] {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
	if back.UniformIn() != wc.UniformIn() {
		t.Fatal("UniformIn not preserved")
	}
	for v := uint32(0); v < uint32(wc.NumNodes()); v++ {
		if back.InProbSum(v) != wc.InProbSum(v) {
			t.Fatalf("InProbSum(%d) differs", v)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero bytes accepted as binary graph")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	g, _ := GenErdosRenyi(GenConfig{Nodes: 100, AvgDegree: 4, Seed: 9})
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip changed edge count")
	}
	if _, err := ReadBinaryFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}
