//go:build !unix

package graph

import (
	"fmt"
	"os"
)

// The mmap backend is Unix-only; other platforms get a typed failure at
// open time and can always fall back to -graph-backend mem.

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("graph: mmap backend not supported on this platform")
}

func munmapFile(data []byte) error { return nil }

func madviseRandom(data []byte) {}

func madviseDontneed(data []byte) error { return nil }
