//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The mapping stays
// valid after f is closed.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}

// madviseRandom hints that access will be random (disable readahead).
// Advice is best-effort; errors are ignored on platforms without it.
func madviseRandom(data []byte) {
	if len(data) == 0 {
		return
	}
	_ = syscall.Madvise(data, syscall.MADV_RANDOM)
}

// madviseDontneed drops the mapping's resident pages. For a read-only
// MAP_SHARED file mapping this only discards PTEs (the data stays in
// the file and usually the page cache), so it is always safe.
func madviseDontneed(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Madvise(data, syscall.MADV_DONTNEED)
}
