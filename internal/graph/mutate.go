package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Dynamic-graph support: a frozen CSR graph can be switched into mutable
// mode (EnableMutation), after which versioned batches of edge updates
// (ApplyUpdates) mutate it behind a delta overlay. The overlay discipline
// is chosen so that the coins an RR sampler draws stay positionally
// stable under mutation:
//
//   - a removed edge's CSR slot is kept in place with its probability set
//     to 0 (a tombstone) — the dense IC scan still draws its coin, which
//     can never succeed, so every later slot keeps its draw index;
//   - an added edge is appended to the END of the head's in-list, as a
//     per-node overlay entry, so its coin index is base slots + overlay
//     position and no existing coin shifts;
//   - a reweighted edge changes its probability in place.
//
// With coins keyed by (lane, head, slot index) — xrand.ScanSeed plus the
// draw position — this makes RR(G', laneSeed) a well-defined pure
// function for every lane on every graph version, which is what the
// incremental sample repair in internal/mutate relies on. Compact folds
// the overlay into a rebuilt CSR *preserving every slot position*
// (tombstones stay, overlay entries append), so compaction never changes
// any set's coins. Tombstones accumulate for the graph's lifetime: a
// heavily-removal workload eventually wants a fresh build (see README
// "Dynamic graphs" for the churn limits).

// EdgeOp is the kind of a single edge update.
type EdgeOp uint8

const (
	// OpAdd inserts a new directed edge with the given probability. The
	// edge must not already exist (parallel edges cannot be introduced by
	// mutation, though a base graph built with them stays valid).
	OpAdd EdgeOp = iota + 1
	// OpRemove deletes an existing directed edge (tombstones its slot).
	OpRemove
	// OpReweight changes an existing edge's probability in place.
	OpReweight
)

// String returns the op's wire name (also used by the HTTP update API).
func (op EdgeOp) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpReweight:
		return "reweight"
	}
	return fmt.Sprintf("EdgeOp(%d)", uint8(op))
}

// EdgeUpdate is one edge mutation. Prob is ignored for OpRemove.
type EdgeUpdate struct {
	Op       EdgeOp
	From, To uint32
	Prob     float32
}

// EdgeDelta records where one applied update landed, in the coordinates
// the RR-sample repair planner needs: the head node whose in-edge scan
// stream holds the mutated coin, the coin's draw index in that stream
// (slot position in the head's concatenated base+overlay in-list), and
// the probability before/after. For an add POld is 0; for a removal PNew
// is 0.
type EdgeDelta struct {
	Head uint32
	Tail uint32
	Pos  int
	POld float32
	PNew float32
}

// OverlayEdge is one overlay adjacency entry: the far endpoint and the
// edge probability (0 for a tombstoned overlay edge).
type OverlayEdge struct {
	Node uint32
	Prob float32
}

// compactDenominator: Compact triggers when overlay edges exceed
// base slots / compactDenominator (and a small floor, so tiny graphs
// don't compact on every batch).
const (
	compactDenominator = 8
	compactFloor       = 256
)

// mutState holds all dynamic-graph state; nil on frozen graphs, so the
// frozen hot paths pay one pointer test.
type mutState struct {
	version uint64 // last applied batch sequence number
	hash    string // chained content hash at this version

	// Per-node overlay: idx[v] is an index into lists (-1 = none).
	inIdx    []int32
	outIdx   []int32
	inLists  [][]OverlayEdge
	outLists [][]OverlayEdge

	overlay    int64 // overlay edge slots (same count on both sides)
	tombstones int64 // zeroed slots (removals), kept forever
	compacts   int64

	// Memo of the most recent batch's deltas, so a second ApplyUpdates of
	// the same (already applied) batch — the shared-graph worker path —
	// can return the refined repair plan without re-mutating.
	lastSeq    uint64
	lastDeltas []EdgeDelta
}

// EnableMutation switches the graph into mutable mode. Idempotent. Must
// be called before the graph is shared with concurrent readers; after
// that, ApplyUpdates calls must be externally serialized against reads.
//
// Mmap-backed graphs are rejected with *MappedGraphError: removals and
// reweights write probabilities through the CSR slots in place, which on
// a MAP_SHARED read-only mapping would fault (or, worse, mutate a file
// other processes have mapped). Until a mutation overlay over segments
// lands, dynamic workloads must load with the mem backend.
func (g *Graph) EnableMutation() error {
	if g.Mapped() {
		return &MappedGraphError{Path: g.seg.path, Op: "EnableMutation"}
	}
	if g.mut != nil {
		return nil
	}
	m := &mutState{
		inIdx:  make([]int32, g.n),
		outIdx: make([]int32, g.n),
	}
	for i := range m.inIdx {
		m.inIdx[i] = -1
		m.outIdx[i] = -1
	}
	g.mut = m
	return nil
}

// MutationEnabled reports whether EnableMutation has been called.
func (g *Graph) MutationEnabled() bool { return g.mut != nil }

// Version returns the sequence number of the last applied update batch
// (0 for a frozen or never-mutated graph).
func (g *Graph) Version() uint64 {
	if g.mut == nil {
		return 0
	}
	return g.mut.version
}

// OverlayEdges returns how many overlay adjacency slots are live (not
// yet folded by Compact); Tombstones returns how many base/overlay slots
// have been zeroed by removals over the graph's lifetime.
func (g *Graph) OverlayEdges() int64 {
	if g.mut == nil {
		return 0
	}
	return g.mut.overlay
}

// Tombstones returns the number of zeroed (removed) edge slots.
func (g *Graph) Tombstones() int64 {
	if g.mut == nil {
		return 0
	}
	return g.mut.tombstones
}

// Compactions returns how many times the overlay was folded into the CSR.
func (g *Graph) Compactions() int64 {
	if g.mut == nil {
		return 0
	}
	return g.mut.compacts
}

// InOverlay returns node v's overlay in-edges (tails appended after the
// base in-list). The slice aliases internal storage; do not modify. Nil
// for frozen graphs and untouched nodes.
func (g *Graph) InOverlay(v uint32) []OverlayEdge {
	if g.mut == nil {
		return nil
	}
	li := g.mut.inIdx[v]
	if li < 0 {
		return nil
	}
	return g.mut.inLists[li]
}

// OutOverlay returns node u's overlay out-edges (heads appended after
// the base out-list). The slice aliases internal storage; do not modify.
func (g *Graph) OutOverlay(u uint32) []OverlayEdge {
	if g.mut == nil {
		return nil
	}
	li := g.mut.outIdx[u]
	if li < 0 {
		return nil
	}
	return g.mut.outLists[li]
}

// InSlots returns the number of coin slots in v's concatenated in-list:
// base CSR slots (live or tombstoned) plus overlay entries. This is the
// draw count of a dense IC scan of v, and the position the next added
// in-edge of v would take.
func (g *Graph) InSlots(v uint32) int {
	d := int(g.inStart[v+1] - g.inStart[v])
	return d + len(g.InOverlay(v))
}

// slotRef locates one mutable edge slot: base CSR index, or overlay
// list position (ovl >= 0 means overlay entry ovl of the node's list).
type slotRef struct {
	base int64 // index into inProb/outProb when ovl < 0
	ovl  int   // overlay position, -1 for base slots
}

// findInSlot returns the k-th (claimed-skipping first) live slot in v's
// in-list whose tail is u, plus its concatenated position and
// probability. claimed marks slots consumed by earlier ops of the same
// batch, keyed by position.
func (g *Graph) findInSlot(u, v uint32, claimed map[[2]uint64]bool) (slotRef, int, float32, bool) {
	lo, hi := g.inStart[v], g.inStart[v+1]
	for i := lo; i < hi; i++ {
		if g.inAdj[i] == u && g.inProb[i] > 0 {
			pos := int(i - lo)
			if claimed[[2]uint64{uint64(v), uint64(pos)}] {
				continue
			}
			return slotRef{base: i, ovl: -1}, pos, g.inProb[i], true
		}
	}
	base := int(hi - lo)
	for j, e := range g.InOverlay(v) {
		if e.Node == u && e.Prob > 0 {
			pos := base + j
			if claimed[[2]uint64{uint64(v), uint64(pos)}] {
				continue
			}
			return slotRef{ovl: j}, pos, e.Prob, true
		}
	}
	return slotRef{}, 0, 0, false
}

// findOutSlot is findInSlot for u's out-list (the forward-CSR mirror of
// the same physical edge: both CSRs preserve builder insertion order per
// bucket, so the k-th live <u,v> slot on each side is the same edge).
func (g *Graph) findOutSlot(u, v uint32, claimed map[[2]uint64]bool) (slotRef, int, bool) {
	lo, hi := g.outStart[u], g.outStart[u+1]
	for i := lo; i < hi; i++ {
		if g.outAdj[i] == v && g.outProb[i] > 0 {
			pos := int(i - lo)
			if claimed[[2]uint64{uint64(u), uint64(pos)}] {
				continue
			}
			return slotRef{base: i, ovl: -1}, pos, true
		}
	}
	base := int(hi - lo)
	for j, e := range g.OutOverlay(u) {
		if e.Node == v && e.Prob > 0 {
			pos := base + j
			if claimed[[2]uint64{uint64(u), uint64(pos)}] {
				continue
			}
			return slotRef{ovl: j}, pos, true
		}
	}
	return slotRef{}, 0, false
}

type resolvedOp struct {
	op      EdgeUpdate
	inSlot  slotRef // remove/reweight: the in-CSR slot to mutate
	outSlot slotRef // remove/reweight: the out-CSR mirror slot
	pos     int     // coin position in the head's in-list
	pOld    float32
}

// ApplyUpdates atomically applies one sequenced batch of edge updates.
//
// Sequencing makes application idempotent on a shared graph: batches
// carry seq = Version()+1; a batch whose seq is at or below the current
// version is a no-op (it was already applied — the path an in-process
// worker takes after the master applied the shared graph's batch), and a
// seq further ahead is an error (a gap would silently skip updates).
//
// Returns the per-op deltas for the repair planner and fresh=true when
// this call actually mutated the graph. A no-op call returns the
// memoized deltas when the batch is the most recently applied one, and
// (nil, false, nil) for older batches — callers replaying history must
// then fall back to a conservative repair plan (see internal/mutate).
//
// The whole batch is validated before any state changes: on error the
// graph is untouched.
func (g *Graph) ApplyUpdates(seq uint64, ops []EdgeUpdate) (deltas []EdgeDelta, fresh bool, err error) {
	if g.mut == nil {
		return nil, false, fmt.Errorf("graph: ApplyUpdates on a frozen graph (EnableMutation first)")
	}
	m := g.mut
	if seq <= m.version {
		if seq != 0 && seq == m.lastSeq {
			return m.lastDeltas, false, nil
		}
		return nil, false, nil
	}
	if seq != m.version+1 {
		return nil, false, fmt.Errorf("graph: update batch seq %d after version %d (gap)", seq, m.version)
	}
	if len(ops) == 0 {
		return nil, false, fmt.Errorf("graph: empty update batch")
	}

	// Phase 1: resolve and validate every op against the current state
	// plus the earlier ops of this batch, without mutating anything.
	resolved := make([]resolvedOp, 0, len(ops))
	inClaimed := make(map[[2]uint64]bool)  // (head, pos) slots consumed by earlier ops
	outClaimed := make(map[[2]uint64]bool) // (tail, pos) out-mirror slots
	pendingPair := make(map[[2]uint32]int) // in-batch adds per (from, to)
	pendingAdds := make(map[uint32]int)    // in-batch appended in-slots per head
	for i, op := range ops {
		if int64(op.From) >= g.n || int64(op.To) >= g.n {
			return nil, false, fmt.Errorf("graph: update %d: edge <%d,%d> out of range for %d nodes", i, op.From, op.To, g.n)
		}
		if op.From == op.To {
			return nil, false, fmt.Errorf("graph: update %d: self-loop on node %d rejected", i, op.From)
		}
		key := [2]uint32{op.From, op.To}
		switch op.Op {
		case OpAdd:
			if !(op.Prob > 0) || op.Prob > 1 {
				return nil, false, fmt.Errorf("graph: update %d: add <%d,%d> probability %v outside (0,1]", i, op.From, op.To, op.Prob)
			}
			if _, _, _, ok := g.findInSlot(op.From, op.To, inClaimed); ok || pendingPair[key] > 0 {
				return nil, false, fmt.Errorf("graph: update %d: edge <%d,%d> already exists", i, op.From, op.To)
			}
			pos := g.InSlots(op.To) + pendingAdds[op.To]
			resolved = append(resolved, resolvedOp{op: op, pos: pos})
			pendingAdds[op.To]++
			pendingPair[key]++
		case OpRemove, OpReweight:
			if op.Op == OpReweight && (!(op.Prob > 0) || op.Prob > 1) {
				return nil, false, fmt.Errorf("graph: update %d: reweight <%d,%d> probability %v outside (0,1]", i, op.From, op.To, op.Prob)
			}
			if pendingPair[key] > 0 {
				return nil, false, fmt.Errorf("graph: update %d: %s of edge <%d,%d> added earlier in the same batch", i, op.Op, op.From, op.To)
			}
			in, pos, pOld, ok := g.findInSlot(op.From, op.To, inClaimed)
			if !ok {
				return nil, false, fmt.Errorf("graph: update %d: %s of nonexistent edge <%d,%d>", i, op.Op, op.From, op.To)
			}
			out, outPos, ok := g.findOutSlot(op.From, op.To, outClaimed)
			if !ok {
				return nil, false, fmt.Errorf("graph: update %d: edge <%d,%d> missing its out-CSR mirror", i, op.From, op.To)
			}
			resolved = append(resolved, resolvedOp{op: op, inSlot: in, outSlot: out, pos: pos, pOld: pOld})
			// Claim the slot either way: a reweight pins this physical
			// edge, so a second op on the same pair targets the next one.
			inClaimed[[2]uint64{uint64(op.To), uint64(pos)}] = true
			outClaimed[[2]uint64{uint64(op.From), uint64(outPos)}] = true
		default:
			return nil, false, fmt.Errorf("graph: update %d: unknown op %d", i, op.Op)
		}
	}

	// Phase 2: apply. No failure paths from here on. The previous
	// version's hash must be captured before the CSR is touched — at
	// version 0 it is the (memoized) base hash streamed from the arrays
	// about to be mutated.
	prevHash := g.ContentHash()
	deltas = make([]EdgeDelta, 0, len(resolved))
	for _, r := range resolved {
		op := r.op
		switch op.Op {
		case OpAdd:
			g.appendOverlay(op.From, op.To, op.Prob)
			g.inProbSum[op.To] += float64(op.Prob)
			g.m++
			m.overlay++
			deltas = append(deltas, EdgeDelta{Head: op.To, Tail: op.From, Pos: r.pos, POld: 0, PNew: op.Prob})
		case OpRemove:
			g.setSlotProb(op.To, r.inSlot, 0, false)
			g.setSlotProb(op.From, r.outSlot, 0, true)
			g.inProbSum[op.To] -= float64(r.pOld)
			if g.inProbSum[op.To] < 0 {
				g.inProbSum[op.To] = 0
			}
			g.m--
			m.tombstones++
			deltas = append(deltas, EdgeDelta{Head: op.To, Tail: op.From, Pos: r.pos, POld: r.pOld, PNew: 0})
		case OpReweight:
			g.setSlotProb(op.To, r.inSlot, op.Prob, false)
			g.setSlotProb(op.From, r.outSlot, op.Prob, true)
			g.inProbSum[op.To] += float64(op.Prob) - float64(r.pOld)
			deltas = append(deltas, EdgeDelta{Head: op.To, Tail: op.From, Pos: r.pos, POld: r.pOld, PNew: op.Prob})
		}
	}
	// Any mutation can break per-node-uniform in-probabilities; clearing
	// the flag is conservative and byte-safe: for equal weights the LT
	// uniform fast path and the cumulative scan pick the same in-neighbor
	// (floor(x·d/sum) vs first i with x < (i+1)·p), so only probe
	// accounting changes, never members. Subset sampling is rejected on
	// mutable graphs outright (its draw counts are not positional).
	g.uniformIn = false

	// Chain the content hash: new = SHA-256(prev hash ‖ seq ‖ ops).
	h := sha256.New()
	h.Write([]byte("dimm-graph-delta-v1"))
	h.Write([]byte(prevHash))
	var buf [13]byte
	binary.LittleEndian.PutUint64(buf[:8], seq)
	h.Write(buf[:8])
	for _, op := range ops {
		buf[0] = byte(op.Op)
		binary.LittleEndian.PutUint32(buf[1:5], op.From)
		binary.LittleEndian.PutUint32(buf[5:9], op.To)
		binary.LittleEndian.PutUint32(buf[9:13], math.Float32bits(op.Prob))
		h.Write(buf[:13])
	}
	m.hash = fmt.Sprintf("sha256:%x", h.Sum(nil))
	m.version = seq
	m.lastSeq = seq
	m.lastDeltas = deltas

	if m.overlay > compactFloor && m.overlay > int64(len(g.inAdj))/compactDenominator {
		g.Compact()
	}
	return deltas, true, nil
}

// appendOverlay appends edge <u,v> with probability p to both overlays.
func (g *Graph) appendOverlay(u, v uint32, p float32) {
	m := g.mut
	if m.inIdx[v] < 0 {
		m.inIdx[v] = int32(len(m.inLists))
		m.inLists = append(m.inLists, nil)
	}
	li := m.inIdx[v]
	m.inLists[li] = append(m.inLists[li], OverlayEdge{Node: u, Prob: p})
	if m.outIdx[u] < 0 {
		m.outIdx[u] = int32(len(m.outLists))
		m.outLists = append(m.outLists, nil)
	}
	lo := m.outIdx[u]
	m.outLists[lo] = append(m.outLists[lo], OverlayEdge{Node: v, Prob: p})
}

// setSlotProb writes probability p into one slot of node x's in-list
// (out=false) or out-list (out=true).
func (g *Graph) setSlotProb(x uint32, s slotRef, p float32, out bool) {
	if s.ovl >= 0 {
		if out {
			g.mut.outLists[g.mut.outIdx[x]][s.ovl].Prob = p
		} else {
			g.mut.inLists[g.mut.inIdx[x]][s.ovl].Prob = p
		}
		return
	}
	if out {
		g.outProb[s.base] = p
	} else {
		g.inProb[s.base] = p
	}
}

// Compact folds the overlay into a rebuilt CSR, preserving every slot
// position: tombstoned base slots stay in place (probability 0) and
// overlay entries are appended at the end of each node's list, exactly
// where their coin indices already are. The graph's content (and hence
// ContentHash) is unchanged — compaction is a pure storage operation.
func (g *Graph) Compact() {
	m := g.mut
	if m == nil || m.overlay == 0 {
		return
	}
	g.inStart, g.inAdj, g.inProb = compactCSR(g.n, g.inStart, g.inAdj, g.inProb, m.inIdx, m.inLists)
	g.outStart, g.outAdj, g.outProb = compactCSR(g.n, g.outStart, g.outAdj, g.outProb, m.outIdx, m.outLists)
	for i := range m.inIdx {
		m.inIdx[i] = -1
		m.outIdx[i] = -1
	}
	m.inLists = m.inLists[:0]
	m.outLists = m.outLists[:0]
	m.overlay = 0
	m.compacts++
}

func compactCSR(n int64, start []int64, adj []uint32, prob []float32, idx []int32, lists [][]OverlayEdge) ([]int64, []uint32, []float32) {
	extra := 0
	for _, l := range lists {
		extra += len(l)
	}
	newStart := make([]int64, n+1)
	newAdj := make([]uint32, 0, len(adj)+extra)
	newProb := make([]float32, 0, len(prob)+extra)
	for v := int64(0); v < n; v++ {
		lo, hi := start[v], start[v+1]
		newAdj = append(newAdj, adj[lo:hi]...)
		newProb = append(newProb, prob[lo:hi]...)
		if li := idx[v]; li >= 0 {
			for _, e := range lists[li] {
				newAdj = append(newAdj, e.Node)
				newProb = append(newProb, e.Prob)
			}
		}
		newStart[v+1] = int64(len(newAdj))
	}
	return newStart, newAdj, newProb
}
