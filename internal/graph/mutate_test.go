package graph

import (
	"strings"
	"testing"
)

// line builds the 4-node path 0→1→2→3 with probability p on every edge.
func line(t *testing.T, p float32) *Graph {
	t.Helper()
	b := NewBuilder(4)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], p); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// Satellite regression test: ContentHash must not serve the memoized
// base digest once the graph has been mutated.
func TestContentHashChangesOnMutation(t *testing.T) {
	g := line(t, 0.5)
	base := g.ContentHash() // memoize while the CSR is still version 0
	g.EnableMutation()
	if got := g.ContentHash(); got != base {
		t.Fatalf("EnableMutation alone changed the hash: %q vs %q", got, base)
	}
	if _, _, err := g.ApplyUpdates(1, []EdgeUpdate{{Op: OpAdd, From: 0, To: 2, Prob: 0.25}}); err != nil {
		t.Fatal(err)
	}
	h1 := g.ContentHash()
	if h1 == base {
		t.Fatalf("hash unchanged after edge add: %q", h1)
	}
	if !strings.HasPrefix(h1, "sha256:") {
		t.Fatalf("versioned hash lost its prefix: %q", h1)
	}
	if g.BaseHash() != base {
		t.Fatalf("BaseHash drifted after mutation: %q vs %q", g.BaseHash(), base)
	}
	if _, _, err := g.ApplyUpdates(2, []EdgeUpdate{{Op: OpReweight, From: 0, To: 2, Prob: 0.75}}); err != nil {
		t.Fatal(err)
	}
	if h2 := g.ContentHash(); h2 == h1 || h2 == base {
		t.Fatalf("hash failed to advance on second batch: %q", h2)
	}
}

// Two graphs taking the same base through the same update history must
// hash equal (the chained hash is content-addressed, not time-stamped).
func TestContentHashDeterministicAcrossReplicas(t *testing.T) {
	ops := []EdgeUpdate{
		{Op: OpAdd, From: 3, To: 0, Prob: 0.1},
		{Op: OpRemove, From: 1, To: 2},
	}
	a, b := line(t, 0.5), line(t, 0.5)
	a.EnableMutation()
	b.EnableMutation()
	if _, _, err := a.ApplyUpdates(1, ops); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ApplyUpdates(1, ops); err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatalf("replicas diverged: %q vs %q", a.ContentHash(), b.ContentHash())
	}
}

func TestApplyUpdatesSemantics(t *testing.T) {
	g := line(t, 0.5)
	g.EnableMutation()

	// Add: lands in the overlay at the end of the in-list.
	deltas, fresh, err := g.ApplyUpdates(1, []EdgeUpdate{{Op: OpAdd, From: 0, To: 3, Prob: 0.3}})
	if err != nil || !fresh {
		t.Fatalf("add batch: fresh=%v err=%v", fresh, err)
	}
	if len(deltas) != 1 || deltas[0].Head != 3 || deltas[0].Tail != 0 || deltas[0].POld != 0 || deltas[0].PNew != 0.3 {
		t.Fatalf("add delta = %+v", deltas)
	}
	if deltas[0].Pos != g.InDegree(3) {
		t.Fatalf("add slot %d, want first overlay slot %d", deltas[0].Pos, g.InDegree(3))
	}
	if ov := g.InOverlay(3); len(ov) != 1 || ov[0].Node != 0 || ov[0].Prob != 0.3 {
		t.Fatalf("in-overlay of 3 = %+v", ov)
	}
	if ov := g.OutOverlay(0); len(ov) != 1 || ov[0].Node != 3 {
		t.Fatalf("out-overlay of 0 = %+v", ov)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d after add", g.NumEdges())
	}
	if got := g.InProbSum(3); got < 0.8-1e-6 || got > 0.8+1e-6 {
		t.Fatalf("inProbSum(3) = %g", got)
	}

	// Remove: tombstones the base slot in place.
	deltas, _, err = g.ApplyUpdates(2, []EdgeUpdate{{Op: OpRemove, From: 1, To: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].PNew != 0 || deltas[0].POld != 0.5 || deltas[0].Pos != 0 {
		t.Fatalf("remove delta = %+v", deltas)
	}
	if _, probs := g.InNeighbors(2); probs[0] != 0 {
		t.Fatalf("base slot not tombstoned: %v", probs)
	}
	if g.NumEdges() != 3 || g.Tombstones() != 1 {
		t.Fatalf("m=%d tombstones=%d after remove", g.NumEdges(), g.Tombstones())
	}

	// Reweight: in place, both CSR sides.
	if _, _, err = g.ApplyUpdates(3, []EdgeUpdate{{Op: OpReweight, From: 0, To: 1, Prob: 0.9}}); err != nil {
		t.Fatal(err)
	}
	if _, probs := g.InNeighbors(1); probs[0] != 0.9 {
		t.Fatalf("in-side reweight missed: %v", probs)
	}
	if _, probs := g.OutNeighbors(0); probs[0] != 0.9 {
		t.Fatalf("out-side reweight missed: %v", probs)
	}
	if g.Version() != 3 {
		t.Fatalf("version = %d", g.Version())
	}
	if g.UniformIn() {
		t.Fatal("uniformIn survived mutation")
	}
}

func TestApplyUpdatesSeqGating(t *testing.T) {
	g := line(t, 0.5)
	g.EnableMutation()
	batch := []EdgeUpdate{{Op: OpAdd, From: 0, To: 2, Prob: 0.4}}
	d1, fresh, err := g.ApplyUpdates(1, batch)
	if err != nil || !fresh {
		t.Fatalf("first apply: fresh=%v err=%v", fresh, err)
	}
	// Replayed batch: no-op, memoized deltas.
	d2, fresh, err := g.ApplyUpdates(1, batch)
	if err != nil || fresh {
		t.Fatalf("replay: fresh=%v err=%v", fresh, err)
	}
	if len(d2) != len(d1) || d2[0] != d1[0] {
		t.Fatalf("memoized deltas %+v != original %+v", d2, d1)
	}
	if g.Version() != 1 || g.OverlayEdges() != 1 {
		t.Fatalf("replay mutated state: version=%d overlay=%d", g.Version(), g.OverlayEdges())
	}
	// Gap: seq 3 when version is 1.
	if _, _, err := g.ApplyUpdates(3, batch); err == nil {
		t.Fatal("sequence gap accepted")
	}
}

func TestApplyUpdatesRejections(t *testing.T) {
	g := line(t, 0.5)
	g.EnableMutation()
	cases := []struct {
		name string
		ops  []EdgeUpdate
	}{
		{"duplicate add", []EdgeUpdate{{Op: OpAdd, From: 0, To: 1, Prob: 0.5}}},
		{"add prob zero", []EdgeUpdate{{Op: OpAdd, From: 0, To: 3, Prob: 0}}},
		{"add prob high", []EdgeUpdate{{Op: OpAdd, From: 0, To: 3, Prob: 1.5}}},
		{"remove missing", []EdgeUpdate{{Op: OpRemove, From: 3, To: 0}}},
		{"reweight missing", []EdgeUpdate{{Op: OpReweight, From: 3, To: 0, Prob: 0.2}}},
		{"double remove in batch", []EdgeUpdate{{Op: OpRemove, From: 0, To: 1}, {Op: OpRemove, From: 0, To: 1}}},
		{"add then remove in batch", []EdgeUpdate{{Op: OpAdd, From: 0, To: 3, Prob: 0.2}, {Op: OpRemove, From: 0, To: 3}}},
		{"re-add after batch add", []EdgeUpdate{{Op: OpAdd, From: 0, To: 3, Prob: 0.2}, {Op: OpAdd, From: 0, To: 3, Prob: 0.3}}},
	}
	for _, tc := range cases {
		if _, _, err := g.ApplyUpdates(g.Version()+1, tc.ops); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if g.Version() != 0 {
		t.Fatalf("rejected batches advanced version to %d", g.Version())
	}
}

// Compact must fold the overlay into the CSR without moving any slot:
// tombstones keep their positions (prob 0) and overlay entries land at
// the end of each list, in overlay order — the positional-stability
// contract that keeps repaired RR samples replayable.
func TestCompactPreservesSlotPositions(t *testing.T) {
	g := line(t, 0.5)
	g.EnableMutation()
	_, _, err := g.ApplyUpdates(1, []EdgeUpdate{
		{Op: OpRemove, From: 1, To: 2},
		{Op: OpAdd, From: 0, To: 2, Prob: 0.2},
		{Op: OpAdd, From: 3, To: 2, Prob: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	hash := g.ContentHash()
	wantAdj := [][2]interface{}{{uint32(1), float32(0)}, {uint32(0), float32(0.2)}, {uint32(3), float32(0.3)}}
	g.Compact()
	if g.OverlayEdges() != 0 || g.Compactions() != 1 {
		t.Fatalf("overlay=%d compacts=%d after Compact", g.OverlayEdges(), g.Compactions())
	}
	adj, probs := g.InNeighbors(2)
	if len(adj) != len(wantAdj) {
		t.Fatalf("in-list of 2 has %d slots, want %d", len(adj), len(wantAdj))
	}
	for i, w := range wantAdj {
		if adj[i] != w[0].(uint32) || probs[i] != w[1].(float32) {
			t.Fatalf("slot %d = (%d,%g), want %+v", i, adj[i], probs[i], w)
		}
	}
	if g.ContentHash() != hash {
		t.Fatal("Compact changed the content hash")
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d after compact", g.NumEdges())
	}
	// Post-compact mutations still work and see the folded slots.
	if _, _, err := g.ApplyUpdates(2, []EdgeUpdate{{Op: OpReweight, From: 3, To: 2, Prob: 0.6}}); err != nil {
		t.Fatalf("reweight of compacted overlay edge: %v", err)
	}
	if _, probs := g.InNeighbors(2); probs[2] != 0.6 {
		t.Fatalf("reweight after compact missed: %v", probs)
	}
}
