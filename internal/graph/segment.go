package graph

import (
	"encoding/binary"
	"fmt"
	"os"

	"dimm/internal/checksum"
)

// Segmented on-disk CSR (".dsg"), the out-of-core graph substrate.
//
// One sectioned file holds the same seven flat arrays an in-memory Graph
// carries — out-CSR (offsets, targets, weights), in-CSR (offsets, tails,
// weights) and the per-node incoming probability sums — each as a
// page-aligned section of fixed-width little-endian elements followed by
// a CRC32C-per-block trailer. Because a section's payload is exactly the
// little-endian image of the corresponding slice, the file can either be
// read into heap slices (BackendMem) or mmap'ed and aliased in place
// (BackendMmap); both produce a *Graph whose accessors return identical
// bytes, so every sampler, kernel and cluster worker runs on it
// unchanged. The OS pages adjacency blocks in on demand, which is what
// lets a 100M+ edge graph serve RR generation without the CSR being
// resident in RAM.
//
// File layout (all little-endian):
//
//	offset  size  field
//	0       4     magic "DSG1"
//	4       4     format version (1)
//	8       8     n (nodes)
//	16      8     m (directed edges)
//	24      4     CRC/hash block size (always 1 MiB in v1)
//	28      1     uniformIn flag
//	29      1     weight tag length
//	30      16    weight tag ("wc", "file", ... zero padded)
//	46      2     zero pad
//	48      7×24  section table: kind u32, elemSize u32, count u64, offset u64
//	...     0     zero fill
//	4092    4     CRC32C over header[0:4092]
//
// Each section: payload at a 4096-aligned offset, then its trailer —
// one CRC32C per SegBlockSize payload block plus a final CRC32C over
// the trailer itself (so trailer corruption is distinguished from
// payload corruption). The next section starts at the next page
// boundary. Every field of the layout is a pure function of (n, m), so
// a reader recomputes it and any disagreement — including a short file
// — is detected before any payload is touched.
const (
	segMagic         = 0x31475344 // "DSG1"
	SegFormatVersion = 1
	// SegBlockSize is the CRC (and content-hash) block width. It is part
	// of the format: BaseHash hashes these per-block digests, so v1 pins
	// it rather than making it a knob.
	SegBlockSize  = 1 << 20
	segHeaderSize = 4096
	segAlign      = 4096
	segWeightTagMax = 16
)

// Section kinds, in file order.
const (
	secOutStart = iota
	secOutAdj
	secOutProb
	secInStart
	secInAdj
	secInProb
	secInProbSum
	segSectionCount
)

var secNames = [segSectionCount]string{
	"outStart", "outAdj", "outProb", "inStart", "inAdj", "inProb", "inProbSum",
}

// CSRTruncatedError reports a segmented graph file shorter than its
// header (or the fixed header itself) declares — the truncation signal,
// checked before any payload read.
type CSRTruncatedError struct {
	Path      string
	WantBytes int64
	GotBytes  int64
}

func (e *CSRTruncatedError) Error() string {
	return fmt.Sprintf("graph: segmented graph %s truncated: want %d bytes, file holds %d",
		e.Path, e.WantBytes, e.GotBytes)
}

// CSRChecksumError reports a CRC32C mismatch in a segmented graph: a
// flipped bit in the header, in one payload block of a section, or in a
// section's CRC trailer (Block = -1).
type CSRChecksumError struct {
	Path    string
	Section string // section name, or "header"
	Block   int    // payload block index, -1 for the trailer itself
	Want    uint32
	Got     uint32
}

func (e *CSRChecksumError) Error() string {
	where := fmt.Sprintf("section %s block %d", e.Section, e.Block)
	if e.Section == "header" {
		where = "header"
	} else if e.Block < 0 {
		where = fmt.Sprintf("section %s CRC trailer", e.Section)
	}
	return fmt.Sprintf("graph: segmented graph %s corrupt: %s CRC32C %#x, want %#x",
		e.Path, where, e.Got, e.Want)
}

// CSRVersionError reports a segmented graph written by a different
// format version than this build reads.
type CSRVersionError struct {
	Path string
	Got  uint32
	Want uint32
}

func (e *CSRVersionError) Error() string {
	return fmt.Sprintf("graph: segmented graph %s is format version %d, this build reads %d",
		e.Path, e.Got, e.Want)
}

// CorruptCSRError reports structural corruption that is not a plain
// checksum or version mismatch: bad magic, an inconsistent section
// table, impossible counts.
type CorruptCSRError struct {
	Path   string
	Reason string
}

func (e *CorruptCSRError) Error() string {
	return fmt.Sprintf("graph: segmented graph %s corrupt: %s", e.Path, e.Reason)
}

// MappedGraphError reports an operation that would write through (or
// reassign) an mmap-backed graph's shared read-only mapping. The mmap
// backend serves frozen graphs; regenerate the file, or load with the
// mem backend, to get a mutable copy.
type MappedGraphError struct {
	Path string
	Op   string
}

func (e *MappedGraphError) Error() string {
	return fmt.Sprintf("graph: %s on the mmap-backed graph %s: the mapping is shared and read-only (load with -graph-backend mem, or regenerate the file)", e.Op, e.Path)
}

// segSection is one resolved section of the layout.
type segSection struct {
	elemSize int
	count    int64
	off      int64 // payload offset
}

func (s segSection) payloadBytes() int64 { return s.count * int64(s.elemSize) }

func (s segSection) nBlocks() int64 {
	return (s.payloadBytes() + SegBlockSize - 1) / SegBlockSize
}

// trailerOff is the file offset of the section's CRC trailer
// (nBlocks u32 CRCs + one u32 self-CRC).
func (s segSection) trailerOff() int64 { return s.off + s.payloadBytes() }

func (s segSection) trailerBytes() int64 { return (s.nBlocks() + 1) * 4 }

func alignUp(x int64) int64 { return (x + segAlign - 1) / segAlign * segAlign }

// segLayout is the full file layout for an (n, m) graph — a pure
// function of the two counts.
type segLayout struct {
	n, m     int64
	sections [segSectionCount]segSection
	fileSize int64
}

func computeLayout(n, m int64) segLayout {
	l := segLayout{n: n, m: m}
	sizes := [segSectionCount]struct {
		elem  int
		count int64
	}{
		{8, n + 1}, // outStart int64
		{4, m},     // outAdj uint32
		{4, m},     // outProb float32
		{8, n + 1}, // inStart int64
		{4, m},     // inAdj uint32
		{4, m},     // inProb float32
		{8, n},     // inProbSum float64
	}
	cur := int64(segHeaderSize)
	for i, s := range sizes {
		sec := segSection{elemSize: s.elem, count: s.count, off: cur}
		l.sections[i] = sec
		cur = alignUp(sec.trailerOff() + sec.trailerBytes())
	}
	l.fileSize = cur
	return l
}

// CSRBytes returns the total payload bytes of all sections — the size
// of the CSR proper, excluding headers, trailers and alignment. This is
// the figure the out-of-core bench compares peak RSS against.
func (l segLayout) CSRBytes() int64 {
	var t int64
	for _, s := range l.sections {
		t += s.payloadBytes()
	}
	return t
}

// encodeHeader serializes the fixed header, including its CRC.
func encodeHeader(l segLayout, uniformIn bool, weightTag string) ([]byte, error) {
	if len(weightTag) > segWeightTagMax {
		return nil, fmt.Errorf("graph: weight tag %q longer than %d bytes", weightTag, segWeightTagMax)
	}
	h := make([]byte, segHeaderSize)
	binary.LittleEndian.PutUint32(h[0:], segMagic)
	binary.LittleEndian.PutUint32(h[4:], SegFormatVersion)
	binary.LittleEndian.PutUint64(h[8:], uint64(l.n))
	binary.LittleEndian.PutUint64(h[16:], uint64(l.m))
	binary.LittleEndian.PutUint32(h[24:], SegBlockSize)
	if uniformIn {
		h[28] = 1
	}
	h[29] = byte(len(weightTag))
	copy(h[30:30+segWeightTagMax], weightTag)
	off := 48
	for kind, s := range l.sections {
		binary.LittleEndian.PutUint32(h[off:], uint32(kind))
		binary.LittleEndian.PutUint32(h[off+4:], uint32(s.elemSize))
		binary.LittleEndian.PutUint64(h[off+8:], uint64(s.count))
		binary.LittleEndian.PutUint64(h[off+16:], uint64(s.off))
		off += 24
	}
	binary.LittleEndian.PutUint32(h[segHeaderSize-4:], checksum.Sum(h[:segHeaderSize-4]))
	return h, nil
}

// segHeader is a decoded and validated header.
type segHeader struct {
	layout    segLayout
	uniformIn bool
	weightTag string
}

// decodeHeader validates the fixed header bytes against the layout
// implied by their (n, m) and returns the decoded form. Checks run from
// cheapest to most specific, mirroring internal/store's segment reader:
// magic, then the header CRC (any flipped bit), then the format version,
// then structural consistency.
func decodeHeader(path string, h []byte) (*segHeader, error) {
	if len(h) < segHeaderSize {
		return nil, &CSRTruncatedError{Path: path, WantBytes: segHeaderSize, GotBytes: int64(len(h))}
	}
	h = h[:segHeaderSize]
	if magic := binary.LittleEndian.Uint32(h[0:]); magic != segMagic {
		return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("bad magic %#x (not a DSG1 segmented graph)", magic)}
	}
	want := binary.LittleEndian.Uint32(h[segHeaderSize-4:])
	if got := checksum.Sum(h[:segHeaderSize-4]); got != want {
		return nil, &CSRChecksumError{Path: path, Section: "header", Want: want, Got: got}
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != SegFormatVersion {
		return nil, &CSRVersionError{Path: path, Got: v, Want: SegFormatVersion}
	}
	n := int64(binary.LittleEndian.Uint64(h[8:]))
	m := int64(binary.LittleEndian.Uint64(h[16:]))
	if n < 0 || n > 1<<32 || m < 0 {
		return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("impossible counts n=%d m=%d", n, m)}
	}
	if bs := binary.LittleEndian.Uint32(h[24:]); bs != SegBlockSize {
		return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("block size %d, v1 requires %d", bs, SegBlockSize)}
	}
	tagLen := int(h[29])
	if tagLen > segWeightTagMax {
		return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("weight tag length %d exceeds %d", tagLen, segWeightTagMax)}
	}
	hdr := &segHeader{
		layout:    computeLayout(n, m),
		uniformIn: h[28] == 1,
		weightTag: string(h[30 : 30+tagLen]),
	}
	// The section table is redundant with (n, m); require exact agreement
	// so a reader never trusts offsets a flipped-then-refitted header
	// could smuggle in.
	off := 48
	for kind, s := range hdr.layout.sections {
		if k := binary.LittleEndian.Uint32(h[off:]); k != uint32(kind) {
			return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("section %d has kind %d", kind, k)}
		}
		if es := binary.LittleEndian.Uint32(h[off+4:]); es != uint32(s.elemSize) {
			return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("section %s element size %d, want %d", secNames[kind], es, s.elemSize)}
		}
		if c := binary.LittleEndian.Uint64(h[off+8:]); c != uint64(s.count) {
			return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("section %s count %d, want %d", secNames[kind], c, s.count)}
		}
		if o := binary.LittleEndian.Uint64(h[off+16:]); o != uint64(s.off) {
			return nil, &CorruptCSRError{Path: path, Reason: fmt.Sprintf("section %s offset %d, want %d", secNames[kind], o, s.off)}
		}
		off += 24
	}
	return hdr, nil
}

// readHeader reads and validates the header and the file size.
func readHeader(f *os.File, path string) (*segHeader, error) {
	buf := make([]byte, segHeaderSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		st, serr := f.Stat()
		if serr == nil && st.Size() < segHeaderSize {
			return nil, &CSRTruncatedError{Path: path, WantBytes: segHeaderSize, GotBytes: st.Size()}
		}
		return nil, fmt.Errorf("graph: reading segmented header of %s: %w", path, err)
	}
	hdr, err := decodeHeader(path, buf)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("graph: stat %s: %w", path, err)
	}
	if st.Size() != hdr.layout.fileSize {
		return nil, &CSRTruncatedError{Path: path, WantBytes: hdr.layout.fileSize, GotBytes: st.Size()}
	}
	return hdr, nil
}

// readTrailer reads one section's CRC trailer, verifies its self-CRC,
// and returns the per-block payload CRCs.
func readTrailer(f *os.File, path string, kind int, s segSection) ([]uint32, error) {
	raw := make([]byte, s.trailerBytes())
	if _, err := f.ReadAt(raw, s.trailerOff()); err != nil {
		return nil, fmt.Errorf("graph: reading %s trailer of %s: %w", secNames[kind], path, err)
	}
	body := raw[:len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := checksum.Sum(body); got != want {
		return nil, &CSRChecksumError{Path: path, Section: secNames[kind], Block: -1, Want: want, Got: got}
	}
	crcs := make([]uint32, s.nBlocks())
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(body[i*4:])
	}
	return crcs, nil
}

// SegInfo describes a segmented graph file without loading its payload.
type SegInfo struct {
	Path      string
	Nodes     int64
	Edges     int64
	UniformIn bool
	WeightTag string
	FileBytes int64
	CSRBytes  int64 // payload bytes proper (the RSS comparison base)
	Blocks    int64 // CRC blocks across all sections
}

// StatSegmented reads and validates a segmented graph's header without
// touching any payload, and returns its description.
func StatSegmented(path string) (*SegInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr, err := readHeader(f, path)
	if err != nil {
		return nil, err
	}
	info := &SegInfo{
		Path:      path,
		Nodes:     hdr.layout.n,
		Edges:     hdr.layout.m,
		UniformIn: hdr.uniformIn,
		WeightTag: hdr.weightTag,
		FileBytes: hdr.layout.fileSize,
		CSRBytes:  hdr.layout.CSRBytes(),
	}
	for _, s := range hdr.layout.sections {
		info.Blocks += s.nBlocks()
	}
	return info, nil
}

// VerifySegmented reads every payload block of every section and checks
// it against the CRC trailers — the full integrity pass (a sequential
// read of the whole file; OpenSegmented with the mmap backend
// deliberately skips it so opening stays O(header+trailers)).
func VerifySegmented(path string) (*SegInfo, error) {
	info, err := StatSegmented(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr, err := readHeader(f, path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, SegBlockSize)
	for kind, s := range hdr.layout.sections {
		crcs, err := readTrailer(f, path, kind, s)
		if err != nil {
			return nil, err
		}
		remaining := s.payloadBytes()
		off := s.off
		for b := 0; remaining > 0; b++ {
			chunk := int64(SegBlockSize)
			if chunk > remaining {
				chunk = remaining
			}
			if _, err := f.ReadAt(buf[:chunk], off); err != nil {
				return nil, fmt.Errorf("graph: reading %s block %d of %s: %w", secNames[kind], b, path, err)
			}
			if got := checksum.Sum(buf[:chunk]); got != crcs[b] {
				return nil, &CSRChecksumError{Path: path, Section: secNames[kind], Block: b, Want: crcs[b], Got: got}
			}
			off += chunk
			remaining -= chunk
		}
	}
	return info, nil
}
