package graph

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dimm/internal/checksum"
)

// segTestGraph builds a heavy-tailed weighted graph the segment tests
// share: R-MAT topology (duplicates kept) plus WC weights, the setting
// the big-graph path actually serves.
func segTestGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := GenRMAT(RMATConfig{GenConfig: GenConfig{Nodes: 500, AvgDegree: 6, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if g, err = AssignWeights(g, WeightedCascade, 0, 0); err != nil {
		t.Fatal(err)
	}
	return g
}

// requireGraphsEqual asserts byte-level equality of every CSR array and
// the derived fields — the bit-identity contract between substrates.
func requireGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.n != got.n || want.m != got.m {
		t.Fatalf("counts differ: want n=%d m=%d, got n=%d m=%d", want.n, want.m, got.n, got.m)
	}
	for i := range want.outStart {
		if want.outStart[i] != got.outStart[i] {
			t.Fatalf("outStart[%d]: want %d, got %d", i, want.outStart[i], got.outStart[i])
		}
	}
	for i := range want.inStart {
		if want.inStart[i] != got.inStart[i] {
			t.Fatalf("inStart[%d]: want %d, got %d", i, want.inStart[i], got.inStart[i])
		}
	}
	for i := range want.outAdj {
		if want.outAdj[i] != got.outAdj[i] || want.outProb[i] != got.outProb[i] {
			t.Fatalf("out slot %d: want (%d,%v), got (%d,%v)", i, want.outAdj[i], want.outProb[i], got.outAdj[i], got.outProb[i])
		}
	}
	for i := range want.inAdj {
		if want.inAdj[i] != got.inAdj[i] || want.inProb[i] != got.inProb[i] {
			t.Fatalf("in slot %d: want (%d,%v), got (%d,%v)", i, want.inAdj[i], want.inProb[i], got.inAdj[i], got.inProb[i])
		}
	}
	for i := range want.inProbSum {
		if want.inProbSum[i] != got.inProbSum[i] {
			t.Fatalf("inProbSum[%d]: want %v, got %v (must be bit-identical, not approximately equal)", i, want.inProbSum[i], got.inProbSum[i])
		}
	}
	if want.uniformIn != got.uniformIn {
		t.Fatalf("uniformIn: want %v, got %v", want.uniformIn, got.uniformIn)
	}
}

func TestSegmentedRoundTripBothBackends(t *testing.T) {
	g := segTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}
	info, err := VerifySegmented(path)
	if err != nil {
		t.Fatalf("fresh file fails verification: %v", err)
	}
	if info.Nodes != g.n || info.Edges != g.m || info.WeightTag != "wc" {
		t.Fatalf("SegInfo %+v does not match graph n=%d m=%d", info, g.n, g.m)
	}
	for _, backend := range []Backend{BackendMem, BackendMmap} {
		got, err := OpenSegmented(path, backend)
		if err != nil {
			t.Fatalf("%v open: %v", backend, err)
		}
		requireGraphsEqual(t, g, got)
		if backend == BackendMmap && !got.Mapped() {
			t.Fatal("mmap-opened graph reports Mapped() = false")
		}
		if backend == BackendMem && got.Mapped() {
			t.Fatal("mem-opened graph reports Mapped() = true")
		}
		if got.WeightTag() != "wc" {
			t.Fatalf("%v WeightTag = %q, want wc", backend, got.WeightTag())
		}
		if got.CSRBytes() != g.CSRBytes() {
			t.Fatalf("%v CSRBytes = %d, heap says %d", backend, got.CSRBytes(), g.CSRBytes())
		}
		if err := got.Close(); err != nil {
			t.Fatalf("%v close: %v", backend, err)
		}
		if err := got.Close(); err != nil {
			t.Fatalf("%v second close: %v", backend, err)
		}
	}
}

// TestSegmentedHashEquality pins the satellite requirement: the content
// hash of a heap-built graph, its mem-loaded segmented copy, and its
// mmap-loaded segmented copy are one value — and for the segmented opens
// it comes from the trailer CRCs without re-reading the payload.
func TestSegmentedHashEquality(t *testing.T) {
	g := segTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}
	want := g.ContentHash()
	for _, backend := range []Backend{BackendMem, BackendMmap} {
		got, err := OpenSegmented(path, backend)
		if err != nil {
			t.Fatal(err)
		}
		if h := got.ContentHash(); h != want {
			t.Fatalf("%v backend hash %s != heap hash %s", backend, h, want)
		}
		got.Close()
	}
}

// TestBuildSegmentedMatchesHeapWC pins the tentpole bit-identity claim
// on the canonical path: R-MAT streamed disk-direct through the external
// sorter with WC weights equals GenRMAT + AssignWeights in memory —
// every CSR slot, weight, and float64 inProbSum bit. A tiny sort buffer
// forces multi-run external sorts so the merge path is what's tested.
func TestBuildSegmentedMatchesHeapWC(t *testing.T) {
	cfg := RMATConfig{GenConfig: GenConfig{Nodes: 700, AvgDegree: 5, Seed: 11}}
	want, err := GenRMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want, err = AssignWeights(want, WeightedCascade, 0, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rmat.dsg")
	var n int
	stats, err := BuildSegmented(path, 700, func(emit func(from, to uint32, prob float32) error) error {
		return GenRMATStream(cfg, func(nodes int, _ int64) error {
			n = nodes
			return nil
		}, func(u, v uint32) error { return emit(u, v, 1) })
	}, SegmentBuildOptions{
		Weights:      WeightedCascade,
		HasWeights:   true,
		SortBufBytes: edgeRecBytes * 256, // ~256 records per run: force many runs
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 700 || stats.Edges != want.m {
		t.Fatalf("stream saw n=%d m=%d, heap built n=700 m=%d", n, stats.Edges, want.m)
	}
	if stats.Runs < 4 {
		t.Fatalf("expected a multi-run external sort, got %d runs", stats.Runs)
	}
	for _, backend := range []Backend{BackendMem, BackendMmap} {
		got, err := OpenSegmented(path, backend)
		if err != nil {
			t.Fatal(err)
		}
		requireGraphsEqual(t, want, got)
		if h := got.ContentHash(); h != want.ContentHash() {
			t.Fatalf("%v hash %s != heap hash %s", backend, h, want.ContentHash())
		}
		got.Close()
	}
}

// TestBuildSegmentedMatchesHeapTrivalency pins the seeded-draw order:
// trivalency probabilities are drawn in source-sorted edge order on both
// paths, so the same seed lands the same value on the same edge.
func TestBuildSegmentedMatchesHeapTrivalency(t *testing.T) {
	cfg := RMATConfig{GenConfig: GenConfig{Nodes: 300, AvgDegree: 4, Seed: 3}}
	want, err := GenRMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want, err = AssignWeights(want, Trivalency, 0, 99); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tri.dsg")
	_, err = BuildSegmented(path, 300, func(emit func(from, to uint32, prob float32) error) error {
		return GenRMATStream(cfg, func(int, int64) error { return nil },
			func(u, v uint32) error { return emit(u, v, 1) })
	}, SegmentBuildOptions{Weights: Trivalency, HasWeights: true, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenSegmented(path, BackendMem)
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsEqual(t, want, got)
}

// TestBuildSegmentedFileWeights pins the "file" mode: kept probabilities
// with duplicate edges and zero-degree tail nodes must reproduce
// Builder.Build exactly, including the raw-order in-CSR buckets.
func TestBuildSegmentedFileWeights(t *testing.T) {
	// Deliberately awkward: duplicate edges with distinct probabilities
	// (slot order inside a bucket is the only thing separating them),
	// interleaved sources (exercises sort stability), and nodes 8, 9 with
	// no edges at all (zero-degree tail).
	edges := []Edge{
		{3, 1, 0.5}, {0, 1, 0.25}, {3, 1, 0.75}, {2, 7, 1}, {0, 1, 0.25},
		{5, 2, 0.1}, {3, 2, 0.9}, {1, 0, 0.3}, {5, 2, 0.2}, {2, 1, 0.6},
	}
	b := NewBuilder(10)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			t.Fatal(err)
		}
	}
	want := b.Build()
	path := filepath.Join(t.TempDir(), "file.dsg")
	_, err := BuildSegmented(path, 10, func(emit func(from, to uint32, prob float32) error) error {
		for _, e := range edges {
			if err := emit(e.From, e.To, e.Prob); err != nil {
				return err
			}
		}
		return nil
	}, SegmentBuildOptions{SortBufBytes: edgeRecBytes * 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenSegmented(path, BackendMem)
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsEqual(t, want, got)
	if got.WeightTag() != "file" {
		t.Fatalf("WeightTag = %q, want file", got.WeightTag())
	}
}

// TestBuildSegmentedRejectsBadEdges mirrors Builder.AddEdge validation.
func TestBuildSegmentedRejectsBadEdges(t *testing.T) {
	dir := t.TempDir()
	for name, edge := range map[string]Edge{
		"out-of-range": {From: 0, To: 10, Prob: 1},
		"self-loop":    {From: 2, To: 2, Prob: 1},
		"bad-prob":     {From: 0, To: 1, Prob: 1.5},
	} {
		_, err := BuildSegmented(filepath.Join(dir, name+".dsg"), 5, func(emit func(from, to uint32, prob float32) error) error {
			return emit(edge.From, edge.To, edge.Prob)
		}, SegmentBuildOptions{})
		if err == nil {
			t.Fatalf("%s: BuildSegmented accepted an invalid edge", name)
		}
		if _, statErr := os.Stat(filepath.Join(dir, name+".dsg")); !os.IsNotExist(statErr) {
			t.Fatalf("%s: failed build left a file behind", name)
		}
	}
}

func TestConvertEdgeListToSegmented(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "edges.txt")
	content := "# comment\n10 20\n20 30 0.5\n10 30\n30 30\n40 10 0.125\n"
	if err := os.WriteFile(txt, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := LoadEdgeListFile(txt, false)
	if err != nil {
		t.Fatal(err)
	}
	dsg := filepath.Join(dir, "edges.dsg")
	if _, err := ConvertEdgeListToSegmented(txt, dsg, false, SegmentBuildOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := OpenSegmented(dsg, BackendMem)
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsEqual(t, want, got)
}

// corruptAt flips one byte of the file at off.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedCorruptionMatrix mirrors the internal/store corruption
// tests: every distinct damage pattern maps to its own typed error.
func TestSegmentedCorruptionMatrix(t *testing.T) {
	g := segTestGraph(t)
	dir := t.TempDir()
	master := filepath.Join(dir, "master.dsg")
	if err := WriteSegmentedFile(master, g, "wc"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func(t *testing.T, name string) string {
		p := filepath.Join(dir, name+".dsg")
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	layout := computeLayout(g.n, g.m)

	t.Run("truncated", func(t *testing.T) {
		p := fresh(t, "trunc")
		if err := os.Truncate(p, layout.fileSize/2); err != nil {
			t.Fatal(err)
		}
		var want *CSRTruncatedError
		if _, err := OpenSegmented(p, BackendMem); !errors.As(err, &want) {
			t.Fatalf("truncated file: got %v, want *CSRTruncatedError", err)
		}
		if want.WantBytes != layout.fileSize || want.GotBytes != layout.fileSize/2 {
			t.Fatalf("truncation error sizes %d/%d, want %d/%d", want.GotBytes, want.WantBytes, layout.fileSize/2, layout.fileSize)
		}
	})

	t.Run("header-bitflip", func(t *testing.T) {
		p := fresh(t, "hdrflip")
		corruptAt(t, p, 9) // inside the node count
		var want *CSRChecksumError
		if _, err := OpenSegmented(p, BackendMem); !errors.As(err, &want) || want.Section != "header" {
			t.Fatalf("header flip: got %v, want header *CSRChecksumError", err)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		p := fresh(t, "magic")
		f, err := os.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		hdr := make([]byte, segHeaderSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(hdr[0:], 0x314d4944) // "DIM1"
		// Refit the header CRC so only the magic is at fault.
		binary.LittleEndian.PutUint32(hdr[segHeaderSize-4:], checksum.Sum(hdr[:segHeaderSize-4]))
		if _, err := f.WriteAt(hdr, 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		var want *CorruptCSRError
		if _, err := OpenSegmented(p, BackendMem); !errors.As(err, &want) {
			t.Fatalf("bad magic: got %v, want *CorruptCSRError", err)
		}
	})

	t.Run("version-mismatch", func(t *testing.T) {
		p := fresh(t, "version")
		f, err := os.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		hdr := make([]byte, segHeaderSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(hdr[4:], SegFormatVersion+1)
		// Recompute the CRC: a version bump from a future writer would
		// carry a valid checksum, and must still be told apart from rot.
		binary.LittleEndian.PutUint32(hdr[segHeaderSize-4:], checksum.Sum(hdr[:segHeaderSize-4]))
		if _, err := f.WriteAt(hdr, 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		var want *CSRVersionError
		if _, err := OpenSegmented(p, BackendMem); !errors.As(err, &want) {
			t.Fatalf("version mismatch: got %v, want *CSRVersionError", err)
		}
		if want.Got != SegFormatVersion+1 || want.Want != SegFormatVersion {
			t.Fatalf("version error %d/%d, want %d/%d", want.Got, want.Want, SegFormatVersion+1, SegFormatVersion)
		}
	})

	t.Run("payload-bitflip", func(t *testing.T) {
		p := fresh(t, "payload")
		sec := layout.sections[secInAdj]
		corruptAt(t, p, sec.off+sec.payloadBytes()/2)
		var want *CSRChecksumError
		if _, err := OpenSegmented(p, BackendMem); !errors.As(err, &want) {
			t.Fatalf("payload flip, mem open: got %v, want *CSRChecksumError", err)
		}
		if want.Section != "inAdj" || want.Block < 0 {
			t.Fatalf("payload flip blamed %s block %d, want inAdj payload block", want.Section, want.Block)
		}
		if _, err := VerifySegmented(p); !errors.As(err, &want) {
			t.Fatalf("payload flip, verify: got %v, want *CSRChecksumError", err)
		}
		// The mmap backend deliberately skips payload verification; it
		// must still open (integrity is VerifySegmented's job there).
		mg, err := OpenSegmented(p, BackendMmap)
		if err != nil {
			t.Fatalf("payload flip, mmap open: %v", err)
		}
		mg.Close()
	})

	t.Run("trailer-bitflip", func(t *testing.T) {
		p := fresh(t, "trailer")
		sec := layout.sections[secOutAdj]
		corruptAt(t, p, sec.trailerOff())
		var want *CSRChecksumError
		if _, err := OpenSegmented(p, BackendMmap); !errors.As(err, &want) {
			t.Fatalf("trailer flip: got %v, want *CSRChecksumError", err)
		}
		if want.Section != "outAdj" || want.Block != -1 {
			t.Fatalf("trailer flip blamed %s block %d, want outAdj trailer (-1)", want.Section, want.Block)
		}
	})
}

func TestEnableMutationRejectsMapped(t *testing.T) {
	g := segTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenSegmented(path, BackendMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	var want *MappedGraphError
	if err := mapped.EnableMutation(); !errors.As(err, &want) {
		t.Fatalf("EnableMutation on mmap graph: got %v, want *MappedGraphError", err)
	}
	if mapped.MutationEnabled() {
		t.Fatal("rejected EnableMutation still flipped the graph mutable")
	}
	// The same file through the mem backend is an ordinary heap copy and
	// must mutate fine.
	mem, err := OpenSegmented(path, BackendMem)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.EnableMutation(); err != nil {
		t.Fatalf("EnableMutation on mem-loaded segmented graph: %v", err)
	}
	if _, _, err := mem.ApplyUpdates(1, []EdgeUpdate{{Op: OpAdd, From: 0, To: uint32(mem.NumNodes() - 1), Prob: 0.5}}); err != nil {
		t.Fatalf("ApplyUpdates on mem-loaded segmented graph: %v", err)
	}
}

func TestLoadAnySegmentedWeightReconciliation(t *testing.T) {
	g := segTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}
	// Matching tag: both backends load the stored probabilities.
	for _, backend := range []Backend{BackendMem, BackendMmap} {
		got, err := LoadAny(path, LoadOptions{Weights: "wc", Backend: backend})
		if err != nil {
			t.Fatalf("%v matching weights: %v", backend, err)
		}
		requireGraphsEqual(t, g, got)
		got.Close()
	}
	// Mismatch on mem: reweighted heap copy.
	uni, err := LoadAny(path, LoadOptions{Weights: "uniform", UniformP: 0.1, Backend: BackendMem})
	if err != nil {
		t.Fatal(err)
	}
	if _, p := uni.OutNeighbors(0); len(p) > 0 && p[0] != 0.1 {
		t.Fatalf("uniform reweight: got prob %v, want 0.1", p[0])
	}
	// Mismatch on mmap: refused with the typed error.
	var want *MappedGraphError
	if _, err := LoadAny(path, LoadOptions{Weights: "uniform", UniformP: 0.1, Backend: BackendMmap}); !errors.As(err, &want) {
		t.Fatalf("mmap weight mismatch: got %v, want *MappedGraphError", err)
	}
	// mmap over a non-segmented format: plain refusal.
	if _, err := LoadAny(filepath.Join(t.TempDir(), "nope.bin"), LoadOptions{Backend: BackendMmap}); err == nil {
		t.Fatal("LoadAny accepted mmap backend for a .bin path")
	}
}

// TestLegacyBinaryHashStable pins that the legacy v1 binary round-trip
// preserves the content hash: BaseHash covers the out-CSR, which DIM1
// stores verbatim (the in-CSR is a derived rebuild).
func TestLegacyBinaryHashStable(t *testing.T) {
	g := segTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentHash() != g.ContentHash() {
		t.Fatalf("binary round-trip changed hash: %s vs %s", got.ContentHash(), g.ContentHash())
	}
}

func TestDropResidency(t *testing.T) {
	g := segTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenSegmented(path, BackendMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	// Touch everything, drop residency, touch again: the data must
	// refault identically (MADV_DONTNEED on a file mapping discards
	// pages, never content).
	sum1 := int64(0)
	for _, v := range mapped.outAdj {
		sum1 += int64(v)
	}
	if err := mapped.DropResidency(); err != nil {
		t.Fatal(err)
	}
	sum2 := int64(0)
	for _, v := range mapped.outAdj {
		sum2 += int64(v)
	}
	if sum1 != sum2 {
		t.Fatalf("adjacency changed across DropResidency: %d vs %d", sum1, sum2)
	}
	// Heap graphs: no-op.
	if err := g.DropResidency(); err != nil {
		t.Fatal(err)
	}
}

func TestStatSegmented(t *testing.T) {
	g := segTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.dsg")
	if err := WriteSegmentedFile(path, g, "wc"); err != nil {
		t.Fatal(err)
	}
	info, err := StatSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.n || info.Edges != g.m || info.UniformIn != g.uniformIn {
		t.Fatalf("StatSegmented %+v disagrees with graph (n=%d m=%d uniform=%v)", info, g.n, g.m, g.uniformIn)
	}
	if info.CSRBytes != computeLayout(g.n, g.m).CSRBytes() {
		t.Fatalf("CSRBytes %d, want %d", info.CSRBytes, computeLayout(g.n, g.m).CSRBytes())
	}
}
