package graph

import (
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"

	"dimm/internal/checksum"
)

// Backend selects how a segmented graph file's payload is materialized.
type Backend int

const (
	// BackendMem reads the whole file into heap slices, verifying every
	// payload block CRC on the way in — the safe default, byte-equivalent
	// to building the graph in memory.
	BackendMem Backend = iota
	// BackendMmap maps the file read-only and aliases the CSR slices
	// directly onto the mapping: opening is O(header + trailers), the OS
	// pages adjacency blocks in on demand, and the CSR is never resident
	// in RAM beyond what sampling actually touches. Payload CRCs are not
	// pre-verified (that would read the whole file, defeating the point);
	// run VerifySegmented separately when integrity matters more than
	// open latency.
	BackendMmap
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendMem:
		return "mem"
	case BackendMmap:
		return "mmap"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend converts the CLI's -graph-backend value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "mem":
		return BackendMem, nil
	case "mmap":
		return BackendMmap, nil
	default:
		return 0, fmt.Errorf("graph: unknown graph backend %q (want mem|mmap)", s)
	}
}

// segState is the segmented-file provenance of a Graph opened from a
// .dsg file: the source path, the mapping (mmap backend only), and the
// per-block CRCs read from the file's trailers — which BaseHash reuses
// so fingerprinting a 100M-edge graph never re-reads the CSR.
type segState struct {
	path      string
	mapped    []byte // non-nil iff the payload aliases an mmap region
	weightTag string
	fileBytes int64
	csrBytes  int64
	crcs      [segSectionCount][]uint32
}

// OpenSegmented opens a segmented graph file with the given backend.
// Both backends return a *Graph with bit-identical accessor results;
// they differ only in residency (heap copy vs demand-paged mapping) and
// in how much integrity checking happens up front.
func OpenSegmented(path string, backend Backend) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr, err := readHeader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	seg := &segState{
		path:      path,
		weightTag: hdr.weightTag,
		fileBytes: hdr.layout.fileSize,
		csrBytes:  hdr.layout.CSRBytes(),
	}
	for kind, s := range hdr.layout.sections {
		crcs, err := readTrailer(f, path, kind, s)
		if err != nil {
			f.Close()
			return nil, err
		}
		seg.crcs[kind] = crcs
	}
	g := &Graph{
		n:         hdr.layout.n,
		m:         hdr.layout.m,
		uniformIn: hdr.uniformIn,
		seg:       seg,
	}
	switch backend {
	case BackendMem:
		err = loadSegMem(f, path, hdr, seg, g)
		f.Close()
	case BackendMmap:
		err = loadSegMmap(f, path, hdr, seg, g)
		// The mapping outlives the descriptor; close it either way.
		f.Close()
	default:
		f.Close()
		err = fmt.Errorf("graph: unknown backend %v", backend)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// loadSegMem reads every section into heap slices, verifying each
// payload block against the trailer CRCs as it streams.
func loadSegMem(f *os.File, path string, hdr *segHeader, seg *segState, g *Graph) error {
	n, m := hdr.layout.n, hdr.layout.m
	g.outStart = make([]int64, n+1)
	g.outAdj = make([]uint32, m)
	g.outProb = make([]float32, m)
	g.inStart = make([]int64, n+1)
	g.inAdj = make([]uint32, m)
	g.inProb = make([]float32, m)
	g.inProbSum = make([]float64, n)

	buf := make([]byte, SegBlockSize)
	read := func(kind int, decode func(block []byte, elem int64)) error {
		s := hdr.layout.sections[kind]
		remaining := s.payloadBytes()
		off := s.off
		var elem int64
		for b := 0; remaining > 0; b++ {
			chunk := int64(SegBlockSize)
			if chunk > remaining {
				chunk = remaining
			}
			if _, err := f.ReadAt(buf[:chunk], off); err != nil {
				return fmt.Errorf("graph: reading %s block %d of %s: %w", secNames[kind], b, path, err)
			}
			if got := checksum.Sum(buf[:chunk]); got != seg.crcs[kind][b] {
				return &CSRChecksumError{Path: path, Section: secNames[kind], Block: b, Want: seg.crcs[kind][b], Got: got}
			}
			decode(buf[:chunk], elem)
			elem += chunk / int64(s.elemSize)
			off += chunk
			remaining -= chunk
		}
		return nil
	}
	dst64 := func(out []int64) func([]byte, int64) {
		return func(block []byte, elem int64) {
			for i := 0; i < len(block); i += 8 {
				out[elem] = int64(binary.LittleEndian.Uint64(block[i:]))
				elem++
			}
		}
	}
	dst32 := func(out []uint32) func([]byte, int64) {
		return func(block []byte, elem int64) {
			for i := 0; i < len(block); i += 4 {
				out[elem] = binary.LittleEndian.Uint32(block[i:])
				elem++
			}
		}
	}
	if err := read(secOutStart, dst64(g.outStart)); err != nil {
		return err
	}
	if err := read(secOutAdj, dst32(g.outAdj)); err != nil {
		return err
	}
	if err := read(secOutProb, dst32(asUint32Slice(g.outProb))); err != nil {
		return err
	}
	if err := read(secInStart, dst64(g.inStart)); err != nil {
		return err
	}
	if err := read(secInAdj, dst32(g.inAdj)); err != nil {
		return err
	}
	if err := read(secInProb, dst32(asUint32Slice(g.inProb))); err != nil {
		return err
	}
	if err := read(secInProbSum, dst64(asInt64Slice(g.inProbSum))); err != nil {
		return err
	}
	return segSanity(path, g)
}

// loadSegMmap maps the file and aliases the seven slices in place.
// Section payloads are exact little-endian slice images at page-aligned
// offsets, so on a little-endian host the typed views are free.
func loadSegMmap(f *os.File, path string, hdr *segHeader, seg *segState, g *Graph) error {
	if !hostLittleEndian() {
		return fmt.Errorf("graph: mmap backend requires a little-endian host (use -graph-backend mem)")
	}
	data, err := mmapFile(f, hdr.layout.fileSize)
	if err != nil {
		return fmt.Errorf("graph: mapping %s: %w", path, err)
	}
	seg.mapped = data
	// Sampling reads adjacency blocks in subset/frontier order, not
	// sequentially; tell readahead not to fault in whole runs.
	madviseRandom(data)
	sec := hdr.layout.sections
	g.outStart = mapInt64(data, sec[secOutStart])
	g.outAdj = mapUint32(data, sec[secOutAdj])
	g.outProb = mapFloat32(data, sec[secOutProb])
	g.inStart = mapInt64(data, sec[secInStart])
	g.inAdj = mapUint32(data, sec[secInAdj])
	g.inProb = mapFloat32(data, sec[secInProb])
	g.inProbSum = mapFloat64(data, sec[secInProbSum])
	if err := segSanity(path, g); err != nil {
		g.Close()
		return err
	}
	return nil
}

// segSanity cross-checks the CSR offset arrays against (n, m) — cheap
// structural validation that catches a coherent-but-wrong file before
// any accessor can index out of range.
func segSanity(path string, g *Graph) error {
	if g.outStart[0] != 0 || g.outStart[g.n] != g.m {
		return &CorruptCSRError{Path: path, Reason: fmt.Sprintf("out-CSR offsets span [%d,%d], want [0,%d]", g.outStart[0], g.outStart[g.n], g.m)}
	}
	if g.inStart[0] != 0 || g.inStart[g.n] != g.m {
		return &CorruptCSRError{Path: path, Reason: fmt.Sprintf("in-CSR offsets span [%d,%d], want [0,%d]", g.inStart[0], g.inStart[g.n], g.m)}
	}
	return nil
}

func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

func mapInt64(data []byte, s segSection) []int64 {
	if s.count == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[s.off])), s.count)
}

func mapUint32(data []byte, s segSection) []uint32 {
	if s.count == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&data[s.off])), s.count)
}

func mapFloat32(data []byte, s segSection) []float32 {
	if s.count == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&data[s.off])), s.count)
}

func mapFloat64(data []byte, s segSection) []float64 {
	if s.count == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[s.off])), s.count)
}

func asUint32Slice(f []float32) []uint32 {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&f[0])), len(f))
}

func asInt64Slice(f []float64) []int64 {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&f[0])), len(f))
}

// Mapped reports whether the graph's CSR aliases an mmap'ed file
// (BackendMmap). Mapped graphs are frozen: EnableMutation fails.
func (g *Graph) Mapped() bool { return g.seg != nil && g.seg.mapped != nil }

// SegPath returns the segmented file this graph was opened from, or ""
// for graphs built or loaded from other formats.
func (g *Graph) SegPath() string {
	if g.seg == nil {
		return ""
	}
	return g.seg.path
}

// WeightTag returns the weight model baked into the segmented file
// ("wc", "uniform", "trivalency", "file"), or "" for non-segmented
// graphs.
func (g *Graph) WeightTag() string {
	if g.seg == nil {
		return ""
	}
	return g.seg.weightTag
}

// CSRBytes returns the byte size of the seven CSR arrays — the base an
// out-of-core bench compares peak RSS against. It is identical for the
// heap and mapped forms of the same graph.
func (g *Graph) CSRBytes() int64 {
	if g.seg != nil {
		return g.seg.csrBytes
	}
	return computeLayout(g.n, g.m).CSRBytes()
}

// Close releases the mmap mapping, if any. The graph must not be used
// afterwards (its slices alias the unmapped region). Heap-backed graphs
// ignore Close. Idempotent.
func (g *Graph) Close() error {
	if g.seg == nil || g.seg.mapped == nil {
		return nil
	}
	data := g.seg.mapped
	g.seg.mapped = nil
	g.outStart, g.outAdj, g.outProb = nil, nil, nil
	g.inStart, g.inAdj, g.inProb = nil, nil, nil
	g.inProbSum = nil
	return munmapFile(data)
}

// EvictFileCache drops a mapped graph's resident pages and then the
// file's page-cache pages (MADV_DONTNEED followed by
// POSIX_FADV_DONTNEED — the order matters: fadvise skips pages that are
// still mapped). Afterwards the next accesses refault from disk: the
// genuinely cold out-of-core regime, where residency regrowth is
// bounded by storage bandwidth instead of warm-cache fault-around. The
// fadvise half is best-effort (no-op off Linux). No-op for heap-backed
// graphs.
func (g *Graph) EvictFileCache() error {
	if g.seg == nil || g.seg.mapped == nil {
		return nil
	}
	if err := madviseDontneed(g.seg.mapped); err != nil {
		return err
	}
	f, err := os.Open(g.seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fadviseDontneed(f, g.seg.fileBytes)
}

// DropResidency asks the OS to discard the resident pages of a mapped
// graph (MADV_DONTNEED on the read-only shared mapping: PTEs and RSS
// accounting go away; the data stays safe in the file and page cache,
// and re-access refaults it on demand). The out-of-core bench uses it
// to bound peak RSS while sampling. No-op for heap-backed graphs.
func (g *Graph) DropResidency() error {
	if g.seg == nil || g.seg.mapped == nil {
		return nil
	}
	return madviseDontneed(g.seg.mapped)
}
