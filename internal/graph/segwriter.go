package graph

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"dimm/internal/checksum"
	"dimm/internal/xrand"
)

// Streaming segmented-CSR construction. The builder never materializes
// the edge list (or either CSR) in memory: edges are spooled to disk,
// stably external-sorted by source (for the out-CSR) and then by target
// (for the in-CSR), and each sorted drain is written straight into the
// section layout as sequential fixed-width blocks. Peak RSS is
// O(n + sort buffer), independent of m — the property that lets
// gengraph emit a 100M+ edge graph on a small-memory box.
//
// Bit-identity with the in-memory path is by construction. The heap
// Builder's counting sort is stable, so the out-CSR is the edge stream
// stably sorted by source, and AssignWeights re-feeds edges in exactly
// that order before a second stable sort — making the in-CSR the
// source-sorted stream stably re-sorted by target. The external sort
// below is stable for the same key order (stable runs + run-order
// merge), so every CSR slot, probability and float64 inProbSum
// accumulation lands in the same place with the same bits, which keeps
// xrand's positional coin streams — and therefore every sampled RR set
// — identical across the heap, mem-loaded and mmap'ed substrates.

// edgeRec is the external-sort record: key is the sort field (source
// for the out pass, target for the in pass), val the other endpoint.
type edgeRec struct {
	key, val uint32
	prob     float32
}

const edgeRecBytes = 12

// SegmentBuildOptions configures BuildSegmented.
type SegmentBuildOptions struct {
	// Weights applies a weight model to the streamed edges, replicating
	// heap-path AssignWeights bit for bit. With HasWeights false the
	// stream's own probabilities are kept (the "file" setting).
	Weights    WeightModel
	HasWeights bool
	UniformP   float32 // UniformWeight's p
	Seed       uint64  // Trivalency's draw seed
	// WeightTag is recorded in the header so loaders can tell which
	// model is baked in ("" defaults to the model name, or "file").
	WeightTag string
	// TempDir holds the spool and sort-run files (default: the output's
	// directory). They are removed on return.
	TempDir string
	// SortBufBytes bounds the in-RAM sort buffer (default 96 MiB; the
	// auxiliary radix buffer doubles it). Smaller values mean more runs,
	// not failures.
	SortBufBytes int
}

// SegBuildStats reports a BuildSegmented run.
type SegBuildStats struct {
	Nodes     int64
	Edges     int64
	FileBytes int64
	CSRBytes  int64
	SpillBytes int64 // temp bytes written across spool + sort runs
	Runs      int
}

func (o SegmentBuildOptions) withDefaults() SegmentBuildOptions {
	if o.SortBufBytes <= 0 {
		o.SortBufBytes = 96 << 20
	}
	if o.SortBufBytes < edgeRecBytes*64 {
		o.SortBufBytes = edgeRecBytes * 64
	}
	if o.WeightTag == "" {
		if o.HasWeights {
			o.WeightTag = o.Weights.String()
		} else {
			o.WeightTag = "file"
		}
	}
	return o
}

// BuildSegmented streams the edges produced by src into a segmented CSR
// file at path, equivalent to feeding them through Builder.Build (plus
// AssignWeights when a model is set) and sealing the result — without
// ever holding the edges or the CSR in memory. src is invoked exactly
// once; emit applies the same validation as Builder.AddEdge. The file
// is published atomically (temp + fsync + rename).
func BuildSegmented(path string, n int, src func(emit func(from, to uint32, prob float32) error) error, opt SegmentBuildOptions) (*SegBuildStats, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: segmented build needs >= 1 node, got %d", n)
	}
	opt = opt.withDefaults()
	if opt.HasWeights && opt.Weights == UniformWeight && (opt.UniformP <= 0 || opt.UniformP > 1) {
		return nil, fmt.Errorf("graph: uniform probability %v outside (0,1]", opt.UniformP)
	}
	tempDir := opt.TempDir
	if tempDir == "" {
		tempDir = filepath.Dir(path)
	}
	bufRecs := opt.SortBufBytes / edgeRecBytes

	nn := int64(n)
	outDeg := make([]int64, nn+1) // shifted by one: prefix-summed into outStart
	inDeg := make([]int64, nn+1)

	// Pass A: drain the source once, counting degrees. With a weight
	// model the spool can go straight into source-sorted runs (the raw
	// order is only needed again when file probabilities are kept).
	var spool *rawSpool
	fromSorter := newExtSorter(tempDir, bufRecs)
	defer fromSorter.close()
	sink := func(r edgeRec) error { return fromSorter.add(r) }
	if !opt.HasWeights {
		var err error
		if spool, err = newRawSpool(tempDir); err != nil {
			return nil, err
		}
		defer spool.close()
		sink = spool.add
	}
	var m int64
	err := src(func(from, to uint32, prob float32) error {
		if int64(from) >= nn || int64(to) >= nn {
			return fmt.Errorf("graph: edge <%d,%d> out of range for %d nodes", from, to, n)
		}
		if from == to {
			return fmt.Errorf("graph: self-loop on node %d rejected", from)
		}
		if prob < 0 || prob > 1 || (prob != prob) {
			return fmt.Errorf("graph: edge <%d,%d> probability %v outside [0,1]", from, to, prob)
		}
		outDeg[from+1]++
		inDeg[to+1]++
		m++
		return sink(edgeRec{key: from, val: to, prob: prob})
	})
	if err != nil {
		return nil, err
	}

	layout := computeLayout(nn, m)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("graph: staging segmented graph: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (*SegBuildStats, error) {
		tmp.Close()
		os.Remove(tmpName)
		return nil, err
	}
	if err := tmp.Truncate(layout.fileSize); err != nil {
		return fail(fmt.Errorf("graph: sizing segmented graph: %w", err))
	}

	// Offsets: prefix sums of the degree counts, written as sections
	// straight from the O(n) arrays (the only arrays the build keeps
	// resident).
	for i := int64(0); i < nn; i++ {
		outDeg[i+1] += outDeg[i]
		inDeg[i+1] += inDeg[i]
	}
	if err := writeInt64Section(tmp, layout, secOutStart, outDeg); err != nil {
		return fail(err)
	}
	if err := writeInt64Section(tmp, layout, secInStart, inDeg); err != nil {
		return fail(err)
	}

	stats := &SegBuildStats{Nodes: nn, Edges: m, FileBytes: layout.fileSize, CSRBytes: layout.CSRBytes()}

	// Pass B: drain the source-sorted stream into the out-CSR sections,
	// assigning model probabilities in that order (the order heap-path
	// AssignWeights sees), and feed the target sorter with the
	// (possibly reweighted) records for pass C.
	if !opt.HasWeights {
		if err := spool.replay(func(r edgeRec) error { return fromSorter.add(r) }); err != nil {
			return fail(err)
		}
	}
	toSorter := newExtSorter(tempDir, bufRecs)
	defer toSorter.close()
	wAdj := newSectionWriter(tmp, layout.sections[secOutAdj])
	wProb := newSectionWriter(tmp, layout.sections[secOutProb])
	var triv *xrand.Rand
	if opt.HasWeights && opt.Weights == Trivalency {
		triv = xrand.New(opt.Seed)
	}
	trivChoices := [3]float32{0.1, 0.01, 0.001}
	err = fromSorter.merge(func(r edgeRec) error {
		p := r.prob
		if opt.HasWeights {
			switch opt.Weights {
			case WeightedCascade:
				// Identical expression to AssignWeights: 1/indeg(head)
				// in float32.
				p = float32(1.0) / float32(inDeg[r.val+1]-inDeg[r.val])
			case UniformWeight:
				p = opt.UniformP
			case Trivalency:
				p = trivChoices[triv.Intn(3)]
			default:
				return fmt.Errorf("graph: unknown weight model %v", opt.Weights)
			}
		}
		wAdj.putUint32(r.val)
		wProb.putFloat32(p)
		var src edgeRec
		if opt.HasWeights {
			src = edgeRec{key: r.val, val: r.key, prob: p}
		} else {
			// File probabilities: the in-CSR mirrors the RAW stream
			// order, so pass C resorts the spool, not this drain.
			return firstErr(wAdj.err, wProb.err)
		}
		return toSorter.add(src)
	})
	if err != nil {
		return fail(err)
	}
	if err := wAdj.finish(); err != nil {
		return fail(err)
	}
	if err := wProb.finish(); err != nil {
		return fail(err)
	}
	stats.SpillBytes += fromSorter.bytesSpilled()
	stats.Runs += len(fromSorter.runs)
	fromSorter.close()

	if !opt.HasWeights {
		if err := spool.replay(func(r edgeRec) error {
			return toSorter.add(edgeRec{key: r.val, val: r.key, prob: r.prob})
		}); err != nil {
			return fail(err)
		}
		spool.close()
	}

	// Pass C: drain the target-sorted stream into the in-CSR sections,
	// accumulating inProbSum in CSR slot order (bit-identical float64
	// order to finalize) and detecting per-node uniform weights.
	wInAdj := newSectionWriter(tmp, layout.sections[secInAdj])
	wInProb := newSectionWriter(tmp, layout.sections[secInProb])
	wSum := newSectionWriter(tmp, layout.sections[secInProbSum])
	uniform := true
	var cur int64 // next node whose inProbSum is unwritten
	var sum float64
	var first float32
	var seen bool
	closeNode := func(upto int64) {
		for cur < upto {
			wSum.putFloat64(sum)
			sum, seen = 0, false
			cur++
		}
	}
	err = toSorter.merge(func(r edgeRec) error {
		v := int64(r.key)
		if v < cur {
			return fmt.Errorf("graph: target sort emitted node %d after %d", v, cur)
		}
		closeNode(v)
		wInAdj.putUint32(r.val)
		wInProb.putFloat32(r.prob)
		sum += float64(r.prob)
		if !seen {
			first, seen = r.prob, true
		} else if r.prob != first {
			uniform = false
		}
		return firstErr(wInAdj.err, wInProb.err)
	})
	if err != nil {
		return fail(err)
	}
	closeNode(nn)
	if err := wInAdj.finish(); err != nil {
		return fail(err)
	}
	if err := wInProb.finish(); err != nil {
		return fail(err)
	}
	if err := wSum.finish(); err != nil {
		return fail(err)
	}
	stats.SpillBytes += toSorter.bytesSpilled()
	stats.Runs += len(toSorter.runs)
	if spool != nil {
		stats.SpillBytes += spool.bytes
	}

	// Header last: a crashed build leaves a file without a valid magic,
	// never a plausible graph. Then fsync + rename, the store publish
	// discipline.
	hdr, err := encodeHeader(layout, uniform, opt.WeightTag)
	if err != nil {
		return fail(err)
	}
	if _, err := tmp.WriteAt(hdr, 0); err != nil {
		return fail(fmt.Errorf("graph: writing segmented header: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("graph: syncing segmented graph: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("graph: closing segmented graph: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("graph: publishing segmented graph %s: %w", path, err)
	}
	return stats, nil
}

// WriteSegmentedFile seals an in-memory graph into the segmented format
// — the heap-path equivalent of BuildSegmented, producing byte-identical
// files for the same edge content. Mutated graphs must be sealed before
// their first ApplyUpdates (the format stores the base CSR only).
func WriteSegmentedFile(path string, g *Graph, weightTag string) error {
	if g.mut != nil && g.mut.version > 0 {
		return fmt.Errorf("graph: cannot seal a mutated graph (version %d) into a segmented file; seal the base before updates", g.mut.version)
	}
	layout := computeLayout(g.n, g.m)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("graph: staging segmented graph: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Truncate(layout.fileSize); err != nil {
		return fail(fmt.Errorf("graph: sizing segmented graph: %w", err))
	}
	if err := writeInt64Section(tmp, layout, secOutStart, g.outStart); err != nil {
		return fail(err)
	}
	if err := writeUint32Section(tmp, layout, secOutAdj, g.outAdj); err != nil {
		return fail(err)
	}
	if err := writeFloat32Section(tmp, layout, secOutProb, g.outProb); err != nil {
		return fail(err)
	}
	if err := writeInt64Section(tmp, layout, secInStart, g.inStart); err != nil {
		return fail(err)
	}
	if err := writeUint32Section(tmp, layout, secInAdj, g.inAdj); err != nil {
		return fail(err)
	}
	if err := writeFloat32Section(tmp, layout, secInProb, g.inProb); err != nil {
		return fail(err)
	}
	if err := writeFloat64Section(tmp, layout, secInProbSum, g.inProbSum); err != nil {
		return fail(err)
	}
	hdr, err := encodeHeader(layout, g.uniformIn, weightTag)
	if err != nil {
		return fail(err)
	}
	if _, err := tmp.WriteAt(hdr, 0); err != nil {
		return fail(fmt.Errorf("graph: writing segmented header: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("graph: syncing segmented graph: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graph: closing segmented graph: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graph: publishing segmented graph %s: %w", path, err)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// sectionWriter streams fixed-width little-endian elements into one
// section at its layout offset, sealing a CRC32C per SegBlockSize block
// and the trailer behind the payload.
type sectionWriter struct {
	f    *os.File
	sec  segSection
	off  int64 // next payload write offset
	buf  []byte
	fill int
	crcs []uint32
	err  error
}

func newSectionWriter(f *os.File, sec segSection) *sectionWriter {
	return &sectionWriter{
		f:    f,
		sec:  sec,
		off:  sec.off,
		buf:  make([]byte, SegBlockSize),
		crcs: make([]uint32, 0, sec.nBlocks()),
	}
}

func (w *sectionWriter) flushBlock() {
	if w.err != nil || w.fill == 0 {
		return
	}
	block := w.buf[:w.fill]
	w.crcs = append(w.crcs, checksum.Sum(block))
	if _, err := w.f.WriteAt(block, w.off); err != nil {
		w.err = fmt.Errorf("graph: writing section at %d: %w", w.off, err)
		return
	}
	w.off += int64(w.fill)
	w.fill = 0
}

func (w *sectionWriter) putUint32(v uint32) {
	if w.fill == SegBlockSize {
		w.flushBlock()
	}
	binary.LittleEndian.PutUint32(w.buf[w.fill:], v)
	w.fill += 4
}

func (w *sectionWriter) putFloat32(v float32) { w.putUint32(math.Float32bits(v)) }

func (w *sectionWriter) putUint64(v uint64) {
	if w.fill == SegBlockSize {
		w.flushBlock()
	}
	binary.LittleEndian.PutUint64(w.buf[w.fill:], v)
	w.fill += 8
}

func (w *sectionWriter) putFloat64(v float64) { w.putUint64(math.Float64bits(v)) }

// finish flushes the tail block, validates the element count against
// the layout, and writes the CRC trailer.
func (w *sectionWriter) finish() error {
	w.flushBlock()
	if w.err != nil {
		return w.err
	}
	if got := w.off - w.sec.off; got != w.sec.payloadBytes() {
		return fmt.Errorf("graph: section payload %d bytes, layout declared %d", got, w.sec.payloadBytes())
	}
	trailer := make([]byte, w.sec.trailerBytes())
	for i, crc := range w.crcs {
		binary.LittleEndian.PutUint32(trailer[i*4:], crc)
	}
	binary.LittleEndian.PutUint32(trailer[len(trailer)-4:], checksum.Sum(trailer[:len(trailer)-4]))
	if _, err := w.f.WriteAt(trailer, w.sec.trailerOff()); err != nil {
		return fmt.Errorf("graph: writing section trailer: %w", err)
	}
	return nil
}

func writeInt64Section(f *os.File, l segLayout, kind int, vals []int64) error {
	w := newSectionWriter(f, l.sections[kind])
	for _, v := range vals {
		w.putUint64(uint64(v))
	}
	if err := w.finish(); err != nil {
		return fmt.Errorf("graph: section %s: %w", secNames[kind], err)
	}
	return nil
}

func writeUint32Section(f *os.File, l segLayout, kind int, vals []uint32) error {
	w := newSectionWriter(f, l.sections[kind])
	for _, v := range vals {
		w.putUint32(v)
	}
	if err := w.finish(); err != nil {
		return fmt.Errorf("graph: section %s: %w", secNames[kind], err)
	}
	return nil
}

func writeFloat32Section(f *os.File, l segLayout, kind int, vals []float32) error {
	w := newSectionWriter(f, l.sections[kind])
	for _, v := range vals {
		w.putFloat32(v)
	}
	if err := w.finish(); err != nil {
		return fmt.Errorf("graph: section %s: %w", secNames[kind], err)
	}
	return nil
}

func writeFloat64Section(f *os.File, l segLayout, kind int, vals []float64) error {
	w := newSectionWriter(f, l.sections[kind])
	for _, v := range vals {
		w.putFloat64(v)
	}
	if err := w.finish(); err != nil {
		return fmt.Errorf("graph: section %s: %w", secNames[kind], err)
	}
	return nil
}

// rawSpool is a plain on-disk record log preserving input order, used
// when file probabilities are kept and the in-CSR therefore needs the
// raw (not source-sorted) stream again.
type rawSpool struct {
	f     *os.File
	w     *bufio.Writer
	bytes int64
	n     int64
}

func newRawSpool(dir string) (*rawSpool, error) {
	f, err := os.CreateTemp(dir, "dimm-spool-*")
	if err != nil {
		return nil, fmt.Errorf("graph: creating edge spool: %w", err)
	}
	return &rawSpool{f: f, w: bufio.NewWriterSize(f, 1<<20)}, nil
}

func (s *rawSpool) add(r edgeRec) error {
	var b [edgeRecBytes]byte
	binary.LittleEndian.PutUint32(b[0:], r.key)
	binary.LittleEndian.PutUint32(b[4:], r.val)
	binary.LittleEndian.PutUint32(b[8:], math.Float32bits(r.prob))
	_, err := s.w.Write(b[:])
	s.bytes += edgeRecBytes
	s.n++
	return err
}

// replay streams the spool back in write order. Callable repeatedly.
func (s *rawSpool) replay(emit func(edgeRec) error) error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(s.f, 1<<20)
	var b [edgeRecBytes]byte
	for i := int64(0); i < s.n; i++ {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return fmt.Errorf("graph: reading edge spool: %w", err)
		}
		r := edgeRec{
			key:  binary.LittleEndian.Uint32(b[0:]),
			val:  binary.LittleEndian.Uint32(b[4:]),
			prob: math.Float32frombits(binary.LittleEndian.Uint32(b[8:])),
		}
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

func (s *rawSpool) close() {
	if s.f != nil {
		name := s.f.Name()
		s.f.Close()
		os.Remove(name)
		s.f = nil
	}
}

// extSorter is a stable external sorter of edgeRecs by key: records
// accumulate in a bounded buffer, each full buffer is stably
// radix-sorted and appended to a run file, and merge drains a run-order
// tie-breaking k-way heap — so equal keys come out in insertion order,
// exactly like the heap Builder's counting sort.
type extSorter struct {
	dir     string
	f       *os.File
	buf     []edgeRec
	aux     []edgeRec
	runs    []sortRun
	spilled int64
	closed  bool
}

type sortRun struct {
	off   int64
	count int64
}

func newExtSorter(dir string, bufRecs int) *extSorter {
	return &extSorter{dir: dir, buf: make([]edgeRec, 0, bufRecs)}
}

func (s *extSorter) add(r edgeRec) error {
	if len(s.buf) == cap(s.buf) {
		if err := s.flushRun(); err != nil {
			return err
		}
	}
	s.buf = append(s.buf, r)
	return nil
}

// radixSortByKey stably sorts buf by key with two 16-bit LSD counting
// passes through aux.
func radixSortByKey(buf, aux []edgeRec) {
	var count [1 << 16]int64
	for pass := 0; pass < 2; pass++ {
		shift := uint(pass * 16)
		for i := range count {
			count[i] = 0
		}
		for _, r := range buf {
			count[(r.key>>shift)&0xffff]++
		}
		var pos int64
		for i := range count {
			c := count[i]
			count[i] = pos
			pos += c
		}
		for _, r := range buf {
			b := (r.key >> shift) & 0xffff
			aux[count[b]] = r
			count[b]++
		}
		buf, aux = aux, buf
	}
	// Two passes: the sorted order ends back in the original buf.
}

func (s *extSorter) flushRun() error {
	if len(s.buf) == 0 {
		return nil
	}
	if s.aux == nil {
		s.aux = make([]edgeRec, cap(s.buf))
	}
	if s.f == nil {
		f, err := os.CreateTemp(s.dir, "dimm-sort-*")
		if err != nil {
			return fmt.Errorf("graph: creating sort run file: %w", err)
		}
		s.f = f
	}
	radixSortByKey(s.buf, s.aux[:len(s.buf)])
	w := bufio.NewWriterSize(io.NewOffsetWriter(s.f, s.spilled), 1<<20)
	var b [edgeRecBytes]byte
	for _, r := range s.buf {
		binary.LittleEndian.PutUint32(b[0:], r.key)
		binary.LittleEndian.PutUint32(b[4:], r.val)
		binary.LittleEndian.PutUint32(b[8:], math.Float32bits(r.prob))
		if _, err := w.Write(b[:]); err != nil {
			return fmt.Errorf("graph: writing sort run: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("graph: flushing sort run: %w", err)
	}
	s.runs = append(s.runs, sortRun{off: s.spilled, count: int64(len(s.buf))})
	s.spilled += int64(len(s.buf)) * edgeRecBytes
	s.buf = s.buf[:0]
	return nil
}

func (s *extSorter) bytesSpilled() int64 { return s.spilled }

// runReader streams one run with a small buffer.
type runReader struct {
	br   *bufio.Reader
	left int64
	head edgeRec
	idx  int
}

func (r *runReader) next() (bool, error) {
	if r.left == 0 {
		return false, nil
	}
	var b [edgeRecBytes]byte
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		return false, fmt.Errorf("graph: reading sort run: %w", err)
	}
	r.head = edgeRec{
		key:  binary.LittleEndian.Uint32(b[0:]),
		val:  binary.LittleEndian.Uint32(b[4:]),
		prob: math.Float32frombits(binary.LittleEndian.Uint32(b[8:])),
	}
	r.left--
	return true, nil
}

// mergeHeap orders run readers by (head key, run index): the run index
// tie-break plus in-run stability makes the global merge stable.
type mergeHeap []*runReader

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].head.key != h[j].head.key {
		return h[i].head.key < h[j].head.key
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*runReader)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// merge flushes the final run and drains all runs in stable key order.
// The sorter is spent afterwards (close releases the run file).
func (s *extSorter) merge(emit func(edgeRec) error) error {
	// Single-run fast path: everything fit in the buffer.
	if s.f == nil {
		if s.aux == nil {
			s.aux = make([]edgeRec, cap(s.buf))
		}
		radixSortByKey(s.buf, s.aux[:len(s.buf)])
		for _, r := range s.buf {
			if err := emit(r); err != nil {
				return err
			}
		}
		s.buf = s.buf[:0]
		return nil
	}
	if err := s.flushRun(); err != nil {
		return err
	}
	h := make(mergeHeap, 0, len(s.runs))
	for i, run := range s.runs {
		rr := &runReader{
			br:   bufio.NewReaderSize(io.NewSectionReader(s.f, run.off, run.count*edgeRecBytes), 256<<10),
			left: run.count,
			idx:  i,
		}
		ok, err := rr.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, rr)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		rr := h[0]
		if err := emit(rr.head); err != nil {
			return err
		}
		ok, err := rr.next()
		if err != nil {
			return err
		}
		if ok {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

func (s *extSorter) close() {
	if s.closed {
		return
	}
	s.closed = true
	s.buf, s.aux = nil, nil
	if s.f != nil {
		name := s.f.Name()
		s.f.Close()
		os.Remove(name)
		s.f = nil
	}
}
