package graph

import "sort"

// Stats summarizes a graph for dataset validation (Table III reporting
// and sanity checks on generated stand-ins).
type Stats struct {
	Nodes        int
	Edges        int64
	AvgDegree    float64
	MaxOutDegree int
	MaxInDegree  int
	// Degree percentiles over out-degrees (p50, p90, p99).
	P50, P90, P99 int
	// Isolated counts nodes with neither in- nor out-edges.
	Isolated int
	// Symmetric reports whether every edge has a reverse counterpart
	// (undirected graphs stored as edge pairs).
	Symmetric bool
}

// ComputeStats scans the graph once (plus a sort over the degree array).
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{
		Nodes:     n,
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = g.OutDegree(uint32(v))
		if out[v] > s.MaxOutDegree {
			s.MaxOutDegree = out[v]
		}
		in := g.InDegree(uint32(v))
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out[v] == 0 && in == 0 {
			s.Isolated++
		}
	}
	sort.Ints(out)
	pick := func(p float64) int {
		if n == 0 {
			return 0
		}
		i := int(p * float64(n-1))
		return out[i]
	}
	s.P50, s.P90, s.P99 = pick(0.50), pick(0.90), pick(0.99)
	s.Symmetric = isSymmetric(g)
	return s
}

// WeaklyConnectedComponents returns the number of weakly connected
// components and the size of the largest one (directions ignored).
// Social-network stand-ins should be dominated by one giant component,
// which this lets the dataset tests assert.
func WeaklyConnectedComponents(g *Graph) (count, largest int) {
	n := g.NumNodes()
	seen := make([]bool, n)
	stack := make([]uint32, 0, 1024)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		count++
		size := 0
		seen[start] = true
		stack = append(stack[:0], uint32(start))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			adj, _ := g.OutNeighbors(u)
			for _, v := range adj {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
			radj, _ := g.InNeighbors(u)
			for _, v := range radj {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// isSymmetric checks whether the edge multiset is closed under reversal.
func isSymmetric(g *Graph) bool {
	type pair struct{ u, v uint32 }
	counts := make(map[pair]int, g.NumEdges())
	g.Edges(func(u, v uint32, _ float32) {
		counts[pair{u, v}]++
	})
	for p, c := range counts {
		if counts[pair{p.v, p.u}] != c {
			return false
		}
	}
	return true
}
