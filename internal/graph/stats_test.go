package graph

import "testing"

func TestComputeStats(t *testing.T) {
	b := NewBuilder(5)
	// 0 -> 1, 0 -> 2, 1 -> 2; node 3 isolated; 4 isolated.
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	_ = b.AddEdge(1, 2, 1)
	g := b.Build()
	s := ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 3 {
		t.Fatalf("dimensions wrong: %+v", s)
	}
	if s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Fatalf("max degrees wrong: %+v", s)
	}
	if s.Isolated != 2 {
		t.Fatalf("isolated = %d, want 2", s.Isolated)
	}
	if s.Symmetric {
		t.Fatal("directed triangle reported symmetric")
	}
	if s.P99 < s.P90 || s.P90 < s.P50 {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	// Component {0,1,2} (directed chain) and {3,4}; node 5 isolated.
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 1, 1)
	_ = b.AddEdge(3, 4, 1)
	g := b.Build()
	count, largest := WeaklyConnectedComponents(g)
	if count != 3 || largest != 3 {
		t.Fatalf("got %d components, largest %d; want 3 and 3", count, largest)
	}
}

func TestGiantComponentInStandIns(t *testing.T) {
	g, err := GenPreferential(GenConfig{Nodes: 2000, AvgDegree: 8, Seed: 5, UniformAttach: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	count, largest := WeaklyConnectedComponents(g)
	if largest < g.NumNodes()*9/10 {
		t.Fatalf("giant component only %d of %d nodes (%d components)", largest, g.NumNodes(), count)
	}
}

func TestComputeStatsSymmetric(t *testing.T) {
	g, err := GenPreferential(GenConfig{Nodes: 200, AvgDegree: 6, Undirected: true, Seed: 3, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if !s.Symmetric {
		t.Fatal("undirected generator output not symmetric")
	}
	if s.AvgDegree <= 0 {
		t.Fatal("avg degree missing")
	}
}
