package graph

import (
	"fmt"

	"dimm/internal/xrand"
)

// WeightModel selects how edge propagation probabilities are assigned when
// a graph is loaded or generated from an unweighted edge list.
type WeightModel int

const (
	// WeightedCascade sets p(u,v) = 1/indeg(v), the setting used throughout
	// the paper's evaluation ("the reciprocal of v's in-degree"). It always
	// satisfies the LT precondition (incoming sums are exactly 1) and makes
	// every node's incoming probabilities uniform, enabling subset sampling.
	WeightedCascade WeightModel = iota
	// UniformWeight sets every edge to a constant p (see WithUniformProb).
	UniformWeight
	// Trivalency draws each edge probability uniformly from {0.1, 0.01, 0.001},
	// a classic benchmark setting from Chen et al. (KDD'10). Note that
	// trivalency graphs may violate the LT precondition on high in-degree
	// nodes; ValidateLT will reject them for LT runs.
	Trivalency
)

// String implements fmt.Stringer.
func (w WeightModel) String() string {
	switch w {
	case WeightedCascade:
		return "wc"
	case UniformWeight:
		return "uniform"
	case Trivalency:
		return "trivalency"
	default:
		return fmt.Sprintf("WeightModel(%d)", int(w))
	}
}

// ParseWeightModel converts a CLI string to a WeightModel.
func ParseWeightModel(s string) (WeightModel, error) {
	switch s {
	case "wc", "weighted-cascade":
		return WeightedCascade, nil
	case "uniform":
		return UniformWeight, nil
	case "trivalency", "tri":
		return Trivalency, nil
	default:
		return 0, fmt.Errorf("graph: unknown weight model %q (want wc|uniform|trivalency)", s)
	}
}

// AssignWeights builds a new graph with the same topology as g and edge
// probabilities reassigned per the model. uniformP is used only by
// UniformWeight; seed only by Trivalency.
func AssignWeights(g *Graph, model WeightModel, uniformP float32, seed uint64) (*Graph, error) {
	b := NewBuilderHint(g.NumNodes(), int(g.NumEdges()))
	var err error
	switch model {
	case WeightedCascade:
		// Probability depends on the head's in-degree, which is already
		// available from the existing CSR.
		g.Edges(func(from, to uint32, _ float32) {
			if err != nil {
				return
			}
			p := float32(1.0) / float32(g.InDegree(to))
			err = b.AddEdge(from, to, p)
		})
	case UniformWeight:
		if uniformP <= 0 || uniformP > 1 {
			return nil, fmt.Errorf("graph: uniform probability %v outside (0,1]", uniformP)
		}
		g.Edges(func(from, to uint32, _ float32) {
			if err != nil {
				return
			}
			err = b.AddEdge(from, to, uniformP)
		})
	case Trivalency:
		r := xrand.New(seed)
		choices := [3]float32{0.1, 0.01, 0.001}
		g.Edges(func(from, to uint32, _ float32) {
			if err != nil {
				return
			}
			err = b.AddEdge(from, to, choices[r.Intn(3)])
		})
	default:
		return nil, fmt.Errorf("graph: unknown weight model %v", model)
	}
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}
