package imm

import (
	"errors"
	"strings"
	"testing"

	"dimm/internal/coverage"
)

// failingEngine injects errors at configurable points so Run's error
// propagation is testable without a broken cluster.
type failingEngine struct {
	failGenerateAt int // fail the Nth Generate call (1-based); 0 = never
	failSelectAt   int
	genCalls       int
	selCalls       int
	count          int64
}

var errInjected = errors.New("injected fault")

func (e *failingEngine) Generate(target int64) error {
	e.genCalls++
	if e.failGenerateAt > 0 && e.genCalls >= e.failGenerateAt {
		return errInjected
	}
	if target > e.count {
		e.count = target
	}
	return nil
}

func (e *failingEngine) Count() int64 { return e.count }

func (e *failingEngine) SelectK(k int) (*coverage.Result, error) {
	e.selCalls++
	if e.failSelectAt > 0 && e.selCalls >= e.failSelectAt {
		return nil, errInjected
	}
	// A coverage large enough to trip the phase-1 stopping rule at once.
	seeds := make([]uint32, k)
	for i := range seeds {
		seeds[i] = uint32(i)
	}
	return &coverage.Result{Seeds: seeds, Coverage: e.count}, nil
}

func mustParams(t *testing.T) Params {
	t.Helper()
	p, err := ComputeParams(1024, 3, 0.3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunPropagatesGenerateError(t *testing.T) {
	e := &failingEngine{failGenerateAt: 1}
	_, err := Run(e, mustParams(t))
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("generate fault not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "sampling") {
		t.Fatalf("error lacks phase context: %v", err)
	}
}

func TestRunPropagatesSelectError(t *testing.T) {
	e := &failingEngine{failSelectAt: 1}
	_, err := Run(e, mustParams(t))
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("select fault not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "selection") {
		t.Fatalf("error lacks phase context: %v", err)
	}
}

func TestRunPropagatesFinalPhaseErrors(t *testing.T) {
	// Fail at the second Generate (the phase-2 top-up).
	e := &failingEngine{failGenerateAt: 2}
	_, err := Run(e, mustParams(t))
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("final-phase generate fault not propagated: %v", err)
	}
	// Fail at the second SelectK (the final selection).
	e2 := &failingEngine{failSelectAt: 2}
	_, err = Run(e2, mustParams(t))
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("final selection fault not propagated: %v", err)
	}
}

func TestRunStopsEarlyWithFullCoverage(t *testing.T) {
	// The stub covers every RR set, so the phase-1 bound trips in the
	// first iteration and the run finishes with one round.
	e := &failingEngine{}
	res, err := Run(e, mustParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("full-coverage stub took %d rounds, want 1", res.Rounds)
	}
	if res.FracCovered != 1 {
		t.Fatalf("covered fraction %v, want 1", res.FracCovered)
	}
}
