package imm

import (
	"fmt"
	"time"

	"dimm/internal/coverage"
)

// Engine abstracts where the RR sets live and how the greedy runs over
// them. The sequential baseline (LocalEngine) keeps everything in one
// process; internal/core provides a cluster-backed engine, turning this
// same driver into DIIMM (the only difference the paper claims between
// IMM and DIIMM is exactly this substitution).
type Engine interface {
	// Generate adds RR sets so the engine holds at least target in total.
	// Engines keep everything previously generated (IMM reuses samples
	// across rounds).
	Generate(target int64) error
	// Count returns the number of RR sets currently held.
	Count() int64
	// SelectK runs the (1-1/e) greedy over all current RR sets.
	SelectK(k int) (*coverage.Result, error)
}

// Result is the outcome of a sampling/selection run.
type Result struct {
	Seeds        []uint32
	Coverage     int64   // RR sets covered by Seeds
	Theta        int64   // total RR sets generated
	FracCovered  float64 // F_R(S*) of the final selection
	EstSpread    float64 // n · F_R(S*)
	LowerBound   float64 // the LB of OPT found in phase 1
	Rounds       int     // phase-1 iterations executed
	SelectTime   time.Duration
	TotalElapsed time.Duration
}

// Run executes Algorithm 2 over the engine: phase 1 doubles the sample
// size until a statistically safe lower bound of OPT emerges, phase 2
// tops the samples up to θ = λ*/LB and selects the final seed set.
func Run(e Engine, p Params) (*Result, error) {
	start := time.Now()
	res := &Result{LowerBound: 1}
	n := float64(p.N)

	for t := 1; t <= p.MaxRounds(); t++ {
		res.Rounds = t
		x := n / pow2(t)
		if err := e.Generate(p.ThetaAt(t)); err != nil {
			return nil, fmt.Errorf("imm: sampling round %d: %w", t, err)
		}
		selStart := time.Now()
		sel, err := e.SelectK(p.K)
		if err != nil {
			return nil, fmt.Errorf("imm: selection round %d: %w", t, err)
		}
		res.SelectTime += time.Since(selStart)
		frac := float64(sel.Coverage) / float64(e.Count())
		if n*frac >= (1+p.EpsPrime)*x {
			res.LowerBound = n * frac / (1 + p.EpsPrime)
			break
		}
	}

	if err := e.Generate(p.FinalTheta(res.LowerBound)); err != nil {
		return nil, fmt.Errorf("imm: final sampling: %w", err)
	}
	selStart := time.Now()
	sel, err := e.SelectK(p.K)
	if err != nil {
		return nil, fmt.Errorf("imm: final selection: %w", err)
	}
	res.SelectTime += time.Since(selStart)
	res.Seeds = sel.Seeds
	res.Coverage = sel.Coverage
	res.Theta = e.Count()
	res.FracCovered = float64(sel.Coverage) / float64(res.Theta)
	res.EstSpread = n * res.FracCovered
	res.TotalElapsed = time.Since(start)
	return res, nil
}

func pow2(t int) float64 {
	return float64(int64(1) << uint(t))
}
