package imm

import (
	"math"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func TestLogBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 0},
		{5, 5, 0},
		{5, 2, math.Log(10)},
		{10, 3, math.Log(120)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogBinom(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("LogBinom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogBinom(3, 5), -1) {
		t.Fatal("LogBinom(3,5) should be -Inf")
	}
	// Symmetry.
	if math.Abs(LogBinom(100, 30)-LogBinom(100, 70)) > 1e-9 {
		t.Fatal("LogBinom not symmetric")
	}
}

func TestComputeParamsValidation(t *testing.T) {
	if _, err := ComputeParams(1, 1, 0.1, 0.1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ComputeParams(100, 0, 0.1, 0.1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ComputeParams(100, 101, 0.1, 0.1); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := ComputeParams(100, 5, 0, 0.1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := ComputeParams(100, 5, 1.5, 0.1); err == nil {
		t.Fatal("eps>1 accepted")
	}
	if _, err := ComputeParams(100, 5, 0.1, 0); err == nil {
		t.Fatal("delta=0 accepted")
	}
}

// TestDeltaPrimeFixedPoint checks equation (7): ⌈λ*⌉ · δ′ = δ.
func TestDeltaPrimeFixedPoint(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		eps  float64
	}{{1000, 10, 0.3}, {10000, 50, 0.1}, {100000, 50, 0.5}} {
		delta := 1.0 / float64(tc.n)
		p, err := ComputeParams(tc.n, tc.k, tc.eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		got := math.Ceil(p.LambdaStar) * p.DeltaPrime
		if math.Abs(got-delta)/delta > 1e-6 {
			t.Fatalf("n=%d k=%d: ⌈λ*⌉·δ′ = %g, want δ = %g", tc.n, tc.k, got, delta)
		}
		// Chen's fix always makes δ′ strictly smaller than δ.
		if p.DeltaPrime >= delta {
			t.Fatalf("δ′ = %g not below δ = %g", p.DeltaPrime, delta)
		}
	}
}

func TestParamsMonotonicity(t *testing.T) {
	// Halving ε must increase both λ′ and λ* (roughly quadruple them).
	a, err := ComputeParams(10000, 50, 0.2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeParams(10000, 50, 0.1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if b.LambdaStar <= a.LambdaStar || b.LambdaP <= a.LambdaP {
		t.Fatal("sample sizes not monotone in 1/ε")
	}
	ratio := b.LambdaStar / a.LambdaStar
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("λ* scaled by %v when ε halved, expected ~4", ratio)
	}
}

func TestThetaSchedule(t *testing.T) {
	p, err := ComputeParams(1024, 5, 0.3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// θ_t doubles every round.
	prev := p.ThetaAt(1)
	if prev <= 0 {
		t.Fatal("θ_1 not positive")
	}
	for t2 := 2; t2 <= p.MaxRounds(); t2++ {
		cur := p.ThetaAt(t2)
		ratio := float64(cur) / float64(prev)
		if ratio < 1.9 || ratio > 2.1 {
			t.Fatalf("θ_%d/θ_%d = %v, want ~2", t2, t2-1, ratio)
		}
		prev = cur
	}
	if p.MaxRounds() != 9 {
		t.Fatalf("MaxRounds for n=1024: %d, want 9", p.MaxRounds())
	}
	// FinalTheta decreases in LB and never divides by less than 1.
	if p.FinalTheta(100) >= p.FinalTheta(10) {
		t.Fatal("FinalTheta not decreasing in LB")
	}
	if p.FinalTheta(0.5) != p.FinalTheta(1) {
		t.Fatal("FinalTheta must clamp LB below 1")
	}
}

// fig1 is the paper's running example graph.
func fig1(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, Prob: 1.0}, {From: 0, To: 2, Prob: 1.0},
		{From: 0, To: 3, Prob: 0.4}, {From: 1, To: 3, Prob: 0.3}, {From: 2, To: 3, Prob: 0.2},
	} {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestIMMFindsOptimalSeedOnFig1: node v1 maximizes spread for k=1 on the
// example graph; IMM with moderate ε must select it.
func TestIMMFindsOptimalSeedOnFig1(t *testing.T) {
	g := fig1(t)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		res, _, err := RunIMM(g, model, 1, 0.3, 0.05, false, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
			t.Fatalf("%v: IMM picked %v, want {v1}", model, res.Seeds)
		}
		if res.Theta <= 0 || res.FracCovered <= 0 || res.FracCovered > 1 {
			t.Fatalf("%v: implausible result %+v", model, res)
		}
	}
}

// TestIMMApproximationGuarantee: on a brute-forceable graph, the spread
// of IMM's solution must be >= (1 - 1/e - ε)·OPT (checked against exact
// spreads; the guarantee is probabilistic with δ = 0.05, and the fixed
// seed makes the test deterministic).
func TestIMMApproximationGuarantee(t *testing.T) {
	g, err := graph.GenErdosRenyi(graph.GenConfig{Nodes: 12, AvgDegree: 1.5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	const eps = 0.2
	res, _, err := RunIMM(wc, diffusion.IC, k, eps, 0.05, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := diffusion.ExactSpread(wc, res.Seeds, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force OPT over all pairs.
	best := 0.0
	n := wc.NumNodes()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			s, err := diffusion.ExactSpread(wc, []uint32{uint32(a), uint32(b)}, diffusion.IC)
			if err != nil {
				t.Fatal(err)
			}
			if s > best {
				best = s
			}
		}
	}
	bound := (1 - 1/math.E - eps) * best
	if got < bound {
		t.Fatalf("IMM spread %v below guarantee %v (OPT %v)", got, bound, best)
	}
}

// TestSubsetEngineAgrees: sequential SUBSIM-style sampling must select
// seeds of the same quality as plain IMM (same guarantee, faster
// generation).
func TestSubsetEngineAgrees(t *testing.T) {
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 400, AvgDegree: 8, Seed: 11, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := RunIMM(wc, diffusion.IC, 5, 0.4, 0.05, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := RunIMM(wc, diffusion.IC, 5, 0.4, 0.05, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Different samplers ⇒ different seeds possible; estimated spreads
	// must agree within the ε-band.
	if math.Abs(plain.EstSpread-sub.EstSpread) > 0.25*math.Max(plain.EstSpread, sub.EstSpread) {
		t.Fatalf("plain %v vs subset %v estimated spread", plain.EstSpread, sub.EstSpread)
	}
}

func TestRunIMMDeterministic(t *testing.T) {
	g, _ := graph.GenPreferential(graph.GenConfig{Nodes: 200, AvgDegree: 6, Seed: 5, UniformAttach: 0.2})
	wc, _ := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	a, _, err := RunIMM(wc, diffusion.LT, 3, 0.4, 0.1, false, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunIMM(wc, diffusion.LT, 3, 0.4, 0.1, false, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta != b.Theta || a.Coverage != b.Coverage {
		t.Fatal("same seed produced different runs")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("seed sets differ")
		}
	}
}

func TestLocalEngineGenerateIdempotent(t *testing.T) {
	g := fig1(t)
	e, err := NewLocalEngine(g, diffusion.IC, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Generate(100); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 100 {
		t.Fatalf("count = %d", e.Count())
	}
	// Asking for fewer must not shrink or regenerate.
	if err := e.Generate(50); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 100 {
		t.Fatalf("Generate(50) changed count to %d", e.Count())
	}
	if err := e.Generate(150); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 150 {
		t.Fatalf("top-up failed: %d", e.Count())
	}
}
