package imm

import (
	"fmt"
	"time"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
)

// LocalEngine is the single-machine engine: the vanilla IMM baseline the
// paper compares DIIMM against (ℓ = 1 in Figs. 5–9), and — with Subset
// enabled — the sequential SUBSIM baseline of Fig. 7.
type LocalEngine struct {
	g       *graph.Graph
	sampler *rrset.Sampler
	coll    *rrset.Collection

	// GenTime accumulates pure RR-generation wall time, mirroring the
	// breakdown that the cluster metrics report.
	GenTime time.Duration
}

// NewLocalEngine builds a sequential engine over g.
func NewLocalEngine(g *graph.Graph, model diffusion.Model, subset bool, seed uint64) (*LocalEngine, error) {
	s, err := rrset.NewSampler(g, model, seed, subset)
	if err != nil {
		return nil, err
	}
	return &LocalEngine{
		g:       g,
		sampler: s,
		coll:    rrset.NewCollection(1 << 16),
	}, nil
}

// Generate implements Engine.
func (e *LocalEngine) Generate(target int64) error {
	add := target - int64(e.coll.Count())
	if add <= 0 {
		return nil
	}
	start := time.Now()
	e.sampler.SampleManyInto(e.coll, add)
	e.GenTime += time.Since(start)
	return nil
}

// Count implements Engine.
func (e *LocalEngine) Count() int64 { return int64(e.coll.Count()) }

// SelectK implements Engine: exact greedy over all current RR sets.
func (e *LocalEngine) SelectK(k int) (*coverage.Result, error) {
	idx, err := rrset.BuildIndex(e.coll, e.g.NumNodes())
	if err != nil {
		return nil, err
	}
	o, err := coverage.NewLocalOracle(e.coll, idx, e.g.NumNodes())
	if err != nil {
		return nil, err
	}
	return coverage.RunGreedy(o, k)
}

// Collection exposes the RR sets for statistics (Table IV).
func (e *LocalEngine) Collection() *rrset.Collection { return e.coll }

// RunIMM is the sequential convenience entry point: vanilla IMM when
// subset is false, sequential SUBSIM-style sampling when true.
func RunIMM(g *graph.Graph, model diffusion.Model, k int, eps, delta float64, subset bool, seed uint64) (*Result, *LocalEngine, error) {
	p, err := ComputeParams(g.NumNodes(), k, eps, delta)
	if err != nil {
		return nil, nil, err
	}
	e, err := NewLocalEngine(g, model, subset, seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(e, p)
	if err != nil {
		return nil, nil, fmt.Errorf("imm: %w", err)
	}
	return res, e, nil
}
