package imm

import (
	"fmt"
	"math"
	"time"

	"dimm/internal/coverage"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

// This file implements the OPIM-C framework of Tang, Tang, Xiao and Yuan
// (SIGMOD'18), the online-processing alternative to IMM that the
// reproduced paper lists among the state-of-the-art frameworks its
// distributed techniques plug into (§III-C). OPIM-C keeps two independent
// RR-set collections: R1 drives the greedy selection, R2 provides an
// unbiased lower bound on the selected set's spread; an upper bound on
// OPT follows from the greedy's (1−1/e) guarantee on R1. Sampling stops
// as soon as the certified ratio reaches 1 − 1/e − ε, which on easy
// instances happens orders of magnitude before IMM's worst-case θ.

// DualEngine abstracts the two-collection state of OPIM-C. The local
// implementation keeps both collections in one process; internal/core
// backs each collection with its own worker cluster, which is exactly
// the paper's "distributed OPIM-C" claim.
type DualEngine interface {
	// Generate grows collection R1 and R2 each to the target size.
	Generate(target int64) error
	// Count returns the current size of R1 (R2 is kept equal).
	Count() int64
	// SelectK runs the (1−1/e) greedy over R1.
	SelectK(k int) (*coverage.Result, error)
	// CoverageOn2 counts RR sets of R2 covered by the seed set.
	CoverageOn2(seeds []uint32) (int64, error)
}

// OPIMResult reports an OPIM-C run.
type OPIMResult struct {
	Seeds       []uint32
	Theta       int64   // final size of each collection
	EstSpread   float64 // lower-bound estimate from R2 (conservative)
	SpreadLower float64 // certified lower bound of σ(S)
	OptUpper    float64 // certified upper bound of OPT
	Ratio       float64 // SpreadLower / OptUpper at stop time
	Rounds      int
	Elapsed     time.Duration
}

// OPIMPlan is the sampling schedule of an OPIM-C run: the initial and
// maximum collection sizes, the doubling-round budget, and the per-round
// Chernoff tail mass the certificate charges against δ. A long-lived
// query service sizes its resident sample from the same plan (see
// internal/serve), which is why the planning math lives apart from the
// stopping-rule driver.
type OPIMPlan struct {
	Theta0   int64   // initial collection size
	ThetaMax int64   // IMM's worst-case size with OPT lower-bounded by k
	IMax     int     // doubling-round budget
	A        float64 // per-certificate tail mass ln(3·i_max/δ)
}

// PlanOPIMC derives the OPIM-C sampling schedule for a
// (1 − 1/e − ε)-approximation with probability at least 1 − δ.
func PlanOPIMC(n, k int, eps, delta float64) (OPIMPlan, error) {
	if n < 2 || k < 1 || k > n {
		return OPIMPlan{}, fmt.Errorf("imm: invalid OPIM-C instance n=%d k=%d", n, k)
	}
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return OPIMPlan{}, fmt.Errorf("imm: eps=%v delta=%v outside (0,1)", eps, delta)
	}
	// θ_max is IMM's worst-case sample size with OPT lower-bounded by k;
	// OPIM-C's budget split gives each collection half the failure
	// probability mass across i_max doubling rounds.
	alpha := math.Sqrt(math.Log(6 / delta))
	beta := math.Sqrt((1 - 1/math.E) * (LogBinom(n, k) + math.Log(6/delta)))
	thetaMax := int64(math.Ceil(2 * float64(n) * math.Pow((1-1/math.E)*alpha+beta, 2) /
		(eps * eps * float64(k))))
	theta0 := int64(math.Ceil(float64(thetaMax) * eps * eps * float64(k) / float64(n)))
	if theta0 < 16 {
		theta0 = 16
	}
	iMax := int(math.Ceil(math.Log2(float64(thetaMax)/float64(theta0)))) + 1
	if iMax < 1 {
		iMax = 1
	}
	return OPIMPlan{
		Theta0:   theta0,
		ThetaMax: thetaMax,
		IMax:     iMax,
		A:        math.Log(3 * float64(iMax) / delta),
	}, nil
}

// Certificate is the OPIM-C online bound for one seed set evaluated
// against a pair of independent RR-set collections of size theta.
type Certificate struct {
	SpreadLower float64 // certified lower bound of σ(S)
	OptUpper    float64 // certified upper bound of OPT
	Ratio       float64 // SpreadLower / OptUpper
}

// CertifyOPIM computes the online approximation certificate for a seed
// set whose greedy coverage on R1 is cov1 and whose coverage on the
// independent collection R2 is cov2, both of size theta over an n-node
// graph, with per-certificate tail mass a.
func CertifyOPIM(n int, theta, cov1, cov2 int64, a float64) Certificate {
	if theta <= 0 {
		return Certificate{}
	}
	cnt := float64(theta)
	// Lower bound on σ(S) from its coverage on the independent R2
	// (Chernoff lower-tail inversion, OPIM Lemma 4.2 shape).
	l := float64(cov2)
	sigmaLower := (math.Pow(math.Sqrt(l+2*a/9)-math.Sqrt(a/2), 2) - a/18) * float64(n) / cnt
	if sigmaLower < 0 {
		sigmaLower = 0
	}
	// Upper bound on OPT from the greedy's coverage on R1: the greedy
	// covers at least (1−1/e)·Λ1(S°), so Λ1(S°) ≤ Λ1(S)/(1−1/e); add
	// the upper-tail slack (OPIM Lemma 4.3 shape).
	u := float64(cov1) / (1 - 1/math.E)
	optUpper := math.Pow(math.Sqrt(u+a/2)+math.Sqrt(a/2), 2) * float64(n) / cnt
	c := Certificate{SpreadLower: sigmaLower, OptUpper: optUpper}
	if optUpper > 0 {
		c.Ratio = sigmaLower / optUpper
	}
	return c
}

// RunOPIMC executes the OPIM-C stopping rule over the engine for a
// (1 − 1/e − ε)-approximation with probability at least 1 − δ.
func RunOPIMC(e DualEngine, n, k int, eps, delta float64) (*OPIMResult, error) {
	plan, err := PlanOPIMC(n, k, eps, delta)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	target := 1 - 1/math.E - eps

	res := &OPIMResult{}
	theta := plan.Theta0
	for round := 1; ; round++ {
		res.Rounds = round
		if err := e.Generate(theta); err != nil {
			return nil, fmt.Errorf("imm: opim-c sampling round %d: %w", round, err)
		}
		sel, err := e.SelectK(k)
		if err != nil {
			return nil, fmt.Errorf("imm: opim-c selection round %d: %w", round, err)
		}
		cov2, err := e.CoverageOn2(sel.Seeds)
		if err != nil {
			return nil, fmt.Errorf("imm: opim-c evaluation round %d: %w", round, err)
		}
		cert := CertifyOPIM(n, e.Count(), sel.Coverage, cov2, plan.A)
		if cert.Ratio >= target || theta >= plan.ThetaMax {
			res.Seeds = sel.Seeds
			res.Theta = e.Count()
			res.SpreadLower = cert.SpreadLower
			res.OptUpper = cert.OptUpper
			res.Ratio = cert.Ratio
			res.EstSpread = float64(n) * float64(cov2) / float64(e.Count())
			res.Elapsed = time.Since(start)
			return res, nil
		}
		theta *= 2
		if theta > plan.ThetaMax {
			theta = plan.ThetaMax
		}
	}
}

// LocalDualEngine keeps both OPIM-C collections in one process.
type LocalDualEngine struct {
	r1 *LocalEngine
	r2 *LocalEngine
	n  int
}

// NewLocalDualEngine builds the sequential OPIM-C engine; the two
// collections sample from independent streams derived from seed.
func NewLocalDualEngine(g *graph.Graph, model diffusion.Model, subset bool, seed uint64) (*LocalDualEngine, error) {
	r1, err := NewLocalEngine(g, model, subset, seed^0x0111)
	if err != nil {
		return nil, err
	}
	r2, err := NewLocalEngine(g, model, subset, seed^0x0222)
	if err != nil {
		return nil, err
	}
	return &LocalDualEngine{r1: r1, r2: r2, n: g.NumNodes()}, nil
}

// Generate implements DualEngine.
func (e *LocalDualEngine) Generate(target int64) error {
	if err := e.r1.Generate(target); err != nil {
		return err
	}
	return e.r2.Generate(target)
}

// Count implements DualEngine.
func (e *LocalDualEngine) Count() int64 { return e.r1.Count() }

// SelectK implements DualEngine.
func (e *LocalDualEngine) SelectK(k int) (*coverage.Result, error) { return e.r1.SelectK(k) }

// CoverageOn2 implements DualEngine.
func (e *LocalDualEngine) CoverageOn2(seeds []uint32) (int64, error) {
	return coverage.CoverageOf(e.r2.Collection(), seeds), nil
}
