package imm

import (
	"math"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func wcGraph(t testing.TB, nodes int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: nodes, AvgDegree: 6, Seed: seed, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return wc
}

func TestOPIMCValidation(t *testing.T) {
	g := wcGraph(t, 50, 1)
	e, err := NewLocalDualEngine(g, diffusion.IC, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOPIMC(e, 50, 0, 0.2, 0.1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := RunOPIMC(e, 50, 5, 0, 0.1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := RunOPIMC(e, 50, 5, 0.2, 1); err == nil {
		t.Fatal("delta=1 accepted")
	}
}

func TestOPIMCBasicRun(t *testing.T) {
	g := wcGraph(t, 500, 3)
	e, err := NewLocalDualEngine(g, diffusion.IC, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOPIMC(e, g.NumNodes(), 10, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	if res.Theta <= 0 || res.Rounds < 1 {
		t.Fatalf("implausible run: %+v", res)
	}
	// The certification must be internally consistent.
	if res.SpreadLower > res.OptUpper {
		t.Fatalf("lower bound %v above OPT upper bound %v", res.SpreadLower, res.OptUpper)
	}
	if res.Ratio < 1-1/math.E-0.3-1e-9 {
		t.Fatalf("stopped below the target ratio: %v", res.Ratio)
	}
}

// TestOPIMCCertifiedBoundsHold: the certified bounds must bracket the
// true spread on a graph where σ can be computed exactly.
func TestOPIMCCertifiedBoundsHold(t *testing.T) {
	g, err := graph.GenErdosRenyi(graph.GenConfig{Nodes: 12, AvgDegree: 1.5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewLocalDualEngine(wc, diffusion.IC, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOPIMC(e, wc.NumNodes(), 2, 0.2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := diffusion.ExactSpread(wc, res.Seeds, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpreadLower > sigma+1e-9 {
		t.Fatalf("certified lower bound %v exceeds true spread %v", res.SpreadLower, sigma)
	}
	// OPT upper bound must indeed be above OPT (brute-force all pairs).
	best := 0.0
	for a := 0; a < wc.NumNodes(); a++ {
		for b := a + 1; b < wc.NumNodes(); b++ {
			s, err := diffusion.ExactSpread(wc, []uint32{uint32(a), uint32(b)}, diffusion.IC)
			if err != nil {
				t.Fatal(err)
			}
			if s > best {
				best = s
			}
		}
	}
	if res.OptUpper < best-1e-9 {
		t.Fatalf("certified OPT upper bound %v below true OPT %v", res.OptUpper, best)
	}
	// Approximation guarantee.
	if sigma < (1-1/math.E-0.2)*best {
		t.Fatalf("OPIM-C spread %v below guarantee of OPT %v", sigma, best)
	}
}

// TestOPIMCStopsEarlierThanIMM: on an easy instance the adaptive stopping
// rule should certify with fewer RR sets than IMM's worst-case θ.
func TestOPIMCStopsEarlierThanIMM(t *testing.T) {
	g := wcGraph(t, 1000, 9)
	const k, eps, delta = 5, 0.3, 0.01
	e, err := NewLocalDualEngine(g, diffusion.IC, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	opim, err := RunOPIMC(e, g.NumNodes(), k, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	immRes, _, err := RunIMM(g, diffusion.IC, k, eps, delta, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	// OPIM-C keeps two collections, so compare 2·θ_opim against θ_imm.
	if 2*opim.Theta >= immRes.Theta {
		t.Logf("note: OPIM-C used %d×2 RR sets vs IMM's %d on this instance", opim.Theta, immRes.Theta)
	} else {
		t.Logf("OPIM-C certified with %d×2 RR sets vs IMM's %d (%.1fx fewer)",
			opim.Theta, immRes.Theta, float64(immRes.Theta)/float64(2*opim.Theta))
	}
	// Both must deliver comparable estimated spreads.
	if math.Abs(opim.EstSpread-immRes.EstSpread) > 0.3*immRes.EstSpread {
		t.Fatalf("OPIM-C spread %v far from IMM's %v", opim.EstSpread, immRes.EstSpread)
	}
}

func TestOPIMCDeterministic(t *testing.T) {
	g := wcGraph(t, 300, 4)
	run := func() *OPIMResult {
		e, err := NewLocalDualEngine(g, diffusion.LT, false, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOPIMC(e, g.NumNodes(), 4, 0.4, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Theta != b.Theta || len(a.Seeds) != len(b.Seeds) {
		t.Fatal("OPIM-C not deterministic")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("seed sets differ across identical runs")
		}
	}
}
