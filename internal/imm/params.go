// Package imm implements the IMM framework of Tang, Shi and Xiao
// (SIGMOD'15) with the martingale-analysis correction of Chen (2018):
// the sample-size mathematics (equations (3)–(7) of the reproduced
// paper) and the two-phase sampling/selection driver (Algorithm 2),
// written against an Engine interface so the identical driver runs both
// the sequential baseline and the distributed DIIMM.
package imm

import (
	"fmt"
	"math"
)

// LogBinom returns ln C(n, k), computed stably as Σ ln((n-k+i)/i).
func LogBinom(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k > n-k {
		k = n - k
	}
	s := 0.0
	for i := 1; i <= k; i++ {
		s += math.Log(float64(n-k+i) / float64(i))
	}
	return s
}

// Params bundles the derived quantities of equations (3)–(7).
type Params struct {
	N     int     // number of nodes
	K     int     // seed set size
	Eps   float64 // ε, the approximation slack
	Delta float64 // δ, the failure probability

	EpsPrime   float64 // ε′ = √2·ε (Algorithm 2 line 2)
	DeltaPrime float64 // δ′, root of ⌈λ*⌉·δ′ = δ (eq. 7, Chen's fix)
	LambdaP    float64 // λ′ (eq. 3)
	LambdaStar float64 // λ* (eq. 6)
}

// lambdaStar evaluates equations (4)–(6) for a candidate δ′.
func lambdaStar(n, k int, eps, deltaPrime float64) float64 {
	alpha := math.Sqrt(math.Log(2/deltaPrime) + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (LogBinom(n, k) + math.Log(2/deltaPrime) + math.Ln2))
	x := (1-1/math.E)*alpha + beta
	return 2 * float64(n) * x * x / (eps * eps)
}

// ComputeParams derives all sample-size parameters. The δ′ of equation
// (7) is defined implicitly (λ* depends on δ′ and vice versa); a short
// fixed-point iteration converges because λ* grows only logarithmically
// in 1/δ′.
func ComputeParams(n, k int, eps, delta float64) (Params, error) {
	if n < 2 {
		return Params{}, fmt.Errorf("imm: need at least 2 nodes, got %d", n)
	}
	if k < 1 || k > n {
		return Params{}, fmt.Errorf("imm: k = %d outside [1, %d]", k, n)
	}
	if eps <= 0 || eps >= 1 {
		return Params{}, fmt.Errorf("imm: epsilon = %v outside (0, 1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return Params{}, fmt.Errorf("imm: delta = %v outside (0, 1)", delta)
	}
	p := Params{N: n, K: k, Eps: eps, Delta: delta}
	p.EpsPrime = math.Sqrt2 * eps

	// Fixed point of δ′ = δ / ⌈λ*(δ′)⌉.
	dp := delta
	for i := 0; i < 64; i++ {
		ls := lambdaStar(n, k, eps, dp)
		next := delta / math.Ceil(ls)
		if next <= 0 || math.IsNaN(next) || math.IsInf(next, 0) {
			return Params{}, fmt.Errorf("imm: delta-prime iteration diverged (λ* = %g)", ls)
		}
		if math.Abs(next-dp) <= 1e-15*dp {
			dp = next
			break
		}
		dp = next
	}
	p.DeltaPrime = dp
	p.LambdaStar = lambdaStar(n, k, eps, dp)

	// λ′ (eq. 3) with ε′ and δ′.
	ep := p.EpsPrime
	p.LambdaP = (2 + 2.0/3.0*ep) *
		(LogBinom(n, k) + math.Log(2/dp) + math.Log(math.Log2(float64(n)))) *
		float64(n) / (ep * ep)
	if math.IsNaN(p.LambdaP) || p.LambdaP <= 0 {
		return Params{}, fmt.Errorf("imm: invalid lambda-prime %g", p.LambdaP)
	}
	return p, nil
}

// ThetaAt returns θ_t = λ′ / x for x = n/2^t (Algorithm 2 line 5),
// rounded up.
func (p Params) ThetaAt(t int) int64 {
	x := float64(p.N) / math.Pow(2, float64(t))
	return int64(math.Ceil(p.LambdaP / x))
}

// MaxRounds returns the iteration bound log2(n) − 1 of Algorithm 2.
func (p Params) MaxRounds() int {
	r := int(math.Log2(float64(p.N))) - 1
	if r < 1 {
		r = 1
	}
	return r
}

// FinalTheta returns θ = λ* / LB (Algorithm 2 line 11), rounded up.
func (p Params) FinalTheta(lb float64) int64 {
	if lb < 1 {
		lb = 1
	}
	return int64(math.Ceil(p.LambdaStar / lb))
}
