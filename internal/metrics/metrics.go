// Package metrics is the unified instrumentation registry: one
// threadsafe home for every counter the system exposes, replacing the
// hand-merged cluster.Metrics fields, the serve-layer atomics and the
// ad-hoc BENCH_*.json shapes that had each grown their own accounting.
//
// Design constraints, in order:
//
//  1. Hot-path recording must be cheap enough for the sampling and
//     selection inner loops: every metric type records with a handful of
//     lock-free atomics, and producers hold typed handles so recording
//     never touches the registry map.
//  2. Snapshots must be safe to take at any instant from any goroutine
//     (the /statsz and /metricsz handlers do), and deterministic to
//     serialize, so two snapshots of identical state are byte-identical
//     JSON — the property the perf-regression harness diffs rely on.
//  3. Names are hierarchical dotted paths ("cluster.gen.critical_ns",
//     "http.seeds.latency_ns") so exports group naturally and later
//     subsystems extend the namespace without coordination.
//
// Four metric types cover everything the system measures:
//
//   - Counter: a monotonically accumulating int64 (bytes, rounds, hits).
//   - Gauge: a last-write-wins int64 (resident θ, batch width).
//   - Univariate: count/sum/min/max over observed values — the timing
//     type (observe one duration per event; mean = Sum/Count).
//   - Bivariate: paired sums (x, y) per event — e.g. frame bytes vs
//     carried pairs, where the ratio is the quantity under study.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types in snapshots.
type Kind string

const (
	KindCounter    Kind = "counter"
	KindGauge      Kind = "gauge"
	KindUnivariate Kind = "univariate"
	KindBivariate  Kind = "bivariate"
)

// Counter is a monotonically accumulating int64.
type Counter struct{ v atomic.Int64 }

// Add accumulates n (negative n is permitted for correction entries,
// but counters are conventionally monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// AddDuration accumulates d in nanoseconds — the convention for every
// *_ns counter in the registry.
func (c *Counter) AddDuration(d time.Duration) { c.v.Add(int64(d)) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Duration returns the current total interpreted as nanoseconds.
func (c *Counter) Duration() time.Duration { return time.Duration(c.v.Load()) }

// Gauge is a last-write-wins int64.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Univariate aggregates count, sum, min and max of observed values —
// the timing/size-distribution type. Recording is four atomics (two
// adds, two CAS loops that almost always exit on the first load).
type Univariate struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64 // math.MaxInt64 until the first observation
	max   atomic.Int64 // math.MinInt64 until the first observation
	init  sync.Once
}

func (u *Univariate) ensureInit() {
	u.init.Do(func() {
		u.min.Store(math.MaxInt64)
		u.max.Store(math.MinInt64)
	})
}

// Observe records one value.
func (u *Univariate) Observe(v int64) {
	u.ensureInit()
	u.count.Add(1)
	u.sum.Add(v)
	for {
		cur := u.min.Load()
		if v >= cur || u.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := u.max.Load()
		if v <= cur || u.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records one duration in nanoseconds.
func (u *Univariate) ObserveDuration(d time.Duration) { u.Observe(int64(d)) }

// Count returns the number of observations.
func (u *Univariate) Count() int64 { return u.count.Load() }

// Sum returns the sum of observed values.
func (u *Univariate) Sum() int64 { return u.sum.Load() }

// SumDuration returns the summed observations as nanoseconds.
func (u *Univariate) SumDuration() time.Duration { return time.Duration(u.sum.Load()) }

// Bivariate aggregates paired observations (x, y): the event count and
// both sums, e.g. x = frame bytes, y = pairs carried, so SumX/SumY is
// the bytes-per-pair under study.
type Bivariate struct {
	count atomic.Int64
	sumX  atomic.Int64
	sumY  atomic.Int64
}

// Observe records one (x, y) pair.
func (b *Bivariate) Observe(x, y int64) {
	b.count.Add(1)
	b.sumX.Add(x)
	b.sumY.Add(y)
}

// Count returns the number of observations.
func (b *Bivariate) Count() int64 { return b.count.Load() }

// SumX returns the accumulated x values.
func (b *Bivariate) SumX() int64 { return b.sumX.Load() }

// SumY returns the accumulated y values.
func (b *Bivariate) SumY() int64 { return b.sumY.Load() }

// Sample is one metric's state in a snapshot. Count/Sum/Min/Max follow
// the metric kind: a counter or gauge only carries Sum (its value), a
// univariate carries all four, a bivariate carries Count/Sum (= x) and
// SumY.
type Sample struct {
	Kind  Kind  `json:"kind"`
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min,omitempty"`
	Max   int64 `json:"max,omitempty"`
	SumY  int64 `json:"sum_y,omitempty"`
}

// Snapshot is a point-in-time copy of a registry: metric name → sample.
// encoding/json marshals string-keyed maps with sorted keys, so a
// snapshot's JSON is deterministic.
type Snapshot map[string]Sample

// Registry holds named metrics. Get-or-create calls (Counter, Gauge,
// Univariate, Bivariate) take a mutex; producers call them once at
// setup and keep the returned handle, so recording itself never locks.
type Registry struct {
	mu sync.Mutex
	m  map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]any)}
}

// lookup returns the metric registered under name, creating it with mk
// on first use. A name registered as a different kind panics: that is a
// programming error (two subsystems claiming one name), not a runtime
// condition.
func lookup[T any](r *Registry, name string, mk func() *T) *T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.m[name]; ok {
		t, ok := got.(*T)
		if !ok {
			panic(fmt.Sprintf("metrics: %q already registered as %T", name, got))
		}
		return t
	}
	t := mk()
	r.m[name] = t
	return t
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Univariate returns the univariate registered under name, creating it
// on first use.
func (r *Registry) Univariate(name string) *Univariate {
	u := lookup(r, name, func() *Univariate { return &Univariate{} })
	u.ensureInit()
	return u
}

// Bivariate returns the bivariate registered under name, creating it on
// first use.
func (r *Registry) Bivariate(name string) *Bivariate {
	return lookup(r, name, func() *Bivariate { return &Bivariate{} })
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies every metric's current state. Safe to call at any
// instant from any goroutine; each metric's fields are read with atomic
// loads (a univariate's four fields are not read as one transaction,
// which is fine for monotone accumulation — the sample is a valid state
// the metric passed through or will pass through field-wise).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := make(map[string]any, len(r.m))
	for name, m := range r.m {
		metrics[name] = m
	}
	r.mu.Unlock()
	snap := make(Snapshot, len(metrics))
	for name, m := range metrics {
		switch v := m.(type) {
		case *Counter:
			snap[name] = Sample{Kind: KindCounter, Sum: v.Value()}
		case *Gauge:
			snap[name] = Sample{Kind: KindGauge, Sum: v.Value()}
		case *Univariate:
			s := Sample{Kind: KindUnivariate, Count: v.count.Load(), Sum: v.sum.Load()}
			if s.Count > 0 {
				s.Min = v.min.Load()
				s.Max = v.max.Load()
			}
			snap[name] = s
		case *Bivariate:
			snap[name] = Sample{Kind: KindBivariate, Count: v.Count(), Sum: v.SumX(), SumY: v.SumY()}
		}
	}
	return snap
}

// MarshalIndentJSON renders the snapshot as indented, deterministic
// JSON (sorted keys).
func (s Snapshot) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSnapshot decodes a snapshot previously produced by
// MarshalIndentJSON (or any JSON encoding of Snapshot).
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("metrics: parsing snapshot: %w", err)
	}
	return s, nil
}

// Merge copies every sample of o into s under prefix+name, so multiple
// registries (e.g. a service's own plus its two clusters') export as
// one namespace.
func (s Snapshot) Merge(prefix string, o Snapshot) {
	for name, sample := range o {
		s[prefix+name] = sample
	}
}
