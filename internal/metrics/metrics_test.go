package metrics

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecording hammers every metric type from many
// goroutines (run under -race in CI) and checks the totals are exact —
// no lost updates.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 10_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Handles fetched inside the goroutine so registration
			// itself is also exercised concurrently.
			c := r.Counter("test.counter")
			g := r.Gauge("test.gauge")
			u := r.Univariate("test.uni")
			b := r.Bivariate("test.bi")
			for i := 0; i < perW; i++ {
				c.Add(2)
				g.Set(int64(w))
				u.Observe(int64(i % 100))
				b.Observe(3, 7)
			}
		}(w)
	}
	// Concurrent snapshots mid-hammer must be safe (this is what the
	// HTTP stats handlers do).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if got, want := r.Counter("test.counter").Value(), int64(2*workers*perW); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	u := r.Univariate("test.uni")
	if got, want := u.Count(), int64(workers*perW); got != want {
		t.Errorf("univariate count = %d, want %d", got, want)
	}
	// Each goroutine observes 0..99 repeated; sum per goroutine is
	// perW/100 * (0+..+99) = perW/100 * 4950.
	if got, want := u.Sum(), int64(workers*(perW/100)*4950); got != want {
		t.Errorf("univariate sum = %d, want %d", got, want)
	}
	snap := r.Snapshot()
	if s := snap["test.uni"]; s.Min != 0 || s.Max != 99 {
		t.Errorf("univariate min/max = %d/%d, want 0/99", s.Min, s.Max)
	}
	if s := snap["test.bi"]; s.Sum != int64(3*workers*perW) || s.SumY != int64(7*workers*perW) {
		t.Errorf("bivariate sums = %d/%d, want %d/%d", s.Sum, s.SumY, 3*workers*perW, 7*workers*perW)
	}
	gv := r.Gauge("test.gauge").Value()
	if gv < 0 || gv >= workers {
		t.Errorf("gauge = %d, want a worker index in [0,%d)", gv, workers)
	}
}

// TestSnapshotDeterminism checks that two snapshots of identical state
// serialize to byte-identical JSON — the property the regression diffs
// rely on.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders; the JSON must not care.
		names := []string{"z.last", "a.first", "m.mid", "cluster.gen.critical_ns", "http.seeds.count"}
		for _, n := range names {
			r.Counter(n).Add(42)
		}
		r.Univariate("lat.ns").Observe(5)
		r.Univariate("lat.ns").Observe(15)
		r.Bivariate("delta.bytes_pairs").Observe(128, 9)
		return r
	}
	buildRev := func() *Registry {
		r := NewRegistry()
		r.Bivariate("delta.bytes_pairs").Observe(128, 9)
		r.Univariate("lat.ns").Observe(15)
		r.Univariate("lat.ns").Observe(5)
		for _, n := range []string{"http.seeds.count", "cluster.gen.critical_ns", "m.mid", "a.first", "z.last"} {
			r.Counter(n).Add(42)
		}
		return r
	}
	j1, err := build().Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := buildRev().Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("snapshots of identical state differ:\n%s\nvs\n%s", j1, j2)
	}
}

// TestJSONRoundTrip checks Marshal → Parse preserves every sample.
func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(123)
	r.Gauge("g").Set(-7)
	u := r.Univariate("u")
	u.ObserveDuration(3 * time.Millisecond)
	u.ObserveDuration(5 * time.Millisecond)
	r.Bivariate("b").Observe(1000, 50)

	want := r.Snapshot()
	j, err := want.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost metrics: got %d, want %d", len(got), len(want))
	}
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s: round trip %+v, want %+v", name, g, w)
		}
	}
}

// TestUnivariateEmpty checks an observed-nothing univariate snapshots
// with zero min/max rather than the sentinel extremes.
func TestUnivariateEmpty(t *testing.T) {
	r := NewRegistry()
	r.Univariate("empty")
	s := r.Snapshot()["empty"]
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("empty univariate sample = %+v, want all zero", s)
	}
}

// TestMerge checks prefixed merging of one snapshot into another.
func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("queries").Add(1)
	b.Counter("rounds").Add(9)
	snap := a.Snapshot()
	snap.Merge("r1.", b.Snapshot())
	if snap["queries"].Sum != 1 || snap["r1.rounds"].Sum != 9 {
		t.Errorf("merge produced %+v", snap)
	}
	if _, ok := snap["rounds"]; ok {
		t.Error("merge leaked unprefixed name")
	}
}

// TestKindMismatchPanics pins the contract that re-registering a name
// as a different kind is a programming error.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual")
}
