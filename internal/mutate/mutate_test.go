package mutate

import (
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

func testGraph(t testing.TB, model diffusion.Model) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 400, AvgDegree: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if model == diffusion.LT {
		p := float32(0.5 / float64(g.MaxInDegree()))
		g, err = graph.AssignWeights(g, graph.UniformWeight, p, 0)
	} else {
		g, err = graph.AssignWeights(g, graph.Trivalency, 0, 7)
	}
	if err != nil {
		t.Fatal(err)
	}
	g.EnableMutation()
	return g
}

// testBatch builds a deterministic mixed batch against g's current
// version: removals of the first CSR edges, adds of absent pairs, one
// reweight. Adds carry a high probability under IC (so the batch is
// statistically certain to flip some coins) and a small one under LT
// (so per-head sums stay below 1).
func testBatch(t testing.TB, g *graph.Graph, model diffusion.Model) Batch {
	t.Helper()
	addProb := float32(0.9)
	if model == diffusion.LT {
		addProb = 0.02
	}
	var ops []graph.EdgeUpdate
	seen := 0
	g.Edges(func(from, to uint32, prob float32) {
		if prob == 0 {
			return
		}
		seen++
		switch {
		case seen <= 20:
			ops = append(ops, graph.EdgeUpdate{Op: graph.OpRemove, From: from, To: to})
		case seen == 21:
			ops = append(ops, graph.EdgeUpdate{Op: graph.OpReweight, From: from, To: to, Prob: prob / 2})
		}
	})
	rng := xrand.New(97)
	n := uint32(g.NumNodes())
	for added := 0; added < 8; {
		u, v := rng.Uint32n(n), rng.Uint32n(n)
		if u == v || edgeLive(g, u, v) {
			continue
		}
		dup := false
		for _, op := range ops {
			if op.Op == graph.OpAdd && op.From == u && op.To == v {
				dup = true
			}
		}
		if dup {
			continue
		}
		ops = append(ops, graph.EdgeUpdate{Op: graph.OpAdd, From: u, To: v, Prob: addProb})
		added++
	}
	return Batch{Seq: g.Version() + 1, Ops: ops}
}

func edgeLive(g *graph.Graph, u, v uint32) bool {
	adj, probs := g.OutNeighbors(u)
	for i, w := range adj {
		if w == v && probs[i] > 0 {
			return true
		}
	}
	for _, e := range g.OutOverlay(u) {
		if e.Node == v && e.Prob > 0 {
			return true
		}
	}
	return false
}

func TestBatchWireRoundTrip(t *testing.T) {
	b := Batch{Seq: 42, Ops: []graph.EdgeUpdate{
		{Op: graph.OpAdd, From: 1, To: 2, Prob: 0.25},
		{Op: graph.OpRemove, From: 3, To: 4},
		{Op: graph.OpReweight, From: 5, To: 6, Prob: 1},
	}}
	buf := EncodeBatch(nil, b)
	if len(buf) != EncodedSize(b) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), EncodedSize(b))
	}
	got, n, err := DecodeBatch(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.Seq != b.Seq || len(got.Ops) != len(b.Ops) {
		t.Fatalf("round trip lost shape: %+v", got)
	}
	for i := range b.Ops {
		if got.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got.Ops[i], b.Ops[i])
		}
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeBatch(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestValidate(t *testing.T) {
	g := testGraph(t, diffusion.IC)
	if err := Validate(g, diffusion.IC, Batch{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := []Batch{
		{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.OpAdd, From: 0, To: 9999, Prob: 0.5}}},
		{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.OpAdd, From: 2, To: 2, Prob: 0.5}}},
		{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.OpAdd, From: 0, To: 1, Prob: 1.5}}},
		{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.OpReweight, From: 0, To: 1, Prob: 0}}},
		{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.EdgeOp(9), From: 0, To: 1}}},
	}
	for i, b := range bad {
		if err := Validate(g, diffusion.IC, b); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	if err := Validate(g, diffusion.IC, testBatch(t, g, diffusion.IC)); err != nil {
		t.Fatalf("good batch rejected: %v", err)
	}
}

func TestValidateLTPrecondition(t *testing.T) {
	g := testGraph(t, diffusion.LT)
	// Find the node with the largest incoming sum and push it over 1.
	var v uint32
	for u := 1; u < g.NumNodes(); u++ {
		if g.InProbSum(uint32(u)) > g.InProbSum(v) {
			v = uint32(u)
		}
	}
	var from uint32
	if v == 0 {
		from = 1
	}
	over := Batch{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.OpAdd, From: from, To: v, Prob: 1}}}
	if err := Validate(g, diffusion.LT, over); err == nil {
		t.Fatal("LT sum overflow accepted")
	}
	if err := Validate(g, diffusion.IC, over); err != nil {
		t.Fatalf("IC rejected a sum-overflow batch it should not care about: %v", err)
	}
	ok := Batch{Seq: 1, Ops: []graph.EdgeUpdate{{Op: graph.OpAdd, From: from, To: v, Prob: 0.001}}}
	if err := Validate(g, diffusion.LT, ok); err != nil {
		t.Fatalf("small LT add rejected: %v", err)
	}
}

// The end-to-end repair identity, the theorem the subsystem rests on:
// plan the affected slots, resample exactly those with their original
// lane seeds on the mutated graph, and the patched sample must be
// byte-identical to sampling all streams from scratch on a twin graph
// that took the same update — for IC (refined plan) and LT
// (conservative plan) both.
func TestRepairMatchesFullResample(t *testing.T) {
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		const base, count = uint64(5), 500
		g := testGraph(t, model)
		twin := testGraph(t, model)

		s, err := rrset.NewSampler(g, model, base, false)
		if err != nil {
			t.Fatal(err)
		}
		c := rrset.NewCollection(1 << 12)
		s.SampleManyInto(c, count)
		lanes := make([]uint64, count)
		for i := range lanes {
			lanes[i] = xrand.LaneSeed(base, uint64(i))
		}
		idx, err := rrset.BuildIndex(c, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}

		b := testBatch(t, g, model)
		if err := Validate(g, model, b); err != nil {
			t.Fatal(err)
		}
		deltas, fresh, err := g.ApplyUpdates(b.Seq, b.Ops)
		if err != nil || !fresh {
			t.Fatalf("%v: apply fresh=%v err=%v", model, fresh, err)
		}

		plan, err := AffectedSlots(model, deltas, idx, lanes)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := AffectedSlotsConservative(b.Ops, idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) > len(wide) {
			t.Fatalf("%v: refined plan (%d) larger than conservative (%d)", model, len(plan), len(wide))
		}
		if model == diffusion.IC && len(plan) >= len(wide) && len(wide) > 0 {
			t.Logf("IC refinement bought nothing on this instance: %d == %d", len(plan), len(wide))
		}
		if len(plan) == 0 {
			t.Fatalf("%v: empty repair plan for a %d-op batch over %d sets", model, len(b.Ops), count)
		}
		if len(plan) == count {
			t.Fatalf("%v: repair plan touches every set; test has no discriminating power", model)
		}

		repair, err := rrset.NewSampler(g, model, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		patches := make([]rrset.Patch, 0, len(plan))
		for _, slot := range plan {
			members, _ := repair.ResampleLane(lanes[slot])
			patches = append(patches, rrset.Patch{Pos: slot, Members: append([]uint32(nil), members...)})
		}
		if err := c.ApplyPatches(patches); err != nil {
			t.Fatal(err)
		}

		if _, _, err := twin.ApplyUpdates(b.Seq, b.Ops); err != nil {
			t.Fatal(err)
		}
		ts, err := rrset.NewSampler(twin, model, base, false)
		if err != nil {
			t.Fatal(err)
		}
		want := rrset.NewCollection(1 << 12)
		ts.SampleManyInto(want, count)

		for i := 0; i < count; i++ {
			a, w := c.Set(i), want.Set(i)
			if len(a) != len(w) {
				t.Fatalf("%v: set %d has %d members after repair, full resample has %d", model, i, len(a), len(w))
			}
			for j := range a {
				if a[j] != w[j] {
					t.Fatalf("%v: set %d diverged at member %d after repair", model, i, j)
				}
			}
		}
		t.Logf("%v: repaired %d/%d sets (conservative plan %d)", model, len(plan), count, len(wide))
	}
}

// A second update batch on the already-mutated graph must still plan and
// repair exactly (positions in the overlay, tombstoned slots).
func TestRepairSecondBatch(t *testing.T) {
	const base, count = uint64(5), 300
	model := diffusion.IC
	g := testGraph(t, model)
	twin := testGraph(t, model)

	apply := func(tg *graph.Graph, b Batch) []graph.EdgeDelta {
		deltas, _, err := tg.ApplyUpdates(b.Seq, b.Ops)
		if err != nil {
			t.Fatal(err)
		}
		return deltas
	}
	b1 := testBatch(t, g, model)
	apply(g, b1)
	apply(twin, b1)

	s, err := rrset.NewSampler(g, model, base, false)
	if err != nil {
		t.Fatal(err)
	}
	c := rrset.NewCollection(1 << 12)
	s.SampleManyInto(c, count)
	lanes := make([]uint64, count)
	for i := range lanes {
		lanes[i] = xrand.LaneSeed(base, uint64(i))
	}
	idx, err := rrset.BuildIndex(c, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}

	// Second batch: remove an overlay edge added by b1, plus fresh ops.
	var ops []graph.EdgeUpdate
	for _, op := range b1.Ops {
		if op.Op == graph.OpAdd {
			ops = append(ops, graph.EdgeUpdate{Op: graph.OpRemove, From: op.From, To: op.To})
			break
		}
	}
	ops = append(ops, graph.EdgeUpdate{Op: graph.OpAdd, From: 200, To: 100, Prob: 0.3})
	b2 := Batch{Seq: g.Version() + 1, Ops: ops}
	deltas := apply(g, b2)

	plan, err := AffectedSlots(model, deltas, idx, lanes)
	if err != nil {
		t.Fatal(err)
	}
	repair, err := rrset.NewSampler(g, model, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var patches []rrset.Patch
	for _, slot := range plan {
		members, _ := repair.ResampleLane(lanes[slot])
		patches = append(patches, rrset.Patch{Pos: slot, Members: append([]uint32(nil), members...)})
	}
	if err := c.ApplyPatches(patches); err != nil {
		t.Fatal(err)
	}

	apply(twin, b2)
	ts, err := rrset.NewSampler(twin, model, base, false)
	if err != nil {
		t.Fatal(err)
	}
	want := rrset.NewCollection(1 << 12)
	ts.SampleManyInto(want, count)
	for i := 0; i < count; i++ {
		a, w := c.Set(i), want.Set(i)
		if len(a) != len(w) {
			t.Fatalf("set %d: %d members vs %d", i, len(a), len(w))
		}
		for j := range a {
			if a[j] != w[j] {
				t.Fatalf("set %d diverged at member %d", i, j)
			}
		}
	}
}
