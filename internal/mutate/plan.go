package mutate

import (
	"fmt"
	"sort"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

// AffectedSlots returns, in ascending order, the positions of the RR
// sets that a just-applied update batch can have changed — the exact
// repair set under IC, a sound over-approximation under LT.
//
// deltas are the slot-level effects graph.ApplyUpdates reported for the
// batch; idx is the inverted node→RR index over the resident sample
// (built BEFORE the repair; membership reflects the pre-update sets,
// which is exactly what the coupling argument needs); lanes[t] is the
// lane seed RR set t was generated from.
//
// Soundness: a reverse traversal only ever flips coins at nodes it
// visits, and it visits exactly the nodes it outputs — so a set whose
// members avoid every mutated head is bit-identical when regenerated on
// the new graph, and can be skipped. Under IC we refine further: the
// coin for in-slot pos of head v is draw number pos of the stream
// xrand.ScanSeed(lane, v), independent of the graph — so the mutated
// slot's liveness flips iff that draw lands in [min(pOld,pNew),
// max(pOld,pNew)), and a set where no mutated slot flips liveness
// replays every traversal decision identically. Under LT the walk's
// transition distribution at a visited head changes with any weight
// change, so every covering set is kept.
func AffectedSlots(model diffusion.Model, deltas []graph.EdgeDelta, idx *rrset.Index, lanes []uint64) ([]int, error) {
	if idx == nil {
		return nil, fmt.Errorf("mutate: nil RR index")
	}
	if idx.Count() > len(lanes) {
		return nil, fmt.Errorf("mutate: %d RR sets indexed but only %d lane seeds", idx.Count(), len(lanes))
	}
	// marked[t] dedupes across deltas without a map: the planner visits a
	// posting per (delta, covering set), and at high churn a map probe per
	// visit dominated the plan.
	marked := make([]bool, idx.Count())
	var affected []int
	var redraw xrand.Rand
	for _, d := range deltas {
		lo, hi := d.POld, d.PNew
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			continue // no-op delta: liveness cannot change for any draw
		}
		for si := 0; si < idx.NumSegments(); si++ {
			for _, id := range idx.SegCovers(si, d.Head) {
				if id&rrset.DeadPosting != 0 {
					continue
				}
				t := int(id)
				if marked[t] {
					continue
				}
				if model == diffusion.IC {
					redraw.Seed(xrand.ScanSeed(lanes[t], d.Head))
					for i := 0; i < d.Pos; i++ {
						redraw.Float64()
					}
					u := redraw.Float64()
					if !(u >= float64(lo) && u < float64(hi)) {
						continue // coin outcome unchanged: set replays identically
					}
				}
				marked[t] = true
				affected = append(affected, t)
			}
		}
	}
	sort.Ints(affected)
	return affected, nil
}

// AffectedSlotsConservative is the fallback plan when slot-level deltas
// are unavailable (e.g. an idempotent replay whose memoized deltas have
// been discarded): every RR set covering any head an op touches. Always
// sound — recomputing an unchanged set is value-idempotent — just
// larger than the refined plan.
func AffectedSlotsConservative(ops []graph.EdgeUpdate, idx *rrset.Index) ([]int, error) {
	if idx == nil {
		return nil, fmt.Errorf("mutate: nil RR index")
	}
	marked := make([]bool, idx.Count())
	var affected []int
	for _, op := range ops {
		for si := 0; si < idx.NumSegments(); si++ {
			for _, id := range idx.SegCovers(si, op.To) {
				if id&rrset.DeadPosting != 0 {
					continue
				}
				if t := int(id); !marked[t] {
					marked[t] = true
					affected = append(affected, t)
				}
			}
		}
	}
	sort.Ints(affected)
	return affected, nil
}
