package rrset

import (
	"fmt"
	"slices"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// DefaultBatch is the frontier-batch width used when a batching knob is
// left at its zero value. Batching is safe to enable by default because
// the batched kernel's output is bit-identical to the scalar sampler's at
// every width; the knob only trades scratch memory (O(B × set size)) for
// adjacency-read locality.
const DefaultBatch = 64

// BatchStats are cumulative counters describing how effectively the
// batched kernel amortized adjacency reads. They are observability, not
// part of the sampled output: bit-identity of the RR sets holds at any
// batch width, so these numbers may legitimately differ across widths
// while the Collections stay byte-identical.
type BatchStats struct {
	// Cohorts counts batched rounds; each round carries up to B sets.
	Cohorts int64
	// Waves counts level-synchronous frontier expansions across cohorts.
	Waves int64
	// FrontierItems counts (set, node) scan items over all waves — the
	// unit of work the kernel groups by node to share adjacency reads.
	FrontierItems int64
	// LaneWaves sums, over waves, the number of lanes still active. The
	// ratio LaneWaves/(Waves·B) is frontier occupancy: how full the
	// batch is while waves are running.
	LaneWaves int64
	// SkippedEdges counts adjacency entries never touched thanks to
	// SUBSIM geometric jumps (subset mode only).
	SkippedEdges int64
}

// Add accumulates o into s.
func (s *BatchStats) Add(o BatchStats) {
	s.Cohorts += o.Cohorts
	s.Waves += o.Waves
	s.FrontierItems += o.FrontierItems
	s.LaneWaves += o.LaneWaves
	s.SkippedEdges += o.SkippedEdges
}

// batchLane is one in-flight RR traversal inside a cohort: the set under
// construction, its BFS frontier (IC) or walk position (LT), and a
// stamp-generation hash set answering "is node w already a member".
// All lane scratch is reused across cohorts — no per-set allocation in
// steady state.
type batchLane struct {
	laneSeed uint64
	r        xrand.Rand // lane generator: root draw and the LT walk
	members  []uint32   // RR set so far, in scalar append order
	frontier []uint32
	next     []uint32
	probes   int64
	cur      uint32 // LT: current walk node
	done     bool   // LT: walk terminated
	peak     int    // shrink-window peak set size

	// Visited membership, replacing the scalar sampler's n-sized
	// epoch-stamped array: B lanes × n words would be prohibitive, so each
	// lane keeps a linear-probing hash set sized to its set, with a
	// per-set generation stamp making cross-set reuse O(1). A slot holds
	// stamp<<32 | node+1; a slot whose stamp differs from the lane's
	// current stamp is empty.
	slots []uint64
	used  int
	stamp uint32
}

func laneHash(w uint32) uint32 {
	h := w * 2654435761
	return h ^ h>>16
}

// begin points the lane at a fresh RR set on the given lane seed.
func (ln *batchLane) begin(laneSeed uint64) {
	ln.laneSeed = laneSeed
	ln.r.Seed(laneSeed)
	ln.members = ln.members[:0]
	ln.frontier = ln.frontier[:0]
	ln.probes = 0
	ln.done = false
	ln.used = 0
	ln.stamp++
	if ln.stamp == 0 {
		// Stamp wraparound: stale slots from 2^32 sets ago would alias the
		// new generation, so clear the table once per wrap (cf. the scalar
		// sampler's epoch reset).
		clear(ln.slots)
		ln.stamp = 1
	}
}

// insert adds w to the lane's membership set; it reports whether w was
// newly inserted (false: already a member).
func (ln *batchLane) insert(w uint32) bool {
	if (ln.used+1)*4 > len(ln.slots)*3 {
		ln.grow()
	}
	mask := uint32(len(ln.slots) - 1)
	key := uint64(ln.stamp)<<32 | uint64(w+1)
	for h := laneHash(w) & mask; ; h = (h + 1) & mask {
		s := ln.slots[h]
		if uint32(s>>32) != ln.stamp {
			ln.slots[h] = key
			ln.used++
			return true
		}
		if s == key {
			return false
		}
	}
}

func (ln *batchLane) grow() {
	old := ln.slots
	ln.slots = make([]uint64, 2*len(old))
	mask := uint32(len(ln.slots) - 1)
	for _, s := range old {
		if uint32(s>>32) != ln.stamp {
			continue // stale or empty slot: not part of the current set
		}
		h := laneHash(uint32(s)-1) & mask
		for ln.slots[h] != 0 {
			h = (h + 1) & mask
		}
		ln.slots[h] = s
	}
}

// BatchSampler generates RR sets with the same semantics — and, set for
// set, the same bytes — as Sampler, but advances up to B traversals
// (lanes) level-synchronously: each wave gathers every lane's frontier,
// sorts the (node, lane) items by node, and scans each distinct node's
// in-adjacency once for all lanes that want it. On graphs whose in-CSR
// exceeds cache, that amortization is the win gIM/DiFuseR get from GPU
// frontier batching, on a CPU.
//
// Bit-identity with the scalar sampler holds because no draw depends on
// interleaving: set t draws from lane xrand.LaneSeed(base, t), and IC
// edge coins for node u come from xrand.ScanSeed(lane, u). The commit
// pass replays each lane's frontier in FIFO order, so member order
// matches the scalar BFS exactly. Not safe for concurrent use.
type BatchSampler struct {
	g      *graph.Graph
	model  diffusion.Model
	subset bool
	roots  *xrand.Alias

	base   uint64
	setCtr uint64
	lanes  []batchLane
	scan   xrand.Rand // per-(lane, node) scan generator, reseeded per item

	// Wave scratch, reused across waves and cohorts.
	keys      []uint64 // node<<32 | seq, sorted per wave
	laneBySeq []int32
	cand      []uint32 // flat arena of successful coin flips, all items
	candStart []int32  // per-seq [start, end) into cand
	candEnd   []int32

	stats    BatchStats
	cohorts  int // shrink-window counter
	peakWave int // shrink-window peak wave items

	// prefetchSink keeps prefetchWave's loads observable so the compiler
	// cannot eliminate them. Per-sampler: shards must not share a word.
	prefetchSink uint64
}

// NewBatchSampler returns a frontier-batched sampler advancing width RR
// traversals per adjacency pass. Width values below 1 are treated as 1.
// Seed identifies the same stream a Sampler with that seed samples.
func NewBatchSampler(g *graph.Graph, model diffusion.Model, seed uint64, subset bool, width int) (*BatchSampler, error) {
	if subset && !g.UniformIn() {
		return nil, fmt.Errorf("rrset: subset sampling requires per-node-uniform incoming probabilities (weighted-cascade weights)")
	}
	if model == diffusion.LT {
		if err := g.ValidateLT(); err != nil {
			return nil, err
		}
	}
	if width < 1 {
		width = 1
	}
	s := &BatchSampler{
		g:      g,
		model:  model,
		subset: subset,
		base:   seed,
		lanes:  make([]batchLane, width),
	}
	for i := range s.lanes {
		s.lanes[i].slots = make([]uint64, 64)
	}
	return s, nil
}

// Width returns B, the number of lanes advanced per wave.
func (s *BatchSampler) Width() int { return len(s.lanes) }

// Seed rewinds the sampler to set 0 of the stream identified by seed.
func (s *BatchSampler) Seed(seed uint64) {
	s.base = seed
	s.setCtr = 0
}

// Stats returns the cumulative batching counters.
func (s *BatchSampler) Stats() BatchStats { return s.stats }

// SetRootWeights switches the sampler to targeted mode (see
// Sampler.SetRootWeights).
func (s *BatchSampler) SetRootWeights(weights []float64) error {
	if weights == nil {
		s.roots = nil
		return nil
	}
	if len(weights) != s.g.NumNodes() {
		return fmt.Errorf("rrset: %d root weights for %d nodes", len(weights), s.g.NumNodes())
	}
	a, err := xrand.NewAlias(weights)
	if err != nil {
		return err
	}
	s.roots = a
	return nil
}

// SampleManyInto generates count RR sets into c, in cohorts of up to B.
// The emitted sets are numbers setCtr..setCtr+count-1 of the seed's
// stream, byte-identical to what a Sampler on the same stream would
// append — including across SampleManyInto call boundaries that split a
// cohort.
func (s *BatchSampler) SampleManyInto(c *Collection, count int64) {
	for count > 0 {
		active := int64(len(s.lanes))
		if count < active {
			active = count
		}
		s.runCohort(c, int(active))
		count -= active
	}
}

func (s *BatchSampler) runCohort(c *Collection, active int) {
	n := uint32(s.g.NumNodes())
	for i := 0; i < active; i++ {
		ln := &s.lanes[i]
		ln.begin(xrand.LaneSeed(s.base, s.setCtr))
		s.setCtr++
		var root uint32
		if s.roots != nil {
			root = uint32(s.roots.Sample(&ln.r))
		} else {
			root = ln.r.Uint32n(n)
		}
		ln.insert(root)
		ln.members = append(ln.members, root)
		if s.model == diffusion.IC {
			ln.frontier = append(ln.frontier, root)
		} else {
			ln.cur = root
		}
	}
	s.stats.Cohorts++
	switch s.model {
	case diffusion.IC:
		s.runICWaves(active)
	case diffusion.LT:
		s.runLTWaves(active)
	default:
		panic(fmt.Sprintf("rrset: unknown model %v", s.model))
	}
	// Emit in lane-slot order = ascending set number within the cohort.
	for i := 0; i < active; i++ {
		ln := &s.lanes[i]
		c.Append(ln.members, ln.probes)
		if len(ln.members) > ln.peak {
			ln.peak = len(ln.members)
		}
	}
	if s.cohorts++; s.cohorts >= shrinkWindow {
		for i := range s.lanes {
			ln := &s.lanes[i]
			ln.members = shrinkScratch(ln.members, ln.peak)
			ln.frontier = shrinkScratch(ln.frontier, ln.peak)
			ln.next = shrinkScratch(ln.next, ln.peak)
			ln.peak = 0
		}
		s.keys = shrinkScratch(s.keys, s.peakWave)
		s.laneBySeq = shrinkScratch(s.laneBySeq, s.peakWave)
		s.cand = shrinkScratch(s.cand, s.peakWave)
		s.cohorts, s.peakWave = 0, 0
	}
}

// runICWaves expands all lanes' BFS frontiers level-synchronously. Each
// wave is two passes: a scan pass over the wave's (node, lane) items in
// node-sorted order — so one InNeighbors fetch serves every lane whose
// frontier holds that node — recording successful coin flips per item,
// then a commit pass replaying items in lane/FIFO order so membership
// checks and appends happen in exactly the scalar sampler's sequence.
func (s *BatchSampler) runICWaves(active int) {
	for {
		s.keys = s.keys[:0]
		s.laneBySeq = s.laneBySeq[:0]
		lanesLive := 0
		for li := 0; li < active; li++ {
			ln := &s.lanes[li]
			if len(ln.frontier) == 0 {
				continue
			}
			lanesLive++
			for _, u := range ln.frontier {
				s.keys = append(s.keys, uint64(u)<<32|uint64(len(s.laneBySeq)))
				s.laneBySeq = append(s.laneBySeq, int32(li))
			}
		}
		items := len(s.keys)
		if items == 0 {
			return
		}
		if items > s.peakWave {
			s.peakWave = items
		}
		s.stats.Waves++
		s.stats.LaneWaves += int64(lanesLive)
		s.stats.FrontierItems += int64(items)
		slices.Sort(s.keys)

		if cap(s.candStart) < items {
			s.candStart = make([]int32, items)
			s.candEnd = make([]int32, items)
		}
		s.candStart = s.candStart[:items]
		s.candEnd = s.candEnd[:items]
		s.cand = s.cand[:0]
		s.prefetchWave()
		curNode := ^uint32(0)
		var adj []uint32
		var prob []float32
		for _, key := range s.keys {
			u := uint32(key >> 32)
			seq := int32(key)
			if u != curNode {
				adj, prob = s.g.InNeighbors(u)
				curNode = u
			}
			ln := &s.lanes[s.laneBySeq[seq]]
			start := int32(len(s.cand))
			if len(adj) > 0 {
				s.scan.Seed(xrand.ScanSeed(ln.laneSeed, u))
				if s.subset {
					p := float64(prob[0])
					landed := 0
					if p > 0 {
						i := s.scan.Geometric(p)
						for i < len(adj) {
							ln.probes++
							landed++
							s.cand = append(s.cand, adj[i])
							i += 1 + s.scan.Geometric(p)
						}
					}
					ln.probes++ // the terminating jump
					s.stats.SkippedEdges += int64(len(adj) - landed)
				} else {
					for i, w := range adj {
						ln.probes++
						if s.scan.Float64() < float64(prob[i]) {
							s.cand = append(s.cand, w)
						}
					}
				}
			}
			s.candStart[seq], s.candEnd[seq] = start, int32(len(s.cand))
		}

		seq := 0
		for li := 0; li < active; li++ {
			ln := &s.lanes[li]
			if len(ln.frontier) == 0 {
				continue
			}
			ln.next = ln.next[:0]
			for range ln.frontier {
				for _, w := range s.cand[s.candStart[seq]:s.candEnd[seq]] {
					if ln.insert(w) {
						ln.members = append(ln.members, w)
						ln.next = append(ln.next, w)
					}
				}
				seq++
			}
			ln.frontier, ln.next = ln.next, ln.frontier
		}
	}
}

// prefetchWave touches the CSR offset and adjacency-block boundary
// entries of every distinct node in the sorted wave before the scan pass.
// Each iteration's loads are independent of the previous one's, so the
// CPU overlaps their DRAM misses at full memory-level parallelism; the
// serial scan pass that follows then finds the lines resident instead of
// stalling one miss at a time. This is where most of the batched kernel's
// speedup on larger-than-LLC graphs comes from — a lone BFS has almost no
// independent loads to overlap.
func (s *BatchSampler) prefetchWave() {
	var sink uint64
	cur := ^uint32(0)
	for _, key := range s.keys {
		u := uint32(key >> 32)
		if u == cur {
			continue
		}
		cur = u
		adj, prob := s.g.InNeighbors(u)
		if len(adj) > 0 {
			sink += uint64(adj[0]) + uint64(adj[len(adj)-1]) + uint64(uint32(prob[0]))
		}
	}
	s.prefetchSink += sink
}

// runLTWaves advances every live walk one step per wave, visiting the
// wave's walk positions in node-sorted order for adjacency locality. All
// draws come from each lane's own generator, so the cross-lane visit
// order cannot perturb any walk.
func (s *BatchSampler) runLTWaves(active int) {
	for {
		s.keys = s.keys[:0]
		for li := 0; li < active; li++ {
			ln := &s.lanes[li]
			if ln.done {
				continue
			}
			s.keys = append(s.keys, uint64(ln.cur)<<32|uint64(li))
		}
		items := len(s.keys)
		if items == 0 {
			return
		}
		s.stats.Waves++
		s.stats.LaneWaves += int64(items)
		s.stats.FrontierItems += int64(items)
		slices.Sort(s.keys)
		s.prefetchWave()
		for _, key := range s.keys {
			u := uint32(key >> 32)
			ln := &s.lanes[int32(key)]
			adj, prob := s.g.InNeighbors(u)
			if len(adj) == 0 {
				ln.done = true
				continue
			}
			sum := s.g.InProbSum(u)
			x := ln.r.Float64()
			if x >= sum {
				ln.probes++
				ln.done = true
				continue
			}
			var next uint32
			if s.g.UniformIn() {
				next = adj[int(x/sum*float64(len(adj)))%len(adj)]
				ln.probes++
			} else {
				acc := 0.0
				picked := false
				for i, up := range adj {
					ln.probes++
					acc += float64(prob[i])
					if x < acc {
						next = up
						picked = true
						break
					}
				}
				if !picked { // float round-off at the boundary
					next = adj[len(adj)-1]
				}
			}
			if !ln.insert(next) {
				ln.done = true
				continue
			}
			ln.members = append(ln.members, next)
			ln.cur = next
		}
	}
}
