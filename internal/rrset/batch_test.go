package rrset

import (
	"fmt"
	"math"
	"testing"

	"dimm/internal/diffusion"
)

// batchModes enumerates the sampling configurations the batched kernel
// must reproduce bit for bit: both diffusion models, subset (SUBSIM)
// generation, and targeted (weighted-root) mode.
type batchMode struct {
	name     string
	model    diffusion.Model
	subset   bool
	targeted bool
}

var batchModes = []batchMode{
	{"IC", diffusion.IC, false, false},
	{"IC-subset", diffusion.IC, true, false},
	{"IC-targeted", diffusion.IC, false, true},
	{"IC-subset-targeted", diffusion.IC, true, true},
	{"LT", diffusion.LT, false, false},
	{"LT-targeted", diffusion.LT, false, true},
}

func targetedWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i%7) + 0.25
	}
	return w
}

// TestBatchBitIdenticalToScalar is the headline determinism claim: for
// every mode and batch width, the batched kernel emits byte-identical
// Collections to the scalar sampler on the same (seed, root-index)
// stream. The request sequence deliberately misaligns with every width
// (mid-batch Count boundaries): partial cohorts must still emit the
// next sets of the stream.
func TestBatchBitIdenticalToScalar(t *testing.T) {
	g := testGraph(t, 400, 7)
	requests := []int64{1, 7, 250, 42}
	for _, mode := range batchModes {
		for _, b := range []int{1, 2, 7, 64} {
			t.Run(fmt.Sprintf("%s/B=%d", mode.name, b), func(t *testing.T) {
				scalar, err := NewSampler(g, mode.model, 42, mode.subset)
				if err != nil {
					t.Fatal(err)
				}
				batched, err := NewBatchSampler(g, mode.model, 42, mode.subset, b)
				if err != nil {
					t.Fatal(err)
				}
				if mode.targeted {
					w := targetedWeights(g.NumNodes())
					if err := scalar.SetRootWeights(w); err != nil {
						t.Fatal(err)
					}
					if err := batched.SetRootWeights(w); err != nil {
						t.Fatal(err)
					}
				}
				want, got := NewCollection(64), NewCollection(64)
				for _, req := range requests {
					scalar.SampleManyInto(want, req)
					batched.SampleManyInto(got, req)
				}
				if !collectionsEqual(want, got) {
					t.Fatalf("%s B=%d: batched output diverges from the scalar sampler", mode.name, b)
				}
			})
		}
	}
}

// TestShardedBatchBitIdentical checks that the frontier-batch width is
// invisible at the ShardedSampler level too, for every (B, P) pair: the
// sharded batched sampler must reproduce the sharded scalar sampler's
// bytes, and (at P=1) the plain scalar sampler's.
func TestShardedBatchBitIdentical(t *testing.T) {
	g := testGraph(t, 400, 9)
	requests := []int64{1, 7, 250, 100}
	for _, p := range []int{1, 2, 4} {
		for _, b := range []int{1, 2, 7, 64} {
			t.Run(fmt.Sprintf("P=%d/B=%d", p, b), func(t *testing.T) {
				scalar, err := NewShardedSampler(g, diffusion.IC, 5, false, p)
				if err != nil {
					t.Fatal(err)
				}
				batched, err := NewShardedSamplerBatch(g, diffusion.IC, 5, false, p, b)
				if err != nil {
					t.Fatal(err)
				}
				want, got := NewCollection(64), NewCollection(64)
				for _, req := range requests {
					scalar.SampleManyInto(want, req)
					batched.SampleManyInto(got, req)
				}
				if !collectionsEqual(want, got) {
					t.Fatalf("P=%d B=%d: batched sharded output diverges", p, b)
				}
				if st := batched.BatchStats(); b > 1 && st.Cohorts == 0 {
					t.Fatalf("P=%d B=%d: batched kernel reported no cohorts", p, b)
				}
			})
		}
	}
}

// TestBatchSubsetSkipsEdges asserts the SUBSIM path actually skips
// adjacency entries (the stats must show it) while staying bit-identical
// — covered above — and that probes stay below the full-scan count.
func TestBatchSubsetSkipsEdges(t *testing.T) {
	g := testGraph(t, 400, 7)
	s, err := NewBatchSampler(g, diffusion.IC, 3, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(64)
	s.SampleManyInto(c, 500)
	st := s.Stats()
	if st.SkippedEdges <= 0 {
		t.Fatalf("subset mode skipped %d edges, want > 0", st.SkippedEdges)
	}
	if st.Waves == 0 || st.FrontierItems == 0 || st.LaneWaves == 0 {
		t.Fatalf("batch stats not populated: %+v", st)
	}
	if st.LaneWaves > int64(st.Waves)*int64(s.Width()) {
		t.Fatalf("occupancy numerator exceeds denominator: %+v", st)
	}
}

// TestBatchLaneStampWrap drives every lane's membership-stamp across the
// uint32 wrap mid-stream and asserts output still matches the scalar
// sampler: stale slots from 2^32 generations ago must not alias the new
// set (the clear-on-wrap branch of batchLane.begin).
func TestBatchLaneStampWrap(t *testing.T) {
	g := testGraph(t, 150, 4)
	scalar, err := NewSampler(g, diffusion.IC, 33, false)
	if err != nil {
		t.Fatal(err)
	}
	wrapping, err := NewBatchSampler(g, diffusion.IC, 33, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the lanes so the slot tables hold genuine stale entries, then
	// rewind the stream and push each stamp to the brink of overflow: the
	// wrap happens on the 3rd cohort.
	warm := NewCollection(64)
	wrapping.SampleManyInto(warm, 40)
	wrapping.Seed(33)
	for i := range wrapping.lanes {
		wrapping.lanes[i].stamp = math.MaxUint32 - 2
	}
	want, got := NewCollection(64), NewCollection(64)
	scalar.SampleManyInto(want, 40)
	wrapping.SampleManyInto(got, 40)
	if !collectionsEqual(want, got) {
		t.Fatal("batched sampler diverges when lane stamps wrap")
	}
	for i := range wrapping.lanes {
		if wrapping.lanes[i].stamp == 0 {
			t.Fatalf("lane %d stamp left at 0 after wrap", i)
		}
	}
}

// TestScalarScratchShrinksAfterOutlier pins the shrink-on-outlier policy:
// one pathological RR set must not pin worst-case queue capacity for the
// sampler's lifetime (satellite of the batching issue).
func TestScalarScratchShrinksAfterOutlier(t *testing.T) {
	g := testGraph(t, 300, 3)
	s, err := NewSampler(g, diffusion.IC, 17, false)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the aftermath of a giant RR set: a queue holding multi-MB
	// capacity while typical sets on this graph are tiny.
	huge := 1 << 20
	s.queue = make([]uint32, 0, huge)
	c := NewCollection(64)
	s.SampleManyInto(c, shrinkWindow)
	if cap(s.queue) >= huge {
		t.Fatalf("queue capacity %d retained after a full shrink window", cap(s.queue))
	}
	if cap(s.queue) < shrinkMinCap {
		t.Fatalf("queue shrunk below the floor: %d < %d", cap(s.queue), shrinkMinCap)
	}
}

// TestShrinkScratchPolicy covers the decision table directly.
func TestShrinkScratchPolicy(t *testing.T) {
	// Capacity within slack of the peak: kept.
	buf := make([]uint32, 0, 4*shrinkMinCap)
	if got := shrinkScratch(buf, shrinkMinCap); cap(got) != cap(buf) {
		t.Fatalf("in-slack buffer reallocated: cap %d → %d", cap(buf), cap(got))
	}
	// Capacity far beyond the peak: released down to 2× peak.
	peak := 2 * shrinkMinCap
	buf = make([]uint32, 0, 100*peak)
	got := shrinkScratch(buf, peak)
	if cap(got) > shrinkSlack*peak {
		t.Fatalf("outlier capacity kept: %d", cap(got))
	}
	if cap(got) < peak {
		t.Fatalf("shrunk below peak demand: %d < %d", cap(got), peak)
	}
	// Tiny peaks never go below the floor.
	buf = make([]uint32, 0, 1<<20)
	if got := shrinkScratch(buf, 1); cap(got) < shrinkMinCap {
		t.Fatalf("shrunk below floor: %d", cap(got))
	}
	// Length is always reset to zero.
	if got := shrinkScratch(make([]uint32, 7, 1<<20), 1); len(got) != 0 {
		t.Fatalf("shrinkScratch returned non-empty slice, len=%d", len(got))
	}
}

// TestBatchWidthOne ensures the degenerate width behaves exactly like the
// scalar sampler even through Seed rewinds.
func TestBatchWidthOne(t *testing.T) {
	g := testGraph(t, 200, 1)
	scalar, err := NewSampler(g, diffusion.LT, 13, false)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewBatchSampler(g, diffusion.LT, 99, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	batched.SampleManyInto(NewCollection(8), 25)
	batched.Seed(13) // rewind onto the scalar sampler's stream
	want, got := NewCollection(64), NewCollection(64)
	scalar.SampleManyInto(want, 100)
	batched.SampleManyInto(got, 100)
	if !collectionsEqual(want, got) {
		t.Fatal("width-1 batched sampler diverges from scalar after Seed rewind")
	}
}
