// Package rrset implements reverse-reachable (RR) set machinery: samplers
// for the IC and LT models (including the SUBSIM subset-sampling
// optimization), an arena-backed collection type, and the inverted
// node→RR-set index used by the maximum-coverage seed selection.
//
// A single run of DIIMM materializes millions of RR sets. Storing each as
// its own []uint32 would create millions of GC-tracked objects — the main
// scalability hazard of a Go implementation (see DESIGN.md). A Collection
// therefore packs all member nodes into one flat arena with an offset
// table, so the garbage collector sees O(1) objects regardless of θ.
package rrset

import "fmt"

// Collection is an append-only set of RR sets in arena storage.
// Not safe for concurrent mutation; each machine owns one Collection.
type Collection struct {
	nodes []uint32 // concatenated member nodes of all RR sets
	offs  []int64  // offs[i]..offs[i+1] delimits RR set i; len = Count()+1

	// edgesExamined accumulates, over all generated RR sets, the number of
	// incoming edges the sampler inspected — the w(R) quantity whose
	// expectation EPT drives the paper's running-time analysis (§III-D).
	edgesExamined int64
}

// NewCollection returns an empty collection with a capacity hint for the
// expected total member count.
func NewCollection(sizeHint int) *Collection {
	c := &Collection{
		nodes: make([]uint32, 0, sizeHint),
		offs:  make([]int64, 1, 1024),
	}
	return c
}

// Count returns the number of RR sets stored.
func (c *Collection) Count() int { return len(c.offs) - 1 }

// TotalSize returns the summed cardinality of all RR sets (the paper's
// "total size" column in Table IV).
func (c *Collection) TotalSize() int64 { return int64(len(c.nodes)) }

// EdgesExamined returns the cumulative edge probes spent generating the
// collection (Σ w(R)).
func (c *Collection) EdgesExamined() int64 { return c.edgesExamined }

// Set returns the members of RR set i. The slice aliases the arena and
// must not be modified.
func (c *Collection) Set(i int) []uint32 {
	return c.nodes[c.offs[i]:c.offs[i+1]]
}

// Append adds one RR set with the given members, recording that the
// sampler examined edgesProbes incoming edges to build it.
func (c *Collection) Append(members []uint32, edgeProbes int64) {
	c.nodes = append(c.nodes, members...)
	c.offs = append(c.offs, int64(len(c.nodes)))
	c.edgesExamined += edgeProbes
}

// AvgSize returns the mean RR-set cardinality (the empirical EPS).
func (c *Collection) AvgSize() float64 {
	if c.Count() == 0 {
		return 0
	}
	return float64(c.TotalSize()) / float64(c.Count())
}

// SizeHistogram returns counts of RR-set cardinalities in power-of-two
// bins: bin 0 holds empty sets, bin i>0 holds sizes in [2^(i-1), 2^i).
// The long tail of this histogram is what drives both memory and the
// greedy's update costs, so experiments report it alongside Table IV.
func (c *Collection) SizeHistogram() []int64 {
	bins := make([]int64, 34)
	for i := 0; i < c.Count(); i++ {
		size := int(c.offs[i+1] - c.offs[i])
		b := 0
		for s := size; s > 0; s >>= 1 {
			b++
		}
		if b >= len(bins) {
			b = len(bins) - 1
		}
		bins[b]++
	}
	return bins
}

// Index is an inverted node→RR-set index over a Collection prefix: for
// each node v, the ids of the RR sets that contain v. It is itself a CSR
// over flat arrays (same GC rationale as Collection). In the paper's
// notation the list for node v is I_i(v) on machine s_i.
type Index struct {
	start []int64
	ids   []uint32
	count int // number of RR sets indexed
}

// BuildIndex constructs the inverted index of the first c.Count() RR sets
// for a graph of n nodes. RR-set ids must fit in uint32.
func BuildIndex(c *Collection, n int) (*Index, error) {
	if c.Count() > 1<<31 {
		return nil, fmt.Errorf("rrset: %d RR sets exceed the uint32 id space", c.Count())
	}
	idx := &Index{
		start: make([]int64, n+1),
		ids:   make([]uint32, c.TotalSize()),
		count: c.Count(),
	}
	for _, v := range c.nodes {
		idx.start[v+1]++
	}
	for v := 0; v < n; v++ {
		idx.start[v+1] += idx.start[v]
	}
	pos := make([]int64, n)
	for i := 0; i < c.Count(); i++ {
		for _, v := range c.Set(i) {
			p := idx.start[v] + pos[v]
			idx.ids[p] = uint32(i)
			pos[v]++
		}
	}
	return idx, nil
}

// Covers returns the ids of RR sets containing node v. Aliases internal
// storage; do not modify.
func (idx *Index) Covers(v uint32) []uint32 {
	return idx.ids[idx.start[v]:idx.start[v+1]]
}

// Degree returns how many indexed RR sets contain v (the initial coverage
// Δ_i(v) of Algorithm 1 line 3).
func (idx *Index) Degree(v uint32) int {
	return int(idx.start[v+1] - idx.start[v])
}

// Count returns the number of RR sets the index covers.
func (idx *Index) Count() int { return idx.count }
