// Package rrset implements reverse-reachable (RR) set machinery: samplers
// for the IC and LT models (including the SUBSIM subset-sampling
// optimization), an arena-backed collection type, and the inverted
// node→RR-set index used by the maximum-coverage seed selection.
//
// A single run of DIIMM materializes millions of RR sets. Storing each as
// its own []uint32 would create millions of GC-tracked objects — the main
// scalability hazard of a Go implementation (see DESIGN.md). A Collection
// therefore packs all member nodes into one flat arena with an offset
// table, so the garbage collector sees O(1) objects regardless of θ.
package rrset

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Collection is an append-only set of RR sets in arena storage.
// Not safe for concurrent mutation; each machine owns one Collection.
type Collection struct {
	nodes []uint32 // concatenated member nodes of all RR sets
	offs  []int64  // offs[i]..offs[i+1] delimits RR set i; len = Count()+1

	// edgesExamined accumulates, over all generated RR sets, the number of
	// incoming edges the sampler inspected — the w(R) quantity whose
	// expectation EPT drives the paper's running-time analysis (§III-D).
	edgesExamined int64
}

// NewCollection returns an empty collection with a capacity hint for the
// expected total member count.
func NewCollection(sizeHint int) *Collection {
	c := &Collection{
		nodes: make([]uint32, 0, sizeHint),
		offs:  make([]int64, 1, 1024),
	}
	return c
}

// Count returns the number of RR sets stored.
func (c *Collection) Count() int { return len(c.offs) - 1 }

// TotalSize returns the summed cardinality of all RR sets (the paper's
// "total size" column in Table IV).
func (c *Collection) TotalSize() int64 { return int64(len(c.nodes)) }

// EdgesExamined returns the cumulative edge probes spent generating the
// collection (Σ w(R)).
func (c *Collection) EdgesExamined() int64 { return c.edgesExamined }

// Set returns the members of RR set i. The slice aliases the arena and
// must not be modified.
func (c *Collection) Set(i int) []uint32 {
	return c.nodes[c.offs[i]:c.offs[i+1]]
}

// Append adds one RR set with the given members, recording that the
// sampler examined edgesProbes incoming edges to build it.
func (c *Collection) Append(members []uint32, edgeProbes int64) {
	c.nodes = append(c.nodes, members...)
	c.offs = append(c.offs, int64(len(c.nodes)))
	c.edgesExamined += edgeProbes
}

// Reset truncates the collection to empty while keeping the arena
// capacity, so a reused collection reaches steady-state zero allocation.
func (c *Collection) Reset() {
	c.nodes = c.nodes[:0]
	c.offs = c.offs[:1]
	c.edgesExamined = 0
}

// AppendCollection bulk-appends every RR set of o to c, preserving order.
// It is the merge step of sharded generation: two flat copies instead of
// per-set Append calls.
func (c *Collection) AppendCollection(o *Collection) {
	base := int64(len(c.nodes))
	c.nodes = append(c.nodes, o.nodes...)
	for _, off := range o.offs[1:] {
		c.offs = append(c.offs, base+off)
	}
	c.edgesExamined += o.edgesExamined
}

// Patch replaces the members of the RR set at position Pos. It is the
// exchange format of dynamic-graph repair: a worker recomputes exactly
// the sets whose traversal a mutation could have changed and ships the
// new members, keyed by position, so every replica (master mirrors,
// checkpoints) can splice the same bytes into the same slots.
type Patch struct {
	Pos     int
	Members []uint32
}

// ApplyPatches rewrites the collection with each patched position
// replaced by its new members; all other sets keep their bytes and
// positions. The rebuild allocates fresh arenas, so Snapshots taken
// before the call remain valid views of the pre-repair sample (readers
// drain against the old epoch while the repair installs). Positions out
// of range or duplicated are an error; edgesExamined is preserved (it is
// a lifetime generation counter, not a property of the resident bytes).
func (c *Collection) ApplyPatches(patches []Patch) error {
	if len(patches) == 0 {
		return nil
	}
	count := c.Count()
	// Merge-walk over position order: the unpatched runs between
	// consecutive patches copy as single bulk appends and their offsets
	// shift by plain arithmetic, so the rewrite costs O(nodes) memcpy +
	// O(patches log patches), not a map probe per resident set.
	order := make([]int, len(patches))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return patches[order[a]].Pos < patches[order[b]].Pos })
	total := int64(len(c.nodes))
	for k, oi := range order {
		p := patches[oi]
		if p.Pos < 0 || p.Pos >= count {
			return fmt.Errorf("rrset: patch position %d out of range [0,%d)", p.Pos, count)
		}
		if k > 0 && patches[order[k-1]].Pos == p.Pos {
			return fmt.Errorf("rrset: duplicate patch for position %d", p.Pos)
		}
		total += int64(len(p.Members)) - (c.offs[p.Pos+1] - c.offs[p.Pos])
	}
	nodes := make([]uint32, 0, total)
	offs := make([]int64, 1, count+1)
	copyRun := func(from, to int) { // unpatched sets [from, to)
		if to <= from {
			return
		}
		base := int64(len(nodes)) - c.offs[from]
		nodes = append(nodes, c.nodes[c.offs[from]:c.offs[to]]...)
		at := len(offs)
		offs = offs[:at+(to-from)]
		for i, o := range c.offs[from+1 : to+1] {
			offs[at+i] = o + base
		}
	}
	prev := 0
	for _, oi := range order {
		p := patches[oi]
		copyRun(prev, p.Pos)
		nodes = append(nodes, p.Members...)
		offs = append(offs, int64(len(nodes)))
		prev = p.Pos + 1
	}
	copyRun(prev, count)
	c.nodes = nodes
	c.offs = offs
	return nil
}

// WireSize returns the number of bytes AppendWire adds: a u32 set count,
// then per set a u32 length plus its u32 members.
func (c *Collection) WireSize() int {
	return c.WireSizeRange(0)
}

// WireSizeRange returns the number of bytes AppendWireRange(b, from) adds.
func (c *Collection) WireSizeRange(from int) int {
	count := c.Count() - from
	if count <= 0 {
		return 4
	}
	return 4 + 4*count + 4*int(c.offs[c.Count()]-c.offs[from])
}

// AppendWire appends the collection's little-endian wire encoding to b —
// the gather-all payload layout (count u32, then len u32 + members u32*
// per set). The buffer is grown once and filled by index, which is
// measurably faster than appending one u32 at a time.
func (c *Collection) AppendWire(b []byte) []byte {
	return c.AppendWireRange(b, 0)
}

// AppendWireRange appends the wire encoding of the RR sets [from,
// Count()) to b, in the same layout as AppendWire. It is the payload of
// the incremental fetch a resident query service uses to pull only the
// sets a worker generated since the previous sync.
func (c *Collection) AppendWireRange(b []byte, from int) []byte {
	if from < 0 {
		from = 0
	}
	if from > c.Count() {
		from = c.Count()
	}
	off := len(b)
	need := c.WireSizeRange(from)
	if cap(b)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, b)
		b = grown
	}
	b = b[:off+need]
	binary.LittleEndian.PutUint32(b[off:], uint32(c.Count()-from))
	off += 4
	for i := from; i < c.Count(); i++ {
		set := c.nodes[c.offs[i]:c.offs[i+1]]
		binary.LittleEndian.PutUint32(b[off:], uint32(len(set)))
		off += 4
		for _, v := range set {
			binary.LittleEndian.PutUint32(b[off:], v)
			off += 4
		}
	}
	return b
}

// Snapshot is an immutable view of a Collection prefix. Because the
// collection is append-only, the arena bytes a snapshot references are
// never rewritten by later Appends (growth either extends in place past
// the snapshot's length or reallocates, leaving the old backing array
// intact), so a snapshot taken under a lock stays safe to read after the
// lock is released — the accessor a concurrent query service hands to
// readers while a grower extends the live collection. Reset breaks this
// guarantee (it reuses the arena in place): snapshots must not outlive a
// Reset of their collection.
type Snapshot struct {
	nodes []uint32
	offs  []int64
}

// Snapshot captures the current contents as an immutable view. The
// caller must synchronize the call itself against concurrent Appends
// (e.g. take it under the read side of the lock that guards growth).
func (c *Collection) Snapshot() Snapshot {
	return Snapshot{nodes: c.nodes, offs: c.offs}
}

// Count returns the number of RR sets in the snapshot.
func (s Snapshot) Count() int { return len(s.offs) - 1 }

// TotalSize returns the summed cardinality of the snapshot's RR sets.
func (s Snapshot) TotalSize() int64 {
	if s.Count() <= 0 {
		return 0
	}
	return s.offs[s.Count()]
}

// Set returns the members of RR set i; the slice aliases the arena and
// must not be modified.
func (s Snapshot) Set(i int) []uint32 {
	return s.nodes[s.offs[i]:s.offs[i+1]]
}

// AvgSize returns the mean RR-set cardinality (the empirical EPS).
func (c *Collection) AvgSize() float64 {
	if c.Count() == 0 {
		return 0
	}
	return float64(c.TotalSize()) / float64(c.Count())
}

// SizeHistogram returns counts of RR-set cardinalities in power-of-two
// bins: bin 0 holds empty sets, bin i>0 holds sizes in [2^(i-1), 2^i).
// The long tail of this histogram is what drives both memory and the
// greedy's update costs, so experiments report it alongside Table IV.
func (c *Collection) SizeHistogram() []int64 {
	bins := make([]int64, 34)
	for i := 0; i < c.Count(); i++ {
		size := int(c.offs[i+1] - c.offs[i])
		b := 0
		for s := size; s > 0; s >>= 1 {
			b++
		}
		if b >= len(bins) {
			b = len(bins) - 1
		}
		bins[b]++
	}
	return bins
}

// Index is an inverted node→RR-set index over a Collection prefix: for
// each node v, the ids of the RR sets that contain v. In the paper's
// notation the list for node v is I_i(v) on machine s_i.
//
// The index is segmented: each growth increment of the collection becomes
// one CSR segment over flat arrays (same GC rationale as Collection), so
// extending the index after a DIIMM doubling round costs O(new RR size)
// instead of an O(total size) rebuild. Segments cover disjoint ascending
// RR-id ranges, so per-node id lists stay globally sorted when segments
// are visited in order.
type Index struct {
	n     int // item-space size (graph nodes)
	count int // number of RR sets indexed
	segs  []indexSeg

	// Patch state (see ApplyPatches): repaired RR sets change membership
	// in place, which the CSR segments cannot express by resizing. A
	// posting removed by a patch is tombstoned by setting DeadPosting on
	// its id (preserving the masked ascending order, so binary search
	// still works); a posting added by a patch lands in the per-node
	// overlay, exposed to consumers as one extra virtual segment. dead
	// and overlayLen track the accumulated debt that triggers a
	// compacting rebuild; degAdj corrects Degree for both.
	overlay    map[uint32][]uint32
	overlayLen int
	dead       int
	degAdj     []int32

	// fullBuilds counts from-scratch constructions (instrumentation for
	// the incremental-maintenance guarantee; see Worker.ensureIndex).
	fullBuilds int
}

// DeadPosting marks a tombstoned id inside an index segment's posting
// list: a repaired RR set no longer containing the node. Consumers
// iterating SegCovers or Covers must skip ids with this bit set. Live
// ids never carry it (BuildIndex rejects collections with 2^31 sets).
const DeadPosting = 1 << 31

// indexSeg is one CSR segment covering RR sets [from, from+countable).
type indexSeg struct {
	from  int // first RR-set id this segment covers
	start []int64
	ids   []uint32
}

// maxIndexSegments bounds segment-chain length. DIIMM's doubling schedule
// produces O(log θ) segments, far below this; a pathological caller issuing
// thousands of tiny increments triggers a compacting full rebuild instead
// of degrading every Covers call.
const maxIndexSegments = 64

// BuildIndex constructs the inverted index of the first c.Count() RR sets
// for a graph of n nodes. RR-set ids must fit in uint32.
func BuildIndex(c *Collection, n int) (*Index, error) {
	idx := &Index{n: n, fullBuilds: 1}
	if err := idx.appendSeg(c, 0); err != nil {
		return nil, err
	}
	return idx, nil
}

// AppendFrom extends the index with the RR sets [from, c.Count()) of c,
// where from must equal the number of sets already indexed. The work is
// O(n + size of the new sets) — it never touches previously indexed
// segments (unless the segment cap forces a compaction).
func (idx *Index) AppendFrom(c *Collection, from int) error {
	if from != idx.count {
		return fmt.Errorf("rrset: AppendFrom at %d but %d RR sets indexed", from, idx.count)
	}
	if from > c.Count() {
		return fmt.Errorf("rrset: index covers %d RR sets but the collection holds %d", from, c.Count())
	}
	if from == c.Count() {
		return nil
	}
	if len(idx.segs) >= maxIndexSegments {
		idx.reset()
		from = 0
	}
	return idx.appendSeg(c, from)
}

// appendSeg builds one CSR segment over sets [from, c.Count()).
func (idx *Index) appendSeg(c *Collection, from int) error {
	if c.Count() > 1<<31 {
		return fmt.Errorf("rrset: %d RR sets exceed the uint32 id space", c.Count())
	}
	lo, hi := c.offs[from], c.offs[c.Count()]
	seg := indexSeg{
		from:  from,
		start: make([]int64, idx.n+1),
		ids:   make([]uint32, hi-lo),
	}
	for _, v := range c.nodes[lo:hi] {
		seg.start[v+1]++
	}
	for v := 0; v < idx.n; v++ {
		seg.start[v+1] += seg.start[v]
	}
	// Fill using start[v] as the write cursor, then shift the offsets back
	// by one slot to restore the CSR invariant (avoids a second O(n) pos
	// array).
	for i := from; i < c.Count(); i++ {
		for _, v := range c.Set(i) {
			seg.ids[seg.start[v]] = uint32(i)
			seg.start[v]++
		}
	}
	for v := idx.n; v > 0; v-- {
		seg.start[v] = seg.start[v-1]
	}
	seg.start[0] = 0
	idx.segs = append(idx.segs, seg)
	idx.count = c.Count()
	return nil
}

func (s *indexSeg) covers(v uint32) []uint32 {
	return s.ids[s.start[v]:s.start[v+1]]
}

// Covers returns the ids of RR sets containing node v, in ascending
// order (plus overlay postings, unordered, at the tail of a patched
// index — and possibly DeadPosting-tombstoned entries, which the caller
// must skip). With a single unpatched segment (any freshly built index)
// the result aliases internal storage and must not be modified;
// otherwise it concatenates the per-segment lists into a fresh slice.
// Hot paths should prefer NumSegments/SegCovers, which never allocate.
func (idx *Index) Covers(v uint32) []uint32 {
	if len(idx.segs) == 1 && idx.overlay == nil {
		return idx.segs[0].covers(v)
	}
	var out []uint32
	for i := range idx.segs {
		out = append(out, idx.segs[i].covers(v)...)
	}
	return append(out, idx.overlay[v]...)
}

// NumSegments returns how many segments the index holds: 1 after a full
// build, +1 per incremental AppendFrom, +1 virtual overlay segment while
// the index carries patches (see ApplyPatches).
func (idx *Index) NumSegments() int {
	if idx.overlay != nil {
		return len(idx.segs) + 1
	}
	return len(idx.segs)
}

// SegCovers returns segment si's ids of RR sets containing v. The slice
// aliases internal storage; do not modify. Iterating si in ascending
// order yields the same id sequence as Covers, with zero allocation.
// On a patched index, entries carrying DeadPosting must be skipped and
// the final (overlay) segment's ids are not in ascending range order.
func (idx *Index) SegCovers(si int, v uint32) []uint32 {
	if si < len(idx.segs) {
		return idx.segs[si].covers(v)
	}
	return idx.overlay[v]
}

// Degree returns how many indexed RR sets contain v (the initial coverage
// Δ_i(v) of Algorithm 1 line 3). Exact on patched indexes: the per-node
// adjustment counts tombstones out and overlay postings in.
func (idx *Index) Degree(v uint32) int {
	var d int64
	for i := range idx.segs {
		d += idx.segs[i].start[v+1] - idx.segs[i].start[v]
	}
	if idx.degAdj != nil {
		d += int64(idx.degAdj[v])
	}
	return int(d)
}

// Count returns the number of RR sets the index covers.
func (idx *Index) Count() int { return idx.count }

// FullBuilds returns how many times the index was constructed from
// scratch (1 for BuildIndex; incremental AppendFrom calls do not add to
// it unless the segment cap forces a compaction).
func (idx *Index) FullBuilds() int { return idx.fullBuilds }
