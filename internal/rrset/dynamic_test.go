package rrset

import (
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// dynGraph builds a mutation-enabled preferential graph. IC gets
// trivalency weights; LT gets a small uniform weight so per-node
// incoming sums stay below 1 even after churn adds edges.
func dynGraph(t testing.TB, n int, model diffusion.Model) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: n, AvgDegree: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if model == diffusion.LT {
		p := float32(0.5 / float64(g.MaxInDegree()))
		g, err = graph.AssignWeights(g, graph.UniformWeight, p, 0)
	} else {
		g, err = graph.AssignWeights(g, graph.Trivalency, 0, 17)
	}
	if err != nil {
		t.Fatal(err)
	}
	g.EnableMutation()
	return g
}

// churn applies a deterministic batch of removals (first live edges in
// CSR order) and additions (pseudo-random absent pairs) to g.
func churn(t testing.TB, g *graph.Graph, removes, adds int) []graph.EdgeDelta {
	t.Helper()
	var ops []graph.EdgeUpdate
	g.Edges(func(from, to uint32, prob float32) {
		if len(ops) < removes && prob > 0 {
			ops = append(ops, graph.EdgeUpdate{Op: graph.OpRemove, From: from, To: to})
		}
	})
	rng := xrand.New(uint64(g.Version())*0x9e37 + 5)
	n := uint32(g.NumNodes())
	for added := 0; added < adds; {
		u, v := rng.Uint32n(n), rng.Uint32n(n)
		if u == v {
			continue
		}
		dup := false
		for _, op := range ops {
			if op.Op == graph.OpAdd && op.From == u && op.To == v {
				dup = true
				break
			}
		}
		if dup || hasEdge(g, u, v) {
			continue
		}
		ops = append(ops, graph.EdgeUpdate{Op: graph.OpAdd, From: u, To: v, Prob: 0.02})
		added++
	}
	deltas, fresh, err := g.ApplyUpdates(g.Version()+1, ops)
	if err != nil || !fresh {
		t.Fatalf("churn: fresh=%v err=%v", fresh, err)
	}
	return deltas
}

func hasEdge(g *graph.Graph, u, v uint32) bool {
	adj, probs := g.OutNeighbors(u)
	for i, w := range adj {
		if w == v && probs[i] > 0 {
			return true
		}
	}
	for _, e := range g.OutOverlay(u) {
		if e.Node == v && e.Prob > 0 {
			return true
		}
	}
	return false
}

// A mutated graph must sample identically before and after Compact: the
// fold preserves every coin's slot position, so the scan stream lands on
// the same draws. This is the positional-stability contract repair
// relies on.
func TestDynamicSampleCompactInvariance(t *testing.T) {
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		a, b := dynGraph(t, 300, model), dynGraph(t, 300, model)
		for _, g := range []*graph.Graph{a, b} {
			churn(t, g, 20, 20)
			churn(t, g, 0, 10)
		}
		if a.ContentHash() != b.ContentHash() {
			t.Fatal("twin graphs diverged before compact")
		}
		b.Compact()
		sa, err := NewSampler(a, model, 7, false)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewSampler(b, model, 7, false)
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := NewCollection(1024), NewCollection(1024)
		sa.SampleManyInto(ca, 200)
		sb.SampleManyInto(cb, 200)
		if ca.Count() != cb.Count() {
			t.Fatalf("%v: counts %d vs %d", model, ca.Count(), cb.Count())
		}
		for i := 0; i < ca.Count(); i++ {
			x, y := ca.Set(i), cb.Set(i)
			if len(x) != len(y) {
				t.Fatalf("%v set %d: sizes %d vs %d", model, i, len(x), len(y))
			}
			for j := range x {
				if x[j] != y[j] {
					t.Fatalf("%v set %d diverged at member %d", model, i, j)
				}
			}
		}
	}
}

// ResampleLane(LaneSeed(base, t)) must reproduce set t of stream base
// byte for byte when the graph is unchanged — the identity that makes a
// repaired slot exactly the set the original stream would have drawn.
func TestResampleLaneReproducesSets(t *testing.T) {
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		g := dynGraph(t, 300, model)
		churn(t, g, 10, 10)
		const base, count = uint64(9), 100
		s, err := NewSampler(g, model, base, false)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollection(1024)
		s.SampleManyInto(c, count)
		repair, err := NewSampler(g, model, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < count; i++ {
			got, _ := repair.ResampleLane(xrand.LaneSeed(base, uint64(i)))
			want := c.Set(i)
			if len(got) != len(want) {
				t.Fatalf("%v lane %d: size %d, want %d", model, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%v lane %d diverged at member %d", model, i, j)
				}
			}
		}
	}
}

// AppendLaneSeeds must map every upcoming merge position to the lane
// seed its shard will actually use, across rounds of different sizes,
// and must not advance any stream.
func TestAppendLaneSeedsMatchesGeneration(t *testing.T) {
	g := dynGraph(t, 300, diffusion.IC)
	ss, err := NewShardedSampler(g, diffusion.IC, 21, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(1024)
	var lanes []uint64
	for _, round := range []int64{10, 7, 1, 13} {
		peek := ss.AppendLaneSeeds(nil, round)
		again := ss.AppendLaneSeeds(nil, round)
		for i := range peek {
			if peek[i] != again[i] {
				t.Fatal("AppendLaneSeeds advanced state between calls")
			}
		}
		lanes = append(lanes, peek...)
		ss.SampleManyInto(c, round)
	}
	if len(lanes) != c.Count() {
		t.Fatalf("%d lane seeds for %d sets", len(lanes), c.Count())
	}
	repair, err := NewSampler(g, diffusion.IC, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Count(); i++ {
		got, _ := repair.ResampleLane(lanes[i])
		want := c.Set(i)
		if len(got) != len(want) {
			t.Fatalf("set %d: resampled size %d, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("set %d diverged at member %d", i, j)
			}
		}
	}
}

func TestApplyPatches(t *testing.T) {
	c := NewCollection(16)
	c.Append([]uint32{1, 2, 3}, 0)
	c.Append([]uint32{4}, 0)
	c.Append([]uint32{5, 6}, 0)
	snap := c.Snapshot()
	if err := c.ApplyPatches([]Patch{
		{Pos: 0, Members: []uint32{9, 8, 7, 6}},
		{Pos: 2, Members: nil},
	}); err != nil {
		t.Fatal(err)
	}
	want := [][]uint32{{9, 8, 7, 6}, {4}, {}}
	for i, w := range want {
		got := c.Set(i)
		if len(got) != len(w) {
			t.Fatalf("set %d = %v, want %v", i, got, w)
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("set %d = %v, want %v", i, got, w)
			}
		}
	}
	if c.TotalSize() != 5 {
		t.Fatalf("total size %d", c.TotalSize())
	}
	// The pre-patch snapshot must still see the old bytes (fresh arenas).
	if s := snap.Set(0); len(s) != 3 || s[0] != 1 {
		t.Fatalf("snapshot mutated: %v", s)
	}
	if err := c.ApplyPatches([]Patch{{Pos: 3, Members: nil}}); err == nil {
		t.Fatal("out-of-range patch accepted")
	}
	if err := c.ApplyPatches([]Patch{{Pos: 1}, {Pos: 1}}); err == nil {
		t.Fatal("duplicate patch accepted")
	}
	if err := c.ApplyPatches(nil); err != nil {
		t.Fatal(err)
	}
}

// Satellite: the inverted index stays exact across ≥3 incremental growth
// epochs interleaved with repairs (postings pruned and replaced via
// ApplyPatches + rebuild), matching a from-scratch build node for node.
func TestIndexAppendFromEpochsWithRepairs(t *testing.T) {
	g := dynGraph(t, 200, diffusion.IC)
	s, err := NewSampler(g, diffusion.IC, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(1024)
	check := func(idx *Index, stage string) {
		t.Helper()
		fresh, err := BuildIndex(c, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		if idx.Count() != fresh.Count() {
			t.Fatalf("%s: index covers %d sets, rebuild covers %d", stage, idx.Count(), fresh.Count())
		}
		for v := 0; v < g.NumNodes(); v++ {
			a, b := idx.Covers(uint32(v)), fresh.Covers(uint32(v))
			if len(a) != len(b) {
				t.Fatalf("%s: node %d postings %v vs rebuild %v", stage, v, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: node %d postings %v vs rebuild %v", stage, v, a, b)
				}
			}
			if idx.Degree(uint32(v)) != len(b) {
				t.Fatalf("%s: node %d degree %d, want %d", stage, v, idx.Degree(uint32(v)), len(b))
			}
		}
	}

	// Epoch 1: initial build.
	s.SampleManyInto(c, 60)
	idx, err := BuildIndex(c, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	check(idx, "epoch 1")

	// Repair: prune postings of three sets, rebuild (as the worker does
	// after splicing patches), then keep growing incrementally.
	if err := c.ApplyPatches([]Patch{
		{Pos: 5, Members: []uint32{0, 1}},
		{Pos: 17, Members: nil},
		{Pos: 42, Members: []uint32{9}},
	}); err != nil {
		t.Fatal(err)
	}
	if idx, err = BuildIndex(c, g.NumNodes()); err != nil {
		t.Fatal(err)
	}
	check(idx, "repair 1")

	// Epochs 2-4: incremental growth, with another repair in between.
	for epoch, grow := range []int64{40, 30, 50} {
		s.SampleManyInto(c, grow)
		if err := idx.AppendFrom(c, idx.Count()); err != nil {
			t.Fatal(err)
		}
		check(idx, "growth epoch")
		if epoch == 1 {
			if err := c.ApplyPatches([]Patch{{Pos: 70, Members: []uint32{2, 3, 4}}}); err != nil {
				t.Fatal(err)
			}
			if idx, err = BuildIndex(c, g.NumNodes()); err != nil {
				t.Fatal(err)
			}
			check(idx, "repair 2")
		}
	}
	if idx.NumSegments() < 2 {
		t.Fatalf("incremental path not exercised: %d segments", idx.NumSegments())
	}
}
