package rrset

import (
	"testing"

	"dimm/internal/diffusion"
)

// buildIncrementally grows an index over c in the given chunk schedule.
func buildIncrementally(t *testing.T, c *Collection, n int, chunks []int) *Index {
	t.Helper()
	idx, err := BuildIndex(prefix(c, chunks[0]), n)
	if err != nil {
		t.Fatal(err)
	}
	have := chunks[0]
	for _, add := range chunks[1:] {
		if err := idx.AppendFrom(prefix(c, have+add), have); err != nil {
			t.Fatal(err)
		}
		have += add
	}
	return idx
}

// prefix returns a collection view holding the first count RR sets of c.
func prefix(c *Collection, count int) *Collection {
	return &Collection{nodes: c.nodes[:c.offs[count]], offs: c.offs[:count+1]}
}

func TestIndexAppendFromMatchesFullBuild(t *testing.T) {
	g := testGraph(t, 250, 6)
	s, err := NewSampler(g, diffusion.IC, 17, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(64)
	s.SampleManyInto(c, 700)
	n := g.NumNodes()

	full, err := BuildIndex(c, n)
	if err != nil {
		t.Fatal(err)
	}
	// A DIIMM-style doubling schedule and a ragged one.
	for _, chunks := range [][]int{{100, 100, 200, 300}, {1, 699}, {350, 1, 349}} {
		incr := buildIncrementally(t, c, n, chunks)
		if incr.Count() != full.Count() {
			t.Fatalf("chunks %v: count %d, want %d", chunks, incr.Count(), full.Count())
		}
		if incr.NumSegments() != len(chunks) {
			t.Fatalf("chunks %v: %d segments, want %d", chunks, incr.NumSegments(), len(chunks))
		}
		if incr.FullBuilds() != 1 {
			t.Fatalf("chunks %v: %d full builds, want 1", chunks, incr.FullBuilds())
		}
		for v := 0; v < n; v++ {
			want := full.Covers(uint32(v))
			got := incr.Covers(uint32(v))
			if len(want) != len(got) {
				t.Fatalf("chunks %v: node %d: %d covers, want %d", chunks, v, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("chunks %v: node %d: covers diverge at %d: %d != %d", chunks, v, i, got[i], want[i])
				}
			}
			if incr.Degree(uint32(v)) != full.Degree(uint32(v)) {
				t.Fatalf("chunks %v: node %d: degree %d, want %d", chunks, v, incr.Degree(uint32(v)), full.Degree(uint32(v)))
			}
			// The zero-alloc segment iteration must yield the same sequence.
			var seg []uint32
			for si := 0; si < incr.NumSegments(); si++ {
				seg = append(seg, incr.SegCovers(si, uint32(v))...)
			}
			if len(seg) != len(want) {
				t.Fatalf("chunks %v: node %d: segment iteration yields %d ids, want %d", chunks, v, len(seg), len(want))
			}
			for i := range want {
				if seg[i] != want[i] {
					t.Fatalf("chunks %v: node %d: segment iteration diverges at %d", chunks, v, i)
				}
			}
		}
	}
}

func TestIndexAppendFromValidation(t *testing.T) {
	c := NewCollection(8)
	c.Append([]uint32{0, 1}, 0)
	c.Append([]uint32{2}, 0)
	idx, err := BuildIndex(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.AppendFrom(c, 1); err == nil {
		t.Fatal("want error when from != indexed count")
	}
	if err := idx.AppendFrom(c, 2); err != nil {
		t.Fatalf("no-op append: %v", err)
	}
	if idx.NumSegments() != 1 || idx.Count() != 2 {
		t.Fatalf("no-op append changed the index: %d segs, %d sets", idx.NumSegments(), idx.Count())
	}
}

// TestIndexSegmentCapCompacts drives the pathological many-tiny-increments
// pattern past maxIndexSegments and checks the index compacts into a
// single segment (counted as one more full build) without losing data.
func TestIndexSegmentCapCompacts(t *testing.T) {
	c := NewCollection(8)
	c.Append([]uint32{0}, 0)
	idx, err := BuildIndex(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= maxIndexSegments+5; i++ {
		c.Append([]uint32{uint32(i % 3)}, 0)
		if err := idx.AppendFrom(c, i); err != nil {
			t.Fatal(err)
		}
	}
	if idx.NumSegments() > maxIndexSegments {
		t.Fatalf("%d segments exceed the cap %d", idx.NumSegments(), maxIndexSegments)
	}
	if idx.FullBuilds() != 2 {
		t.Fatalf("%d full builds, want 2 (initial + one compaction)", idx.FullBuilds())
	}
	if idx.Count() != c.Count() {
		t.Fatalf("index covers %d sets, want %d", idx.Count(), c.Count())
	}
	full, err := BuildIndex(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 3; v++ {
		if idx.Degree(v) != full.Degree(v) {
			t.Fatalf("node %d degree %d after compaction, want %d", v, idx.Degree(v), full.Degree(v))
		}
	}
}
