package rrset

import (
	"fmt"
	"slices"
	"sort"
)

// This file is the in-place repair path of the inverted index. A graph
// update regenerates a small fraction of the resident RR sets at their
// original positions (see internal/mutate); rebuilding the whole index
// for that — the historic behavior — costs O(total RR size) per update
// and dominates the repair wall clock. ApplyPatches instead edits only
// the postings whose membership actually changed: O(changed postings),
// independent of theta.
//
// Representation: removals tombstone the posting in its CSR segment by
// setting DeadPosting on the id (masked order stays ascending, so the
// posting is found by binary search); additions go to a per-node overlay
// exposed as one virtual trailing segment. Re-additions resurrect the
// tombstone in place when one exists. Consumers skip dead entries; the
// coverage kernel drops to its sequential path while an index is
// patched, because the overlay breaks the globally-ascending id order
// its parallel chunking relies on. Accumulated debt (tombstones +
// overlay) beyond a quarter of the postings triggers a compacting full
// rebuild, keeping scan overhead bounded amortized.

// Patched reports whether the index carries in-place patches (tombstoned
// or overlay postings). A patched index is exact but its posting lists
// are no longer globally ascending; order-dependent consumers (the
// parallel coverage kernel) must fall back to sequential scans.
func (idx *Index) Patched() bool { return idx.overlay != nil || idx.dead > 0 }

// ApplyPatches edits the index in place to reflect the membership
// patches about to be applied to c. It MUST be called before
// c.ApplyPatches(patches): the pre-patch membership of each patched set
// is read from c to compute the posting diff. Positions are unchanged
// by repair, so only memberships move.
func (idx *Index) ApplyPatches(c *Collection, patches []Patch) error {
	if idx.count != c.Count() {
		return fmt.Errorf("rrset: index covers %d RR sets but the collection holds %d", idx.count, c.Count())
	}
	if len(patches) == 0 {
		return nil
	}
	// Compact first when the accumulated debt got too big: the index
	// still matches c's pre-patch membership here, so a full rebuild
	// from c is valid, and the patches below then apply to fresh state.
	if idx.dead+idx.overlayLen > idx.postings()/4 {
		idx.reset()
		if err := idx.appendSeg(c, 0); err != nil {
			return err
		}
	}
	if idx.degAdj == nil {
		idx.degAdj = make([]int32, idx.n)
	}
	if idx.overlay == nil {
		idx.overlay = make(map[uint32][]uint32)
	}
	var oldBuf, newBuf []uint32
	for _, p := range patches {
		if p.Pos < 0 || p.Pos >= idx.count {
			return fmt.Errorf("rrset: patch position %d outside the %d indexed RR sets", p.Pos, idx.count)
		}
		t := uint32(p.Pos)
		oldBuf = append(oldBuf[:0], c.Set(p.Pos)...)
		newBuf = append(newBuf[:0], p.Members...)
		slices.Sort(oldBuf)
		slices.Sort(newBuf)
		// Two-pointer diff over the sorted memberships: postings present
		// only in old die, postings present only in new are born.
		i, j := 0, 0
		for i < len(oldBuf) || j < len(newBuf) {
			switch {
			case j == len(newBuf) || (i < len(oldBuf) && oldBuf[i] < newBuf[j]):
				if err := idx.killPosting(oldBuf[i], t); err != nil {
					return err
				}
				i++
			case i == len(oldBuf) || newBuf[j] < oldBuf[i]:
				if err := idx.addPosting(newBuf[j], t); err != nil {
					return err
				}
				j++
			default: // membership unchanged
				i++
				j++
			}
		}
	}
	return nil
}

// postings returns the total number of segment postings (live + dead).
func (idx *Index) postings() int {
	var total int
	for i := range idx.segs {
		total += len(idx.segs[i].ids)
	}
	return total
}

// reset drops all index state for a from-scratch rebuild.
func (idx *Index) reset() {
	idx.segs = idx.segs[:0]
	idx.count = 0
	idx.overlay = nil
	idx.overlayLen = 0
	idx.dead = 0
	idx.degAdj = nil
	idx.fullBuilds++
}

// killPosting removes the live posting (v, t): spliced out of the
// overlay if it was patch-born, tombstoned in its owning segment
// otherwise. An absent posting means the index diverged from the
// collection — surfaced as an error, never silently absorbed.
func (idx *Index) killPosting(v, t uint32) error {
	if ov, ok := idx.overlay[v]; ok {
		for i, id := range ov {
			if id == t {
				idx.overlay[v] = append(ov[:i], ov[i+1:]...)
				idx.overlayLen--
				idx.degAdj[v]--
				return nil
			}
		}
	}
	list, pos, ok := idx.findSegPosting(v, t)
	if !ok || list[pos]&DeadPosting != 0 {
		return fmt.Errorf("rrset: removing posting (%d, %d) the index does not hold", v, t)
	}
	list[pos] |= DeadPosting
	idx.dead++
	idx.degAdj[v]--
	return nil
}

// addPosting inserts the posting (v, t): resurrecting its tombstone in
// place when the segment holds one, appending to the overlay otherwise.
func (idx *Index) addPosting(v, t uint32) error {
	if list, pos, ok := idx.findSegPosting(v, t); ok {
		if list[pos]&DeadPosting == 0 {
			return fmt.Errorf("rrset: adding posting (%d, %d) the index already holds", v, t)
		}
		list[pos] &^= DeadPosting
		idx.dead--
		idx.degAdj[v]++
		return nil
	}
	idx.overlay[v] = append(idx.overlay[v], t)
	idx.overlayLen++
	idx.degAdj[v]++
	return nil
}

// findSegPosting locates id t in v's posting list of the segment owning
// t's id range, by binary search over the tombstone-masked (ascending)
// ids. Returns the list, the position, and whether the posting exists.
func (idx *Index) findSegPosting(v, t uint32) ([]uint32, int, bool) {
	si := sort.Search(len(idx.segs), func(i int) bool { return idx.segs[i].from > int(t) }) - 1
	if si < 0 {
		return nil, 0, false
	}
	list := idx.segs[si].covers(v)
	pos := sort.Search(len(list), func(i int) bool { return list[i]&^DeadPosting >= t })
	if pos == len(list) || list[pos]&^DeadPosting != t {
		return nil, 0, false
	}
	return list, pos, true
}
