package rrset

import (
	"sort"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/xrand"
)

// livePostings collects the non-tombstoned RR ids covering v through the
// segment iteration (the view every consumer sees), sorted: a patched
// index's overlay postings trail the segment postings out of global
// order, and coverage consumers are order-invariant by design.
func livePostings(idx *Index, v uint32) []uint32 {
	var out []uint32
	for si := 0; si < idx.NumSegments(); si++ {
		for _, id := range idx.SegCovers(si, v) {
			if id&DeadPosting != 0 {
				continue
			}
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAgainstFresh asserts the patched index and a from-scratch build
// over the patched collection agree on every node's postings and degree.
func checkAgainstFresh(t *testing.T, idx *Index, c *Collection, n int, when string) {
	t.Helper()
	fresh, err := BuildIndex(c, n)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); int(v) < n; v++ {
		want := fresh.Covers(v)
		got := livePostings(idx, v)
		if len(got) != len(want) {
			t.Fatalf("%s: node %d has %d live postings, want %d", when, v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: node %d postings diverge at %d: %d != %d", when, v, i, got[i], want[i])
			}
		}
		if idx.Degree(v) != fresh.Degree(v) {
			t.Fatalf("%s: node %d degree %d, want %d", when, v, idx.Degree(v), fresh.Degree(v))
		}
	}
}

// randomPatches rewrites count random distinct slots with random distinct
// membership (possibly empty, possibly overlapping the old one).
func randomPatches(r *xrand.Rand, c *Collection, n, count int) []Patch {
	seen := make(map[int]bool)
	var patches []Patch
	for len(patches) < count {
		pos := int(r.Uint32n(uint32(c.Count())))
		if seen[pos] {
			continue
		}
		seen[pos] = true
		size := int(r.Uint32n(6))
		members := make([]uint32, 0, size)
		used := make(map[uint32]bool)
		for len(members) < size {
			v := r.Uint32n(uint32(n))
			if !used[v] {
				used[v] = true
				members = append(members, v)
			}
		}
		patches = append(patches, Patch{Pos: pos, Members: members})
	}
	return patches
}

// TestIndexApplyPatchesMatchesFullBuild is the in-place repair theorem
// for the inverted index: after any sequence of patch rounds — and an
// AppendFrom growth in between — the tombstone+overlay index exposes
// exactly the postings and degrees a from-scratch build over the patched
// collection would.
func TestIndexApplyPatchesMatchesFullBuild(t *testing.T) {
	g := testGraph(t, 200, 5)
	s, err := NewSampler(g, diffusion.IC, 23, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(64)
	s.SampleManyInto(c, 500)
	n := g.NumNodes()

	// Multi-segment start, so patches land across segment boundaries.
	idx := buildIncrementally(t, c, n, []int{200, 150, 150})
	r := xrand.New(99)
	for round := 0; round < 4; round++ {
		patches := randomPatches(r, c, n, 40)
		// Index first: it diffs against pre-patch membership.
		if err := idx.ApplyPatches(c, patches); err != nil {
			t.Fatal(err)
		}
		if err := c.ApplyPatches(patches); err != nil {
			t.Fatal(err)
		}
		checkAgainstFresh(t, idx, c, n, "after patch round")
	}
	if !idx.Patched() {
		t.Fatal("index reports unpatched after live patch rounds")
	}

	// Growth after patching: the appended segment and the patch state
	// must coexist.
	s.SampleManyInto(c, 120)
	if err := idx.AppendFrom(c, 500); err != nil {
		t.Fatal(err)
	}
	checkAgainstFresh(t, idx, c, n, "after post-patch growth")

	// And patches over the grown collection, including the new segment.
	patches := randomPatches(r, c, n, 40)
	if err := idx.ApplyPatches(c, patches); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyPatches(patches); err != nil {
		t.Fatal(err)
	}
	checkAgainstFresh(t, idx, c, n, "after post-growth patches")
}

// TestIndexApplyPatchesCompacts drives enough churn through a small
// index that the dead+overlay mass crosses the compaction threshold and
// the index rebuilds itself into clean segments.
func TestIndexApplyPatchesCompacts(t *testing.T) {
	const n = 16
	c := NewCollection(8)
	for i := 0; i < 32; i++ {
		c.Append([]uint32{uint32(i % n), uint32((i + 5) % n)}, 0)
	}
	idx, err := BuildIndex(c, n)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	for round := 0; ; round++ {
		if round > 200 {
			t.Fatal("no compaction after 200 rounds of full-collection churn")
		}
		patches := randomPatches(r, c, n, 16)
		if err := idx.ApplyPatches(c, patches); err != nil {
			t.Fatal(err)
		}
		if err := c.ApplyPatches(patches); err != nil {
			t.Fatal(err)
		}
		if idx.FullBuilds() > 1 {
			break
		}
	}
	// A compaction folds the overlay and drops the tombstones before the
	// triggering round's patches land on the clean segments; the index
	// stays exact throughout.
	checkAgainstFresh(t, idx, c, n, "after compaction")
}

// TestIndexApplyPatchesValidation covers the refuse paths: stale index
// (count mismatch) and out-of-range patch positions.
func TestIndexApplyPatchesValidation(t *testing.T) {
	c := NewCollection(8)
	c.Append([]uint32{0, 1}, 0)
	c.Append([]uint32{2}, 0)
	idx, err := BuildIndex(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.ApplyPatches(c, []Patch{{Pos: 2, Members: []uint32{3}}}); err == nil {
		t.Fatal("want error for a patch position beyond the collection")
	}
	c.Append([]uint32{3}, 0)
	if err := idx.ApplyPatches(c, []Patch{{Pos: 0, Members: []uint32{3}}}); err == nil {
		t.Fatal("want error when the index lags the collection")
	}
}
