package rrset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary persistence for RR-set collections. Generating θ in the hundreds
// of millions is the expensive phase of every algorithm here; checkpoints
// let a long sampling run be reused across experiments (e.g. sweeping k
// or rerunning selection) without regenerating.
//
// Layout: magic, count, totalSize, edgesExamined, then the offset table
// (count+1 int64) and the node arena (totalSize uint32), little-endian.
const collectionMagic = 0x52525331 // "RRS1"

// WriteTo serializes the collection. It implements io.WriterTo.
func (c *Collection) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	for _, v := range []int64{collectionMagic, int64(c.Count()), c.TotalSize(), c.edgesExamined} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	if err := put(c.offs); err != nil {
		return written, err
	}
	if err := put(c.nodes); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadCollection deserializes a collection written by WriteTo.
func ReadCollection(r io.Reader) (*Collection, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, count, totalSize, edges int64
	for _, p := range []*int64{&magic, &count, &totalSize, &edges} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("rrset: reading collection header: %w", err)
		}
	}
	if magic != collectionMagic {
		return nil, fmt.Errorf("rrset: bad magic %#x (not an RRS1 collection)", magic)
	}
	if count < 0 || totalSize < 0 || edges < 0 {
		return nil, fmt.Errorf("rrset: corrupt collection header (count %d, size %d, edges %d)", count, totalSize, edges)
	}
	c := &Collection{
		nodes:         make([]uint32, totalSize),
		offs:          make([]int64, count+1),
		edgesExamined: edges,
	}
	if err := binary.Read(br, binary.LittleEndian, c.offs); err != nil {
		return nil, fmt.Errorf("rrset: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, c.nodes); err != nil {
		return nil, fmt.Errorf("rrset: reading arena: %w", err)
	}
	if c.offs[0] != 0 || c.offs[count] != totalSize {
		return nil, fmt.Errorf("rrset: corrupt offset table")
	}
	for i := int64(0); i < count; i++ {
		if c.offs[i] > c.offs[i+1] {
			return nil, fmt.Errorf("rrset: offset table not monotone at %d", i)
		}
	}
	return c, nil
}

// SaveFile writes the collection to path.
func (c *Collection) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCollectionFile reads a collection from path.
func LoadCollectionFile(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCollection(f)
}
