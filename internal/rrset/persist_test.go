package rrset

import (
	"bytes"
	"path/filepath"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func TestCollectionRoundTrip(t *testing.T) {
	pa, err := graph.GenPreferential(graph.GenConfig{Nodes: 300, AvgDegree: 6, Seed: 3, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.AssignWeights(pa, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(g, diffusion.IC, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(4096)
	s.SampleManyInto(c, 2000)
	c.Append(nil, 0) // empty RR set must survive the round trip too

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != c.Count() || back.TotalSize() != c.TotalSize() || back.EdgesExamined() != c.EdgesExamined() {
		t.Fatalf("header mismatch: %d/%d/%d vs %d/%d/%d",
			back.Count(), back.TotalSize(), back.EdgesExamined(),
			c.Count(), c.TotalSize(), c.EdgesExamined())
	}
	for i := 0; i < c.Count(); i++ {
		a, b := c.Set(i), back.Set(i)
		if len(a) != len(b) {
			t.Fatalf("set %d length differs", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d member %d differs", i, j)
			}
		}
	}
	// The restored collection must be appendable and indexable.
	back.Append([]uint32{1, 2}, 3)
	idx, err := BuildIndex(back, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Count() != back.Count() {
		t.Fatal("index over restored collection broken")
	}
}

func TestCollectionFileRoundTrip(t *testing.T) {
	c := NewCollection(16)
	c.Append([]uint32{5, 7}, 9)
	path := filepath.Join(t.TempDir(), "rr.bin")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCollectionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != 1 || back.TotalSize() != 2 || back.EdgesExamined() != 9 {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadCollectionFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadCollectionRejectsCorrupt(t *testing.T) {
	if _, err := ReadCollection(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero bytes accepted")
	}
	c := NewCollection(8)
	c.Append([]uint32{1}, 0)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-5] ^= 0xFF // corrupt the offset table region... or arena
	// Either a parse error or a consistent-but-different collection is
	// acceptable for arena corruption; header corruption must error.
	hdr := append([]byte(nil), raw...)
	hdr[8] = 0xFF // absurd count
	if _, err := ReadCollection(bytes.NewReader(hdr)); err == nil {
		t.Fatal("corrupt count accepted")
	}
}
