package rrset

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// fig1 builds the paper's Fig. 1 example graph (v1 = node 0).
func fig1(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, Prob: 1.0},
		{From: 0, To: 2, Prob: 1.0},
		{From: 0, To: 3, Prob: 0.4},
		{From: 1, To: 3, Prob: 0.3},
		{From: 2, To: 3, Prob: 0.2},
	} {
		if err := b.AddEdge(e.From, e.To, e.Prob); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func sortedCopy(xs []uint32) []uint32 {
	out := append([]uint32(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b []uint32) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCollectionBasics(t *testing.T) {
	c := NewCollection(16)
	if c.Count() != 0 || c.TotalSize() != 0 || c.AvgSize() != 0 {
		t.Fatal("fresh collection not empty")
	}
	c.Append([]uint32{1, 2, 3}, 5)
	c.Append([]uint32{7}, 2)
	c.Append(nil, 0)
	if c.Count() != 3 {
		t.Fatalf("count = %d", c.Count())
	}
	if c.TotalSize() != 4 {
		t.Fatalf("total size = %d", c.TotalSize())
	}
	if c.EdgesExamined() != 7 {
		t.Fatalf("edges examined = %d", c.EdgesExamined())
	}
	if !equalSets(c.Set(0), []uint32{1, 2, 3}) || !equalSets(c.Set(1), []uint32{7}) || len(c.Set(2)) != 0 {
		t.Fatal("set contents wrong")
	}
	if got := c.AvgSize(); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("avg size = %v", got)
	}
}

func TestSizeHistogram(t *testing.T) {
	c := NewCollection(16)
	c.Append(nil, 0)                     // bin 0
	c.Append([]uint32{1}, 0)             // size 1 -> bin 1
	c.Append([]uint32{1, 2}, 0)          // size 2 -> bin 2
	c.Append([]uint32{1, 2, 3}, 0)       // size 3 -> bin 2
	c.Append([]uint32{1, 2, 3, 4, 5}, 0) // size 5 -> bin 3
	bins := c.SizeHistogram()
	if bins[0] != 1 || bins[1] != 1 || bins[2] != 2 || bins[3] != 1 {
		t.Fatalf("histogram wrong: %v", bins[:5])
	}
	var total int64
	for _, b := range bins {
		total += b
	}
	if total != int64(c.Count()) {
		t.Fatalf("histogram covers %d sets, want %d", total, c.Count())
	}
}

func TestIndex(t *testing.T) {
	c := NewCollection(16)
	c.Append([]uint32{0, 2}, 0)
	c.Append([]uint32{1}, 0)
	c.Append([]uint32{0, 1, 2}, 0)
	idx, err := BuildIndex(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 3 {
		t.Fatalf("index count = %d", idx.Count())
	}
	if !equalSets(idx.Covers(0), []uint32{0, 2}) {
		t.Fatalf("Covers(0) = %v", idx.Covers(0))
	}
	if !equalSets(idx.Covers(1), []uint32{1, 2}) {
		t.Fatalf("Covers(1) = %v", idx.Covers(1))
	}
	if idx.Degree(2) != 2 || idx.Degree(0) != 2 || idx.Degree(1) != 2 {
		t.Fatal("degrees wrong")
	}
}

func TestIndexPropertyRandom(t *testing.T) {
	// Property: Covers(v) is exactly {i : v ∈ Set(i)}.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(20)
		c := NewCollection(64)
		sets := 1 + r.Intn(30)
		member := make(map[[2]uint32]bool)
		for i := 0; i < sets; i++ {
			var s []uint32
			size := r.Intn(n)
			seen := map[uint32]bool{}
			for j := 0; j < size; j++ {
				v := uint32(r.Intn(n))
				if !seen[v] {
					seen[v] = true
					s = append(s, v)
					member[[2]uint32{uint32(i), v}] = true
				}
			}
			c.Append(s, 0)
		}
		idx, err := BuildIndex(c, n)
		if err != nil {
			return false
		}
		total := 0
		for v := uint32(0); v < uint32(n); v++ {
			for _, id := range idx.Covers(v) {
				if !member[[2]uint32{id, v}] {
					return false
				}
				total++
			}
		}
		return int64(total) == c.TotalSize()
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma1Unbiased verifies Lemma 1: σ(S) = n·Pr[S ∩ R ≠ ∅], by
// comparing the RR-set hit frequency with exact spread on the Fig. 1 graph
// for several seed sets under both models.
func TestLemma1Unbiased(t *testing.T) {
	g := fig1(t)
	n := float64(g.NumNodes())
	const draws = 300000
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		for _, seeds := range [][]uint32{{0}, {1}, {3}, {1, 2}, {0, 3}} {
			s, err := NewSampler(g, model, 12345, false)
			if err != nil {
				t.Fatal(err)
			}
			c := NewCollection(1024)
			hit := 0
			inSeed := map[uint32]bool{}
			for _, v := range seeds {
				inSeed[v] = true
			}
			for i := 0; i < draws; i++ {
				size, _ := s.SampleInto(c)
				members := c.Set(c.Count() - 1)
				_ = size
				for _, v := range members {
					if inSeed[v] {
						hit++
						break
					}
				}
			}
			est := n * float64(hit) / draws
			want, err := diffusion.ExactSpread(g, seeds, model)
			if err != nil {
				t.Fatal(err)
			}
			// 5-sigma binomial bound on the estimate.
			p := want / n
			sigma := n * math.Sqrt(p*(1-p)/draws)
			if math.Abs(est-want) > 5*sigma+1e-9 {
				t.Fatalf("%v seeds %v: RIS estimate %v vs exact %v (sigma %v)", model, seeds, est, want, sigma)
			}
		}
	}
}

// TestExampleTwoIC checks Example 2's setting: under IC, conditioned on
// root v4, the paper narrates one construction of the RR set {v1,v3,v4}
// with coin pattern probability 0.2·0.4·(1−0.3) = 0.056. The *total*
// probability of the set is larger, because v1 also joins through the
// deterministic edge ⟨v1,v3⟩ whenever v3 is in: the set occurs iff
// ⟨v3,v4⟩ fires (0.2) and ⟨v2,v4⟩ does not (0.7), i.e. 0.14.
func TestExampleTwoIC(t *testing.T) {
	g := fig1(t)
	s, err := NewSampler(g, diffusion.IC, 777, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(1024)
	want := []uint32{0, 2, 3} // v1, v3, v4 in 0-based ids
	rooted, match := 0, 0
	for rooted < 200000 {
		s.SampleInto(c)
		members := c.Set(c.Count() - 1)
		if members[0] != 3 { // root is always the first member
			continue
		}
		rooted++
		if equalSets(members, want) {
			match++
		}
	}
	got := float64(match) / float64(rooted)
	const wantProb = 0.2 * 0.7
	sigma := math.Sqrt(wantProb * (1 - wantProb) / float64(rooted))
	if math.Abs(got-wantProb) > 5*sigma {
		t.Fatalf("Pr[{v1,v3,v4} | root v4] = %v, want %v (sigma %v)", got, wantProb, sigma)
	}
}

// TestExampleTwoLT: under LT, conditioned on root v4, the walk yields
// {v1,v3,v4} only via v4→v3→v1, with probability p(v3,v4) = 0.2.
func TestExampleTwoLT(t *testing.T) {
	g := fig1(t)
	s, err := NewSampler(g, diffusion.LT, 778, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(1024)
	want := []uint32{0, 2, 3}
	rooted, match := 0, 0
	for rooted < 200000 {
		s.SampleInto(c)
		members := c.Set(c.Count() - 1)
		if members[0] != 3 {
			continue
		}
		rooted++
		if equalSets(members, want) {
			match++
		}
	}
	got := float64(match) / float64(rooted)
	sigma := math.Sqrt(0.2 * 0.8 / float64(rooted))
	if math.Abs(got-0.2) > 5*sigma {
		t.Fatalf("Pr[{v1,v3,v4} | root v4] = %v, want 0.2 (sigma %v)", got, sigma)
	}
}

// TestLemma3EPS verifies EPS = (1/n)·Σ_v σ({v}) on the Fig. 1 graph.
func TestLemma3EPS(t *testing.T) {
	g := fig1(t)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		want := 0.0
		for v := uint32(0); v < 4; v++ {
			s, err := diffusion.ExactSpread(g, []uint32{v}, model)
			if err != nil {
				t.Fatal(err)
			}
			want += s
		}
		want /= 4
		s, err := NewSampler(g, model, 4242, false)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollection(1 << 20)
		s.SampleManyInto(c, 300000)
		got := c.AvgSize()
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("%v: empirical EPS %v vs exact %v", model, got, want)
		}
	}
}

func TestLTWalkStopsOnRevisit(t *testing.T) {
	// Cycle 0 <-> 1 with probability 1 both ways: an LT walk from either
	// root must terminate (stop on revisit) with both nodes in the set.
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 0, 1)
	g := b.Build()
	s, err := NewSampler(g, diffusion.LT, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(64)
	for i := 0; i < 100; i++ {
		size, _ := s.SampleInto(c)
		if size != 2 {
			t.Fatalf("cycle walk produced size %d, want 2", size)
		}
	}
}

func TestSubsetSamplingRequiresUniform(t *testing.T) {
	g := fig1(t) // non-uniform incoming probabilities
	if _, err := NewSampler(g, diffusion.IC, 1, true); err == nil {
		t.Fatal("subset sampling accepted a non-uniform graph")
	}
}

func TestLTRejectsInvalidWeights(t *testing.T) {
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 2, 0.9)
	_ = b.AddEdge(1, 2, 0.9)
	g := b.Build()
	if _, err := NewSampler(g, diffusion.LT, 1, false); err == nil {
		t.Fatal("LT sampler accepted incoming sum > 1")
	}
}

// TestSubsetMatchesPlain verifies the SUBSIM generator is distributionally
// identical to per-edge coin flips: on a WC graph, the mean RR-set size
// and the per-seed-set hit rates must agree within sampling error.
func TestSubsetMatchesPlain(t *testing.T) {
	pa, err := graph.GenPreferential(graph.GenConfig{Nodes: 300, AvgDegree: 6, Seed: 3, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.AssignWeights(pa, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 60000
	plain, err := NewSampler(g, diffusion.IC, 101, false)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewSampler(g, diffusion.IC, 202, true)
	if err != nil {
		t.Fatal(err)
	}
	cp, cs := NewCollection(1<<20), NewCollection(1<<20)
	plain.SampleManyInto(cp, draws)
	sub.SampleManyInto(cs, draws)
	mp, ms := cp.AvgSize(), cs.AvgSize()
	if math.Abs(mp-ms) > 0.15*math.Max(mp, 1) {
		t.Fatalf("mean RR size: plain %v vs subset %v", mp, ms)
	}
	// Hit rate of a fixed probe set must match (this is the statistic the
	// downstream algorithms consume).
	probe := map[uint32]bool{0: true, 1: true, 2: true}
	rate := func(c *Collection) float64 {
		hits := 0
		for i := 0; i < c.Count(); i++ {
			for _, v := range c.Set(i) {
				if probe[v] {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(c.Count())
	}
	rp, rs := rate(cp), rate(cs)
	sigma := math.Sqrt(rp * (1 - rp) / draws)
	if math.Abs(rp-rs) > 6*sigma+1e-4 {
		t.Fatalf("hit rates diverge: plain %v vs subset %v (sigma %v)", rp, rs, sigma)
	}
	// Subset sampling must do fewer edge probes.
	if cs.EdgesExamined() >= cp.EdgesExamined() {
		t.Fatalf("subset sampling probed %d edges, plain %d — no saving", cs.EdgesExamined(), cp.EdgesExamined())
	}
}

func TestSamplerDeterminism(t *testing.T) {
	g, _ := graph.GenPreferential(graph.GenConfig{Nodes: 100, AvgDegree: 5, Seed: 1, UniformAttach: 0.2})
	wc, _ := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		a, _ := NewSampler(wc, model, 55, false)
		b, _ := NewSampler(wc, model, 55, false)
		ca, cb := NewCollection(1024), NewCollection(1024)
		a.SampleManyInto(ca, 500)
		b.SampleManyInto(cb, 500)
		if ca.TotalSize() != cb.TotalSize() {
			t.Fatalf("%v: same seed, different collections", model)
		}
		for i := 0; i < ca.Count(); i++ {
			if !equalSets(ca.Set(i), cb.Set(i)) {
				t.Fatalf("%v: RR set %d differs", model, i)
			}
		}
	}
}

func TestRootAlwaysInSet(t *testing.T) {
	g, _ := graph.GenPreferential(graph.GenConfig{Nodes: 200, AvgDegree: 5, Seed: 2, UniformAttach: 0.2})
	wc, _ := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s, err := NewSampler(wc, model, 66, false)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollection(4096)
		for i := 0; i < 1000; i++ {
			size, _ := s.SampleInto(c)
			if size < 1 {
				t.Fatalf("%v: empty RR set", model)
			}
		}
		// Members must be unique within each RR set.
		for i := 0; i < c.Count(); i++ {
			seen := map[uint32]bool{}
			for _, v := range c.Set(i) {
				if seen[v] {
					t.Fatalf("%v: duplicate member %d in RR set %d", model, v, i)
				}
				seen[v] = true
			}
		}
	}
}

func BenchmarkSampleIC(b *testing.B) {
	benchSampler(b, diffusion.IC, false)
}

func BenchmarkSampleICSubset(b *testing.B) {
	benchSampler(b, diffusion.IC, true)
}

func BenchmarkSampleLT(b *testing.B) {
	benchSampler(b, diffusion.LT, false)
}

func benchSampler(b *testing.B, model diffusion.Model, subset bool) {
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 20000, AvgDegree: 10, Seed: 1, UniformAttach: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSampler(wc, model, 1, subset)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCollection(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(c)
	}
}
