package rrset

import (
	"fmt"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// Sampler generates random RR sets on one graph (Definition 1 of the
// paper). It owns reusable scratch state (epoch-stamped visited array,
// BFS queue), so per-sample allocation is zero once warm. Not safe for
// concurrent use; each machine owns one Sampler.
type Sampler struct {
	g     *graph.Graph
	r     *xrand.Rand
	model diffusion.Model

	// subset enables the SUBSIM subset-sampling optimization for IC: when
	// all of a node's incoming edges share one probability p, the indices
	// of successful coin flips are generated directly with geometric jumps
	// instead of flipping every coin. Requires g.UniformIn().
	subset bool

	// roots, when set, draws RR-set roots from a weighted distribution
	// instead of uniformly — the targeted-influence-maximization variant,
	// where Lemma 1 generalizes to the weighted spread
	// Σ_v w(v)·Pr[S activates v] = W·Pr[S ∩ R ≠ ∅], W = Σ w(v).
	roots *xrand.Alias

	visited []uint32
	epoch   uint32
	queue   []uint32
}

// NewSampler returns an RR-set sampler for the given model. subset selects
// the SUBSIM generation strategy and requires per-node-uniform incoming
// probabilities (true for weighted-cascade graphs).
func NewSampler(g *graph.Graph, model diffusion.Model, seed uint64, subset bool) (*Sampler, error) {
	if subset && !g.UniformIn() {
		return nil, fmt.Errorf("rrset: subset sampling requires per-node-uniform incoming probabilities (weighted-cascade weights)")
	}
	if model == diffusion.LT {
		if err := g.ValidateLT(); err != nil {
			return nil, err
		}
	}
	return &Sampler{
		g:       g,
		r:       xrand.New(seed),
		model:   model,
		subset:  subset,
		visited: make([]uint32, g.NumNodes()),
		queue:   make([]uint32, 0, 1024),
	}, nil
}

// Seed reseeds the sampler's generator (used by tests for reproducibility).
func (s *Sampler) Seed(seed uint64) { s.r.Seed(seed) }

// SetRootWeights switches the sampler to targeted mode: RR-set roots are
// drawn proportionally to weights (length n, non-negative, positive sum).
// Pass nil to return to uniform roots.
func (s *Sampler) SetRootWeights(weights []float64) error {
	if weights == nil {
		s.roots = nil
		return nil
	}
	if len(weights) != s.g.NumNodes() {
		return fmt.Errorf("rrset: %d root weights for %d nodes", len(weights), s.g.NumNodes())
	}
	a, err := xrand.NewAlias(weights)
	if err != nil {
		return err
	}
	s.roots = a
	return nil
}

func (s *Sampler) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
}

// SampleInto generates one random RR set and appends it to c. It returns
// the cardinality of the new set and the number of incoming edges probed.
func (s *Sampler) SampleInto(c *Collection) (size int, probes int64) {
	var root uint32
	if s.roots != nil {
		root = uint32(s.roots.Sample(s.r))
	} else {
		root = uint32(s.r.Uint32n(uint32(s.g.NumNodes())))
	}
	switch s.model {
	case diffusion.IC:
		size, probes = s.sampleIC(root)
	case diffusion.LT:
		size, probes = s.sampleLT(root)
	default:
		panic(fmt.Sprintf("rrset: unknown model %v", s.model))
	}
	c.Append(s.queue[:size], probes)
	return size, probes
}

// SampleManyInto generates count RR sets into c.
func (s *Sampler) SampleManyInto(c *Collection, count int64) {
	for i := int64(0); i < count; i++ {
		s.SampleInto(c)
	}
}

// sampleIC performs the stochastic reverse BFS of §III-A: starting from
// root, each incoming edge <u',u> is traversed with probability p(u',u).
// The visited nodes (left in s.queue) form the RR set.
func (s *Sampler) sampleIC(root uint32) (int, int64) {
	s.nextEpoch()
	s.queue = s.queue[:0]
	s.visited[root] = s.epoch
	s.queue = append(s.queue, root)
	var probes int64
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		adj, prob := s.g.InNeighbors(u)
		if len(adj) == 0 {
			continue
		}
		if s.subset {
			// All incoming probabilities of u are equal; jump straight to
			// the successful flips. Expected probes = 1 + d·p instead of d.
			p := float64(prob[0])
			if p > 0 {
				i := s.r.Geometric(p)
				for i < len(adj) {
					probes++
					up := adj[i]
					if s.visited[up] != s.epoch {
						s.visited[up] = s.epoch
						s.queue = append(s.queue, up)
					}
					i += 1 + s.r.Geometric(p)
				}
			}
			probes++ // the terminating jump
			continue
		}
		for i, up := range adj {
			probes++
			if s.visited[up] == s.epoch {
				continue
			}
			if s.r.Float64() < float64(prob[i]) {
				s.visited[up] = s.epoch
				s.queue = append(s.queue, up)
			}
		}
	}
	return len(s.queue), probes
}

// sampleLT performs the reverse random walk of §III-A: from the current
// node u the walk stops with probability 1 − Σ p(·,u), otherwise moves to
// an in-neighbor drawn proportionally to its edge weight; it also stops on
// revisiting a node. The visited nodes form the RR set.
func (s *Sampler) sampleLT(root uint32) (int, int64) {
	s.nextEpoch()
	s.queue = s.queue[:0]
	s.visited[root] = s.epoch
	s.queue = append(s.queue, root)
	var probes int64
	u := root
	for {
		adj, prob := s.g.InNeighbors(u)
		if len(adj) == 0 {
			break
		}
		sum := s.g.InProbSum(u)
		x := s.r.Float64()
		if x >= sum {
			probes++
			break
		}
		var next uint32
		if s.g.UniformIn() {
			// Equal weights: the proportional draw is uniform.
			next = adj[int(x/sum*float64(len(adj)))%len(adj)]
			probes++
		} else {
			acc := 0.0
			picked := false
			for i, up := range adj {
				probes++
				acc += float64(prob[i])
				if x < acc {
					next = up
					picked = true
					break
				}
			}
			if !picked { // float round-off at the boundary
				next = adj[len(adj)-1]
			}
		}
		if s.visited[next] == s.epoch {
			break
		}
		s.visited[next] = s.epoch
		s.queue = append(s.queue, next)
		u = next
	}
	return len(s.queue), probes
}
