package rrset

import (
	"fmt"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// Scratch-shrink policy. One pathological RR set can balloon the BFS
// queue (and, in the batched kernel, the per-lane member/frontier
// arenas) to millions of entries; Go's append never releases capacity,
// so without a valve that worst case is retained for the sampler's
// lifetime. Every shrinkWindow samples the sampler compares retained
// capacity against the window's peak demand and reallocates when the
// slack factor is exceeded, so steady-state capacity tracks the recent
// workload instead of the all-time outlier.
const (
	shrinkWindow = 64   // samples between shrink decisions
	shrinkSlack  = 8    // keep capacity while cap ≤ slack × window peak
	shrinkMinCap = 1024 // never shrink below the initial capacity
)

// shrinkScratch returns buf, or a smaller replacement when its capacity
// exceeds shrinkSlack times the recent peak demand. The returned slice
// has length 0; callers must only invoke it between samples.
func shrinkScratch[T any](buf []T, peak int) []T {
	keep := shrinkSlack * peak
	if keep < shrinkMinCap {
		keep = shrinkMinCap
	}
	if cap(buf) <= keep {
		return buf[:0]
	}
	want := 2 * peak
	if want < shrinkMinCap {
		want = shrinkMinCap
	}
	return make([]T, 0, want)
}

// Sampler generates random RR sets on one graph (Definition 1 of the
// paper). It owns reusable scratch state (epoch-stamped visited array,
// BFS queue), so per-sample allocation is zero once warm. Not safe for
// concurrent use; each machine owns one Sampler.
//
// Randomness is organized in counter-based lanes: RR set number t (a
// lifetime counter, reset by Seed) draws from the generator stream
// xrand.LaneSeed(base, t), and within an IC traversal the coins for node
// u's in-edge scan come from the stream xrand.ScanSeed(lane, u). Every
// draw is therefore a pure function of (base, t, node visited), never of
// traversal interleaving — which is what allows BatchSampler to advance
// many sets per adjacency pass and still emit bit-identical output.
type Sampler struct {
	g     *graph.Graph
	model diffusion.Model

	// subset enables the SUBSIM subset-sampling optimization for IC: when
	// all of a node's incoming edges share one probability p, the indices
	// of successful coin flips are generated directly with geometric jumps
	// instead of flipping every coin. Requires g.UniformIn().
	subset bool

	// roots, when set, draws RR-set roots from a weighted distribution
	// instead of uniformly — the targeted-influence-maximization variant,
	// where Lemma 1 generalizes to the weighted spread
	// Σ_v w(v)·Pr[S activates v] = W·Pr[S ∩ R ≠ ∅], W = Σ w(v).
	roots *xrand.Alias

	base   uint64     // stream seed; RR set t uses lane xrand.LaneSeed(base, t)
	setCtr uint64     // lifetime RR-set counter
	lane   xrand.Rand // per-set generator: root draw and the LT walk
	scan   xrand.Rand // per-(set, node) generator: IC in-edge coins

	visited []uint32
	epoch   uint32
	queue   []uint32

	peakSize int // largest RR set in the current shrink window
	window   int // samples since the last shrink decision
}

// NewSampler returns an RR-set sampler for the given model. subset selects
// the SUBSIM generation strategy and requires per-node-uniform incoming
// probabilities (true for weighted-cascade graphs).
func NewSampler(g *graph.Graph, model diffusion.Model, seed uint64, subset bool) (*Sampler, error) {
	if subset && !g.UniformIn() {
		return nil, fmt.Errorf("rrset: subset sampling requires per-node-uniform incoming probabilities (weighted-cascade weights)")
	}
	if subset && g.MutationEnabled() {
		// Geometric jumps consume a variable number of draws per scan and
		// divide by log(1-p), so neither positional coin stability nor
		// p = 0 tombstones survive subset mode. Dynamic graphs use the
		// dense kernel.
		return nil, fmt.Errorf("rrset: subset sampling is incompatible with a mutation-enabled graph (coin positions are not stable under updates)")
	}
	if model == diffusion.LT {
		if err := g.ValidateLT(); err != nil {
			return nil, err
		}
	}
	return &Sampler{
		g:       g,
		base:    seed,
		model:   model,
		subset:  subset,
		visited: make([]uint32, g.NumNodes()),
		queue:   make([]uint32, 0, shrinkMinCap),
	}, nil
}

// Seed resets the sampler to the beginning of the stream identified by
// seed: the set counter rewinds, so the next sample is set 0 of that
// stream (used by tests for reproducibility).
func (s *Sampler) Seed(seed uint64) {
	s.base = seed
	s.setCtr = 0
}

// SetRootWeights switches the sampler to targeted mode: RR-set roots are
// drawn proportionally to weights (length n, non-negative, positive sum).
// Pass nil to return to uniform roots.
func (s *Sampler) SetRootWeights(weights []float64) error {
	if weights == nil {
		s.roots = nil
		return nil
	}
	if len(weights) != s.g.NumNodes() {
		return fmt.Errorf("rrset: %d root weights for %d nodes", len(weights), s.g.NumNodes())
	}
	a, err := xrand.NewAlias(weights)
	if err != nil {
		return err
	}
	s.roots = a
	return nil
}

func (s *Sampler) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
}

// SampleInto generates one random RR set and appends it to c. It returns
// the cardinality of the new set and the number of incoming edges probed.
func (s *Sampler) SampleInto(c *Collection) (size int, probes int64) {
	laneSeed := xrand.LaneSeed(s.base, s.setCtr)
	s.setCtr++
	s.lane.Seed(laneSeed)
	var root uint32
	if s.roots != nil {
		root = uint32(s.roots.Sample(&s.lane))
	} else {
		root = s.lane.Uint32n(uint32(s.g.NumNodes()))
	}
	switch s.model {
	case diffusion.IC:
		size, probes = s.sampleIC(root, laneSeed)
	case diffusion.LT:
		size, probes = s.sampleLT(root)
	default:
		panic(fmt.Sprintf("rrset: unknown model %v", s.model))
	}
	c.Append(s.queue[:size], probes)
	if size > s.peakSize {
		s.peakSize = size
	}
	if s.window++; s.window >= shrinkWindow {
		s.queue = shrinkScratch(s.queue, s.peakSize)
		s.peakSize, s.window = 0, 0
	}
	return size, probes
}

// ResampleLane re-runs RR-set generation for one explicit lane seed on
// the graph's current version, without touching the sampler's stream
// counter or appending anywhere. Because every draw an RR traversal
// consumes is a pure function of (lane seed, node, draw position),
// ResampleLane(xrand.LaneSeed(base, t)) IS set t of stream base as it
// would have been sampled on this graph — the incremental-repair
// primitive: recomputing an RR set after a graph mutation keeps the
// whole sample exactly i.i.d. on the new graph (see internal/mutate).
// The returned slice aliases the sampler's scratch queue; copy it before
// the next sampling call.
func (s *Sampler) ResampleLane(laneSeed uint64) ([]uint32, int64) {
	s.lane.Seed(laneSeed)
	var root uint32
	if s.roots != nil {
		root = uint32(s.roots.Sample(&s.lane))
	} else {
		root = s.lane.Uint32n(uint32(s.g.NumNodes()))
	}
	var size int
	var probes int64
	switch s.model {
	case diffusion.IC:
		size, probes = s.sampleIC(root, laneSeed)
	case diffusion.LT:
		size, probes = s.sampleLT(root)
	default:
		panic(fmt.Sprintf("rrset: unknown model %v", s.model))
	}
	return s.queue[:size], probes
}

// SampleManyInto generates count RR sets into c.
func (s *Sampler) SampleManyInto(c *Collection, count int64) {
	for i := int64(0); i < count; i++ {
		s.SampleInto(c)
	}
}

// sampleIC performs the stochastic reverse BFS of §III-A: starting from
// root, each incoming edge <u',u> is traversed with probability p(u',u).
// The visited nodes (left in s.queue) form the RR set.
//
// Every edge coin is flipped, even when the far endpoint is already in
// the set. Flipping a coin whose outcome cannot matter is distributionally
// a no-op (the coins are independent), but it makes the number and order
// of draws per node scan a fixed function of (lane, node) — the invariant
// the batched kernel relies on.
func (s *Sampler) sampleIC(root uint32, laneSeed uint64) (int, int64) {
	s.nextEpoch()
	s.queue = s.queue[:0]
	s.visited[root] = s.epoch
	s.queue = append(s.queue, root)
	var probes int64
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		adj, prob := s.g.InNeighbors(u)
		over := s.g.InOverlay(u)
		if len(adj) == 0 && len(over) == 0 {
			continue
		}
		s.scan.Seed(xrand.ScanSeed(laneSeed, u))
		if s.subset {
			// All incoming probabilities of u are equal; jump straight to
			// the successful flips. Expected probes = 1 + d·p instead of d.
			p := float64(prob[0])
			if p > 0 {
				i := s.scan.Geometric(p)
				for i < len(adj) {
					probes++
					up := adj[i]
					if s.visited[up] != s.epoch {
						s.visited[up] = s.epoch
						s.queue = append(s.queue, up)
					}
					i += 1 + s.scan.Geometric(p)
				}
			}
			probes++ // the terminating jump
			continue
		}
		for i, up := range adj {
			probes++
			if s.scan.Float64() < float64(prob[i]) && s.visited[up] != s.epoch {
				s.visited[up] = s.epoch
				s.queue = append(s.queue, up)
			}
		}
		// Overlay in-edges (added by mutation) continue the same scan
		// stream: overlay entry j draws coin number len(adj)+j, the
		// position it was assigned at ApplyUpdates. Tombstoned entries
		// (p = 0) still consume a draw but can never succeed, exactly
		// like tombstoned base slots.
		for _, e := range over {
			probes++
			if s.scan.Float64() < float64(e.Prob) && s.visited[e.Node] != s.epoch {
				s.visited[e.Node] = s.epoch
				s.queue = append(s.queue, e.Node)
			}
		}
	}
	return len(s.queue), probes
}

// sampleLT performs the reverse random walk of §III-A: from the current
// node u the walk stops with probability 1 − Σ p(·,u), otherwise moves to
// an in-neighbor drawn proportionally to its edge weight; it also stops on
// revisiting a node. The visited nodes form the RR set. All draws come
// from the set's lane generator: the walk is inherently sequential, so a
// batched kernel advances it one step per wave on the same stream.
func (s *Sampler) sampleLT(root uint32) (int, int64) {
	s.nextEpoch()
	s.queue = s.queue[:0]
	s.visited[root] = s.epoch
	s.queue = append(s.queue, root)
	var probes int64
	u := root
	for {
		adj, prob := s.g.InNeighbors(u)
		over := s.g.InOverlay(u)
		if len(adj) == 0 && len(over) == 0 {
			break
		}
		sum := s.g.InProbSum(u)
		x := s.lane.Float64()
		if x >= sum {
			// Also the exit when every in-edge of u is tombstoned
			// (sum = 0): x >= 0 always holds.
			probes++
			break
		}
		var next uint32
		if s.g.UniformIn() {
			// Equal weights: the proportional draw is uniform. (Mutated
			// graphs clear uniformIn, so this path never sees overlays.)
			next = adj[int(x/sum*float64(len(adj)))%len(adj)]
			probes++
		} else {
			// Cumulative scan over base slots then overlay entries.
			// Tombstones (p = 0) never advance acc, so they cannot be
			// picked; the round-off fallback keeps the last live slot.
			acc := 0.0
			picked, haveLive := false, false
			var lastLive uint32
			for i, up := range adj {
				probes++
				if p := float64(prob[i]); p > 0 {
					lastLive, haveLive = up, true
					acc += p
					if x < acc {
						next = up
						picked = true
						break
					}
				}
			}
			if !picked {
				for _, e := range over {
					probes++
					if p := float64(e.Prob); p > 0 {
						lastLive, haveLive = e.Node, true
						acc += p
						if x < acc {
							next = e.Node
							picked = true
							break
						}
					}
				}
			}
			if !picked { // float round-off at the boundary
				if !haveLive {
					break
				}
				next = lastLive
			}
		}
		if s.visited[next] == s.epoch {
			break
		}
		s.visited[next] = s.epoch
		s.queue = append(s.queue, next)
		u = next
	}
	return len(s.queue), probes
}
