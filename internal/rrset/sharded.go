package rrset

import (
	"fmt"
	"sync"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// shardSampler is the per-shard generation engine: either a scalar
// Sampler or a frontier-batched BatchSampler. Both sample the same
// stream for the same seed, byte for byte, so the choice is purely a
// performance knob.
type shardSampler interface {
	SampleManyInto(c *Collection, count int64)
	setRoots(a *xrand.Alias)
	batchStats() BatchStats
	// laneState exposes (stream seed, lifetime set counter) so the lane
	// seeds of upcoming sets can be computed without sampling them — the
	// per-set provenance a dynamic-graph worker journals for repair.
	laneState() (base, setCtr uint64)
}

func (s *Sampler) setRoots(a *xrand.Alias)          { s.roots = a }
func (s *Sampler) batchStats() BatchStats           { return BatchStats{} }
func (s *Sampler) laneState() (uint64, uint64)      { return s.base, s.setCtr }
func (s *BatchSampler) setRoots(a *xrand.Alias)     { s.roots = a }
func (s *BatchSampler) batchStats() BatchStats      { return s.Stats() }
func (s *BatchSampler) laneState() (uint64, uint64) { return s.base, s.setCtr }

// ShardedSampler fans RR-set generation across P shard samplers, each a
// private sampler with its own RNG stream and scratch state, generating
// into a private arena Collection. It parallelizes the per-machine share
// of distributed RIS (Corollary 1 concentrates that share at total/ℓ;
// intra-worker shards split it again by P) the way gIM and the Intel
// optimized-parallel-IM implementations do, adapted to Go: the arenas
// stay flat and per-shard, so the GC-pressure invariant of DESIGN.md key
// choice #1 survives parallelism.
//
// Determinism: shard s samples the stream xrand.MachineSeed(seed, s), a
// request for N sets is split as N/P (+1 for the first N%P shards), and
// shard outputs are merged in ascending shard order — so a fixed
// (seed, P) yields a byte-identical collection regardless of goroutine
// scheduling. P = 1 runs the seed's stream directly on the caller's
// goroutine and is bit-identical to a plain Sampler. The frontier-batch
// width (batching *within* each shard) never changes output bytes, so it
// is not part of the determinism fingerprint.
type ShardedSampler struct {
	g      *graph.Graph
	shards []shardSampler
	bufs   []*Collection // per-shard merge buffers, reused across rounds
	batch  int
}

// NewShardedSampler returns a sampler running parallelism scalar shard
// streams. Values below 1 are treated as 1 (sequential).
func NewShardedSampler(g *graph.Graph, model diffusion.Model, seed uint64, subset bool, parallelism int) (*ShardedSampler, error) {
	return NewShardedSamplerBatch(g, model, seed, subset, parallelism, 1)
}

// NewShardedSamplerBatch is NewShardedSampler with a frontier-batch
// width: each shard advances up to batch RR traversals per adjacency
// pass (see BatchSampler). batch ≤ 1 selects the scalar kernel; output
// bytes are identical either way.
func NewShardedSamplerBatch(g *graph.Graph, model diffusion.Model, seed uint64, subset bool, parallelism, batch int) (*ShardedSampler, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	if batch < 1 {
		batch = 1
	}
	if g.MutationEnabled() {
		// The frontier-batched kernel does not scan overlay adjacency;
		// dynamic graphs run the scalar kernel. Batch width is not part
		// of stream identity, so coercion never changes output bytes.
		batch = 1
	}
	ss := &ShardedSampler{
		g:      g,
		shards: make([]shardSampler, parallelism),
		bufs:   make([]*Collection, parallelism),
		batch:  batch,
	}
	for i := range ss.shards {
		shardSeed := seed
		if parallelism > 1 {
			shardSeed = xrand.MachineSeed(seed, i)
		}
		var s shardSampler
		var err error
		if batch > 1 {
			s, err = NewBatchSampler(g, model, shardSeed, subset, batch)
		} else {
			s, err = NewSampler(g, model, shardSeed, subset)
		}
		if err != nil {
			return nil, err
		}
		ss.shards[i] = s
		ss.bufs[i] = NewCollection(1 << 12)
	}
	return ss, nil
}

// Parallelism returns P, the number of shard streams.
func (ss *ShardedSampler) Parallelism() int { return len(ss.shards) }

// Batch returns the frontier-batch width each shard runs at (1 = scalar).
func (ss *ShardedSampler) Batch() int { return ss.batch }

// BatchStats returns the summed batching counters across shards. All
// zeros when the scalar kernel is selected.
func (ss *ShardedSampler) BatchStats() BatchStats {
	var total BatchStats
	for _, s := range ss.shards {
		total.Add(s.batchStats())
	}
	return total
}

// SetRootWeights switches every shard to targeted mode (weighted RR-set
// roots). The alias table is built once and shared read-only across
// shards. Pass nil to return to uniform roots.
func (ss *ShardedSampler) SetRootWeights(weights []float64) error {
	if weights == nil {
		for _, s := range ss.shards {
			s.setRoots(nil)
		}
		return nil
	}
	if len(weights) != ss.g.NumNodes() {
		return fmt.Errorf("rrset: %d root weights for %d nodes", len(weights), ss.g.NumNodes())
	}
	a, err := xrand.NewAlias(weights)
	if err != nil {
		return err
	}
	for _, s := range ss.shards {
		s.setRoots(a)
	}
	return nil
}

// AppendLaneSeeds appends the lane seeds of the next count sets this
// sampler would generate, in merge order, without sampling anything or
// advancing any stream. Because a request for count sets is always split
// per/extra across shards in shard order, set j of the upcoming round
// maps deterministically to (shard, local offset); the lane seed is then
// xrand.LaneSeed(shard stream seed, shard set counter + offset). Callers
// that journal per-set provenance (dynamic-graph repair) call this
// immediately before SampleManyInto with the same count.
func (ss *ShardedSampler) AppendLaneSeeds(dst []uint64, count int64) []uint64 {
	if count <= 0 {
		return dst
	}
	p := int64(len(ss.shards))
	per, extra := count/p, count%p
	for i, s := range ss.shards {
		n := per
		if int64(i) < extra {
			n++
		}
		base, ctr := s.laneState()
		for j := int64(0); j < n; j++ {
			dst = append(dst, xrand.LaneSeed(base, ctr+uint64(j)))
		}
	}
	return dst
}

// SampleManyInto generates count RR sets into c: each shard samples its
// deterministic share concurrently into a private arena, then the arenas
// are merged into c in shard order.
func (ss *ShardedSampler) SampleManyInto(c *Collection, count int64) {
	if count <= 0 {
		return
	}
	p := int64(len(ss.shards))
	if p == 1 {
		ss.shards[0].SampleManyInto(c, count)
		return
	}
	per, extra := count/p, count%p
	var wg sync.WaitGroup
	for i := range ss.shards {
		n := per
		if int64(i) < extra {
			n++
		}
		buf := ss.bufs[i]
		buf.Reset()
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(s shardSampler, buf *Collection, n int64) {
			defer wg.Done()
			s.SampleManyInto(buf, n)
		}(ss.shards[i], buf, n)
	}
	wg.Wait()
	for _, buf := range ss.bufs {
		c.AppendCollection(buf)
	}
}
