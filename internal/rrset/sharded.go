package rrset

import (
	"fmt"
	"sync"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/xrand"
)

// ShardedSampler fans RR-set generation across P shard samplers, each a
// private Sampler with its own RNG stream and scratch state, generating
// into a private arena Collection. It parallelizes the per-machine share
// of distributed RIS (Corollary 1 concentrates that share at total/ℓ;
// intra-worker shards split it again by P) the way gIM and the Intel
// optimized-parallel-IM implementations do, adapted to Go: the arenas
// stay flat and per-shard, so the GC-pressure invariant of DESIGN.md key
// choice #1 survives parallelism.
//
// Determinism: shard s samples the stream xrand.MachineSeed(seed, s), a
// request for N sets is split as N/P (+1 for the first N%P shards), and
// shard outputs are merged in ascending shard order — so a fixed
// (seed, P) yields a byte-identical collection regardless of goroutine
// scheduling. P = 1 runs the seed's stream directly on the caller's
// goroutine and is bit-identical to a plain Sampler.
type ShardedSampler struct {
	shards []*Sampler
	bufs   []*Collection // per-shard merge buffers, reused across rounds
}

// NewShardedSampler returns a sampler running parallelism shard streams.
// Values below 1 are treated as 1 (sequential).
func NewShardedSampler(g *graph.Graph, model diffusion.Model, seed uint64, subset bool, parallelism int) (*ShardedSampler, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	ss := &ShardedSampler{
		shards: make([]*Sampler, parallelism),
		bufs:   make([]*Collection, parallelism),
	}
	for i := range ss.shards {
		shardSeed := seed
		if parallelism > 1 {
			shardSeed = xrand.MachineSeed(seed, i)
		}
		s, err := NewSampler(g, model, shardSeed, subset)
		if err != nil {
			return nil, err
		}
		ss.shards[i] = s
		ss.bufs[i] = NewCollection(1 << 12)
	}
	return ss, nil
}

// Parallelism returns P, the number of shard streams.
func (ss *ShardedSampler) Parallelism() int { return len(ss.shards) }

// SetRootWeights switches every shard to targeted mode (weighted RR-set
// roots). The alias table is built once and shared read-only across
// shards. Pass nil to return to uniform roots.
func (ss *ShardedSampler) SetRootWeights(weights []float64) error {
	if weights == nil {
		for _, s := range ss.shards {
			s.roots = nil
		}
		return nil
	}
	if len(weights) != ss.shards[0].g.NumNodes() {
		return fmt.Errorf("rrset: %d root weights for %d nodes", len(weights), ss.shards[0].g.NumNodes())
	}
	a, err := xrand.NewAlias(weights)
	if err != nil {
		return err
	}
	for _, s := range ss.shards {
		s.roots = a
	}
	return nil
}

// SampleManyInto generates count RR sets into c: each shard samples its
// deterministic share concurrently into a private arena, then the arenas
// are merged into c in shard order.
func (ss *ShardedSampler) SampleManyInto(c *Collection, count int64) {
	if count <= 0 {
		return
	}
	p := int64(len(ss.shards))
	if p == 1 {
		ss.shards[0].SampleManyInto(c, count)
		return
	}
	per, extra := count/p, count%p
	var wg sync.WaitGroup
	for i := range ss.shards {
		n := per
		if int64(i) < extra {
			n++
		}
		buf := ss.bufs[i]
		buf.Reset()
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(s *Sampler, buf *Collection, n int64) {
			defer wg.Done()
			s.SampleManyInto(buf, n)
		}(ss.shards[i], buf, n)
	}
	wg.Wait()
	for _, buf := range ss.bufs {
		c.AppendCollection(buf)
	}
}
