package rrset

import (
	"encoding/binary"
	"math"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

// testGraph builds a small weighted-cascade preferential-attachment graph.
func testGraph(t testing.TB, nodes int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: nodes, AvgDegree: 6, Seed: seed, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return wc
}

// collectionsEqual reports whether two collections hold identical RR sets
// in identical order (byte-identical arenas).
func collectionsEqual(a, b *Collection) bool {
	if a.Count() != b.Count() || a.TotalSize() != b.TotalSize() || a.EdgesExamined() != b.EdgesExamined() {
		return false
	}
	for i := 0; i < a.Count(); i++ {
		sa, sb := a.Set(i), b.Set(i)
		if len(sa) != len(sb) {
			return false
		}
		for j := range sa {
			if sa[j] != sb[j] {
				return false
			}
		}
	}
	return true
}

func TestShardedP1BitIdenticalToPlainSampler(t *testing.T) {
	g := testGraph(t, 400, 7)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		plain, err := NewSampler(g, model, 42, false)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := NewShardedSampler(g, model, 42, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, got := NewCollection(64), NewCollection(64)
		plain.SampleManyInto(want, 500)
		sharded.SampleManyInto(got, 500)
		if !collectionsEqual(want, got) {
			t.Fatalf("%v: P=1 sharded sampler diverges from the plain sampler", model)
		}
	}
}

func TestShardedDeterministicAcrossRuns(t *testing.T) {
	g := testGraph(t, 400, 9)
	for _, p := range []int{2, 3, 4, 8} {
		a, err := NewShardedSampler(g, diffusion.IC, 5, false, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewShardedSampler(g, diffusion.IC, 5, false, p)
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := NewCollection(64), NewCollection(64)
		// Different batch sizes within a run exercise the per-request
		// split; both samplers see the same request sequence.
		for _, batch := range []int64{1, 7, 250, 100} {
			a.SampleManyInto(ca, batch)
			b.SampleManyInto(cb, batch)
		}
		if !collectionsEqual(ca, cb) {
			t.Fatalf("P=%d: same (seed,P,request sequence) produced different collections", p)
		}
		if ca.Count() != 358 {
			t.Fatalf("P=%d: generated %d sets, want 358", p, ca.Count())
		}
	}
}

func TestShardedSubsetAndTargetedModes(t *testing.T) {
	g := testGraph(t, 300, 3)
	// Subset sampling is valid on weighted-cascade graphs.
	s, err := NewShardedSampler(g, diffusion.IC, 11, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for i := range weights {
		weights[i] = float64(i%5) + 0.5
	}
	if err := s.SetRootWeights(weights); err != nil {
		t.Fatal(err)
	}
	c := NewCollection(64)
	s.SampleManyInto(c, 300)
	if c.Count() != 300 {
		t.Fatalf("generated %d sets, want 300", c.Count())
	}
	// Same seed, same mode: reproducible under targeted roots too.
	s2, err := NewShardedSampler(g, diffusion.IC, 11, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.SetRootWeights(weights); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollection(64)
	s2.SampleManyInto(c2, 300)
	if !collectionsEqual(c, c2) {
		t.Fatal("targeted sharded sampling not reproducible")
	}
	if err := s.SetRootWeights(make([]float64, 3)); err == nil {
		t.Fatal("want error for mismatched weight vector length")
	}
	if err := s.SetRootWeights(nil); err != nil {
		t.Fatalf("clearing root weights: %v", err)
	}
}

func TestCollectionResetAndAppendCollection(t *testing.T) {
	a := NewCollection(8)
	a.Append([]uint32{1, 2}, 3)
	a.Append([]uint32{5}, 1)
	b := NewCollection(8)
	b.Append([]uint32{9}, 7)
	b.Append(nil, 0)
	b.Append([]uint32{0, 4, 6}, 2)

	merged := NewCollection(8)
	merged.AppendCollection(a)
	merged.AppendCollection(b)
	if merged.Count() != 5 || merged.TotalSize() != 7 || merged.EdgesExamined() != 13 {
		t.Fatalf("merged stats: count=%d size=%d probes=%d", merged.Count(), merged.TotalSize(), merged.EdgesExamined())
	}
	want := [][]uint32{{1, 2}, {5}, {9}, {}, {0, 4, 6}}
	for i, w := range want {
		got := merged.Set(i)
		if len(got) != len(w) {
			t.Fatalf("set %d = %v, want %v", i, got, w)
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("set %d = %v, want %v", i, got, w)
			}
		}
	}

	b.Reset()
	if b.Count() != 0 || b.TotalSize() != 0 || b.EdgesExamined() != 0 {
		t.Fatal("reset collection not empty")
	}
	b.Append([]uint32{8}, 1)
	if b.Count() != 1 || b.Set(0)[0] != 8 {
		t.Fatal("append after reset broken")
	}
}

// TestAppendWireMatchesLegacyEncoding pins the bulk encoder to the exact
// wire bytes the per-element encoder produced.
func TestAppendWireMatchesLegacyEncoding(t *testing.T) {
	g := testGraph(t, 200, 1)
	s, err := NewSampler(g, diffusion.IC, 13, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection(64)
	s.SampleManyInto(c, 150)
	c.Append(nil, 0) // empty RR set edge case

	legacy := []byte{0xAB} // non-empty prefix: AppendWire must append, not overwrite
	legacy = binary.LittleEndian.AppendUint32(legacy, uint32(c.Count()))
	for i := 0; i < c.Count(); i++ {
		set := c.Set(i)
		legacy = binary.LittleEndian.AppendUint32(legacy, uint32(len(set)))
		for _, v := range set {
			legacy = binary.LittleEndian.AppendUint32(legacy, v)
		}
	}

	got := c.AppendWire([]byte{0xAB})
	if len(got) != 1+c.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize promises %d", len(got)-1, c.WireSize())
	}
	if string(got) != string(legacy) {
		t.Fatal("bulk wire encoding differs from the legacy per-element encoding")
	}
}

// TestSamplerEpochWraparound drives nextEpoch across the uint32 overflow
// and asserts the visited scratch is correctly reset (the epoch == 0
// branch of sampler.go).
func TestSamplerEpochWraparound(t *testing.T) {
	g := testGraph(t, 150, 4)
	s, err := NewSampler(g, diffusion.IC, 21, false)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the visited array with arbitrary stale stamps, including the
	// value the wrapped epoch would otherwise collide with (0).
	s.epoch = math.MaxUint32
	for i := range s.visited {
		s.visited[i] = uint32(i) * 2654435761
	}
	s.nextEpoch()
	if s.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", s.epoch)
	}
	for i, v := range s.visited {
		if v != 0 {
			t.Fatalf("visited[%d] = %d after wraparound reset, want 0", i, v)
		}
	}

	// Functional check: a sampler pushed to the brink of overflow must
	// produce exactly the sets a fresh sampler with the same seed does —
	// the RNG streams are aligned, so any divergence means stale visited
	// state leaked across the wrap. The wrapping sampler first runs a few
	// organic samples so its visited array carries genuine low-valued
	// stamps (1, 2, …) — exactly the values the post-wrap epochs would
	// falsely collide with if nextEpoch failed to clear the array.
	fresh, err := NewSampler(g, diffusion.IC, 33, false)
	if err != nil {
		t.Fatal(err)
	}
	wrapping, err := NewSampler(g, diffusion.IC, 33, false)
	if err != nil {
		t.Fatal(err)
	}
	warmup := NewCollection(64)
	wrapping.SampleManyInto(warmup, 5) // visited now holds stamps 1..5
	wrapping.Seed(33)                  // realign the RNG stream with fresh
	wrapping.epoch = math.MaxUint32 - 3
	cf, cw := NewCollection(64), NewCollection(64)
	fresh.SampleManyInto(cf, 10)
	wrapping.SampleManyInto(cw, 10) // crosses the wrap at the 4th sample
	if !collectionsEqual(cf, cw) {
		t.Fatal("sampler diverges when its epoch counter wraps")
	}
	if wrapping.epoch != 7 {
		// 3 pre-wrap epochs, then the wrap resets to 1 and 6 more follow.
		t.Fatalf("epoch after crossing the wrap = %d, want 7", wrapping.epoch)
	}
}
