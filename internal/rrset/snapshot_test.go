package rrset

import (
	"encoding/binary"
	"testing"
)

func TestSnapshotImmutableAcrossAppend(t *testing.T) {
	c := NewCollection(4)
	c.Append([]uint32{1, 2, 3}, 3)
	c.Append([]uint32{4}, 1)

	snap := c.Snapshot()
	if snap.Count() != 2 || snap.TotalSize() != 4 {
		t.Fatalf("snapshot count=%d total=%d, want 2/4", snap.Count(), snap.TotalSize())
	}

	// Growth after the snapshot must not change what the snapshot sees,
	// even when the arena reallocates many times.
	for i := 0; i < 1000; i++ {
		c.Append([]uint32{uint32(i), uint32(i + 1)}, 2)
	}
	if snap.Count() != 2 {
		t.Fatalf("snapshot count changed to %d after growth", snap.Count())
	}
	if got := snap.Set(0); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("snapshot set 0 = %v, want [1 2 3]", got)
	}
	if got := snap.Set(1); len(got) != 1 || got[0] != 4 {
		t.Fatalf("snapshot set 1 = %v, want [4]", got)
	}
	if c.Count() != 1002 {
		t.Fatalf("live collection count = %d, want 1002", c.Count())
	}
}

func TestSnapshotEmpty(t *testing.T) {
	c := NewCollection(0)
	snap := c.Snapshot()
	if snap.Count() != 0 || snap.TotalSize() != 0 {
		t.Fatalf("empty snapshot count=%d total=%d", snap.Count(), snap.TotalSize())
	}
}

// decodeWire parses the AppendWire layout back into explicit sets.
func decodeWire(t *testing.T, b []byte) [][]uint32 {
	t.Helper()
	if len(b) < 4 {
		t.Fatalf("short wire payload (%d bytes)", len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	sets := make([][]uint32, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			t.Fatalf("truncated set %d header", i)
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < 4*l {
			t.Fatalf("truncated set %d members", i)
		}
		set := make([]uint32, l)
		for j := uint32(0); j < l; j++ {
			set[j] = binary.LittleEndian.Uint32(b[4*j:])
		}
		b = b[4*l:]
		sets = append(sets, set)
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes after wire payload", len(b))
	}
	return sets
}

func TestAppendWireRange(t *testing.T) {
	c := NewCollection(8)
	want := [][]uint32{{7}, {1, 2}, {3, 4, 5}, {}, {9, 10}}
	for _, s := range want {
		c.Append(s, 0)
	}

	for from := 0; from <= c.Count(); from++ {
		b := c.AppendWireRange(nil, from)
		if len(b) != c.WireSizeRange(from) {
			t.Fatalf("from=%d: wire bytes %d != WireSizeRange %d", from, len(b), c.WireSizeRange(from))
		}
		got := decodeWire(t, b)
		if len(got) != len(want)-from {
			t.Fatalf("from=%d: decoded %d sets, want %d", from, len(got), len(want)-from)
		}
		for i, s := range got {
			ref := want[from+i]
			if len(s) != len(ref) {
				t.Fatalf("from=%d set %d: %v != %v", from, i, s, ref)
			}
			for j := range s {
				if s[j] != ref[j] {
					t.Fatalf("from=%d set %d: %v != %v", from, i, s, ref)
				}
			}
		}
	}

	// Whole-collection encoding must agree with the historic AppendWire.
	full := c.AppendWire(nil)
	ranged := c.AppendWireRange(nil, 0)
	if string(full) != string(ranged) {
		t.Fatal("AppendWire and AppendWireRange(0) disagree")
	}
}
