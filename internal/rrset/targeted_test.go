package rrset

import (
	"math"
	"testing"

	"dimm/internal/diffusion"
)

func TestSetRootWeightsValidation(t *testing.T) {
	g := fig1(t)
	s, err := NewSampler(g, diffusion.IC, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRootWeights([]float64{1, 2}); err == nil {
		t.Fatal("wrong weight length accepted")
	}
	if err := s.SetRootWeights([]float64{0, 0, 0, 0}); err == nil {
		t.Fatal("zero weights accepted")
	}
	if err := s.SetRootWeights([]float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRootWeights(nil); err != nil {
		t.Fatal("reset to uniform failed")
	}
}

// TestTargetedRootDistribution: roots must follow the weight vector.
func TestTargetedRootDistribution(t *testing.T) {
	g := fig1(t)
	s, err := NewSampler(g, diffusion.IC, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	weights := []float64{4, 0, 1, 5}
	if err := s.SetRootWeights(weights); err != nil {
		t.Fatal(err)
	}
	c := NewCollection(1024)
	const draws = 200000
	counts := make([]float64, 4)
	for i := 0; i < draws; i++ {
		s.SampleInto(c)
		counts[c.Set(c.Count() - 1)[0]]++ // root is the first member
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight node rooted %v times", counts[1])
	}
	for v, w := range weights {
		want := w / 10
		got := counts[v] / draws
		if math.Abs(got-want) > 6*math.Sqrt(want*(1-want)/draws)+1e-9 {
			t.Fatalf("root %d frequency %v, want %v", v, got, want)
		}
	}
}

// TestTargetedUnbiasedness: with all root weight on v4, the hit rate of
// {v1} equals Pr[v1 activates v4] — which on the Fig. 1 graph is exactly
// σ({v1}) − 3 = 0.664 under IC (v2, v3 are always activated).
func TestTargetedUnbiasedness(t *testing.T) {
	g := fig1(t)
	s, err := NewSampler(g, diffusion.IC, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRootWeights([]float64{0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	c := NewCollection(1024)
	const draws = 300000
	hits := 0
	for i := 0; i < draws; i++ {
		s.SampleInto(c)
		for _, v := range c.Set(c.Count() - 1) {
			if v == 0 {
				hits++
				break
			}
		}
	}
	got := float64(hits) / draws
	const want = 0.664
	sigma := math.Sqrt(want * (1 - want) / draws)
	if math.Abs(got-want) > 5*sigma {
		t.Fatalf("Pr[v1 ∈ RR(v4)] = %v, want %v (sigma %v)", got, want, sigma)
	}
}
