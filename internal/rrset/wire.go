package rrset

import (
	"encoding/binary"
	"fmt"
)

// DecodeWire appends one wire-encoded RR-set batch (the AppendWire
// layout: count u32, then len u32 + members u32* per set) to c,
// returning the number of sets appended and the unconsumed remainder of
// b. It is the single decoder behind both the cluster master's fetch
// paths and the durable store's segment replay, so the two can never
// drift. Members are written straight into the arena — no per-set
// scratch slice.
func DecodeWire(b []byte, c *Collection) (int, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("rrset: wire payload truncated (want 4 bytes for the set count, have %d)", len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	rest := b[4:]
	for j := uint32(0); j < count; j++ {
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("rrset: wire payload truncated at set %d header", j)
		}
		l := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if int64(l)*4 > int64(len(rest)) {
			return 0, nil, fmt.Errorf("rrset: truncated RR set %d (%d members declared, %d bytes left)", j, l, len(rest))
		}
		for m := 0; m < int(l); m++ {
			c.nodes = append(c.nodes, binary.LittleEndian.Uint32(rest[m*4:]))
		}
		c.offs = append(c.offs, int64(len(c.nodes)))
		rest = rest[l*4:]
	}
	return int(count), rest, nil
}
